#!/usr/bin/env python3
"""Repo-specific static checks that clang-tidy cannot express.

Run from the repository root (CI runs it on every push):

    python3 tools/lint_repo.py            # all text checks
    python3 tools/lint_repo.py --include-check   # + header TU builds

Checks:

 1. rand-ban: no rand()/std::rand/srand outside the seeded RNG
    implementations in src/common/rng.* — every other module must
    draw from core RNGs or the entropy service so runs stay
    replayable.

 2. relaxed-justification: every std::memory_order_relaxed use needs
    an adjacent `// relaxed:` justification comment. One comment
    covers a contiguous cluster: a site is justified if the comment
    (or another justified site) appears within the preceding
    JUSTIFY_WINDOW lines.

 3. tsa-escape: QUAC_NO_THREAD_SAFETY_ANALYSIS may only appear in the
    lock-free ring internals (src/service/entropy_service.cc) and
    must carry a one-line justification comment directly above.

 4. annotated-mutexes: concurrent modules (src/service, src/net) may
    not declare raw std::mutex / std::condition_variable members or
    use std::lock_guard/std::unique_lock/std::scoped_lock — new
    mutexes must ship as annotated quac::Mutex + MutexLock so the
    thread-safety analysis sees them.

 5. include-check (--include-check): every public header under src/
    compiles on its own (self-contained includes). Needs a C++
    compiler; CI runs it, local runs may skip it for speed.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIRS = ["src", "tests", "bench", "examples"]
CXX_EXT = (".cc", ".cpp", ".hh", ".h")

# Files allowed to reference the C rand family (seeded RNG impls).
RAND_ALLOWED = {
    "src/common/rng.hh",
    "src/common/rng.cc",
}

# The only file allowed to use the analysis escape hatch (lock-free
# ring internals); currently it has zero uses, and keeping it that
# way is the acceptance bar.
TSA_ESCAPE_ALLOWED = {
    "src/service/entropy_service.cc",
}

# Modules whose mutexes must be annotated quac::Mutex.
ANNOTATED_MUTEX_DIRS = ("src/service/", "src/net/")

JUSTIFY_WINDOW = 8

RAND_RE = re.compile(r"(?<![\w:.])(?:std::)?s?rand\s*\(")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
RELAXED_OK_RE = re.compile(r"//\s*relaxed:")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock)\b")


def repo_files():
    for top in SRC_DIRS:
        for root, _dirs, names in os.walk(os.path.join(REPO, top)):
            for name in sorted(names):
                if name.endswith(CXX_EXT):
                    path = os.path.join(root, name)
                    yield os.path.relpath(path, REPO)


def read_lines(rel):
    with open(os.path.join(REPO, rel), encoding="utf-8") as fh:
        return fh.read().splitlines()


def check_rand(rel, lines, errors):
    if rel in RAND_ALLOWED or not rel.startswith("src/"):
        return
    for i, line in enumerate(lines, 1):
        code = line.split("//", 1)[0]
        if RAND_RE.search(code):
            errors.append(
                f"{rel}:{i}: rand()/srand() outside src/common/rng.* "
                f"(use the seeded core RNGs)")


def check_relaxed(rel, lines, errors):
    justified_until = -1
    for i, line in enumerate(lines, 1):
        if RELAXED_OK_RE.search(line):
            justified_until = i + JUSTIFY_WINDOW
        if RELAXED_RE.search(line.split("//", 1)[0]):
            if i <= justified_until:
                # Chain: a justified site extends the window over a
                # contiguous cluster of relaxed operations.
                justified_until = max(justified_until,
                                      i + JUSTIFY_WINDOW)
            else:
                errors.append(
                    f"{rel}:{i}: naked memory_order_relaxed — add a "
                    f"`// relaxed: <why no ordering is needed>` "
                    f"comment within the {JUSTIFY_WINDOW} lines above")


def check_tsa_escape(rel, lines, errors):
    for i, line in enumerate(lines, 1):
        if "QUAC_NO_THREAD_SAFETY_ANALYSIS" not in line:
            continue
        if rel == "src/common/thread_annotations.hh":
            continue  # the definition itself
        if rel not in TSA_ESCAPE_ALLOWED:
            errors.append(
                f"{rel}:{i}: QUAC_NO_THREAD_SAFETY_ANALYSIS outside "
                f"the lock-free ring internals — fix the lock "
                f"discipline instead of suppressing the analysis")
        elif i < 2 or "//" not in lines[i - 2]:
            errors.append(
                f"{rel}:{i}: analysis escape without a one-line "
                f"justification comment directly above")


def check_annotated_mutexes(rel, lines, errors):
    if not rel.startswith(ANNOTATED_MUTEX_DIRS):
        return
    for i, line in enumerate(lines, 1):
        code = line.split("//", 1)[0]
        match = RAW_MUTEX_RE.search(code)
        if match:
            errors.append(
                f"{rel}:{i}: {match.group(0)} in {rel.split('/')[1]}/"
                f" — use quac::Mutex / MutexLock / CondVar from "
                f"common/thread_annotations.hh so the thread-safety "
                f"analysis sees the lock")


def check_headers_self_contained(errors):
    cxx = os.environ.get("CXX", "c++")
    headers = [rel for rel in repo_files()
               if rel.startswith("src/") and rel.endswith(".hh")]
    with tempfile.TemporaryDirectory() as tmp:
        for rel in headers:
            tu = os.path.join(tmp, "tu.cc")
            with open(tu, "w", encoding="utf-8") as fh:
                fh.write(f'#include "{rel[len("src/"):]}"\n')
            proc = subprocess.run(
                [cxx, "-std=c++20", "-fsyntax-only",
                 "-I", os.path.join(REPO, "src"), tu],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first = proc.stderr.strip().splitlines()
                detail = first[0] if first else "compile failed"
                errors.append(
                    f"{rel}: header is not self-contained: {detail}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--include-check", action="store_true",
        help="also compile every src/ header standalone")
    args = parser.parse_args()

    errors = []
    for rel in repo_files():
        lines = read_lines(rel)
        check_rand(rel, lines, errors)
        check_relaxed(rel, lines, errors)
        check_tsa_escape(rel, lines, errors)
        check_annotated_mutexes(rel, lines, errors)
    if args.include_check:
        check_headers_self_contained(errors)

    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"lint_repo: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("lint_repo: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

/**
 * @file
 * Characterization walk-through: the one-time profiling step a
 * system integrator would run on a new module (paper Sections 6 and
 * 8): data-pattern sweep, segment entropy map, cache-block profile,
 * SHA-input-block ranges, and the per-temperature column sets.
 *
 *   ./characterize [--module M1..M17] [--stride N]
 */

#include <cstdio>
#include <string>

#include "common/cli.hh"
#include "common/error.hh"
#include "common/table.hh"
#include "core/characterizer.hh"
#include "core/temperature_table.hh"
#include "dram/catalog.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"module", "stride"});
    std::string name = args.getString("module", "M13");
    uint32_t stride =
        static_cast<uint32_t>(args.getUint("stride", 64));

    const dram::CatalogEntry *entry = nullptr;
    for (const auto &candidate : dram::paperCatalog()) {
        if (candidate.name == name)
            entry = &candidate;
    }
    if (!entry)
        quac::fatal("unknown module '%s' (expected M1..M17)", name.c_str());

    dram::DramModule module(
        dram::specFor(*entry, dram::Geometry::paperScale()));
    core::Characterizer characterizer(module);

    std::printf("Characterizing %s (%s, %u MT/s)\n\n", name.c_str(),
                entry->chipId.c_str(), entry->transferRate);

    // --- Step 1: which init pattern maximizes entropy? -------------
    core::CharacterizerConfig cfg;
    cfg.segmentStride = stride * 4;
    auto sweep = characterizer.patternSweep(cfg);
    uint8_t best_pattern = 0;
    double best_avg = -1.0;
    std::printf("Data pattern sweep (avg cache-block entropy):\n");
    for (const auto &stats : sweep) {
        std::printf("  %s: %6.3f\n",
                    dram::patternToString(stats.pattern).c_str(),
                    stats.avgCacheBlockEntropy);
        if (stats.avgCacheBlockEntropy > best_avg) {
            best_avg = stats.avgCacheBlockEntropy;
            best_pattern = stats.pattern;
        }
    }
    std::printf("-> best pattern: \"%s\" (paper: \"0111\"/\"1000\")\n\n",
                dram::patternToString(best_pattern).c_str());

    // --- Step 2: where is the entropy? ------------------------------
    cfg.pattern = best_pattern;
    cfg.segmentStride = stride;
    core::SegmentEntropy best = characterizer.bestSegment(cfg);
    std::printf("Best segment: %u with %.1f bits (%.1f%% of the 64K "
                "theoretical maximum)\n\n",
                best.segment, best.entropy,
                100.0 * best.entropy / 65536.0);

    // --- Step 3: the controller's temperature table ----------------
    std::printf("Per-temperature SHA-input-block column sets (the "
                "controller stores one set per range, paper "
                "Section 8):\n");
    core::TemperatureTable temp_table = core::TemperatureTable::build(
        module, 0, best.segment, best_pattern);
    Table table({"band (C)", "segment entropy", "SIB", "column set"});
    for (const auto &band : temp_table.bands()) {
        std::string set;
        for (const auto &range : band.ranges) {
            set += "[" + std::to_string(range.beginColumn) + "," +
                   std::to_string(range.endColumn) + ") ";
        }
        table.addRow({"[" + Table::num(band.minC, 0) + ", " +
                          Table::num(band.maxC, 0) + ")",
                      Table::num(band.segmentEntropy, 1),
                      std::to_string(band.ranges.size()), set});
    }
    table.print();
    std::printf("\nEach range carries >= 256 bits of Shannon entropy "
                "at any temperature inside its band and becomes one "
                "SHA-256 input block. Controller storage: %zu bits "
                "of column addresses (Section 9 budget: 770).\n",
                temp_table.storageBits());

    // At run time the controller just looks its band up:
    const auto &at65 = temp_table.lookup(65.0);
    std::printf("lookup(65 C) -> band [%.0f, %.0f) with %zu blocks\n",
                at65.minC, at65.maxC, at65.ranges.size());
    return 0;
}

/**
 * @file
 * Quickstart: build a simulated DDR4 module, stand up QUAC-TRNG on
 * it, and generate random numbers.
 *
 *   ./quickstart [--bytes N] [--seed S] [--reference-sense]
 */

#include <cstdio>

#include "common/cli.hh"
#include "core/trng.hh"
#include "dram/catalog.hh"

int
main(int argc, char **argv)
{
    quac::CliArgs args(argc, argv, {"bytes", "seed", "reference-sense"});
    size_t nbytes = args.getUint("bytes", 64);

    // 1. Instantiate a simulated module. Catalog modules reproduce
    //    the entropy profiles of the paper's 17 characterized DIMMs;
    //    a custom ModuleSpec works too.
    quac::dram::ModuleSpec spec = quac::dram::specFor(
        quac::dram::paperCatalog()[12], // M13, the best module
        quac::dram::Geometry::paperScale(),
        args.getUint("seed", 0));
    // --reference-sense selects the scalar sensing oracle instead of
    // the batched SIMD kernel (for validation/measurement).
    spec.fastSense = !args.getBool("reference-sense");
    quac::dram::DramModule module(std::move(spec));

    // 2. Attach the TRNG. setup() runs the one-time characterization:
    //    it finds the highest-entropy segment in each bank group,
    //    reserves the all-0s/all-1s init rows, and derives the
    //    SHA-input-block column ranges.
    quac::core::QuacTrng trng(module);
    trng.setup();

    std::printf("QUAC-TRNG on module %s (%u MT/s)\n",
                module.spec().name.c_str(),
                module.spec().transferRate);
    for (const auto &plan : trng.plans()) {
        std::printf("  bank %u -> segment %u (%.0f bits of entropy, "
                    "%zu blocks/iteration)\n",
                    plan.bank, plan.segment, plan.segmentEntropy,
                    plan.ranges.size());
    }
    std::printf("bits per iteration: %zu\n\n", trng.bitsPerIteration());

    // 3. Generate random data.
    std::vector<uint8_t> bytes = trng.generate(nbytes);
    std::printf("%zu random bytes:\n", bytes.size());
    for (size_t i = 0; i < bytes.size(); ++i)
        std::printf("%02x%s", bytes[i], (i + 1) % 32 ? "" : "\n");
    if (bytes.size() % 32)
        std::printf("\n");

    // 4. Or draw 256-bit values directly (the paper's native output).
    auto value = trng.random256();
    std::printf("\none 256-bit random number: ");
    for (uint8_t byte : value)
        std::printf("%02x", byte);
    std::printf("\n(%llu QUAC iterations executed)\n",
                static_cast<unsigned long long>(trng.iterations()));
    return 0;
}

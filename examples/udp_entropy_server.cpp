/**
 * @file
 * Standalone UDP entropy server: the sharded EntropyService behind
 * the epoll front end, servable with any UDP client that speaks the
 * 32-byte wire protocol (net/wire.hh) — the bundled load generator
 * (`net_loadgen`) or a few lines of Python.
 *
 * Backends are deterministic SoftwareTrng generators by default so
 * the example runs anywhere instantly; pass --modules N to stand up
 * N full QUAC-TRNG module models instead (slower start, real
 * pipeline). The server prints the bound port (--port 0 picks an
 * ephemeral one), serves until SIGINT/SIGTERM, then prints the full
 * wire/service accounting: every well-formed request is either an
 * OK/PARTIAL serve or an explicit DENY — the final table proves it.
 *
 * Flags:
 *   --port P          UDP port (default 9876; 0 = ephemeral)
 *   --bind A          bind address (default 127.0.0.1)
 *   --backends N      SoftwareTrng backends/shards (default 4)
 *   --modules N       use N QUAC-TRNG module models instead
 *   --batch N         messages per recvmmsg/sendmmsg (default 16)
 *   --clients N       wire-client table capacity (default 4096)
 *   --client-rate B   per-client pacing, payload bytes/s (0 = off)
 *   --global-rate B   global serve cap, payload bytes/s (0 = off)
 *   --slo-ns S        enable SLO admission with this interactive p99
 *   --quiet           skip the per-second status line
 */

#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "core/fault_injection.hh"
#include "core/trng.hh"
#include "dram/catalog.hh"
#include "net/udp_server.hh"
#include "service/entropy_service.hh"

using namespace quac;

namespace
{

net::UdpServer *g_server = nullptr;

void
onSignal(int)
{
    if (g_server != nullptr)
        g_server->stop(); // one eventfd write; async-signal-safe
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"port", "bind", "backends", "modules", "batch",
                  "clients", "client-rate", "global-rate", "slo-ns",
                  "quiet"});

    size_t nmodules = args.getUint("modules", 0);
    size_t nbackends = args.getUint("backends", 4);
    bool quiet = args.getBool("quiet");

    std::vector<std::unique_ptr<dram::DramModule>> modules;
    std::vector<std::unique_ptr<core::QuacTrng>> trngs;
    std::vector<std::unique_ptr<core::SoftwareTrng>> soft;
    std::vector<core::Trng *> backends;
    if (nmodules > 0) {
        std::printf("Standing up %zu QUAC-TRNG modules...\n",
                    nmodules);
        for (size_t m = 0; m < nmodules; ++m) {
            dram::ModuleSpec spec =
                dram::specFor(dram::paperCatalog()[m % 5],
                              dram::Geometry::testScale());
            spec.seed += m;
            modules.push_back(std::make_unique<dram::DramModule>(
                std::move(spec)));
            // Test-scale rows hold less entropy than the paper-scale
            // 256-bit SIB target; scale the target with the row.
            core::QuacTrngConfig tcfg;
            tcfg.sibEntropyTarget = 24.0;
            tcfg.characterizeStride = 4;
            auto trng = std::make_unique<core::QuacTrng>(
                *modules.back(), tcfg);
            trng->setup();
            backends.push_back(trng.get());
            trngs.push_back(std::move(trng));
        }
    } else {
        for (size_t b = 0; b < nbackends; ++b) {
            soft.push_back(std::make_unique<core::SoftwareTrng>(
                1 + b, "sw" + std::to_string(b)));
            backends.push_back(soft.back().get());
        }
    }

    service::EntropyServiceConfig scfg;
    scfg.shardCapacityBytes = 64 * 1024;
    scfg.placement = service::PlacementPolicy::LeastLoaded;
    double slo_ns = args.getDouble("slo-ns", 0.0);
    if (slo_ns > 0.0) {
        scfg.admission.enabled = true;
        scfg.admission.interactiveSloNs = slo_ns;
    }
    service::EntropyService service(backends, scfg);

    net::UdpServerConfig ucfg;
    ucfg.bindAddress = args.getString("bind", "127.0.0.1");
    ucfg.port = static_cast<uint16_t>(args.getUint("port", 9876));
    ucfg.batchMessages =
        static_cast<unsigned>(args.getUint("batch", 16));
    ucfg.table.capacity = args.getUint("clients", 4096);
    ucfg.table.perClientBytesPerSec =
        args.getDouble("client-rate", 0.0);
    ucfg.globalBytesPerSec = args.getDouble("global-rate", 0.0);
    net::UdpServer server(service, ucfg);

    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::printf("udp_entropy_server listening on %s:%u "
                "(%zu backends, batch %u)\n",
                ucfg.bindAddress.c_str(), server.port(),
                backends.size(), ucfg.batchMessages);
    std::fflush(stdout);

    std::atomic<bool> done{false};
    std::thread status;
    if (!quiet) {
        status = std::thread([&] {
            uint64_t last = 0;
            // relaxed: shutdown flag; no data is published through it.
            while (!done.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::seconds(1));
                // Single-threaded loop owns the stats; this reads a
                // monotonically-growing counter, good enough for a
                // status line.
                uint64_t now = server.stats().wellFormed;
                if (now != last) {
                    std::printf("  %" PRIu64 " req/s\n", now - last);
                    std::fflush(stdout);
                    last = now;
                }
            }
        });
    }

    server.run();
    // relaxed: shutdown flag; the join below synchronizes.
    done.store(true, std::memory_order_relaxed);
    if (status.joinable())
        status.join();

    const net::UdpServerStats &stats = server.stats();
    std::printf("\nShut down. Accounting:\n");
    std::printf("  datagrams received : %" PRIu64 "\n",
                stats.datagramsReceived);
    std::printf("  malformed (dropped): %" PRIu64 "\n",
                stats.malformedTotal());
    std::printf("  well-formed        : %" PRIu64 "\n",
                stats.wellFormed);
    std::printf("  responses sent     : %" PRIu64 "\n",
                stats.responsesSent);
    for (size_t s = 0; s < net::kStatusCount; ++s) {
        if (stats.responses[s] > 0)
            std::printf("    %-16s : %" PRIu64 "\n",
                        net::statusName(
                            static_cast<net::Status>(s)),
                        stats.responses[s]);
    }
    std::printf("  payload bytes      : %" PRIu64 "\n",
                stats.payloadBytesServed);
    uint64_t answered = 0;
    for (uint64_t r : stats.responses)
        answered += r;
    std::printf("  every well-formed request answered: %s\n",
                answered == stats.wellFormed ? "yes" : "NO");
    return answered == stats.wellFormed ? 0 : 1;
}

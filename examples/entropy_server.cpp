/**
 * @file
 * Entropy-server demo: the paper's Section 9 system design scaled to
 * many clients. A pool of QUAC-TRNGs (one per simulated module)
 * feeds the sharded entropy service; a scenario's client population
 * (interactive key minting, standard consumers, bulk buffer-only
 * drains) issues requests each tick while the scheduler-aware refill
 * loop tops the shards up with idle DRAM bandwidth under a selectable
 * DR-STRaNGe fairness policy.
 *
 * The refill loop runs per memory channel: shards are placed across
 * --channels channels (heterogeneous co-runners via corunnerMix),
 * each channel arbitrates its own granted time, and --rebalance lets
 * persistently starved shards migrate to channels with headroom.
 * Requests are timestamped in simulated channel time, so the demo
 * also reports the modelled end-to-end latency distribution per
 * priority class (DR-STRaNGe's request-latency view).
 *
 * Client placement closes the loop: --placement least-loaded pins
 * interactive clients to the least-loaded shard at connect, and
 * --slo-ns enables SLO-driven migration (interactive p99 above the
 * target moves the client to a better shard, with hysteresis; the
 * rebalancer switches to the measured-latency trigger too).
 *
 * --health turns on the streaming SP 800-90B monitor: every byte a
 * backend bank produces is scored (repetition-count, adaptive-
 * proportion, windowed monobit/serial), failing banks are
 * quarantined and their shards re-sourced from the remaining pool,
 * and the run report gains a per-bank health table plus the recorded
 * quarantine/re-admission transitions. --fault-inject plants
 * deterministic faults at the backend boundary to watch it work:
 * a comma-separated list of "<bank>:<mode>:<start>:<len>[:<param>]"
 * specs (mode stuck|bias|fail; len 0 = permanent; param = stuck byte
 * value or P(one) for bias), e.g. "1:bias:4096:65536:0.9" biases
 * bank 1 toward ones for 64 KiB starting at byte offset 4096.
 * Malformed specs are fatal, as is a bank index outside the pool.
 *
 * --campaign runs a timed failure campaign against the live server
 * (scenario::ScenarioSpec syntax): comma-separated phases of
 * "chfail:<ch>:<start>:<len>" (channel outage + recovery),
 * "drift:<start>:<len>:<fromC>:<toC>" (online thermal recalibration
 * of backend 0 through a core::ThermalGovernor),
 * "crowd:<start>:<len>:<clients>[:<bytes>]" (a bulk connect burst
 * through the SLO-aware admission gate, enabled automatically), and
 * "fault:<FaultSpec>" (armed at the backend boundary like
 * --fault-inject, so it requires --health). Malformed or overlapping
 * phases are fatal; the run report gains a campaign section.
 *
 *   ./entropy_server [--scenario web-keyserver]
 *                    [--policy buffered-fair|fcfs|rng-priority]
 *                    [--modules 2] [--ticks 200] [--capacity 16384]
 *                    [--channels 2] [--shards 4] [--rebalance]
 *                    [--placement round-robin|least-loaded]
 *                    [--slo-ns 100]
 *                    [--health] [--health-window 16384]
 *                    [--fault-inject 1:bias:4096:65536:0.9]
 *                    [--campaign "chfail:0:40:40,crowd:100:10:12:512"]
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/error.hh"
#include "common/table.hh"
#include "core/fault_injection.hh"
#include "core/trng.hh"
#include "dram/catalog.hh"
#include "scenario/scenario.hh"
#include "service/placement.hh"
#include "service/refill_scheduler.hh"
#include "sysperf/channel_sim.hh"
#include "sysperf/workloads.hh"

using namespace quac;

namespace
{

service::PlacementPolicy
parsePlacement(const std::string &name)
{
    for (auto policy : {service::PlacementPolicy::RoundRobin,
                        service::PlacementPolicy::LeastLoaded}) {
        if (name == service::placementPolicyName(policy))
            return policy;
    }
    fatal("unknown placement '%s' (round-robin, least-loaded)",
          name.c_str());
}

service::Priority
mapPriority(unsigned priority)
{
    switch (priority) {
    case 0: return service::Priority::Interactive;
    case 1: return service::Priority::Standard;
    default: return service::Priority::Bulk;
    }
}

/** One connected client plus its fractional request budget. */
struct DrivenClient
{
    service::EntropyService::Client handle;
    const sysperf::EntropyClientClass *cls;
    double pendingRequests = 0.0;
};

/**
 * Parse a comma-separated --fault-inject list. Each element is a
 * FaultSpec "<bank>:<mode>:<start>:<len>[:<param>]"; malformed specs
 * and out-of-pool bank indices are fatal.
 */
std::vector<core::FaultSpec>
parseFaultSpecs(const std::string &text, size_t nbanks)
{
    std::vector<core::FaultSpec> specs;
    size_t start = 0;
    while (start <= text.size()) {
        size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        std::string item = text.substr(start, comma - start);
        if (item.empty())
            fatal("--fault-inject: empty spec in '%s'", text.c_str());
        core::FaultSpec spec = core::FaultSpec::parse(item);
        if (spec.bank >= nbanks)
            fatal("--fault-inject: bank %zu out of range (pool has "
                  "%zu banks)",
                  spec.bank, nbanks);
        specs.push_back(spec);
        start = comma + 1;
    }
    return specs;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"scenario", "policy", "modules", "ticks", "capacity",
                  "channels", "shards", "rebalance", "placement",
                  "slo-ns", "health", "health-window", "fault-inject",
                  "campaign"});
    const sysperf::ServiceScenario &scenario = sysperf::serviceScenario(
        args.getString("scenario", "web-keyserver"));
    sysperf::FairnessPolicy policy = sysperf::fairnessPolicyFromName(
        args.getString("policy", "buffered-fair"));
    size_t nmodules = args.getUint("modules", 2);
    if (nmodules == 0)
        fatal("--modules must be >= 1");
    uint64_t ticks = args.getUint("ticks", 200);
    size_t capacity = args.getUint("capacity", 16384);
    if (capacity == 0)
        fatal("--capacity must be > 0 (shards need a buffer)");
    unsigned channels =
        static_cast<unsigned>(args.getUint("channels", 2));
    if (channels == 0)
        fatal("--channels must be >= 1");
    // 0 = one shard per backend (the service default); an explicit
    // --shards 0 is a config error, not a silent fallback.
    size_t nshards = args.getUint("shards", 0);
    if (args.has("shards") && nshards == 0)
        fatal("--shards must be >= 1");
    bool rebalance = args.getBool("rebalance");
    service::PlacementPolicy placement =
        parsePlacement(args.getString("placement", "round-robin"));
    double slo_ns = args.getDouble("slo-ns", 0.0);
    if (slo_ns < 0.0)
        fatal("--slo-ns must be >= 0 (0 disables migration)");
    bool health = args.getBool("health");
    size_t health_window = args.getUint("health-window", 16384);
    if (args.has("health-window") && !health)
        fatal("--health-window requires --health");
    std::string fault_text = args.getString("fault-inject", "");
    if (!fault_text.empty() && !health)
        fatal("--fault-inject requires --health (faults would go "
              "undetected)");
    scenario::ScenarioSpec campaign =
        scenario::ScenarioSpec::parse(args.getString("campaign", ""));
    bool run_campaign = !campaign.phases.empty();
    if (!campaign.faultSpecs().empty() && !health)
        fatal("--campaign fault phases require --health (faults "
              "would go undetected)");
    bool campaign_crowd = false;
    bool campaign_drift = false;
    for (const scenario::PhaseSpec &phase : campaign.phases) {
        if (phase.kind == scenario::PhaseKind::FlashCrowd)
            campaign_crowd = true;
        if (phase.kind == scenario::PhaseKind::ThermalDrift)
            campaign_drift = true;
    }

    // One QUAC-TRNG per simulated module (test-scale geometry keeps
    // the demo snappy; the service layer is geometry-agnostic).
    std::printf("Standing up %zu QUAC-TRNG backends...\n", nmodules);
    std::vector<std::unique_ptr<dram::DramModule>> modules;
    std::vector<std::unique_ptr<core::QuacTrng>> trngs;
    std::vector<core::Trng *> pool;
    for (size_t m = 0; m < nmodules; ++m) {
        dram::ModuleSpec spec =
            dram::specFor(dram::paperCatalog()[m % 5],
                          dram::Geometry::testScale());
        spec.seed += m;
        modules.push_back(
            std::make_unique<dram::DramModule>(std::move(spec)));
        // Test-scale rows hold less entropy than the paper-scale
        // 256-bit SIB target; scale the harvest target with the row.
        core::QuacTrngConfig tcfg;
        tcfg.sibEntropyTarget = 24.0;
        tcfg.characterizeStride = 4;
        auto trng = std::make_unique<core::QuacTrng>(*modules.back(),
                                                     tcfg);
        trng->setup();
        std::printf("  %s: %zu bits/iteration\n",
                    modules.back()->spec().name.c_str(),
                    trng->bitsPerIteration());
        pool.push_back(trng.get());
        trngs.push_back(std::move(trng));
    }

    // Plant any requested faults at the backend boundary; the wrapper
    // is transparent outside its configured byte windows.
    std::vector<std::unique_ptr<core::FaultInjectedTrng>> faulty;
    if (!fault_text.empty()) {
        for (const core::FaultSpec &spec :
             parseFaultSpecs(fault_text, pool.size())) {
            faulty.push_back(std::make_unique<core::FaultInjectedTrng>(
                *pool[spec.bank], spec));
            pool[spec.bank] = faulty.back().get();
            std::printf("  fault: %s\n",
                        faulty.back()->spec().describe().c_str());
        }
    }

    // A campaign's fault phases are armed the same way: the spec
    // travels with the campaign string, the wrapper sits at the
    // backend boundary before the service is built. Validate the
    // whole campaign now so a bad spec dies before the run starts.
    if (run_campaign) {
        campaign.validate(channels, pool.size());
        for (const core::FaultSpec &spec : campaign.faultSpecs()) {
            faulty.push_back(std::make_unique<core::FaultInjectedTrng>(
                *pool[spec.bank], spec));
            pool[spec.bank] = faulty.back().get();
            std::printf("  campaign fault: %s\n",
                        faulty.back()->spec().describe().c_str());
        }
    }

    service::EntropyServiceConfig scfg;
    scfg.shards = nshards;
    scfg.shardCapacityBytes = capacity;
    scfg.refillWatermark = 0.75;
    scfg.panicWatermark = 0.25;
    scfg.placement = placement;
    scfg.health.enabled = health;
    scfg.health.windowBits = health_window;
    if (campaign_crowd) {
        // Crowd phases flow through the SLO-aware admission gate;
        // the interactive SLO doubles as the gate's target when no
        // explicit --slo-ns was given.
        scfg.admission.enabled = true;
        scfg.admission.interactiveSloNs =
            slo_ns > 0.0 ? slo_ns : 400.0;
    }
    service::EntropyService svc(pool, scfg);
    svc.refillBelowWatermark();

    service::MultiChannelRefillConfig rcfg;
    rcfg.topology.channels = channels;
    rcfg.policy = policy;
    rcfg.tickNs = 1.0e5; // 0.1 ms
    rcfg.rebalance = rebalance;
    rcfg.installLatencyCost = true;
    if (slo_ns > 0.0 && rebalance) {
        // With an SLO the rebalancer runs closed-loop too: the
        // measured per-shard tail, not the grant ratio, flags
        // starved shards.
        rcfg.trigger = service::RebalanceTrigger::ShardLatency;
        rcfg.rebalanceSloNs = slo_ns;
    }
    std::vector<sysperf::WorkloadProfile> traffic =
        sysperf::corunnerMix(scenario.memoryTraffic, channels);
    service::MultiChannelRefillScheduler scheduler(svc, traffic, rcfg);

    // SLO-driven client migration: interactive clients get the
    // target itself, standard clients four times the slack; bulk is
    // buffer-only backpressure and never migrates.
    service::SloMigratorConfig migcfg;
    migcfg.slo[0] = {0.0, slo_ns};
    migcfg.slo[1] = {0.0, 4.0 * slo_ns};
    service::SloMigrator migrator(svc, migcfg);

    // Drift phases recalibrate backend 0 online through a thermal
    // governor (one temperature table per activation plan, built
    // up front; band-edge crossings switch the live column sets).
    std::unique_ptr<core::ThermalGovernor> governor;
    if (campaign_drift) {
        std::printf("Building thermal bands for %s...\n",
                    modules[0]->spec().name.c_str());
        governor = std::make_unique<core::ThermalGovernor>(
            *modules[0], *trngs[0], core::ThermalGovernorConfig{});
    }
    std::unique_ptr<scenario::ScenarioEngine> engine;
    if (run_campaign) {
        engine = std::make_unique<scenario::ScenarioEngine>(
            svc, scheduler, campaign, governor.get());
        std::printf("Campaign: %s (last event at tick %llu)\n",
                    campaign.describe().c_str(),
                    static_cast<unsigned long long>(
                        campaign.lastEventTick()));
    }

    std::printf("\nScenario '%s': %u clients over %zu shards on %u "
                "channels, policy %s, rebalance %s\n",
                scenario.name.c_str(), scenario.totalClients(),
                svc.shardCount(), channels,
                sysperf::fairnessPolicyName(policy),
                rebalance ? "on" : "off");
    std::printf("Placement %s, SLO %s (interactive p99 target "
                "%.0f ns)\n",
                service::placementPolicyName(placement),
                slo_ns > 0.0 ? "on" : "off", slo_ns);
    for (unsigned c = 0; c < channels; ++c) {
        std::printf("  channel %u co-runner '%s' (%.0f%% busy)\n", c,
                    traffic[c].name.c_str(),
                    100.0 * traffic[c].busUtilization);
    }

    std::vector<DrivenClient> clients;
    for (const auto &cls : scenario.clientClasses) {
        for (unsigned c = 0; c < cls.clients; ++c) {
            clients.push_back({svc.connect(cls.name + "/" +
                                               std::to_string(c),
                                           mapPriority(cls.priority)),
                               &cls});
            if (slo_ns > 0.0 &&
                mapPriority(cls.priority) != service::Priority::Bulk)
                migrator.manage(clients.back().handle);
        }
    }

    // Drive: each tick every client issues its share of requests
    // (timestamped in simulated channel time, spread across the
    // tick), then the controller refills with whatever each
    // channel's policy grants. Requests are merged into arrival
    // order before issuing so the latency model's per-shard queue
    // only ever charges a request for work that arrived before it.
    std::vector<uint8_t> sink(1 << 20);
    const double tick_ms = rcfg.tickNs * 1e-6;
    struct Arrival
    {
        double at;
        size_t client;
    };
    std::vector<Arrival> arrivals;
    for (uint64_t t = 0; t < ticks; ++t) {
        double tick_start = static_cast<double>(t) * rcfg.tickNs;
        arrivals.clear();
        for (size_t i = 0; i < clients.size(); ++i) {
            DrivenClient &client = clients[i];
            client.pendingRequests +=
                client.cls->requestsPerMs * tick_ms;
            unsigned n = static_cast<unsigned>(client.pendingRequests);
            for (unsigned j = 0; j < n; ++j) {
                arrivals.push_back(
                    {tick_start + (j + 0.5) * rcfg.tickNs / n, i});
            }
            client.pendingRequests -= n;
        }
        std::sort(arrivals.begin(), arrivals.end(),
                  [](const Arrival &a, const Arrival &b) {
                      return a.at != b.at ? a.at < b.at
                                          : a.client < b.client;
                  });
        for (const Arrival &arrival : arrivals) {
            DrivenClient &client = clients[arrival.client];
            client.handle.requestAt(sink.data(),
                                    client.cls->requestBytes,
                                    arrival.at);
        }
        if (engine) {
            // Campaign edges land after the tick's foreground
            // traffic (connects are priced on the tail it just
            // produced) and before the refill; admitted crowd
            // clients drain bulk bytes late in each tick.
            size_t idx = 0;
            for (const scenario::ScenarioEngine::CrowdClient &crowd :
                 engine->crowdClients()) {
                service::EntropyService::Client client = crowd.client;
                size_t bytes =
                    crowd.requestBytes > 0 ? crowd.requestBytes : 1024;
                client.requestAt(sink.data(), bytes,
                                 tick_start + 0.9 * rcfg.tickNs +
                                     static_cast<double>(idx++));
            }
            engine->beginTick(t);
        }
        scheduler.tick();
        if (slo_ns > 0.0)
            migrator.tick();
    }

    // Per-class outcomes.
    Table table({"class", "priority", "requests", "hit rate",
                 "sync fills", "partial", "KB served"});
    for (const auto &cls : scenario.clientClasses) {
        service::ClientStats total;
        for (const DrivenClient &client : clients) {
            if (client.cls != &cls)
                continue;
            service::ClientStats stats = client.handle.stats();
            total.requests += stats.requests;
            total.bufferHits += stats.bufferHits;
            total.synchronousFills += stats.synchronousFills;
            total.partialServes += stats.partialServes;
            total.bytesServed += stats.bytesServed;
        }
        double hit_rate =
            total.requests
                ? static_cast<double>(total.bufferHits) /
                      static_cast<double>(total.requests)
                : 0.0;
        table.addRow({cls.name,
                      service::priorityName(mapPriority(cls.priority)),
                      std::to_string(total.requests),
                      Table::num(hit_rate, 3),
                      std::to_string(total.synchronousFills),
                      std::to_string(total.partialServes),
                      Table::num(static_cast<double>(total.bytesServed) /
                                     1024.0,
                                 1)});
    }
    table.print();

    // Modelled end-to-end latency per priority class.
    Table latency({"priority", "requests", "p50 ns", "p95 ns",
                   "p99 ns", "max ns"});
    for (auto priority : {service::Priority::Interactive,
                          service::Priority::Standard,
                          service::Priority::Bulk}) {
        service::LatencyDistribution dist =
            svc.latencySnapshot(priority);
        if (dist.count() == 0)
            continue;
        latency.addRow({service::priorityName(priority),
                        std::to_string(dist.count()),
                        Table::num(dist.p50Ns(), 0),
                        Table::num(dist.p95Ns(), 0),
                        Table::num(dist.p99Ns(), 0),
                        Table::num(dist.maxNs(), 0)});
    }
    std::printf("\nModelled request latency:\n");
    latency.print();

    // Per-channel refill accounting.
    Table per_channel({"channel", "co-runner", "refill Gb/s",
                       "granted/needed", "mem slowdown", "shards"});
    for (unsigned c = 0; c < channels; ++c) {
        const service::RefillAccounting &ch = scheduler.channelTotal(c);
        size_t shards_on = 0;
        for (size_t s = 0; s < svc.shardCount(); ++s) {
            if (scheduler.placement().channelOfShard[s] == c)
                ++shards_on;
        }
        per_channel.addRow(
            {std::to_string(c), traffic[c].name,
             Table::num(ch.refillGbps(), 3),
             Table::num(ch.neededNs > 0.0
                            ? ch.grantedNs / ch.neededNs
                            : 1.0,
                        3),
             Table::num(ch.memSlowdown(), 3),
             std::to_string(shards_on)});
    }
    std::printf("\nPer-channel refill:\n");
    per_channel.print();

    const service::RefillAccounting &acct = scheduler.total();
    std::printf("\nRefill loop over %.1f ms of channel time:\n",
                acct.modeledNs * 1e-6);
    std::printf("  refilled %.1f KB (%.3f Gb/s sustained)\n",
                static_cast<double>(acct.bytesRefilled) / 1024.0,
                acct.refillGbps());
    std::printf("  granted %.0f of %.0f us needed (idle usable %.0f "
                "us)\n",
                acct.grantedNs * 1e-3, acct.neededNs * 1e-3,
                acct.usableIdleNs * 1e-3);
    std::printf("  memory-traffic slowdown: %.3f (policy %s), "
                "%llu shard migrations, %llu client migrations\n",
                acct.memSlowdown(),
                sysperf::fairnessPolicyName(policy),
                static_cast<unsigned long long>(
                    scheduler.migrations()),
                static_cast<unsigned long long>(
                    migrator.migrations()));
    std::printf("  service: %llu requests, %llu hits, %llu sync "
                "fills, %llu bytes refilled\n",
                static_cast<unsigned long long>(svc.requestsServed()),
                static_cast<unsigned long long>(svc.bufferHits()),
                static_cast<unsigned long long>(svc.synchronousFills()),
                static_cast<unsigned long long>(svc.bytesRefilled()));

    if (engine) {
        const scenario::ScenarioEngine::Counters &cc =
            engine->counters();
        service::EntropyService::AdmissionStats astats =
            svc.admissionStats();
        std::printf("\nCampaign effects:\n");
        std::printf("  %llu channel failures, %llu recoveries "
                    "(%llu shard failovers, %llu failbacks)\n",
                    static_cast<unsigned long long>(
                        cc.channelFailures),
                    static_cast<unsigned long long>(
                        cc.channelRecoveries),
                    static_cast<unsigned long long>(
                        scheduler.failovers()),
                    static_cast<unsigned long long>(
                        scheduler.failbacks()));
        if (governor) {
            std::printf("  %llu thermal band switches, %llu suspect "
                        "bytes flushed, final band %zu at %.1f degC\n",
                        static_cast<unsigned long long>(
                            cc.bandSwitches),
                        static_cast<unsigned long long>(
                            cc.suspectBytesDropped),
                        governor->bandIndex(),
                        governor->temperature());
        }
        std::printf("  crowd: %llu attempted, %llu admitted "
                    "(%llu via queue), %llu denied, %llu still "
                    "queued\n",
                    static_cast<unsigned long long>(cc.crowdAttempted),
                    static_cast<unsigned long long>(cc.crowdAdmitted),
                    static_cast<unsigned long long>(
                        astats.admittedFromQueue),
                    static_cast<unsigned long long>(cc.crowdDenied),
                    static_cast<unsigned long long>(astats.queuedNow));
        if (scheduler.escalatedTicks() > 0) {
            std::printf("  refill policy escalated for %llu "
                        "channel-ticks\n",
                        static_cast<unsigned long long>(
                            scheduler.escalatedTicks()));
        }
    }

    if (const service::HealthMonitor *monitor = svc.healthMonitor()) {
        service::EntropyService::HealthStats hstats =
            svc.healthStats();
        std::printf("\nBank health (window %zu bits, RCT cutoff "
                    "%llu, APT cutoff %llu/%zu):\n",
                    monitor->config().windowBits,
                    static_cast<unsigned long long>(
                        monitor->rctCutoff()),
                    static_cast<unsigned long long>(
                        monitor->aptCutoff()),
                    nist::kAptWindowBits);
        Table banks({"bank", "backend", "state", "windows", "failed",
                     "quarantines", "readmits", "last min-p"});
        std::vector<service::BankScore> scores = monitor->scores();
        for (size_t b = 0; b < scores.size(); ++b) {
            const service::BankScore &score = scores[b];
            banks.addRow(
                {std::to_string(b), pool[b]->name(),
                 service::bankStateName(score.state),
                 std::to_string(score.windowsTested),
                 std::to_string(score.windowsFailed),
                 std::to_string(score.quarantines),
                 std::to_string(score.readmissions),
                 score.windowsTested ? Table::num(score.lastMinP, 6)
                                     : "-"});
        }
        banks.print();
        std::printf("  %llu quarantines, %llu re-admissions, %llu "
                    "refill failures survived\n",
                    static_cast<unsigned long long>(
                        hstats.quarantines),
                    static_cast<unsigned long long>(
                        hstats.readmissions),
                    static_cast<unsigned long long>(
                        hstats.refillFailures));
        std::printf("  %llu unhealthy bytes dropped, %llu served "
                    "(must be 0), %llu shard re-sourcings\n",
                    static_cast<unsigned long long>(
                        hstats.unhealthyBytesDropped),
                    static_cast<unsigned long long>(
                        hstats.unhealthyBytesServed),
                    static_cast<unsigned long long>(
                        hstats.shardResourcings));
        for (const service::HealthEvent &event : monitor->events()) {
            std::printf("  [window %llu] bank %zu %s: %s "
                        "(min-p %.3g)\n",
                        static_cast<unsigned long long>(event.window),
                        event.bank,
                        service::healthEventKindName(event.kind),
                        event.reason.c_str(), event.minP);
        }
        if (hstats.unhealthyBytesServed != 0) {
            std::fprintf(stderr,
                         "ERROR: unhealthy bytes were served\n");
            return 1;
        }
    }
    return 0;
}

/**
 * @file
 * Entropy-server demo: the paper's Section 9 system design scaled to
 * many clients. A pool of QUAC-TRNGs (one per simulated module)
 * feeds the sharded entropy service; a scenario's client population
 * (interactive key minting, standard consumers, bulk buffer-only
 * drains) issues requests each tick while the scheduler-aware refill
 * loop tops the shards up with idle DRAM bandwidth under a selectable
 * DR-STRaNGe fairness policy.
 *
 *   ./entropy_server [--scenario web-keyserver]
 *                    [--policy buffered-fair|fcfs|rng-priority]
 *                    [--modules 2] [--ticks 200] [--capacity 16384]
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/error.hh"
#include "common/table.hh"
#include "core/trng.hh"
#include "dram/catalog.hh"
#include "service/refill_scheduler.hh"
#include "sysperf/workloads.hh"

using namespace quac;

namespace
{

sysperf::FairnessPolicy
parsePolicy(const std::string &name)
{
    for (auto policy : {sysperf::FairnessPolicy::Fcfs,
                        sysperf::FairnessPolicy::RngPriority,
                        sysperf::FairnessPolicy::BufferedFair}) {
        if (name == sysperf::fairnessPolicyName(policy))
            return policy;
    }
    fatal("unknown policy '%s' (fcfs, rng-priority, buffered-fair)",
          name.c_str());
}

service::Priority
mapPriority(unsigned priority)
{
    switch (priority) {
    case 0: return service::Priority::Interactive;
    case 1: return service::Priority::Standard;
    default: return service::Priority::Bulk;
    }
}

/** One connected client plus its fractional request budget. */
struct DrivenClient
{
    service::EntropyService::Client handle;
    const sysperf::EntropyClientClass *cls;
    double pendingRequests = 0.0;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"scenario", "policy", "modules", "ticks", "capacity"});
    const sysperf::ServiceScenario &scenario = sysperf::serviceScenario(
        args.getString("scenario", "web-keyserver"));
    sysperf::FairnessPolicy policy =
        parsePolicy(args.getString("policy", "buffered-fair"));
    size_t nmodules = args.getUint("modules", 2);
    uint64_t ticks = args.getUint("ticks", 200);
    size_t capacity = args.getUint("capacity", 16384);

    // One QUAC-TRNG per simulated module (test-scale geometry keeps
    // the demo snappy; the service layer is geometry-agnostic).
    std::printf("Standing up %zu QUAC-TRNG backends...\n", nmodules);
    std::vector<std::unique_ptr<dram::DramModule>> modules;
    std::vector<std::unique_ptr<core::QuacTrng>> trngs;
    std::vector<core::Trng *> pool;
    for (size_t m = 0; m < nmodules; ++m) {
        dram::ModuleSpec spec =
            dram::specFor(dram::paperCatalog()[m % 5],
                          dram::Geometry::testScale());
        spec.seed += m;
        modules.push_back(
            std::make_unique<dram::DramModule>(std::move(spec)));
        // Test-scale rows hold less entropy than the paper-scale
        // 256-bit SIB target; scale the harvest target with the row.
        core::QuacTrngConfig tcfg;
        tcfg.sibEntropyTarget = 24.0;
        tcfg.characterizeStride = 4;
        auto trng = std::make_unique<core::QuacTrng>(*modules.back(),
                                                     tcfg);
        trng->setup();
        std::printf("  %s: %zu bits/iteration\n",
                    modules.back()->spec().name.c_str(),
                    trng->bitsPerIteration());
        pool.push_back(trng.get());
        trngs.push_back(std::move(trng));
    }

    service::EntropyService svc(pool,
                                {.shardCapacityBytes = capacity,
                                 .refillWatermark = 0.75,
                                 .panicWatermark = 0.25});
    svc.refillBelowWatermark();

    service::RefillSchedulerConfig rcfg;
    rcfg.policy = policy;
    rcfg.tickNs = 1.0e5; // 0.1 ms
    service::RefillScheduler scheduler(svc, scenario.memoryTraffic,
                                       rcfg);

    std::printf("\nScenario '%s': %u clients over %zu shards, "
                "policy %s, co-runner '%s' (%.0f%% channel busy)\n",
                scenario.name.c_str(), scenario.totalClients(),
                svc.shardCount(), sysperf::fairnessPolicyName(policy),
                scenario.memoryTraffic.name.c_str(),
                100.0 * scenario.memoryTraffic.busUtilization);

    std::vector<DrivenClient> clients;
    for (const auto &cls : scenario.clientClasses) {
        for (unsigned c = 0; c < cls.clients; ++c) {
            clients.push_back({svc.connect(cls.name + "/" +
                                               std::to_string(c),
                                           mapPriority(cls.priority)),
                               &cls});
        }
    }

    // Drive: each tick every client issues its share of requests,
    // then the controller refills with whatever the policy grants.
    std::vector<uint8_t> sink(1 << 20);
    const double tick_ms = rcfg.tickNs * 1e-6;
    for (uint64_t t = 0; t < ticks; ++t) {
        for (DrivenClient &client : clients) {
            client.pendingRequests +=
                client.cls->requestsPerMs * tick_ms;
            while (client.pendingRequests >= 1.0) {
                client.handle.request(sink.data(),
                                      client.cls->requestBytes);
                client.pendingRequests -= 1.0;
            }
        }
        scheduler.tick();
    }

    // Per-class outcomes.
    Table table({"class", "priority", "requests", "hit rate",
                 "sync fills", "partial", "KB served"});
    for (const auto &cls : scenario.clientClasses) {
        service::ClientStats total;
        for (const DrivenClient &client : clients) {
            if (client.cls != &cls)
                continue;
            service::ClientStats stats = client.handle.stats();
            total.requests += stats.requests;
            total.bufferHits += stats.bufferHits;
            total.synchronousFills += stats.synchronousFills;
            total.partialServes += stats.partialServes;
            total.bytesServed += stats.bytesServed;
        }
        double hit_rate =
            total.requests
                ? static_cast<double>(total.bufferHits) /
                      static_cast<double>(total.requests)
                : 0.0;
        table.addRow({cls.name,
                      service::priorityName(mapPriority(cls.priority)),
                      std::to_string(total.requests),
                      Table::num(hit_rate, 3),
                      std::to_string(total.synchronousFills),
                      std::to_string(total.partialServes),
                      Table::num(static_cast<double>(total.bytesServed) /
                                     1024.0,
                                 1)});
    }
    table.print();

    const service::RefillAccounting &acct = scheduler.total();
    std::printf("\nRefill loop over %.1f ms of channel time:\n",
                acct.modeledNs * 1e-6);
    std::printf("  refilled %.1f KB (%.3f Gb/s sustained)\n",
                static_cast<double>(acct.bytesRefilled) / 1024.0,
                acct.refillGbps());
    std::printf("  granted %.0f of %.0f us needed (idle usable %.0f "
                "us)\n",
                acct.grantedNs * 1e-3, acct.neededNs * 1e-3,
                acct.usableIdleNs * 1e-3);
    std::printf("  memory-traffic slowdown: %.3f (policy %s)\n",
                acct.memSlowdown(),
                sysperf::fairnessPolicyName(policy));
    std::printf("  service: %llu requests, %llu hits, %llu sync "
                "fills, %llu bytes refilled\n",
                static_cast<unsigned long long>(svc.requestsServed()),
                static_cast<unsigned long long>(svc.bufferHits()),
                static_cast<unsigned long long>(svc.synchronousFills()),
                static_cast<unsigned long long>(svc.bytesRefilled()));
    return 0;
}

/**
 * @file
 * Scientific-simulation scenario from the paper's motivation: a
 * Monte-Carlo integrator fed by QUAC-TRNG, estimating pi from random
 * points in the unit square and comparing convergence against the
 * expected 1/sqrt(n) law.
 *
 *   ./monte_carlo_pi [--samples N]
 */

#include <cmath>
#include <cstdio>

#include "common/cli.hh"
#include "core/trng.hh"
#include "dram/catalog.hh"

using namespace quac;

namespace
{

/** Uniform double in [0, 1) from 32 TRNG bits. */
double
uniformFrom(core::Trng &trng)
{
    uint32_t word = 0;
    trng.fill(reinterpret_cast<uint8_t *>(&word), sizeof(word));
    return word * 0x1p-32;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"samples"});
    size_t samples = args.getUint("samples", 200000);

    dram::DramModule module(dram::specFor(
        dram::paperCatalog()[15], dram::Geometry::paperScale()));
    core::QuacTrng trng(module);
    trng.setup();

    std::printf("Monte-Carlo pi with QUAC-TRNG randomness (%s)\n\n",
                module.spec().name.c_str());
    std::printf("%12s %12s %12s %12s\n", "samples", "estimate",
                "|error|", "1.64/sqrt(n)");

    size_t inside = 0;
    size_t next_report = 1000;
    for (size_t n = 1; n <= samples; ++n) {
        double x = uniformFrom(trng);
        double y = uniformFrom(trng);
        if (x * x + y * y < 1.0)
            ++inside;
        if (n == next_report || n == samples) {
            double estimate = 4.0 * static_cast<double>(inside) /
                              static_cast<double>(n);
            double error = std::fabs(estimate - M_PI);
            double bound = 1.64 * std::sqrt(M_PI * (4.0 - M_PI) /
                                            static_cast<double>(n));
            std::printf("%12zu %12.6f %12.6f %12.6f %s\n", n,
                        estimate, error, bound,
                        error < bound ? "" : "(outside 90% bound)");
            next_report *= 4;
        }
    }

    std::printf("\nfinal estimate %.6f (pi = %.6f) from %llu QUAC "
                "iterations\n",
                4.0 * static_cast<double>(inside) /
                    static_cast<double>(samples),
                M_PI,
                static_cast<unsigned long long>(trng.iterations()));
    return 0;
}

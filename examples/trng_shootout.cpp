/**
 * @file
 * Run all three DRAM TRNGs (QUAC-TRNG, D-RaNGe, Talukder+) on the
 * same simulated module, compare their harvest characteristics, and
 * score their output with the quick NIST tests — the paper's
 * Section 7.4 comparison as a live program.
 *
 *   ./trng_shootout [--bits N]
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/drange.hh"
#include "baselines/talukder.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "core/trng.hh"
#include "dram/catalog.hh"
#include "nist/sts.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"bits"});
    size_t nbits = args.getUint("bits", 1u << 17);

    dram::DramModule module(dram::specFor(
        dram::paperCatalog()[12], dram::Geometry::paperScale()));

    auto quac_trng = std::make_unique<core::QuacTrng>(module);
    quac_trng->setup();

    baselines::DRangeConfig drange_cfg;
    auto drange =
        std::make_unique<baselines::DRangeTrng>(module, drange_cfg);
    drange->setup();

    baselines::TalukderConfig taluk_cfg;
    auto taluk =
        std::make_unique<baselines::TalukderTrng>(module, taluk_cfg);
    taluk->setup();

    std::printf("TRNG shootout on module %s\n\n",
                module.spec().name.c_str());

    std::printf("Harvest characteristics:\n");
    double quac_entropy = 0.0;
    for (const auto &plan : quac_trng->plans())
        quac_entropy += plan.segmentEntropy;
    quac_entropy /= quac_trng->plans().size();
    std::printf("  QUAC-TRNG:  %7.1f bits per segment (64 Kbit read)\n",
                quac_entropy);
    std::printf("  Talukder+:  %7.1f bits per row     (64 Kbit read)\n",
                taluk->avgRowEntropy());
    std::printf("  D-RaNGe:    %7.1f bits per block   (512 bit read)\n",
                drange->avgBlockEntropy());
    std::printf("(QUAC harvests ~%.0fx more entropy per row-sized "
                "read than the tRP-failure substrate)\n\n",
                quac_entropy / taluk->avgRowEntropy());

    std::vector<core::Trng *> trngs = {quac_trng.get(), drange.get(),
                                       taluk.get()};
    Table table({"generator", "monobit p", "runs p", "serial p",
                 "verdict"});
    for (core::Trng *trng : trngs) {
        Bitstream bits = trng->generateBits(nbits);
        auto monobit = nist::monobit(bits);
        auto runs = nist::runs(bits);
        auto serial = nist::serial(bits);
        bool ok = monobit.passed() && runs.passed() && serial.passed();
        table.addRow({trng->name(), Table::num(monobit.minP(), 4),
                      Table::num(runs.minP(), 4),
                      Table::num(serial.minP(), 4),
                      ok ? "random" : "suspect"});
    }
    table.print();
    std::printf("\nAll three whitened generators produce random "
                "streams; they differ in throughput (see "
                "bench/table2_comparison).\n");
    return 0;
}

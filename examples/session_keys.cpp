/**
 * @file
 * Security scenario from the paper's motivation: a key server that
 * mints session keys and nonces from QUAC-TRNG, with a freshness
 * buffer like the one Section 9 describes, and an online health
 * check on the output stream.
 *
 *   ./session_keys [--keys N]
 */

#include <cstdio>
#include <set>

#include "common/cli.hh"
#include "common/error.hh"
#include "core/trng.hh"
#include "dram/catalog.hh"
#include "nist/sts.hh"

using namespace quac;

namespace
{

/** AES-256 key + GCM nonce pair minted from the TRNG. */
struct SessionCredentials
{
    std::array<uint8_t, 32> key;
    std::array<uint8_t, 12> nonce;
};

SessionCredentials
mint(core::Trng &trng)
{
    SessionCredentials creds;
    trng.fill(creds.key.data(), creds.key.size());
    trng.fill(creds.nonce.data(), creds.nonce.size());
    return creds;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"keys"});
    size_t nkeys = args.getUint("keys", 16);

    dram::DramModule module(dram::specFor(
        dram::paperCatalog()[3], dram::Geometry::paperScale()));
    core::QuacTrng trng(module);
    trng.setup();

    std::printf("Key server backed by QUAC-TRNG on %s\n",
                module.spec().name.c_str());
    std::printf("(%zu random bits per DRAM iteration)\n\n",
                trng.bitsPerIteration());

    std::set<std::array<uint8_t, 32>> seen;
    for (size_t i = 0; i < nkeys; ++i) {
        SessionCredentials creds = mint(trng);
        std::printf("session %2zu  key=", i);
        for (size_t b = 0; b < 8; ++b)
            std::printf("%02x", creds.key[b]);
        std::printf("...  nonce=");
        for (uint8_t byte : creds.nonce)
            std::printf("%02x", byte);
        std::printf("\n");
        if (!seen.insert(creds.key).second)
            quac::fatal("duplicate session key minted!");
    }

    // Online health test, as a deployment would run continuously:
    // frequency-family NIST tests over a fresh output window.
    std::printf("\nOnline health check (fresh 128 Kbit window):\n");
    Bitstream window = trng.generateBits(1u << 17);
    for (auto test : {nist::monobit, nist::runs, nist::cumulativeSums}) {
        auto result = test(window);
        std::printf("  %-16s p=%.4f  %s\n", result.name.c_str(),
                    result.minP(),
                    result.passed() ? "healthy" : "ALARM");
    }
    std::printf("\n%zu keys minted from %llu QUAC iterations.\n",
                nkeys,
                static_cast<unsigned long long>(trng.iterations()));
    return 0;
}

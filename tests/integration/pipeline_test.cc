/**
 * @file
 * End-to-end integration tests: the full QUAC-TRNG pipeline on
 * paper-scale catalog modules, through characterization, generation,
 * post-processing, and statistical validation.
 */

#include <gtest/gtest.h>

#include "core/sa_stream.hh"
#include "core/trng.hh"
#include "dram/catalog.hh"
#include "nist/sts.hh"
#include "postprocess/von_neumann.hh"

namespace quac
{
namespace
{

core::QuacTrngConfig
fastConfig()
{
    core::QuacTrngConfig cfg;
    cfg.characterizeStride = 128;
    return cfg;
}

TEST(PipelineIntegration, PaperScaleCatalogModuleEndToEnd)
{
    dram::DramModule module(dram::specFor(
        dram::paperCatalog()[12], dram::Geometry::paperScale()));
    core::QuacTrng trng(module, fastConfig());
    trng.setup();

    // Plans must be in the module's Table 3 entropy regime.
    ASSERT_EQ(trng.plans().size(), 4u);
    for (const auto &plan : trng.plans()) {
        EXPECT_GT(plan.segmentEntropy, 1500.0);
        EXPECT_LT(plan.segmentEntropy, 3200.0);
        EXPECT_GE(plan.ranges.size(), 5u);
        EXPECT_LE(plan.ranges.size(), 12u);
        for (const auto &range : plan.ranges)
            EXPECT_GE(range.entropy, 256.0);
    }
    EXPECT_EQ(trng.bitsPerIteration() % 256, 0u);

    // Generate and validate a 64 Kbit stream.
    Bitstream bits = trng.generateBits(1u << 16);
    EXPECT_TRUE(nist::monobit(bits).passed());
    EXPECT_TRUE(nist::runs(bits).passed());
    EXPECT_TRUE(nist::frequencyWithinBlock(bits).passed());
    EXPECT_TRUE(nist::approximateEntropy(bits).passed());
}

TEST(PipelineIntegration, IterationAccountingConsistent)
{
    dram::DramModule module(dram::specFor(
        dram::paperCatalog()[0], dram::Geometry::paperScale()));
    core::QuacTrng trng(module, fastConfig());
    trng.setup();

    size_t bytes_per_iter = trng.bitsPerIteration() / 8;
    auto data = trng.generate(bytes_per_iter * 3);
    EXPECT_EQ(data.size(), bytes_per_iter * 3);
    EXPECT_EQ(trng.iterations(), 3u);
}

TEST(PipelineIntegration, IdenticalModulesProduceIdenticalStreams)
{
    auto spec = dram::specFor(dram::paperCatalog()[4],
                              dram::Geometry::paperScale());
    dram::DramModule module_a(spec);
    dram::DramModule module_b(spec);
    core::QuacTrng trng_a(module_a, fastConfig());
    core::QuacTrng trng_b(module_b, fastConfig());
    EXPECT_EQ(trng_a.generate(512), trng_b.generate(512));
}

TEST(PipelineIntegration, DifferentCatalogModulesDiffer)
{
    dram::DramModule module_a(dram::specFor(
        dram::paperCatalog()[0], dram::Geometry::paperScale()));
    dram::DramModule module_b(dram::specFor(
        dram::paperCatalog()[1], dram::Geometry::paperScale()));
    core::QuacTrng trng_a(module_a, fastConfig());
    core::QuacTrng trng_b(module_b, fastConfig());
    EXPECT_NE(trng_a.generate(256), trng_b.generate(256));
}

TEST(PipelineIntegration, TemperatureRecharacterizationKeepsWorking)
{
    dram::DramModule module(dram::specFor(
        dram::paperCatalog()[12], dram::Geometry::paperScale()));
    core::QuacTrng trng(module, fastConfig());
    trng.setup();
    size_t sib_cold = trng.bitsPerIteration();

    module.setTemperature(85.0);
    trng.recharacterize();
    size_t sib_hot = trng.bitsPerIteration();
    EXPECT_GT(sib_hot, 0u);

    Bitstream bits = trng.generateBits(1u << 14);
    EXPECT_TRUE(nist::monobit(bits).passed());
    // Per-temperature column sets generally differ (paper Section 8).
    (void)sib_cold;
}

TEST(PipelineIntegration, VncPathFromBestSegment)
{
    dram::DramModule module(dram::specFor(
        dram::paperCatalog()[12], dram::Geometry::paperScale()));
    core::QuacTrng trng(module, fastConfig());
    trng.setup();
    const auto &plan = trng.plans()[0];

    core::SaStreamSampler sampler(module, plan.bank, plan.segment,
                                  0b1110, 5);
    auto top = sampler.topMetastableBitlines(22);
    EXPECT_EQ(top.size(), 22u);
    // Paper Section 6.2: the best SAs are truly metastable.
    EXPECT_LT(std::abs(sampler.probability(top[0]) - 0.5), 0.05);

    Bitstream vnc;
    for (uint32_t bitline : top) {
        vnc.append(
            postprocess::vonNeumann(sampler.sample(bitline, 20000)));
    }
    ASSERT_GT(vnc.size(), 50000u);
    EXPECT_TRUE(nist::monobit(vnc).passed());
    EXPECT_TRUE(nist::runs(vnc).passed());
}

TEST(PipelineIntegration, RawIterationMatchesSegmentWidth)
{
    dram::DramModule module(dram::specFor(
        dram::paperCatalog()[3], dram::Geometry::paperScale()));
    core::QuacTrng trng(module, fastConfig());
    Bitstream raw = trng.rawIteration(0);
    EXPECT_EQ(raw.size(), 65536u);
    double ones = static_cast<double>(raw.popcount()) / raw.size();
    // Conflicting data pattern: a nontrivial mix biased by the
    // deterministic bitlines.
    EXPECT_GT(ones, 0.05);
    EXPECT_LT(ones, 0.95);
}

} // anonymous namespace
} // namespace quac

/**
 * @file
 * Cross-TRNG integration tests: the paper's comparative claims must
 * hold when all three generators run on the *same* simulated module
 * (Section 7.4), and the schedule models must agree with the
 * characterized substrates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/drange.hh"
#include "baselines/talukder.hh"
#include "core/trng.hh"
#include "dram/catalog.hh"
#include "sched/trng_programs.hh"
#include "sysperf/channel_sim.hh"

namespace quac
{
namespace
{

class ComparisonTest : public ::testing::Test
{
  protected:
    ComparisonTest()
        : module(dram::specFor(dram::paperCatalog()[12],
                               dram::Geometry::paperScale()))
    {
    }

    dram::DramModule module;
};

TEST_F(ComparisonTest, EntropyPerRowOrdering)
{
    // QUAC harvests more entropy from one 64 Kbit read than the
    // tRP-failure substrate (the paper's core advantage).
    core::QuacTrngConfig qcfg;
    qcfg.characterizeStride = 128;
    core::QuacTrng quac(module, qcfg);
    quac.setup();
    double quac_entropy = quac.plans()[0].segmentEntropy;

    baselines::TalukderTrng taluk(module);
    taluk.setup();
    double taluk_entropy = taluk.avgRowEntropy();

    EXPECT_GT(quac_entropy, 1.3 * taluk_entropy);

    // And Talukder's whole-row harvest beats D-RaNGe's single-block
    // harvest in absolute entropy.
    baselines::DRangeTrng drange(module);
    drange.setup();
    EXPECT_GT(taluk_entropy, drange.avgBlockEntropy());
}

TEST_F(ComparisonTest, SubstrateEntropyInPaperBands)
{
    baselines::DRangeTrng drange(module);
    drange.setup();
    // Paper: 46.55 bits per best cache block.
    EXPECT_GT(drange.avgBlockEntropy(), 15.0);
    EXPECT_LT(drange.avgBlockEntropy(), 120.0);

    baselines::TalukderTrng taluk(module);
    taluk.setup();
    // Paper: 1023.64 bits per best row.
    EXPECT_GT(taluk.avgRowEntropy(), 400.0);
    EXPECT_LT(taluk.avgRowEntropy(), 2500.0);
    // Paper: ~3 SHA input blocks per row.
    EXPECT_GE(taluk.sibPerRow(), 2u);
    EXPECT_LE(taluk.sibPerRow(), 6u);
}

TEST_F(ComparisonTest, EndToEndThroughputModelAgreesWithPaperShape)
{
    // Wire the characterized substrates into the schedule models and
    // check the Table 2 ranking end to end on this module.
    auto timing = dram::TimingParams::ddr4(2400);

    core::QuacTrngConfig qcfg;
    qcfg.characterizeStride = 128;
    core::QuacTrng quac(module, qcfg);
    quac.setup();
    sched::QuacScheduleConfig quac_sched;
    quac_sched.banks = 4;
    quac_sched.init = sched::InitMethod::RowClone;
    quac_sched.profile.sib =
        static_cast<uint32_t>(quac.plans()[0].ranges.size());
    quac_sched.profile.columnsRead =
        quac.plans()[0].ranges.back().endColumn;
    quac_sched.profile.columnsPerRow = 128;
    double quac_gbps =
        sched::simulateQuacTrng(timing, quac_sched).throughputGbps();

    baselines::DRangeTrng drange(module);
    drange.setup();
    sched::DRangeScheduleConfig drange_sched;
    drange_sched.accessesPerNumber = drange.accessesPerNumber();
    drange_sched.bitsPerAccess =
        256.0 / drange_sched.accessesPerNumber;
    drange_sched.useSha = true;
    double drange_gbps =
        sched::simulateDRange(timing, drange_sched).throughputGbps();

    baselines::TalukderTrng taluk(module);
    taluk.setup();
    sched::TalukderScheduleConfig taluk_sched;
    taluk_sched.bitsPerRow = 256.0 * taluk.sibPerRow();
    taluk_sched.columnsRead = taluk.columnsReadPerRow();
    double taluk_gbps =
        sched::simulateTalukder(timing, taluk_sched).throughputGbps();

    EXPECT_GT(quac_gbps, drange_gbps);
    EXPECT_GT(quac_gbps, taluk_gbps);
    EXPECT_GT(quac_gbps, 2.0) << "per-channel Gb/s";
    EXPECT_LT(quac_gbps, 8.0);
}

TEST_F(ComparisonTest, SystemStudyUsesScheduledIteration)
{
    // Fig 12 end to end: schedule-derived iteration cost plugged
    // into the idle-cycle injection study.
    auto timing = dram::TimingParams::ddr4(2400);
    sched::QuacScheduleConfig cfg;
    cfg.banks = 4;
    cfg.init = sched::InitMethod::RowClone;
    cfg.profile = {7, 128, 128};
    auto stats = sched::simulateQuacTrng(timing, cfg);
    double iters = static_cast<double>(cfg.iterations -
                                       cfg.warmupIterations);

    auto results = sysperf::runSystemStudy(
        stats.totalNs / iters, stats.bits / iters, 4, 1.0e6, 7);
    ASSERT_EQ(results.size(), 23u);
    double busy_peak = (stats.bits / iters) / (stats.totalNs / iters);
    for (const auto &result : results) {
        EXPECT_GE(result.throughputGbps, 0.0);
        EXPECT_LE(result.throughputGbps, 4.0 * busy_peak + 1e-9)
            << result.name;
    }
}

TEST_F(ComparisonTest, AllThreeGeneratorsShareTheModuleSafely)
{
    // Running all three TRNGs against one module must not corrupt
    // each other's reserved rows (they use different banks/rows).
    core::QuacTrngConfig qcfg;
    qcfg.characterizeStride = 128;
    qcfg.banks = {0, 1};
    core::QuacTrng quac(module, qcfg);

    baselines::DRangeConfig dcfg;
    dcfg.banks = {2};
    baselines::DRangeTrng drange(module, dcfg);

    baselines::TalukderConfig tcfg;
    tcfg.banks = {3};
    baselines::TalukderTrng taluk(module, tcfg);

    auto quac_bytes = quac.generate(128);
    auto drange_bytes = drange.generate(128);
    auto taluk_bytes = taluk.generate(128);
    auto quac_again = quac.generate(128);

    EXPECT_NE(quac_bytes, drange_bytes);
    EXPECT_NE(quac_bytes, taluk_bytes);
    EXPECT_NE(quac_bytes, quac_again);
}

} // anonymous namespace
} // namespace quac

/**
 * @file
 * Wire-protocol tests: request/response round trips, the exact
 * little-endian layout, and a fuzz-style malformed-datagram table —
 * every corruption class is classified (never accepted, never
 * misclassified as a different size problem) with no allocation.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/wire.hh"

namespace quac::net
{
namespace
{

Request
sampleRequest()
{
    Request request;
    request.priority = 1;
    request.clientId = 0x1122334455667788ull;
    request.nonce = 42;
    request.bytes = 1024;
    return request;
}

TEST(Wire, RequestRoundTrip)
{
    uint8_t wire[kRequestBytes];
    ASSERT_EQ(encodeRequest(wire, sampleRequest()), kRequestBytes);

    Request decoded;
    ASSERT_EQ(parseRequest(wire, sizeof(wire), decoded),
              ParseError::None);
    EXPECT_EQ(decoded.priority, 1);
    EXPECT_EQ(decoded.clientId, 0x1122334455667788ull);
    EXPECT_EQ(decoded.nonce, 42u);
    EXPECT_EQ(decoded.bytes, 1024u);
}

TEST(Wire, LayoutIsLittleEndianAndStable)
{
    uint8_t wire[kRequestBytes];
    encodeRequest(wire, sampleRequest());
    // Magic spells "QTRN" in byte order — the on-the-wire contract
    // a non-C++ client codes against.
    EXPECT_EQ(wire[0], 'Q');
    EXPECT_EQ(wire[1], 'T');
    EXPECT_EQ(wire[2], 'R');
    EXPECT_EQ(wire[3], 'N');
    EXPECT_EQ(wire[4], kVersion);
    EXPECT_EQ(wire[5], 1); // priority
    EXPECT_EQ(wire[8], 0x88); // client id, least significant first
    EXPECT_EQ(wire[15], 0x11);
    EXPECT_EQ(wire[16], 42); // nonce
    EXPECT_EQ(wire[24], 0x00); // 1024 = 0x400
    EXPECT_EQ(wire[25], 0x04);
}

TEST(Wire, ResponseRoundTripWithPayload)
{
    std::vector<uint8_t> wire(kResponseHeaderBytes + 8);
    encodeResponseHeader(wire.data(), Status::Partial, 7, 9, 8);
    for (int i = 0; i < 8; ++i)
        wire[kResponseHeaderBytes + i] = static_cast<uint8_t>(i);

    Response decoded;
    ASSERT_EQ(parseResponse(wire.data(), wire.size(), decoded),
              ParseError::None);
    EXPECT_EQ(decoded.status, Status::Partial);
    EXPECT_EQ(decoded.clientId, 7u);
    EXPECT_EQ(decoded.nonce, 9u);
    EXPECT_EQ(decoded.payloadBytes, 8u);
}

TEST(Wire, ResponseLengthMustMatchDeclaredPayload)
{
    std::vector<uint8_t> wire(kResponseHeaderBytes + 16);
    encodeResponseHeader(wire.data(), Status::Ok, 1, 1, 16);
    Response decoded;
    EXPECT_EQ(parseResponse(wire.data(), wire.size() - 1, decoded),
              ParseError::Truncated);
    wire.push_back(0);
    EXPECT_EQ(parseResponse(wire.data(), wire.size(), decoded),
              ParseError::Oversized);
}

/** One corruption case for the table test below. */
struct Malformed
{
    std::string label;
    ParseError expect;
    /** Build the datagram (starting from a valid encoding). */
    void (*mutate)(std::vector<uint8_t> &wire);
};

TEST(Wire, MalformedRequestTable)
{
    const Malformed kCases[] = {
        {"empty", ParseError::Truncated,
         [](std::vector<uint8_t> &w) { w.clear(); }},
        {"one-byte", ParseError::Truncated,
         [](std::vector<uint8_t> &w) { w.resize(1); }},
        {"short-by-one", ParseError::Truncated,
         [](std::vector<uint8_t> &w) { w.resize(kRequestBytes - 1); }},
        {"long-by-one", ParseError::Oversized,
         [](std::vector<uint8_t> &w) { w.push_back(0); }},
        {"huge", ParseError::Oversized,
         [](std::vector<uint8_t> &w) { w.resize(4096, 0xAA); }},
        {"bad-magic", ParseError::BadMagic,
         [](std::vector<uint8_t> &w) { w[0] ^= 0xFF; }},
        {"truncated-beats-magic", ParseError::Truncated,
         [](std::vector<uint8_t> &w) {
             w[0] ^= 0xFF;
             w.resize(8);
         }},
        {"bad-version", ParseError::BadVersion,
         [](std::vector<uint8_t> &w) { w[4] = kVersion + 1; }},
        {"version-zero", ParseError::BadVersion,
         [](std::vector<uint8_t> &w) { w[4] = 0; }},
        {"priority-3", ParseError::BadPriority,
         [](std::vector<uint8_t> &w) { w[5] = 3; }},
        {"priority-255", ParseError::BadPriority,
         [](std::vector<uint8_t> &w) { w[5] = 255; }},
        {"reserved16", ParseError::BadReserved,
         [](std::vector<uint8_t> &w) { w[6] = 1; }},
        {"reserved32", ParseError::BadReserved,
         [](std::vector<uint8_t> &w) { w[31] = 0x80; }},
        {"all-zero", ParseError::BadMagic,
         [](std::vector<uint8_t> &w) {
             std::fill(w.begin(), w.end(), 0);
         }},
        {"all-ones", ParseError::BadMagic,
         [](std::vector<uint8_t> &w) {
             std::fill(w.begin(), w.end(), 0xFF);
         }},
    };

    for (const Malformed &c : kCases) {
        std::vector<uint8_t> wire(kRequestBytes);
        encodeRequest(wire.data(), sampleRequest());
        c.mutate(wire);
        Request out;
        out.nonce = 0xDEAD;
        EXPECT_EQ(parseRequest(wire.data(), wire.size(), out),
                  c.expect)
            << c.label;
        // A rejected datagram must not leak partial decode state.
        EXPECT_EQ(out.nonce, 0xDEADu) << c.label;
    }
}

TEST(Wire, SingleBitFlipsNeverParseClean)
{
    // Exhaustive single-bit fuzz over the fixed header: every flip
    // of a validated field is rejected; flips inside free-form
    // fields (priority low bits, client id, nonce, bytes) decode to
    // exactly that flipped value — never to a crash or a mangled
    // neighbour field.
    uint8_t pristine[kRequestBytes];
    encodeRequest(pristine, sampleRequest());
    Request reference;
    ASSERT_EQ(parseRequest(pristine, kRequestBytes, reference),
              ParseError::None);

    for (size_t bit = 0; bit < kRequestBytes * 8; ++bit) {
        uint8_t wire[kRequestBytes];
        std::memcpy(wire, pristine, sizeof(wire));
        wire[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        Request out;
        ParseError err = parseRequest(wire, sizeof(wire), out);
        if (err == ParseError::None) {
            // The flip must land in a payload field and decode to
            // the flipped value.
            size_t byte = bit / 8;
            bool free_field = byte == 5 || (byte >= 8 && byte < 28);
            EXPECT_TRUE(free_field) << "accepted flip in byte "
                                    << byte;
            EXPECT_TRUE(out.priority != reference.priority ||
                        out.clientId != reference.clientId ||
                        out.nonce != reference.nonce ||
                        out.bytes != reference.bytes)
                << "silent accept of flipped bit " << bit;
        }
    }
}

TEST(Wire, StatusTaxonomy)
{
    EXPECT_FALSE(isDeny(Status::Ok));
    EXPECT_FALSE(isDeny(Status::Partial));
    for (size_t s = 2; s < kStatusCount; ++s)
        EXPECT_TRUE(isDeny(static_cast<Status>(s)))
            << statusName(static_cast<Status>(s));
    EXPECT_STREQ(statusName(Status::DenyReplay), "deny-replay");
    EXPECT_STREQ(parseErrorName(ParseError::Oversized), "oversized");
}

} // namespace
} // namespace quac::net

/**
 * @file
 * Loopback tests for the epoll UDP front end: byte-for-byte replay
 * identity against the direct service API, silence + zero service
 * effect for malformed datagrams, the full DENY taxonomy (replay,
 * oversized, throttled, global cap, bulk backpressure), and the
 * every-well-formed-request-gets-exactly-one-response accounting
 * under an open-loop burst.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_injection.hh"
#include "crypto/sha256.hh"
#include "net/loadgen.hh"
#include "net/udp_server.hh"
#include "service/entropy_service.hh"

namespace quac::net
{
namespace
{

using service::EntropyService;
using service::EntropyServiceConfig;
using service::Priority;

EntropyServiceConfig
serviceConfig(size_t shards)
{
    EntropyServiceConfig cfg;
    cfg.shards = shards;
    cfg.shardCapacityBytes = 16 * 1024;
    cfg.refillWatermark = 1.0;
    return cfg;
}

/** A server on an ephemeral loopback port with its own run() thread. */
struct ServerHarness
{
    std::vector<std::unique_ptr<core::SoftwareTrng>> backends;
    std::vector<core::Trng *> pool;
    std::unique_ptr<EntropyService> service;
    std::unique_ptr<UdpServer> server;
    std::thread thread;

    explicit ServerHarness(UdpServerConfig cfg = {},
                           size_t shards = 1, uint64_t seed = 700)
    {
        for (size_t i = 0; i < shards; ++i) {
            backends.push_back(std::make_unique<core::SoftwareTrng>(
                seed + i, "wire" + std::to_string(i)));
            pool.push_back(backends.back().get());
        }
        service =
            std::make_unique<EntropyService>(pool, serviceConfig(shards));
        server = std::make_unique<UdpServer>(*service, cfg);
        thread = std::thread([this] { server->run(); });
    }

    ~ServerHarness() { stop(); }

    /** Stop the loop and join; stats are safe to read after. */
    void
    stop()
    {
        if (thread.joinable()) {
            server->stop();
            thread.join();
        }
    }
};

TEST(UdpServer, NetworkStreamMatchesDirectServiceBytes)
{
    const std::vector<uint32_t> kSizes = {1,   16,   64,
                                          256, 1024, kMaxPayloadBytes};

    // Network path: every byte crosses the wire protocol, the client
    // table, and the zero-copy serveInto claim.
    UdpServerConfig cfg;
    cfg.idleRefill = false; // deterministic: no concurrent refill
    ServerHarness harness(cfg);
    Sha256 net_hash;
    SyncClient client("127.0.0.1", harness.server->port(), 42);
    for (uint32_t size : kSizes) {
        SyncClient::Reply reply = client.request(size, /*standard*/ 1);
        ASSERT_TRUE(reply.received) << size;
        ASSERT_EQ(reply.status, Status::Ok) << size;
        ASSERT_EQ(reply.payload.size(), size);
        net_hash.update(reply.payload);
    }
    harness.stop();

    // Direct path: the same backend seed consumed through the
    // in-process client API.
    core::SoftwareTrng backend(700, "wire0");
    EntropyService direct({&backend}, serviceConfig(1));
    EntropyService::Client direct_client =
        direct.connect("direct", Priority::Standard);
    Sha256 direct_hash;
    for (uint32_t size : kSizes)
        direct_hash.update(direct_client.request(size));

    EXPECT_EQ(net_hash.finish(), direct_hash.finish());
}

TEST(UdpServer, MalformedDatagramsGetSilenceAndNoServiceEffect)
{
    ServerHarness harness;
    SyncClient client("127.0.0.1", harness.server->port(), 7);

    // A valid encoding to corrupt (never sent as-is: nonce 99 stays
    // unused so the later real request is fresh).
    uint8_t valid[kRequestBytes];
    Request probe;
    probe.clientId = 7;
    probe.nonce = 99;
    probe.bytes = 32;
    encodeRequest(valid, probe);

    uint8_t garbage[kRequestBytes + 1];
    std::memcpy(garbage, valid, kRequestBytes);

    // Truncated: first 8 bytes of a valid request.
    EXPECT_FALSE(client.sendRaw(valid, 8).received);
    // Oversized: one trailing byte.
    garbage[kRequestBytes] = 0;
    EXPECT_FALSE(client.sendRaw(garbage, sizeof(garbage)).received);
    // Bad magic.
    std::memcpy(garbage, valid, kRequestBytes);
    garbage[0] ^= 0xFF;
    EXPECT_FALSE(client.sendRaw(garbage, kRequestBytes).received);
    // Bad version.
    std::memcpy(garbage, valid, kRequestBytes);
    garbage[4] = kVersion + 1;
    EXPECT_FALSE(client.sendRaw(garbage, kRequestBytes).received);
    // Reserved bits set.
    std::memcpy(garbage, valid, kRequestBytes);
    garbage[6] = 1;
    EXPECT_FALSE(client.sendRaw(garbage, kRequestBytes).received);

    // The server is alive and the garbage consumed nothing: a real
    // request is served immediately.
    SyncClient::Reply reply = client.request(32);
    ASSERT_TRUE(reply.received);
    EXPECT_EQ(reply.status, Status::Ok);
    harness.stop();

    const UdpServerStats &stats = harness.server->stats();
    EXPECT_EQ(stats.datagramsReceived, 6u);
    EXPECT_EQ(stats.malformedTotal(), 5u);
    EXPECT_EQ(stats.malformed[size_t(ParseError::Truncated)], 1u);
    EXPECT_EQ(stats.malformed[size_t(ParseError::Oversized)], 1u);
    EXPECT_EQ(stats.malformed[size_t(ParseError::BadMagic)], 1u);
    EXPECT_EQ(stats.malformed[size_t(ParseError::BadVersion)], 1u);
    EXPECT_EQ(stats.malformed[size_t(ParseError::BadReserved)], 1u);
    EXPECT_EQ(stats.wellFormed, 1u);
    EXPECT_EQ(stats.responsesSent, 1u);
    // Garbage reached neither the client table nor the service.
    EXPECT_EQ(harness.server->clientTable().stats().lookups, 1u);
    EXPECT_EQ(harness.server->clientTable().stats().inserts, 1u);
}

TEST(UdpServer, ReplayedNonceIsDeniedNotServed)
{
    ServerHarness harness;
    SyncClient client("127.0.0.1", harness.server->port(), 11);

    ASSERT_EQ(client.request(32).status, Status::Ok);
    // Replay the nonce just consumed: denied, no payload.
    client.setNextNonce(1);
    SyncClient::Reply replay = client.request(32);
    ASSERT_TRUE(replay.received);
    EXPECT_EQ(replay.status, Status::DenyReplay);
    EXPECT_TRUE(replay.payload.empty());
    // Jumping forward is served; the gap is recorded, not punished.
    client.setNextNonce(10);
    EXPECT_EQ(client.request(32).status, Status::Ok);
    harness.stop();

    const UdpServerStats &stats = harness.server->stats();
    EXPECT_EQ(stats.responses[size_t(Status::DenyReplay)], 1u);
    EXPECT_EQ(stats.responses[size_t(Status::Ok)], 2u);
    const service::ClientTable::Stats &table =
        harness.server->clientTable().stats();
    EXPECT_EQ(table.replays, 1u);
    EXPECT_EQ(table.nonceGaps, 1u);
    EXPECT_EQ(table.missingSeqs, 8u); // nonces 2..9
}

TEST(UdpServer, OversizedRequestsAreDeniedExplicitly)
{
    UdpServerConfig cfg;
    cfg.maxPayloadBytes = 128;
    ServerHarness harness(cfg);
    SyncClient client("127.0.0.1", harness.server->port(), 3);

    SyncClient::Reply big = client.request(129);
    ASSERT_TRUE(big.received);
    EXPECT_EQ(big.status, Status::DenyOversized);
    EXPECT_TRUE(big.payload.empty());
    SyncClient::Reply fits = client.request(128);
    ASSERT_TRUE(fits.received);
    EXPECT_EQ(fits.status, Status::Ok);
    EXPECT_EQ(fits.payload.size(), 128u);
}

TEST(UdpServer, PerClientPacingThrottlesOnlyTheOffender)
{
    UdpServerConfig cfg;
    cfg.table.perClientBytesPerSec = 1.0; // refill is negligible
    cfg.table.perClientBurstBytes = 64.0;
    ServerHarness harness(cfg);

    SyncClient hog("127.0.0.1", harness.server->port(), 1);
    EXPECT_EQ(hog.request(64).status, Status::Ok);
    SyncClient::Reply throttled = hog.request(64);
    ASSERT_TRUE(throttled.received);
    EXPECT_EQ(throttled.status, Status::DenyThrottled);
    EXPECT_TRUE(throttled.payload.empty());

    // A different client has its own untouched bucket.
    SyncClient polite("127.0.0.1", harness.server->port(), 2);
    EXPECT_EQ(polite.request(64).status, Status::Ok);
}

TEST(UdpServer, GlobalCapDeniesWhenExhausted)
{
    UdpServerConfig cfg;
    cfg.globalBytesPerSec = 1.0;
    cfg.globalBurstBytes = 64.0;
    ServerHarness harness(cfg);

    SyncClient first("127.0.0.1", harness.server->port(), 1);
    EXPECT_EQ(first.request(64).status, Status::Ok);
    SyncClient second("127.0.0.1", harness.server->port(), 2);
    SyncClient::Reply denied = second.request(64);
    ASSERT_TRUE(denied.received);
    EXPECT_EQ(denied.status, Status::DenyGlobal);
    harness.stop();

    const UdpServerStats &stats = harness.server->stats();
    EXPECT_EQ(stats.responses[size_t(Status::Ok)], 1u);
    EXPECT_EQ(stats.responses[size_t(Status::DenyGlobal)], 1u);
    EXPECT_EQ(stats.payloadBytesServed, 64u);
}

TEST(UdpServer, BulkBackpressureAnswersPartial)
{
    UdpServerConfig cfg;
    cfg.idleRefill = false; // keep the shard drained
    ServerHarness harness(cfg);
    SyncClient client("127.0.0.1", harness.server->port(), 5);

    // Bulk never triggers a synchronous fill: an empty shard answers
    // PARTIAL with whatever was buffered (here: nothing) instead of
    // blocking or silently dropping.
    SyncClient::Reply reply = client.request(512, /*bulk*/ 2);
    ASSERT_TRUE(reply.received);
    EXPECT_EQ(reply.status, Status::Partial);
    EXPECT_LT(reply.payload.size(), 512u);
}

TEST(UdpServer, OverloadAccountingEveryRequestAnswered)
{
    // An open-loop burst from many clients against a deliberately
    // tight server: small table (forces evictions), per-client
    // pacing, and a low global cap. The contract under overload is
    // explicit denial — every well-formed request still gets exactly
    // one response.
    UdpServerConfig cfg;
    cfg.table.capacity = 64;
    cfg.table.perClientBytesPerSec = 4096.0;
    cfg.table.perClientBurstBytes = 256.0;
    cfg.globalBytesPerSec = 64.0 * 1024.0;
    cfg.globalBurstBytes = 16.0 * 1024.0;
    ServerHarness harness(cfg);

    LoadGenConfig load;
    load.port = harness.server->port();
    load.clients = 200;
    load.requests = 2000;
    load.ratePerSec = 20000.0;
    load.requestBytes = 64;
    load.priorityMix = {0.5, 0.5, 0.0};
    load.drainTimeoutMs = 2000;
    LoadGenResult result = runLoadGen(load);
    harness.stop();

    EXPECT_EQ(result.sent, 2000u);
    EXPECT_EQ(result.lost, 0u);
    EXPECT_EQ(result.unmatched, 0u);
    EXPECT_EQ(result.received, result.sent);
    EXPECT_EQ(result.okCount() + result.denyCount(), result.sent);
    EXPECT_GT(result.denyCount(), 0u) << "the cap never bit";

    const UdpServerStats &stats = harness.server->stats();
    EXPECT_EQ(stats.wellFormed, 2000u);
    EXPECT_EQ(stats.responsesSent, 2000u);
    EXPECT_EQ(stats.malformedTotal(), 0u);
    uint64_t answered =
        stats.responses[size_t(Status::Ok)] +
        stats.responses[size_t(Status::Partial)] +
        stats.deniesTotal();
    EXPECT_EQ(answered, stats.wellFormed);
    EXPECT_GT(harness.server->clientTable().stats().evictions, 0u);
}

} // namespace
} // namespace quac::net

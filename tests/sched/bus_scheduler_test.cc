/**
 * @file
 * Tests for the DDR4 channel scheduler's timing rules.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "dram/calibration.hh"
#include "sched/bus_scheduler.hh"

namespace quac::sched
{
namespace
{

using dram::CommandType;

class BusSchedulerTest : public ::testing::Test
{
  protected:
    dram::TimingParams timing = dram::TimingParams::ddr4(2400);
    BusScheduler bus{timing, 16, 4};
};

TEST_F(BusSchedulerTest, ReadWaitsForTrcd)
{
    double act = bus.issueAct(0, 0.0);
    auto read = bus.issueRead(0, 0.0);
    EXPECT_GE(read.cmdTime, act + timing.tRCD - 1e-9);
    EXPECT_NEAR(read.dataEnd, read.cmdTime + timing.tCL + timing.tBurst,
                1e-9);
}

TEST_F(BusSchedulerTest, PreWaitsForTras)
{
    double act = bus.issueAct(0, 0.0);
    double pre = bus.issuePre(0, 0.0);
    EXPECT_GE(pre, act + timing.tRAS - 1e-9);
}

TEST_F(BusSchedulerTest, ActAfterPreWaitsForTrp)
{
    bus.issueAct(0, 0.0);
    double pre = bus.issuePre(0, 0.0);
    double act2 = bus.issueAct(0, 0.0);
    EXPECT_GE(act2, pre + timing.tRP - 1e-9);
}

TEST_F(BusSchedulerTest, ActsToDifferentGroupsPacedByRrdS)
{
    double act0 = bus.issueAct(0, 0.0);
    double act1 = bus.issueAct(1, 0.0); // different bank group
    EXPECT_GE(act1, act0 + timing.tRRD_S - 1e-9);
    EXPECT_LT(act1, act0 + timing.tRRD_L + timing.tCK);
}

TEST_F(BusSchedulerTest, ActsToSameGroupPacedByRrdL)
{
    double act0 = bus.issueAct(0, 0.0);
    double act1 = bus.issueAct(4, 0.0); // same group (4 % 4 == 0)
    EXPECT_GE(act1, act0 + timing.tRRD_L - 1e-9);
}

TEST_F(BusSchedulerTest, FawLimitsActivationBursts)
{
    // Five ACTs to distinct banks: the fifth must wait tFAW after
    // the first.
    double first = bus.issueAct(0, 0.0);
    bus.issueAct(1, 0.0);
    bus.issueAct(2, 0.0);
    bus.issueAct(3, 0.0);
    double fifth = bus.issueAct(5, 0.0);
    EXPECT_GE(fifth, first + timing.tFAW - 1e-9);
}

TEST_F(BusSchedulerTest, ReadsShareDataBusBackToBack)
{
    bus.issueAct(0, 0.0);
    bus.issueAct(1, 0.0);
    auto rd0 = bus.issueRead(0, 0.0);
    auto rd1 = bus.issueRead(1, 0.0);
    // Different bank groups: tCCD_S pacing = seamless bursts.
    EXPECT_GE(rd1.cmdTime, rd0.cmdTime + timing.tCCD_S - 1e-9);
    EXPECT_GE(rd1.dataEnd, rd0.dataEnd + timing.tBurst - 1e-9);
}

TEST_F(BusSchedulerTest, SameGroupReadsPacedByCcdL)
{
    bus.issueAct(0, 0.0);
    auto rd0 = bus.issueRead(0, 0.0);
    auto rd1 = bus.issueRead(0, 0.0);
    EXPECT_GE(rd1.cmdTime, rd0.cmdTime + timing.tCCD_L - 1e-9);
}

TEST_F(BusSchedulerTest, WriteRecoveryGatesPrecharge)
{
    bus.issueAct(0, 0.0);
    auto wr = bus.issueWrite(0, 0.0);
    double pre = bus.issuePre(0, 0.0);
    EXPECT_GE(pre, wr.dataEnd + timing.tWR - 1e-9);
}

TEST_F(BusSchedulerTest, WriteToReadTurnaround)
{
    bus.issueAct(0, 0.0);
    auto wr = bus.issueWrite(0, 0.0);
    auto rd = bus.issueRead(0, 0.0);
    EXPECT_GE(rd.cmdTime, wr.dataEnd + timing.tWTR_L - 1e-9);
}

TEST_F(BusSchedulerTest, CommandBusOneSlotPerClock)
{
    // Two commands requested for the same instant must land on
    // different clock edges.
    bus.issueAct(0, 0.0);
    bus.issueAct(1, 0.0);
    double pre0 = bus.issuePre(0, 40.0);
    double pre1 = bus.issuePre(1, 40.0);
    EXPECT_GE(std::abs(pre1 - pre0), timing.tCK - 1e-9);
}

TEST_F(BusSchedulerTest, ViolatedSequencePreservesOffsets)
{
    dram::Calibration cal;
    std::vector<std::pair<CommandType, double>> seq = {
        {CommandType::ACT, 0.0},
        {CommandType::PRE, cal.quacGapNs},
        {CommandType::ACT, 2.0 * cal.quacGapNs}};
    double last = bus.issueViolated(0, seq, 0.0);
    // 2.5 ns at DDR4-2400 rounds to exactly 3 clocks; the sequence
    // spans 6 clocks.
    EXPECT_NEAR(last, 6 * timing.tCK, 1e-9);
}

TEST_F(BusSchedulerTest, ViolatedSequenceBlocksUntilBankReady)
{
    bus.issueAct(0, 0.0);
    bus.issuePre(0, 0.0);
    dram::Calibration cal;
    std::vector<std::pair<CommandType, double>> seq = {
        {CommandType::ACT, 0.0},
        {CommandType::PRE, cal.quacGapNs},
        {CommandType::ACT, 2.0 * cal.quacGapNs}};
    double last = bus.issueViolated(0, seq, 0.0);
    // The first ACT of the sequence must wait out tRAS + tRP.
    EXPECT_GE(last - 2.0 * 3 * timing.tCK,
              timing.tRAS + timing.tRP - timing.tCK);
}

TEST_F(BusSchedulerTest, HoldBankDelaysNextCommand)
{
    bus.holdBank(0, 500.0);
    double act = bus.issueAct(0, 0.0);
    EXPECT_GE(act, 500.0 - 1e-9);
}

TEST_F(BusSchedulerTest, DataBusBusyAccumulates)
{
    bus.issueAct(0, 0.0);
    bus.issueRead(0, 0.0);
    bus.issueRead(0, 0.0);
    EXPECT_NEAR(bus.dataBusBusyNs(), 2 * timing.tBurst, 1e-9);
}

TEST_F(BusSchedulerTest, InvalidBankPanics)
{
    EXPECT_THROW(bus.issueAct(16, 0.0), PanicError);
    EXPECT_THROW(bus.issueViolated(16, {{CommandType::ACT, 0.0}}, 0.0),
                 PanicError);
}

} // anonymous namespace
} // namespace quac::sched

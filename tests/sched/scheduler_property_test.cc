/**
 * @file
 * Parameterized invariants of the command scheduler and the TRNG
 * schedule models across the Fig 13 transfer-rate sweep.
 */

#include <gtest/gtest.h>

#include "sched/trng_programs.hh"

namespace quac::sched
{
namespace
{

class RateSweep : public ::testing::TestWithParam<uint32_t>
{
  protected:
    dram::TimingParams
    timing() const
    {
        return dram::TimingParams::ddr4(GetParam());
    }
};

TEST_P(RateSweep, QuacStatsWellFormed)
{
    QuacScheduleConfig cfg;
    cfg.banks = 4;
    cfg.init = InitMethod::RowClone;
    cfg.profile = {7, 128, 128};
    ScheduleStats stats = simulateQuacTrng(timing(), cfg);
    EXPECT_GT(stats.totalNs, 0.0);
    EXPECT_GT(stats.bits, 0.0);
    EXPECT_GT(stats.latency256Ns, 0.0);
    EXPECT_GT(stats.busUtilization, 0.0);
    EXPECT_LE(stats.busUtilization, 1.0 + 1e-9);
    // The channel can never beat its own peak bandwidth.
    EXPECT_LT(stats.throughputGbps(),
              timing().peakBandwidthGbps());
}

TEST_P(RateSweep, RowCloneNeverSlowerThanWrites)
{
    QuacScheduleConfig cfg;
    cfg.banks = 4;
    cfg.profile = {7, 128, 128};
    cfg.init = InitMethod::RowClone;
    double rc = simulateQuacTrng(timing(), cfg).throughputGbps();
    cfg.init = InitMethod::WriteBursts;
    double wr = simulateQuacTrng(timing(), cfg).throughputGbps();
    EXPECT_GE(rc, wr);
}

TEST_P(RateSweep, MoreBanksNeverHurt)
{
    QuacScheduleConfig cfg;
    cfg.init = InitMethod::RowClone;
    cfg.profile = {7, 128, 128};
    double prev = 0.0;
    for (uint32_t banks : {1u, 2u, 4u}) {
        cfg.banks = banks;
        double gbps = simulateQuacTrng(timing(), cfg).throughputGbps();
        EXPECT_GE(gbps, prev * 0.999) << banks << " banks";
        prev = gbps;
    }
}

TEST_P(RateSweep, QuacBeatsEnhancedBaselines)
{
    QuacScheduleConfig quac_cfg;
    quac_cfg.banks = 4;
    quac_cfg.init = InitMethod::RowClone;
    quac_cfg.profile = {7, 128, 128};
    double quac =
        simulateQuacTrng(timing(), quac_cfg).throughputGbps();

    DRangeScheduleConfig drange_cfg;
    drange_cfg.bitsPerAccess = 256.0 / 6.0;
    drange_cfg.accessesPerNumber = 6;
    drange_cfg.useSha = true;
    double drange =
        simulateDRange(timing(), drange_cfg).throughputGbps();

    TalukderScheduleConfig taluk_cfg;
    taluk_cfg.bitsPerRow = 768.0;
    double taluk =
        simulateTalukder(timing(), taluk_cfg).throughputGbps();

    EXPECT_GT(quac, drange) << "rate " << GetParam();
    EXPECT_GT(quac, taluk) << "rate " << GetParam();
}

TEST_P(RateSweep, ThroughputMonotoneInRate)
{
    // Compare against the 2400 MT/s baseline: faster buses never
    // reduce QUAC throughput.
    QuacScheduleConfig cfg;
    cfg.banks = 4;
    cfg.init = InitMethod::RowClone;
    cfg.profile = {7, 128, 128};
    double here = simulateQuacTrng(timing(), cfg).throughputGbps();
    double base = simulateQuacTrng(dram::TimingParams::ddr4(2400),
                                   cfg).throughputGbps();
    if (GetParam() >= 2400) {
        EXPECT_GE(here, base * 0.999);
    }
}

INSTANTIATE_TEST_SUITE_P(Rates, RateSweep,
                         ::testing::Values(2133u, 2400u, 2666u,
                                           3200u, 4800u, 7200u,
                                           12000u));

} // anonymous namespace
} // namespace quac::sched

/**
 * @file
 * Tests for the multi-channel topology: per-channel scheduler
 * construction, timing overrides, and channel-addressable QUAC
 * simulation equivalence with the legacy single-channel entry point.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "sched/channel_topology.hh"
#include "sched/trng_programs.hh"

namespace quac::sched
{
namespace
{

QuacScheduleConfig
quacConfig()
{
    QuacScheduleConfig cfg;
    cfg.banks = 4;
    cfg.init = InitMethod::RowClone;
    cfg.profile = {7, 128, 128};
    return cfg;
}

TEST(ChannelTopology, DefaultsMatchPaperSystem)
{
    ChannelTopology topology;
    EXPECT_EQ(topology.channels, 4u);
    EXPECT_EQ(topology.banksPerChannel, 16u);
    EXPECT_EQ(topology.bankGroups, 4u);
    EXPECT_FALSE(topology.heterogeneous());
}

TEST(ChannelTopology, SingleIsOneChannel)
{
    ChannelTopology topology =
        ChannelTopology::single(dram::TimingParams::ddr4(2400));
    EXPECT_EQ(topology.channels, 1u);
}

TEST(ChannelTopology, ChannelTimingOverridesApply)
{
    ChannelTopology topology;
    topology.timing = dram::TimingParams::ddr4(2400);
    topology.perChannelTiming = {dram::TimingParams::ddr4(1600)};
    EXPECT_TRUE(topology.heterogeneous());
    // Channel 0 uses the override; the rest fall back to shared.
    EXPECT_DOUBLE_EQ(topology.channelTiming(0).tCK,
                     dram::TimingParams::ddr4(1600).tCK);
    EXPECT_DOUBLE_EQ(topology.channelTiming(1).tCK,
                     dram::TimingParams::ddr4(2400).tCK);
}

TEST(ChannelTopology, OutOfRangeChannelPanics)
{
    ChannelTopology topology;
    EXPECT_THROW(topology.channelTiming(4), PanicError);
    EXPECT_THROW(topology.makeScheduler(7), PanicError);
}

TEST(ChannelTopology, ChannelAddressableSimMatchesLegacy)
{
    // Identical timing: the per-channel simulation must be
    // bit-for-bit the legacy single-channel result on any channel.
    ChannelTopology topology;
    QuacScheduleConfig cfg = quacConfig();
    ScheduleStats legacy =
        simulateQuacTrng(dram::TimingParams::ddr4(2400), cfg);
    for (uint32_t c = 0; c < topology.channels; ++c) {
        ScheduleStats per_channel = simulateQuacTrng(topology, c, cfg);
        EXPECT_DOUBLE_EQ(per_channel.totalNs, legacy.totalNs) << c;
        EXPECT_DOUBLE_EQ(per_channel.bits, legacy.bits) << c;
        EXPECT_EQ(per_channel.commands, legacy.commands) << c;
    }
}

TEST(ChannelTopology, SlowerChannelCostsMore)
{
    ChannelTopology topology;
    topology.channels = 2;
    topology.perChannelTiming = {dram::TimingParams::ddr4(1600),
                                 dram::TimingParams::ddr4(2400)};
    QuacScheduleConfig cfg = quacConfig();
    RefillCost slow = quacRefillCost(topology, 0, cfg);
    RefillCost fast = quacRefillCost(topology, 1, cfg);
    EXPECT_GT(slow.iterationNs, fast.iterationNs);
    EXPECT_DOUBLE_EQ(slow.bitsPerIteration, fast.bitsPerIteration);
    EXPECT_GT(slow.nsPerByte(), fast.nsPerByte());
}

} // anonymous namespace
} // namespace quac::sched

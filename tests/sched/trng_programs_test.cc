/**
 * @file
 * Tests for the TRNG throughput schedule models: the paper's
 * qualitative results must hold (Fig 11 ordering, Table 2 ranking,
 * Fig 13 scaling behaviour).
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "sched/trng_programs.hh"

namespace quac::sched
{
namespace
{

const dram::TimingParams t2400 = dram::TimingParams::ddr4(2400);
const IterationProfile kPaperProfile{7, 128, 128};

QuacScheduleConfig
quacConfig(InitMethod init, uint32_t banks)
{
    QuacScheduleConfig cfg;
    cfg.init = init;
    cfg.banks = banks;
    cfg.profile = kPaperProfile;
    return cfg;
}

TEST(QuacSchedule, Figure11Ordering)
{
    double one_bank =
        simulateQuacTrng(t2400,
                         quacConfig(InitMethod::WriteBursts, 1))
            .throughputGbps();
    double bgp =
        simulateQuacTrng(t2400,
                         quacConfig(InitMethod::WriteBursts, 4))
            .throughputGbps();
    double rc_bgp =
        simulateQuacTrng(t2400, quacConfig(InitMethod::RowClone, 4))
            .throughputGbps();

    // Paper Fig 11: 0.49 < 0.75 << 3.44 Gb/s.
    EXPECT_GT(bgp, one_bank);
    EXPECT_GT(rc_bgp, 2.5 * bgp);
    EXPECT_NEAR(one_bank, 0.49, 0.25);
    EXPECT_NEAR(bgp, 0.75, 0.35);
    EXPECT_NEAR(rc_bgp, 3.44, 1.0);
}

TEST(QuacSchedule, RowCloneReducesInitCost)
{
    auto writes = simulateQuacTrng(
        t2400, quacConfig(InitMethod::WriteBursts, 4));
    auto rowclone = simulateQuacTrng(
        t2400, quacConfig(InitMethod::RowClone, 4));
    EXPECT_LT(rowclone.totalNs, writes.totalNs / 3.0);
    EXPECT_EQ(rowclone.bits, writes.bits);
}

TEST(QuacSchedule, ThroughputScalesWithSib)
{
    QuacScheduleConfig small = quacConfig(InitMethod::RowClone, 4);
    small.profile.sib = 4;
    QuacScheduleConfig large = quacConfig(InitMethod::RowClone, 4);
    large.profile.sib = 10;
    double ts = simulateQuacTrng(t2400, small).throughputGbps();
    double tl = simulateQuacTrng(t2400, large).throughputGbps();
    EXPECT_GT(tl, ts * 1.8);
}

TEST(QuacSchedule, QuasiLinearBandwidthScaling)
{
    // Paper Fig 13: RC+BGP throughput grows with transfer rate but
    // sub-linearly (fixed analog latencies).
    QuacScheduleConfig cfg = quacConfig(InitMethod::RowClone, 4);
    double at2400 = simulateQuacTrng(t2400, cfg).throughputGbps();
    double at12000 =
        simulateQuacTrng(dram::TimingParams::ddr4(12000), cfg)
            .throughputGbps();
    EXPECT_GT(at12000, 2.0 * at2400);
    EXPECT_LT(at12000, 5.0 * at2400);
}

TEST(QuacSchedule, LatencyIncludesShaCore)
{
    QuacScheduleConfig cfg = quacConfig(InitMethod::RowClone, 4);
    auto stats = simulateQuacTrng(t2400, cfg);
    EXPECT_GT(stats.latency256Ns, cfg.sha.latencyNs());
    EXPECT_LT(stats.latency256Ns, 2000.0);
}

TEST(QuacSchedule, BusUtilizationSane)
{
    auto stats = simulateQuacTrng(
        t2400, quacConfig(InitMethod::RowClone, 4));
    EXPECT_GT(stats.busUtilization, 0.3);
    EXPECT_LE(stats.busUtilization, 1.0);
}

TEST(QuacSchedule, RejectsBadConfig)
{
    QuacScheduleConfig cfg = quacConfig(InitMethod::RowClone, 5);
    EXPECT_THROW(simulateQuacTrng(t2400, cfg), PanicError);
    cfg = quacConfig(InitMethod::RowClone, 4);
    cfg.iterations = cfg.warmupIterations;
    EXPECT_THROW(simulateQuacTrng(t2400, cfg), PanicError);
}

DRangeScheduleConfig
drangeConfig(bool enhanced)
{
    DRangeScheduleConfig cfg;
    if (enhanced) {
        cfg.bitsPerAccess = 256.0 / 6.0;
        cfg.accessesPerNumber = 6;
        cfg.useSha = true;
    } else {
        cfg.bitsPerAccess = 4.0;
        cfg.accessesPerNumber = 64;
        cfg.useSha = false;
    }
    return cfg;
}

TalukderScheduleConfig
talukderConfig(bool enhanced)
{
    TalukderScheduleConfig cfg;
    if (enhanced) {
        cfg.bitsPerRow = 768.0;
        cfg.rowCloneInit = true;
    } else {
        cfg.bitsPerRow = 256.0 / 3.0;
        cfg.rowCloneInit = false;
    }
    return cfg;
}

TEST(BaselineSchedules, Table2Ranking)
{
    double quac =
        simulateQuacTrng(t2400, quacConfig(InitMethod::RowClone, 4))
            .throughputGbps();
    double drange_e =
        simulateDRange(t2400, drangeConfig(true)).throughputGbps();
    double drange_b =
        simulateDRange(t2400, drangeConfig(false)).throughputGbps();
    double taluk_e =
        simulateTalukder(t2400, talukderConfig(true)).throughputGbps();
    double taluk_b =
        simulateTalukder(t2400, talukderConfig(false)).throughputGbps();

    // Paper Table 2 / Section 7.4: QUAC beats every baseline; each
    // enhanced configuration beats its basic one by a wide margin.
    EXPECT_GT(quac, drange_e);
    EXPECT_GT(quac, taluk_e);
    EXPECT_GT(drange_e, 5.0 * drange_b);
    EXPECT_GT(taluk_e, 5.0 * taluk_b);
    EXPECT_GT(quac, 10.0 * drange_b);
    EXPECT_GT(quac, 10.0 * taluk_b);
}

TEST(BaselineSchedules, DRangeDoesNotScaleWithBandwidth)
{
    // Paper Fig 13: D-RaNGe is access-latency-bound.
    auto cfg = drangeConfig(true);
    double at2400 = simulateDRange(t2400, cfg).throughputGbps();
    double at12000 =
        simulateDRange(dram::TimingParams::ddr4(12000), cfg)
            .throughputGbps();
    EXPECT_LT(at12000, 1.25 * at2400);
}

TEST(BaselineSchedules, TalukderScalesWithBandwidth)
{
    auto cfg = talukderConfig(true);
    double at2400 = simulateTalukder(t2400, cfg).throughputGbps();
    double at12000 =
        simulateTalukder(dram::TimingParams::ddr4(12000), cfg)
            .throughputGbps();
    EXPECT_GT(at12000, 1.8 * at2400);
}

TEST(BaselineSchedules, QuacBeatsTalukderMoreAtHighRates)
{
    // Paper: 2.24x at 2400 MT/s; still >= ~2x at 12 GT/s.
    auto quac_cfg = quacConfig(InitMethod::RowClone, 4);
    auto taluk_cfg = talukderConfig(true);
    for (uint32_t rate : {2400u, 12000u}) {
        auto timing = dram::TimingParams::ddr4(rate);
        double quac =
            simulateQuacTrng(timing, quac_cfg).throughputGbps();
        double taluk =
            simulateTalukder(timing, taluk_cfg).throughputGbps();
        EXPECT_GT(quac / taluk, 1.8) << "rate " << rate;
        EXPECT_LT(quac / taluk, 4.0) << "rate " << rate;
    }
}

TEST(BaselineSchedules, LatenciesPositiveAndOrdered)
{
    auto quac = simulateQuacTrng(
        t2400, quacConfig(InitMethod::RowClone, 4));
    auto drange = simulateDRange(t2400, drangeConfig(true));
    EXPECT_GT(drange.latency256Ns, 0.0);
    EXPECT_GT(quac.latency256Ns, drange.latency256Ns)
        << "D-RaNGe produces its first number faster (paper Table 2)";
}

TEST(QuacSchedule, NativeQuacCommandHelps)
{
    // Paper Section 4.3: a native QUAC command (one slot instead of
    // the ACT-PRE-ACT sequence) can only help, and most of the
    // benefit shows in the 256-bit latency rather than steady-state
    // throughput (reads dominate the pipeline).
    QuacScheduleConfig cfg = quacConfig(InitMethod::RowClone, 4);
    auto legacy = simulateQuacTrng(t2400, cfg);
    cfg.nativeQuacCommand = true;
    auto native = simulateQuacTrng(t2400, cfg);
    EXPECT_GE(native.throughputGbps(),
              legacy.throughputGbps() * 0.999);
    EXPECT_LE(native.latency256Ns, legacy.latency256Ns + 1e-9);
}

TEST(ShaModel, PaperConstants)
{
    ShaCoreModel sha;
    EXPECT_NEAR(sha.latencyNs(), 65.0 / 5.15, 1e-9);
    EXPECT_NEAR(sha.throughputGbps, 19.7, 1e-9);

    IntegrationCostModel cost;
    // Paper Section 9: 192 KB is 0.002% of an 8 GB module.
    EXPECT_NEAR(cost.reservedFraction(), 0.0000229, 1e-6);
    // Storage on the order of the paper's 1316 bits.
    EXPECT_GT(cost.storageBits(), 1000u);
    EXPECT_LT(cost.storageBits(), 1600u);
}

} // anonymous namespace
} // namespace quac::sched

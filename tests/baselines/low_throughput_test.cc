/**
 * @file
 * Tests for the low-throughput analytical TRNG models (Table 2).
 */

#include <gtest/gtest.h>

#include "baselines/low_throughput.hh"

namespace quac::baselines
{
namespace
{

TEST(LowThroughput, DpufMatchesPaper)
{
    // Table 2: D-PUF 0.20 Mb/s, 40 s.
    LowThroughputModel model = dpufModel(128.0);
    EXPECT_NEAR(model.throughputMbps, 0.20, 0.02);
    EXPECT_NEAR(model.latency256Ns, 40e9, 1.0);
}

TEST(LowThroughput, DpufScalesWithDedicatedDram)
{
    // Section 10.1: 1% of DRAM gives ~0.002 Mb/s.
    LowThroughputModel small = dpufModel(1.28);
    EXPECT_NEAR(small.throughputMbps, 0.002, 0.0005);
}

TEST(LowThroughput, KellerMatchesPaper)
{
    // Table 2: Keller+ 0.025 Mb/s.
    LowThroughputModel model = kellerModel(128.0);
    EXPECT_NEAR(model.throughputMbps, 0.025, 0.005);
}

TEST(LowThroughput, DrngIsNotStreaming)
{
    LowThroughputModel model = drngModel();
    EXPECT_EQ(model.throughputMbps, 0.0);
    EXPECT_NEAR(model.latency256Ns, 700e3, 1.0);
}

TEST(LowThroughput, PyoMatchesPaper)
{
    // Table 2: Pyo+ 2.17 Mb/s, 112.5 us.
    LowThroughputModel model = pyoModel(3.2, 4);
    EXPECT_NEAR(model.throughputMbps, 2.17, 0.15);
    EXPECT_NEAR(model.latency256Ns, 112.5e3, 1e3);
}

TEST(LowThroughput, AllModelsListed)
{
    auto models = lowThroughputModels();
    ASSERT_EQ(models.size(), 4u);
    for (const auto &model : models) {
        EXPECT_FALSE(model.name.empty());
        EXPECT_FALSE(model.entropySource.empty());
        EXPECT_FALSE(model.derivation.empty());
        EXPECT_GT(model.latency256Ns, 0.0);
    }
}

TEST(LowThroughput, AllFarSlowerThanGigabitClass)
{
    // Every Table 2 low-throughput mechanism is under ~3 Mb/s, four
    // orders of magnitude below QUAC-TRNG's 13.76 Gb/s.
    for (const auto &model : lowThroughputModels())
        EXPECT_LT(model.throughputMbps, 3.0) << model.name;
}

} // anonymous namespace
} // namespace quac::baselines

/**
 * @file
 * Tests for the D-RaNGe baseline TRNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/drange.hh"
#include "common/error.hh"
#include "nist/sts.hh"
#include "softmc/host.hh"

namespace quac::baselines
{
namespace
{

dram::ModuleSpec
testSpec(uint64_t seed = 33)
{
    dram::ModuleSpec spec;
    spec.geometry = dram::Geometry::testScale();
    spec.seed = seed;
    return spec;
}

DRangeConfig
config(bool enhanced)
{
    DRangeConfig cfg;
    cfg.enhanced = enhanced;
    cfg.banks = {0, 1};
    // Reduced geometry has ~8x narrower rows; scale the block target.
    cfg.sibEntropyTarget = 64.0;
    return cfg;
}

TEST(DRange, SetupFindsBestBlocks)
{
    dram::DramModule module(testSpec());
    DRangeTrng trng(module, config(true));
    trng.setup();
    ASSERT_EQ(trng.plans().size(), 2u);
    for (const auto &plan : trng.plans()) {
        EXPECT_LT(plan.bestColumn,
                  module.geometry().cacheBlocksPerRow());
        EXPECT_GT(plan.blockEntropy, 0.0);
        EXPECT_EQ(plan.blockProbs.size(),
                  module.geometry().cacheBlockBits);
    }
    EXPECT_GT(trng.avgBlockEntropy(), 1.0);
    EXPECT_GE(trng.accessesPerNumber(), 1u);
}

TEST(DRange, TrngCellsAreMetastable)
{
    dram::DramModule module(testSpec());
    DRangeTrng trng(module, config(false));
    trng.setup();
    for (const auto &plan : trng.plans()) {
        for (uint32_t cell : plan.trngCells) {
            float p = plan.blockProbs[cell];
            EXPECT_GE(p, 0.4f);
            EXPECT_LE(p, 0.6f);
        }
    }
}

TEST(DRange, EnhancedGeneratesWhitenedBytes)
{
    dram::DramModule module(testSpec());
    DRangeTrng trng(module, config(true));
    auto bytes = trng.generate(512);
    EXPECT_EQ(bytes.size(), 512u);
    std::set<uint8_t> distinct(bytes.begin(), bytes.end());
    EXPECT_GT(distinct.size(), 32u);
}

TEST(DRange, EnhancedOutputPassesBasicNist)
{
    dram::DramModule module(testSpec());
    DRangeTrng trng(module, config(true));
    Bitstream bits = trng.generateBits(1u << 15);
    EXPECT_TRUE(nist::monobit(bits).passed());
    EXPECT_TRUE(nist::runs(bits).passed());
}

TEST(DRange, BasicHarvestsRawCells)
{
    dram::DramModule module(testSpec());
    DRangeTrng trng(module, config(false));
    trng.setup();
    if (trng.avgTrngCells() < 0.5)
        GTEST_SKIP() << "no TRNG cells in this reduced module";
    auto bytes = trng.generate(64);
    EXPECT_EQ(bytes.size(), 64u);
}

TEST(DRange, CharacterizationMatchesCommandPath)
{
    // The plan's probabilities must match empirical frequencies from
    // the real reduced-tRCD command sequence.
    dram::DramModule module(testSpec());
    DRangeTrng trng(module, config(true));
    trng.setup();
    const DRangeBankPlan &plan = trng.plans()[0];

    // Find a metastable bit to compare frequencies on.
    uint32_t target = 0;
    float best = 1.0f;
    for (uint32_t b = 0; b < plan.blockProbs.size(); ++b) {
        float dist = std::abs(plan.blockProbs[b] - 0.5f);
        if (dist < best) {
            best = dist;
            target = b;
        }
    }
    if (best > 0.3f)
        GTEST_SKIP() << "no metastable bit in the best block";

    softmc::SoftMcHost host(module);
    int ones = 0;
    const int iters = 400;
    for (int i = 0; i < iters; ++i) {
        module.bank(plan.bank).pokeRowFill(plan.row, false);
        auto block = host.readWithReducedTrcd(plan.bank, plan.row,
                                              plan.bestColumn);
        ones += (block[target / 64] >> (target % 64)) & 1;
    }
    double freq = static_cast<double>(ones) / iters;
    EXPECT_NEAR(freq, plan.blockProbs[target], 0.1);
}

TEST(DRange, DeterministicPerSeed)
{
    dram::DramModule module_a(testSpec());
    dram::DramModule module_b(testSpec());
    DRangeTrng a(module_a, config(true));
    DRangeTrng b(module_b, config(true));
    EXPECT_EQ(a.generate(128), b.generate(128));
}

TEST(DRange, RejectsBadConfig)
{
    dram::DramModule module(testSpec());
    DRangeConfig cfg = config(true);
    cfg.banks = {};
    EXPECT_THROW(DRangeTrng(module, cfg), FatalError);
    cfg = config(true);
    cfg.banks = {module.geometry().banks};
    EXPECT_THROW(DRangeTrng(module, cfg), FatalError);
    cfg = config(true);
    cfg.probeRow = module.geometry().rowsPerBank;
    EXPECT_THROW(DRangeTrng(module, cfg), FatalError);
}

} // anonymous namespace
} // namespace quac::baselines

/**
 * @file
 * Tests for the Talukder+ baseline TRNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/talukder.hh"
#include "common/error.hh"
#include "nist/sts.hh"
#include "softmc/host.hh"

namespace quac::baselines
{
namespace
{

dram::ModuleSpec
testSpec(uint64_t seed = 44)
{
    dram::ModuleSpec spec;
    spec.geometry = dram::Geometry::testScale();
    spec.seed = seed;
    return spec;
}

TalukderConfig
config(bool enhanced)
{
    TalukderConfig cfg;
    cfg.enhanced = enhanced;
    cfg.banks = {0, 1};
    cfg.sibEntropyTarget = 24.0; // reduced geometry
    return cfg;
}

TEST(Talukder, SetupCharacterizesRows)
{
    dram::DramModule module(testSpec());
    TalukderTrng trng(module, config(true));
    trng.setup();
    ASSERT_EQ(trng.plans().size(), 2u);
    for (const auto &plan : trng.plans()) {
        EXPECT_GT(plan.rowEntropy, 0.0);
        EXPECT_FALSE(plan.ranges.empty());
        EXPECT_EQ(plan.rowProbs.size(),
                  module.geometry().bitlinesPerRow);
    }
    EXPECT_GE(trng.sibPerRow(), 1u);
    EXPECT_GT(trng.columnsReadPerRow(), 0u);
    EXPECT_LE(trng.columnsReadPerRow(),
              module.geometry().cacheBlocksPerRow());
}

TEST(Talukder, RowEntropyBelowQuacLevels)
{
    // The paper's key quantitative claim: tRP failures harvest far
    // less entropy per row than QUAC (~1 kbit vs ~1.4+ kbit of 64K).
    dram::DramModule module(testSpec());
    TalukderTrng trng(module, config(true));
    trng.setup();
    double row_entropy = trng.avgRowEntropy();
    EXPECT_GT(row_entropy, 0.0);
    EXPECT_LT(row_entropy,
              0.15 * module.geometry().bitlinesPerRow);
}

TEST(Talukder, StrongCellsAreMetastable)
{
    dram::DramModule module(testSpec());
    TalukderTrng trng(module, config(false));
    trng.setup();
    for (const auto &plan : trng.plans()) {
        for (uint32_t cell : plan.strongCells) {
            EXPECT_GE(plan.rowProbs[cell], 0.4f);
            EXPECT_LE(plan.rowProbs[cell], 0.6f);
        }
    }
}

TEST(Talukder, EnhancedGeneratesWhitenedBytes)
{
    dram::DramModule module(testSpec());
    TalukderTrng trng(module, config(true));
    auto bytes = trng.generate(512);
    EXPECT_EQ(bytes.size(), 512u);
    std::set<uint8_t> distinct(bytes.begin(), bytes.end());
    EXPECT_GT(distinct.size(), 32u);
}

TEST(Talukder, EnhancedOutputPassesBasicNist)
{
    dram::DramModule module(testSpec());
    TalukderTrng trng(module, config(true));
    Bitstream bits = trng.generateBits(1u << 15);
    EXPECT_TRUE(nist::monobit(bits).passed());
    EXPECT_TRUE(nist::runs(bits).passed());
}

TEST(Talukder, BasicHarvestsStrongCells)
{
    dram::DramModule module(testSpec());
    TalukderTrng trng(module, config(false));
    trng.setup();
    if (trng.avgStrongCells() < 0.5)
        GTEST_SKIP() << "no strong cells in this reduced module";
    auto bytes = trng.generate(32);
    EXPECT_EQ(bytes.size(), 32u);
}

TEST(Talukder, CharacterizationMatchesCommandPath)
{
    // The plan probabilities must match empirical frequencies from
    // the real donor-ACT / violated-PRE / victim-ACT sequence.
    dram::DramModule module(testSpec());
    TalukderTrng trng(module, config(true));
    trng.setup();
    const TalukderBankPlan &plan = trng.plans()[0];

    uint32_t target = 0;
    float best = 1.0f;
    for (uint32_t b = 0; b < plan.rowProbs.size(); ++b) {
        float dist = std::abs(plan.rowProbs[b] - 0.5f);
        if (dist < best) {
            best = dist;
            target = b;
        }
    }
    if (best > 0.3f)
        GTEST_SKIP() << "no metastable victim cell here";

    softmc::SoftMcHost host(module);
    int ones = 0;
    const int iters = 300;
    for (int i = 0; i < iters; ++i) {
        module.bank(plan.bank).pokeRowFill(plan.donorRow, true);
        module.bank(plan.bank).pokeRowFill(plan.victimRow, false);
        auto row = host.activateWithReducedTrp(
            plan.bank, plan.donorRow, plan.victimRow);
        ones += (row[target / 64] >> (target % 64)) & 1;
    }
    double freq = static_cast<double>(ones) / iters;
    EXPECT_NEAR(freq, plan.rowProbs[target], 0.12);
}

TEST(Talukder, DeterministicPerSeed)
{
    dram::DramModule module_a(testSpec());
    dram::DramModule module_b(testSpec());
    TalukderTrng a(module_a, config(true));
    TalukderTrng b(module_b, config(true));
    EXPECT_EQ(a.generate(128), b.generate(128));
}

TEST(Talukder, RejectsBadConfig)
{
    dram::DramModule module(testSpec());
    TalukderConfig cfg = config(true);
    cfg.banks = {};
    EXPECT_THROW(TalukderTrng(module, cfg), FatalError);
    cfg = config(true);
    cfg.donorRow = cfg.victimRow;
    EXPECT_THROW(TalukderTrng(module, cfg), FatalError);
    cfg = config(true);
    cfg.victimRow = module.geometry().rowsPerBank;
    EXPECT_THROW(TalukderTrng(module, cfg), FatalError);
}

} // anonymous namespace
} // namespace quac::baselines

/**
 * @file
 * Tests for the multi-channel refill scheduler: shard placement,
 * per-channel demand/grant/refill isolation, heterogeneous channel
 * traffic, starvation-driven rebalancing, and the deterministic
 * replay guarantee across channel counts.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hh"
#include "crypto/sha256.hh"
#include "service/refill_scheduler.hh"
#include "sysperf/workloads.hh"

namespace quac::service
{
namespace
{

/** Deterministic byte-counter backend with a chunk granularity. */
class CountingTrng : public core::Trng
{
  public:
    explicit CountingTrng(size_t chunk) : chunk_(chunk) {}
    std::string name() const override { return "counting"; }

    void
    fill(uint8_t *out, size_t len) override
    {
        for (size_t i = 0; i < len; ++i)
            out[i] = static_cast<uint8_t>(counter_++);
    }

    size_t preferredChunkBytes() override { return chunk_; }

  private:
    size_t chunk_;
    uint64_t counter_ = 0;
};

constexpr size_t kChunk = 64;

/** A drained service with one dedicated backend per shard. */
struct Harness
{
    std::vector<std::unique_ptr<CountingTrng>> backends;
    std::vector<core::Trng *> pool;
    std::unique_ptr<EntropyService> service;

    Harness(size_t shards, size_t capacity, double panic = 1.0)
    {
        for (size_t i = 0; i < shards; ++i) {
            backends.push_back(
                std::make_unique<CountingTrng>(kChunk));
            pool.push_back(backends.back().get());
        }
        service = std::make_unique<EntropyService>(
            pool, EntropyServiceConfig{
                      .shardCapacityBytes = capacity,
                      .refillWatermark = 1.0,
                      .panicWatermark = panic});
    }
};

MultiChannelRefillConfig
multiConfig(unsigned channels, sysperf::FairnessPolicy policy)
{
    MultiChannelRefillConfig cfg;
    cfg.topology.channels = channels;
    cfg.policy = policy;
    cfg.tickNs = 1.0e5;
    cfg.seed = 17;
    return cfg;
}

TEST(ShardPlacement, RoundRobinCoversAllShardsDisjointly)
{
    ShardPlacement placement = ShardPlacement::roundRobin(10, 4);
    ASSERT_EQ(placement.shards(), 10u);
    auto sets = placement.byChannel(4);
    ASSERT_EQ(sets.size(), 4u);
    size_t covered = 0;
    std::vector<bool> seen(10, false);
    for (const auto &set : sets) {
        for (size_t shard : set) {
            EXPECT_FALSE(seen[shard]);
            seen[shard] = true;
            ++covered;
        }
    }
    EXPECT_EQ(covered, 10u);
    EXPECT_EQ(sets[0], (std::vector<size_t>{0, 4, 8}));
    EXPECT_EQ(sets[3], (std::vector<size_t>{3, 7}));
}

TEST(ShardPlacement, OutOfRangeChannelPanics)
{
    ShardPlacement placement;
    placement.channelOfShard = {0, 5};
    EXPECT_THROW(placement.byChannel(4), PanicError);
}

TEST(MultiChannelScheduler, RejectsMismatchedConfig)
{
    Harness harness(4, 1 << 12);
    EXPECT_THROW(MultiChannelRefillScheduler(
                     *harness.service,
                     {{"a", 0.1, 80.0}, {"b", 0.1, 80.0}},
                     multiConfig(4, sysperf::FairnessPolicy::Fcfs)),
                 FatalError)
        << "2 profiles for 4 channels";

    ShardPlacement bad = ShardPlacement::roundRobin(3, 2);
    EXPECT_THROW(MultiChannelRefillScheduler(
                     *harness.service, {{"a", 0.1, 80.0}},
                     multiConfig(2, sysperf::FairnessPolicy::Fcfs),
                     bad),
                 FatalError)
        << "placement covers 3 shards, service has 4";
}

TEST(MultiChannelScheduler, SingleProfileBroadcasts)
{
    Harness harness(4, 1 << 12);
    MultiChannelRefillScheduler scheduler(
        *harness.service, {{"idle", 0.0, 100.0}},
        multiConfig(4, sysperf::FairnessPolicy::Fcfs));
    EXPECT_EQ(scheduler.channels(), 4u);
    scheduler.run(20);
    for (size_t s = 0; s < 4; ++s)
        EXPECT_EQ(harness.service->level(s), size_t{1} << 12) << s;
}

TEST(MultiChannelScheduler, PerChannelTotalsSumToAggregate)
{
    Harness harness(8, 1 << 14);
    std::vector<sysperf::WorkloadProfile> traffic = {
        {"heavy", 0.60, 120.0},
        {"light", 0.05, 60.0},
        {"mid", 0.30, 90.0},
        {"idle", 0.0, 60.0}};
    MultiChannelRefillScheduler scheduler(
        *harness.service, traffic,
        multiConfig(4, sysperf::FairnessPolicy::Fcfs));
    scheduler.run(10);

    RefillAccounting sum;
    for (size_t c = 0; c < 4; ++c)
        sum.accumulate(scheduler.channelTotal(c));
    const RefillAccounting &total = scheduler.total();
    EXPECT_DOUBLE_EQ(sum.grantedNs, total.grantedNs);
    EXPECT_DOUBLE_EQ(sum.neededNs, total.neededNs);
    EXPECT_DOUBLE_EQ(sum.busyNs, total.busyNs);
    EXPECT_EQ(sum.bytesRefilled, total.bytesRefilled);
    EXPECT_EQ(total.ticks, 10u);
    EXPECT_EQ(scheduler.channelTotal(0).ticks, 10u);
    // Channels were modelled for the same time but granted
    // differently by their own traffic.
    EXPECT_DOUBLE_EQ(scheduler.channelTotal(0).modeledNs,
                     scheduler.channelTotal(3).modeledNs);
    EXPECT_LT(scheduler.channelTotal(0).grantedNs,
              scheduler.channelTotal(3).grantedNs);
}

TEST(MultiChannelScheduler, ChannelsRefillOnlyTheirPlacedShards)
{
    // Channel 1 is almost fully busy: under FCFS its shards only
    // get the trickle of usable idle gaps, while channel 0's shards
    // fill completely from an idle channel.
    Harness harness(4, 1 << 14);
    std::vector<sysperf::WorkloadProfile> traffic = {
        {"idle", 0.0, 100.0}, {"jam", 0.995, 5.0e4}};
    MultiChannelRefillScheduler scheduler(
        *harness.service, traffic,
        multiConfig(2, sysperf::FairnessPolicy::Fcfs));
    scheduler.run(20);

    EXPECT_EQ(harness.service->level(0), size_t{1} << 14);
    EXPECT_EQ(harness.service->level(2), size_t{1} << 14);
    EXPECT_LT(harness.service->level(1), size_t{1} << 12);
    EXPECT_LT(harness.service->level(3), size_t{1} << 12);
}

TEST(MultiChannelScheduler, SingleChannelMatchesLegacyScheduler)
{
    // The RefillScheduler front-end and a 1-channel pool must agree
    // tick for tick (same seeds, same grants, same refills).
    sysperf::WorkloadProfile lbm{"lbm-like", 0.65, 160.0};

    Harness legacy_harness(2, 1 << 16);
    RefillSchedulerConfig legacy_cfg;
    legacy_cfg.policy = sysperf::FairnessPolicy::BufferedFair;
    legacy_cfg.seed = 17;
    RefillScheduler legacy(*legacy_harness.service, lbm, legacy_cfg);

    Harness pool_harness(2, 1 << 16);
    MultiChannelRefillScheduler pool(
        *pool_harness.service, {lbm},
        multiConfig(1, sysperf::FairnessPolicy::BufferedFair));

    for (int t = 0; t < 5; ++t) {
        RefillAccounting a = legacy.tick();
        RefillAccounting b = pool.tick();
        EXPECT_DOUBLE_EQ(a.grantedNs, b.grantedNs) << t;
        EXPECT_DOUBLE_EQ(a.neededNs, b.neededNs) << t;
        EXPECT_DOUBLE_EQ(a.busyNs, b.busyNs) << t;
        EXPECT_EQ(a.bytesRefilled, b.bytesRefilled) << t;
    }
}

TEST(MultiChannelScheduler, PerChannelFairnessPolicies)
{
    // Same busy co-runner on both channels, but channel 0 arbitrates
    // rng-priority while channel 1 runs fcfs: channel 0 steals from
    // demand traffic and keeps its shards topped up; channel 1 never
    // steals and falls behind.
    auto drive = [](MultiChannelRefillConfig cfg) {
        Harness harness(4, 1 << 14);
        std::vector<sysperf::WorkloadProfile> traffic = {
            {"busy", 0.90, 2000.0}, {"busy", 0.90, 2000.0}};
        MultiChannelRefillScheduler scheduler(*harness.service,
                                              traffic, cfg);
        std::vector<EntropyService::Client> clients;
        for (size_t s = 0; s < 4; ++s) {
            clients.push_back(harness.service->connect(
                "c" + std::to_string(s), Priority::Bulk, s));
        }
        uint8_t out[4096];
        for (int t = 0; t < 20; ++t) {
            for (auto &client : clients)
                client.request(out, sizeof(out));
            scheduler.tick();
        }
        return std::make_pair(
            scheduler.channelTotal(0).bytesRefilled,
            scheduler.channelTotal(1).bytesRefilled);
    };

    MultiChannelRefillConfig split =
        multiConfig(2, sysperf::FairnessPolicy::Fcfs);
    split.channelPolicies = {sysperf::FairnessPolicy::RngPriority,
                             sysperf::FairnessPolicy::Fcfs};
    auto [rng_channel, fcfs_channel] = drive(split);
    EXPECT_GT(rng_channel, 2 * fcfs_channel)
        << "the rng-priority channel out-refills the fcfs one";

    Harness harness(4, 1 << 14);
    MultiChannelRefillConfig mismatched =
        multiConfig(2, sysperf::FairnessPolicy::Fcfs);
    mismatched.channelPolicies = {sysperf::FairnessPolicy::Fcfs};
    EXPECT_THROW(MultiChannelRefillScheduler(
                     *harness.service,
                     {{"a", 0.1, 80.0}, {"b", 0.1, 80.0}}, mismatched),
                 FatalError)
        << "1 channel policy for 2 channels";

    MultiChannelRefillConfig broadcast =
        multiConfig(2, sysperf::FairnessPolicy::BufferedFair);
    MultiChannelRefillScheduler pool(
        *harness.service, {{"a", 0.1, 80.0}, {"b", 0.1, 80.0}},
        broadcast);
    EXPECT_EQ(pool.channelPolicy(0),
              sysperf::FairnessPolicy::BufferedFair);
    EXPECT_EQ(pool.channelPolicy(1),
              sysperf::FairnessPolicy::BufferedFair);
}

// --------------------------------------------------- rebalancing

/** Channel 0 saturated, the rest idle; shards drained each tick. */
struct StarvedSetup
{
    Harness harness{4, 4096};
    std::vector<EntropyService::Client> clients;
    std::vector<std::vector<uint8_t>> served;

    MultiChannelRefillScheduler
    makeScheduler(bool rebalance)
    {
        MultiChannelRefillConfig cfg =
            multiConfig(2, sysperf::FairnessPolicy::Fcfs);
        cfg.rebalance = rebalance;
        cfg.starveTickThreshold = 3;
        return MultiChannelRefillScheduler(
            *harness.service,
            {{"jam", 0.995, 5.0e4}, {"idle", 0.0, 100.0}}, cfg);
    }

    void
    drive(MultiChannelRefillScheduler &scheduler, int ticks)
    {
        for (size_t s = 0; s < 4; ++s) {
            clients.push_back(harness.service->connect(
                "c" + std::to_string(s), Priority::Standard, s));
        }
        served.resize(4);
        uint8_t out[1024];
        for (int t = 0; t < ticks; ++t) {
            for (size_t s = 0; s < 4; ++s) {
                RequestResult result =
                    clients[s].request(out, sizeof(out));
                served[s].insert(served[s].end(), out,
                                 out + result.bytes);
            }
            scheduler.tick();
        }
    }
};

TEST(Rebalancer, DetectsStarvedShardUnderFcfs)
{
    // Rebalancing off: the starvation counters must still expose the
    // shards the saturated channel cannot serve.
    StarvedSetup setup;
    MultiChannelRefillScheduler scheduler = setup.makeScheduler(false);
    setup.drive(scheduler, 12);

    EXPECT_GE(scheduler.starvedTicks(0), 3u)
        << "shard 0 starves on the jammed channel";
    EXPECT_GE(scheduler.starvedTicks(2), 3u);
    EXPECT_EQ(scheduler.starvedTicks(1), 0u)
        << "the idle channel keeps shard 1 topped up";
    EXPECT_EQ(scheduler.migrations(), 0u);
    EXPECT_EQ(scheduler.placement().channelOfShard,
              (std::vector<size_t>{0, 1, 0, 1}));
}

TEST(Rebalancer, MigratesStarvedShardsAndImprovesThem)
{
    StarvedSetup off_setup;
    MultiChannelRefillScheduler off = off_setup.makeScheduler(false);
    off_setup.drive(off, 30);

    StarvedSetup on_setup;
    MultiChannelRefillScheduler on = on_setup.makeScheduler(true);
    on_setup.drive(on, 30);

    EXPECT_EQ(off.migrations(), 0u);
    EXPECT_GE(on.migrations(), 2u);
    EXPECT_EQ(on.placement().channelOfShard[0], 1u)
        << "starved shard 0 moved to the idle channel";
    EXPECT_EQ(on.placement().channelOfShard[2], 1u);

    // The starved shard improves: more of its requests come from
    // the buffer once the idle channel refills it.
    ClientStats off_stats = off_setup.clients[0].stats();
    ClientStats on_stats = on_setup.clients[0].stats();
    EXPECT_GT(on_stats.bufferHits, off_stats.bufferHits);
    EXPECT_LT(on_stats.synchronousFills, off_stats.synchronousFills);

    // ... without changing a single output byte on any shard.
    for (size_t s = 0; s < 4; ++s)
        EXPECT_EQ(off_setup.served[s], on_setup.served[s]) << s;
}

TEST(Rebalancer, TwoSaturatedChannelsDoNotPingPong)
{
    // Both channels jammed: every shard starves, but no channel is a
    // refuge (both under-grant their own shards), so the rebalancer
    // must hold every shard in place instead of trading them between
    // two channels that cannot serve them.
    Harness harness(4, 4096);
    MultiChannelRefillConfig cfg =
        multiConfig(2, sysperf::FairnessPolicy::Fcfs);
    cfg.rebalance = true;
    cfg.starveTickThreshold = 2;
    MultiChannelRefillScheduler scheduler(
        *harness.service,
        {{"jam", 0.995, 5.0e4}, {"jam", 0.995, 5.0e4}}, cfg);

    std::vector<EntropyService::Client> clients;
    for (size_t s = 0; s < 4; ++s) {
        clients.push_back(harness.service->connect(
            "c" + std::to_string(s), Priority::Standard, s));
    }
    uint8_t out[1024];
    for (int t = 0; t < 40; ++t) {
        for (auto &client : clients)
            client.request(out, sizeof(out));
        scheduler.tick();
    }
    EXPECT_EQ(scheduler.migrations(), 0u)
        << "no healthy destination exists";
    EXPECT_EQ(scheduler.placement().channelOfShard,
              (std::vector<size_t>{0, 1, 0, 1}));
    // Starvation is still visible to the operator.
    EXPECT_GE(scheduler.starvedTicks(0), 2u);
    EXPECT_GE(scheduler.starvedTicks(1), 2u);
}

TEST(Rebalancer, MigrationCooldownHoldsAfterMove)
{
    // Jam + idle: the two starved shards migrate once to the idle
    // channel and then stay (exactly one migration each, no churn).
    StarvedSetup setup;
    MultiChannelRefillScheduler scheduler = setup.makeScheduler(true);
    setup.drive(scheduler, 40);
    EXPECT_EQ(scheduler.migrations(), 2u);
    EXPECT_EQ(scheduler.placement().channelOfShard,
              (std::vector<size_t>{1, 1, 1, 1}));
}

TEST(Rebalancer, ShardLatencyTriggerMigratesOnMeasuredTail)
{
    // Closed loop: the starvation signal is the shards' measured
    // recent p95 (timestamped requests missing to synchronous
    // fills), not the grant ratio.
    Harness harness(4, 4096);
    MultiChannelRefillConfig cfg =
        multiConfig(2, sysperf::FairnessPolicy::Fcfs);
    cfg.rebalance = true;
    cfg.trigger = RebalanceTrigger::ShardLatency;
    cfg.rebalanceSloNs = 500.0;
    cfg.starveTickThreshold = 3;
    MultiChannelRefillScheduler scheduler(
        *harness.service,
        {{"jam", 0.995, 5.0e4}, {"idle", 0.0, 100.0}}, cfg);

    std::vector<EntropyService::Client> clients;
    for (size_t s = 0; s < 4; ++s) {
        clients.push_back(harness.service->connect(
            "c" + std::to_string(s), Priority::Standard, s));
    }
    uint8_t out[1024];
    double now = 0.0;
    for (int t = 0; t < 20; ++t) {
        for (auto &client : clients)
            client.requestAt(out, sizeof(out), now);
        now += 1.0e5;
        scheduler.tick();
    }
    EXPECT_GE(scheduler.migrations(), 1u);
    EXPECT_EQ(scheduler.placement().channelOfShard[0], 1u)
        << "the measured tail moved the starved shard off channel 0";
}

// -------------------------------------------- deterministic replay

/**
 * The replay regression the multi-channel refactor must preserve:
 * the same client trace under 1-, 2-, and 4-channel placements
 * produces byte-identical per-shard output. Placement only decides
 * which channel's granted time refills a shard; every shard drains
 * its own backend stream in order.
 */
TEST(MultiChannelReplay, ShardOutputIdenticalAcross124Channels)
{
    auto run = [](unsigned channels) {
        Harness harness(4, 4096);
        std::vector<sysperf::WorkloadProfile> traffic;
        for (unsigned c = 0; c < channels; ++c) {
            traffic.push_back(c % 2 == 0
                                  ? sysperf::WorkloadProfile{
                                        "mid", 0.45, 120.0}
                                  : sysperf::WorkloadProfile{
                                        "light", 0.05, 60.0});
        }
        MultiChannelRefillScheduler scheduler(
            *harness.service, traffic,
            multiConfig(channels,
                        sysperf::FairnessPolicy::BufferedFair));

        std::vector<EntropyService::Client> clients;
        for (size_t s = 0; s < 4; ++s) {
            clients.push_back(harness.service->connect(
                "c" + std::to_string(s), Priority::Standard, s));
        }
        // A fixed trace with varying request sizes; interleaves
        // hits, misses, and refills.
        std::vector<std::string> digests;
        std::vector<std::vector<uint8_t>> served(4);
        uint8_t out[640];
        for (int t = 0; t < 40; ++t) {
            for (size_t s = 0; s < 4; ++s) {
                size_t len = 64 + 64 * ((t + s) % 10);
                RequestResult result = clients[s].request(out, len);
                served[s].insert(served[s].end(), out,
                                 out + result.bytes);
            }
            scheduler.tick();
        }
        for (size_t s = 0; s < 4; ++s) {
            digests.push_back(Sha256::hex(Sha256::hash(
                served[s].data(), served[s].size())));
        }
        return digests;
    };

    auto one = run(1);
    auto two = run(2);
    auto four = run(4);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, four);
}

} // anonymous namespace
} // namespace quac::service

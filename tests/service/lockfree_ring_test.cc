/**
 * @file
 * Lock-free request data plane tests: the per-shard SHA replay
 * invariant across the mutex and lock-free serving planes, and
 * thread-sanitizer hammer tests driving N consumers against the SPMC
 * ring's producer, client migration, and quarantine re-sourcing. The
 * hammers run under the regular build too (the invariant checks are
 * cheap); CI's TSan job is where they earn their keep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_injection.hh"
#include "crypto/sha256.hh"
#include "service/entropy_service.hh"

namespace quac::service
{
namespace
{

/**
 * Deterministic backend whose byte stream is a pure function of its
 * tag and stream position: byte k = tag + 151 * k. Any contiguous
 * slice of any tag's stream steps by 151 between neighbouring bytes,
 * so per-request stream contiguity is checkable without knowing
 * which backend (or stream offset) served the request.
 */
class TaggedTrng : public core::Trng
{
  public:
    explicit TaggedTrng(uint8_t tag, size_t chunk = 0)
        : tag_(tag), chunk_(chunk)
    {
    }

    std::string name() const override { return "tagged"; }

    void
    fill(uint8_t *out, size_t len) override
    {
        for (size_t i = 0; i < len; ++i) {
            out[i] = static_cast<uint8_t>(tag_ + 151 * counter_);
            ++counter_;
        }
    }

    size_t preferredChunkBytes() override { return chunk_; }

  private:
    uint8_t tag_;
    size_t chunk_;
    uint64_t counter_ = 0;
};

/** Bytes within one request must step by 151 (see TaggedTrng). */
bool
isStreamContiguous(const uint8_t *bytes, size_t len)
{
    for (size_t i = 1; i < len; ++i) {
        if (static_cast<uint8_t>(bytes[i] - bytes[i - 1]) != 151)
            return false;
    }
    return true;
}

/**
 * One deterministic serial schedule over both serving planes: mixed
 * classes and request sizes (hits, bulk partials, misses), refills,
 * a migration and a retune flush. Returns the SHA-256 over every
 * client's served bytes in schedule order — the per-shard streams
 * are identical iff this digest is.
 */
std::string
scheduleDigest(bool lock_free)
{
    TaggedTrng b0(10, 64);
    TaggedTrng b1(20, 64);
    EntropyServiceConfig cfg;
    cfg.shards = 2;
    cfg.shardCapacityBytes = 256;
    cfg.lockFreeReads = lock_free;
    EntropyService svc({&b0, &b1}, cfg);

    EntropyService::Client i0 =
        svc.connect("i0", Priority::Interactive, 0);
    EntropyService::Client s0 = svc.connect("s0", Priority::Standard, 0);
    EntropyService::Client k0 = svc.connect("k0", Priority::Bulk, 0);
    EntropyService::Client s1 = svc.connect("s1", Priority::Standard, 1);
    EntropyService::Client k1 = svc.connect("k1", Priority::Bulk, 1);

    Sha256 sha;
    std::vector<uint8_t> buf(2048);
    auto absorb = [&](EntropyService::Client &client, size_t len) {
        RequestResult res = client.request(buf.data(), len);
        sha.update(buf.data(), res.bytes);
        uint8_t meta[2] = {static_cast<uint8_t>(res.hit),
                           static_cast<uint8_t>(res.denied)};
        sha.update(meta, sizeof(meta));
    };

    svc.refillBelowWatermark();
    absorb(i0, 64);        // hit
    absorb(k0, 512);       // bulk partial (more than buffered)
    absorb(s0, 300);       // miss -> sync fill
    absorb(s1, 96);
    absorb(k1, 32);
    svc.migrateClient(s0, 1); // s0 now drains shard 1's stream
    absorb(s0, 64);
    svc.refillBelowWatermark();
    absorb(i0, 128);
    svc.retuneBackend(0, [] { return true; }); // flush shard 0
    absorb(i0, 48);        // post-flush miss
    svc.refillBelowWatermark();
    absorb(k0, 200);
    absorb(s1, 17);
    absorb(i0, 1);

    // The aggregate counters ride the same plane-independence
    // contract; fold them into the digest too.
    uint64_t counters[4] = {svc.requestsServed(), svc.bufferHits(),
                            svc.synchronousFills(), svc.denials()};
    sha.update(reinterpret_cast<const uint8_t *>(counters),
               sizeof(counters));
    return Sha256::hex(sha.finish());
}

TEST(LockFreeRing, MutexAndLockFreePlanesServeIdenticalStreams)
{
    EXPECT_EQ(scheduleDigest(true), scheduleDigest(false));
}

TEST(LockFreeRing, HammerConsumersProducerAndMigration)
{
    TaggedTrng b0(30, 128);
    TaggedTrng b1(40, 128);
    EntropyServiceConfig cfg;
    cfg.shards = 2;
    cfg.shardCapacityBytes = 2048;
    EntropyService svc({&b0, &b1}, cfg);
    svc.startAutoRefill(std::chrono::microseconds(50));

    constexpr int kConsumers = 4;
    constexpr int kIterations = 1500;
    std::atomic<int> contiguityErrors{0};
    std::atomic<uint64_t> bytesSeen{0};

    std::vector<EntropyService::Client> clients;
    for (int c = 0; c < kConsumers; ++c) {
        clients.push_back(
            svc.connect("c" + std::to_string(c),
                        c % 2 ? Priority::Bulk : Priority::Standard,
                        c % 2));
    }
    EntropyService::Client roamer =
        svc.connect("roamer", Priority::Standard, 0);

    std::vector<std::thread> threads;
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&, c] {
            std::vector<uint8_t> buf(128);
            for (int iter = 0; iter < kIterations; ++iter) {
                size_t len = 48 + (7 * c + iter) % 64;
                RequestResult res =
                    clients[c].request(buf.data(), len);
                if (!isStreamContiguous(buf.data(), res.bytes))
                    contiguityErrors.fetch_add(1);
                bytesSeen.fetch_add(res.bytes);
            }
        });
    }
    threads.emplace_back([&] {
        std::vector<uint8_t> buf(64);
        for (int iter = 0; iter < kIterations; ++iter) {
            RequestResult res = roamer.request(buf.data(), 40);
            if (!isStreamContiguous(buf.data(), res.bytes))
                contiguityErrors.fetch_add(1);
            bytesSeen.fetch_add(res.bytes);
        }
    });
    // Migration churn against the in-flight requests.
    for (int m = 0; m < 400; ++m) {
        svc.migrateClient(roamer, m % 2);
        std::this_thread::yield();
    }
    for (std::thread &thread : threads)
        thread.join();
    svc.stopAutoRefill();

    EXPECT_EQ(contiguityErrors.load(), 0);
    EXPECT_GT(bytesSeen.load(), 0u);

    // Byte conservation: everything the producer published was
    // either served from the buffer or still sits in a ring
    // (synchronous fills bypass the rings entirely).
    uint64_t from_buffer = roamer.stats().bytesFromBuffer;
    for (const EntropyService::Client &client : clients)
        from_buffer += client.stats().bytesFromBuffer;
    EXPECT_EQ(from_buffer + svc.totalLevel(), svc.bytesRefilled());
}

TEST(LockFreeRing, HammerQuarantineResourcingUnderLoad)
{
    // Bank 1 carries a bounded bias fault: the health monitor
    // quarantines it mid-run (flush + re-source race the consumers),
    // probation walks it past the fault, and the shard returns home.
    // Shard 0's bank stays healthy, so its requests must stay
    // stream-contiguous throughout; the tripwire must stay zero.
    TaggedTrng b0(50, 128);
    TaggedTrng b1_inner(60, 128);
    TaggedTrng b2(70, 128);
    core::FaultInjectedTrng b1(
        b1_inner, core::FaultSpec::parse("1:bias:0:2048:0.95"), 7);

    EntropyServiceConfig cfg;
    cfg.shards = 2;
    cfg.shardCapacityBytes = 1024;
    cfg.health.enabled = true;
    cfg.health.windowBits = 1024;
    cfg.health.alphaExponent = 40;
    cfg.health.failWindowLimit = 2;
    cfg.health.probationWindows = 3;
    cfg.health.readFailureLimit = 3;
    EntropyService svc({&b0, &b1, &b2}, cfg);

    std::atomic<int> contiguityErrors{0};
    std::atomic<bool> stop{false};
    EntropyService::Client c0 =
        svc.connect("c0", Priority::Standard, 0);
    EntropyService::Client c1a =
        svc.connect("c1a", Priority::Standard, 1);
    EntropyService::Client c1b = svc.connect("c1b", Priority::Bulk, 1);

    std::vector<std::thread> threads;
    threads.emplace_back([&] {
        std::vector<uint8_t> buf(96);
        // relaxed: test stop flag; no data is published through it.
        while (!stop.load(std::memory_order_relaxed)) {
            RequestResult res = c0.request(buf.data(), 80);
            if (!isStreamContiguous(buf.data(), res.bytes))
                contiguityErrors.fetch_add(1);
        }
    });
    threads.emplace_back([&] {
        std::vector<uint8_t> buf(96);
        while (!stop.load(std::memory_order_relaxed))
            c1a.request(buf.data(), 64);
    });
    threads.emplace_back([&] {
        std::vector<uint8_t> buf(96);
        while (!stop.load(std::memory_order_relaxed))
            c1b.request(buf.data(), 96);
    });

    // The producer/health loop: refill + control-loop ticks racing
    // the consumers until the faulty bank has gone all the way to
    // quarantine and back home.
    for (int tick = 0; tick < 3000; ++tick) {
        svc.refillBelowWatermark();
        svc.healthTick();
        if (svc.healthStats().readmissions > 0 &&
            svc.shardBackendIndex(1) == 1 && tick > 50)
            break;
        std::this_thread::yield();
    }
    // relaxed: stop flag only; the joins below synchronize.
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(contiguityErrors.load(), 0);
    EntropyService::HealthStats stats = svc.healthStats();
    EXPECT_GE(stats.quarantines, 1u);
    EXPECT_EQ(stats.unhealthyBytesServed, 0u);
    EXPECT_GT(stats.unhealthyBytesDropped, 0u);
}

} // anonymous namespace
} // namespace quac::service

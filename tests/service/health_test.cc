/**
 * @file
 * Tests for streaming health monitoring end to end: the
 * HealthMonitor state machine (quarantine, probation, re-admission,
 * the last-servable-bank flag rule, read-failure streaks), the
 * service-level reaction (shard re-sourcing, zero unhealthy bytes
 * served, byte identity of healthy shards with monitoring on/off),
 * and hardening of every fill path against throwing backends.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/rng.hh"
#include "core/fault_injection.hh"
#include "service/entropy_service.hh"
#include "service/health.hh"

namespace quac::service
{
namespace
{

/** Small windows so tests cross many of them cheaply. */
HealthConfig
testHealthConfig()
{
    HealthConfig cfg;
    cfg.enabled = true;
    cfg.windowBits = 1024; // 128 bytes
    cfg.alphaExponent = 40;
    cfg.failWindowLimit = 2;
    cfg.probationWindows = 3;
    cfg.readFailureLimit = 3;
    return cfg;
}

constexpr size_t kWindowBytes = 1024 / 8;

/** One window of bytes that passes every test (seeded, distinct). */
std::vector<uint8_t>
goodWindow(uint64_t seed)
{
    Xoshiro256pp rng(seed * 2654435761u + 1);
    std::vector<uint8_t> bytes(kWindowBytes);
    for (auto &byte : bytes)
        byte = static_cast<uint8_t>(rng.next());
    return bytes;
}

/**
 * One failing window: 0xEE bytes are 75% ones, so monobit/serial
 * collapse far below the p-value cutoff, but the longest run is 3
 * bits. A stuck-at window would also fail, but its terminal run
 * would bleed into the NEXT window through the continuous repetition
 * count test — these tests need failures that stay window-local.
 */
std::vector<uint8_t>
badWindow()
{
    return std::vector<uint8_t>(kWindowBytes, 0xEE);
}

void
feedGood(HealthMonitor &monitor, size_t bank, int windows,
         uint64_t seed_base = 1000)
{
    for (int w = 0; w < windows; ++w) {
        std::vector<uint8_t> bytes =
            goodWindow(seed_base + static_cast<uint64_t>(w));
        monitor.observe(bank, bytes.data(), bytes.size());
    }
}

void
feedBad(HealthMonitor &monitor, size_t bank, int windows)
{
    for (int w = 0; w < windows; ++w) {
        std::vector<uint8_t> bytes = badWindow();
        monitor.observe(bank, bytes.data(), bytes.size());
    }
}

// ------------------------------------------- monitor state machine

TEST(HealthMonitor, QuarantineAfterConsecutiveFailingWindows)
{
    HealthMonitor monitor(2, testHealthConfig());
    EXPECT_EQ(monitor.state(0), BankState::Healthy);
    EXPECT_TRUE(monitor.servable(0));

    // One failing window is not enough (failWindowLimit = 2)...
    feedBad(monitor, 0, 1);
    EXPECT_EQ(monitor.state(0), BankState::Healthy);
    // ...and a clean window resets the streak...
    feedGood(monitor, 0, 1);
    feedBad(monitor, 0, 1);
    EXPECT_EQ(monitor.state(0), BankState::Healthy);
    // ...but two in a row quarantine.
    feedBad(monitor, 0, 1);
    EXPECT_EQ(monitor.state(0), BankState::Quarantined);
    EXPECT_FALSE(monitor.servable(0));
    EXPECT_EQ(monitor.quarantines(), 1u);
    EXPECT_EQ(monitor.servableCount(), 1u);

    BankScore score = monitor.score(0);
    EXPECT_EQ(score.windowsFailed, 3u);
    EXPECT_LT(score.lastMinP, monitor.config().pValueCutoff);
}

TEST(HealthMonitor, ProbationThenReadmission)
{
    HealthMonitor monitor(2, testHealthConfig());
    feedBad(monitor, 0, 2);
    ASSERT_EQ(monitor.state(0), BankState::Quarantined);

    // First clean window: probation, still not servable.
    feedGood(monitor, 0, 1);
    EXPECT_EQ(monitor.state(0), BankState::Probation);
    EXPECT_FALSE(monitor.servable(0));
    // A failing window during probation goes straight back.
    feedBad(monitor, 0, 1);
    EXPECT_EQ(monitor.state(0), BankState::Quarantined);
    EXPECT_EQ(monitor.quarantines(), 2u);

    // Full clean run: probation then re-admission after
    // probationWindows consecutive clean windows.
    feedGood(monitor, 0, 1);
    EXPECT_EQ(monitor.state(0), BankState::Probation);
    feedGood(monitor, 0, 2);
    EXPECT_EQ(monitor.state(0), BankState::Healthy);
    EXPECT_TRUE(monitor.servable(0));
    EXPECT_EQ(monitor.readmissions(), 1u);

    // The event log tells the whole story in order.
    std::vector<HealthEvent> events = monitor.events();
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[0].kind, HealthEvent::Kind::Quarantine);
    EXPECT_EQ(events[1].kind, HealthEvent::Kind::Probation);
    EXPECT_EQ(events[2].kind, HealthEvent::Kind::Quarantine);
    EXPECT_EQ(events[3].kind, HealthEvent::Kind::Probation);
    EXPECT_EQ(events[4].kind, HealthEvent::Kind::Readmit);
}

TEST(HealthMonitor, LastServableBankIsFlaggedNotQuarantined)
{
    HealthMonitor monitor(2, testHealthConfig());
    feedBad(monitor, 0, 2);
    ASSERT_EQ(monitor.state(0), BankState::Quarantined);

    // Bank 1 is now the last servable bank: failing windows flag it
    // but never quarantine it — it keeps serving, marked.
    feedBad(monitor, 1, 4);
    EXPECT_EQ(monitor.state(1), BankState::Flagged);
    EXPECT_TRUE(monitor.servable(1));
    EXPECT_EQ(monitor.servableCount(), 1u);

    // Once bank 0 recovers, a failing window on the still-broken
    // bank 1 quarantines it (an alternative now exists).
    feedGood(monitor, 0, 4);
    ASSERT_EQ(monitor.state(0), BankState::Healthy);
    feedBad(monitor, 1, 1);
    EXPECT_EQ(monitor.state(1), BankState::Quarantined);
    EXPECT_EQ(monitor.servableCount(), 1u);
}

TEST(HealthMonitor, FlaggedBankRecoversThroughCleanWindows)
{
    HealthMonitor monitor(1, testHealthConfig());
    feedBad(monitor, 0, 2);
    // The only bank can never be quarantined.
    EXPECT_EQ(monitor.state(0), BankState::Flagged);
    EXPECT_TRUE(monitor.servable(0));
    EXPECT_EQ(monitor.quarantines(), 0u);

    feedGood(monitor, 0, 3);
    EXPECT_EQ(monitor.state(0), BankState::Healthy);
    EXPECT_EQ(monitor.readmissions(), 1u);
}

TEST(HealthMonitor, ReadFailureStreakQuarantines)
{
    HealthMonitor monitor(2, testHealthConfig());
    // Two failures, then a successful observe: streak resets.
    monitor.reportReadFailure(0);
    monitor.reportReadFailure(0);
    feedGood(monitor, 0, 1);
    EXPECT_EQ(monitor.state(0), BankState::Healthy);
    EXPECT_EQ(monitor.score(0).readFailures, 2u);
    EXPECT_EQ(monitor.score(0).consecutiveReadFailures, 0u);

    // Three consecutive failures cross the limit.
    monitor.reportReadFailure(0);
    monitor.reportReadFailure(0);
    EXPECT_EQ(monitor.state(0), BankState::Healthy);
    monitor.reportReadFailure(0);
    EXPECT_EQ(monitor.state(0), BankState::Quarantined);

    // A read failure during probation re-quarantines.
    feedGood(monitor, 0, 1);
    ASSERT_EQ(monitor.state(0), BankState::Probation);
    monitor.reportReadFailure(0);
    EXPECT_EQ(monitor.state(0), BankState::Quarantined);
}

TEST(HealthMonitor, ValidatesConfiguration)
{
    HealthConfig cfg = testHealthConfig();
    EXPECT_THROW(HealthMonitor(0, cfg), FatalError);

    cfg.windowBits = 0;
    EXPECT_THROW(HealthMonitor(2, cfg), FatalError);
    cfg = testHealthConfig();
    cfg.failWindowLimit = 0;
    EXPECT_THROW(HealthMonitor(2, cfg), FatalError);
    cfg = testHealthConfig();
    cfg.probationWindows = 0;
    EXPECT_THROW(HealthMonitor(2, cfg), FatalError);
    cfg = testHealthConfig();
    cfg.readFailureLimit = 0;
    EXPECT_THROW(HealthMonitor(2, cfg), FatalError);
    cfg = testHealthConfig();
    cfg.pValueCutoff = 1.0;
    EXPECT_THROW(HealthMonitor(2, cfg), FatalError);
}

// --------------------------------------------- service integration

/** Service config used by the integration tests below. */
EntropyServiceConfig
testServiceConfig(size_t shards, bool health)
{
    EntropyServiceConfig cfg;
    cfg.shards = shards;
    cfg.shardCapacityBytes = 1024;
    cfg.refillWatermark = 0.75;
    cfg.panicWatermark = 0.25;
    cfg.health = testHealthConfig();
    cfg.health.enabled = health;
    return cfg;
}

TEST(ServiceHealth, ConfigValidatedThroughServiceCtor)
{
    core::SoftwareTrng backend(1);
    EntropyServiceConfig cfg = testServiceConfig(1, true);
    cfg.health.windowBits = 0;
    EXPECT_THROW(EntropyService({&backend}, cfg), FatalError);
    cfg = testServiceConfig(1, true);
    cfg.health.entropyPerBit = 2.0;
    EXPECT_THROW(EntropyService({&backend}, cfg), FatalError);
    // The same nonsense with health disabled is accepted (knobs are
    // never read).
    cfg.health.enabled = false;
    EntropyService svc({&backend}, cfg);
    EXPECT_EQ(svc.healthMonitor(), nullptr);
}

TEST(ServiceHealth, StuckBankQuarantinedAndShardResourced)
{
    // Bank 1 is stuck-at-0xFF from stream byte 0, permanently; bank
    // 2 is the spare. The very first refill detects it.
    core::SoftwareTrng bank0(11);
    core::SoftwareTrng bank1_inner(12);
    core::SoftwareTrng bank2(13);
    core::FaultInjectedTrng bank1(
        bank1_inner, core::FaultSpec::parse("1:stuck:0:0:255"));

    EntropyService svc({&bank0, &bank1, &bank2},
                       testServiceConfig(2, true));
    svc.refillBelowWatermark();

    const HealthMonitor *monitor = svc.healthMonitor();
    ASSERT_NE(monitor, nullptr);
    EXPECT_EQ(monitor->state(1), BankState::Quarantined);
    EXPECT_EQ(monitor->state(0), BankState::Healthy);
    EXPECT_EQ(svc.shardBackendIndex(0), 0u);
    EXPECT_EQ(svc.shardBackendIndex(1), 2u); // re-sourced to spare

    EntropyService::HealthStats stats = svc.healthStats();
    EXPECT_TRUE(stats.enabled);
    EXPECT_EQ(stats.quarantines, 1u);
    EXPECT_GT(stats.unhealthyBytesDropped, 0u);
    EXPECT_EQ(stats.unhealthyBytesServed, 0u);
    EXPECT_GE(stats.shardResourcings, 1u);

    // Shard 1 now serves the spare's stream from position 0, and no
    // served byte is the stuck value run.
    EntropyService::Client client = svc.connect("c", Priority::Standard, 1);
    std::vector<uint8_t> got = client.request(256);
    ASSERT_EQ(got.size(), 256u);
    core::SoftwareTrng reference(13);
    std::vector<uint8_t> expected(256);
    reference.fill(expected.data(), expected.size());
    EXPECT_EQ(got, expected);
    EXPECT_EQ(svc.healthStats().unhealthyBytesServed, 0u);
}

TEST(ServiceHealth, BoundedFaultReadmitsAndReturnsHome)
{
    // Bias bank 1 for a bounded span covering its first refills;
    // probation draws via healthTick() walk the bank past the fault
    // and the shard returns home.
    core::SoftwareTrng bank0(21);
    core::SoftwareTrng bank1_inner(22);
    core::SoftwareTrng bank2(23);
    core::FaultInjectedTrng bank1(
        bank1_inner, core::FaultSpec::parse("1:bias:0:2048:0.95"), 7);

    EntropyService svc({&bank0, &bank1, &bank2},
                       testServiceConfig(2, true));
    svc.refillBelowWatermark();

    const HealthMonitor *monitor = svc.healthMonitor();
    ASSERT_EQ(monitor->state(1), BankState::Quarantined);
    ASSERT_EQ(svc.shardBackendIndex(1), 2u);

    // Each tick draws one probation window (128 bytes) from bank 1.
    // 2048 faulty bytes / 128 + probation margin bounds the ticks to
    // re-admission; give it headroom and stop as soon as it lands.
    int ticks = 0;
    for (; ticks < 40; ++ticks) {
        svc.healthTick();
        if (monitor->state(1) == BankState::Healthy)
            break;
    }
    EXPECT_EQ(monitor->state(1), BankState::Healthy);
    EXPECT_LT(ticks, 40);
    EXPECT_GE(svc.healthStats().readmissions, 1u);
    // The re-admission's eager revalidation moved the shard home.
    EXPECT_EQ(svc.shardBackendIndex(1), 1u);
    EXPECT_EQ(svc.healthStats().unhealthyBytesServed, 0u);
}

TEST(ServiceHealth, HealthyShardBytesIdenticalWithMonitoringOnOff)
{
    // Two runs with the same request schedule, health on and off.
    // The faulty bank's shard diverges (that is the point); every
    // other shard must serve bit-identical streams, because
    // observation never consumes a healthy bank's stream and
    // probation draws only touch the quarantined bank.
    auto run = [&](bool health) {
        core::SoftwareTrng bank0(31);
        core::SoftwareTrng bank1_inner(32);
        core::SoftwareTrng bank2(33);
        core::SoftwareTrng bank3(34);
        core::FaultInjectedTrng bank1(
            bank1_inner, core::FaultSpec::parse("1:bias:0:2048:0.95"),
            9);
        EntropyService svc({&bank0, &bank1, &bank2, &bank3},
                           testServiceConfig(3, health));
        svc.refillBelowWatermark();

        std::vector<EntropyService::Client> clients;
        for (size_t s = 0; s < 3; ++s)
            clients.push_back(
                svc.connect("c", Priority::Standard, s));
        std::vector<std::vector<uint8_t>> served(3);
        for (int round = 0; round < 24; ++round) {
            for (size_t s = 0; s < 3; ++s) {
                std::vector<uint8_t> got = clients[s].request(96);
                served[s].insert(served[s].end(), got.begin(),
                                 got.end());
            }
            svc.healthTick();
            svc.refillBelowWatermark();
        }
        EXPECT_EQ(svc.healthStats().unhealthyBytesServed, 0u);
        return served;
    };

    std::vector<std::vector<uint8_t>> off = run(false);
    std::vector<std::vector<uint8_t>> on = run(true);
    ASSERT_EQ(off.size(), on.size());
    EXPECT_EQ(off[0], on[0]); // healthy home bank
    EXPECT_EQ(off[2], on[2]); // healthy home bank
    EXPECT_NE(off[1], on[1]); // the faulty bank's shard diverges
}

// ----------------------------------------- throwing-backend paths

TEST(ServiceHealth, SyncFillFailsOverToServableBank)
{
    // Bank 0's shard has an empty buffer and a permanently-failing
    // backend: the synchronous path retries, quarantines it by
    // failure streak, re-sources, and serves from the spare.
    core::SoftwareTrng bank0_inner(41);
    core::SoftwareTrng bank1(42);
    core::FaultInjectedTrng bank0(
        bank0_inner, core::FaultSpec::parse("0:fail:0:0"));

    EntropyServiceConfig cfg = testServiceConfig(1, true);
    EntropyService svc({&bank0, &bank1}, cfg);
    // No warm-up: the first request is a synchronous miss.
    EntropyService::Client client = svc.connect("c", Priority::Standard, 0);
    std::vector<uint8_t> got = client.request(64);
    ASSERT_EQ(got.size(), 64u);
    EXPECT_EQ(svc.healthStats().refillFailures,
              cfg.health.readFailureLimit);
    EXPECT_EQ(svc.healthMonitor()->state(0),
              BankState::Quarantined);
    EXPECT_EQ(svc.shardBackendIndex(0), 1u);

    core::SoftwareTrng reference(42);
    std::vector<uint8_t> expected(64);
    reference.fill(expected.data(), expected.size());
    EXPECT_EQ(got, expected);
}

TEST(ServiceHealth, SyncFillWithoutMonitorStillThrows)
{
    // Legacy contract: with health disabled the caller sees the
    // backend's exception unchanged.
    core::SoftwareTrng inner(43);
    core::FaultInjectedTrng bank0(
        inner, core::FaultSpec::parse("0:fail:0:0"));
    EntropyService svc({&bank0}, testServiceConfig(1, false));
    EntropyService::Client client = svc.connect("c", Priority::Standard, 0);
    std::vector<uint8_t> out(64);
    EXPECT_THROW(client.request(out.data(), out.size()),
                 core::TransientReadError);
}

TEST(ServiceHealth, RefillSurvivesThrowingBackend)
{
    // Even with health monitoring OFF, a backend exception during a
    // background refill is caught and counted instead of escaping
    // (it used to std::terminate the auto-refill thread). The fault
    // window is transient: the failed attempt still advanced the
    // stream, so the next refill succeeds.
    core::SoftwareTrng inner(44);
    core::FaultInjectedTrng bank0(
        inner, core::FaultSpec::parse("0:fail:256:256"));
    EntropyService svc({&bank0}, testServiceConfig(1, false));

    svc.refillBelowWatermark(); // spans the fault window: caught
    EXPECT_GE(svc.healthStats().refillFailures, 1u);
    svc.refillBelowWatermark(); // window passed: fills normally

    EntropyService::Client client = svc.connect("c", Priority::Standard, 0);
    std::vector<uint8_t> got = client.request(128);
    EXPECT_EQ(got.size(), 128u);
    EXPECT_EQ(client.stats().denials, 0u);
}

TEST(ServiceHealth, AutoRefillThreadSurvivesThrowingBackend)
{
    // Permanently failing backend, health off: the auto-refill
    // thread must keep running (failures counted, never escaping),
    // and shut down cleanly.
    core::SoftwareTrng inner(45);
    core::FaultInjectedTrng bank0(
        inner, core::FaultSpec::parse("0:fail:0:0"));
    EntropyService svc({&bank0}, testServiceConfig(1, false));

    svc.startAutoRefill(std::chrono::microseconds(200));
    ASSERT_TRUE(svc.autoRefillRunning());
    while (svc.healthStats().refillFailures < 3)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(svc.autoRefillRunning());
    svc.stopAutoRefill();
    EXPECT_FALSE(svc.autoRefillRunning());
    EXPECT_GE(svc.healthStats().refillFailures, 3u);
}

// -------------------------------------- legacy sync-fill retries

TEST(ServiceHealth, SyncFillRetryServesThroughTransientFault)
{
    // Health off, a transient ReadFailure window at the head of the
    // stream: the first synchronous attempt throws (and advances the
    // stream past the fault), the bounded retry serves the bytes —
    // the caller never sees the blip.
    core::SoftwareTrng inner(46);
    core::FaultInjectedTrng bank0(
        inner, core::FaultSpec::parse("0:fail:0:64"));
    EntropyServiceConfig cfg = testServiceConfig(1, false);
    cfg.syncFillBackoff = std::chrono::microseconds(0);
    EntropyService svc({&bank0}, cfg);

    EntropyService::Client client =
        svc.connect("c", Priority::Standard, 0);
    std::vector<uint8_t> got = client.request(64);
    ASSERT_EQ(got.size(), 64u);
    EXPECT_EQ(svc.healthStats().refillFailures, 1u);
    EXPECT_EQ(client.stats().denials, 0u);

    // The failed attempt advanced the fault-window position but
    // never consumed the inner stream: the retry serves the inner
    // stream from its head.
    core::SoftwareTrng reference(46);
    EXPECT_EQ(got, reference.generate(64));
}

TEST(ServiceHealth, SyncFillRetriesExhaustOnPersistentFault)
{
    // A fault outliving the retry budget still surfaces, with every
    // attempt counted.
    core::SoftwareTrng inner(47);
    core::FaultInjectedTrng bank0(
        inner, core::FaultSpec::parse("0:fail:0:0"));
    EntropyServiceConfig cfg = testServiceConfig(1, false);
    cfg.syncFillRetries = 2;
    cfg.syncFillBackoff = std::chrono::microseconds(0);
    EntropyService svc({&bank0}, cfg);

    EntropyService::Client client =
        svc.connect("c", Priority::Standard, 0);
    std::vector<uint8_t> out(32);
    EXPECT_THROW(client.request(out.data(), out.size()),
                 core::TransientReadError);
    EXPECT_EQ(svc.healthStats().refillFailures, 3u)
        << "initial attempt + 2 retries";
}

TEST(ServiceHealth, SyncFillRetryDisabledSurfacesImmediately)
{
    core::SoftwareTrng inner(48);
    core::FaultInjectedTrng bank0(
        inner, core::FaultSpec::parse("0:fail:0:64"));
    EntropyServiceConfig cfg = testServiceConfig(1, false);
    cfg.syncFillRetries = 0;
    EntropyService svc({&bank0}, cfg);

    EntropyService::Client client =
        svc.connect("c", Priority::Standard, 0);
    std::vector<uint8_t> out(32);
    EXPECT_THROW(client.request(out.data(), out.size()),
                 core::TransientReadError);
    EXPECT_EQ(svc.healthStats().refillFailures, 1u);
}

// ------------------------------- migration vs. quarantine racing

TEST(ServiceHealth, MigrateClientRacesQuarantineResource)
{
    // A client bouncing between shards while the health machinery
    // quarantines a bank and re-sources its shard (epoch bump + lazy
    // revalidation): requests must keep serving from servable banks
    // only, with the unhealthy-bytes tripwire at zero throughout.
    core::SoftwareTrng bank0(51);
    core::SoftwareTrng bank1_inner(52);
    core::SoftwareTrng bank2(53);
    core::SoftwareTrng bank3(54);
    core::FaultInjectedTrng bank1(
        bank1_inner, core::FaultSpec::parse("1:bias:0:16384:0.95"),
        9);
    EntropyService svc({&bank0, &bank1, &bank2, &bank3},
                       testServiceConfig(2, true));
    svc.refillBelowWatermark();

    EntropyService::Client client =
        svc.connect("mover", Priority::Standard, 1);
    std::atomic<bool> done{false};
    std::atomic<uint64_t> served{0};
    std::thread requester([&]() {
        std::vector<uint8_t> out(48);
        for (int i = 0; i < 1500; ++i) {
            RequestResult r = client.request(out.data(), out.size());
            // relaxed: test counter; the worker joins publish the final
            // value.
            served.fetch_add(r.bytes, std::memory_order_relaxed);
        }
        done.store(true, std::memory_order_release);
    });

    int round = 0;
    while (!done.load(std::memory_order_acquire) || round < 200) {
        svc.healthTick();
        svc.refillBelowWatermark();
        svc.migrateClient(client, round % 2);
        ++round;
    }
    requester.join();

    EXPECT_GT(served.load(), 0u);
    EXPECT_GE(svc.healthStats().quarantines, 1u);
    EXPECT_GE(svc.healthStats().shardResourcings, 1u);
    EXPECT_EQ(svc.healthStats().unhealthyBytesServed, 0u);
    EXPECT_GE(client.stats().migrations, 100u);
}

TEST(ServiceHealth, ReadOnlyAccessorsRaceObserveWithoutLock)
{
    // Regression for two latent races the thread-safety annotation
    // pass surfaced: banks() read perBank_.size() — a mutex-guarded
    // vector — with no lock, and the bounds asserts in
    // observe()/servable()/score() did the same before taking the
    // mutex. Both now read an immutable bankCount_ set in the
    // constructor. Hammer the accessors against a writer mutating
    // the guarded state; TSan (CI) verifies racelessness, and the
    // values must stay exact throughout.
    HealthMonitor monitor(3, testHealthConfig());
    std::atomic<bool> done{false};
    std::thread writer([&]() {
        std::vector<uint8_t> good = goodWindow(77);
        for (int i = 0; i < 400; ++i) {
            monitor.observe(i % 3, good.data(), good.size());
            monitor.reportReadFailure(1);
        }
        done.store(true, std::memory_order_release);
    });
    uint64_t checks = 0;
    while (!done.load(std::memory_order_acquire)) {
        ASSERT_EQ(monitor.banks(), 3u);
        // The pre-lock bounds asserts ride the same immutable count.
        monitor.servable(2);
        monitor.state(0);
        monitor.score(1);
        ++checks;
    }
    writer.join();
    EXPECT_GT(checks, 0u);
    EXPECT_EQ(monitor.banks(), 3u);
    // Out-of-range banks still trip the assert after the fix.
    EXPECT_THROW(monitor.servable(3), PanicError);
    EXPECT_THROW(monitor.score(99), PanicError);
}

} // anonymous namespace
} // namespace quac::service

/**
 * @file
 * Tests for the modelled request-latency queue: distribution
 * percentiles, hit/miss service costs, per-shard queueing of
 * synchronous fills, and per-priority recording.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "core/rng_service.hh"
#include "service/entropy_service.hh"
#include "service/latency_model.hh"

namespace quac::service
{
namespace
{

/** Deterministic byte-counter backend. */
class CountingTrng : public core::Trng
{
  public:
    explicit CountingTrng(size_t chunk = 0) : chunk_(chunk) {}
    std::string name() const override { return "counting"; }

    void
    fill(uint8_t *out, size_t len) override
    {
        for (size_t i = 0; i < len; ++i)
            out[i] = static_cast<uint8_t>(counter_++);
    }

    size_t preferredChunkBytes() override { return chunk_; }

  private:
    size_t chunk_;
    uint64_t counter_ = 0;
};

TEST(LatencyDistribution, PercentilesAreNearestRank)
{
    LatencyDistribution dist;
    EXPECT_EQ(dist.count(), 0u);
    EXPECT_DOUBLE_EQ(dist.p50Ns(), 0.0);

    for (int i = 100; i >= 1; --i) // reversed insert order
        dist.add(static_cast<double>(i));
    EXPECT_EQ(dist.count(), 100u);
    EXPECT_DOUBLE_EQ(dist.p50Ns(), 50.0);
    EXPECT_DOUBLE_EQ(dist.p95Ns(), 95.0);
    EXPECT_DOUBLE_EQ(dist.p99Ns(), 99.0);
    EXPECT_DOUBLE_EQ(dist.percentileNs(1.0), 100.0);
    EXPECT_DOUBLE_EQ(dist.percentileNs(0.001), 1.0);
    EXPECT_DOUBLE_EQ(dist.meanNs(), 50.5);
    EXPECT_DOUBLE_EQ(dist.maxNs(), 100.0);
    EXPECT_THROW(dist.percentileNs(0.0), PanicError);
}

TEST(LatencyDistribution, MergeCombinesSamples)
{
    LatencyDistribution a;
    LatencyDistribution b;
    a.add(1.0);
    a.add(2.0);
    b.add(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.maxNs(), 10.0);
    EXPECT_DOUBLE_EQ(a.percentileNs(1.0), 10.0);
}

TEST(LatencyDistribution, SingleSampleIsEveryPercentile)
{
    LatencyDistribution dist;
    dist.add(7.0);
    EXPECT_DOUBLE_EQ(dist.percentileNs(0.001), 7.0);
    EXPECT_DOUBLE_EQ(dist.p50Ns(), 7.0);
    EXPECT_DOUBLE_EQ(dist.p99Ns(), 7.0);
    EXPECT_DOUBLE_EQ(dist.percentileNs(1.0), 7.0);
    EXPECT_DOUBLE_EQ(dist.meanNs(), 7.0);
    EXPECT_DOUBLE_EQ(dist.maxNs(), 7.0);
}

TEST(LatencyDistribution, DuplicateValuesKeepNearestRank)
{
    LatencyDistribution dist;
    for (int i = 0; i < 10; ++i)
        dist.add(5.0);
    dist.add(100.0);
    EXPECT_DOUBLE_EQ(dist.p50Ns(), 5.0);
    EXPECT_DOUBLE_EQ(dist.percentileNs(10.0 / 11.0), 5.0);
    EXPECT_DOUBLE_EQ(dist.percentileNs(1.0), 100.0);
}

TEST(LatencyDistribution, MergeWithEmptyEitherWay)
{
    LatencyDistribution empty;
    LatencyDistribution filled;
    filled.add(3.0);
    filled.add(1.0);

    LatencyDistribution a = filled;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.p50Ns(), 1.0);
    EXPECT_DOUBLE_EQ(a.percentileNs(1.0), 3.0);

    LatencyDistribution b;
    b.merge(filled);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.percentileNs(1.0), 3.0);
    EXPECT_DOUBLE_EQ(b.meanNs(), 2.0);

    LatencyDistribution c;
    c.merge(empty);
    EXPECT_EQ(c.count(), 0u);
    EXPECT_DOUBLE_EQ(c.p99Ns(), 0.0);
}

TEST(LatencyDistribution, SelfMergeDoublesSamples)
{
    LatencyDistribution dist;
    dist.add(1.0);
    dist.add(2.0);
    dist.merge(dist);
    EXPECT_EQ(dist.count(), 4u);
    EXPECT_DOUBLE_EQ(dist.meanNs(), 1.5);
    EXPECT_DOUBLE_EQ(dist.percentileNs(1.0), 2.0);
}

/** Naive reference: sort a copy, take ceil(q*n)-th smallest. */
double
naivePercentile(std::vector<double> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    size_t n = samples.size();
    auto rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::min(std::max<size_t>(rank, 1), n);
    return samples[rank - 1];
}

TEST(LatencyDistribution, AgreesWithNaiveNearestRankReference)
{
    // Deterministic pseudo-random sample set with ties.
    std::vector<double> samples;
    uint64_t x = 0x243F6A8885A308D3ULL;
    for (int i = 0; i < 257; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        samples.push_back(static_cast<double>((x >> 33) % 97));
    }
    LatencyDistribution dist;
    for (double sample : samples)
        dist.add(sample);
    for (double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(dist.percentileNs(q),
                         naivePercentile(samples, q))
            << "q=" << q;
    }
}

/**
 * Regression for the percentileNs() data race: the lazy sort used to
 * mutate samples_ from a const method with no synchronization, so
 * reading stats while the auto-refill thread or concurrent clients
 * record latencies corrupted the vector (and tripped TSan). Hammer
 * add() + merge() against percentile/mean/max queries; TSan (CI's
 * sanitizer job) flags any regression, and the final counts prove no
 * sample was lost or duplicated.
 */
TEST(LatencyDistribution, ConcurrentAddAndPercentileAreRaceFree)
{
    LatencyDistribution dist;
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 2000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&dist, w]() {
            LatencyDistribution local;
            for (int i = 0; i < kPerWriter; ++i) {
                double sample = static_cast<double>(w * kPerWriter + i);
                dist.add(sample);
                local.add(sample);
            }
            dist.merge(local); // second half arrives via merge()
        });
    }
    std::thread reader([&dist, &stop]() {
        while (!stop.load()) {
            // Each call snapshots under the internal lock; values
            // from different calls come from different moments, so
            // no cross-call ordering is asserted — the point is that
            // TSan sees the reads race the writers.
            (void)dist.p95Ns();
            (void)dist.p50Ns();
            (void)dist.meanNs();
            (void)dist.maxNs();
            (void)dist.count();
        }
    });
    for (std::thread &writer : writers)
        writer.join();
    stop.store(true);
    reader.join();

    EXPECT_EQ(dist.count(), 2u * kWriters * kPerWriter);
    EXPECT_DOUBLE_EQ(dist.percentileNs(1.0),
                     static_cast<double>(kWriters * kPerWriter - 1));
}

TEST(RecentLatencyWindow, EvictsOldSamplesAndTracksPercentiles)
{
    RecentLatencyWindow window(4);
    EXPECT_EQ(window.count(), 0u);
    EXPECT_DOUBLE_EQ(window.p95Ns(), 0.0);

    window.add(1000.0);
    EXPECT_DOUBLE_EQ(window.p95Ns(), 1000.0);
    for (double sample : {1.0, 2.0, 3.0, 4.0})
        window.add(sample);
    // The 1000 ns spike aged out of the 4-sample window.
    EXPECT_EQ(window.count(), 4u);
    EXPECT_DOUBLE_EQ(window.p95Ns(), 4.0);
    EXPECT_DOUBLE_EQ(window.percentileNs(0.5), 2.0);

    window.clear();
    EXPECT_EQ(window.count(), 0u);
    EXPECT_DOUBLE_EQ(window.p99Ns(), 0.0);
}

/** Config with round, easily assertable latency constants. */
EntropyServiceConfig
timedConfig(size_t capacity)
{
    EntropyServiceConfig cfg;
    cfg.shardCapacityBytes = capacity;
    cfg.refillWatermark = 0.5;
    cfg.latency = {20.0, 5.0, 2.0}; // hit 20, fixed 5, 2 ns/byte
    return cfg;
}

TEST(RequestLatency, HitCostsFixedOverheadOnly)
{
    CountingTrng backend(64);
    EntropyService svc({&backend}, timedConfig(4096));
    svc.refillBelowWatermark();
    auto client = svc.connect("hit");
    uint8_t out[64];

    RequestResult result = client.requestAt(out, sizeof(out), 1000.0);
    EXPECT_TRUE(result.hit);
    EXPECT_EQ(result.bytesFromBuffer, sizeof(out));
    EXPECT_DOUBLE_EQ(result.modeledLatencyNs, 25.0);

    LatencyDistribution dist =
        svc.latencySnapshot(Priority::Standard);
    ASSERT_EQ(dist.count(), 1u);
    EXPECT_DOUBLE_EQ(dist.p50Ns(), 25.0);
}

TEST(RequestLatency, MissPaysPerByteGenerationCost)
{
    // Never refilled: the empty buffer forces every request through
    // the synchronous path.
    CountingTrng backend;
    EntropyService svc({&backend}, timedConfig(64));
    auto client = svc.connect("miss");
    uint8_t out[100];

    RequestResult result = client.requestAt(out, sizeof(out), 0.0);
    EXPECT_FALSE(result.hit);
    EXPECT_EQ(result.bytes, sizeof(out));
    EXPECT_EQ(result.bytesFromBuffer, 0u);
    // 25 fixed + 100 bytes x 2 ns.
    EXPECT_DOUBLE_EQ(result.modeledLatencyNs, 225.0);
}

TEST(RequestLatency, MissesQueueBehindEachOther)
{
    CountingTrng backend;
    EntropyService svc({&backend}, timedConfig(64));
    auto client = svc.connect("queued");
    uint8_t out[100];

    // Two misses arriving together: the second waits for the first.
    EXPECT_DOUBLE_EQ(
        client.requestAt(out, sizeof(out), 0.0).modeledLatencyNs,
        225.0);
    EXPECT_DOUBLE_EQ(
        client.requestAt(out, sizeof(out), 0.0).modeledLatencyNs,
        450.0);
    // An arrival after the queue drained sees the base cost again.
    EXPECT_DOUBLE_EQ(
        client.requestAt(out, sizeof(out), 1.0e6).modeledLatencyNs,
        225.0);
}

TEST(RequestLatency, InstalledNsPerByteOverridesConfig)
{
    CountingTrng backend;
    EntropyService svc({&backend}, timedConfig(64));
    svc.setMissLatencyNsPerByte(10.0);
    auto client = svc.connect("installed");
    uint8_t out[100];
    EXPECT_DOUBLE_EQ(
        client.requestAt(out, sizeof(out), 0.0).modeledLatencyNs,
        25.0 + 1000.0);
}

TEST(RequestLatency, RecordedPerPriorityClass)
{
    CountingTrng backend(64);
    EntropyService svc({&backend}, timedConfig(4096));
    svc.refillBelowWatermark();
    auto interactive =
        svc.connect("i", Priority::Interactive);
    auto bulk = svc.connect("b", Priority::Bulk);
    uint8_t out[32];
    interactive.requestAt(out, sizeof(out), 0.0);
    interactive.requestAt(out, sizeof(out), 100.0);
    bulk.requestAt(out, sizeof(out), 200.0);

    EXPECT_EQ(svc.latencySnapshot(Priority::Interactive).count(), 2u);
    EXPECT_EQ(svc.latencySnapshot(Priority::Bulk).count(), 1u);
    EXPECT_EQ(svc.latencySnapshot(Priority::Standard).count(), 0u);

    svc.resetLatencyStats();
    EXPECT_EQ(svc.latencySnapshot(Priority::Interactive).count(), 0u);
}

TEST(RequestLatency, UntimedPathRecordsNothing)
{
    CountingTrng backend(64);
    EntropyService svc({&backend}, timedConfig(4096));
    svc.refillBelowWatermark();
    auto client = svc.connect("untimed");
    uint8_t out[32];
    RequestResult result = client.request(out, sizeof(out));
    EXPECT_TRUE(result.hit);
    EXPECT_DOUBLE_EQ(result.modeledLatencyNs, 0.0);
    EXPECT_EQ(svc.latencySnapshot(Priority::Standard).count(), 0u);
}

TEST(RequestLatency, TimedAndUntimedServeIdenticalBytes)
{
    CountingTrng timed_backend(64);
    CountingTrng untimed_backend(64);
    EntropyService timed({&timed_backend}, timedConfig(256));
    EntropyService untimed({&untimed_backend}, timedConfig(256));
    timed.refillBelowWatermark();
    untimed.refillBelowWatermark();
    auto tc = timed.connect("t");
    auto uc = untimed.connect("u");

    // Mixed hits and misses; streams must match byte for byte.
    uint8_t a[96];
    uint8_t b[96];
    for (int i = 0; i < 8; ++i) {
        tc.requestAt(a, sizeof(a), static_cast<double>(i) * 50.0);
        uc.request(b, sizeof(b));
        EXPECT_EQ(std::vector<uint8_t>(a, a + sizeof(a)),
                  std::vector<uint8_t>(b, b + sizeof(b))) << i;
    }
}

TEST(RequestLatency, RngServiceShimExposesTimedRequests)
{
    CountingTrng backend(64);
    core::RngService svc(backend, {.capacityBytes = 256});
    svc.refillIfBelowWatermark();
    uint8_t out[64];
    core::RngService::TimedRequest hit = svc.requestAt(out, 64, 0.0);
    EXPECT_TRUE(hit.hit);
    EXPECT_GT(hit.latencyNs, 0.0);

    // Drain to force a synchronous fill: slower than the hit.
    svc.requestAt(out, 64, 100.0);
    svc.requestAt(out, 64, 200.0);
    svc.requestAt(out, 64, 300.0);
    core::RngService::TimedRequest miss =
        svc.requestAt(out, 64, 400.0);
    EXPECT_FALSE(miss.hit);
    EXPECT_GT(miss.latencyNs, hit.latencyNs);
    EXPECT_EQ(svc.latencyDistribution().count(), 5u);
}

} // anonymous namespace
} // namespace quac::service

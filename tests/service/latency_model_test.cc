/**
 * @file
 * Tests for the modelled request-latency queue: distribution
 * percentiles, hit/miss service costs, per-shard queueing of
 * synchronous fills, and per-priority recording.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/error.hh"
#include "core/rng_service.hh"
#include "service/entropy_service.hh"
#include "service/latency_model.hh"

namespace quac::service
{
namespace
{

/** Deterministic byte-counter backend. */
class CountingTrng : public core::Trng
{
  public:
    explicit CountingTrng(size_t chunk = 0) : chunk_(chunk) {}
    std::string name() const override { return "counting"; }

    void
    fill(uint8_t *out, size_t len) override
    {
        for (size_t i = 0; i < len; ++i)
            out[i] = static_cast<uint8_t>(counter_++);
    }

    size_t preferredChunkBytes() override { return chunk_; }

  private:
    size_t chunk_;
    uint64_t counter_ = 0;
};

TEST(LatencyDistribution, PercentilesAreNearestRank)
{
    LatencyDistribution dist;
    EXPECT_EQ(dist.count(), 0u);
    EXPECT_DOUBLE_EQ(dist.p50Ns(), 0.0);

    for (int i = 100; i >= 1; --i) // reversed insert order
        dist.add(static_cast<double>(i));
    EXPECT_EQ(dist.count(), 100u);
    EXPECT_DOUBLE_EQ(dist.p50Ns(), 50.0);
    EXPECT_DOUBLE_EQ(dist.p95Ns(), 95.0);
    EXPECT_DOUBLE_EQ(dist.p99Ns(), 99.0);
    EXPECT_DOUBLE_EQ(dist.percentileNs(1.0), 100.0);
    EXPECT_DOUBLE_EQ(dist.percentileNs(0.001), 1.0);
    EXPECT_DOUBLE_EQ(dist.meanNs(), 50.5);
    EXPECT_DOUBLE_EQ(dist.maxNs(), 100.0);
    EXPECT_THROW(dist.percentileNs(0.0), PanicError);
}

TEST(LatencyDistribution, MergeCombinesSamples)
{
    LatencyDistribution a;
    LatencyDistribution b;
    a.add(1.0);
    a.add(2.0);
    b.add(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.maxNs(), 10.0);
    EXPECT_DOUBLE_EQ(a.percentileNs(1.0), 10.0);
}

/** Config with round, easily assertable latency constants. */
EntropyServiceConfig
timedConfig(size_t capacity)
{
    EntropyServiceConfig cfg;
    cfg.shardCapacityBytes = capacity;
    cfg.refillWatermark = 0.5;
    cfg.latency = {20.0, 5.0, 2.0}; // hit 20, fixed 5, 2 ns/byte
    return cfg;
}

TEST(RequestLatency, HitCostsFixedOverheadOnly)
{
    CountingTrng backend(64);
    EntropyService svc({&backend}, timedConfig(4096));
    svc.refillBelowWatermark();
    auto client = svc.connect("hit");
    uint8_t out[64];

    RequestResult result = client.requestAt(out, sizeof(out), 1000.0);
    EXPECT_TRUE(result.hit);
    EXPECT_EQ(result.bytesFromBuffer, sizeof(out));
    EXPECT_DOUBLE_EQ(result.modeledLatencyNs, 25.0);

    LatencyDistribution dist =
        svc.latencySnapshot(Priority::Standard);
    ASSERT_EQ(dist.count(), 1u);
    EXPECT_DOUBLE_EQ(dist.p50Ns(), 25.0);
}

TEST(RequestLatency, MissPaysPerByteGenerationCost)
{
    CountingTrng backend;
    EntropyService svc({&backend}, timedConfig(0));
    auto client = svc.connect("miss");
    uint8_t out[100];

    RequestResult result = client.requestAt(out, sizeof(out), 0.0);
    EXPECT_FALSE(result.hit);
    EXPECT_EQ(result.bytes, sizeof(out));
    EXPECT_EQ(result.bytesFromBuffer, 0u);
    // 25 fixed + 100 bytes x 2 ns.
    EXPECT_DOUBLE_EQ(result.modeledLatencyNs, 225.0);
}

TEST(RequestLatency, MissesQueueBehindEachOther)
{
    CountingTrng backend;
    EntropyService svc({&backend}, timedConfig(0));
    auto client = svc.connect("queued");
    uint8_t out[100];

    // Two misses arriving together: the second waits for the first.
    EXPECT_DOUBLE_EQ(
        client.requestAt(out, sizeof(out), 0.0).modeledLatencyNs,
        225.0);
    EXPECT_DOUBLE_EQ(
        client.requestAt(out, sizeof(out), 0.0).modeledLatencyNs,
        450.0);
    // An arrival after the queue drained sees the base cost again.
    EXPECT_DOUBLE_EQ(
        client.requestAt(out, sizeof(out), 1.0e6).modeledLatencyNs,
        225.0);
}

TEST(RequestLatency, InstalledNsPerByteOverridesConfig)
{
    CountingTrng backend;
    EntropyService svc({&backend}, timedConfig(0));
    svc.setMissLatencyNsPerByte(10.0);
    auto client = svc.connect("installed");
    uint8_t out[100];
    EXPECT_DOUBLE_EQ(
        client.requestAt(out, sizeof(out), 0.0).modeledLatencyNs,
        25.0 + 1000.0);
}

TEST(RequestLatency, RecordedPerPriorityClass)
{
    CountingTrng backend(64);
    EntropyService svc({&backend}, timedConfig(4096));
    svc.refillBelowWatermark();
    auto interactive =
        svc.connect("i", Priority::Interactive);
    auto bulk = svc.connect("b", Priority::Bulk);
    uint8_t out[32];
    interactive.requestAt(out, sizeof(out), 0.0);
    interactive.requestAt(out, sizeof(out), 100.0);
    bulk.requestAt(out, sizeof(out), 200.0);

    EXPECT_EQ(svc.latencySnapshot(Priority::Interactive).count(), 2u);
    EXPECT_EQ(svc.latencySnapshot(Priority::Bulk).count(), 1u);
    EXPECT_EQ(svc.latencySnapshot(Priority::Standard).count(), 0u);

    svc.resetLatencyStats();
    EXPECT_EQ(svc.latencySnapshot(Priority::Interactive).count(), 0u);
}

TEST(RequestLatency, UntimedPathRecordsNothing)
{
    CountingTrng backend(64);
    EntropyService svc({&backend}, timedConfig(4096));
    svc.refillBelowWatermark();
    auto client = svc.connect("untimed");
    uint8_t out[32];
    RequestResult result = client.request(out, sizeof(out));
    EXPECT_TRUE(result.hit);
    EXPECT_DOUBLE_EQ(result.modeledLatencyNs, 0.0);
    EXPECT_EQ(svc.latencySnapshot(Priority::Standard).count(), 0u);
}

TEST(RequestLatency, TimedAndUntimedServeIdenticalBytes)
{
    CountingTrng timed_backend(64);
    CountingTrng untimed_backend(64);
    EntropyService timed({&timed_backend}, timedConfig(256));
    EntropyService untimed({&untimed_backend}, timedConfig(256));
    timed.refillBelowWatermark();
    untimed.refillBelowWatermark();
    auto tc = timed.connect("t");
    auto uc = untimed.connect("u");

    // Mixed hits and misses; streams must match byte for byte.
    uint8_t a[96];
    uint8_t b[96];
    for (int i = 0; i < 8; ++i) {
        tc.requestAt(a, sizeof(a), static_cast<double>(i) * 50.0);
        uc.request(b, sizeof(b));
        EXPECT_EQ(std::vector<uint8_t>(a, a + sizeof(a)),
                  std::vector<uint8_t>(b, b + sizeof(b))) << i;
    }
}

TEST(RequestLatency, RngServiceShimExposesTimedRequests)
{
    CountingTrng backend(64);
    core::RngService svc(backend, {.capacityBytes = 256});
    svc.refillIfBelowWatermark();
    uint8_t out[64];
    core::RngService::TimedRequest hit = svc.requestAt(out, 64, 0.0);
    EXPECT_TRUE(hit.hit);
    EXPECT_GT(hit.latencyNs, 0.0);

    // Drain to force a synchronous fill: slower than the hit.
    svc.requestAt(out, 64, 100.0);
    svc.requestAt(out, 64, 200.0);
    svc.requestAt(out, 64, 300.0);
    core::RngService::TimedRequest miss =
        svc.requestAt(out, 64, 400.0);
    EXPECT_FALSE(miss.hit);
    EXPECT_GT(miss.latencyNs, hit.latencyNs);
    EXPECT_EQ(svc.latencyDistribution().count(), 5u);
}

} // anonymous namespace
} // namespace quac::service

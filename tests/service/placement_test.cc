/**
 * @file
 * Tests for closed-loop client placement: least-loaded connect(),
 * online client migration between shards, and the SLO-driven
 * migrator's breach/hysteresis behaviour.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hh"
#include "service/entropy_service.hh"
#include "service/placement.hh"

namespace quac::service
{
namespace
{

/** Deterministic backend: byte k of tag t is t + 151 * k. */
class TaggedTrng : public core::Trng
{
  public:
    explicit TaggedTrng(uint8_t tag, size_t chunk = 0)
        : tag_(tag), chunk_(chunk)
    {
    }

    std::string name() const override { return "tagged"; }

    void
    fill(uint8_t *out, size_t len) override
    {
        for (size_t i = 0; i < len; ++i) {
            out[i] = static_cast<uint8_t>(tag_ + 151 * counter_);
            ++counter_;
        }
    }

    size_t preferredChunkBytes() override { return chunk_; }

    static uint8_t
    expected(uint8_t tag, uint64_t k)
    {
        return static_cast<uint8_t>(tag + 151 * k);
    }

  private:
    uint8_t tag_;
    size_t chunk_;
    uint64_t counter_ = 0;
};

void
expectStream(const std::vector<uint8_t> &bytes, uint8_t tag,
             uint64_t from)
{
    for (size_t i = 0; i < bytes.size(); ++i) {
        ASSERT_EQ(bytes[i], TaggedTrng::expected(tag, from + i))
            << "position " << i;
    }
}

TEST(Placement, PolicyNames)
{
    EXPECT_STREQ(placementPolicyName(PlacementPolicy::RoundRobin),
                 "round-robin");
    EXPECT_STREQ(placementPolicyName(PlacementPolicy::LeastLoaded),
                 "least-loaded");
}

TEST(Placement, LeastLoadedConnectAvoidsDrainedShard)
{
    TaggedTrng b0(10, 64);
    TaggedTrng b1(20, 64);
    EntropyServiceConfig cfg;
    cfg.shardCapacityBytes = 128;
    cfg.placement = PlacementPolicy::LeastLoaded;
    EntropyService service({&b0, &b1}, cfg);
    service.refillBelowWatermark();

    // Drain shard 0 completely; shard 1 stays full.
    auto drain = service.connect("drain", Priority::Bulk, 0);
    drain.request(128);
    EXPECT_EQ(service.level(0), 0u);
    EXPECT_GT(service.shardLoad(0), service.shardLoad(1));
    EXPECT_EQ(service.leastLoadedShard(), 1u);

    // Interactive clients see the load; standard stays round-robin.
    auto interactive =
        service.connect("keys", Priority::Interactive);
    EXPECT_EQ(interactive.shard(), 1u);
    auto standard = service.connect("apps", Priority::Standard);
    EXPECT_EQ(standard.shard(), 0u) << "round-robin starts at 0";

    // Round-robin control: a blind service pins interactive to the
    // drained shard.
    TaggedTrng c0(10, 64);
    TaggedTrng c1(20, 64);
    cfg.placement = PlacementPolicy::RoundRobin;
    EntropyService blind({&c0, &c1}, cfg);
    blind.refillBelowWatermark();
    blind.connect("drain", Priority::Bulk, 0).request(128);
    EXPECT_EQ(blind.connect("keys", Priority::Interactive).shard(),
              0u);
}

TEST(Placement, LoadScoreIncludesRecentLatencyTail)
{
    TaggedTrng b0(10, 64);
    TaggedTrng b1(20, 64);
    EntropyServiceConfig cfg;
    cfg.shardCapacityBytes = 128;
    cfg.latency = {20.0, 5.0, 2.0};
    EntropyService service({&b0, &b1}, cfg);

    // Shard 0's client misses to synchronous fills (big modelled
    // latency); both shards sit at identical (empty) levels, so the
    // load scores differ only by the measured recent tail.
    auto victim = service.connect("victim", Priority::Standard, 0);
    uint8_t out[512];
    for (int i = 0; i < 8; ++i)
        victim.requestAt(out, sizeof(out),
                         static_cast<double>(i) * 1.0e5);
    EXPECT_EQ(service.level(0), service.level(1));
    EXPECT_GT(service.shardRecentP95Ns(0), 1000.0);
    EXPECT_DOUBLE_EQ(service.shardRecentP95Ns(1), 0.0);
    EXPECT_GT(service.shardLoad(0), service.shardLoad(1));
    EXPECT_EQ(service.leastLoadedShard(), 1u);
}

TEST(Placement, LoadScoreIncludesQueuedWorkHorizon)
{
    TaggedTrng b0(10, 64);
    TaggedTrng b1(20, 64);
    EntropyServiceConfig cfg;
    cfg.shardCapacityBytes = 128;
    cfg.latency = {20.0, 5.0, 2.0};
    EntropyService service({&b0, &b1}, cfg);

    // Timed misses commit backend work past the newest arrival; a
    // full top-up then clears the latency window and equalizes the
    // levels, so the only signal that shard 0 is still digesting a
    // backlog is the queued-work horizon.
    auto victim = service.connect("victim", Priority::Standard, 0);
    uint8_t out[512];
    for (int i = 0; i < 4; ++i)
        victim.requestAt(out, sizeof(out), 0.0);
    service.refillBelowWatermark();
    EXPECT_EQ(service.level(0), service.level(1));
    EXPECT_DOUBLE_EQ(service.shardRecentP95Ns(0), 0.0);
    EXPECT_GT(service.shardLoad(0), service.shardLoad(1));
    EXPECT_EQ(service.leastLoadedShard(), 1u);

    // Advancing the modelled clock past the backlog retires it.
    auto clock = service.connect("clock", Priority::Bulk, 1);
    clock.requestAt(out, 0, 1.0e9);
    EXPECT_DOUBLE_EQ(service.shardLoad(0), service.shardLoad(1));
}

TEST(Placement, BusyWeightZeroDisablesTheHorizonTerm)
{
    TaggedTrng b0(10, 64);
    TaggedTrng b1(20, 64);
    EntropyServiceConfig cfg;
    cfg.shardCapacityBytes = 128;
    cfg.latency = {20.0, 5.0, 2.0};
    cfg.placementBusyWeight = 0.0;
    EntropyService service({&b0, &b1}, cfg);

    // Same backlog as above, yet the scores stay a dead heat and
    // ties break to the lowest index, exactly as before the term
    // existed.
    auto victim = service.connect("victim", Priority::Standard, 0);
    uint8_t out[512];
    for (int i = 0; i < 4; ++i)
        victim.requestAt(out, sizeof(out), 0.0);
    service.refillBelowWatermark();
    EXPECT_DOUBLE_EQ(service.shardLoad(0), service.shardLoad(1));
    EXPECT_EQ(service.leastLoadedShard(), 0u);

    EntropyServiceConfig bad = cfg;
    bad.placementBusyWeight = -1.0;
    EXPECT_THROW(EntropyService({&b0, &b1}, bad), FatalError);
}

TEST(Placement, UntimedWorkloadsAreByteIdenticalAcrossBusyWeight)
{
    // Untimed requests never advance the modelled clock, so the
    // horizon term must contribute exactly zero: the same workload
    // replayed under the default weight and under weight 0 has to
    // produce identical placements and identical byte streams (this
    // is what keeps the recorded fig12 campaigns reproducible).
    auto run = [](double weight) {
        TaggedTrng b0(10, 64);
        TaggedTrng b1(20, 64);
        EntropyServiceConfig cfg;
        cfg.shardCapacityBytes = 256;
        cfg.placement = PlacementPolicy::LeastLoaded;
        cfg.placementBusyWeight = weight;
        EntropyService service({&b0, &b1}, cfg);
        service.refillBelowWatermark();

        std::vector<uint8_t> bytes;
        auto append = [&bytes](std::vector<uint8_t> got) {
            bytes.insert(bytes.end(), got.begin(), got.end());
        };
        auto first = service.connect("first", Priority::Interactive);
        bytes.push_back(static_cast<uint8_t>(first.shard()));
        append(first.request(96));
        auto drain =
            service.connect("drain", Priority::Bulk, first.shard());
        append(drain.request(128));
        auto second =
            service.connect("second", Priority::Interactive);
        bytes.push_back(static_cast<uint8_t>(second.shard()));
        append(second.request(64));
        append(first.request(32));
        return bytes;
    };
    EXPECT_EQ(run(1.0e-3), run(0.0));
}

TEST(Placement, FullRefillRetiresStaleLatencyTail)
{
    // Congestion history must not outlive the condition it measured:
    // once a shard is topped back up to capacity, its window resets,
    // so a recovered shard whose timed clients migrated away does
    // not repel placements (or trip the latency rebalancer) forever.
    TaggedTrng b0(10, 64);
    TaggedTrng b1(20, 64);
    EntropyServiceConfig cfg;
    cfg.shardCapacityBytes = 128;
    cfg.latency = {20.0, 5.0, 2.0};
    EntropyService service({&b0, &b1}, cfg);

    auto victim = service.connect("victim", Priority::Standard, 0);
    uint8_t out[512];
    for (int i = 0; i < 4; ++i)
        victim.requestAt(out, sizeof(out),
                         static_cast<double>(i) * 1.0e5);
    EXPECT_GT(service.shardRecentP95Ns(0), 1000.0);

    service.refillBelowWatermark();
    EXPECT_DOUBLE_EQ(service.shardRecentP95Ns(0), 0.0);
    // The busy-horizon term still sees the last miss's committed
    // backend time until the modelled clock passes it; advance "now"
    // with a zero-byte timed bulk request (no window sample, no
    // drain), after which the loads must be identical.
    auto clock = service.connect("clock", Priority::Bulk, 1);
    clock.requestAt(out, 0, 1.0e9);
    EXPECT_DOUBLE_EQ(service.shardLoad(0), service.shardLoad(1));
}

TEST(Migration, MigrateClientSwitchesStreamNotShardBytes)
{
    TaggedTrng b0(10, 32);
    TaggedTrng b1(20, 32);
    EntropyService service({&b0, &b1}, {.shardCapacityBytes = 64});
    service.refillBelowWatermark();

    auto roamer = service.connect("roamer", Priority::Standard, 0);
    expectStream(roamer.request(32), 10, 0);

    EXPECT_TRUE(service.migrateClient(roamer, 1));
    EXPECT_EQ(roamer.shard(), 1u);
    EXPECT_EQ(roamer.stats().migrations, 1u);
    // The client now drains shard 1's stream from its current
    // position (nothing was drained from it yet).
    expectStream(roamer.request(32), 20, 0);

    // Shard 0's stream is untouched by the migration: a client still
    // pinned there continues exactly where the roamer left off.
    auto stayer = service.connect("stayer", Priority::Standard, 0);
    expectStream(stayer.request(32), 10, 32);

    // Migrating to the current shard is a no-op.
    EXPECT_FALSE(service.migrateClient(roamer, 1));
    EXPECT_EQ(roamer.stats().migrations, 1u);
    EXPECT_THROW(service.migrateClient(roamer, 9), FatalError);
}

/** Shard 0 drained and missing; shard 1 full. */
struct BreachHarness
{
    TaggedTrng b0{10, 64};
    TaggedTrng b1{20, 64};
    EntropyService service;
    EntropyService::Client victim;
    double now = 0.0;

    BreachHarness()
        : service({&b0, &b1},
                  {.shardCapacityBytes = 512,
                   .latency = {20.0, 5.0, 2.0}}),
          victim(service.connect("victim", Priority::Interactive, 0))
    {
        service.refillBelowWatermark();
        service.connect("drain", Priority::Bulk, 0).request(512);
    }

    /** One timed 256-byte request; misses cost ~537 ns modelled. */
    void
    requestOnce()
    {
        uint8_t out[256];
        victim.requestAt(out, sizeof(out), now);
        now += 1.0e4;
    }
};

TEST(SloMigrator, MovesBreachingClientToBetterShard)
{
    BreachHarness harness;
    SloMigratorConfig cfg;
    cfg.slo[0] = {400.0, 0.0}; // interactive p95 <= 400 ns
    cfg.breachTicks = 2;
    cfg.cooldownTicks = 4;
    SloMigrator migrator(harness.service, cfg);
    migrator.manage(harness.victim);
    ASSERT_EQ(migrator.managedClients(), 1u);

    size_t total = 0;
    for (int t = 0; t < 6; ++t) {
        harness.requestOnce();
        total += migrator.tick();
    }
    EXPECT_EQ(total, 1u);
    EXPECT_EQ(migrator.migrations(), 1u);
    ASSERT_EQ(migrator.events().size(), 1u);
    EXPECT_EQ(migrator.events()[0].fromShard, 0u);
    EXPECT_EQ(migrator.events()[0].toShard, 1u);
    EXPECT_EQ(harness.victim.shard(), 1u);

    // On the full shard the client hits; no further breaches, no
    // further migrations.
    for (int t = 0; t < 6; ++t) {
        harness.requestOnce();
        migrator.tick();
    }
    EXPECT_EQ(migrator.migrations(), 1u);
    EXPECT_GT(harness.victim.stats().bufferHits, 0u);
}

TEST(SloMigrator, StaysPutWhenNoShardIsMeaningfullyBetter)
{
    // Both shards drained: every request misses everywhere, so the
    // improvement-factor hysteresis must keep the client in place
    // instead of ping-ponging between two equally bad shards.
    TaggedTrng b0(10, 64);
    TaggedTrng b1(20, 64);
    EntropyService service({&b0, &b1},
                           {.shardCapacityBytes = 512,
                            .latency = {20.0, 5.0, 2.0}});
    auto victim = service.connect("victim", Priority::Interactive, 0);
    auto peer = service.connect("peer", Priority::Interactive, 1);

    SloMigratorConfig cfg;
    cfg.slo[0] = {400.0, 0.0};
    cfg.breachTicks = 1;
    cfg.cooldownTicks = 0;
    cfg.maxMigrationsPerTick = 8;
    SloMigrator migrator(service, cfg);
    migrator.manage(victim);
    migrator.manage(peer);

    uint8_t out[256];
    double now = 0.0;
    for (int t = 0; t < 20; ++t) {
        victim.requestAt(out, sizeof(out), now);
        peer.requestAt(out, sizeof(out), now);
        now += 1.0e4;
        migrator.tick();
    }
    EXPECT_EQ(migrator.migrations(), 0u);
    EXPECT_EQ(victim.shard(), 0u);
    EXPECT_EQ(peer.shard(), 1u);
}

TEST(SloMigrator, CooldownBoundsPerClientChurn)
{
    BreachHarness harness;
    SloMigratorConfig cfg;
    cfg.slo[0] = {400.0, 0.0};
    cfg.breachTicks = 1;
    cfg.cooldownTicks = 100; // effectively one migration per test
    SloMigrator migrator(harness.service, cfg);
    migrator.manage(harness.victim);

    // Keep shard 1 drained too after the migration lands there, so
    // the client keeps breaching; the cooldown must still hold it.
    auto drain1 = harness.service.connect("d1", Priority::Bulk, 1);
    for (int t = 0; t < 12; ++t) {
        harness.requestOnce();
        drain1.request(1024);
        migrator.tick();
    }
    EXPECT_LE(migrator.migrations(), 1u);
}

TEST(SloMigrator, RejectsBadConfig)
{
    TaggedTrng backend(1, 64);
    EntropyService service({&backend}, {.shardCapacityBytes = 64});
    SloMigratorConfig zero_breach;
    zero_breach.breachTicks = 0;
    EXPECT_THROW(SloMigrator(service, zero_breach), FatalError);
    SloMigratorConfig bad_factor;
    bad_factor.improvementFactor = 1.5;
    EXPECT_THROW(SloMigrator(service, bad_factor), FatalError);
}

} // anonymous namespace
} // namespace quac::service

/**
 * @file
 * Tests for the scheduler-aware refill loop: fairness-policy
 * accounting against ChannelSim, budget consistency with the
 * BusScheduler-derived iteration cost, and end-to-end refill of a
 * drained service.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "service/refill_scheduler.hh"
#include "sysperf/workloads.hh"

namespace quac::service
{
namespace
{

/** Cheap deterministic backend with a whole-iteration chunk. */
class CountingTrng : public core::Trng
{
  public:
    explicit CountingTrng(size_t chunk) : chunk_(chunk) {}
    std::string name() const override { return "counting"; }

    void
    fill(uint8_t *out, size_t len) override
    {
        for (size_t i = 0; i < len; ++i)
            out[i] = static_cast<uint8_t>(counter_++);
    }

    size_t preferredChunkBytes() override { return chunk_; }

  private:
    size_t chunk_;
    uint64_t counter_ = 0;
};

RefillSchedulerConfig
schedulerConfig(sysperf::FairnessPolicy policy)
{
    RefillSchedulerConfig cfg;
    cfg.policy = policy;
    cfg.tickNs = 1.0e5;
    cfg.seed = 17;
    return cfg;
}

/** A drained two-shard service over cheap backends. */
struct Harness
{
    CountingTrng b0{64};
    CountingTrng b1{64};
    EntropyService service;

    explicit Harness(size_t capacity)
        : service({&b0, &b1}, {.shardCapacityBytes = capacity,
                               .refillWatermark = 1.0,
                               .panicWatermark = 1.0})
    {
    }
};

TEST(RefillScheduler, IterationCostComesFromBusScheduler)
{
    Harness harness(1 << 12);
    RefillScheduler scheduler(
        harness.service, {"idle", 0.0, 100.0},
        schedulerConfig(sysperf::FairnessPolicy::Fcfs));
    const sched::RefillCost &cost = scheduler.iterationCost();
    EXPECT_GT(cost.iterationNs, 0.0);
    EXPECT_GT(cost.bitsPerIteration, 0.0);
    EXPECT_GT(cost.commandsPerIteration, 0.0);
    EXPECT_GT(cost.nsPerByte(), 0.0);
}

TEST(RefillScheduler, FcfsRefillsFromIdleOnlyAndNeverSteals)
{
    // Memory-bound co-runner, demand far above one tick's idle time.
    Harness harness(1 << 20);
    sysperf::WorkloadProfile lbm{"lbm-like", 0.65, 160.0};
    RefillScheduler scheduler(
        harness.service, lbm,
        schedulerConfig(sysperf::FairnessPolicy::Fcfs));

    RefillAccounting acct = scheduler.tick();
    EXPECT_GT(acct.neededNs, acct.usableIdleNs)
        << "demand must exceed idle for this test to bite";
    EXPECT_EQ(acct.stolenBusyNs, 0.0);
    EXPECT_EQ(acct.memSlowdown(), 0.0);
    EXPECT_LE(acct.grantedNs, acct.usableIdleNs + 1e-6);
    EXPECT_GT(acct.bytesRefilled, 0u);

    // The refilled bytes fit the granted channel time (the last
    // chunk may overshoot by less than one backend chunk).
    double spent_ns = static_cast<double>(acct.bytesRefilled) *
                      scheduler.iterationCost().nsPerByte();
    double chunk_ns = 64.0 * scheduler.iterationCost().nsPerByte();
    EXPECT_LE(spent_ns, acct.grantedNs + chunk_ns + 1e-6);
}

TEST(RefillScheduler, RngPriorityOutRefillsFcfsAtMemoryExpense)
{
    sysperf::WorkloadProfile lbm{"lbm-like", 0.65, 160.0};

    Harness fcfs_harness(1 << 20);
    RefillScheduler fcfs(
        fcfs_harness.service, lbm,
        schedulerConfig(sysperf::FairnessPolicy::Fcfs));
    Harness prio_harness(1 << 20);
    RefillScheduler prio(
        prio_harness.service, lbm,
        schedulerConfig(sysperf::FairnessPolicy::RngPriority));

    RefillAccounting facct = fcfs.tick();
    RefillAccounting pacct = prio.tick();

    EXPECT_GT(pacct.bytesRefilled, facct.bytesRefilled);
    EXPECT_GT(pacct.stolenBusyNs, 0.0);
    EXPECT_GT(pacct.memSlowdown(), 0.0);
    EXPECT_LE(pacct.memSlowdown(), 1.0);
    EXPECT_GE(pacct.grantedNs, facct.grantedNs);
}

TEST(RefillScheduler, BufferedFairEscalatesOnlyUrgentDemand)
{
    sysperf::WorkloadProfile lbm{"lbm-like", 0.65, 160.0};

    // Panic watermark 0 with a partially filled service: nothing is
    // urgent, so buffered-fair behaves like FCFS (no stealing).
    CountingTrng calm_backend{64};
    EntropyService calm({&calm_backend},
                        {.shardCapacityBytes = 1 << 20,
                         .refillWatermark = 1.0,
                         .panicWatermark = 0.0});
    calm.refillTick(1024); // lift the level above the empty = panic
    ASSERT_EQ(calm.urgentDemandBytes(), 0u);
    RefillSchedulerConfig cfg =
        schedulerConfig(sysperf::FairnessPolicy::BufferedFair);
    RefillScheduler calm_scheduler(calm, lbm, cfg);
    RefillAccounting calm_acct = calm_scheduler.tick();
    EXPECT_EQ(calm_acct.stolenBusyNs, 0.0);

    // Panic watermark 1.0 with the same drained service: the whole
    // deficit is urgent; buffered-fair escalates it like priority.
    Harness urgent_harness(1 << 20);
    RefillScheduler urgent_scheduler(urgent_harness.service, lbm, cfg);
    RefillAccounting urgent_acct = urgent_scheduler.tick();
    EXPECT_GT(urgent_acct.stolenBusyNs, 0.0);
    EXPECT_GT(urgent_acct.bytesRefilled, calm_acct.bytesRefilled);
}

TEST(RefillScheduler, RunAccumulatesAndTopsUpSmallService)
{
    // A small service under an idle channel: a few ticks top every
    // shard up to capacity and the accounting matches the service's
    // own refill counters.
    Harness harness(4096);
    RefillScheduler scheduler(
        harness.service, {"idle", 0.0, 100.0},
        schedulerConfig(sysperf::FairnessPolicy::Fcfs));
    const RefillAccounting &total = scheduler.run(50);

    EXPECT_EQ(total.ticks, 50u);
    EXPECT_EQ(harness.service.level(0), 4096u);
    EXPECT_EQ(harness.service.level(1), 4096u);
    EXPECT_EQ(total.bytesRefilled, harness.service.bytesRefilled());
    EXPECT_EQ(total.bytesRefilled, 2u * 4096u);
    EXPECT_GT(total.refillGbps(), 0.0);
    // Once full, ticks stop granting.
    EXPECT_EQ(scheduler.tick().bytesRefilled, 0u);
}

TEST(RefillScheduler, ZeroDemandTickGrantsAndRefillsNothing)
{
    // A full service (or one whose shards all sit above the
    // watermark) asks for nothing: the tick must model the window,
    // account the co-runner's busy time, and grant/steal/refill
    // zero without touching the shards.
    Harness harness(4096);
    harness.service.refillBelowWatermark(); // top both shards up
    ASSERT_EQ(harness.service.refillDemand().bytes, 0u);

    sysperf::WorkloadProfile lbm{"lbm-like", 0.65, 160.0};
    RefillScheduler scheduler(
        harness.service, lbm,
        schedulerConfig(sysperf::FairnessPolicy::RngPriority));
    uint64_t refills_before = harness.service.refills();

    RefillAccounting acct = scheduler.tick();
    EXPECT_EQ(acct.neededNs, 0.0);
    EXPECT_EQ(acct.grantedNs, 0.0);
    EXPECT_EQ(acct.stolenBusyNs, 0.0);
    EXPECT_EQ(acct.bytesRequested, 0u);
    EXPECT_EQ(acct.bytesRefilled, 0u);
    EXPECT_GT(acct.busyNs, 0.0) << "the co-runner still ran";
    EXPECT_DOUBLE_EQ(acct.modeledNs, 1.0e5);
    EXPECT_EQ(harness.service.refills(), refills_before);
    EXPECT_EQ(harness.service.level(0), 4096u);
}

TEST(RefillScheduler, AllShardsAboveWatermarkAreLeftAlone)
{
    // Watermark 0.5: shards drained to just above it must not be
    // refilled, even under a generous policy with a drained peer.
    CountingTrng b0{64};
    CountingTrng b1{64};
    EntropyService service({&b0, &b1},
                           {.shardCapacityBytes = 4096,
                            .refillWatermark = 0.5,
                            .panicWatermark = 0.25});
    service.refillBelowWatermark();
    auto client = service.connect("drain", Priority::Standard, 0);
    std::vector<uint8_t> sink(1024);
    client.request(sink.data(), sink.size()); // 4096 -> 3072 > 2048
    ASSERT_EQ(service.refillDemand().bytes, 0u);

    RefillScheduler scheduler(
        service, {"idle", 0.0, 100.0},
        schedulerConfig(sysperf::FairnessPolicy::RngPriority));
    RefillAccounting acct = scheduler.tick();
    EXPECT_EQ(acct.bytesRefilled, 0u);
    EXPECT_EQ(service.level(0), 3072u) << "no top-up above watermark";

    // One more drain drops shard 0 to the watermark: now it alone
    // is refilled back to capacity.
    client.request(sink.data(), sink.size());
    EXPECT_EQ(scheduler.tick().bytesRefilled, 2048u);
    EXPECT_EQ(service.level(0), 4096u);
    EXPECT_EQ(service.level(1), 4096u);
}

TEST(RefillScheduler, SubsetDemandAndRefillRespectShardSets)
{
    // The per-channel primitives the multi-channel scheduler is
    // built on: demand and budgeted refill restricted to a set.
    Harness harness(1 << 12);
    EntropyService &service = harness.service;
    EXPECT_EQ(service.refillDemand({0}).bytes, size_t{1} << 12);
    EXPECT_EQ(service.refillDemand({1}).bytes, size_t{1} << 12);
    EXPECT_EQ(service.refillDemand({0, 1}).bytes, size_t{2} << 12);

    // A budget issued to shard 1's set must not touch shard 0.
    size_t added = service.refillTick(1 << 12, {1});
    EXPECT_EQ(added, size_t{1} << 12);
    EXPECT_EQ(service.level(0), 0u);
    EXPECT_EQ(service.level(1), size_t{1} << 12);
    EXPECT_THROW(service.refillTick(64, {7}), PanicError);
    EXPECT_THROW(service.refillDemand({7}), PanicError);
}

TEST(ServiceScenarios, WellFormedAndLookupWorks)
{
    const auto &scenarios = sysperf::serviceScenarios();
    ASSERT_GE(scenarios.size(), 4u);
    for (const auto &scenario : scenarios) {
        EXPECT_GT(scenario.totalClients(), 0u) << scenario.name;
        EXPECT_GT(scenario.demandBytesPerMs(), 0.0) << scenario.name;
        EXPECT_GE(scenario.memoryTraffic.busUtilization, 0.0);
        EXPECT_LT(scenario.memoryTraffic.busUtilization, 1.0);
        for (const auto &cls : scenario.clientClasses)
            EXPECT_LE(cls.priority, 2u) << cls.name;
    }
    EXPECT_EQ(sysperf::serviceScenario("web-keyserver").name,
              "web-keyserver");
    EXPECT_THROW(sysperf::serviceScenario("nope"), FatalError);
}

} // anonymous namespace
} // namespace quac::service

/**
 * @file
 * Tests for the sharded multi-client entropy service: deterministic
 * replay across serial and concurrent schedules, watermark and
 * backpressure edge cases, priority classes, budgeted refill, and
 * concurrent drain during background refill.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/parallel.hh"
#include "service/entropy_service.hh"

namespace quac::service
{
namespace
{

/**
 * Deterministic backend whose byte stream is a pure function of its
 * tag and stream position: byte k = tag + 151 * k. Distinct tags
 * yield distinct streams, so cross-shard mixups are detectable.
 */
class TaggedTrng : public core::Trng
{
  public:
    explicit TaggedTrng(uint8_t tag, size_t chunk = 0)
        : tag_(tag), chunk_(chunk)
    {
    }

    std::string name() const override { return "tagged"; }

    void
    fill(uint8_t *out, size_t len) override
    {
        for (size_t i = 0; i < len; ++i) {
            out[i] = static_cast<uint8_t>(tag_ + 151 * counter_);
            ++counter_;
        }
        ++fills_;
    }

    size_t preferredChunkBytes() override { return chunk_; }

    /** Expected byte at stream position @p k for tag @p tag. */
    static uint8_t
    expected(uint8_t tag, uint64_t k)
    {
        return static_cast<uint8_t>(tag + 151 * k);
    }

    uint64_t fills() const { return fills_; }

  private:
    uint8_t tag_;
    size_t chunk_;
    uint64_t counter_ = 0;
    uint64_t fills_ = 0;
};

/** Assert @p bytes is the contiguous tag stream starting at @p from. */
void
expectStreamContinuity(const std::vector<uint8_t> &bytes, uint8_t tag,
                       uint64_t from = 0)
{
    for (size_t i = 0; i < bytes.size(); ++i) {
        ASSERT_EQ(bytes[i], TaggedTrng::expected(tag, from + i))
            << "position " << i;
    }
}

TEST(EntropyService, ShardsPinToBackendsAndStayContinuous)
{
    TaggedTrng b0(10, 32);
    TaggedTrng b1(20, 32);
    EntropyService service({&b0, &b1},
                           {.shardCapacityBytes = 128,
                            .refillWatermark = 0.5});
    ASSERT_EQ(service.shardCount(), 2u);
    EXPECT_EQ(service.shardChunkBytes(0), 32u);

    service.refillBelowWatermark();
    EXPECT_EQ(service.level(0), 128u);
    EXPECT_EQ(service.level(1), 128u);

    auto c0 = service.connect("a", Priority::Standard, 0);
    auto c1 = service.connect("b", Priority::Standard, 1);
    std::vector<uint8_t> s0 = c0.request(200); // 128 buffered + 72 sync
    std::vector<uint8_t> s1 = c1.request(40);
    expectStreamContinuity(s0, 10);
    expectStreamContinuity(s1, 20);
    EXPECT_EQ(c0.stats().synchronousFills, 1u);
    EXPECT_EQ(c1.stats().bufferHits, 1u);
}

TEST(EntropyService, RoundRobinShardAssignment)
{
    TaggedTrng b0(1);
    TaggedTrng b1(2);
    EntropyService service({&b0, &b1}, {.shardCapacityBytes = 64});
    auto c0 = service.connect("c0");
    auto c1 = service.connect("c1");
    auto c2 = service.connect("c2");
    EXPECT_EQ(c0.shard(), 0u);
    EXPECT_EQ(c1.shard(), 1u);
    EXPECT_EQ(c2.shard(), 0u);
    EXPECT_EQ(c0.name(), "c0");
    EXPECT_EQ(c2.priority(), Priority::Standard);
}

/**
 * The determinism contract: with one backend per shard, a given
 * per-shard request order delivers byte-identical client streams no
 * matter how requests and refills interleave across shards — the
 * shard buffer is a FIFO window over the backend stream, and
 * synchronous fills continue the same stream.
 */
TEST(EntropyService, DeterministicReplaySerialVsConcurrent)
{
    constexpr size_t nshards = 4;
    const std::vector<size_t> sizes = {1,  17, 64,  300, 5,
                                       96, 33, 128, 7,   250};

    auto run = [&](bool concurrent, bool auto_refill) {
        std::vector<TaggedTrng> backends;
        backends.reserve(nshards);
        for (size_t s = 0; s < nshards; ++s)
            backends.emplace_back(static_cast<uint8_t>(10 * (s + 1)),
                                  96);
        std::vector<core::Trng *> pool;
        for (auto &backend : backends)
            pool.push_back(&backend);

        EntropyService service(pool, {.shardCapacityBytes = 256,
                                      .refillWatermark = 0.5});
        if (auto_refill)
            service.startAutoRefill(std::chrono::microseconds(50));

        std::vector<EntropyService::Client> clients;
        for (size_t s = 0; s < nshards; ++s) {
            clients.push_back(service.connect(
                "client" + std::to_string(s), Priority::Standard, s));
        }

        std::vector<std::vector<uint8_t>> streams(nshards);
        auto drive = [&](size_t s) {
            std::vector<uint8_t> buf(512);
            for (size_t k = 0; k < sizes.size(); ++k) {
                RequestResult result =
                    clients[s].request(buf.data(), sizes[k]);
                ASSERT_EQ(result.bytes, sizes[k]);
                streams[s].insert(streams[s].end(), buf.begin(),
                                  buf.begin() +
                                      static_cast<ptrdiff_t>(sizes[k]));
                if (!auto_refill && k % 2 == 1)
                    service.refillBelowWatermark();
            }
        };
        if (concurrent)
            parallelFor(0, nshards, drive, nshards);
        else
            for (size_t s = 0; s < nshards; ++s)
                drive(s);
        service.stopAutoRefill();
        return streams;
    };

    auto serial = run(false, false);
    auto concurrent = run(true, false);
    auto racing_refill = run(true, true);
    for (size_t s = 0; s < nshards; ++s) {
        EXPECT_EQ(serial[s], concurrent[s]) << "shard " << s;
        EXPECT_EQ(serial[s], racing_refill[s]) << "shard " << s;
        expectStreamContinuity(serial[s],
                               static_cast<uint8_t>(10 * (s + 1)));
    }
}

TEST(EntropyService, RequestLargerThanCapacityFallsThrough)
{
    TaggedTrng backend(5);
    EntropyService service({&backend}, {.shardCapacityBytes = 32,
                                        .refillWatermark = 0.5});
    service.refillBelowWatermark();
    auto client = service.connect("big");
    std::vector<uint8_t> bytes = client.request(100);
    ASSERT_EQ(bytes.size(), 100u);
    expectStreamContinuity(bytes, 5);
    EXPECT_EQ(service.level(0), 0u);
    EXPECT_EQ(client.stats().bytesFromBuffer, 32u);
    EXPECT_EQ(client.stats().bytesSynchronous, 68u);
}

TEST(EntropyService, UnrefilledServiceIsPassThrough)
{
    // A service nobody refills serves every request synchronously,
    // straight off the backend stream (the zero-buffer degenerate
    // mode; a zero *capacity* is rejected as a config error).
    TaggedTrng backend(9, 64);
    EntropyService service({&backend}, {.shardCapacityBytes = 64});
    auto client = service.connect("raw");
    std::vector<uint8_t> bytes = client.request(50);
    expectStreamContinuity(bytes, 9);
    EXPECT_EQ(service.level(0), 0u);
    EXPECT_EQ(client.stats().bufferHits, 0u);
    EXPECT_EQ(client.stats().synchronousFills, 1u);
}

TEST(EntropyService, MaxRequestBytesDenies)
{
    TaggedTrng backend(3);
    EntropyService service({&backend}, {.shardCapacityBytes = 64,
                                        .maxRequestBytes = 16});
    service.refillBelowWatermark();
    auto client = service.connect("greedy");
    uint8_t buf[32];
    RequestResult result = client.request(buf, 32);
    EXPECT_TRUE(result.denied);
    EXPECT_EQ(result.bytes, 0u);
    EXPECT_EQ(service.level(0), 64u) << "denied requests drain nothing";
    EXPECT_EQ(client.stats().denials, 1u);
    EXPECT_EQ(service.denials(), 1u);

    // At or below the cap is served normally.
    EXPECT_TRUE(client.request(buf, 16).hit);
}

TEST(EntropyService, BulkClassGetsBackpressureNotGeneratorTime)
{
    TaggedTrng backend(7);
    EntropyService service({&backend}, {.shardCapacityBytes = 64,
                                        .refillWatermark = 1.0});
    service.refillBelowWatermark();
    auto bulk = service.connect("bulk", Priority::Bulk);

    uint8_t buf[128];
    RequestResult first = bulk.request(buf, 40);
    EXPECT_TRUE(first.hit);
    ASSERT_EQ(first.bytes, 40u);

    // Only 24 bytes left: a bulk request gets a partial result and
    // the generator is NOT run synchronously.
    uint64_t fills_before = backend.fills();
    RequestResult second = bulk.request(buf, 40);
    EXPECT_FALSE(second.hit);
    EXPECT_FALSE(second.denied);
    EXPECT_EQ(second.bytes, 24u);
    EXPECT_EQ(backend.fills(), fills_before);
    EXPECT_EQ(bulk.stats().partialServes, 1u);

    // After a refill the remainder is served.
    service.refillBelowWatermark();
    EXPECT_TRUE(bulk.request(buf, 16).hit);
}

TEST(EntropyService, WatermarkGatesRefillAndChunksRoundUp)
{
    TaggedTrng backend(11, 48);
    EntropyService service({&backend}, {.shardCapacityBytes = 100,
                                        .refillWatermark = 0.25});
    // Empty: 100 wanted -> 3 whole 48-byte chunks.
    EXPECT_EQ(service.refillDemandBytes(), 144u);
    EXPECT_EQ(service.refillBelowWatermark(), 144u);
    EXPECT_EQ(service.level(0), 144u);

    auto client = service.connect("c");
    uint8_t buf[256];
    client.request(buf, 110); // level 34 > 25: no refill
    EXPECT_EQ(service.refillBelowWatermark(), 0u);
    client.request(buf, 14); // level 20 <= 25: refill
    EXPECT_EQ(service.refillBelowWatermark(), 96u);
    EXPECT_EQ(service.level(0), 116u);
}

TEST(EntropyService, RefillTickSpendsBudgetMostDrainedFirst)
{
    TaggedTrng b0(1, 32);
    TaggedTrng b1(2, 32);
    EntropyService service({&b0, &b1}, {.shardCapacityBytes = 128,
                                        .refillWatermark = 1.0});
    service.refillBelowWatermark();
    auto c0 = service.connect("c0", Priority::Standard, 0);
    auto c1 = service.connect("c1", Priority::Standard, 1);
    uint8_t buf[128];
    c0.request(buf, 128); // shard 0 empty
    c1.request(buf, 64);  // shard 1 at 64

    // 96 bytes of budget go to shard 0 (the most drained), three
    // whole chunks, leaving nothing for shard 1.
    EXPECT_EQ(service.refillTick(96), 96u);
    EXPECT_EQ(service.level(0), 96u);
    EXPECT_EQ(service.level(1), 64u);

    // An unbounded tick tops the rest up.
    EXPECT_EQ(service.refillTick(~size_t{0}), 32u + 64u);
    EXPECT_EQ(service.level(0), 128u);
    EXPECT_EQ(service.level(1), 128u);

    // Streams stayed continuous throughout.
    auto s0 = c0.request(size_t{128});
    expectStreamContinuity(s0, 1, 128);
}

TEST(EntropyService, UrgentDemandTracksPanicWatermark)
{
    TaggedTrng b0(1);
    TaggedTrng b1(2);
    EntropyService service({&b0, &b1}, {.shardCapacityBytes = 100,
                                        .refillWatermark = 0.5,
                                        .panicWatermark = 0.125});
    service.refillBelowWatermark();
    auto c0 = service.connect("c0", Priority::Standard, 0);
    auto c1 = service.connect("c1", Priority::Standard, 1);
    uint8_t buf[128];
    c0.request(buf, 95); // level 5 <= 12.5: panic
    c1.request(buf, 60); // level 40 <= 50: refill, not panic
    EXPECT_EQ(service.refillDemandBytes(), 95u + 60u);
    EXPECT_EQ(service.urgentDemandBytes(), 95u);
}

TEST(EntropyService, ConcurrentDrainDuringBackgroundRefill)
{
    TaggedTrng backend(42, 64);
    EntropyService service({&backend}, {.shardCapacityBytes = 1024,
                                        .refillWatermark = 0.9});
    service.startAutoRefill(std::chrono::microseconds(20));
    auto client = service.connect("drain");

    std::vector<uint8_t> stream;
    uint8_t buf[96];
    for (int i = 0; i < 3000; ++i) {
        size_t len = 1 + static_cast<size_t>(i * 31 % 96);
        RequestResult result = client.request(buf, len);
        ASSERT_EQ(result.bytes, len);
        stream.insert(stream.end(), buf, buf + len);
    }

    // Under a loaded machine the refill thread may not have run at
    // all yet; give it bounded time to prove it tops the service up
    // (once the drain stops, the level only rises).
    for (int spin = 0;
         spin < 5000 && service.level(0) < sizeof(buf); ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    service.stopAutoRefill();
    EXPECT_GT(service.bytesRefilled(), 0u);

    // No byte was lost, duplicated, or reordered by the racing
    // refill thread: the client saw the exact backend stream...
    expectStreamContinuity(stream, 42);
    // ...and the stream continues seamlessly from the warm buffer.
    ASSERT_GE(service.level(0), sizeof(buf));
    RequestResult last = client.request(buf, sizeof(buf));
    EXPECT_TRUE(last.hit);
    stream.insert(stream.end(), buf, buf + sizeof(buf));
    expectStreamContinuity(stream, 42);
}

TEST(EntropyService, SharedBackendShardsStayRaceFreeAndLossless)
{
    // More shards than backends: byte-to-shard assignment is
    // interleaving-dependent, but the union of all streams must be
    // the exact backend stream (no loss, no duplication).
    TaggedTrng backend(0, 0); // tag 0: byte k = 151 * k mod 256
    EntropyService service({&backend}, {.shards = 4,
                                        .shardCapacityBytes = 256,
                                        .refillWatermark = 0.5});
    std::vector<EntropyService::Client> clients;
    for (size_t s = 0; s < 4; ++s)
        clients.push_back(service.connect("c", Priority::Standard, s));

    std::vector<std::vector<uint8_t>> streams(4);
    parallelFor(0, 4, [&](size_t s) {
        uint8_t buf[128];
        for (int k = 0; k < 50; ++k) {
            size_t len = 1 + static_cast<size_t>((s * 37 + k * 13) % 128);
            clients[s].request(buf, len);
            streams[s].insert(streams[s].end(), buf, buf + len);
            if (k % 4 == 0)
                service.refillBelowWatermark();
        }
    }, 4);

    size_t produced = 0;
    for (const auto &stream : streams)
        produced += stream.size();
    size_t generated = service.totalLevel() + produced;
    // Every generated byte is either still buffered or was served.
    std::vector<uint64_t> seen(256, 0);
    for (const auto &stream : streams)
        for (uint8_t byte : stream)
            ++seen[byte];
    for (size_t i = 0; i < service.shardCount(); ++i) {
        auto rest = clients[i].request(service.level(i));
        for (uint8_t byte : rest)
            ++seen[byte];
    }
    std::vector<uint64_t> expected(256, 0);
    for (uint64_t k = 0; k < generated; ++k)
        ++expected[TaggedTrng::expected(0, k)];
    EXPECT_EQ(seen, expected);
}

TEST(EntropyService, RejectsBadConfig)
{
    TaggedTrng backend(1);
    EXPECT_THROW(EntropyService({}, {}), FatalError);
    EXPECT_THROW(EntropyService({nullptr}, {}), FatalError);
    EXPECT_THROW(EntropyService({&backend}, {.refillWatermark = 1.5}),
                 FatalError);
    EXPECT_THROW(EntropyService({&backend}, {.refillWatermark = 0.25,
                                             .panicWatermark = 0.5}),
                 FatalError);
    EXPECT_THROW(EntropyService({&backend}, {.shardCapacityBytes = 0}),
                 FatalError)
        << "zero-capacity shards have no buffer to serve from";
    EXPECT_THROW(EntropyService({&backend}, {.shardCapacityBytes = 16,
                                             .refillThreads = 0}),
                 FatalError)
        << "refill worker count must be explicit, >= 1";
    EXPECT_THROW(
        EntropyService({&backend}, {.shardCapacityBytes = 16,
                                    .placementLatencyWeight = -1.0}),
        FatalError);
    EXPECT_THROW(
        EntropyService({&backend}, {.shardCapacityBytes = 16,
                                    .recentLatencyWindow = 0}),
        FatalError);
    EntropyService service({&backend}, {.shardCapacityBytes = 16});
    EXPECT_THROW(service.connect("oops", Priority::Standard, 3),
                 FatalError);
}

TEST(EntropyService, PriorityNames)
{
    EXPECT_STREQ(priorityName(Priority::Interactive), "interactive");
    EXPECT_STREQ(priorityName(Priority::Standard), "standard");
    EXPECT_STREQ(priorityName(Priority::Bulk), "bulk");
}

} // anonymous namespace
} // namespace quac::service

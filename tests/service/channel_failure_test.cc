/**
 * @file
 * Tests for channel-level failure handling in the multi-channel
 * refill scheduler: failover placement onto the least-occupied
 * servable channel, failback home on recovery, the failed channel's
 * tick accounting, byte-exact healthy replay across an outage, and
 * SLO-driven per-channel policy escalation.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"
#include "core/fault_injection.hh"
#include "service/entropy_service.hh"
#include "service/refill_scheduler.hh"
#include "sysperf/workloads.hh"

namespace quac::service
{
namespace
{

/** Service with one distinct-stream backend per shard. */
struct Harness
{
    std::vector<std::unique_ptr<core::SoftwareTrng>> backends;
    std::vector<core::Trng *> pool;
    std::unique_ptr<EntropyService> service;

    explicit Harness(size_t shards, size_t capacity = 1 << 12)
    {
        for (size_t i = 0; i < shards; ++i) {
            backends.push_back(std::make_unique<core::SoftwareTrng>(
                1000 + i, "bank" + std::to_string(i)));
            pool.push_back(backends.back().get());
        }
        EntropyServiceConfig cfg;
        cfg.shards = shards;
        cfg.shardCapacityBytes = capacity;
        cfg.refillWatermark = 1.0;
        service = std::make_unique<EntropyService>(pool, cfg);
    }
};

MultiChannelRefillConfig
idleConfig(unsigned channels)
{
    MultiChannelRefillConfig cfg;
    cfg.topology.channels = channels;
    cfg.policy = sysperf::FairnessPolicy::Fcfs;
    cfg.tickNs = 1.0e5;
    cfg.seed = 17;
    return cfg;
}

std::vector<sysperf::WorkloadProfile>
idleTraffic(unsigned channels)
{
    return std::vector<sysperf::WorkloadProfile>(
        channels, {"idle", 0.0, 100.0});
}

TEST(ChannelFail, FailoverMovesShardsToLeastOccupiedChannel)
{
    Harness harness(6);
    MultiChannelRefillScheduler scheduler(
        *harness.service, idleTraffic(3), idleConfig(3));
    // Round-robin: channel 0 = {0,3}, 1 = {1,4}, 2 = {2,5}.
    scheduler.failChannel(0);

    EXPECT_TRUE(scheduler.channelFailed(0));
    EXPECT_EQ(scheduler.failedChannelCount(), 1u);
    EXPECT_EQ(scheduler.failovers(), 2u);
    // Least-occupied with ascending tie-break: shard 0 to channel 1
    // (2 vs 2, tie -> 1), shard 3 to channel 2 (3 vs 2).
    EXPECT_EQ(scheduler.placement().channelOfShard[0], 1u);
    EXPECT_EQ(scheduler.placement().channelOfShard[3], 2u);
    // The other shards never move.
    EXPECT_EQ(scheduler.placement().channelOfShard[1], 1u);
    EXPECT_EQ(scheduler.placement().channelOfShard[2], 2u);

    // Idempotent: a second failure report is a no-op.
    scheduler.failChannel(0);
    EXPECT_EQ(scheduler.failovers(), 2u);
}

TEST(ChannelFail, RecoveryReturnsDisplacedShardsHome)
{
    Harness harness(4);
    MultiChannelRefillScheduler scheduler(
        *harness.service, idleTraffic(2), idleConfig(2));
    scheduler.failChannel(0);
    ASSERT_EQ(scheduler.placement().channelOfShard[0], 1u);
    ASSERT_EQ(scheduler.placement().channelOfShard[2], 1u);

    scheduler.recoverChannel(0);
    EXPECT_FALSE(scheduler.channelFailed(0));
    EXPECT_EQ(scheduler.failedChannelCount(), 0u);
    EXPECT_EQ(scheduler.failbacks(), 2u);
    EXPECT_EQ(scheduler.placement().channelOfShard[0], 0u);
    EXPECT_EQ(scheduler.placement().channelOfShard[2], 0u);

    // Idempotent recovery.
    scheduler.recoverChannel(0);
    EXPECT_EQ(scheduler.failbacks(), 2u);
}

TEST(ChannelFail, ShardsKeepFillingThroughAnOutage)
{
    Harness harness(4);
    MultiChannelRefillScheduler scheduler(
        *harness.service, idleTraffic(2), idleConfig(2));
    scheduler.failChannel(0);
    scheduler.run(20);

    // The surviving channel carries every shard to full.
    for (size_t s = 0; s < 4; ++s)
        EXPECT_EQ(harness.service->level(s), size_t{1} << 12) << s;
    // The failed channel modelled time but granted nothing.
    EXPECT_EQ(scheduler.channelTotal(0).ticks, 20u);
    EXPECT_DOUBLE_EQ(scheduler.channelTotal(0).grantedNs, 0.0);
    EXPECT_EQ(scheduler.channelTotal(0).bytesRefilled, 0u);
    EXPECT_GT(scheduler.channelTotal(1).bytesRefilled, 0u);
}

TEST(ChannelFail, AllChannelsDownShardsStayAndStarveVisibly)
{
    Harness harness(2);
    MultiChannelRefillScheduler scheduler(
        *harness.service, idleTraffic(2), idleConfig(2));
    scheduler.failChannel(0);
    scheduler.failChannel(1);
    EXPECT_EQ(scheduler.failedChannelCount(), 2u);
    // Nowhere to go: placements unchanged, no phantom failovers for
    // the second channel's shards.
    EXPECT_EQ(scheduler.placement().channelOfShard[1], 1u);

    scheduler.run(5);
    for (size_t s = 0; s < 2; ++s)
        EXPECT_EQ(harness.service->level(s), 0u) << s;

    scheduler.recoverChannel(0);
    scheduler.recoverChannel(1);
    scheduler.run(10);
    for (size_t s = 0; s < 2; ++s)
        EXPECT_EQ(harness.service->level(s), size_t{1} << 12) << s;
}

TEST(ChannelFail, SecondFailureKeepsOriginalHome)
{
    Harness harness(6);
    MultiChannelRefillScheduler scheduler(
        *harness.service, idleTraffic(3), idleConfig(3));
    scheduler.failChannel(0); // shard 0 -> channel 1
    ASSERT_EQ(scheduler.placement().channelOfShard[0], 1u);
    scheduler.failChannel(1); // shard 0 displaced again -> channel 2
    EXPECT_EQ(scheduler.placement().channelOfShard[0], 2u);

    // Recovering the intermediate host does NOT reclaim shard 0:
    // its failure home is channel 0.
    scheduler.recoverChannel(1);
    EXPECT_EQ(scheduler.placement().channelOfShard[0], 2u);
    scheduler.recoverChannel(0);
    EXPECT_EQ(scheduler.placement().channelOfShard[0], 0u);
}

TEST(ChannelFail, ByteExactReplayAcrossOutageAndRecovery)
{
    // The standing invariant: an outage changes WHEN bytes are
    // refilled, never WHICH bytes a shard serves. Run the same
    // request schedule with and without a fail/recover cycle and
    // demand identical streams.
    auto serve = [](bool outage) {
        Harness harness(4, 1 << 10);
        MultiChannelRefillScheduler scheduler(
            *harness.service, idleTraffic(2), idleConfig(2));
        std::vector<EntropyService::Client> clients;
        for (size_t s = 0; s < 4; ++s) {
            clients.push_back(harness.service->connect(
                "c" + std::to_string(s), Priority::Standard, s));
        }
        std::vector<std::vector<uint8_t>> streams(4);
        auto pull = [&](size_t bytes) {
            for (size_t s = 0; s < 4; ++s) {
                std::vector<uint8_t> got = clients[s].request(bytes);
                streams[s].insert(streams[s].end(), got.begin(),
                                  got.end());
            }
        };
        scheduler.run(3);
        pull(512);
        if (outage)
            scheduler.failChannel(0);
        scheduler.run(5);
        pull(1536); // spans buffer + synchronous backend continuation
        if (outage)
            scheduler.recoverChannel(0);
        scheduler.run(5);
        pull(512);
        return streams;
    };

    std::vector<std::vector<uint8_t>> healthy = serve(false);
    std::vector<std::vector<uint8_t>> failed = serve(true);
    for (size_t s = 0; s < 4; ++s) {
        ASSERT_EQ(healthy[s].size(), failed[s].size()) << s;
        EXPECT_EQ(healthy[s], failed[s]) << "shard " << s;
    }
}

TEST(ChannelFail, SloBreachEscalatesChannelPolicyWhileItLasts)
{
    Harness harness(2, 1 << 10);
    MultiChannelRefillConfig cfg = idleConfig(2);
    cfg.sloEscalation = true;
    cfg.escalateSloNs = 100.0;
    MultiChannelRefillScheduler scheduler(
        *harness.service, idleTraffic(2), cfg);
    ASSERT_EQ(scheduler.channelPolicy(0),
              sysperf::FairnessPolicy::Fcfs);

    // Shard 0 (channel 0) records miss-priced tail latencies far
    // above the 100 ns SLO, and its empty buffer is demand.
    EntropyService::Client client =
        harness.service->connect("victim", Priority::Interactive, 0);
    std::vector<uint8_t> out(256);
    for (int i = 0; i < 4; ++i)
        client.requestAt(out.data(), out.size(), 0.0);
    ASSERT_GT(harness.service->shardRecentP95Ns(0), 100.0);

    scheduler.run(1);
    EXPECT_TRUE(scheduler.channelEscalated(0));
    EXPECT_FALSE(scheduler.channelEscalated(1));
    EXPECT_EQ(scheduler.channelPolicy(0),
              sysperf::FairnessPolicy::RngPriority);
    EXPECT_EQ(scheduler.channelPolicy(1),
              sysperf::FairnessPolicy::Fcfs);
    EXPECT_GE(scheduler.escalatedTicks(), 1u);

    // Once the shard's demand is refilled away the breach no longer
    // has demand behind it: the escalation stands down.
    scheduler.run(20);
    ASSERT_EQ(harness.service->level(0), size_t{1} << 10);
    scheduler.run(1);
    EXPECT_FALSE(scheduler.channelEscalated(0));
    EXPECT_EQ(scheduler.channelPolicy(0),
              sysperf::FairnessPolicy::Fcfs);
}

TEST(ChannelFail, EscalationConfigValidated)
{
    Harness harness(2);
    MultiChannelRefillConfig cfg = idleConfig(2);
    cfg.sloEscalation = true;
    cfg.escalateSloNs = 0.0;
    EXPECT_THROW(MultiChannelRefillScheduler(*harness.service,
                                             idleTraffic(2), cfg),
                 FatalError);
}

} // anonymous namespace
} // namespace quac::service

/**
 * @file
 * Tests for SLO-aware admission control on bulk connects: the
 * headroom gate, the bounded FIFO retry queue with exponential
 * backoff, overflow denial, eventual admission, and configuration
 * validation.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hh"
#include "core/fault_injection.hh"
#include "service/entropy_service.hh"

namespace quac::service
{
namespace
{

/**
 * One shard, tiny recent-latency window (4 samples) so a handful of
 * requests fully determines the p99 the admission gate reads.
 * Thresholds: SLO 400 ns, headroom fraction 0.5 => gate closes when
 * the worst recent shard p99 exceeds 200 ns. A buffer hit models
 * ~25 ns; a 256-byte miss models >= 512 ns.
 */
EntropyServiceConfig
admissionConfig()
{
    EntropyServiceConfig cfg;
    cfg.shards = 1;
    cfg.shardCapacityBytes = 1024;
    cfg.refillWatermark = 1.0;
    cfg.recentLatencyWindow = 4;
    cfg.syncFillBackoff = std::chrono::microseconds(0);
    cfg.admission.enabled = true;
    cfg.admission.interactiveSloNs = 400.0;
    cfg.admission.headroomFraction = 0.5;
    cfg.admission.maxQueuedConnects = 2;
    cfg.admission.retryBackoffTicks = 1;
    cfg.admission.maxBackoffTicks = 4;
    return cfg;
}

/**
 * Record @p n miss-priced samples. The shard starts (and stays)
 * empty — synchronous fills serve the caller directly without
 * topping the buffer up, so every request is a miss.
 */
void
inflateTail(EntropyService &svc, EntropyService::Client &client,
            int n)
{
    (void)svc;
    std::vector<uint8_t> out(256);
    for (int i = 0; i < n; ++i) {
        RequestResult r =
            client.requestAt(out.data(), out.size(), 0.0);
        ASSERT_FALSE(r.hit);
        ASSERT_GT(r.modeledLatencyNs, 200.0);
    }
}

/**
 * Record @p n hit-priced samples, ageing the misses out of the
 * window. Arrivals land far past any modelled backlog so the hits
 * are priced at service time alone (~25 ns), not queueing.
 */
void
restoreTail(EntropyService &svc, EntropyService::Client &client,
            int n)
{
    std::vector<uint8_t> out(16);
    svc.refillBelowWatermark();
    for (int i = 0; i < n; ++i) {
        RequestResult r = client.requestAt(
            out.data(), out.size(), 1.0e12 + 1.0e3 * i);
        ASSERT_TRUE(r.hit);
        ASSERT_LT(r.modeledLatencyNs, 200.0);
    }
}

TEST(Admission, DisabledGatePassesBulkThrough)
{
    core::SoftwareTrng backend(1);
    EntropyServiceConfig cfg = admissionConfig();
    cfg.admission.enabled = false;
    EntropyService svc({&backend}, cfg);

    EntropyService::AdmissionOutcome out =
        svc.admit("bulk", Priority::Bulk);
    EXPECT_EQ(out.decision, AdmissionDecision::Admitted);
    ASSERT_TRUE(out.client.has_value());
    EXPECT_FALSE(svc.admissionStats().enabled);
    EXPECT_TRUE(svc.admissionTick().empty());
}

TEST(Admission, InteractiveAndStandardBypassTheGate)
{
    core::SoftwareTrng backend(2);
    EntropyService svc({&backend}, admissionConfig());
    EntropyService::Client probe =
        svc.connect("probe", Priority::Interactive, 0);
    inflateTail(svc, probe, 4);
    ASSERT_FALSE(svc.admissionHeadroom());

    // The classes admission exists to protect are never gated.
    EXPECT_EQ(svc.admit("i", Priority::Interactive).decision,
              AdmissionDecision::Admitted);
    EXPECT_EQ(svc.admit("s", Priority::Standard).decision,
              AdmissionDecision::Admitted);
    // Bypasses are not admission attempts.
    EXPECT_EQ(svc.admissionStats().attempts, 0u);
}

TEST(Admission, BulkAdmittedWhileHeadroomHolds)
{
    core::SoftwareTrng backend(3);
    EntropyService svc({&backend}, admissionConfig());
    ASSERT_TRUE(svc.admissionHeadroom());

    EntropyService::AdmissionOutcome out =
        svc.admit("bulk", Priority::Bulk);
    EXPECT_EQ(out.decision, AdmissionDecision::Admitted);
    ASSERT_TRUE(out.client.has_value());
    EXPECT_EQ(out.client->priority(), Priority::Bulk);

    EntropyService::AdmissionStats stats = svc.admissionStats();
    EXPECT_EQ(stats.attempts, 1u);
    EXPECT_EQ(stats.admitted, 1u);
    EXPECT_EQ(stats.queued, 0u);
}

TEST(Admission, ThinHeadroomQueuesThenReleasesInOrder)
{
    core::SoftwareTrng backend(4);
    EntropyService svc({&backend}, admissionConfig());
    EntropyService::Client probe =
        svc.connect("probe", Priority::Interactive, 0);
    inflateTail(svc, probe, 4);
    ASSERT_FALSE(svc.admissionHeadroom());
    EXPECT_GT(svc.interactiveHeadroomP99Ns(), 200.0);

    EntropyService::AdmissionOutcome first =
        svc.admit("first", Priority::Bulk);
    EXPECT_EQ(first.decision, AdmissionDecision::Queued);
    EXPECT_FALSE(first.client.has_value());

    // Headroom recovers, but the queue is non-empty: a newcomer must
    // not overtake the parked connect — it queues behind it (FIFO).
    restoreTail(svc, probe, 4);
    ASSERT_TRUE(svc.admissionHeadroom());
    EXPECT_EQ(svc.admit("second", Priority::Bulk).decision,
              AdmissionDecision::Queued);

    std::vector<EntropyService::Client> released =
        svc.admissionTick();
    ASSERT_EQ(released.size(), 2u);
    EXPECT_EQ(released[0].name(), "first");
    EXPECT_EQ(released[1].name(), "second");

    EntropyService::AdmissionStats stats = svc.admissionStats();
    EXPECT_EQ(stats.admittedFromQueue, 2u);
    EXPECT_EQ(stats.queuedNow, 0u);
    EXPECT_EQ(stats.maxQueueDepth, 2u);
}

TEST(Admission, QueueOverflowDenies)
{
    core::SoftwareTrng backend(5);
    EntropyService svc({&backend}, admissionConfig());
    EntropyService::Client probe =
        svc.connect("probe", Priority::Interactive, 0);
    inflateTail(svc, probe, 4);

    EXPECT_EQ(svc.admit("a", Priority::Bulk).decision,
              AdmissionDecision::Queued);
    EXPECT_EQ(svc.admit("b", Priority::Bulk).decision,
              AdmissionDecision::Queued);
    EXPECT_EQ(svc.admit("c", Priority::Bulk).decision,
              AdmissionDecision::Denied);

    EntropyService::AdmissionStats stats = svc.admissionStats();
    EXPECT_EQ(stats.queued, 2u);
    EXPECT_EQ(stats.denied, 1u);
    EXPECT_EQ(stats.queuedNow, 2u);
}

TEST(Admission, BackoffDoublesBoundedWhileThin)
{
    core::SoftwareTrng backend(6);
    EntropyService svc({&backend}, admissionConfig());
    EntropyService::Client probe =
        svc.connect("probe", Priority::Interactive, 0);
    inflateTail(svc, probe, 4);
    ASSERT_EQ(svc.admit("parked", Priority::Bulk).decision,
              AdmissionDecision::Queued);

    // While headroom stays thin the head is probed at ticks 1, 3, 7,
    // 11, 15, ... (backoff 1 -> 2 -> 4, capped at 4): 16 ticks see
    // exactly 5 retries and no admission.
    uint64_t retries_before = svc.admissionStats().retries;
    for (int t = 0; t < 16; ++t)
        EXPECT_TRUE(svc.admissionTick().empty()) << "tick " << t;
    EXPECT_EQ(svc.admissionStats().retries - retries_before, 5u);
    EXPECT_EQ(svc.admissionStats().queuedNow, 1u);

    // Headroom returns: the parked connect is eventually admitted.
    restoreTail(svc, probe, 4);
    std::vector<EntropyService::Client> released;
    for (int t = 0; t < 8 && released.empty(); ++t)
        released = svc.admissionTick();
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0].name(), "parked");
    EXPECT_EQ(svc.admissionStats().queuedNow, 0u);
}

TEST(Admission, ReleasedClientsServeNormally)
{
    core::SoftwareTrng backend(7);
    EntropyService svc({&backend}, admissionConfig());
    EntropyService::Client probe =
        svc.connect("probe", Priority::Interactive, 0);
    inflateTail(svc, probe, 4);
    ASSERT_EQ(svc.admit("parked", Priority::Bulk).decision,
              AdmissionDecision::Queued);
    restoreTail(svc, probe, 4);

    std::vector<EntropyService::Client> released;
    for (int t = 0; t < 8 && released.empty(); ++t)
        released = svc.admissionTick();
    ASSERT_EQ(released.size(), 1u);

    svc.refillBelowWatermark();
    std::vector<uint8_t> got = released[0].request(64);
    EXPECT_EQ(got.size(), 64u);
}

TEST(Admission, DecayedTailSurvivesFullTopUp)
{
    core::SoftwareTrng backend(9);
    EntropyService svc({&backend}, admissionConfig());
    EntropyService::Client probe =
        svc.connect("probe", Priority::Interactive, 0);
    inflateTail(svc, probe, 4);
    ASSERT_FALSE(svc.admissionHeadroom());
    double inflamed = svc.shardDecayedTailNs(0);
    EXPECT_GT(inflamed, 400.0);

    // A full top-up clears the windowed tail, but congestion this
    // recent must not vanish from the gate's view the instant the
    // buffer is replenished: the decayed estimate bridges the blind
    // spot and keeps bulk connects parked.
    svc.refillBelowWatermark();
    EXPECT_DOUBLE_EQ(svc.shardRecentP95Ns(0), 0.0);
    EXPECT_FALSE(svc.admissionHeadroom());
    EXPECT_EQ(svc.admit("early", Priority::Bulk).decision,
              AdmissionDecision::Queued);

    // With no further traffic at all, per-tick decay reopens the
    // gate; the parked connect's own retry probing finds it open.
    std::vector<EntropyService::Client> released;
    for (int t = 0; t < 8 && released.empty(); ++t)
        released = svc.admissionTick();
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0].name(), "early");
    EXPECT_TRUE(svc.admissionHeadroom());
    EXPECT_LT(svc.shardDecayedTailNs(0), 200.0);
}

TEST(Admission, ZeroDecayRestoresWindowOnlyGate)
{
    core::SoftwareTrng backend(10);
    EntropyServiceConfig cfg = admissionConfig();
    cfg.admission.tailDecayPerSample = 0.0;
    EntropyService svc({&backend}, cfg);
    EntropyService::Client probe =
        svc.connect("probe", Priority::Interactive, 0);
    inflateTail(svc, probe, 4);
    ASSERT_FALSE(svc.admissionHeadroom());
    EXPECT_DOUBLE_EQ(svc.shardDecayedTailNs(0), 0.0);

    // Legacy behaviour: the top-up alone reopens the gate.
    svc.refillBelowWatermark();
    EXPECT_TRUE(svc.admissionHeadroom());
    EXPECT_EQ(svc.admit("bulk", Priority::Bulk).decision,
              AdmissionDecision::Admitted);
}

TEST(Admission, ConfigValidatedThroughServiceCtor)
{
    core::SoftwareTrng backend(8);
    EntropyServiceConfig cfg = admissionConfig();
    cfg.admission.interactiveSloNs = 0.0;
    EXPECT_THROW(EntropyService({&backend}, cfg), FatalError);

    cfg = admissionConfig();
    cfg.admission.headroomFraction = 1.5;
    EXPECT_THROW(EntropyService({&backend}, cfg), FatalError);

    cfg = admissionConfig();
    cfg.admission.maxQueuedConnects = 0;
    EXPECT_THROW(EntropyService({&backend}, cfg), FatalError);

    cfg = admissionConfig();
    cfg.admission.retryBackoffTicks = 0;
    EXPECT_THROW(EntropyService({&backend}, cfg), FatalError);

    cfg = admissionConfig();
    cfg.admission.maxBackoffTicks = 0; // < retryBackoffTicks
    EXPECT_THROW(EntropyService({&backend}, cfg), FatalError);

    cfg = admissionConfig();
    cfg.admission.tailDecayPerSample = 1.0; // must be < 1
    EXPECT_THROW(EntropyService({&backend}, cfg), FatalError);

    cfg = admissionConfig();
    cfg.admission.tailDecayPerSample = -0.1;
    EXPECT_THROW(EntropyService({&backend}, cfg), FatalError);

    // The same nonsense with the gate disabled is accepted (knobs
    // are never read).
    cfg.admission.enabled = false;
    EntropyService svc({&backend}, cfg);
    EXPECT_EQ(svc.admit("x", Priority::Bulk).decision,
              AdmissionDecision::Admitted);
}

} // anonymous namespace
} // namespace quac::service

/**
 * @file
 * Tests for the bounded wire-client table: LRU eviction at capacity,
 * admission-gate mapping (Queued / Denied / adoption via pump),
 * nonce replay and gap accounting, per-client pacing buckets, and
 * the wire-name round trip.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fault_injection.hh"
#include "service/client_table.hh"
#include "service/entropy_service.hh"

namespace quac::service
{
namespace
{

EntropyServiceConfig
plainConfig()
{
    EntropyServiceConfig cfg;
    cfg.shards = 1;
    cfg.shardCapacityBytes = 4096;
    cfg.refillWatermark = 1.0;
    return cfg;
}

/** One shard, admission gate on, tiny queue (see admission_test). */
EntropyServiceConfig
gatedConfig()
{
    EntropyServiceConfig cfg = plainConfig();
    cfg.shardCapacityBytes = 1024;
    cfg.recentLatencyWindow = 4;
    cfg.syncFillBackoff = std::chrono::microseconds(0);
    cfg.admission.enabled = true;
    cfg.admission.interactiveSloNs = 400.0;
    cfg.admission.headroomFraction = 0.5;
    cfg.admission.maxQueuedConnects = 2;
    cfg.admission.retryBackoffTicks = 1;
    cfg.admission.maxBackoffTicks = 4;
    return cfg;
}

TEST(ClientTable, AcquireCreatesThenHits)
{
    core::SoftwareTrng backend(30);
    EntropyService svc({&backend}, plainConfig());
    ClientTable table(svc, {.capacity = 4});

    ClientTable::Acquire first =
        table.acquire(7, Priority::Standard, 0);
    ASSERT_EQ(first.status, ClientTable::AcquireStatus::Created);
    ASSERT_NE(first.entry, nullptr);
    EXPECT_EQ(first.entry->id, 7u);
    EXPECT_EQ(first.entry->client.name(), table.wireName(7));
    EXPECT_EQ(first.entry->client.priority(), Priority::Standard);
    EXPECT_TRUE(first.entry->bucket.unlimited()) << "unpaced";

    ClientTable::Acquire again =
        table.acquire(7, Priority::Bulk, 0);
    EXPECT_EQ(again.status, ClientTable::AcquireStatus::Existing);
    // The priority of the first admission sticks.
    EXPECT_EQ(again.entry->client.priority(), Priority::Standard);
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table.stats().inserts, 1u);
    EXPECT_EQ(table.stats().hits, 1u);
    EXPECT_EQ(table.stats().lookups, 2u);
}

TEST(ClientTable, EvictsLeastRecentlySeenAtCapacity)
{
    core::SoftwareTrng backend(31);
    EntropyService svc({&backend}, plainConfig());
    ClientTable table(svc, {.capacity = 2});

    table.acquire(1, Priority::Standard, 0);
    table.acquire(2, Priority::Standard, 0);
    // Touch 1 so 2 becomes the LRU victim.
    table.acquire(1, Priority::Standard, 0);
    ClientTable::Acquire third =
        table.acquire(3, Priority::Standard, 0);
    EXPECT_EQ(third.status, ClientTable::AcquireStatus::Created);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_EQ(table.stats().evictions, 1u);

    // 1 survived; 2 was forgotten and re-enters as a fresh client
    // with a fresh nonce window.
    EXPECT_EQ(table.acquire(1, Priority::Standard, 0).status,
              ClientTable::AcquireStatus::Existing);
    ClientTable::Acquire back =
        table.acquire(2, Priority::Standard, 0);
    EXPECT_EQ(back.status, ClientTable::AcquireStatus::Created);
    EXPECT_FALSE(back.entry->seenNonce);
    EXPECT_EQ(table.stats().evictions, 2u);
}

TEST(ClientTable, NonceSequenceAccounting)
{
    core::SoftwareTrng backend(32);
    EntropyService svc({&backend}, plainConfig());
    ClientTable table(svc, {.capacity = 4});
    ClientTable::Entry &entry =
        *table.acquire(9, Priority::Standard, 0).entry;

    // First nonce seen anchors the window at any value.
    EXPECT_EQ(table.checkNonce(entry, 5),
              ClientTable::NonceCheck::Fresh);
    EXPECT_EQ(table.checkNonce(entry, 6),
              ClientTable::NonceCheck::Fresh);
    // Jumping ahead is served but recorded as client-side loss.
    EXPECT_EQ(table.checkNonce(entry, 10),
              ClientTable::NonceCheck::Gap);
    EXPECT_EQ(entry.nonceGaps, 1u);
    EXPECT_EQ(entry.missingSeqs, 3u); // 7, 8, 9
    // At or below the high-water mark: replay, lastNonce untouched.
    EXPECT_EQ(table.checkNonce(entry, 10),
              ClientTable::NonceCheck::Replay);
    EXPECT_EQ(table.checkNonce(entry, 3),
              ClientTable::NonceCheck::Replay);
    EXPECT_EQ(entry.lastNonce, 10u);
    EXPECT_EQ(entry.replays, 2u);
    EXPECT_EQ(table.checkNonce(entry, 11),
              ClientTable::NonceCheck::Fresh);

    EXPECT_EQ(table.stats().replays, 2u);
    EXPECT_EQ(table.stats().nonceGaps, 1u);
    EXPECT_EQ(table.stats().missingSeqs, 3u);
}

TEST(ClientTable, PerClientPacingBucketFromConfig)
{
    core::SoftwareTrng backend(33);
    EntropyService svc({&backend}, plainConfig());
    ClientTableConfig cfg;
    cfg.capacity = 4;
    cfg.perClientBytesPerSec = 1000.0;
    cfg.perClientBurstBytes = 100.0;
    ClientTable table(svc, cfg);

    ClientTable::Entry &entry =
        *table.acquire(1, Priority::Standard, 0).entry;
    ASSERT_FALSE(entry.bucket.unlimited());
    EXPECT_TRUE(entry.bucket.tryTake(100.0, 0));
    EXPECT_FALSE(entry.bucket.tryTake(1.0, 0));
    // Each client gets its own bucket.
    ClientTable::Entry &other =
        *table.acquire(2, Priority::Standard, 0).entry;
    EXPECT_TRUE(other.bucket.tryTake(100.0, 0));
}

TEST(ClientTable, BulkMapsThroughAdmissionGate)
{
    core::SoftwareTrng backend(34);
    EntropyService svc({&backend}, gatedConfig());

    // Close the gate: timed 256-byte misses inflate the tail.
    EntropyService::Client probe =
        svc.connect("probe", Priority::Interactive, 0);
    std::vector<uint8_t> out(256);
    for (int i = 0; i < 4; ++i)
        probe.requestAt(out.data(), out.size(), 0.0);
    ASSERT_FALSE(svc.admissionHeadroom());

    ClientTable table(svc, {.capacity = 8});
    // Interactive bypasses the gate even when thin.
    EXPECT_EQ(table.acquire(1, Priority::Interactive, 0).status,
              ClientTable::AcquireStatus::Created);

    // Bulk parks; retries of the same id do not multiply queue
    // entries; the queue overflows into an outright denial.
    EXPECT_EQ(table.acquire(2, Priority::Bulk, 0).status,
              ClientTable::AcquireStatus::Queued);
    EXPECT_EQ(table.acquire(2, Priority::Bulk, 0).status,
              ClientTable::AcquireStatus::Queued);
    EXPECT_EQ(svc.admissionStats().queuedNow, 1u);
    EXPECT_EQ(table.acquire(3, Priority::Bulk, 0).status,
              ClientTable::AcquireStatus::Queued);
    EXPECT_EQ(table.acquire(4, Priority::Bulk, 0).status,
              ClientTable::AcquireStatus::Denied);
    // Retries of a parked id are answered from queuedIds_, not
    // re-queued: only the two distinct ids count.
    EXPECT_EQ(table.stats().queued, 2u);
    EXPECT_EQ(table.stats().denied, 1u);

    // Restore headroom; pump() adopts the released connects, which
    // install on each client's next datagram.
    svc.refillBelowWatermark();
    for (int i = 0; i < 4; ++i)
        probe.requestAt(out.data(), 16, 1.0e12 + 1.0e3 * i);
    ASSERT_TRUE(svc.admissionHeadroom());
    size_t adopted = 0;
    for (int t = 0; t < 16 && adopted < 2; ++t)
        adopted += table.pump();
    EXPECT_EQ(adopted, 2u);
    EXPECT_EQ(table.stats().adopted, 2u);

    ClientTable::Acquire two = table.acquire(2, Priority::Bulk, 0);
    EXPECT_EQ(two.status, ClientTable::AcquireStatus::Created);
    EXPECT_EQ(two.entry->client.priority(), Priority::Bulk);
    EXPECT_EQ(table.acquire(3, Priority::Bulk, 0).status,
              ClientTable::AcquireStatus::Created);
    EXPECT_EQ(svc.admissionStats().queuedNow, 0u);
}

TEST(ClientTable, WireNameRoundTrip)
{
    core::SoftwareTrng backend(35);
    EntropyService svc({&backend}, plainConfig());
    ClientTable table(svc, {.capacity = 2, .namePrefix = "edge"});

    std::string name = table.wireName(0xDEADBEEFull);
    EXPECT_EQ(name, "edge-00000000deadbeef");
    uint64_t id = 0;
    ASSERT_TRUE(table.parseWireName(name, id));
    EXPECT_EQ(id, 0xDEADBEEFull);

    EXPECT_FALSE(table.parseWireName("other-00000000deadbeef", id));
    EXPECT_FALSE(table.parseWireName("edge-xyz", id));
    EXPECT_FALSE(table.parseWireName("edge-", id));
    EXPECT_FALSE(table.parseWireName("", id));
}

} // namespace
} // namespace quac::service

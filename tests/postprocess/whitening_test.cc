/**
 * @file
 * Tests for SHA-256 entropy-block whitening.
 */

#include <gtest/gtest.h>

#include "crypto/sha256.hh"
#include "postprocess/whitening.hh"

namespace quac::postprocess
{
namespace
{

TEST(Whitening, Produces256Bits)
{
    Bitstream raw(1000);
    EXPECT_EQ(whitenBlock(raw).size(), 256u);
}

TEST(Whitening, MatchesDirectSha)
{
    std::vector<uint8_t> raw = {1, 2, 3, 4, 5};
    Bitstream out = whitenBlock(raw);
    Sha256::Digest digest = Sha256::hash(raw);
    for (size_t i = 0; i < 256; ++i) {
        bool expected = (digest[i / 8] >> (i % 8)) & 1;
        EXPECT_EQ(out[i], expected) << "bit " << i;
    }
}

TEST(Whitening, BitstreamAndByteOverloadsAgree)
{
    Bitstream raw;
    for (int i = 0; i < 512; ++i)
        raw.append(i % 3 == 0);
    EXPECT_EQ(whitenBlock(raw), whitenBlock(raw.toBytes()));
}

TEST(Whitening, SensitiveToSingleBit)
{
    Bitstream a(512);
    Bitstream b(512);
    b.set(100, true);
    EXPECT_FALSE(whitenBlock(a) == whitenBlock(b));
}

TEST(Whitening, BlocksConcatenate)
{
    Bitstream block_a(512);
    Bitstream block_b(512);
    block_b.set(0, true);
    Bitstream combined = whitenBlocks({block_a, block_b});
    ASSERT_EQ(combined.size(), 512u);
    EXPECT_EQ(combined.slice(0, 256), whitenBlock(block_a));
    EXPECT_EQ(combined.slice(256, 256), whitenBlock(block_b));
}

TEST(Whitening, EmptyBlockListYieldsEmptyStream)
{
    EXPECT_EQ(whitenBlocks({}).size(), 0u);
}

} // anonymous namespace
} // namespace quac::postprocess

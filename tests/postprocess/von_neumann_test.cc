/**
 * @file
 * Tests for the Von Neumann corrector.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "postprocess/von_neumann.hh"

namespace quac::postprocess
{
namespace
{

TEST(VonNeumann, PaperExample)
{
    // Paper Section 6.2: "0010" becomes "0" (pair 00 dropped, pair
    // 10 emits logic-0).
    EXPECT_EQ(vonNeumann(Bitstream::fromString("0010")).toString(), "0");
}

TEST(VonNeumann, TransitionMapping)
{
    EXPECT_EQ(vonNeumann(Bitstream::fromString("01")).toString(), "1");
    EXPECT_EQ(vonNeumann(Bitstream::fromString("10")).toString(), "0");
    EXPECT_EQ(vonNeumann(Bitstream::fromString("00")).size(), 0u);
    EXPECT_EQ(vonNeumann(Bitstream::fromString("11")).size(), 0u);
}

TEST(VonNeumann, OddTailBitIgnored)
{
    EXPECT_EQ(vonNeumann(Bitstream::fromString("011")).toString(), "1");
    EXPECT_EQ(vonNeumann(Bitstream::fromString("0")).size(), 0u);
}

TEST(VonNeumann, EmptyInput)
{
    EXPECT_EQ(vonNeumann(Bitstream()).size(), 0u);
}

TEST(VonNeumann, RemovesBias)
{
    // A heavily biased source must come out balanced.
    Xoshiro256pp rng(42);
    Bitstream biased;
    for (int i = 0; i < 400000; ++i)
        biased.append(rng.bernoulli(0.8));

    Bitstream corrected = vonNeumann(biased);
    ASSERT_GT(corrected.size(), 10000u);
    double ones = static_cast<double>(corrected.popcount()) /
                  static_cast<double>(corrected.size());
    EXPECT_NEAR(ones, 0.5, 0.01);
}

TEST(VonNeumann, YieldMatchesTheory)
{
    // Output/input ratio for iid input is p(1-p).
    Xoshiro256pp rng(7);
    for (double p : {0.2, 0.5, 0.7}) {
        Bitstream input;
        const size_t n = 200000;
        for (size_t i = 0; i < n; ++i)
            input.append(rng.bernoulli(p));
        Bitstream output = vonNeumann(input);
        double yield = static_cast<double>(output.size()) /
                       static_cast<double>(n);
        EXPECT_NEAR(yield, vonNeumannYield(p), 0.01) << "p=" << p;
    }
}

TEST(VonNeumann, YieldHelperEdgeCases)
{
    EXPECT_DOUBLE_EQ(vonNeumannYield(0.5), 0.25);
    EXPECT_DOUBLE_EQ(vonNeumannYield(0.0), 0.0);
    EXPECT_DOUBLE_EQ(vonNeumannYield(1.0), 0.0);
    EXPECT_DOUBLE_EQ(vonNeumannYield(-0.5), 0.0);
}

TEST(VonNeumann, DeterministicOnSameInput)
{
    Xoshiro256pp rng(9);
    Bitstream input;
    for (int i = 0; i < 1000; ++i)
        input.append(rng.bernoulli(0.5));
    EXPECT_EQ(vonNeumann(input), vonNeumann(input));
}

} // anonymous namespace
} // namespace quac::postprocess

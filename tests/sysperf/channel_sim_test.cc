/**
 * @file
 * Tests for the channel occupancy simulation and QUAC injection.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hh"
#include "sysperf/channel_sim.hh"

namespace quac::sysperf
{
namespace
{

TEST(Workloads, TwentyThreeSpecWorkloads)
{
    const auto &profiles = spec2006Profiles();
    EXPECT_EQ(profiles.size(), 23u);
    for (const auto &profile : profiles) {
        EXPECT_GT(profile.busUtilization, 0.0) << profile.name;
        EXPECT_LT(profile.busUtilization, 1.0) << profile.name;
        EXPECT_GT(profile.burstNs, 0.0) << profile.name;
    }
}

TEST(Workloads, IntensityClassesCorrect)
{
    auto find = [](const char *name) {
        for (const auto &profile : spec2006Profiles()) {
            if (profile.name == name)
                return profile;
        }
        return WorkloadProfile{};
    };
    // Memory-bound workloads demand far more bandwidth than
    // compute-bound ones.
    EXPECT_GT(find("lbm").busUtilization, 0.5);
    EXPECT_GT(find("mcf").busUtilization, 0.4);
    EXPECT_LT(find("namd").busUtilization, 0.1);
    EXPECT_LT(find("sjeng").busUtilization, 0.1);
}

TEST(ChannelActivity, IdleFractionTracksUtilization)
{
    WorkloadProfile profile{"synthetic", 0.40, 100.0};
    ChannelActivity activity =
        ChannelActivity::generate(profile, 4.0e6, 7);
    EXPECT_NEAR(activity.idleFraction(), 0.60, 0.08);
}

TEST(ChannelActivity, IntervalsAreDisjointAndOrdered)
{
    WorkloadProfile profile{"synthetic", 0.30, 80.0};
    ChannelActivity activity =
        ChannelActivity::generate(profile, 1.0e6, 3);
    double cursor = -1.0;
    for (const auto &[start, end] : activity.busyIntervals()) {
        EXPECT_LT(start, end);
        EXPECT_GT(start, cursor);
        cursor = end;
        EXPECT_LE(end, activity.windowNs() + 1e-9);
    }
}

TEST(ChannelActivity, IdleComplementsBusy)
{
    WorkloadProfile profile{"synthetic", 0.50, 60.0};
    ChannelActivity activity =
        ChannelActivity::generate(profile, 5.0e5, 11);
    double busy = 0.0;
    for (const auto &[s, e] : activity.busyIntervals())
        busy += e - s;
    double idle = 0.0;
    for (const auto &[s, e] : activity.idleIntervals())
        idle += e - s;
    EXPECT_NEAR(busy + idle, activity.windowNs(), 1e-6);
}

TEST(ChannelActivity, ZeroUtilizationIsAllIdle)
{
    WorkloadProfile profile{"idle", 0.0, 100.0};
    ChannelActivity activity =
        ChannelActivity::generate(profile, 1.0e5, 1);
    EXPECT_DOUBLE_EQ(activity.idleFraction(), 1.0);
    ASSERT_EQ(activity.idleIntervals().size(), 1u);
}

TEST(Injection, UsesWholeIdleWindowWhenFree)
{
    WorkloadProfile profile{"idle", 0.0, 100.0};
    ChannelActivity activity =
        ChannelActivity::generate(profile, 1.0e5, 1);
    InjectionResult result = injectQuac(activity, 500.0, 1792.0, 20.0);
    // (100000 - 20) / 500 fractional iterations of progress.
    EXPECT_NEAR(result.iterations, (1.0e5 - 20.0) / 500.0, 1e-9);
    EXPECT_NEAR(result.bits, result.iterations * 1792.0, 1e-6);
    EXPECT_GT(result.idleUsedFraction, 0.99);
}

TEST(Injection, ReentryOverheadWastesFragmentedIdleTime)
{
    WorkloadProfile profile{"busy", 0.8, 30.0};
    ChannelActivity activity =
        ChannelActivity::generate(profile, 1.0e6, 9);
    InjectionResult cheap = injectQuac(activity, 500.0, 1792.0, 2.0);
    InjectionResult costly =
        injectQuac(activity, 500.0, 1792.0, 100.0);
    EXPECT_GT(cheap.bits, 1.5 * costly.bits);
    EXPECT_LT(costly.idleUsedFraction, cheap.idleUsedFraction);
}

TEST(Injection, MoreTrafficLessThroughput)
{
    WorkloadProfile light{"light", 0.05, 80.0};
    WorkloadProfile heavy{"heavy", 0.60, 80.0};
    auto act_l = ChannelActivity::generate(light, 2.0e6, 5);
    auto act_h = ChannelActivity::generate(heavy, 2.0e6, 5);
    double thr_l = injectQuac(act_l, 488.0, 1792.0)
                       .throughputGbps(2.0e6);
    double thr_h = injectQuac(act_h, 488.0, 1792.0)
                       .throughputGbps(2.0e6);
    EXPECT_GT(thr_l, 2.0 * thr_h);
}

TEST(Injection, RejectsBadParameters)
{
    WorkloadProfile profile{"x", 0.1, 50.0};
    auto activity = ChannelActivity::generate(profile, 1.0e5, 2);
    EXPECT_THROW(injectQuac(activity, 0.0, 100.0), PanicError);
    EXPECT_THROW(injectQuac(activity, 100.0, 0.0), PanicError);
}

TEST(RefillGrantTest, FcfsMatchesInjectQuacIdleBudget)
{
    WorkloadProfile profile{"busy", 0.5, 100.0};
    auto activity = ChannelActivity::generate(profile, 1.0e6, 13);

    // With iteration_ns = 1 and 1 bit per iteration, injectQuac's
    // iteration count IS the usable idle time in ns; FCFS grants
    // must draw from exactly that budget.
    InjectionResult inject = injectQuac(activity, 1.0, 1.0, 20.0);
    RefillGrant grant = grantRefill(activity, 1.0e9,
                                    FairnessPolicy::Fcfs, 0.0, 20.0);
    EXPECT_NEAR(grant.usableIdleNs, inject.iterations, 1e-6);
    EXPECT_NEAR(grant.grantedNs, grant.usableIdleNs, 1e-6);
    EXPECT_EQ(grant.stolenBusyNs, 0.0);
    EXPECT_EQ(grant.memSlowdown, 0.0);

    // A small need is granted in full from idle time.
    RefillGrant small = grantRefill(activity, 500.0,
                                    FairnessPolicy::Fcfs, 0.0, 20.0);
    EXPECT_NEAR(small.grantedNs, 500.0, 1e-9);
}

TEST(RefillGrantTest, PriorityStealsExactlyTheOverlappedBusyTime)
{
    WorkloadProfile profile{"busy", 0.5, 100.0};
    auto activity = ChannelActivity::generate(profile, 1.0e6, 13);

    double needed = 3.0e5;
    RefillGrant grant = grantRefill(
        activity, needed, FairnessPolicy::RngPriority, 0.0, 20.0);
    EXPECT_NEAR(grant.grantedNs, needed, 1e-9)
        << "priority refill is never starved below the window";
    EXPECT_GT(grant.stolenBusyNs, 0.0);
    EXPECT_LE(grant.stolenBusyNs, needed);
    EXPECT_GT(grant.memSlowdown, 0.0);
    EXPECT_LE(grant.memSlowdown, 1.0);

    // Stealing grows monotonically with the prioritized need.
    RefillGrant more = grantRefill(
        activity, 2.0 * needed, FairnessPolicy::RngPriority, 0.0, 20.0);
    EXPECT_GE(more.stolenBusyNs, grant.stolenBusyNs);
}

TEST(RefillGrantTest, BufferedFairSitsBetweenFcfsAndPriority)
{
    WorkloadProfile profile{"busy", 0.6, 120.0};
    auto activity = ChannelActivity::generate(profile, 1.0e6, 29);

    double needed = 8.0e5;
    double urgent = 1.0e5;
    RefillGrant fcfs = grantRefill(activity, needed,
                                   FairnessPolicy::Fcfs, urgent, 20.0);
    RefillGrant fair = grantRefill(
        activity, needed, FairnessPolicy::BufferedFair, urgent, 20.0);
    RefillGrant prio = grantRefill(
        activity, needed, FairnessPolicy::RngPriority, urgent, 20.0);

    EXPECT_GE(fair.grantedNs, fcfs.grantedNs - 1e-6);
    EXPECT_LE(fair.grantedNs, prio.grantedNs + 1e-6);
    EXPECT_GE(fair.stolenBusyNs, 0.0);
    EXPECT_LE(fair.stolenBusyNs, prio.stolenBusyNs + 1e-6);
    // Only the urgent part runs at demand expense.
    EXPECT_LE(fair.stolenBusyNs, urgent + 1e-6);
    EXPECT_EQ(fcfs.stolenBusyNs, 0.0);
}

TEST(RefillGrantTest, ZeroNeedGrantsNothing)
{
    WorkloadProfile profile{"busy", 0.3, 80.0};
    auto activity = ChannelActivity::generate(profile, 1.0e5, 3);
    for (auto policy : {FairnessPolicy::Fcfs,
                        FairnessPolicy::RngPriority,
                        FairnessPolicy::BufferedFair}) {
        RefillGrant grant = grantRefill(activity, 0.0, policy);
        EXPECT_EQ(grant.grantedNs, 0.0) << fairnessPolicyName(policy);
        EXPECT_EQ(grant.stolenBusyNs, 0.0);
    }
}

TEST(RefillGrantTest, PolicyNames)
{
    EXPECT_STREQ(fairnessPolicyName(FairnessPolicy::Fcfs), "fcfs");
    EXPECT_STREQ(fairnessPolicyName(FairnessPolicy::RngPriority),
                 "rng-priority");
    EXPECT_STREQ(fairnessPolicyName(FairnessPolicy::BufferedFair),
                 "buffered-fair");
}

TEST(SystemStudy, Figure12Shape)
{
    // Per-channel iteration of ~1954 ns producing 1792 bits
    // (7 SIB x 256 x 4 banks / 4... one channel runs 4 banks; the
    // study multiplies by 4 channels).
    auto results = runSystemStudy(1954.0, 7168.0, 4, 2.0e6, 42);
    ASSERT_EQ(results.size(), 23u);

    double sum = 0.0;
    double min_thr = 1e18;
    double max_thr = 0.0;
    double lbm = 0.0;
    double namd = 0.0;
    for (const auto &result : results) {
        sum += result.throughputGbps;
        min_thr = std::min(min_thr, result.throughputGbps);
        max_thr = std::max(max_thr, result.throughputGbps);
        if (result.name == "lbm")
            lbm = result.throughputGbps;
        if (result.name == "namd")
            namd = result.throughputGbps;
    }
    double avg = sum / results.size();

    // Paper Fig 12: average 10.2 Gb/s, min 3.22, max 14.3 across
    // the same workloads on 4 channels.
    EXPECT_GT(avg, 7.0);
    EXPECT_LT(avg, 14.0);
    EXPECT_GT(min_thr, 1.0);
    EXPECT_LT(min_thr, 7.0);
    EXPECT_GT(max_thr, 11.0);
    EXPECT_LT(max_thr, 15.0);
    EXPECT_GT(namd, lbm) << "compute-bound beats memory-bound";
}

// ------------------------------------------- multi-channel system

TEST(SystemActivity, PerChannelProfilesAreHonored)
{
    std::vector<WorkloadProfile> mix = {{"heavy", 0.60, 120.0},
                                        {"light", 0.05, 60.0},
                                        {"idle", 0.0, 60.0}};
    SystemActivity system = SystemActivity::generate(mix, 4.0e6, 3);
    ASSERT_EQ(system.channels(), 3u);
    EXPECT_NEAR(system.channel(0).idleFraction(), 0.40, 0.08);
    EXPECT_NEAR(system.channel(1).idleFraction(), 0.95, 0.04);
    EXPECT_DOUBLE_EQ(system.channel(2).idleFraction(), 1.0);
    EXPECT_EQ(system.profile(0).name, "heavy");
    EXPECT_EQ(system.profile(2).name, "idle");
    EXPECT_THROW(system.channel(3), PanicError);
}

TEST(SystemActivity, ChannelsAreIndependentStreams)
{
    // Same profile on every channel must still yield distinct
    // timelines (independent seeds), and the same seed must replay.
    std::vector<WorkloadProfile> mix(4, {"clone", 0.30, 80.0});
    SystemActivity a = SystemActivity::generate(mix, 1.0e6, 17);
    SystemActivity b = SystemActivity::generate(mix, 1.0e6, 17);
    EXPECT_NE(a.channel(0).busyIntervals(),
              a.channel(1).busyIntervals());
    for (size_t c = 0; c < 4; ++c) {
        EXPECT_EQ(a.channel(c).busyIntervals(),
                  b.channel(c).busyIntervals()) << c;
    }
}

TEST(SystemInjectionTest, AggregatesPerChannelInjections)
{
    std::vector<WorkloadProfile> mix = {{"heavy", 0.60, 120.0},
                                        {"light", 0.05, 60.0}};
    SystemActivity system = SystemActivity::generate(mix, 2.0e6, 7);
    SystemInjection injection = injectQuac(system, 488.0, 1792.0);
    ASSERT_EQ(injection.perChannel.size(), 2u);

    double expected_bits = 0.0;
    for (size_t c = 0; c < 2; ++c) {
        InjectionResult alone =
            injectQuac(system.channel(c), 488.0, 1792.0);
        EXPECT_DOUBLE_EQ(injection.perChannel[c].bits, alone.bits);
        expected_bits += alone.bits;
    }
    EXPECT_DOUBLE_EQ(injection.bits(), expected_bits);
    EXPECT_GT(injection.perChannel[1].bits,
              injection.perChannel[0].bits)
        << "the light channel contributes more TRNG bits";
}

TEST(CorunnerMix, PrimaryFirstThenDistinctCorunners)
{
    const WorkloadProfile &lbm = spec2006Profiles()[17];
    ASSERT_EQ(lbm.name, "lbm");
    std::vector<WorkloadProfile> mix = corunnerMix(lbm, 4);
    ASSERT_EQ(mix.size(), 4u);
    EXPECT_EQ(mix[0].name, "lbm");
    for (size_t c = 1; c < 4; ++c)
        EXPECT_NE(mix[c].name, "lbm") << c;
    EXPECT_NE(mix[1].name, mix[2].name);
    EXPECT_NE(mix[2].name, mix[3].name);
    // Deterministic assignment.
    std::vector<WorkloadProfile> again = corunnerMix(lbm, 4);
    for (size_t c = 0; c < 4; ++c)
        EXPECT_EQ(mix[c].name, again[c].name);
}

TEST(Fig12Point, UsesRealPerChannelInjection)
{
    std::vector<WorkloadProfile> mix = {{"heavy", 0.60, 120.0},
                                        {"light", 0.05, 60.0}};
    WorkloadTrngResult result =
        fig12Point(mix, 488.0, 1792.0, 2.0e6, 11);
    EXPECT_EQ(result.name, "heavy");
    ASSERT_EQ(result.perChannelGbps.size(), 2u);
    ASSERT_EQ(result.channelWorkloads.size(), 2u);
    EXPECT_EQ(result.channelWorkloads[1], "light");
    EXPECT_NEAR(result.throughputGbps,
                result.perChannelGbps[0] + result.perChannelGbps[1],
                1e-9);
    EXPECT_GT(result.perChannelGbps[1], result.perChannelGbps[0]);
}

TEST(Fig12Point, HomogeneousStudyUnchangedByRefactor)
{
    // The cloned-profile sweep must agree with summing independent
    // per-channel injections of the same profile (the pre-refactor
    // behaviour, seed mixing included).
    auto results = runSystemStudy(488.0, 1792.0, 4, 1.0e6, 42, false);
    ASSERT_EQ(results.size(), spec2006Profiles().size());
    const WorkloadProfile &bzip2 = spec2006Profiles()[0];
    ASSERT_EQ(results[0].name, bzip2.name);
    std::vector<WorkloadProfile> clones(4, bzip2);
    WorkloadTrngResult direct =
        fig12Point(clones, 488.0, 1792.0, 1.0e6, 42);
    EXPECT_DOUBLE_EQ(results[0].throughputGbps, direct.throughputGbps);
}

TEST(Fig12Point, HeterogeneousSweepFlattensSpread)
{
    auto cloned = runSystemStudy(488.0, 1792.0, 4, 1.0e6, 42, false);
    auto mixed = runSystemStudy(488.0, 1792.0, 4, 1.0e6, 42, true);
    ASSERT_EQ(cloned.size(), mixed.size());

    auto spread = [](const std::vector<WorkloadTrngResult> &results) {
        double lo = 1e18;
        double hi = 0.0;
        for (const auto &result : results) {
            lo = std::min(lo, result.throughputGbps);
            hi = std::max(hi, result.throughputGbps);
        }
        return hi - lo;
    };
    // Mixing co-runners onto each row pulls the extremes toward the
    // population mean: the min row gains idle channels, the max row
    // loses some.
    EXPECT_LT(spread(mixed), spread(cloned));
    for (const auto &result : mixed)
        EXPECT_EQ(result.channelWorkloads.size(), 4u);
}

} // anonymous namespace
} // namespace quac::sysperf

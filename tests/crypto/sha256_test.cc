/**
 * @file
 * SHA-256 known-answer tests (FIPS 180-2 and NIST CAVP vectors).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/sha256.hh"

namespace quac
{
namespace
{

std::string
hashHex(const std::string &message)
{
    Sha256 hasher;
    hasher.update(message);
    return Sha256::hex(hasher.finish());
}

TEST(Sha256, EmptyMessage)
{
    EXPECT_EQ(hashHex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(hashHex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(hashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                      "mnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 hasher;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        hasher.update(chunk);
    EXPECT_EQ(Sha256::hex(hasher.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha256, ExactBlockBoundary)
{
    // 64 bytes: padding spills into a second block.
    std::string message(64, 'x');
    Sha256 one_shot;
    one_shot.update(message);
    std::string direct = Sha256::hex(one_shot.finish());

    Sha256 split;
    split.update(message.substr(0, 31));
    split.update(message.substr(31));
    EXPECT_EQ(Sha256::hex(split.finish()), direct);
}

TEST(Sha256, FiftyFiveAndFiftySixBytes)
{
    // 55 bytes is the longest message whose padding fits one block.
    std::string m55(55, 'y');
    std::string m56(56, 'y');
    EXPECT_NE(hashHex(m55), hashHex(m56));
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    std::vector<uint8_t> data;
    for (int i = 0; i < 1000; ++i)
        data.push_back(static_cast<uint8_t>(i * 37));

    Sha256::Digest one_shot = Sha256::hash(data);

    Sha256 incremental;
    for (size_t offset = 0; offset < data.size(); offset += 7) {
        size_t len = std::min<size_t>(7, data.size() - offset);
        incremental.update(data.data() + offset, len);
    }
    EXPECT_EQ(incremental.finish(), one_shot);
}

TEST(Sha256, FinishResetsState)
{
    Sha256 hasher;
    hasher.update("abc");
    auto first = hasher.finish();
    hasher.update("abc");
    auto second = hasher.finish();
    EXPECT_EQ(first, second);
}

TEST(Sha256, AvalancheOnSingleBitFlip)
{
    std::vector<uint8_t> a(32, 0);
    std::vector<uint8_t> b = a;
    b[0] ^= 1;
    auto da = Sha256::hash(a);
    auto db = Sha256::hash(b);
    int differing_bits = 0;
    for (size_t i = 0; i < da.size(); ++i) {
        uint8_t x = da[i] ^ db[i];
        while (x) {
            differing_bits += x & 1;
            x >>= 1;
        }
    }
    // Expect roughly half of 256 bits to flip.
    EXPECT_GT(differing_bits, 80);
    EXPECT_LT(differing_bits, 176);
}

TEST(Sha256, HexFormatting)
{
    Sha256::Digest digest{};
    digest[0] = 0xab;
    digest[31] = 0x01;
    std::string hex = Sha256::hex(digest);
    EXPECT_EQ(hex.size(), 64u);
    EXPECT_EQ(hex.substr(0, 2), "ab");
    EXPECT_EQ(hex.substr(62, 2), "01");
}

/** Restores the SHA-NI toggle even when an assertion fails. */
struct HwGuard
{
    bool previous;
    explicit HwGuard(bool enabled)
        : previous(Sha256::setHwEnabled(enabled))
    {
    }
    ~HwGuard() { Sha256::setHwEnabled(previous); }
};

TEST(Sha256, ScalarAndShaNiPathsAreBitIdentical)
{
    if (!Sha256::hwAvailable())
        GTEST_SKIP() << "no SHA-NI on this host/build";

    // Every length mod 64 around the block and padding boundaries,
    // plus multi-block sizes, under both compression paths.
    std::vector<size_t> lengths = {0, 1, 31, 55, 56, 63, 64,
                                   65, 119, 127, 128, 1000, 8192};
    for (size_t len : lengths) {
        std::vector<uint8_t> data(len);
        for (size_t i = 0; i < len; ++i)
            data[i] = static_cast<uint8_t>(i * 131 + 7);

        Sha256::Digest scalar;
        Sha256::Digest hw;
        {
            HwGuard guard(false);
            scalar = Sha256::hash(data);
        }
        {
            HwGuard guard(true);
            hw = Sha256::hash(data);
        }
        EXPECT_EQ(Sha256::hex(scalar), Sha256::hex(hw))
            << "length " << len;
    }
}

TEST(Sha256, ShaNiIncrementalMatchesOneShot)
{
    if (!Sha256::hwAvailable())
        GTEST_SKIP() << "no SHA-NI on this host/build";
    HwGuard guard(true);

    std::vector<uint8_t> data(777);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i);
    Sha256 hasher;
    hasher.update(data.data(), 100);
    hasher.update(data.data() + 100, 1);
    hasher.update(data.data() + 101, 676);
    EXPECT_EQ(Sha256::hex(hasher.finish()),
              Sha256::hex(Sha256::hash(data)));
}

TEST(Sha256, InterleavedBatchMatchesScalarHashes)
{
    // Force the four-lane schedule (SHA-NI off) over a length mix
    // that exercises lockstep data blocks, materialized padding
    // blocks (incl. the 55/56-byte boundary), and the scalar tails
    // of uneven lanes -- plus equal-length lanes, the TRNG's shape,
    // where even the padding block runs interleaved.
    HwGuard guard(false);
    std::vector<size_t> lens = {0,   1,   55,  56,   63,   64,  65,
                                120, 128, 512, 8192, 8192, 8192};
    std::vector<std::vector<uint8_t>> msgs;
    for (size_t i = 0; i < lens.size(); ++i) {
        std::vector<uint8_t> msg(lens[i]);
        for (size_t k = 0; k < msg.size(); ++k)
            msg[k] = static_cast<uint8_t>(31 * i + k);
        msgs.push_back(std::move(msg));
    }
    std::vector<Sha256::Job> jobs;
    for (const std::vector<uint8_t> &msg : msgs)
        jobs.push_back({msg.data(), msg.size()});
    std::vector<Sha256::Digest> batch(jobs.size());
    Sha256::hashBatch(jobs.data(), jobs.size(), batch.data());
    for (size_t i = 0; i < msgs.size(); ++i) {
        EXPECT_EQ(Sha256::hex(batch[i]),
                  Sha256::hex(Sha256::hash(msgs[i])))
            << "lane " << i << " length " << lens[i];
    }
}

TEST(Sha256, InterleavedBatchMatchesHardwarePath)
{
    if (!Sha256::hwAvailable())
        GTEST_SKIP() << "no SHA-NI on this host/build";
    std::vector<uint8_t> data(4 * 512);
    for (size_t k = 0; k < data.size(); ++k)
        data[k] = static_cast<uint8_t>(k * 7);
    std::vector<Sha256::Job> jobs;
    for (int l = 0; l < 4; ++l)
        jobs.push_back({data.data() + l * 512, 512});

    std::vector<Sha256::Digest> scalar(4), hw(4);
    {
        HwGuard guard(false);
        Sha256::hashBatch(jobs.data(), jobs.size(), scalar.data());
    }
    {
        HwGuard guard(true);
        Sha256::hashBatch(jobs.data(), jobs.size(), hw.data());
    }
    for (int l = 0; l < 4; ++l)
        EXPECT_EQ(Sha256::hex(scalar[l]), Sha256::hex(hw[l]));
}

TEST(Sha256, HwToggleRoundTrips)
{
    bool initial = Sha256::hwEnabled();
    {
        HwGuard guard(false);
        EXPECT_FALSE(Sha256::hwEnabled());
    }
    EXPECT_EQ(Sha256::hwEnabled(), initial);
    EXPECT_EQ(Sha256::hwEnabled(),
              Sha256::hwAvailable() && initial);
}

} // anonymous namespace
} // namespace quac

/**
 * @file
 * Tests for the per-sense-amplifier stream sampler.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hh"
#include "core/sa_stream.hh"
#include "nist/sts.hh"
#include "postprocess/von_neumann.hh"

namespace quac::core
{
namespace
{

dram::ModuleSpec
testSpec()
{
    dram::ModuleSpec spec;
    spec.geometry = dram::Geometry::testScale();
    spec.seed = 777;
    return spec;
}

class SaStreamTest : public ::testing::Test
{
  protected:
    SaStreamTest() : module(testSpec()),
                     sampler(module, 0, 3, 0b1110, 99) {}

    dram::DramModule module;
    SaStreamSampler sampler;
};

TEST_F(SaStreamTest, ProbabilitiesInRange)
{
    for (uint32_t b = 0; b < module.geometry().bitlinesPerRow; ++b) {
        double p = sampler.probability(b);
        ASSERT_GE(p, 0.0);
        ASSERT_LE(p, 1.0);
    }
}

TEST_F(SaStreamTest, TopMetastableSortedByDistanceToHalf)
{
    auto top = sampler.topMetastableBitlines(16);
    ASSERT_EQ(top.size(), 16u);
    double prev = 0.0;
    for (uint32_t bitline : top) {
        double dist = std::fabs(sampler.probability(bitline) - 0.5);
        EXPECT_GE(dist, prev - 1e-12);
        prev = dist;
    }
    // The best one should be genuinely metastable.
    EXPECT_LT(std::fabs(sampler.probability(top[0]) - 0.5), 0.2);
}

TEST_F(SaStreamTest, SampleFrequencyMatchesProbability)
{
    auto top = sampler.topMetastableBitlines(1);
    uint32_t bitline = top[0];
    double p = sampler.probability(bitline);
    Bitstream bits = sampler.sample(bitline, 20000);
    double freq = static_cast<double>(bits.popcount()) / bits.size();
    EXPECT_NEAR(freq, p, 0.02);
}

TEST_F(SaStreamTest, VncCorrectedStreamPassesBasicTests)
{
    // Mirror the paper's Section 6.2 experiment at reduced scale:
    // raw per-SA streams are biased; after the Von Neumann corrector
    // they pass frequency-family NIST tests.
    auto top = sampler.topMetastableBitlines(8);
    Bitstream vnc_stream;
    for (uint32_t bitline : top) {
        Bitstream raw = sampler.sample(bitline, 120000);
        vnc_stream.append(postprocess::vonNeumann(raw));
    }
    ASSERT_GT(vnc_stream.size(), 100000u);
    EXPECT_TRUE(nist::monobit(vnc_stream).passed());
    EXPECT_TRUE(nist::runs(vnc_stream).passed());
    EXPECT_TRUE(nist::frequencyWithinBlock(vnc_stream).passed());
}

TEST_F(SaStreamTest, InterleavedStreamLength)
{
    auto top = sampler.topMetastableBitlines(3);
    Bitstream bits = sampler.sampleInterleaved(top, 1000);
    EXPECT_EQ(bits.size(), 1000u);
}

TEST_F(SaStreamTest, InterleavedRejectsEmpty)
{
    EXPECT_THROW(sampler.sampleInterleaved({}, 10), quac::PanicError);
}

TEST_F(SaStreamTest, OutOfRangeBitlinePanics)
{
    EXPECT_THROW(
        sampler.probability(module.geometry().bitlinesPerRow),
        quac::PanicError);
}

} // anonymous namespace
} // namespace quac::core

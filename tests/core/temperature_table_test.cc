/**
 * @file
 * Tests for the per-temperature column-set table (paper Section 8).
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "core/temperature_table.hh"
#include "dram/segment_model.hh"

namespace quac::core
{
namespace
{

class TemperatureTableTest : public ::testing::Test
{
  protected:
    TemperatureTableTest() : module(spec()) {}

    static dram::ModuleSpec
    spec()
    {
        dram::ModuleSpec s;
        s.geometry = dram::Geometry::testScale();
        s.seed = 808;
        return s;
    }

    TemperatureTable
    build(unsigned bands = 10)
    {
        // Reduced geometry: scale the per-block entropy target.
        return TemperatureTable::build(module, 0, 3, 0b1110, 24.0,
                                       30.0, 90.0, bands);
    }

    dram::DramModule module;
};

TEST_F(TemperatureTableTest, BuildsRequestedBands)
{
    TemperatureTable table = build();
    EXPECT_EQ(table.bandCount(), 10u);
    // Bands tile [30, 90) without gaps.
    double cursor = 30.0;
    for (const auto &band : table.bands()) {
        EXPECT_DOUBLE_EQ(band.minC, cursor);
        EXPECT_GT(band.maxC, band.minC);
        cursor = band.maxC;
    }
    EXPECT_DOUBLE_EQ(cursor, 90.0);
}

TEST_F(TemperatureTableTest, LookupSelectsCoveringBand)
{
    TemperatureTable table = build();
    const TemperatureBand &band = table.lookup(52.0);
    EXPECT_LE(band.minC, 52.0);
    EXPECT_GT(band.maxC, 52.0);
    // Clamping at the edges.
    EXPECT_DOUBLE_EQ(table.lookup(10.0).minC, 30.0);
    EXPECT_DOUBLE_EQ(table.lookup(150.0).maxC, 90.0);
}

TEST_F(TemperatureTableTest, RangesCarryTargetEntropyAcrossBand)
{
    // Every stored range must still deliver the target entropy when
    // re-evaluated at both edges of its band (the guarantee the
    // memory controller relies on).
    TemperatureTable table = build(6);
    for (const auto &band : table.bands()) {
        for (double temp : {band.minC, band.maxC}) {
            dram::SegmentModel model(
                module.geometry(), module.calibration(),
                module.variation(), 0, 3, temp, 0.0);
            auto blocks = model.cacheBlockEntropies(0b1110);
            for (const auto &range : band.ranges) {
                double entropy = 0.0;
                for (uint32_t col = range.beginColumn;
                     col < range.endColumn; ++col) {
                    entropy += blocks[col];
                }
                // The per-column minimum envelope makes this a hard
                // guarantee at both band edges.
                EXPECT_GE(entropy, 24.0 - 1e-9)
                    << "band [" << band.minC << "," << band.maxC
                    << ") at " << temp;
            }
        }
    }
}

TEST_F(TemperatureTableTest, HotAndColdSetsCanDiffer)
{
    TemperatureTable table = build();
    const auto &cold = table.lookup(32.0);
    const auto &hot = table.lookup(88.0);
    // Entropy moves with temperature, so the characterization points
    // differ; the sets may coincide on small geometries but the
    // entropies must not.
    EXPECT_NE(cold.segmentEntropy, hot.segmentEntropy);
}

TEST_F(TemperatureTableTest, StorageMatchesSection9Budget)
{
    TemperatureTable table = build();
    // Paper Section 9: <= 11 column addresses x 10 ranges x 7 bits.
    EXPECT_GT(table.storageBits(), 0u);
    EXPECT_LE(table.storageBits(), 11u * 10u * 7u);
}

TEST_F(TemperatureTableTest, RejectsBadParameters)
{
    EXPECT_THROW(TemperatureTable::build(module, 0, 3, 0b1110, 24.0,
                                         90.0, 30.0, 10),
                 PanicError);
    TemperatureTable empty;
    EXPECT_THROW(empty.lookup(50.0), PanicError);
}

} // anonymous namespace
} // namespace quac::core

/**
 * @file
 * Tests for the deterministic fault-injection layer: spec parsing
 * (happy paths and fatal rejection of nonsense), fault-window
 * addressing, the three failure modes' behaviour, replay
 * determinism, and the SoftwareTrng stand-in backend.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"
#include "core/fault_injection.hh"

namespace quac::core
{
namespace
{

std::vector<uint8_t>
drain(Trng &trng, size_t total, size_t chunk)
{
    std::vector<uint8_t> out(total);
    size_t at = 0;
    while (at < total) {
        size_t n = std::min(chunk, total - at);
        trng.fill(out.data() + at, n);
        at += n;
    }
    return out;
}

// ------------------------------------------------------- parsing

TEST(FaultSpecParse, AcceptsAllModes)
{
    FaultSpec stuck = FaultSpec::parse("2:stuck:100:50:171");
    EXPECT_EQ(stuck.bank, 2u);
    EXPECT_EQ(stuck.mode, FaultMode::StuckAt);
    EXPECT_EQ(stuck.startByte, 100u);
    EXPECT_EQ(stuck.lengthBytes, 50u);
    EXPECT_EQ(stuck.stuckValue, 171);

    FaultSpec bias = FaultSpec::parse("0:bias:0:0:0.75");
    EXPECT_EQ(bias.mode, FaultMode::BiasedBits);
    EXPECT_EQ(bias.lengthBytes, 0u); // permanent
    EXPECT_DOUBLE_EQ(bias.biasP, 0.75);

    FaultSpec fail = FaultSpec::parse("1:fail:4096:1024");
    EXPECT_EQ(fail.mode, FaultMode::ReadFailure);
    EXPECT_EQ(fail.startByte, 4096u);

    // Defaults when the optional param is omitted.
    EXPECT_EQ(FaultSpec::parse("0:stuck:0:1").stuckValue, 0x00);
    EXPECT_DOUBLE_EQ(FaultSpec::parse("0:bias:0:1").biasP, 0.9);
}

TEST(FaultSpecParse, RoundTripsThroughDescribe)
{
    for (const char *text :
         {"2:stuck:100:50:171", "0:bias:0:4096:0.75",
          "1:fail:4096:1024"}) {
        FaultSpec spec = FaultSpec::parse(text);
        FaultSpec again = FaultSpec::parse(spec.describe());
        EXPECT_EQ(again.bank, spec.bank);
        EXPECT_EQ(again.mode, spec.mode);
        EXPECT_EQ(again.startByte, spec.startByte);
        EXPECT_EQ(again.lengthBytes, spec.lengthBytes);
    }
}

TEST(FaultSpecParse, RejectsNonsense)
{
    // Too few / too many fields.
    EXPECT_THROW(FaultSpec::parse(""), FatalError);
    EXPECT_THROW(FaultSpec::parse("1:stuck:0"), FatalError);
    EXPECT_THROW(FaultSpec::parse("1:stuck:0:0:1:2"), FatalError);
    // Unknown mode.
    EXPECT_THROW(FaultSpec::parse("1:flaky:0:0"), FatalError);
    // Non-numeric numbers.
    EXPECT_THROW(FaultSpec::parse("x:stuck:0:0"), FatalError);
    EXPECT_THROW(FaultSpec::parse("1:stuck:ten:0"), FatalError);
    EXPECT_THROW(FaultSpec::parse("1:stuck:0:0x10"), FatalError);
    // Out-of-range params.
    EXPECT_THROW(FaultSpec::parse("1:stuck:0:0:256"), FatalError);
    EXPECT_THROW(FaultSpec::parse("1:bias:0:0:0"), FatalError);
    EXPECT_THROW(FaultSpec::parse("1:bias:0:0:1"), FatalError);
    EXPECT_THROW(FaultSpec::parse("1:bias:0:0:1.5"), FatalError);
    // fail takes no param.
    EXPECT_THROW(FaultSpec::parse("1:fail:0:0:3"), FatalError);
}

TEST(FaultSpec, CoversAddressesTheWindow)
{
    FaultSpec spec = FaultSpec::parse("0:stuck:100:50");
    EXPECT_FALSE(spec.covers(99));
    EXPECT_TRUE(spec.covers(100));
    EXPECT_TRUE(spec.covers(149));
    EXPECT_FALSE(spec.covers(150));

    FaultSpec forever = FaultSpec::parse("0:stuck:100:0");
    EXPECT_FALSE(forever.covers(99));
    EXPECT_TRUE(forever.covers(1u << 30));
}

// ------------------------------------------------- failure modes

TEST(FaultInjection, StuckAtReplacesOnlyTheWindow)
{
    SoftwareTrng clean(5);
    SoftwareTrng wrapped_inner(5);
    FaultSpec spec = FaultSpec::parse("0:stuck:100:50:171");
    FaultInjectedTrng faulty(wrapped_inner, spec);

    std::vector<uint8_t> reference = drain(clean, 300, 300);
    std::vector<uint8_t> observed = drain(faulty, 300, 7);

    // Healthy prefix matches the clean stream byte for byte.
    EXPECT_TRUE(std::equal(observed.begin(), observed.begin() + 100,
                           reference.begin()));
    // The window is the stuck byte.
    for (size_t i = 100; i < 150; ++i)
        EXPECT_EQ(observed[i], 171) << "offset " << i;
    // The inner stream does not advance for replaced bytes: the
    // post-fault stream resumes where the healthy prefix stopped.
    EXPECT_TRUE(std::equal(observed.begin() + 150, observed.end(),
                           reference.begin() + 100));
}

TEST(FaultInjection, BiasedWindowIsBiasedAndDeterministic)
{
    SoftwareTrng inner_a(9);
    SoftwareTrng inner_b(9);
    FaultSpec spec = FaultSpec::parse("0:bias:0:8192:0.9");
    FaultInjectedTrng a(inner_a, spec, 77);
    FaultInjectedTrng b(inner_b, spec, 77);

    std::vector<uint8_t> bytes_a = drain(a, 8192, 1024);
    std::vector<uint8_t> bytes_b = drain(b, 8192, 64);

    // Same spec + seed => same bytes, independent of chunking.
    EXPECT_EQ(bytes_a, bytes_b);

    uint64_t ones = 0;
    for (uint8_t byte : bytes_a)
        ones += static_cast<uint64_t>(__builtin_popcount(byte));
    double fraction =
        static_cast<double>(ones) / (8.0 * bytes_a.size());
    EXPECT_GT(fraction, 0.85);
    EXPECT_LT(fraction, 0.95);
}

TEST(FaultInjection, ReadFailureWindowIsTransient)
{
    SoftwareTrng clean(13);
    SoftwareTrng inner(13);
    // Fault covers bytes [256, 512): fills touching it throw, but
    // the stream position still advances past the attempted span.
    FaultSpec spec = FaultSpec::parse("0:fail:256:256");
    FaultInjectedTrng faulty(inner, spec);

    std::vector<uint8_t> reference = drain(clean, 1024, 1024);
    std::vector<uint8_t> out(256);

    faulty.fill(out.data(), 256); // healthy prefix
    EXPECT_TRUE(std::equal(out.begin(), out.end(),
                           reference.begin()));
    EXPECT_THROW(faulty.fill(out.data(), 256), TransientReadError);
    EXPECT_EQ(faulty.bytesProduced(), 512u);
    // The fault window has passed: fills succeed again and resume
    // the inner stream where the healthy prefix stopped (replaced
    // bytes never consumed it).
    faulty.fill(out.data(), 256);
    EXPECT_TRUE(std::equal(out.begin(), out.end(),
                           reference.begin() + 256));
}

TEST(FaultInjection, PartialFillSpansTheWindowBoundary)
{
    SoftwareTrng inner(21);
    FaultSpec spec = FaultSpec::parse("0:fail:100:50");
    FaultInjectedTrng faulty(inner, spec);
    std::vector<uint8_t> out(200);
    // One fill spanning healthy + faulty: throws, but the healthy
    // prefix was produced and the whole attempt advanced the stream.
    EXPECT_THROW(faulty.fill(out.data(), 200), TransientReadError);
    EXPECT_EQ(faulty.bytesProduced(), 200u);
    faulty.fill(out.data(), 100); // past the window now
}

TEST(FaultInjection, NameAndChunkPassThrough)
{
    SoftwareTrng inner(1, "inner", 512);
    FaultSpec spec = FaultSpec::parse("0:bias:0:0");
    FaultInjectedTrng faulty(inner, spec);
    EXPECT_EQ(faulty.name(), "inner+bias");
    EXPECT_EQ(faulty.preferredChunkBytes(), 512u);
}

// ---------------------------------------------------- SoftwareTrng

TEST(SoftwareTrng, DeterministicPerSeedAndChunking)
{
    SoftwareTrng a(42);
    SoftwareTrng b(42);
    SoftwareTrng c(43);
    std::vector<uint8_t> bytes_a = drain(a, 1000, 1000);
    std::vector<uint8_t> bytes_b = drain(b, 1000, 17);
    std::vector<uint8_t> bytes_c = drain(c, 1000, 1000);
    EXPECT_EQ(bytes_a, bytes_b);
    EXPECT_NE(bytes_a, bytes_c);
}

} // anonymous namespace
} // namespace quac::core

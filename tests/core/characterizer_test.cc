/**
 * @file
 * Tests for the characterization driver and SIB range computation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hh"
#include "core/characterizer.hh"

namespace quac::core
{
namespace
{

dram::ModuleSpec
testSpec(uint64_t seed = 404)
{
    dram::ModuleSpec spec;
    spec.geometry = dram::Geometry::testScale();
    spec.seed = seed;
    return spec;
}

TEST(SibRanges, SimpleAccumulation)
{
    // Entropy 100 per block, target 256: ranges of 3 blocks each.
    std::vector<double> entropy(9, 100.0);
    auto ranges = sibRanges(entropy, 256.0);
    ASSERT_EQ(ranges.size(), 3u);
    EXPECT_EQ(ranges[0].beginColumn, 0u);
    EXPECT_EQ(ranges[0].endColumn, 3u);
    EXPECT_DOUBLE_EQ(ranges[0].entropy, 300.0);
    EXPECT_EQ(ranges[2].endColumn, 9u);
}

TEST(SibRanges, TrailingShortfallDiscarded)
{
    std::vector<double> entropy = {300.0, 100.0};
    auto ranges = sibRanges(entropy, 256.0);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0].endColumn, 1u);
}

TEST(SibRanges, UnevenEntropy)
{
    std::vector<double> entropy = {10.0, 250.0, 5.0, 260.0, 1.0};
    auto ranges = sibRanges(entropy, 256.0);
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(ranges[0].beginColumn, 0u);
    EXPECT_EQ(ranges[0].endColumn, 2u);
    EXPECT_EQ(ranges[1].beginColumn, 2u);
    EXPECT_EQ(ranges[1].endColumn, 4u);
}

TEST(SibRanges, RangesAreDisjointAndOrdered)
{
    std::vector<double> entropy(50);
    for (size_t i = 0; i < entropy.size(); ++i)
        entropy[i] = 20.0 + 15.0 * (i % 7);
    auto ranges = sibRanges(entropy, 256.0);
    ASSERT_GT(ranges.size(), 1u);
    for (size_t i = 0; i < ranges.size(); ++i) {
        EXPECT_LT(ranges[i].beginColumn, ranges[i].endColumn);
        EXPECT_GE(ranges[i].entropy, 256.0);
        if (i > 0) {
            EXPECT_EQ(ranges[i].beginColumn, ranges[i - 1].endColumn);
        }
    }
}

TEST(SibRanges, RejectsBadTarget)
{
    EXPECT_THROW(sibRanges({1.0}, 0.0), PanicError);
}

class CharacterizerTest : public ::testing::Test
{
  protected:
    CharacterizerTest() : module(testSpec()), characterizer(module) {}

    dram::DramModule module;
    Characterizer characterizer;
};

TEST_F(CharacterizerTest, SegmentEntropiesCoverBank)
{
    CharacterizerConfig cfg;
    cfg.threads = 2;
    auto entropies = characterizer.segmentEntropies(cfg);
    EXPECT_EQ(entropies.size(), module.geometry().segmentsPerBank());
    for (const auto &se : entropies)
        EXPECT_GE(se.entropy, 0.0);
}

TEST_F(CharacterizerTest, StrideSamples)
{
    CharacterizerConfig cfg;
    cfg.segmentStride = 4;
    auto entropies = characterizer.segmentEntropies(cfg);
    EXPECT_EQ(entropies.size(),
              module.geometry().segmentsPerBank() / 4);
    EXPECT_EQ(entropies[1].segment, 4u);
}

TEST_F(CharacterizerTest, BestSegmentIsArgmax)
{
    CharacterizerConfig cfg;
    auto entropies = characterizer.segmentEntropies(cfg);
    SegmentEntropy best = characterizer.bestSegment(cfg);
    double max_entropy = 0.0;
    for (const auto &se : entropies)
        max_entropy = std::max(max_entropy, se.entropy);
    EXPECT_DOUBLE_EQ(best.entropy, max_entropy);
    EXPECT_DOUBLE_EQ(
        characterizer.segmentEntropy(0, best.segment, cfg.pattern),
        best.entropy);
}

TEST_F(CharacterizerTest, PatternSweepOrdering)
{
    CharacterizerConfig cfg;
    cfg.segmentStride = 2;
    auto stats = characterizer.patternSweep(cfg);
    ASSERT_EQ(stats.size(), 16u);

    auto find = [&](const char *s) {
        uint8_t pattern = dram::patternFromString(s);
        for (const auto &ps : stats) {
            if (ps.pattern == pattern)
                return ps;
        }
        return PatternStats{};
    };

    // Figure 8's headline ordering.
    EXPECT_GT(find("0111").avgCacheBlockEntropy,
              find("0101").avgCacheBlockEntropy);
    EXPECT_GT(find("1000").avgCacheBlockEntropy,
              find("1010").avgCacheBlockEntropy);
    EXPECT_GT(find("0101").avgCacheBlockEntropy,
              find("0011").avgCacheBlockEntropy);
    EXPECT_GT(find("0111").maxCacheBlockEntropy,
              find("0111").avgCacheBlockEntropy);
}

TEST_F(CharacterizerTest, CacheBlockProfile)
{
    CharacterizerConfig cfg;
    SegmentEntropy best = characterizer.bestSegment(cfg);
    auto blocks = characterizer.cacheBlockEntropies(0, best.segment,
                                                    cfg.pattern);
    EXPECT_EQ(blocks.size(), module.geometry().cacheBlocksPerRow());
    double sum = 0.0;
    for (double h : blocks)
        sum += h;
    EXPECT_NEAR(sum, best.entropy, 1e-6);
}

TEST_F(CharacterizerTest, TemperatureShiftsEntropy)
{
    CharacterizerConfig cold;
    CharacterizerConfig hot;
    hot.temperatureC = 85.0;
    double h_cold = characterizer.bestSegment(cold).entropy;
    double h_hot = characterizer.bestSegment(hot).entropy;
    EXPECT_NE(h_cold, h_hot);
}

TEST_F(CharacterizerTest, InvalidBankPanics)
{
    CharacterizerConfig cfg;
    cfg.bank = module.geometry().banks;
    EXPECT_THROW(characterizer.segmentEntropies(cfg), PanicError);
}

} // anonymous namespace
} // namespace quac::core

/**
 * @file
 * Tests for online temperature recalibration: the governor's band
 * tracking, column-set installation into a live generator without
 * re-setup, generation continuity across switches, and validation of
 * both the governor config and QuacTrng::applyColumnRanges.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hh"
#include "core/thermal_governor.hh"
#include "core/trng.hh"
#include "service/entropy_service.hh"

namespace quac::core
{
namespace
{

dram::ModuleSpec
testSpec(uint64_t seed = 2021)
{
    dram::ModuleSpec spec;
    spec.geometry = dram::Geometry::testScale();
    spec.seed = seed;
    return spec;
}

QuacTrngConfig
testConfig()
{
    QuacTrngConfig cfg;
    cfg.banks = {0, 1};
    cfg.characterizeStride = 1;
    // Reduced test geometry: scale the per-block entropy target so
    // a segment still yields multiple blocks (see trng_test.cc).
    cfg.sibEntropyTarget = 24.0;
    cfg.threads = 2;
    return cfg;
}

ThermalGovernorConfig
governorConfig(unsigned bands = 4)
{
    ThermalGovernorConfig cfg;
    cfg.minC = 30.0;
    cfg.maxC = 90.0;
    cfg.bands = bands;
    return cfg;
}

TEST(ThermalGovernor, BuildsOneTablePerPlanAndRunsSetup)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    ASSERT_FALSE(trng.ready());

    ThermalGovernor governor(module, trng, governorConfig());
    EXPECT_TRUE(trng.ready()) << "governor must set the trng up";
    ASSERT_EQ(governor.tables().size(), trng.plans().size());
    EXPECT_EQ(governor.bandCount(), 4u);
    for (const TemperatureTable &table : governor.tables())
        EXPECT_EQ(table.bandCount(), 4u);
    // Starts in the band covering the module's current temperature.
    size_t band = governor.bandIndex();
    const TemperatureBand &covering =
        governor.tables()[0].bands()[band];
    EXPECT_LE(covering.minC, module.temperature());
    EXPECT_GT(covering.maxC, module.temperature());
}

TEST(ThermalGovernor, DriftInsideOneBandNeverSwitches)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    ThermalGovernor governor(module, trng, governorConfig(2));
    // Bands: [30, 60), [60, 90). Wander inside the first.
    ASSERT_TRUE(governor.setTemperature(35.0) == false ||
                governor.bandIndex() == 0);
    for (double t : {31.0, 44.5, 59.0, 35.0}) {
        EXPECT_FALSE(governor.setTemperature(t)) << t;
        EXPECT_DOUBLE_EQ(governor.temperature(), t);
    }
    EXPECT_EQ(governor.bandSwitches(), 0u);
}

TEST(ThermalGovernor, CrossingBandEdgeSwitchesAndKeepsGenerating)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    ThermalGovernor governor(module, trng, governorConfig(2));
    governor.setTemperature(40.0);
    ASSERT_EQ(governor.bandIndex(), 0u);

    std::vector<uint8_t> before = trng.generate(128);

    EXPECT_TRUE(governor.setTemperature(80.0));
    EXPECT_EQ(governor.bandIndex(), 1u);
    EXPECT_EQ(governor.bandSwitches(), 1u);
    // The live generator now runs the hot band's ranges, with no
    // re-setup: it keeps serving bytes.
    EXPECT_TRUE(trng.ready());
    std::vector<uint8_t> after = trng.generate(128);
    EXPECT_NE(before, after);

    // The installed geometry matches the hot band's range count.
    size_t expected = 0;
    for (const TemperatureTable &table : governor.tables())
        expected += table.bands()[1].ranges.size() * 32;
    EXPECT_EQ(trng.bytesPerIteration(), expected);
}

TEST(ThermalGovernor, SwitchBackRestoresColdGeometry)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    ThermalGovernor governor(module, trng, governorConfig(2));
    governor.setTemperature(40.0);
    size_t cold_bytes = trng.bytesPerIteration();

    ASSERT_TRUE(governor.setTemperature(80.0));
    ASSERT_TRUE(governor.setTemperature(40.0));
    EXPECT_EQ(governor.bandSwitches(), 2u);
    EXPECT_EQ(governor.bandIndex(), 0u);
    EXPECT_EQ(trng.bytesPerIteration(), cold_bytes);
}

TEST(ThermalGovernor, TemperaturesBeyondRangeClampToEdgeBands)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    ThermalGovernor governor(module, trng, governorConfig(3));
    // Inside the module's physical range but outside the table's
    // [30, 90) coverage: clamp to the edge bands.
    governor.setTemperature(10.0);
    EXPECT_EQ(governor.bandIndex(), 0u);
    governor.setTemperature(120.0);
    EXPECT_EQ(governor.bandIndex(), 2u);
}

TEST(ThermalGovernor, OutOfBandReportsClampAndStillSwitchOnce)
{
    // A mis-reading sensor can report anywhere in the module's
    // physical range [-40, 125] while the tables only cover
    // [30, 90). The governor must clamp to the edge bands — and a
    // crossing INTO an out-of-band regime is still a real band
    // switch (the caller flushes suspect spans), while drift that
    // stays beyond the same edge never re-switches.
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    ThermalGovernor governor(module, trng, governorConfig(2));
    governor.setTemperature(40.0);
    ASSERT_EQ(governor.bandIndex(), 0u);

    // Physical floor: clamps to band 0, no switch (already there).
    EXPECT_FALSE(governor.setTemperature(-40.0));
    EXPECT_EQ(governor.bandIndex(), 0u);
    EXPECT_DOUBLE_EQ(governor.temperature(), -40.0);

    // Leap straight from the cold floor past the hot edge: one
    // switch into the top band.
    EXPECT_TRUE(governor.setTemperature(125.0));
    EXPECT_EQ(governor.bandIndex(), 1u);
    EXPECT_EQ(governor.bandSwitches(), 1u);

    // Wobble beyond the hot edge: clamped to the same band, no
    // further switches, and the generator keeps serving.
    for (double t : {125.0, 91.0, 124.9, 90.0}) {
        EXPECT_FALSE(governor.setTemperature(t)) << t;
        EXPECT_EQ(governor.bandIndex(), 1u);
    }
    EXPECT_EQ(governor.bandSwitches(), 1u);
    EXPECT_EQ(trng.generate(64).size(), 64u);

    // Reports outside the module's physical range are rejected
    // outright (fatal), not clamped: that is a broken sensor, not a
    // hot part.
    EXPECT_THROW(governor.setTemperature(125.1), FatalError);
    EXPECT_THROW(governor.setTemperature(-40.5), FatalError);
    // The failed report changed nothing.
    EXPECT_EQ(governor.bandIndex(), 1u);
    EXPECT_EQ(governor.bandSwitches(), 1u);
}

TEST(ThermalGovernor, OutOfBandSwitchStillFlushesSuspectSpans)
{
    // The service-facing half of the mis-read-band story: a retune
    // driven by an out-of-band report must flush the bytes buffered
    // across the switch exactly like an in-range one — the spans
    // predate the new column sets and are suspect either way.
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    ThermalGovernor governor(module, trng, governorConfig(2));
    governor.setTemperature(40.0);
    ASSERT_EQ(governor.bandIndex(), 0u);

    service::EntropyServiceConfig cfg;
    cfg.shards = 1;
    cfg.shardCapacityBytes = 512;
    service::EntropyService svc({&trng}, cfg);
    svc.refillBelowWatermark();
    ASSERT_GT(svc.level(0), 0u);

    // In-band wobble: no switch, nothing flushed.
    size_t dropped = svc.retuneBackend(
        0, [&]() { return governor.setTemperature(45.0); });
    EXPECT_EQ(dropped, 0u);
    EXPECT_EQ(svc.suspectBytesDropped(), 0u);

    // Out-of-band leap: the clamped switch flushes the buffer.
    size_t buffered = svc.level(0);
    dropped = svc.retuneBackend(
        0, [&]() { return governor.setTemperature(120.0); });
    EXPECT_EQ(governor.bandIndex(), 1u);
    EXPECT_EQ(dropped, buffered);
    EXPECT_EQ(svc.suspectBytesDropped(), buffered);
    EXPECT_EQ(svc.level(0), 0u);

    // The service recovers: the next request refills under the new
    // band's column sets and serves.
    service::EntropyService::Client client =
        svc.connect("c", service::Priority::Standard, 0);
    std::vector<uint8_t> buf(64);
    service::RequestResult res = client.request(buf.data(), 64);
    EXPECT_EQ(res.bytes, 64u);
    EXPECT_FALSE(res.denied);
}

TEST(ThermalGovernor, ConfigValidated)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    ThermalGovernorConfig cfg = governorConfig();
    cfg.bands = 0;
    EXPECT_THROW(ThermalGovernor(module, trng, cfg), FatalError);
    cfg = governorConfig();
    cfg.minC = 90.0; // !(minC < maxC)
    EXPECT_THROW(ThermalGovernor(module, trng, cfg), FatalError);
}

TEST(ThermalGovernor, ApplyColumnRangesValidatesShape)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    trng.setup();
    const dram::Geometry &geom = module.geometry();

    // Wrong plan count.
    EXPECT_THROW(trng.applyColumnRanges({}), FatalError);
    // Empty per-plan range list.
    std::vector<std::vector<ColumnRange>> empty_plan(2);
    empty_plan[0] = trng.plans()[0].ranges;
    EXPECT_THROW(trng.applyColumnRanges(empty_plan), FatalError);
    // Out-of-geometry column.
    std::vector<std::vector<ColumnRange>> bad(2);
    bad[0] = trng.plans()[0].ranges;
    bad[1] = trng.plans()[1].ranges;
    bad[1][0].beginColumn = 0;
    bad[1][0].endColumn =
        static_cast<uint32_t>(geom.cacheBlocksPerRow()) + 1;
    EXPECT_THROW(trng.applyColumnRanges(bad), FatalError);
    // The failed installs never corrupted the generator.
    EXPECT_EQ(trng.generate(64).size(), 64u);
}

TEST(ThermalGovernor, ApplyColumnRangesDiscardsBufferedIteration)
{
    // A partial buffered iteration must not leak across a retune:
    // two generators, one retuned to its own current ranges
    // mid-stream, must agree from the retune point only if the
    // buffer was discarded deterministically — i.e. the retuned one
    // restarts at an iteration boundary.
    dram::DramModule module_a(testSpec(7));
    dram::DramModule module_b(testSpec(7));
    QuacTrng trng_a(module_a, testConfig());
    QuacTrng trng_b(module_b, testConfig());
    trng_a.setup();
    trng_b.setup();

    size_t iteration = trng_a.bytesPerIteration();
    ASSERT_GT(iteration, 16u);
    ASSERT_EQ(trng_a.generate(16), trng_b.generate(16));

    // Reinstall a's current ranges: geometry identical, but the
    // partial iteration is discarded; b keeps its buffer.
    std::vector<std::vector<ColumnRange>> same;
    for (const auto &plan : trng_a.plans())
        same.push_back(plan.ranges);
    trng_a.applyColumnRanges(same);

    std::vector<uint8_t> next_a = trng_a.generate(iteration);
    std::vector<uint8_t> next_b = trng_b.generate(iteration);
    // a restarted at a fresh iteration; b served the buffered tail
    // first — the streams legitimately diverge, which is exactly why
    // the service flushes shard buffers on retune.
    EXPECT_NE(next_a, next_b);
}

} // anonymous namespace
} // namespace quac::core

/**
 * @file
 * Tests for the buffered random-number service (paper Section 9).
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "core/rng_service.hh"

namespace quac::core
{
namespace
{

/** Deterministic counting generator for service-logic tests. */
class CountingTrng : public Trng
{
  public:
    std::string name() const override { return "counting"; }

    void
    fill(uint8_t *out, size_t len) override
    {
        for (size_t i = 0; i < len; ++i)
            out[i] = static_cast<uint8_t>(counter_++);
        ++fills_;
    }

    uint64_t fills() const { return fills_; }

  private:
    uint64_t counter_ = 0;
    uint64_t fills_ = 0;
};

TEST(RngService, ServesFromBufferAfterRefill)
{
    CountingTrng source;
    RngService service(source, {.capacityBytes = 64,
                                .refillWatermark = 0.5});
    EXPECT_EQ(service.level(), 0u);
    EXPECT_EQ(service.refillIfBelowWatermark(), 64u);
    EXPECT_EQ(service.level(), 64u);

    uint8_t out[16];
    EXPECT_TRUE(service.request(out, 16));
    EXPECT_EQ(service.level(), 48u);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[15], 15);
    EXPECT_EQ(service.bufferHits(), 1u);
    EXPECT_EQ(service.synchronousFills(), 0u);
}

TEST(RngService, FallsBackWhenDrained)
{
    CountingTrng source;
    RngService service(source, {.capacityBytes = 32,
                                .refillWatermark = 0.5});
    service.refillIfBelowWatermark();

    uint8_t out[48];
    EXPECT_FALSE(service.request(out, 48)) << "exceeds the buffer";
    EXPECT_EQ(service.synchronousFills(), 1u);
    // Stream continuity: buffer bytes then on-demand bytes.
    for (int i = 0; i < 48; ++i)
        EXPECT_EQ(out[i], i);
    EXPECT_EQ(service.level(), 0u);
}

TEST(RngService, WatermarkControlsRefill)
{
    CountingTrng source;
    RngService service(source, {.capacityBytes = 100,
                                .refillWatermark = 0.25});
    service.refillIfBelowWatermark();
    uint8_t out[60];
    service.request(out, 60); // level 40 > 25: no refill yet
    EXPECT_EQ(service.refillIfBelowWatermark(), 0u);
    service.request(out, 20); // level 20 <= 25: refill
    EXPECT_EQ(service.refillIfBelowWatermark(), 80u);
    EXPECT_EQ(service.level(), 100u);
}

TEST(RngService, StatisticsAccumulate)
{
    CountingTrng source;
    RngService service(source, {.capacityBytes = 16,
                                .refillWatermark = 1.0});
    for (int i = 0; i < 5; ++i) {
        service.refillIfBelowWatermark();
        auto bytes = service.request(8);
        EXPECT_EQ(bytes.size(), 8u);
    }
    EXPECT_EQ(service.requestsServed(), 5u);
    EXPECT_EQ(service.bufferHits() + service.synchronousFills(), 5u);
}

TEST(RngService, RejectsBadConfig)
{
    CountingTrng source;
    EXPECT_THROW(RngService(source, {.capacityBytes = 0,
                                     .refillWatermark = 0.5}),
                 FatalError);
    EXPECT_THROW(RngService(source, {.capacityBytes = 16,
                                     .refillWatermark = 1.5}),
                 FatalError);
}

/** Counting generator with a whole-iteration output granularity. */
class ChunkedCountingTrng : public CountingTrng
{
  public:
    explicit ChunkedCountingTrng(size_t chunk) : chunk_(chunk) {}
    size_t preferredChunkBytes() override { return chunk_; }

  private:
    size_t chunk_;
};

/** Counting generator that records preferredChunkBytes() calls. */
class LazyProbeTrng : public CountingTrng
{
  public:
    size_t
    preferredChunkBytes() override
    {
        ++chunkQueries_;
        return 16;
    }

    uint64_t chunkQueries() const { return chunkQueries_; }

  private:
    uint64_t chunkQueries_ = 0;
};

TEST(RngService, ChunkQueryDeferredToFirstRefill)
{
    // preferredChunkBytes may run the generator's one-time
    // characterization (QuacTrng::setup); the service must not
    // trigger it at construction, exactly like the original
    // implementation, so callers can still adjust module state
    // between construction and first refill.
    LazyProbeTrng source;
    RngService service(source, {.capacityBytes = 64,
                                .refillWatermark = 0.5});
    EXPECT_EQ(source.chunkQueries(), 0u);
    uint8_t out[8];
    service.request(out, 8); // synchronous misses don't need it
    EXPECT_EQ(source.chunkQueries(), 0u);
    service.refillIfBelowWatermark();
    EXPECT_GT(source.chunkQueries(), 0u);
}

TEST(RngService, RefillPullsWholeIterations)
{
    ChunkedCountingTrng source(48);
    RngService service(source, {.capacityBytes = 100,
                                .refillWatermark = 0.5});
    // 100 wanted -> rounded up to 3 whole 48-byte iterations.
    EXPECT_EQ(service.refillIfBelowWatermark(), 144u);
    EXPECT_EQ(service.level(), 144u);
    // Above the watermark: no further refill, no fractional top-up.
    EXPECT_EQ(service.refillIfBelowWatermark(), 0u);

    // The stream is still continuous and nothing was discarded.
    auto bytes = service.request(144);
    for (size_t i = 0; i < bytes.size(); ++i)
        ASSERT_EQ(bytes[i], static_cast<uint8_t>(i));
}

TEST(RngService, StreamIdenticalToUnbufferedSource)
{
    CountingTrng buffered_source;
    CountingTrng direct_source;
    RngService service(buffered_source, {.capacityBytes = 128,
                                         .refillWatermark = 0.5});
    std::vector<uint8_t> via_service;
    for (int i = 0; i < 10; ++i) {
        service.refillIfBelowWatermark();
        auto chunk = service.request(37);
        via_service.insert(via_service.end(), chunk.begin(),
                           chunk.end());
    }
    std::vector<uint8_t> direct(via_service.size());
    direct_source.fill(direct.data(), direct.size());
    EXPECT_EQ(via_service, direct)
        << "buffering must not reorder or drop generator output";
}

} // anonymous namespace
} // namespace quac::core

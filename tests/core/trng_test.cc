/**
 * @file
 * Tests for the QUAC-TRNG pipeline.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/error.hh"
#include "core/trng.hh"
#include "nist/sts.hh"

namespace quac::core
{
namespace
{

dram::ModuleSpec
testSpec(uint64_t seed = 2021)
{
    dram::ModuleSpec spec;
    spec.geometry = dram::Geometry::testScale();
    spec.seed = seed;
    return spec;
}

QuacTrngConfig
testConfig()
{
    QuacTrngConfig cfg;
    cfg.banks = {0, 1};
    cfg.characterizeStride = 1;
    // The reduced test geometry has ~8x fewer bitlines per segment
    // than real hardware; scale the per-block entropy target so a
    // segment still yields multiple blocks.
    cfg.sibEntropyTarget = 24.0;
    cfg.threads = 2;
    return cfg;
}

TEST(QuacTrng, SetupBuildsPlans)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    trng.setup();
    ASSERT_TRUE(trng.ready());
    ASSERT_EQ(trng.plans().size(), 2u);

    const dram::Geometry &geom = module.geometry();
    for (const auto &plan : trng.plans()) {
        EXPECT_LT(plan.segment, geom.segmentsPerBank());
        EXPECT_GT(plan.segmentEntropy, 0.0);
        EXPECT_FALSE(plan.ranges.empty());
        // Reserved rows must sit outside the QUAC segment but in the
        // same subarray (RowClone requirement).
        EXPECT_NE(geom.segmentOfRow(plan.zeroRow), plan.segment);
        EXPECT_EQ(geom.subarrayOfRow(plan.zeroRow),
                  geom.subarrayOfRow(
                      geom.firstRowOfSegment(plan.segment)));
        EXPECT_EQ(plan.oneRow, plan.zeroRow + 1);
    }
    EXPECT_EQ(trng.bitsPerIteration() % 256, 0u);
    EXPECT_GT(trng.bitsPerIteration(), 0u);
}

TEST(QuacTrng, GeneratesRequestedBytes)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    auto bytes = trng.generate(1000);
    EXPECT_EQ(bytes.size(), 1000u);
    EXPECT_GT(trng.iterations(), 0u);

    // Output should not be trivially constant.
    std::set<uint8_t> distinct(bytes.begin(), bytes.end());
    EXPECT_GT(distinct.size(), 16u);
}

TEST(QuacTrng, FillAcrossIterationBoundaries)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    trng.setup();
    size_t chunk = trng.bitsPerIteration() / 8;
    // Request a length that is not a multiple of the per-iteration
    // output so the buffer must carry a partial remainder.
    auto bytes = trng.generate(chunk + chunk / 2 + 3);
    EXPECT_EQ(bytes.size(), chunk + chunk / 2 + 3);
    EXPECT_GE(trng.iterations(), 2u);
}

TEST(QuacTrng, DeterministicForSameSeed)
{
    dram::DramModule module_a(testSpec(5));
    dram::DramModule module_b(testSpec(5));
    QuacTrng trng_a(module_a, testConfig());
    QuacTrng trng_b(module_b, testConfig());
    EXPECT_EQ(trng_a.generate(256), trng_b.generate(256));
}

TEST(QuacTrng, DifferentModulesDiffer)
{
    dram::DramModule module_a(testSpec(5));
    dram::DramModule module_b(testSpec(6));
    QuacTrng trng_a(module_a, testConfig());
    QuacTrng trng_b(module_b, testConfig());
    EXPECT_NE(trng_a.generate(256), trng_b.generate(256));
}

TEST(QuacTrng, Random256Distinct)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    auto a = trng.random256();
    auto b = trng.random256();
    EXPECT_NE(a, b) << "consecutive 256-bit outputs must differ";
}

TEST(QuacTrng, RawIterationHasExpectedSize)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    Bitstream raw = trng.rawIteration(0);
    EXPECT_EQ(raw.size(), module.geometry().bitlinesPerRow);
    // Conflicting-pattern QUAC: the raw read is a mix of 0s and 1s.
    EXPECT_GT(raw.popcount(), 0u);
    EXPECT_LT(raw.popcount(), raw.size());
}

TEST(QuacTrng, ShaOutputPassesBasicNistTests)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    Bitstream bits = trng.generateBits(1u << 16);
    EXPECT_TRUE(nist::monobit(bits).passed());
    EXPECT_TRUE(nist::runs(bits).passed());
    EXPECT_TRUE(nist::frequencyWithinBlock(bits).passed());
    EXPECT_TRUE(nist::serial(bits).passed());
}

TEST(QuacTrng, RawOutputIsBiased)
{
    // Without whitening, raw QUAC reads carry the deterministic
    // bitlines too; a monobit failure is expected (this is why the
    // paper post-processes).
    dram::DramModule module(testSpec());
    QuacTrngConfig cfg = testConfig();
    cfg.useSha = false;
    QuacTrng trng(module, cfg);
    Bitstream bits = trng.generateBits(1u << 15);
    EXPECT_FALSE(nist::monobit(bits).passed());
}

TEST(QuacTrng, GeneratorStateAdvances)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    auto first = trng.generate(64);
    auto second = trng.generate(64);
    EXPECT_NE(first, second);
}

TEST(QuacTrng, RejectsBadConfig)
{
    dram::DramModule module(testSpec());
    QuacTrngConfig cfg = testConfig();
    cfg.banks = {};
    EXPECT_THROW(QuacTrng(module, cfg), FatalError);
    cfg.banks = {module.geometry().banks};
    EXPECT_THROW(QuacTrng(module, cfg), FatalError);
}

TEST(QuacTrng, SerialAndParallelPipelinesByteIdentical)
{
    // The parallel multi-bank pipeline must be a pure scheduling
    // change: per-bank command streams, noise streams, and output
    // slices are independent, so output bytes cannot depend on the
    // interleaving.
    dram::DramModule module_serial(testSpec(7));
    dram::DramModule module_parallel(testSpec(7));
    QuacTrngConfig cfg = testConfig();
    cfg.banks = {0, 1, 2, 3};

    QuacTrngConfig serial_cfg = cfg;
    serial_cfg.parallelBanks = false;
    QuacTrngConfig parallel_cfg = cfg;
    parallel_cfg.parallelBanks = true;
    parallel_cfg.bankThreads = 4;

    QuacTrng serial(module_serial, serial_cfg);
    QuacTrng parallel(module_parallel, parallel_cfg);
    serial.setup();
    parallel.setup();
    size_t len = 3 * serial.bytesPerIteration() + 11;
    EXPECT_EQ(serial.generate(len), parallel.generate(len));
}

TEST(QuacTrng, FillRequestsStraddlingIterationBoundary)
{
    // A stream drawn in awkward chunk sizes (forcing buffered
    // remainders across iteration boundaries) must equal the same
    // stream drawn in one large request (the direct-write path).
    dram::DramModule module_chunked(testSpec(9));
    dram::DramModule module_bulk(testSpec(9));
    QuacTrng chunked(module_chunked, testConfig());
    QuacTrng bulk(module_bulk, testConfig());
    chunked.setup();
    bulk.setup();

    size_t iter = chunked.bytesPerIteration();
    ASSERT_GT(iter, 0u);
    std::vector<size_t> chunks = {iter / 2 + 1, iter, 3, iter - 1,
                                  2 * iter + 5};
    std::vector<uint8_t> stream;
    for (size_t chunk : chunks) {
        auto part = chunked.generate(chunk);
        stream.insert(stream.end(), part.begin(), part.end());
    }
    EXPECT_EQ(stream, bulk.generate(stream.size()));
}

TEST(QuacTrng, OracleCacheIsBitIdentical)
{
    // The variation-oracle row cache is a pure memoization: cached
    // and uncached modules must emit identical bytes.
    dram::ModuleSpec cached_spec = testSpec(13);
    dram::ModuleSpec uncached_spec = testSpec(13);
    uncached_spec.oracleCache = false;
    dram::DramModule cached_module(std::move(cached_spec));
    dram::DramModule uncached_module(std::move(uncached_spec));
    QuacTrng cached(cached_module, testConfig());
    QuacTrng uncached(uncached_module, testConfig());
    EXPECT_EQ(cached.generate(512), uncached.generate(512));
}

TEST(QuacTrng, SaturationFastPathIsBitIdentical)
{
    // The saturation fast-path skips the Phi batch for whole-row
    // tail setups (the RowClone-init resolves); generated bytes must
    // not change, and the fast-path must actually fire every
    // iteration on the four raced init copies per bank.
    dram::ModuleSpec fast_spec = testSpec(13);
    dram::ModuleSpec full_spec = testSpec(13);
    full_spec.saturationFastPath = false;
    dram::DramModule fast_module(std::move(fast_spec));
    dram::DramModule full_module(std::move(full_spec));
    QuacTrng fast(fast_module, testConfig());
    QuacTrng full(full_module, testConfig());
    EXPECT_EQ(fast.generate(512), full.generate(512));

    uint64_t fired = 0;
    for (const auto &plan : fast.plans())
        fired += fast_module.bank(plan.bank).saturatedRowFastPaths();
    EXPECT_GE(fired, 4u * fast.plans().size() * fast.iterations());
    for (const auto &plan : full.plans())
        EXPECT_EQ(full_module.bank(plan.bank).saturatedRowFastPaths(),
                  0u);
}

TEST(QuacTrng, PreferredChunkMatchesIterationOutput)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    size_t chunk = trng.preferredChunkBytes();
    ASSERT_TRUE(trng.ready()) << "preferredChunkBytes must set up";
    EXPECT_EQ(chunk, trng.bytesPerIteration());
    EXPECT_EQ(chunk * 8, trng.bitsPerIteration());
}

TEST(QuacTrng, RejectsDuplicateBanks)
{
    dram::DramModule module(testSpec());
    QuacTrngConfig cfg = testConfig();
    cfg.banks = {0, 1, 0};
    EXPECT_THROW(QuacTrng(module, cfg), FatalError);
}

TEST(QuacTrng, RecharacterizeAfterTemperatureChange)
{
    dram::DramModule module(testSpec());
    QuacTrng trng(module, testConfig());
    trng.setup();
    auto plans_cold = trng.plans();
    module.setTemperature(85.0);
    trng.recharacterize();
    ASSERT_TRUE(trng.ready());
    // Plans may or may not move; the TRNG must still produce data.
    auto bytes = trng.generate(128);
    EXPECT_EQ(bytes.size(), 128u);
    (void)plans_cold;
}

} // anonymous namespace
} // namespace quac::core

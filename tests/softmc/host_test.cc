/**
 * @file
 * Tests for the SoftMC host composites (QUAC, RowClone, reduced-tRCD
 * and reduced-tRP drivers).
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "softmc/host.hh"

namespace quac::softmc
{
namespace
{

class HostTest : public ::testing::Test
{
  protected:
    HostTest() : module(spec()), host(module) {}

    static dram::ModuleSpec
    spec()
    {
        dram::ModuleSpec s;
        s.geometry = dram::Geometry::testScale();
        s.seed = 31;
        return s;
    }

    static size_t
    onesIn(const std::vector<uint64_t> &words)
    {
        size_t count = 0;
        for (uint64_t w : words)
            count += static_cast<size_t>(__builtin_popcountll(w));
        return count;
    }

    dram::DramModule module;
    SoftMcHost host;
};

TEST_F(HostTest, CursorAdvances)
{
    EXPECT_DOUBLE_EQ(host.now(), 0.0);
    host.wait(10.0);
    EXPECT_DOUBLE_EQ(host.now(), 10.0);
    EXPECT_THROW(host.wait(-1.0), FatalError);
}

TEST_F(HostTest, WriteRowFillThenReadBack)
{
    host.writeRowFill(0, 6, true);
    host.actObeyed(0, 6);
    auto row = host.readOpenRow(0);
    EXPECT_EQ(onesIn(row), module.geometry().bitlinesPerRow);
    host.preObeyed(0);
}

TEST_F(HostTest, RdIntoMatchesRd)
{
    host.writeRowFill(0, 6, true);
    host.actObeyed(0, 6);
    auto block = host.rd(0, 2);
    std::vector<uint64_t> direct(block.size(), 0);
    host.rdInto(0, 2, direct.data());
    EXPECT_EQ(block, direct);
    host.preObeyed(0);
}

TEST_F(HostTest, ReadColumnsMatchesPerBlockReads)
{
    const dram::Geometry &geom = module.geometry();
    host.writeRowFill(0, 6, true);
    host.actObeyed(0, 6);
    size_t words = geom.cacheBlockBits / 64;

    std::vector<uint64_t> batched(3 * words, 0);
    double before = host.now();
    host.readColumns(0, 1, 4, batched.data());
    // Internal pacing: one tCCD_L per burst.
    EXPECT_DOUBLE_EQ(host.now(), before + 3 * host.timing().tCCD_L);

    for (uint32_t col = 1; col < 4; ++col) {
        auto block = host.rd(0, col);
        host.wait(host.timing().tCCD_L);
        for (size_t w = 0; w < words; ++w)
            EXPECT_EQ(batched[(col - 1) * words + w], block[w])
                << "col " << col << " word " << w;
    }
    host.preObeyed(0);
}

TEST_F(HostTest, ReadColumnsRejectsInvertedRange)
{
    host.writeRowFill(0, 6, false);
    host.actObeyed(0, 6);
    uint64_t sink[8];
    EXPECT_THROW(host.readColumns(0, 3, 1, sink), FatalError);
    host.preObeyed(0);
}

TEST_F(HostTest, ReadOpenRowIntoMatchesReadOpenRow)
{
    host.writeRowFill(1, 9, true);
    host.actObeyed(1, 9);
    auto row = host.readOpenRow(1);
    host.preObeyed(1);

    host.actObeyed(1, 9);
    std::vector<uint64_t> direct(module.geometry().wordsPerRow(), 0);
    host.readOpenRowInto(1, direct.data());
    host.preObeyed(1);
    EXPECT_EQ(row, direct);
}

TEST_F(HostTest, QuacOpensSegmentAndRandomizes)
{
    module.bank(1).pokeSegmentPattern(3, 0b1110);
    host.quac(1, 3);
    EXPECT_EQ(module.bank(1).openRows().size(), 4u);
    auto row = host.readOpenRow(1);
    size_t ones = onesIn(row);
    EXPECT_GT(ones, 0u);
    EXPECT_LT(ones, static_cast<size_t>(module.geometry().bitlinesPerRow));
    host.preObeyed(1);
}

TEST_F(HostTest, QuacAlternateFirstOffset)
{
    module.bank(0).pokeSegmentPattern(4, 0b1101); // "1011"
    host.quac(0, 4, 1); // ACT row1 first, then row2
    EXPECT_EQ(module.bank(0).openRows().size(), 4u);
    host.preObeyed(0);
}

TEST_F(HostTest, QuacValidatesArguments)
{
    EXPECT_THROW(host.quac(0, module.geometry().segmentsPerBank()),
                 FatalError);
    EXPECT_THROW(host.quac(0, 0, 4), FatalError);
}

TEST_F(HostTest, RowCloneCopiesData)
{
    host.writeRowFill(0, 2, true);   // source: all ones
    host.writeRowFill(0, 21, false); // destination: all zeros
    host.rowCloneCopy(0, 2, 21);

    host.actObeyed(0, 21);
    auto row = host.readOpenRow(0);
    EXPECT_EQ(onesIn(row), module.geometry().bitlinesPerRow);
    host.preObeyed(0);

    // Source must be intact.
    host.actObeyed(0, 2);
    auto src = host.readOpenRow(0);
    EXPECT_EQ(onesIn(src), module.geometry().bitlinesPerRow);
    host.preObeyed(0);
}

TEST_F(HostTest, RowCloneRejectsSameSegment)
{
    EXPECT_THROW(host.rowCloneCopy(0, 4, 7), FatalError);
}

TEST_F(HostTest, ReducedTrcdReadIsBiasedRandom)
{
    // The per-bit bias depends on the local offset distribution; the
    // property that matters is that the reads are neither constant
    // nor a clean copy of the stored zeros: some bits must flip, not
    // all may flip, and at least one bit must come up both ways
    // across repetitions (true metastability).
    const int iters = 30;
    size_t total_ones = 0;
    std::vector<uint8_t> seen_zero(module.geometry().cacheBlockBits, 0);
    std::vector<uint8_t> seen_one(module.geometry().cacheBlockBits, 0);
    for (int i = 0; i < iters; ++i) {
        module.bank(0).pokeRowFill(9, false);
        auto block = host.readWithReducedTrcd(0, 9, 0);
        for (uint32_t b = 0; b < module.geometry().cacheBlockBits; ++b) {
            bool bit = (block[b / 64] >> (b % 64)) & 1;
            (bit ? seen_one : seen_zero)[b] = 1;
            total_ones += bit;
        }
    }
    EXPECT_GT(total_ones, 0u);
    EXPECT_LT(total_ones,
              static_cast<size_t>(iters) *
                  module.geometry().cacheBlockBits);
    int metastable_bits = 0;
    for (uint32_t b = 0; b < module.geometry().cacheBlockBits; ++b) {
        if (seen_zero[b] && seen_one[b])
            metastable_bits++;
    }
    EXPECT_GT(metastable_bits, 0);
}

TEST_F(HostTest, ReducedTrpFlipsVictimCells)
{
    host.writeRowFill(0, 2, true);   // donor
    host.writeRowFill(0, 21, false); // victim
    auto row = host.activateWithReducedTrp(0, 2, 21);
    size_t ones = onesIn(row);
    EXPECT_GT(ones, 0u);
    EXPECT_LT(ones, static_cast<size_t>(module.geometry().bitlinesPerRow) / 2);
}

TEST_F(HostTest, TimingAccessorsSane)
{
    EXPECT_EQ(host.timing().transferRate, 2400u);
    EXPECT_GT(host.timing().tRCD, 0.0);
}

} // anonymous namespace
} // namespace quac::softmc

/**
 * @file
 * Tests for declarative SoftMC programs.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "dram/module.hh"
#include "softmc/program.hh"

namespace quac::softmc
{
namespace
{

dram::ModuleSpec
testSpec()
{
    dram::ModuleSpec spec;
    spec.geometry = dram::Geometry::testScale();
    spec.seed = 17;
    return spec;
}

TEST(Program, BuildsInstructionList)
{
    Program prog;
    prog.act(0, 5).wait(13.32).rd(0, 1).wait(10.0).pre(0);
    EXPECT_EQ(prog.size(), 5u);
    EXPECT_NEAR(prog.totalWaitNs(), 23.32, 1e-9);
}

TEST(Program, RejectsNegativeWait)
{
    Program prog;
    EXPECT_THROW(prog.wait(-1.0), FatalError);
}

TEST(Program, DisassemblyMentionsEachOp)
{
    Program prog;
    prog.act(1, 2).pre(1).rd(1, 3).wait(5.0);
    std::string text = prog.str();
    EXPECT_NE(text.find("ACT"), std::string::npos);
    EXPECT_NE(text.find("PRE"), std::string::npos);
    EXPECT_NE(text.find("RD"), std::string::npos);
    EXPECT_NE(text.find("WAIT"), std::string::npos);
}

TEST(Program, RunCapturesReads)
{
    dram::DramModule module(testSpec());
    module.bank(0).pokeRowFill(5, true);

    Program prog;
    prog.act(0, 5).wait(13.32).rd(0, 0).rd(0, 1).wait(20.0).pre(0);
    ExecutionResult result = run(prog, module);

    ASSERT_EQ(result.reads.size(), 2u);
    EXPECT_EQ(result.reads[0][0], ~uint64_t{0});
    EXPECT_EQ(result.reads[1][0], ~uint64_t{0});
    EXPECT_NEAR(result.endTime, 33.32, 1e-9);
}

TEST(Program, WritePayloadApplied)
{
    dram::DramModule module(testSpec());
    std::vector<uint64_t> block(
        module.geometry().cacheBlockBits / 64, 0xF0F0F0F0F0F0F0F0ULL);

    Program prog;
    prog.act(0, 9).wait(13.32).wr(0, 2, block).wait(20.0).rd(0, 2);
    ExecutionResult result = run(prog, module);
    ASSERT_EQ(result.reads.size(), 1u);
    EXPECT_EQ(result.reads[0], block);
}

TEST(Program, Algorithm1Transliteration)
{
    // Algorithm 1 of the paper, expressed as a SoftMC program:
    // write pattern, ACT Row0, wait 2.5, PRE, wait 2.5, ACT Row3,
    // wait tRCD, read each sense amplifier.
    dram::DramModule module(testSpec());
    uint32_t segment = 2;
    module.bank(0).pokeSegmentPattern(segment, 0b1110);
    uint32_t base = module.geometry().firstRowOfSegment(segment);

    Program prog;
    prog.act(0, base).wait(2.5).pre(0).wait(2.5).act(0, base + 3)
        .wait(13.32);
    for (uint32_t col = 0; col < module.geometry().cacheBlocksPerRow();
         ++col) {
        prog.rd(0, col);
    }
    ExecutionResult result = run(prog, module);

    EXPECT_EQ(module.bank(0).openRows().size(), 4u);
    size_t ones = 0;
    for (const auto &block : result.reads) {
        for (uint64_t w : block)
            ones += static_cast<size_t>(__builtin_popcountll(w));
    }
    EXPECT_GT(ones, 0u);
    EXPECT_LT(ones,
              static_cast<size_t>(module.geometry().bitlinesPerRow));
}

} // anonymous namespace
} // namespace quac::softmc

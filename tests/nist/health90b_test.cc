/**
 * @file
 * Tests for the streaming SP 800-90B health kernels: cutoff tables
 * against the specification's known values, kernel equivalence with
 * the offline SP 800-22 implementations, chunking invariance, the
 * vectorized popcount/pattern paths against bit-at-a-time
 * references, and detection of planted defects.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/bitstream.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "nist/health90b.hh"
#include "nist/sts.hh"

namespace quac::nist
{
namespace
{

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Xoshiro256pp rng(seed);
    std::vector<uint8_t> bytes(n);
    for (size_t i = 0; i < n; ++i)
        bytes[i] = static_cast<uint8_t>(rng.next());
    return bytes;
}

/** Run the tester over @p bytes in one call; return all windows. */
std::vector<HealthWindowResult>
runAll(const StreamingHealthConfig &cfg,
       const std::vector<uint8_t> &bytes)
{
    StreamingHealthTester tester(cfg);
    std::vector<HealthWindowResult> completed;
    tester.consume(bytes.data(), bytes.size(), completed);
    return completed;
}

// ------------------------------------------------- cutoff tables

TEST(Cutoffs, RepetitionCountMatchesSpecTable)
{
    // SP 800-90B 4.4.1: C = 1 + ceil(a / H) at the standard a = 20.
    EXPECT_EQ(rctCutoff(1.0, 20), 21u);
    EXPECT_EQ(rctCutoff(0.5, 20), 41u);
    // Other spot values of the published table.
    EXPECT_EQ(rctCutoff(0.25, 20), 81u);
    EXPECT_EQ(rctCutoff(2.0 / 3.0, 20), 31u);
    // The service default a = 40 doubles the run budget at H = 1.
    EXPECT_EQ(rctCutoff(1.0, 40), 41u);
}

TEST(Cutoffs, AdaptiveProportionMatchesSpecTable)
{
    // SP 800-90B 4.4.2, binary W = 1024, a = 20:
    // 1 + CRITBINOM(1024, 2^-H, 1 - 2^-20).
    EXPECT_EQ(aptCutoff(kAptWindowBits, 1.0, 20), 589u);
    EXPECT_EQ(aptCutoff(kAptWindowBits, 0.5, 20), 793u);
    // Monotone in both knobs: lower entropy or lower alpha (larger
    // a) can only raise the cutoff.
    EXPECT_GE(aptCutoff(kAptWindowBits, 1.0, 40),
              aptCutoff(kAptWindowBits, 1.0, 20));
    EXPECT_LT(aptCutoff(kAptWindowBits, 1.0, 40),
              aptCutoff(kAptWindowBits, 0.5, 20));
}

TEST(Cutoffs, RejectsInvalidParameters)
{
    EXPECT_THROW(rctCutoff(0.0), FatalError);
    EXPECT_THROW(rctCutoff(1.5), FatalError);
    EXPECT_THROW(rctCutoff(1.0, 0), FatalError);
    EXPECT_THROW(rctCutoff(1.0, 65), FatalError);
    EXPECT_THROW(aptCutoff(0, 1.0), FatalError);
    EXPECT_THROW(aptCutoff(kAptWindowBits, -0.5), FatalError);
    EXPECT_THROW(aptCutoff(kAptWindowBits, 1.0, 0), FatalError);
}

TEST(Cutoffs, TesterValidatesWindow)
{
    StreamingHealthConfig cfg;
    cfg.windowBits = 0;
    EXPECT_THROW(StreamingHealthTester{cfg}, FatalError);
    cfg.windowBits = 100; // not a multiple of 8
    EXPECT_THROW(StreamingHealthTester{cfg}, FatalError);
    cfg.windowBits = 64; // below the serial floor
    EXPECT_THROW(StreamingHealthTester{cfg}, FatalError);
    cfg.windowBits = 16384;
    cfg.entropyPerBit = 0.0;
    EXPECT_THROW(StreamingHealthTester{cfg}, FatalError);
}

// --------------------------------------------- kernel equivalence

TEST(OnesCount, VectorizedMatchesScalar)
{
    // Cover word-path and tail lengths around the 8-byte boundary.
    for (size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
        std::vector<uint8_t> bytes = randomBytes(len, 7 + len);
        EXPECT_EQ(onesCount(bytes.data(), len),
                  onesCountScalar(bytes.data(), len))
            << "len=" << len;
    }
}

/** Brute-force cyclic 3-bit pattern counts, LSB-first. */
std::array<uint64_t, 8>
bruteForcePatterns(const std::vector<uint8_t> &bytes)
{
    size_t nbits = bytes.size() * 8;
    auto bit = [&](size_t i) -> unsigned {
        i %= nbits;
        return (bytes[i / 8] >> (i % 8)) & 1;
    };
    std::array<uint64_t, 8> counts{};
    for (size_t i = 0; i < nbits; ++i)
        ++counts[bit(i) | (bit(i + 1) << 1) | (bit(i + 2) << 2)];
    return counts;
}

TEST(PatternCounter, MatchesBruteForceAcrossChunkings)
{
    std::vector<uint8_t> bytes = randomBytes(517, 11);
    std::array<uint64_t, 8> expected = bruteForcePatterns(bytes);

    Xoshiro256pp rng(13);
    for (int trial = 0; trial < 8; ++trial) {
        PatternCounter3 counter;
        size_t at = 0;
        while (at < bytes.size()) {
            size_t chunk = 1 + rng.next() % 97;
            chunk = std::min(chunk, bytes.size() - at);
            counter.consume(bytes.data() + at, chunk);
            at += chunk;
        }
        counter.finishCyclic();
        EXPECT_EQ(counter.counts(), expected) << "trial " << trial;
        EXPECT_EQ(counter.bits(), bytes.size() * 8);
    }
}

TEST(Streaming, WindowStatsMatchOfflineKernels)
{
    // One window of random bytes: the streaming monobit and serial
    // p-values must match the offline SP 800-22 kernels on the same
    // bits.
    constexpr size_t window_bytes = 16384 / 8;
    std::vector<uint8_t> bytes = randomBytes(window_bytes, 17);

    StreamingHealthConfig cfg;
    std::vector<HealthWindowResult> windows = runAll(cfg, bytes);
    ASSERT_EQ(windows.size(), 1u);

    Bitstream bits = Bitstream::fromBytes(bytes);
    TestResult mono = monobit(bits);
    TestResult ser = serial(bits, 3);
    ASSERT_EQ(ser.pValues.size(), 2u);
    EXPECT_NEAR(windows[0].monobitP, mono.pValues[0], 1e-9);
    EXPECT_NEAR(windows[0].serialP1, ser.pValues[0], 1e-9);
    EXPECT_NEAR(windows[0].serialP2, ser.pValues[1], 1e-9);
}

TEST(Streaming, ChunkingInvariant)
{
    // Feeding the same stream in random chunk sizes yields exactly
    // the same sequence of window results as one big call.
    constexpr size_t nbytes = 5 * 2048 + 611;
    std::vector<uint8_t> bytes = randomBytes(nbytes, 23);
    StreamingHealthConfig cfg;
    std::vector<HealthWindowResult> reference = runAll(cfg, bytes);
    ASSERT_EQ(reference.size(), 5u);

    Xoshiro256pp rng(29);
    for (int trial = 0; trial < 5; ++trial) {
        StreamingHealthTester tester(cfg);
        std::vector<HealthWindowResult> completed;
        size_t at = 0;
        while (at < nbytes) {
            size_t chunk = 1 + rng.next() % 701;
            chunk = std::min(chunk, nbytes - at);
            tester.consume(bytes.data() + at, chunk, completed);
            at += chunk;
        }
        ASSERT_EQ(completed.size(), reference.size());
        for (size_t w = 0; w < completed.size(); ++w) {
            EXPECT_DOUBLE_EQ(completed[w].monobitP,
                             reference[w].monobitP);
            EXPECT_DOUBLE_EQ(completed[w].serialP1,
                             reference[w].serialP1);
            EXPECT_DOUBLE_EQ(completed[w].serialP2,
                             reference[w].serialP2);
            EXPECT_EQ(completed[w].maxRun, reference[w].maxRun);
            EXPECT_EQ(completed[w].maxAptCount,
                      reference[w].maxAptCount);
        }
        EXPECT_EQ(tester.pendingBits(),
                  (nbytes * 8) % cfg.windowBits);
    }
}

// ------------------------------------------------ defect detection

TEST(Detection, RepetitionCutoffBoundaryIsExact)
{
    // H = 1, a = 20 => cutoff 21: a 20-bit run passes, 21 fails.
    StreamingHealthConfig cfg;
    cfg.windowBits = 1024;
    cfg.alphaExponent = 20;

    auto planted = [&](int run_bits) {
        // Alternating bits, then run_bits of ones, then alternating
        // again. 0x55 read LSB-first is 1,0,...,0,1,0 — it ends in a
        // zero, so the planted 0xFF run is not extended by its
        // neighbours.
        std::vector<uint8_t> bytes(cfg.windowBits / 8, 0x55);
        for (int i = 0; i < run_bits / 8; ++i)
            bytes[8 + i] = 0xFF;
        // Remaining run bits in the next byte, LSB-first; the upper
        // bits come from 0xAA so the bit right after the run is 0.
        int rem = run_bits % 8;
        if (rem)
            bytes[8 + run_bits / 8] =
                static_cast<uint8_t>(0xAA << rem | ((1 << rem) - 1));
        std::vector<HealthWindowResult> windows = runAll(cfg, bytes);
        EXPECT_EQ(windows.size(), 1u);
        return windows.empty() ? HealthWindowResult{} : windows[0];
    };

    HealthWindowResult below = planted(20);
    EXPECT_FALSE(below.rctFailed);
    EXPECT_EQ(below.maxRun, 20u);
    HealthWindowResult at = planted(21);
    EXPECT_TRUE(at.rctFailed);
    EXPECT_GE(at.maxRun, 21u);
}

TEST(Detection, StuckSourceFailsImmediately)
{
    StreamingHealthConfig cfg;
    cfg.windowBits = 1024;
    cfg.alphaExponent = 40;
    std::vector<uint8_t> stuck(cfg.windowBits / 8, 0x00);
    std::vector<HealthWindowResult> windows = runAll(cfg, stuck);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_TRUE(windows[0].rctFailed);
    EXPECT_TRUE(windows[0].aptFailed);
    EXPECT_LT(windows[0].minP(), 1e-9);
}

TEST(Detection, BiasedSourceTripsAptAndMonobit)
{
    // P(one) = 0.9: far past the H = 1 APT cutoff and a monobit
    // p-value that underflows, while individual runs stay short
    // enough that RCT at a = 40 may or may not fire.
    StreamingHealthConfig cfg;
    cfg.windowBits = 8192;
    cfg.alphaExponent = 40;
    Xoshiro256pp rng(31);
    std::vector<uint8_t> biased(cfg.windowBits / 8, 0);
    for (auto &byte : biased) {
        for (int b = 0; b < 8; ++b)
            byte |= static_cast<uint8_t>(rng.bernoulli(0.9)) << b;
    }
    std::vector<HealthWindowResult> windows = runAll(cfg, biased);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_TRUE(windows[0].aptFailed);
    EXPECT_LT(windows[0].monobitP, 1e-9);
}

TEST(Detection, HealthyStreamStaysCleanAtServiceAlpha)
{
    // 1 MiB of good randomness through the service-default a = 40
    // cutoffs: no continuous-test failure and no p-value below the
    // service cutoff. (At a = 20 the bit-granularity RCT would be
    // expected to fire on a stream this long — that is why the
    // service default is 40.)
    StreamingHealthConfig cfg;
    cfg.alphaExponent = 40;
    std::vector<uint8_t> bytes = randomBytes(1 << 20, 37);
    std::vector<HealthWindowResult> windows = runAll(cfg, bytes);
    ASSERT_EQ(windows.size(), (bytes.size() * 8) / cfg.windowBits);
    for (const HealthWindowResult &window : windows) {
        EXPECT_FALSE(window.rctFailed);
        EXPECT_FALSE(window.aptFailed);
        EXPECT_GT(window.minP(), 1e-9);
    }
}

} // anonymous namespace
} // namespace quac::nist

/**
 * @file
 * Tests for igamc/igam/normalCdf against known values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hh"
#include "nist/special.hh"

namespace quac::nist
{
namespace
{

TEST(Igamc, BoundaryValues)
{
    EXPECT_DOUBLE_EQ(igamc(1.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(igam(1.0, 0.0), 0.0);
}

TEST(Igamc, ExponentialSpecialCase)
{
    // Q(1, x) = exp(-x).
    for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0})
        EXPECT_NEAR(igamc(1.0, x), std::exp(-x), 1e-12) << "x=" << x;
}

TEST(Igamc, HalfIntegerViaErfc)
{
    // Q(1/2, x) = erfc(sqrt(x)).
    for (double x : {0.25, 1.0, 2.25, 4.0})
        EXPECT_NEAR(igamc(0.5, x), std::erfc(std::sqrt(x)), 1e-12)
            << "x=" << x;
}

TEST(Igamc, ChiSquaredRecurrence)
{
    // Q(a+1, x) = Q(a, x) + x^a e^-x / Gamma(a+1).
    for (double a : {1.0, 2.5, 7.0}) {
        for (double x : {0.5, 3.0, 9.0}) {
            double lhs = igamc(a + 1.0, x);
            double rhs = igamc(a, x) +
                         std::exp(a * std::log(x) - x -
                                  std::lgamma(a + 1.0));
            EXPECT_NEAR(lhs, rhs, 1e-12) << "a=" << a << " x=" << x;
        }
    }
}

TEST(Igamc, ComplementsSumToOne)
{
    for (double a : {0.5, 1.0, 3.5, 16.0, 128.0}) {
        for (double x : {0.1, 1.0, 4.0, 20.0, 150.0}) {
            EXPECT_NEAR(igam(a, x) + igamc(a, x), 1.0, 1e-10)
                << "a=" << a << " x=" << x;
        }
    }
}

TEST(Igamc, MonotoneDecreasingInX)
{
    double prev = 1.0;
    for (double x = 0.0; x < 30.0; x += 0.5) {
        double q = igamc(4.0, x);
        EXPECT_LE(q, prev + 1e-15);
        prev = q;
    }
}

TEST(Igamc, RejectsBadArguments)
{
    EXPECT_THROW(igamc(0.0, 1.0), PanicError);
    EXPECT_THROW(igamc(1.0, -1.0), PanicError);
}

TEST(NormalCdf, KnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-15);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447460685429, 1e-12);
    EXPECT_NEAR(normalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
    EXPECT_NEAR(normalCdf(3.0), 0.9986501019683699, 1e-12);
}

} // anonymous namespace
} // namespace quac::nist

/**
 * @file
 * Tests for the SP 800-22 battery: known-answer examples from the
 * specification, pass/fail behaviour on good and bad generators, and
 * p-value sanity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "nist/special.hh"
#include "nist/sts.hh"

namespace quac::nist
{
namespace
{

Bitstream
randomBits(size_t n, uint64_t seed)
{
    Xoshiro256pp rng(seed);
    Bitstream bits;
    for (size_t i = 0; i < n; i += 64)
        bits.appendWord(rng.next(), std::min<size_t>(64, n - i));
    return bits;
}

Bitstream
biasedBits(size_t n, double p, uint64_t seed)
{
    Xoshiro256pp rng(seed);
    Bitstream bits;
    for (size_t i = 0; i < n; ++i)
        bits.append(rng.bernoulli(p));
    return bits;
}

// ---------------------------------------------------------------
// Known-answer examples from SP 800-22.
// ---------------------------------------------------------------

TEST(StsKnownAnswers, MonobitExample)
{
    // Section 2.1.8: 1011010101 -> p = 0.527089.
    auto result = monobit(Bitstream::fromString("1011010101"));
    // The spec's example ignores the n >= 100 recommendation; relax
    // it by replicating the example check at the formula level.
    Bitstream bits = Bitstream::fromString("1011010101");
    double s = 2.0 * bits.popcount() - 10.0;
    double p = std::erfc(std::fabs(s) / std::sqrt(10.0) / M_SQRT2);
    EXPECT_NEAR(p, 0.527089, 1e-6);
    EXPECT_FALSE(result.applicable) << "short input flagged";
}

TEST(StsKnownAnswers, FrequencyBlockFormulaExample)
{
    // Section 2.2.8: 0110011010 with M = 3 gives chi2 = 1, and
    // p = igamc(3/2, 1/2) = 0.801252.
    EXPECT_NEAR(igamc(1.5, 0.5), 0.801252, 1e-6);
}

TEST(StsKnownAnswers, RunsFormulaExample)
{
    // Section 2.3.8: 1001101011 -> pi = 0.6, V = 7, p = 0.147232.
    double pi = 0.6;
    double v = 7.0;
    double n = 10.0;
    double p = std::erfc(std::fabs(v - 2.0 * n * pi * (1 - pi)) /
                         (2.0 * std::sqrt(2.0 * n) * pi * (1 - pi)));
    EXPECT_NEAR(p, 0.147232, 1e-6);
}

TEST(StsKnownAnswers, CumulativeSumsExample)
{
    // Section 2.13.8: 1011010111 -> forward p-value = 0.4116588.
    Bitstream bits = Bitstream::fromString("1011010111");
    // The implementation requires n >= 100; check the formula core
    // by scaling the example through a direct computation instead.
    int64_t sum = 0;
    int64_t z = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
        sum += bits[i] ? 1 : -1;
        z = std::max<int64_t>(z, std::llabs(sum));
    }
    EXPECT_EQ(z, 4);
}

// ---------------------------------------------------------------
// Battery behaviour on good and bad generators.
// ---------------------------------------------------------------

class StsBattery : public ::testing::Test
{
  protected:
    static constexpr size_t kN = 1u << 20;
};

TEST_F(StsBattery, GoodGeneratorPassesAllFifteen)
{
    Bitstream bits = randomBits(kN, 20240601);
    auto results = runAll(bits);
    ASSERT_EQ(results.size(), 15u);
    for (const auto &result : results) {
        EXPECT_TRUE(result.applicable) << result.name << ": "
                                       << result.note;
        EXPECT_TRUE(result.passed()) << result.name << " min p = "
                                     << result.minP();
    }
}

TEST_F(StsBattery, NamesMatchTable1Order)
{
    Bitstream bits = randomBits(1u << 17, 3);
    auto results = runAll(bits);
    const auto &names = testNames();
    ASSERT_EQ(results.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(results[i].name, names[i]);
}

TEST_F(StsBattery, BiasedGeneratorFailsMonobit)
{
    Bitstream bits = biasedBits(1u << 17, 0.52, 7);
    EXPECT_FALSE(monobit(bits).passed());
    EXPECT_FALSE(frequencyWithinBlock(bits).passed());
    EXPECT_FALSE(cumulativeSums(bits).passed());
}

TEST_F(StsBattery, AlternatingFailsRuns)
{
    Bitstream bits;
    for (size_t i = 0; i < (1u << 16); ++i)
        bits.append(i % 2);
    EXPECT_TRUE(monobit(bits).passed()) << "perfectly balanced";
    EXPECT_FALSE(runs(bits).passed()) << "far too many runs";
    EXPECT_FALSE(serial(bits).passed());
    EXPECT_FALSE(approximateEntropy(bits).passed());
}

TEST_F(StsBattery, ConstantFailsEverything)
{
    Bitstream bits(1u << 16); // all zeros
    EXPECT_FALSE(monobit(bits).passed());
    EXPECT_FALSE(runs(bits).passed());
    EXPECT_FALSE(longestRunOfOnes(bits).passed());
    EXPECT_FALSE(binaryMatrixRank(bits).passed());
}

TEST_F(StsBattery, PeriodicPatternFailsSpectralTests)
{
    // Period-8 pattern: strong spectral line and template bias.
    Bitstream bits;
    for (size_t i = 0; i < (1u << 16); ++i)
        bits.append((i % 8) < 4);
    EXPECT_FALSE(dft(bits).passed());
    EXPECT_FALSE(serial(bits).passed());
}

TEST_F(StsBattery, LowComplexityFailsLinearComplexity)
{
    // LFSR x^8 + x^4 + x^3 + x^2 + 1 output: linear complexity 8,
    // catastrophically non-random for the LC test.
    std::vector<uint8_t> state = {1, 0, 0, 0, 0, 0, 0, 0};
    Bitstream bits;
    for (size_t i = 0; i < 200000; ++i) {
        uint8_t next = state[7] ^ state[3] ^ state[2] ^ state[1];
        bits.append(state[7]);
        for (int j = 7; j > 0; --j)
            state[j] = state[j - 1];
        state[0] = next;
    }
    EXPECT_FALSE(linearComplexityTest(bits).passed());
}

TEST_F(StsBattery, PValuesRoughlyUniform)
{
    // Monobit p-values across independent random streams should be
    // roughly uniform: the sub-alpha fraction at alpha = 0.05 must
    // be near 5%.
    int below = 0;
    const int streams = 200;
    for (int s = 0; s < streams; ++s) {
        Bitstream bits = randomBits(1u << 12, 1000 + s);
        below += monobit(bits).minP() < 0.05;
    }
    EXPECT_GT(below, 0);
    EXPECT_LT(below, 30);
}

TEST_F(StsBattery, ResultHelpers)
{
    TestResult result;
    result.name = "x";
    result.pValues = {0.5, 0.002, 0.9};
    EXPECT_TRUE(result.passed(0.001));
    EXPECT_FALSE(result.passed(0.01));
    EXPECT_DOUBLE_EQ(result.minP(), 0.002);
    EXPECT_NEAR(result.meanP(), (0.5 + 0.002 + 0.9) / 3.0, 1e-12);

    TestResult empty;
    EXPECT_FALSE(empty.passed());
    EXPECT_DOUBLE_EQ(empty.minP(), 1.0);
    EXPECT_DOUBLE_EQ(empty.meanP(), 0.0);
}

TEST_F(StsBattery, ShortInputsReportNotApplicable)
{
    Bitstream bits = randomBits(64, 1);
    EXPECT_FALSE(monobit(bits).applicable);
    EXPECT_FALSE(maurersUniversal(bits).applicable);
    EXPECT_FALSE(randomExcursions(bits).applicable);
    EXPECT_FALSE(binaryMatrixRank(bits).applicable);
}

TEST_F(StsBattery, ExcursionTestsNeedEnoughCycles)
{
    // A strongly drifting sequence produces almost no zero
    // crossings; the excursion tests must flag inapplicability
    // rather than emit bogus p-values.
    Bitstream bits = biasedBits(150000, 0.6, 5);
    auto result = randomExcursions(bits);
    EXPECT_FALSE(result.applicable);
    EXPECT_FALSE(randomExcursionsVariant(bits).applicable);
}

} // anonymous namespace
} // namespace quac::nist

/**
 * @file
 * Tests for aperiodic template enumeration.
 */

#include <gtest/gtest.h>

#include <set>

#include "nist/templates.hh"

namespace quac::nist
{
namespace
{

TEST(Templates, CountsMatchUnborderedWordSequence)
{
    // Numbers of unbordered binary words: 2, 2, 4, 6, 12, 20, 40,
    // 74, 148 for lengths 1..9. NIST's m=9 template file has exactly
    // 148 entries.
    const std::vector<size_t> expected = {2, 2, 4, 6, 12, 20, 40, 74,
                                          148};
    for (unsigned m = 1; m <= 9; ++m)
        EXPECT_EQ(aperiodicTemplates(m).size(), expected[m - 1])
            << "m=" << m;
}

TEST(Templates, KnownAperiodicExamples)
{
    // "000000001" (LSB-first: one at index 8) never overlaps itself.
    EXPECT_TRUE(isAperiodic(0b100000000, 9));
    // "010101010" overlaps itself at shift 2.
    EXPECT_FALSE(isAperiodic(0b010101010, 9));
    // All-ones overlaps at every shift.
    EXPECT_FALSE(isAperiodic(0b111111111, 9));
    // "011111110"? prefix 0... border check: prefix "0" vs suffix
    // "0": LSB-first 0b011111110 has bit0 = 0 and bit8 = 0 -> border.
    EXPECT_FALSE(isAperiodic(0b011111110, 9));
}

TEST(Templates, AllResultsAreAperiodic)
{
    for (unsigned m : {5u, 9u}) {
        for (uint32_t tmpl : aperiodicTemplates(m))
            EXPECT_TRUE(isAperiodic(tmpl, m));
    }
}

TEST(Templates, ResultsUniqueAndInRange)
{
    auto templates = aperiodicTemplates(9);
    std::set<uint32_t> unique(templates.begin(), templates.end());
    EXPECT_EQ(unique.size(), templates.size());
    for (uint32_t tmpl : templates)
        EXPECT_LT(tmpl, 1u << 9);
}

TEST(Templates, ComplementClosure)
{
    // Bitwise complement of an unbordered word is unbordered.
    for (uint32_t tmpl : aperiodicTemplates(9)) {
        uint32_t complement = (~tmpl) & ((1u << 9) - 1);
        EXPECT_TRUE(isAperiodic(complement, 9));
    }
}

} // anonymous namespace
} // namespace quac::nist

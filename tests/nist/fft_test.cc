/**
 * @file
 * Tests for the radix-2 and Bluestein DFTs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hh"
#include "common/rng.hh"
#include "nist/fft.hh"

namespace quac::nist
{
namespace
{

using Complex = std::complex<double>;

/** Naive O(n^2) DFT for cross-checking. */
std::vector<Complex>
naiveDft(const std::vector<Complex> &input)
{
    size_t n = input.size();
    std::vector<Complex> out(n, {0.0, 0.0});
    for (size_t k = 0; k < n; ++k) {
        for (size_t t = 0; t < n; ++t) {
            double angle = -2.0 * M_PI * static_cast<double>(k * t) /
                           static_cast<double>(n);
            out[k] += input[t] * Complex(std::cos(angle),
                                         std::sin(angle));
        }
    }
    return out;
}

std::vector<Complex>
randomSignal(size_t n, uint64_t seed)
{
    Xoshiro256pp rng(seed);
    std::vector<Complex> signal(n);
    for (auto &s : signal)
        s = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    return signal;
}

TEST(Fft, ImpulseIsFlat)
{
    std::vector<Complex> data(16, {0.0, 0.0});
    data[0] = {1.0, 0.0};
    fftRadix2(data);
    for (const auto &v : data) {
        EXPECT_NEAR(v.real(), 1.0, 1e-12);
        EXPECT_NEAR(v.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, MatchesNaiveDft)
{
    auto signal = randomSignal(64, 7);
    auto expected = naiveDft(signal);
    auto actual = signal;
    fftRadix2(actual);
    for (size_t k = 0; k < signal.size(); ++k)
        EXPECT_NEAR(std::abs(actual[k] - expected[k]), 0.0, 1e-9);
}

TEST(Fft, RoundTripInverse)
{
    auto signal = randomSignal(128, 9);
    auto data = signal;
    fftRadix2(data);
    fftRadix2(data, true);
    for (size_t i = 0; i < signal.size(); ++i) {
        EXPECT_NEAR(std::abs(data[i] / 128.0 - signal[i]), 0.0, 1e-10)
            << "index " << i;
    }
}

TEST(Fft, RejectsNonPowerOfTwo)
{
    std::vector<Complex> data(12, {0.0, 0.0});
    EXPECT_THROW(fftRadix2(data), PanicError);
}

TEST(Fft, ParsevalHolds)
{
    auto signal = randomSignal(256, 21);
    double time_energy = 0.0;
    for (const auto &s : signal)
        time_energy += std::norm(s);
    auto data = signal;
    fftRadix2(data);
    double freq_energy = 0.0;
    for (const auto &s : data)
        freq_energy += std::norm(s);
    EXPECT_NEAR(freq_energy / 256.0, time_energy, 1e-8);
}

TEST(Bluestein, MatchesNaiveDftOddSize)
{
    for (size_t n : {3u, 5u, 12u, 33u, 100u}) {
        auto signal = randomSignal(n, 1000 + n);
        auto expected = naiveDft(signal);
        auto actual = dftAnyLength(signal);
        ASSERT_EQ(actual.size(), n);
        for (size_t k = 0; k < n; ++k) {
            EXPECT_NEAR(std::abs(actual[k] - expected[k]), 0.0, 1e-8)
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(Bluestein, PowerOfTwoFastPathMatches)
{
    auto signal = randomSignal(64, 5);
    auto via_any = dftAnyLength(signal);
    auto direct = signal;
    fftRadix2(direct);
    for (size_t k = 0; k < signal.size(); ++k)
        EXPECT_NEAR(std::abs(via_any[k] - direct[k]), 0.0, 1e-10);
}

} // anonymous namespace
} // namespace quac::nist

/**
 * @file
 * Tests for GF(2) matrix rank.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "nist/matrix_rank.hh"

namespace quac::nist
{
namespace
{

TEST(Gf2Rank, Identity)
{
    std::vector<uint64_t> rows(8);
    for (unsigned i = 0; i < 8; ++i)
        rows[i] = uint64_t{1} << i;
    EXPECT_EQ(gf2Rank(rows, 8), 8u);
}

TEST(Gf2Rank, ZeroMatrix)
{
    EXPECT_EQ(gf2Rank(std::vector<uint64_t>(8, 0), 8), 0u);
}

TEST(Gf2Rank, DuplicateRows)
{
    std::vector<uint64_t> rows = {0b101, 0b101, 0b010};
    EXPECT_EQ(gf2Rank(rows, 3), 2u);
}

TEST(Gf2Rank, LinearCombination)
{
    // Row 2 = row 0 XOR row 1.
    std::vector<uint64_t> rows = {0b0011, 0b0101, 0b0110, 0b1000};
    EXPECT_EQ(gf2Rank(rows, 4), 3u);
}

TEST(Gf2Rank, FullRankUpperTriangular)
{
    std::vector<uint64_t> rows(32);
    for (unsigned i = 0; i < 32; ++i)
        rows[i] = ~uint64_t{0} << i;
    EXPECT_EQ(gf2Rank(rows, 32), 32u);
}

TEST(Gf2Rank, RandomMatrixDistribution)
{
    // Random 32x32 GF(2) matrices have rank 32 w.p. ~0.2888 and rank
    // 31 w.p. ~0.5776 (the constants the rank test relies on).
    Xoshiro256pp rng(11);
    int full = 0;
    int minus1 = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        std::vector<uint64_t> rows(32);
        for (auto &r : rows)
            r = rng.next() & 0xFFFFFFFFu;
        unsigned rank = gf2Rank(std::move(rows), 32);
        full += (rank == 32);
        minus1 += (rank == 31);
    }
    EXPECT_NEAR(full / static_cast<double>(trials), 0.2888, 0.03);
    EXPECT_NEAR(minus1 / static_cast<double>(trials), 0.5776, 0.03);
}

TEST(Gf2Rank, RejectsBadInput)
{
    EXPECT_THROW(gf2Rank(std::vector<uint64_t>(2, 0), 3), PanicError);
    EXPECT_THROW(gf2Rank(std::vector<uint64_t>(65, 0), 65), PanicError);
}

} // anonymous namespace
} // namespace quac::nist

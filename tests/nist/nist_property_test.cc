/**
 * @file
 * Parameterized property tests of the NIST battery: good generators
 * pass for every seed; defects are detected at every magnitude above
 * threshold.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "nist/sts.hh"

namespace quac::nist
{
namespace
{

Bitstream
randomBits(size_t n, uint64_t seed)
{
    Xoshiro256pp rng(seed);
    Bitstream bits;
    for (size_t i = 0; i < n; i += 64)
        bits.appendWord(rng.next(), std::min<size_t>(64, n - i));
    return bits;
}

/** Fast-test battery subset (skips the slow LC/universal tests). */
std::vector<TestResult>
quickBattery(const Bitstream &bits)
{
    return {monobit(bits),  frequencyWithinBlock(bits),
            runs(bits),     longestRunOfOnes(bits),
            serial(bits),   approximateEntropy(bits),
            cumulativeSums(bits)};
}

class GoodGeneratorSeeds : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GoodGeneratorSeeds, QuickBatteryPasses)
{
    Bitstream bits = randomBits(1u << 17, GetParam());
    for (const auto &result : quickBattery(bits)) {
        EXPECT_TRUE(result.passedOrInapplicable())
            << result.name << " p=" << result.minP() << " seed "
            << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoodGeneratorSeeds,
                         ::testing::Values(2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u));

class BiasDetection : public ::testing::TestWithParam<double>
{
};

TEST_P(BiasDetection, MonobitCatchesBias)
{
    double p = GetParam();
    Xoshiro256pp rng(31);
    Bitstream bits;
    for (size_t i = 0; i < (1u << 17); ++i)
        bits.append(rng.bernoulli(p));
    EXPECT_FALSE(monobit(bits).passed())
        << "bias " << p << " must fail monobit at n=128K";
    EXPECT_FALSE(cumulativeSums(bits).passed());
}

INSTANTIATE_TEST_SUITE_P(Biases, BiasDetection,
                         ::testing::Values(0.51, 0.52, 0.55, 0.60,
                                           0.45, 0.40));

class PeriodDetection : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PeriodDetection, SerialCatchesPeriodicity)
{
    unsigned period = GetParam();
    Bitstream bits;
    // Balanced square wave of the given period.
    for (size_t i = 0; i < (1u << 16); ++i)
        bits.append((i % period) < period / 2);
    EXPECT_FALSE(serial(bits).passed()) << "period " << period;
    EXPECT_FALSE(approximateEntropy(bits).passed());
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodDetection,
                         ::testing::Values(2u, 4u, 8u, 16u));

class StuckBitDetection : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(StuckBitDetection, BlockFrequencyCatchesStuckRegions)
{
    // Good stream with every Nth 4Kbit region stuck at zero — a
    // realistic failure of a TRNG with dead sense amplifiers.
    unsigned every = GetParam();
    Xoshiro256pp rng(77);
    Bitstream bits;
    size_t region = 4096;
    for (size_t r = 0; r < 64; ++r) {
        for (size_t i = 0; i < region; ++i)
            bits.append((r % every == 0) ? false : rng.bernoulli(0.5));
    }
    EXPECT_FALSE(frequencyWithinBlock(bits).passed())
        << "every=" << every;
}

INSTANTIATE_TEST_SUITE_P(Gaps, StuckBitDetection,
                         ::testing::Values(4u, 8u, 16u));

TEST(NistBattery, PassedOrInapplicableSemantics)
{
    TestResult na;
    na.name = "x";
    na.applicable = false;
    EXPECT_FALSE(na.passed());
    EXPECT_TRUE(na.passedOrInapplicable());

    TestResult failing;
    failing.name = "y";
    failing.pValues = {0.0001};
    EXPECT_FALSE(failing.passedOrInapplicable());
}

} // anonymous namespace
} // namespace quac::nist

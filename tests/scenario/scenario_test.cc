/**
 * @file
 * Tests for the deterministic scenario engine: fatal-parse
 * validation of campaign specs (mirroring core::FaultSpec's
 * reject-at-startup contract), cross-phase validation against a
 * concrete deployment, and the engine's tick-edge semantics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"
#include "core/fault_injection.hh"
#include "scenario/scenario.hh"

namespace quac::scenario
{
namespace
{

using service::EntropyService;
using service::EntropyServiceConfig;
using service::MultiChannelRefillConfig;
using service::MultiChannelRefillScheduler;
using service::Priority;

// ------------------------------------------------------- parsing

TEST(ScenarioSpec, ParsesEveryPhaseKind)
{
    ScenarioSpec spec = ScenarioSpec::parse(
        "chfail:1:10:20, drift:5:40:45:85, crowd:0:8:24:512, "
        "fault:2:bias:1024:2048:0.95");
    ASSERT_EQ(spec.phases.size(), 4u);

    EXPECT_EQ(spec.phases[0].kind, PhaseKind::ChannelFail);
    EXPECT_EQ(spec.phases[0].channel, 1u);
    EXPECT_EQ(spec.phases[0].startTick, 10u);
    EXPECT_EQ(spec.phases[0].lengthTicks, 20u);

    EXPECT_EQ(spec.phases[1].kind, PhaseKind::ThermalDrift);
    EXPECT_DOUBLE_EQ(spec.phases[1].fromC, 45.0);
    EXPECT_DOUBLE_EQ(spec.phases[1].toC, 85.0);

    EXPECT_EQ(spec.phases[2].kind, PhaseKind::FlashCrowd);
    EXPECT_EQ(spec.phases[2].clients, 24u);
    EXPECT_EQ(spec.phases[2].requestBytes, 512u);

    EXPECT_EQ(spec.phases[3].kind, PhaseKind::Fault);
    EXPECT_EQ(spec.phases[3].fault.bank, 2u);
    EXPECT_EQ(spec.phases[3].fault.mode, core::FaultMode::BiasedBits);
    EXPECT_EQ(spec.phases[3].fault.startByte, 1024u);
    EXPECT_EQ(spec.phases[3].fault.lengthBytes, 2048u);
    EXPECT_DOUBLE_EQ(spec.phases[3].fault.biasP, 0.95);

    // lastEventTick covers recovery edges; fault phases are
    // byte-addressed and do not count.
    EXPECT_EQ(spec.lastEventTick(), 45u);
    // describe() round-trips.
    ScenarioSpec again = ScenarioSpec::parse(spec.describe());
    EXPECT_EQ(again.describe(), spec.describe());
}

TEST(ScenarioSpec, EmptyStringIsAnEmptyCampaign)
{
    ScenarioSpec spec = ScenarioSpec::parse("");
    EXPECT_TRUE(spec.phases.empty());
    EXPECT_EQ(spec.lastEventTick(), 0u);
    spec.validate(1, 1); // nothing to reject
}

TEST(ScenarioSpec, MalformedPhasesAreFatal)
{
    // Unknown kind.
    EXPECT_THROW(PhaseSpec::parse("quake:0:1:2"), FatalError);
    // Wrong arity.
    EXPECT_THROW(PhaseSpec::parse("chfail:0:1"), FatalError);
    EXPECT_THROW(PhaseSpec::parse("chfail:0:1:2:3"), FatalError);
    EXPECT_THROW(PhaseSpec::parse("drift:0:10:45"), FatalError);
    EXPECT_THROW(PhaseSpec::parse("crowd:0:10"), FatalError);
    // Zero-length windows would never act.
    EXPECT_THROW(PhaseSpec::parse("chfail:0:5:0"), FatalError);
    EXPECT_THROW(PhaseSpec::parse("drift:0:0:45:85"), FatalError);
    // Empty and non-numeric fields.
    EXPECT_THROW(PhaseSpec::parse("chfail::1:2"), FatalError);
    EXPECT_THROW(PhaseSpec::parse("chfail:0:x:2"), FatalError);
    EXPECT_THROW(PhaseSpec::parse("drift:0:10:warm:85"),
                 FatalError);
    // A crowd of nobody, or of zero-byte requests.
    EXPECT_THROW(PhaseSpec::parse("crowd:0:10:0"), FatalError);
    EXPECT_THROW(PhaseSpec::parse("crowd:0:10:4:0"), FatalError);
    // Fault phases inherit FaultSpec's own fatal parsing...
    EXPECT_THROW(PhaseSpec::parse("fault:0:wobble:0:64"),
                 FatalError);
    EXPECT_THROW(PhaseSpec::parse("fault"), FatalError);
    // ...plus the campaign rule that faults must clear.
    EXPECT_THROW(PhaseSpec::parse("fault:0:fail:0:0"), FatalError);
    // Malformed lists.
    EXPECT_THROW(ScenarioSpec::parse("chfail:0:1:2,,crowd:0:4:2"),
                 FatalError);
}

// ---------------------------------------------------- validation

TEST(ScenarioSpec, ValidateRejectsOutOfRangeTargets)
{
    ScenarioSpec chfail = ScenarioSpec::parse("chfail:2:0:5");
    EXPECT_THROW(chfail.validate(2, 4), FatalError);
    chfail.validate(3, 4);

    ScenarioSpec fault = ScenarioSpec::parse("fault:4:stuck:0:64");
    EXPECT_THROW(fault.validate(2, 4), FatalError);
    fault.validate(2, 5);
}

TEST(ScenarioSpec, ValidateRejectsSameTargetOverlaps)
{
    // Two outages of one channel — including back-to-back windows,
    // whose recovery edge and failure edge would collide.
    EXPECT_THROW(
        ScenarioSpec::parse("chfail:0:0:10,chfail:0:5:10")
            .validate(2, 2),
        FatalError);
    EXPECT_THROW(
        ScenarioSpec::parse("chfail:0:0:10,chfail:0:10:5")
            .validate(2, 2),
        FatalError);
    // Different channels may overlap freely.
    ScenarioSpec::parse("chfail:0:0:10,chfail:1:5:10")
        .validate(2, 2);

    // The one module has one temperature: concurrent drifts clash.
    EXPECT_THROW(
        ScenarioSpec::parse("drift:0:10:40:60,drift:5:10:60:40")
            .validate(1, 1),
        FatalError);
    ScenarioSpec::parse("drift:0:10:40:60,drift:20:10:60:40")
        .validate(1, 1);

    // Concurrent crowds make admission accounting unattributable.
    EXPECT_THROW(
        ScenarioSpec::parse("crowd:0:10:4,crowd:9:10:4")
            .validate(1, 1),
        FatalError);

    // Stacked fault windows on one bank hide each other; the same
    // window on different banks composes.
    EXPECT_THROW(
        ScenarioSpec::parse(
            "fault:0:fail:0:128,fault:0:stuck:64:128")
            .validate(1, 1),
        FatalError);
    ScenarioSpec::parse("fault:0:fail:0:128,fault:1:stuck:0:128")
        .validate(1, 2);

    // Different kinds on the "same" index never conflict.
    ScenarioSpec::parse("chfail:0:0:10,drift:0:10:40:60,crowd:0:10:4")
        .validate(1, 1);
}

TEST(ScenarioSpec, FaultSpecsExtractsOnlyFaultPhases)
{
    ScenarioSpec spec = ScenarioSpec::parse(
        "chfail:0:0:5,fault:1:bias:0:512:0.9,fault:3:fail:128:64");
    std::vector<core::FaultSpec> faults = spec.faultSpecs();
    ASSERT_EQ(faults.size(), 2u);
    EXPECT_EQ(faults[0].bank, 1u);
    EXPECT_EQ(faults[1].bank, 3u);
    EXPECT_EQ(faults[1].mode, core::FaultMode::ReadFailure);
}

// -------------------------------------------------------- engine

/** Service + scheduler pair the engine drives. */
struct Harness
{
    std::vector<std::unique_ptr<core::SoftwareTrng>> backends;
    std::vector<core::Trng *> pool;
    std::unique_ptr<EntropyService> service;
    std::unique_ptr<MultiChannelRefillScheduler> scheduler;

    explicit Harness(size_t shards = 4, unsigned channels = 2,
                     bool admission = false)
    {
        for (size_t i = 0; i < shards; ++i) {
            backends.push_back(std::make_unique<core::SoftwareTrng>(
                2000 + i, "bank" + std::to_string(i)));
            pool.push_back(backends.back().get());
        }
        EntropyServiceConfig cfg;
        cfg.shards = shards;
        cfg.shardCapacityBytes = 1 << 10;
        cfg.refillWatermark = 1.0;
        if (admission) {
            cfg.admission.enabled = true;
            cfg.admission.interactiveSloNs = 400.0;
            cfg.admission.headroomFraction = 0.5;
            cfg.admission.maxQueuedConnects = 8;
        }
        service = std::make_unique<EntropyService>(pool, cfg);

        MultiChannelRefillConfig mcfg;
        mcfg.topology.channels = channels;
        mcfg.policy = sysperf::FairnessPolicy::Fcfs;
        mcfg.tickNs = 1.0e5;
        mcfg.seed = 17;
        scheduler = std::make_unique<MultiChannelRefillScheduler>(
            *service,
            std::vector<sysperf::WorkloadProfile>(
                channels, {"idle", 0.0, 100.0}),
            mcfg);
    }
};

TEST(ScenarioEngine, ValidatesSpecAgainstDeployment)
{
    Harness harness(4, 2);
    EXPECT_THROW(ScenarioEngine(*harness.service,
                                *harness.scheduler,
                                ScenarioSpec::parse("chfail:2:0:5")),
                 FatalError)
        << "channel 2 of 2";
    EXPECT_THROW(
        ScenarioEngine(*harness.service, *harness.scheduler,
                       ScenarioSpec::parse("fault:4:stuck:0:64")),
        FatalError)
        << "bank 4 of 4";
    EXPECT_THROW(
        ScenarioEngine(*harness.service, *harness.scheduler,
                       ScenarioSpec::parse("drift:0:10:40:80")),
        FatalError)
        << "drift without a thermal governor";
}

TEST(ScenarioEngine, AppliesChannelFailAndRecoverEdges)
{
    Harness harness(4, 2);
    ScenarioEngine engine(*harness.service, *harness.scheduler,
                          ScenarioSpec::parse("chfail:0:2:3"));
    for (uint64_t t = 0; t <= 6; ++t) {
        engine.beginTick(t);
        bool down = t >= 2 && t < 5;
        EXPECT_EQ(harness.scheduler->channelFailed(0), down)
            << "tick " << t;
        harness.scheduler->run(1);
    }
    EXPECT_EQ(engine.counters().channelFailures, 1u);
    EXPECT_EQ(engine.counters().channelRecoveries, 1u);
    EXPECT_EQ(harness.scheduler->failovers(), 2u);
    EXPECT_EQ(harness.scheduler->failbacks(), 2u);
}

TEST(ScenarioEngine, TicksMustBeContiguous)
{
    Harness harness;
    ScenarioEngine engine(*harness.service, *harness.scheduler,
                          ScenarioSpec::parse("chfail:0:2:3"));
    engine.beginTick(0);
    EXPECT_THROW(engine.beginTick(2), PanicError);
}

TEST(ScenarioEngine, FlashCrowdSpreadsConnectsAcrossTheWindow)
{
    Harness harness;
    // 6 clients over 4 ticks: 2, 2, 1, 1 (remainder lands early).
    ScenarioEngine engine(*harness.service, *harness.scheduler,
                          ScenarioSpec::parse("crowd:1:4:6:256"));
    std::vector<uint64_t> per_tick;
    for (uint64_t t = 0; t < 6; ++t) {
        uint64_t before = engine.counters().crowdAttempted;
        engine.beginTick(t);
        per_tick.push_back(engine.counters().crowdAttempted -
                           before);
    }
    EXPECT_EQ(per_tick,
              (std::vector<uint64_t>{0, 2, 2, 1, 1, 0}));
    // Admission is disabled in this harness: everyone connects
    // immediately and the engine owns the handles.
    EXPECT_EQ(engine.counters().crowdAdmitted, 6u);
    EXPECT_EQ(engine.counters().crowdQueued, 0u);
    ASSERT_EQ(engine.crowdClients().size(), 6u);
    EXPECT_EQ(engine.crowdClients()[0].client.name(), "crowd-0");
    EXPECT_EQ(engine.crowdClients()[5].client.name(), "crowd-5");
    EXPECT_EQ(engine.crowdClients()[2].client.priority(),
              Priority::Bulk);
}

TEST(ScenarioEngine, CrowdClientsCarryPerPhaseRequestSizes)
{
    Harness harness;
    // Two non-overlapping crowds with different request sizes: the
    // engine tags each connected client with its own phase's size,
    // so the driver does not flatten every crowd to one number.
    ScenarioEngine engine(
        *harness.service, *harness.scheduler,
        ScenarioSpec::parse("crowd:0:1:2:64,crowd:3:1:2:512"));
    for (uint64_t t = 0; t < 5; ++t)
        engine.beginTick(t);
    ASSERT_EQ(engine.crowdClients().size(), 4u);
    EXPECT_EQ(engine.crowdClients()[0].requestBytes, 64u);
    EXPECT_EQ(engine.crowdClients()[1].requestBytes, 64u);
    EXPECT_EQ(engine.crowdClients()[2].requestBytes, 512u);
    EXPECT_EQ(engine.crowdClients()[3].requestBytes, 512u);
    EXPECT_EQ(engine.crowdClients()[3].client.name(), "crowd-3");
}

TEST(ScenarioEngine, CrowdFlowsThroughAdmissionGateWhenThin)
{
    Harness harness(1, 1, /*admission=*/true);
    // Inflate the lone shard's tail so the gate is closed when the
    // burst arrives.
    EntropyService::Client probe = harness.service->connect(
        "probe", Priority::Interactive, 0);
    std::vector<uint8_t> out(256);
    for (int i = 0; i < 4; ++i)
        probe.requestAt(out.data(), out.size(), 0.0);
    ASSERT_FALSE(harness.service->admissionHeadroom());

    ScenarioEngine engine(*harness.service, *harness.scheduler,
                          ScenarioSpec::parse("crowd:0:1:3:64"));
    engine.beginTick(0);
    EXPECT_EQ(engine.counters().crowdAttempted, 3u);
    EXPECT_EQ(engine.counters().crowdQueued, 3u);
    EXPECT_EQ(engine.counters().crowdAdmitted, 0u);

    // Restore headroom: refill, then age the misses out with cheap
    // hits. The engine adopts queue releases on later ticks.
    harness.service->refillBelowWatermark();
    for (int i = 0; i < 4; ++i)
        probe.requestAt(out.data(), 16, 1.0e12 + 1.0e3 * i);
    ASSERT_TRUE(harness.service->admissionHeadroom());
    for (uint64_t t = 1; t < 12 && engine.crowdClients().size() < 3;
         ++t) {
        engine.beginTick(t);
    }
    EXPECT_EQ(engine.counters().crowdAdmitted, 3u);
    EXPECT_EQ(engine.crowdClients().size(), 3u);
    EXPECT_EQ(harness.service->admissionStats().queuedNow, 0u);
    // Adoption from the queue preserves the phase's request size.
    for (const auto &crowd : engine.crowdClients())
        EXPECT_EQ(crowd.requestBytes, 64u);
}

TEST(ScenarioEngine, CampaignsReplayDeterministically)
{
    auto run = []() {
        Harness harness(4, 2);
        ScenarioEngine engine(
            *harness.service, *harness.scheduler,
            ScenarioSpec::parse("chfail:0:2:3,crowd:1:4:6:256"));
        for (uint64_t t = 0; t < 8; ++t) {
            engine.beginTick(t);
            harness.scheduler->run(1);
        }
        std::vector<uint64_t> levels;
        for (size_t s = 0; s < 4; ++s)
            levels.push_back(harness.service->level(s));
        return std::make_pair(engine.counters(), levels);
    };
    auto [counters_a, levels_a] = run();
    auto [counters_b, levels_b] = run();
    EXPECT_EQ(counters_a.channelFailures,
              counters_b.channelFailures);
    EXPECT_EQ(counters_a.crowdAttempted, counters_b.crowdAttempted);
    EXPECT_EQ(counters_a.crowdAdmitted, counters_b.crowdAdmitted);
    EXPECT_EQ(levels_a, levels_b);
}

} // anonymous namespace
} // namespace quac::scenario

/**
 * @file
 * Tests for the deterministic random sources.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace quac
{
namespace
{

TEST(SplitMix64, ProducesKnownSequenceProperties)
{
    uint64_t state = 0;
    uint64_t first = splitmix64(state);
    uint64_t second = splitmix64(state);
    EXPECT_NE(first, second);

    uint64_t state2 = 0;
    EXPECT_EQ(splitmix64(state2), first) << "same seed, same stream";
}

TEST(Philox, SameCounterSameBlock)
{
    Philox4x32 rng(42);
    auto a = rng.block(1, 2, 3, 4);
    auto b = rng.block(1, 2, 3, 4);
    EXPECT_EQ(a, b);
}

TEST(Philox, DifferentCountersDiffer)
{
    Philox4x32 rng(42);
    auto a = rng.block(1, 2, 3, 4);
    auto b = rng.block(1, 2, 3, 5);
    EXPECT_NE(a, b);
}

TEST(Philox, DifferentKeysDiffer)
{
    Philox4x32 rng_a(42);
    Philox4x32 rng_b(43);
    EXPECT_NE(rng_a.block(0, 0, 0, 0), rng_b.block(0, 0, 0, 0));
}

TEST(Philox, UniformInUnitInterval)
{
    Philox4x32 rng(7);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform({static_cast<uint32_t>(i), 0, 0, 0});
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Philox, GaussianMoments)
{
    Philox4x32 rng(99);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian({static_cast<uint32_t>(i), 1, 2, 3});
        sum += g;
        sum_sq += g * g;
    }
    double mean = sum / n;
    double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Philox, BlocksMatchBlockPerCounter)
{
    Philox4x32 rng(42);
    // Sizes covering the vector body, remainder, and scalar-only.
    for (size_t n : {37u, 16u, 3u, 1u}) {
        std::vector<uint32_t> out(4 * n);
        rng.blocks({1, 2, 3, 10}, n, out.data());
        for (size_t i = 0; i < n; ++i) {
            auto expect =
                rng.block(1, 2, 3, 10 + static_cast<uint32_t>(i));
            for (unsigned lane = 0; lane < 4; ++lane)
                ASSERT_EQ(out[4 * i + lane], expect[lane])
                    << "n=" << n << " block " << i << " lane " << lane;
        }
    }
}

TEST(Philox, BlocksWrapLastLane)
{
    Philox4x32 rng(7);
    std::vector<uint32_t> out(4 * 4);
    rng.blocks({9, 8, 7, 0xFFFFFFFEu}, 4, out.data());
    auto wrapped = rng.block(9, 8, 7, 1); // 0xFFFFFFFE + 3 wraps to 1
    for (unsigned lane = 0; lane < 4; ++lane)
        EXPECT_EQ(out[4 * 3 + lane], wrapped[lane]);
}

TEST(Philox, GaussianLanesIndependent)
{
    Philox4x32 rng(5);
    double g0 = rng.gaussian({1, 2, 3, 4}, 0);
    double g1 = rng.gaussian({1, 2, 3, 4}, 1);
    EXPECT_NE(g0, g1);
}

TEST(Xoshiro, Determinism)
{
    Xoshiro256pp a(123);
    Xoshiro256pp b(123);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer)
{
    Xoshiro256pp a(123);
    Xoshiro256pp b(124);
    EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, UniformBounds)
{
    Xoshiro256pp rng(9);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Xoshiro, FillUniformMatchesNextStream)
{
    Xoshiro256pp bulk(5);
    Xoshiro256pp scalar(5);
    std::vector<float> out(101); // odd length: tail draw
    bulk.fillUniform(out.data(), out.size());
    for (size_t i = 0; i + 2 <= out.size(); i += 2) {
        uint64_t v = scalar.next();
        ASSERT_EQ(out[i],
                  (static_cast<uint32_t>(v >> 32) >> 8) * 0x1p-24f);
        ASSERT_EQ(out[i + 1],
                  (static_cast<uint32_t>(v) >> 8) * 0x1p-24f);
    }
    uint64_t tail = scalar.next();
    EXPECT_EQ(out.back(),
              (static_cast<uint32_t>(tail >> 32) >> 8) * 0x1p-24f);
}

TEST(Xoshiro, FillUniformBoundsAndMean)
{
    Xoshiro256pp rng(29);
    std::vector<float> out(100000);
    rng.fillUniform(out.data(), out.size());
    double sum = 0.0;
    for (float u : out) {
        ASSERT_GE(u, 0.0f);
        ASSERT_LT(u, 1.0f);
        sum += u;
    }
    EXPECT_NEAR(sum / static_cast<double>(out.size()), 0.5, 0.01);
}

TEST(Xoshiro, UniformIntInBound)
{
    Xoshiro256pp rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = rng.uniformInt(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u) << "all residues should appear";
}

TEST(Xoshiro, GaussianMoments)
{
    Xoshiro256pp rng(77);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    double mean = sum / n;
    double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro, GaussianScaled)
{
    Xoshiro256pp rng(31);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Xoshiro, BernoulliFrequency)
{
    Xoshiro256pp rng(13);
    int count = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        count += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(count) / n, 0.3, 0.01);
}

} // anonymous namespace
} // namespace quac

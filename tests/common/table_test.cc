/**
 * @file
 * Tests for the table printer.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/table.hh"

namespace quac
{
namespace
{

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2.5"});
    std::string out = t.str();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 2.5   |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(1234.5678, 3), "1234.568");
}

TEST(Table, EmptyTableStillRenders)
{
    Table t({"h"});
    std::string out = t.str();
    EXPECT_NE(out.find("| h |"), std::string::npos);
}

} // anonymous namespace
} // namespace quac

/**
 * @file
 * Tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/error.hh"

namespace quac
{
namespace
{

CliArgs
parse(std::vector<const char *> argv, std::vector<std::string> known)
{
    argv.insert(argv.begin(), "prog");
    return CliArgs(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(CliArgs, EmptyIsAllDefaults)
{
    CliArgs args = parse({}, {"full"});
    EXPECT_FALSE(args.has("full"));
    EXPECT_FALSE(args.getBool("full"));
    EXPECT_EQ(args.getInt("full", 42), 42);
}

TEST(CliArgs, BooleanPresence)
{
    CliArgs args = parse({"--full"}, {"full"});
    EXPECT_TRUE(args.getBool("full"));
}

TEST(CliArgs, EqualsForm)
{
    CliArgs args = parse({"--segments=128"}, {"segments"});
    EXPECT_EQ(args.getInt("segments", 0), 128);
}

TEST(CliArgs, SpaceForm)
{
    CliArgs args = parse({"--seed", "99"}, {"seed"});
    EXPECT_EQ(args.getUint("seed", 0), 99u);
}

TEST(CliArgs, DoubleAndString)
{
    CliArgs args = parse({"--temp=65.5", "--name", "M13"},
                         {"temp", "name"});
    EXPECT_DOUBLE_EQ(args.getDouble("temp", 0.0), 65.5);
    EXPECT_EQ(args.getString("name"), "M13");
}

TEST(CliArgs, UnknownFlagIsFatal)
{
    EXPECT_THROW(parse({"--bogus"}, {"full"}), FatalError);
}

TEST(CliArgs, PositionalIsFatal)
{
    EXPECT_THROW(parse({"positional"}, {"full"}), FatalError);
}

} // anonymous namespace
} // namespace quac

/**
 * @file
 * Tests for the Bitstream container.
 */

#include <gtest/gtest.h>

#include "common/bitstream.hh"
#include "common/error.hh"

namespace quac
{
namespace
{

TEST(Bitstream, StartsEmpty)
{
    Bitstream bs;
    EXPECT_TRUE(bs.empty());
    EXPECT_EQ(bs.size(), 0u);
}

TEST(Bitstream, SizedConstructorZeroFilled)
{
    Bitstream bs(130);
    EXPECT_EQ(bs.size(), 130u);
    EXPECT_EQ(bs.popcount(), 0u);
}

TEST(Bitstream, AppendAndIndex)
{
    Bitstream bs;
    bs.append(true);
    bs.append(false);
    bs.append(true);
    ASSERT_EQ(bs.size(), 3u);
    EXPECT_TRUE(bs[0]);
    EXPECT_FALSE(bs[1]);
    EXPECT_TRUE(bs[2]);
}

TEST(Bitstream, AppendAcrossWordBoundary)
{
    Bitstream bs;
    for (int i = 0; i < 130; ++i)
        bs.append(i % 2 == 0);
    ASSERT_EQ(bs.size(), 130u);
    EXPECT_TRUE(bs[0]);
    EXPECT_FALSE(bs[63]);
    EXPECT_TRUE(bs[64]);
    EXPECT_TRUE(bs[128]);
    EXPECT_EQ(bs.popcount(), 65u);
}

TEST(Bitstream, AppendWordsAlignedFastPath)
{
    // A word-aligned bulk append must match appending bit by bit.
    uint64_t words[3] = {0x0123456789abcdefULL, ~uint64_t{0}, 0x5aULL};
    Bitstream bulk;
    bulk.appendWords(words, 64 * 2 + 7);

    Bitstream reference;
    for (size_t i = 0; i < 64 * 2 + 7; ++i)
        reference.append((words[i / 64] >> (i % 64)) & 1);
    EXPECT_EQ(bulk, reference);
}

TEST(Bitstream, AppendWordsUnalignedSplicesAcrossBoundary)
{
    uint64_t words[2] = {0xfedcba9876543210ULL, 0x0f0f0f0f0f0f0f0fULL};
    Bitstream bulk;
    bulk.append(true);
    bulk.append(false);
    bulk.append(true);
    bulk.appendWords(words, 100);

    Bitstream reference = Bitstream::fromString("101");
    for (size_t i = 0; i < 100; ++i)
        reference.append((words[i / 64] >> (i % 64)) & 1);
    ASSERT_EQ(bulk.size(), 103u);
    EXPECT_EQ(bulk, reference);
}

TEST(Bitstream, AppendBytesPartialBits)
{
    uint8_t bytes[3] = {0b10110100, 0b01011010, 0b11111111};
    Bitstream bs;
    bs.appendBytes(bytes, 19);
    ASSERT_EQ(bs.size(), 19u);
    for (size_t i = 0; i < 19; ++i)
        EXPECT_EQ(bs[i], static_cast<bool>((bytes[i / 8] >> (i % 8)) & 1))
            << "bit " << i;
}

TEST(Bitstream, AppendWordLsbFirst)
{
    Bitstream bs;
    bs.appendWord(0b1011, 4);
    ASSERT_EQ(bs.size(), 4u);
    EXPECT_TRUE(bs[0]);
    EXPECT_TRUE(bs[1]);
    EXPECT_FALSE(bs[2]);
    EXPECT_TRUE(bs[3]);
}

TEST(Bitstream, FromString)
{
    Bitstream bs = Bitstream::fromString("0110");
    ASSERT_EQ(bs.size(), 4u);
    EXPECT_FALSE(bs[0]);
    EXPECT_TRUE(bs[1]);
    EXPECT_TRUE(bs[2]);
    EXPECT_FALSE(bs[3]);
    EXPECT_EQ(bs.toString(), "0110");
}

TEST(Bitstream, FromStringRejectsGarbage)
{
    EXPECT_THROW(Bitstream::fromString("01x0"), FatalError);
}

TEST(Bitstream, RoundTripBytes)
{
    std::vector<uint8_t> bytes = {0xde, 0xad, 0xbe, 0xef, 0x01};
    Bitstream bs = Bitstream::fromBytes(bytes);
    EXPECT_EQ(bs.size(), 40u);
    EXPECT_EQ(bs.toBytes(), bytes);
}

TEST(Bitstream, ToBytesPadsFinalByte)
{
    Bitstream bs = Bitstream::fromString("101");
    std::vector<uint8_t> bytes = bs.toBytes();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0b00000101);
}

TEST(Bitstream, SetBit)
{
    Bitstream bs(10);
    bs.set(3, true);
    EXPECT_TRUE(bs[3]);
    bs.set(3, false);
    EXPECT_FALSE(bs[3]);
}

TEST(Bitstream, Slice)
{
    Bitstream bs = Bitstream::fromString("11010011");
    Bitstream mid = bs.slice(2, 4);
    EXPECT_EQ(mid.toString(), "0100");
}

TEST(Bitstream, SliceOutOfRangePanics)
{
    Bitstream bs(8);
    EXPECT_THROW(bs.slice(4, 8), PanicError);
}

TEST(Bitstream, AppendStream)
{
    Bitstream a = Bitstream::fromString("101");
    Bitstream b = Bitstream::fromString("01");
    a.append(b);
    EXPECT_EQ(a.toString(), "10101");
}

TEST(Bitstream, Equality)
{
    EXPECT_EQ(Bitstream::fromString("1010"), Bitstream::fromString("1010"));
    EXPECT_FALSE(Bitstream::fromString("1010") ==
                 Bitstream::fromString("1011"));
    EXPECT_FALSE(Bitstream::fromString("101") ==
                 Bitstream::fromString("1010"));
}

TEST(Bitstream, ClearResets)
{
    Bitstream bs = Bitstream::fromString("111");
    bs.clear();
    EXPECT_TRUE(bs.empty());
    EXPECT_EQ(bs.popcount(), 0u);
}

TEST(Bitstream, PopcountIgnoresPadding)
{
    Bitstream bs;
    for (int i = 0; i < 70; ++i)
        bs.append(true);
    EXPECT_EQ(bs.popcount(), 70u);
}

TEST(Bitstream, OutOfRangeIndexPanics)
{
    Bitstream bs(4);
    EXPECT_THROW((void)bs[4], PanicError);
}

} // anonymous namespace
} // namespace quac

/**
 * @file
 * Behavior tests for the annotated lock types in
 * common/thread_annotations.hh: Mutex exclusion, MutexLock scoping
 * and manual unlock()/lock(), and CondVar timeout/notify wakeups.
 * The compile-time half of the contract (GUARDED_BY/REQUIRES
 * violations breaking the build) is exercised by the CI
 * clang-thread-safety job, not here — these tests pin down the
 * runtime semantics the wrappers must keep identical to the std
 * types they hold.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"

namespace quac
{
namespace
{

TEST(ThreadAnnotations, MutexProvidesExclusion)
{
    Mutex mutex;
    int counter = 0;
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&]() {
            for (int i = 0; i < 10000; ++i) {
                MutexLock lock(mutex);
                ++counter;
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    MutexLock lock(mutex);
    EXPECT_EQ(counter, 40000);
}

TEST(ThreadAnnotations, TryLockReflectsOwnership)
{
    Mutex mutex;
    ASSERT_TRUE(mutex.try_lock());
    // Contended try_lock from another thread must fail.
    bool other_got_it = true;
    std::thread prober(
        [&]() { other_got_it = mutex.try_lock(); });
    prober.join();
    EXPECT_FALSE(other_got_it);
    mutex.unlock();
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
}

TEST(ThreadAnnotations, ManualUnlockReleasesMidScope)
{
    // The drop-the-lock-across-a-blocking-call pattern
    // (EntropyService::admit): after lock.unlock() another thread
    // can take the mutex; lock.lock() re-acquires; the destructor
    // must not double-unlock.
    Mutex mutex;
    std::atomic<bool> other_held{false};
    {
        MutexLock lock(mutex);
        lock.unlock();
        std::thread other([&]() {
            MutexLock inner(mutex);
            other_held.store(true);
        });
        other.join();
        EXPECT_TRUE(other_held.load());
        lock.lock();
    }
    // Scope exit released it exactly once: it is takeable again.
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
}

TEST(ThreadAnnotations, DestructorAfterManualUnlockDoesNotUnlock)
{
    Mutex mutex;
    {
        MutexLock lock(mutex);
        lock.unlock();
        // Destructor runs with held_ == false: no second unlock on a
        // mutex this thread no longer owns.
    }
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
}

TEST(ThreadAnnotations, CondVarTimesOutWithoutNotify)
{
    Mutex mutex;
    CondVar cv;
    auto start = std::chrono::steady_clock::now();
    {
        MutexLock lock(mutex);
        cv.waitFor(mutex, std::chrono::milliseconds(10));
    }
    auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GE(elapsed, std::chrono::milliseconds(5));
    // The mutex was re-acquired across the wait and released on
    // scope exit.
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
}

TEST(ThreadAnnotations, CondVarNotifyWakesWaiter)
{
    // The auto-refill worker shape: a guarded stop flag re-checked
    // in a loop around a predicate-free timed wait.
    Mutex mutex;
    CondVar cv;
    bool stop = false;
    std::atomic<int> wakeups{0};
    std::thread waiter([&]() {
        MutexLock lock(mutex);
        while (!stop) {
            cv.waitFor(mutex, std::chrono::seconds(5));
            wakeups.fetch_add(1);
        }
    });
    // Let the waiter reach the wait, then stop it; a generous-timeout
    // wait that returns promptly proves the notify got through.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
        MutexLock lock(mutex);
        stop = true;
    }
    cv.notifyAll();
    waiter.join();
    EXPECT_GE(wakeups.load(), 1);
}

} // namespace
} // namespace quac

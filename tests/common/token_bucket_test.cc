/**
 * @file
 * Tests for the deterministic token bucket: refill over a
 * caller-supplied clock, burst bounding, the unlimited mode, refund
 * via credit(), and robustness to a non-monotonic clock.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/token_bucket.hh"

namespace quac
{
namespace
{

constexpr uint64_t kSecond = 1000000000ull;

TEST(TokenBucket, DefaultAndZeroRateAreUnlimited)
{
    TokenBucket none;
    EXPECT_TRUE(none.unlimited());
    EXPECT_TRUE(none.tryTake(1e18, 0));

    TokenBucket zero(0.0, 100.0);
    EXPECT_TRUE(zero.unlimited());
    EXPECT_TRUE(zero.tryTake(1e18, 5));
}

TEST(TokenBucket, StartsFullAndDrainsToDenial)
{
    TokenBucket bucket(1000.0, 100.0);
    EXPECT_FALSE(bucket.unlimited());
    // Burst of 100 available immediately; the clock has not moved.
    EXPECT_TRUE(bucket.tryTake(60.0, 0));
    EXPECT_TRUE(bucket.tryTake(40.0, 0));
    EXPECT_FALSE(bucket.tryTake(1.0, 0));
}

TEST(TokenBucket, RefillsAtRateBoundedByBurst)
{
    TokenBucket bucket(1000.0, 100.0);
    ASSERT_TRUE(bucket.tryTake(100.0, 0));
    // 50 ms at 1000 tokens/s = 50 tokens.
    EXPECT_FALSE(bucket.tryTake(60.0, kSecond / 20));
    EXPECT_TRUE(bucket.tryTake(50.0, kSecond / 20));
    // A long idle period refills to burst, never beyond.
    EXPECT_FALSE(bucket.tryTake(101.0, 100 * kSecond));
    EXPECT_TRUE(bucket.tryTake(100.0, 100 * kSecond));
}

TEST(TokenBucket, ZeroBurstFallsBackToOneSecondOfRate)
{
    TokenBucket bucket(250.0, 0.0);
    EXPECT_TRUE(bucket.tryTake(250.0, 0));
    EXPECT_FALSE(bucket.tryTake(1.0, 0));
}

TEST(TokenBucket, FirstCallAnchorsTheClock)
{
    TokenBucket bucket(1000.0, 10.0);
    // First call at a huge timestamp must not count as elapsed time.
    ASSERT_TRUE(bucket.tryTake(10.0, 500 * kSecond));
    EXPECT_FALSE(bucket.tryTake(1.0, 500 * kSecond));
    EXPECT_TRUE(bucket.tryTake(1.0, 500 * kSecond + kSecond / 100));
}

TEST(TokenBucket, BackwardsClockRefillsNothing)
{
    TokenBucket bucket(1000.0, 10.0);
    ASSERT_TRUE(bucket.tryTake(10.0, kSecond));
    // Clock steps backwards: no refill, and no tokens thrown away.
    EXPECT_FALSE(bucket.tryTake(1.0, kSecond / 2));
    EXPECT_TRUE(bucket.tryTake(1.0, kSecond + kSecond / 500));
}

TEST(TokenBucket, CreditRefundsBoundedByBurst)
{
    TokenBucket bucket(1000.0, 100.0);
    ASSERT_TRUE(bucket.tryTake(100.0, 0));
    // The global-cap-rejected pattern: a per-client take is undone.
    bucket.credit(30.0);
    EXPECT_TRUE(bucket.tryTake(30.0, 0));
    EXPECT_FALSE(bucket.tryTake(1.0, 0));
    // A refund can never push the level above burst.
    bucket.credit(1e9);
    EXPECT_TRUE(bucket.tryTake(100.0, 0));
    EXPECT_FALSE(bucket.tryTake(1.0, 0));
    // credit() on an unlimited bucket is a no-op.
    TokenBucket none;
    none.credit(5.0);
    EXPECT_EQ(none.tokens(), 0.0);
}

TEST(TokenBucket, HugeClockJumpSaturatesAtBurst)
{
    // A ~2^63 ns jump (clock-source switch, synthetic test clock)
    // used to compute rate * elapsed into a huge intermediate; the
    // saturation guard must land exactly on burst with no inf/NaN.
    TokenBucket bucket(1e12, 100.0);
    ASSERT_TRUE(bucket.tryTake(100.0, 0));
    uint64_t const huge = UINT64_MAX - 2;
    EXPECT_TRUE(bucket.tryTake(100.0, huge));
    EXPECT_EQ(bucket.tokens(), 0.0);
    EXPECT_FALSE(bucket.tryTake(1.0, huge));
    // The bucket keeps working at the new clock anchor.
    EXPECT_TRUE(bucket.tryTake(1.0, huge + 1));
    EXPECT_TRUE(std::isfinite(bucket.tokens()));
}

TEST(TokenBucket, ExtremeRateAndJumpStayFinite)
{
    // rate * elapsed would be ~1.8e19 * 1.8e10 ~ 3e29 tokens — far
    // past any burst. The level must clamp to burst, never inf.
    TokenBucket bucket(1.8e19, 1e6);
    ASSERT_TRUE(bucket.tryTake(1e6, 0));
    EXPECT_TRUE(bucket.tryTake(1e6, UINT64_MAX));
    EXPECT_TRUE(std::isfinite(bucket.tokens()));
    EXPECT_EQ(bucket.tokens(), 0.0);
    bucket.credit(2e6);
    EXPECT_EQ(bucket.tokens(), 1e6);
}

} // namespace
} // namespace quac

/**
 * @file
 * Tests for statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

namespace quac
{
namespace
{

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    // Sample variance with n-1 denominator: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, MergeMatchesCombined)
{
    RunningStats a;
    RunningStats b;
    RunningStats all;
    for (int i = 0; i < 50; ++i) {
        double x = std::sin(i * 0.7) * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(1.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);

    RunningStats target;
    target.merge(a);
    EXPECT_EQ(target.count(), 1u);
    EXPECT_DOUBLE_EQ(target.mean(), 1.0);
}

TEST(BinaryEntropy, Extremes)
{
    EXPECT_EQ(binaryEntropy(0.0), 0.0);
    EXPECT_EQ(binaryEntropy(1.0), 0.0);
    EXPECT_EQ(binaryEntropy(-0.1), 0.0);
    EXPECT_EQ(binaryEntropy(1.1), 0.0);
}

TEST(BinaryEntropy, Maximum)
{
    EXPECT_DOUBLE_EQ(binaryEntropy(0.5), 1.0);
}

TEST(BinaryEntropy, Symmetry)
{
    EXPECT_NEAR(binaryEntropy(0.2), binaryEntropy(0.8), 1e-12);
    EXPECT_NEAR(binaryEntropy(0.25),
                0.25 * 2 + 0.75 * std::log2(4.0 / 3.0), 1e-12);
}

TEST(ShannonEntropy, UniformCounts)
{
    EXPECT_DOUBLE_EQ(shannonEntropy({10, 10, 10, 10}), 2.0);
}

TEST(ShannonEntropy, ZeroCountsIgnored)
{
    EXPECT_DOUBLE_EQ(shannonEntropy({8, 0, 8, 0}), 1.0);
    EXPECT_DOUBLE_EQ(shannonEntropy({}), 0.0);
    EXPECT_DOUBLE_EQ(shannonEntropy({0, 0}), 0.0);
}

TEST(VectorStats, MeanAndStddev)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_EQ(stddev({}), 0.0);
}

TEST(VectorStats, Median)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_EQ(median({}), 0.0);
}

} // anonymous namespace
} // namespace quac

/**
 * @file
 * Tests for the parallelFor helper.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/error.hh"
#include "common/parallel.hh"

namespace quac
{
namespace
{

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> visits(100);
    parallelFor(0, visits.size(), [&](size_t i) {
        visits[i].fetch_add(1);
    }, 4);
    for (size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, EmptyRangeIsNoOp)
{
    parallelFor(5, 5, [](size_t) { FAIL() << "must not be called"; },
                4);
}

TEST(ParallelFor, PropagatesWorkerExceptions)
{
    // A fatal() inside a worker must surface as a catchable
    // exception in the calling thread, not std::terminate.
    EXPECT_THROW(
        parallelFor(0, 16, [](size_t i) {
            if (i == 7)
                fatal("worker failure on index %zu", i);
        }, 4),
        FatalError);

    EXPECT_THROW(
        parallelFor(0, 16, [](size_t) {
            throw std::runtime_error("plain exception");
        }, 4),
        std::runtime_error);
}

TEST(ParallelFor, SingleThreadFallbackPropagatesToo)
{
    EXPECT_THROW(
        parallelFor(0, 4, [](size_t i) {
            if (i == 2)
                fatal("serial failure");
        }, 1),
        FatalError);
}

} // anonymous namespace
} // namespace quac

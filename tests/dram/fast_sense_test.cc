/**
 * @file
 * Regression tests for the batched SIMD sensing kernel
 * (ModuleSpec::fastSense): probability agreement with the scalar
 * reference oracle, exact degenerate fast exits, bit-identical
 * guardbanded sensing, statistical fidelity of the resolved bits,
 * and second-chance eviction of the sensing caches.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "dram/module.hh"
#include "softmc/host.hh"

namespace quac::dram
{
namespace
{

ModuleSpec
specWithSense(bool fast_sense)
{
    ModuleSpec spec;
    spec.geometry = Geometry::testScale();
    spec.seed = 7;
    spec.fastSense = fast_sense;
    return spec;
}

/** Re-init a segment and run one QUAC through the command path. */
void
runQuac(DramModule &module, softmc::SoftMcHost &host, uint32_t segment,
        uint8_t pattern, std::vector<uint64_t> &row)
{
    module.bank(0).pokeSegmentPattern(segment, pattern);
    host.quac(0, segment);
    host.readOpenRowInto(0, row.data());
    host.preObeyed(0);
}

TEST(FastSense, ProbabilitiesMatchReferenceOracle)
{
    DramModule fast(specWithSense(true));
    DramModule ref(specWithSense(false));
    for (uint8_t pattern : {0b1110, 0b0110, 0b0001, 0b0000}) {
        fast.bank(0).pokeSegmentPattern(3, pattern);
        ref.bank(0).pokeSegmentPattern(3, pattern);
        std::vector<float> pf = fast.bank(0).quacProbabilities(3);
        std::vector<float> pr = ref.bank(0).quacProbabilities(3);
        ASSERT_EQ(pf.size(), pr.size());
        for (size_t b = 0; b < pf.size(); ++b) {
            ASSERT_NEAR(pf[b], pr[b], 1e-5)
                << "pattern " << int(pattern) << " bitline " << b;
        }
    }
}

TEST(FastSense, DegenerateProbabilitiesSnapExactly)
{
    DramModule fast(specWithSense(true));
    DramModule ref(specWithSense(false));
    // All-zeros / all-ones patterns put every bitline deep in a tail.
    for (uint8_t pattern : {0b0000, 0b1111}) {
        fast.bank(0).pokeSegmentPattern(5, pattern);
        ref.bank(0).pokeSegmentPattern(5, pattern);
        std::vector<float> pf = fast.bank(0).quacProbabilities(5);
        std::vector<float> pr = ref.bank(0).quacProbabilities(5);
        for (size_t b = 0; b < pf.size(); ++b) {
            if (pr[b] <= 1e-9f)
                ASSERT_EQ(pf[b], 0.0f) << "bitline " << b;
            else if (pr[b] >= 1.0f - 1e-9f)
                ASSERT_EQ(pf[b], 1.0f) << "bitline " << b;
        }
    }
}

TEST(FastSense, GuardbandedSingleRowSensingBitIdentical)
{
    // Obeyed-timing activations never touch the noise stream; the
    // fast and reference paths must agree bit for bit.
    DramModule fast(specWithSense(true));
    DramModule ref(specWithSense(false));
    for (DramModule *m : {&fast, &ref}) {
        for (uint32_t b = 0; b < m->geometry().bitlinesPerRow; b += 3)
            m->bank(1).pokeCell(40, b, true);
    }
    softmc::SoftMcHost fast_host(fast);
    softmc::SoftMcHost ref_host(ref);
    fast_host.actObeyed(1, 40);
    ref_host.actObeyed(1, 40);
    std::vector<uint64_t> fast_row = fast_host.readOpenRow(1);
    std::vector<uint64_t> ref_row = ref_host.readOpenRow(1);
    EXPECT_EQ(fast_row, ref_row);
    // And the guardbanded read reproduces the cell contents exactly.
    EXPECT_EQ(fast_row, fast.bank(1).peekRow(40));
}

TEST(FastSense, ResolvedBitBiasTracksReferenceProbabilities)
{
    DramModule fast(specWithSense(true));
    DramModule ref(specWithSense(false));
    softmc::SoftMcHost host(fast);

    const uint32_t segment = 5;
    const uint8_t pattern = 0b1110;
    ref.bank(0).pokeSegmentPattern(segment, pattern);
    std::vector<float> probs = ref.bank(0).quacProbabilities(segment);

    const int trials = 3000;
    uint32_t nbits = fast.geometry().bitlinesPerRow;
    std::vector<uint64_t> row(fast.geometry().wordsPerRow());
    std::vector<uint32_t> ones(nbits, 0);
    for (int t = 0; t < trials; ++t) {
        runQuac(fast, host, segment, pattern, row);
        for (uint32_t b = 0; b < nbits; ++b)
            ones[b] += (row[b / 64] >> (b % 64)) & 1;
    }

    // Per-bitline binomial z-test against the reference-path
    // probabilities, plus slack for the kernel's approximation error.
    double worst = 0.0;
    for (uint32_t b = 0; b < nbits; ++b) {
        double p = probs[b];
        double freq = static_cast<double>(ones[b]) / trials;
        double sd = std::sqrt(p * (1.0 - p) / trials);
        double tol = 6.0 * sd + 2e-3;
        ASSERT_NEAR(freq, p, tol) << "bitline " << b;
        worst = std::max(worst, std::fabs(freq - p));
    }
    // Sanity: the segment is metastable somewhere, so the test has
    // teeth (some bitlines genuinely draw).
    EXPECT_GT(worst, 0.0);
}

TEST(FastSense, DegenerateFastExitsAreConstantAcrossTrials)
{
    DramModule fast(specWithSense(true));
    softmc::SoftMcHost host(fast);

    const uint32_t segment = 9;
    const uint8_t pattern = 0b1110;
    fast.bank(0).pokeSegmentPattern(segment, pattern);
    std::vector<float> probs = fast.bank(0).quacProbabilities(segment);

    uint32_t nbits = fast.geometry().bitlinesPerRow;
    std::vector<uint64_t> row(fast.geometry().wordsPerRow());
    runQuac(fast, host, segment, pattern, row);
    std::vector<uint64_t> first = row;
    uint32_t degenerate = 0;
    for (int t = 0; t < 64; ++t) {
        runQuac(fast, host, segment, pattern, row);
        for (uint32_t b = 0; b < nbits; ++b) {
            if (probs[b] != 0.0f && probs[b] != 1.0f)
                continue;
            bool expect = probs[b] == 1.0f;
            ASSERT_EQ(((row[b / 64] >> (b % 64)) & 1) != 0, expect)
                << "trial " << t << " bitline " << b;
            if (t == 0)
                ++degenerate;
        }
    }
    (void)first;
    // The balanced pattern still leaves most bitlines degenerate.
    EXPECT_GT(degenerate, nbits / 2);
}

ModuleSpec
specWithSaturation(bool saturation)
{
    ModuleSpec spec = specWithSense(true);
    spec.saturationFastPath = saturation;
    return spec;
}

/** Fill @p row with a deterministic pseudo-random bit pattern. */
void
pokeNoiseRow(Bank &bank, uint32_t row, uint32_t nbits, uint64_t salt)
{
    for (uint32_t b = 0; b < nbits; ++b) {
        uint64_t h = (salt + b) * 0x9E3779B97F4A7C15ULL;
        bank.pokeCell(row, b, (h >> 61) & 1);
    }
}

TEST(SaturationFastPath, RowCloneCopyBitIdenticalAndCounted)
{
    // RowClone from a constant source row onto random destination
    // contents: the full-rail residual saturates every bitline, so
    // the fast-path row must equal the full Phi batch's bit for bit
    // -- and leave the noise stream untouched either way.
    DramModule with(specWithSaturation(true));
    DramModule without(specWithSaturation(false));
    uint32_t nbits = with.geometry().bitlinesPerRow;

    std::vector<std::vector<uint64_t>> rows;
    for (DramModule *module : {&with, &without}) {
        softmc::SoftMcHost host(*module);
        host.writeRowFill(0, 8, true); // all-ones source (segment 2)
        pokeNoiseRow(module->bank(0), 16, nbits, 99); // dst, segment 4
        host.rowCloneCopy(0, 8, 16);
        rows.push_back(module->bank(0).peekRow(16));
        // A follow-up metastable QUAC proves the noise streams are
        // still aligned after the (draw-free) saturated resolve.
        std::vector<uint64_t> quac_row(module->geometry().wordsPerRow());
        runQuac(*module, host, 9, 0b1110, quac_row);
        rows.push_back(quac_row);
    }
    EXPECT_EQ(rows[0], rows[2]) << "RowClone rows differ";
    EXPECT_EQ(rows[1], rows[3]) << "post-RowClone QUAC rows differ";
    EXPECT_EQ(rows[0], with.bank(0).peekRow(8))
        << "RowClone must have copied the constant source";

    EXPECT_GT(with.bank(0).saturatedRowFastPaths(), 0u);
    EXPECT_EQ(without.bank(0).saturatedRowFastPaths(), 0u);
}

TEST(SaturationFastPath, SaturatedProbabilityRowsAreExactConstants)
{
    DramModule with(specWithSaturation(true));
    DramModule without(specWithSaturation(false));
    uint32_t nbits = with.geometry().bitlinesPerRow;

    // Full-rail all-ones residual racing an unwritten row: every
    // bitline lands >= saturationZ sigma into the 1 tail.
    std::vector<uint64_t> ones(with.geometry().wordsPerRow(),
                               ~uint64_t{0});
    std::vector<uint64_t> zeros(with.geometry().wordsPerRow(), 0);
    for (uint32_t row : {20u, 21u}) {
        auto pw = with.bank(0).racedActivateProbabilities(row, ones,
                                                          2.5);
        auto pn = without.bank(0).racedActivateProbabilities(row, ones,
                                                             2.5);
        ASSERT_EQ(pw.size(), nbits);
        EXPECT_EQ(pw, pn);
        for (uint32_t b = 0; b < nbits; ++b)
            ASSERT_EQ(pw[b], 1.0f) << "bitline " << b;

        auto zw = with.bank(0).racedActivateProbabilities(row, zeros,
                                                          2.5);
        for (uint32_t b = 0; b < nbits; ++b)
            ASSERT_EQ(zw[b], 0.0f) << "bitline " << b;
    }
    EXPECT_GT(with.bank(0).saturatedRowFastPaths(), 0u);

    // A balanced QUAC is metastable: the fast-path must not fire.
    uint64_t fired = with.bank(0).saturatedRowFastPaths();
    with.bank(0).pokeSegmentPattern(6, 0b1110);
    auto quac = with.bank(0).quacProbabilities(6);
    EXPECT_EQ(with.bank(0).saturatedRowFastPaths(), fired);
    bool metastable = false;
    for (float p : quac)
        metastable = metastable || (p > 0.0f && p < 1.0f);
    EXPECT_TRUE(metastable);
}

TEST(SaturationFastPath, MixedResidualRaceResolvesFromResidualBits)
{
    // RowClone from a MIXED-content source row: the residual bits
    // span both tails, so the whole-row saturation test can never
    // fire -- only the residual-dominated race path can skip the
    // probability row. It must stay bit-identical to the full Phi
    // batch (whose per-bitline snapping it reproduces) and keep the
    // noise streams aligned (no draws on either side).
    DramModule with(specWithSaturation(true));
    DramModule without(specWithSaturation(false));
    uint32_t nbits = with.geometry().bitlinesPerRow;

    std::vector<std::vector<uint64_t>> rows;
    for (DramModule *module : {&with, &without}) {
        softmc::SoftMcHost host(*module);
        pokeNoiseRow(module->bank(0), 8, nbits, 7);   // mixed source
        pokeNoiseRow(module->bank(0), 16, nbits, 99); // destination
        host.rowCloneCopy(0, 8, 16);
        rows.push_back(module->bank(0).peekRow(16));
        std::vector<uint64_t> quac_row(
            module->geometry().wordsPerRow());
        runQuac(*module, host, 9, 0b1110, quac_row);
        rows.push_back(quac_row);
    }
    EXPECT_EQ(rows[0], rows[2]) << "RowClone rows differ";
    EXPECT_EQ(rows[1], rows[3]) << "post-RowClone QUAC rows differ";

    EXPECT_GT(with.bank(0).residRaceFastPaths(), 0u);
    EXPECT_EQ(without.bank(0).residRaceFastPaths(), 0u);
}

TEST(SaturationFastPath, DecayedResidualRaceStaysOnFullPath)
{
    // Stretch the PRE -> ACT gap so the residual decays to barely
    // above the race threshold: the cells' pull dominates, the
    // saturation margin cannot hold, and the race must resolve
    // through the full probability path -- identically with the fast
    // path enabled or disabled.
    DramModule with(specWithSaturation(true));
    DramModule without(specWithSaturation(false));
    uint32_t nbits = with.geometry().bitlinesPerRow;
    const dram::Calibration &cal = with.calibration();

    std::vector<std::vector<uint64_t>> rows;
    for (DramModule *module : {&with, &without}) {
        softmc::SoftMcHost host(*module);
        host.writeRowFill(0, 8, true);
        pokeNoiseRow(module->bank(0), 16, nbits, 31);
        host.act(0, 8);
        host.wait(cal.rowCloneSrcOpenNs);
        host.pre(0);
        // railMv * exp(-10 / tauEqNs) ~ 2 mV: still a race, far from
        // dominating the ~singleRowKickMv cell pull.
        host.wait(10.0);
        host.act(0, 16);
        host.wait(host.timing().tRAS);
        host.preObeyed(0);
        rows.push_back(module->bank(0).peekRow(16));
    }
    EXPECT_EQ(rows[0], rows[1]) << "decayed-race rows differ";
    EXPECT_EQ(with.bank(0).residRaceFastPaths(), 0u);
    EXPECT_EQ(without.bank(0).residRaceFastPaths(), 0u);
}

TEST(SaturationFastPath, UncachedOracleScansOffsetsAndStaysIdentical)
{
    // The fast-path must also work (and stay bit-identical) when the
    // variation-oracle row cache is disabled and the max |offset| is
    // computed by scanning the scratch row.
    ModuleSpec spec_on = specWithSaturation(true);
    spec_on.oracleCache = false;
    ModuleSpec spec_off = specWithSaturation(false);
    DramModule with(std::move(spec_on));
    DramModule without(std::move(spec_off));

    std::vector<uint64_t> ones(with.geometry().wordsPerRow(),
                               ~uint64_t{0});
    auto pw = with.bank(2).racedActivateProbabilities(33, ones, 2.5);
    auto pn = without.bank(2).racedActivateProbabilities(33, ones, 2.5);
    EXPECT_EQ(pw, pn);
    EXPECT_GT(with.bank(2).saturatedRowFastPaths(), 0u);
}

TEST(SenseCacheEviction, SecondChanceKeepsHotEntry)
{
    DramModule module(specWithSense(true));
    softmc::SoftMcHost host(module);
    Bank &bank = module.bank(0);
    std::vector<uint64_t> row(module.geometry().wordsPerRow());

    const uint32_t hot_segment = 1;
    runQuac(module, host, hot_segment, 0b1110, row); // insert hot entry

    // Push far more distinct sensing setups than the capacity through
    // the cache, touching the hot entry between batches so every
    // second-chance sweep sees it marked.
    const uint8_t patterns[] = {0b0110, 0b1001, 0b0101, 0b1010};
    for (int round = 0; round < 4; ++round) {
        for (uint32_t seg = 2; seg < 52; ++seg) {
            runQuac(module, host, seg, patterns[round], row);
            if (seg % 10 == 0)
                runQuac(module, host, hot_segment, 0b1110, row);
        }
    }
    EXPECT_LE(bank.probCacheSize(), Bank::probCacheCapacity);
    EXPECT_GT(bank.probCacheMisses(), Bank::probCacheCapacity);

    // The hot entry must have survived every eviction sweep: another
    // replay hits the cache instead of recomputing.
    uint64_t hits_before = bank.probCacheHits();
    runQuac(module, host, hot_segment, 0b1110, row);
    EXPECT_EQ(bank.probCacheHits(), hits_before + 1);
}

TEST(SenseCacheEviction, CapRowValuesStableAcrossEvictionChurn)
{
    // Regression for the dangling-reference hazard: a QUAC gathers
    // pointers to four cap-row entries at once, so eviction must only
    // run before the gather. Churn the cache past its capacity with
    // analytic queries and check a replayed query is unchanged.
    DramModule module(specWithSense(true));
    Bank &bank = module.bank(0);
    for (uint32_t seg = 0; seg < 16; ++seg)
        bank.pokeSegmentPattern(seg, 0b1110);

    std::vector<float> first = bank.quacProbabilities(0);
    for (int round = 0; round < 2; ++round) {
        for (uint32_t seg = 0; seg < 16; ++seg)
            (void)bank.quacProbabilities(seg); // 64 distinct cap rows
    }
    EXPECT_LE(bank.capCacheSize(),
              Bank::capCacheCapacity + Geometry::rowsPerSegment);
    EXPECT_EQ(bank.quacProbabilities(0), first);
}

} // anonymous namespace
} // namespace quac::dram

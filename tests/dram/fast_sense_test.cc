/**
 * @file
 * Regression tests for the batched SIMD sensing kernel
 * (ModuleSpec::fastSense): probability agreement with the scalar
 * reference oracle, exact degenerate fast exits, bit-identical
 * guardbanded sensing, statistical fidelity of the resolved bits,
 * and second-chance eviction of the sensing caches.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "dram/module.hh"
#include "softmc/host.hh"

namespace quac::dram
{
namespace
{

ModuleSpec
specWithSense(bool fast_sense)
{
    ModuleSpec spec;
    spec.geometry = Geometry::testScale();
    spec.seed = 7;
    spec.fastSense = fast_sense;
    return spec;
}

/** Re-init a segment and run one QUAC through the command path. */
void
runQuac(DramModule &module, softmc::SoftMcHost &host, uint32_t segment,
        uint8_t pattern, std::vector<uint64_t> &row)
{
    module.bank(0).pokeSegmentPattern(segment, pattern);
    host.quac(0, segment);
    host.readOpenRowInto(0, row.data());
    host.preObeyed(0);
}

TEST(FastSense, ProbabilitiesMatchReferenceOracle)
{
    DramModule fast(specWithSense(true));
    DramModule ref(specWithSense(false));
    for (uint8_t pattern : {0b1110, 0b0110, 0b0001, 0b0000}) {
        fast.bank(0).pokeSegmentPattern(3, pattern);
        ref.bank(0).pokeSegmentPattern(3, pattern);
        std::vector<float> pf = fast.bank(0).quacProbabilities(3);
        std::vector<float> pr = ref.bank(0).quacProbabilities(3);
        ASSERT_EQ(pf.size(), pr.size());
        for (size_t b = 0; b < pf.size(); ++b) {
            ASSERT_NEAR(pf[b], pr[b], 1e-5)
                << "pattern " << int(pattern) << " bitline " << b;
        }
    }
}

TEST(FastSense, DegenerateProbabilitiesSnapExactly)
{
    DramModule fast(specWithSense(true));
    DramModule ref(specWithSense(false));
    // All-zeros / all-ones patterns put every bitline deep in a tail.
    for (uint8_t pattern : {0b0000, 0b1111}) {
        fast.bank(0).pokeSegmentPattern(5, pattern);
        ref.bank(0).pokeSegmentPattern(5, pattern);
        std::vector<float> pf = fast.bank(0).quacProbabilities(5);
        std::vector<float> pr = ref.bank(0).quacProbabilities(5);
        for (size_t b = 0; b < pf.size(); ++b) {
            if (pr[b] <= 1e-9f)
                ASSERT_EQ(pf[b], 0.0f) << "bitline " << b;
            else if (pr[b] >= 1.0f - 1e-9f)
                ASSERT_EQ(pf[b], 1.0f) << "bitline " << b;
        }
    }
}

TEST(FastSense, GuardbandedSingleRowSensingBitIdentical)
{
    // Obeyed-timing activations never touch the noise stream; the
    // fast and reference paths must agree bit for bit.
    DramModule fast(specWithSense(true));
    DramModule ref(specWithSense(false));
    for (DramModule *m : {&fast, &ref}) {
        for (uint32_t b = 0; b < m->geometry().bitlinesPerRow; b += 3)
            m->bank(1).pokeCell(40, b, true);
    }
    softmc::SoftMcHost fast_host(fast);
    softmc::SoftMcHost ref_host(ref);
    fast_host.actObeyed(1, 40);
    ref_host.actObeyed(1, 40);
    std::vector<uint64_t> fast_row = fast_host.readOpenRow(1);
    std::vector<uint64_t> ref_row = ref_host.readOpenRow(1);
    EXPECT_EQ(fast_row, ref_row);
    // And the guardbanded read reproduces the cell contents exactly.
    EXPECT_EQ(fast_row, fast.bank(1).peekRow(40));
}

TEST(FastSense, ResolvedBitBiasTracksReferenceProbabilities)
{
    DramModule fast(specWithSense(true));
    DramModule ref(specWithSense(false));
    softmc::SoftMcHost host(fast);

    const uint32_t segment = 5;
    const uint8_t pattern = 0b1110;
    ref.bank(0).pokeSegmentPattern(segment, pattern);
    std::vector<float> probs = ref.bank(0).quacProbabilities(segment);

    const int trials = 3000;
    uint32_t nbits = fast.geometry().bitlinesPerRow;
    std::vector<uint64_t> row(fast.geometry().wordsPerRow());
    std::vector<uint32_t> ones(nbits, 0);
    for (int t = 0; t < trials; ++t) {
        runQuac(fast, host, segment, pattern, row);
        for (uint32_t b = 0; b < nbits; ++b)
            ones[b] += (row[b / 64] >> (b % 64)) & 1;
    }

    // Per-bitline binomial z-test against the reference-path
    // probabilities, plus slack for the kernel's approximation error.
    double worst = 0.0;
    for (uint32_t b = 0; b < nbits; ++b) {
        double p = probs[b];
        double freq = static_cast<double>(ones[b]) / trials;
        double sd = std::sqrt(p * (1.0 - p) / trials);
        double tol = 6.0 * sd + 2e-3;
        ASSERT_NEAR(freq, p, tol) << "bitline " << b;
        worst = std::max(worst, std::fabs(freq - p));
    }
    // Sanity: the segment is metastable somewhere, so the test has
    // teeth (some bitlines genuinely draw).
    EXPECT_GT(worst, 0.0);
}

TEST(FastSense, DegenerateFastExitsAreConstantAcrossTrials)
{
    DramModule fast(specWithSense(true));
    softmc::SoftMcHost host(fast);

    const uint32_t segment = 9;
    const uint8_t pattern = 0b1110;
    fast.bank(0).pokeSegmentPattern(segment, pattern);
    std::vector<float> probs = fast.bank(0).quacProbabilities(segment);

    uint32_t nbits = fast.geometry().bitlinesPerRow;
    std::vector<uint64_t> row(fast.geometry().wordsPerRow());
    runQuac(fast, host, segment, pattern, row);
    std::vector<uint64_t> first = row;
    uint32_t degenerate = 0;
    for (int t = 0; t < 64; ++t) {
        runQuac(fast, host, segment, pattern, row);
        for (uint32_t b = 0; b < nbits; ++b) {
            if (probs[b] != 0.0f && probs[b] != 1.0f)
                continue;
            bool expect = probs[b] == 1.0f;
            ASSERT_EQ(((row[b / 64] >> (b % 64)) & 1) != 0, expect)
                << "trial " << t << " bitline " << b;
            if (t == 0)
                ++degenerate;
        }
    }
    (void)first;
    // The balanced pattern still leaves most bitlines degenerate.
    EXPECT_GT(degenerate, nbits / 2);
}

TEST(SenseCacheEviction, SecondChanceKeepsHotEntry)
{
    DramModule module(specWithSense(true));
    softmc::SoftMcHost host(module);
    Bank &bank = module.bank(0);
    std::vector<uint64_t> row(module.geometry().wordsPerRow());

    const uint32_t hot_segment = 1;
    runQuac(module, host, hot_segment, 0b1110, row); // insert hot entry

    // Push far more distinct sensing setups than the capacity through
    // the cache, touching the hot entry between batches so every
    // second-chance sweep sees it marked.
    const uint8_t patterns[] = {0b0110, 0b1001, 0b0101, 0b1010};
    for (int round = 0; round < 4; ++round) {
        for (uint32_t seg = 2; seg < 52; ++seg) {
            runQuac(module, host, seg, patterns[round], row);
            if (seg % 10 == 0)
                runQuac(module, host, hot_segment, 0b1110, row);
        }
    }
    EXPECT_LE(bank.probCacheSize(), Bank::probCacheCapacity);
    EXPECT_GT(bank.probCacheMisses(), Bank::probCacheCapacity);

    // The hot entry must have survived every eviction sweep: another
    // replay hits the cache instead of recomputing.
    uint64_t hits_before = bank.probCacheHits();
    runQuac(module, host, hot_segment, 0b1110, row);
    EXPECT_EQ(bank.probCacheHits(), hits_before + 1);
}

TEST(SenseCacheEviction, CapRowValuesStableAcrossEvictionChurn)
{
    // Regression for the dangling-reference hazard: a QUAC gathers
    // pointers to four cap-row entries at once, so eviction must only
    // run before the gather. Churn the cache past its capacity with
    // analytic queries and check a replayed query is unchanged.
    DramModule module(specWithSense(true));
    Bank &bank = module.bank(0);
    for (uint32_t seg = 0; seg < 16; ++seg)
        bank.pokeSegmentPattern(seg, 0b1110);

    std::vector<float> first = bank.quacProbabilities(0);
    for (int round = 0; round < 2; ++round) {
        for (uint32_t seg = 0; seg < 16; ++seg)
            (void)bank.quacProbabilities(seg); // 64 distinct cap rows
    }
    EXPECT_LE(bank.capCacheSize(),
              Bank::capCacheCapacity + Geometry::rowsPerSegment);
    EXPECT_EQ(bank.quacProbabilities(0), first);
}

} // anonymous namespace
} // namespace quac::dram

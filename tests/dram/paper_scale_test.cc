/**
 * @file
 * Paper-scale calibration invariants: at full 64 Kbit-row geometry,
 * the device model must land in the paper's measured bands.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "common/parallel.hh"
#include "common/stats.hh"
#include "dram/catalog.hh"
#include "dram/segment_model.hh"

namespace quac::dram
{
namespace
{

TEST(PaperScale, NominalSegmentEntropyBand)
{
    // entropyScale = 1 must sit near the documented nominal value.
    ModuleSpec spec;
    spec.seed = 20210614;
    DramModule module(std::move(spec));

    RunningStats stats;
    std::mutex m;
    std::vector<double> values(64);
    parallelFor(0, values.size(), [&](size_t i) {
        SegmentModel model(module.geometry(), module.calibration(),
                           module.variation(), 0,
                           static_cast<uint32_t>(i * 128), 50.0, 0.0);
        values[i] = model.segmentEntropy(0b1110);
    });
    (void)m;
    for (double v : values)
        stats.add(v);
    EXPECT_NEAR(stats.mean(), kNominalSegmentEntropy,
                0.15 * kNominalSegmentEntropy);
}

TEST(PaperScale, AverageCacheBlockEntropyMatchesFig8)
{
    // Paper Fig 8: pattern "0111" averages 11.07 bits per cache
    // block across all cache blocks of a module.
    ModuleSpec spec;
    spec.seed = 5150;
    DramModule module(std::move(spec));

    std::vector<double> sums(32);
    parallelFor(0, sums.size(), [&](size_t i) {
        SegmentModel model(module.geometry(), module.calibration(),
                           module.variation(), 0,
                           static_cast<uint32_t>(i * 251), 50.0, 0.0);
        auto blocks = model.cacheBlockEntropies(0b1110);
        double sum = 0.0;
        for (double h : blocks)
            sum += h;
        sums[i] = sum / blocks.size();
    });
    double avg = 0.0;
    for (double s : sums)
        avg += s;
    avg /= sums.size();
    EXPECT_NEAR(avg, 11.07, 3.0);
}

TEST(PaperScale, CatalogModulesHitTable3Averages)
{
    // Spot-check the extremes of Table 3: the least (M9) and most
    // (M13) random modules must land within ~8% of their targets.
    for (size_t index : {8u, 12u}) {
        const CatalogEntry &entry = paperCatalog()[index];
        DramModule module(specFor(entry, Geometry::paperScale()));
        std::vector<double> values(96);
        parallelFor(0, values.size(), [&](size_t i) {
            SegmentModel model(
                module.geometry(), module.calibration(),
                module.variation(), 0,
                static_cast<uint32_t>(i * 83), 50.0, 0.0);
            values[i] = model.segmentEntropy(0b1110);
        });
        double avg = 0.0;
        for (double v : values)
            avg += v;
        avg /= values.size();
        // 12% band: sampling error over 96 segments plus the mild
        // nonlinearity of entropy in entropyScale at the extremes.
        EXPECT_NEAR(avg, entry.avgSegmentEntropy,
                    0.12 * entry.avgSegmentEntropy)
            << entry.name;
    }
}

TEST(PaperScale, SibCountMatchesPaperSeven)
{
    // floor(max-segment entropy / 256) averaged ~7 across modules.
    ModuleSpec spec = specFor(paperCatalog()[0],
                              Geometry::paperScale());
    DramModule module(std::move(spec));
    double best = 0.0;
    std::vector<double> values(64);
    parallelFor(0, values.size(), [&](size_t i) {
        SegmentModel model(module.geometry(), module.calibration(),
                           module.variation(), 0,
                           static_cast<uint32_t>(i * 128), 50.0, 0.0);
        values[i] = model.segmentEntropy(0b1110);
    });
    for (double v : values)
        best = std::max(best, v);
    double sib = std::floor(best / 256.0);
    EXPECT_GE(sib, 5.0);
    EXPECT_LE(sib, 12.0);
}

TEST(PaperScale, ReservedFootprintMatchesSection9)
{
    // 6 rows per bank in 4 banks: 4 segments + 8 init rows. At 8 KB
    // per rank-row this is the paper's 192 KB.
    Geometry geom = Geometry::paperScale();
    double row_bytes = geom.bitlinesPerRow / 8.0;
    double reserved = 6.0 * 4.0 * row_bytes;
    EXPECT_NEAR(reserved, 192.0 * 1024.0, 1.0);
}

} // anonymous namespace
} // namespace quac::dram

/**
 * @file
 * Tests for the manufacturing-variation oracle.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"
#include "dram/variation.hh"

namespace quac::dram
{
namespace
{

class VariationTest : public ::testing::Test
{
  protected:
    Geometry geom = Geometry::testScale();
    Calibration cal;
    VariationModel var{geom, cal, 12345};
};

TEST_F(VariationTest, Deterministic)
{
    VariationModel other(geom, cal, 12345);
    EXPECT_DOUBLE_EQ(var.saOffsetMv(0, 5, 100),
                     other.saOffsetMv(0, 5, 100));
    EXPECT_DOUBLE_EQ(var.cellCapFactor(1, 7, 3),
                     other.cellCapFactor(1, 7, 3));
    EXPECT_DOUBLE_EQ(var.segmentMeanMv(2, 9), other.segmentMeanMv(2, 9));
}

TEST_F(VariationTest, DifferentSeedsDiffer)
{
    VariationModel other(geom, cal, 54321);
    EXPECT_NE(var.saOffsetMv(0, 5, 100), other.saOffsetMv(0, 5, 100));
}

TEST_F(VariationTest, BulkOffsetRowBitIdenticalToScalarOracle)
{
    uint32_t nbits = geom.bitlinesPerRow;
    std::vector<double> bulk(nbits);
    var.saOffsetRowMv(1, 9, nbits, bulk.data());
    for (uint32_t b = 0; b < nbits; ++b)
        ASSERT_EQ(bulk[b], var.saOffsetMv(1, 9, b)) << "bitline " << b;
}

TEST_F(VariationTest, BulkCapRowBitIdenticalToScalarOracle)
{
    uint32_t nbits = geom.bitlinesPerRow;
    std::vector<double> bulk(nbits);
    var.cellCapRow(2, 17, nbits, bulk.data());
    for (uint32_t b = 0; b < nbits; ++b)
        ASSERT_EQ(bulk[b], var.cellCapFactor(2, 17, b)) << "bitline " << b;
}

TEST_F(VariationTest, BulkRowsHandlePartialChunks)
{
    // Lengths straddling the internal Philox chunking.
    for (uint32_t nbits : {1u, 511u, 512u, 513u, 1025u}) {
        std::vector<double> bulk(nbits);
        var.saOffsetRowMv(0, 4, nbits, bulk.data());
        ASSERT_EQ(bulk[nbits - 1], var.saOffsetMv(0, 4, nbits - 1));
    }
}

TEST_F(VariationTest, SaOffsetSharedWithinSubarray)
{
    // Rows in the same subarray share sense amplifiers.
    uint32_t row_a = 0;
    uint32_t row_b = geom.rowsPerSubarray - 1;
    uint32_t row_c = geom.rowsPerSubarray;
    EXPECT_DOUBLE_EQ(var.saOffsetMv(0, row_a, 7),
                     var.saOffsetMv(0, row_b, 7));
    EXPECT_NE(var.saOffsetMv(0, row_a, 7), var.saOffsetMv(0, row_c, 7));
}

TEST_F(VariationTest, SaOffsetMoments)
{
    RunningStats stats;
    for (uint32_t b = 0; b < geom.bitlinesPerRow; ++b)
        stats.add(var.saOffsetMv(0, 0, b));
    EXPECT_NEAR(stats.mean(), 0.0, 0.3);
    EXPECT_NEAR(stats.stddev(), cal.saOffsetSigmaMv,
                cal.saOffsetSigmaMv * 0.1);
}

TEST_F(VariationTest, CellCapMomentsAndFloor)
{
    RunningStats stats;
    for (uint32_t b = 0; b < geom.bitlinesPerRow; ++b) {
        double f = var.cellCapFactor(0, 3, b);
        EXPECT_GE(f, 0.2);
        stats.add(f);
    }
    EXPECT_NEAR(stats.mean(), 1.0, 0.01);
    EXPECT_NEAR(stats.stddev(), cal.cellCapSigma, 0.01);
}

TEST_F(VariationTest, SpatialScalePositiveAndCentered)
{
    RunningStats stats;
    for (uint32_t s = 0; s < geom.segmentsPerBank(); ++s) {
        double scale = var.spatialScale(0, s);
        EXPECT_GT(scale, 0.0);
        stats.add(scale);
    }
    EXPECT_NEAR(stats.mean(), 1.0, 0.15);
}

TEST_F(VariationTest, EntropyScaleMultiplies)
{
    VariationModel scaled(geom, cal, 12345, 1.3);
    for (uint32_t s = 0; s < 8; ++s) {
        EXPECT_NEAR(scaled.spatialScale(0, s) / var.spatialScale(0, s),
                    1.3, 1e-9);
    }
}

TEST_F(VariationTest, ColumnShapeBell)
{
    uint32_t ncols = geom.cacheBlocksPerRow();
    double first = var.columnShape(0);
    double mid = var.columnShape(ncols * 4 / 10);
    double last = var.columnShape(ncols - 1);
    EXPECT_GT(mid, first);
    EXPECT_GT(mid, last);
    // Paper Fig 10: entropy deteriorates toward the end of the row.
    EXPECT_LE(last, first + 1e-9);
}

TEST_F(VariationTest, ChipTrendsBothPresent)
{
    // With 60%/40% trend split, 64 chips should show both trends.
    int trend1 = 0;
    int trend2 = 0;
    for (uint32_t chip = 0; chip < 64; ++chip)
        (var.chipIsTrend1(chip) ? trend1 : trend2)++;
    EXPECT_GT(trend1, 16);
    EXPECT_GT(trend2, 4);
}

TEST_F(VariationTest, TemperatureFactorDirections)
{
    for (uint32_t chip = 0; chip < 16; ++chip) {
        double f50 = var.temperatureFactor(chip, 50.0);
        double f85 = var.temperatureFactor(chip, 85.0);
        EXPECT_NEAR(f50, 1.0, 1e-9);
        if (var.chipIsTrend1(chip)) {
            // Offsets shrink with temperature -> entropy rises.
            EXPECT_LT(f85, 1.0);
        } else {
            EXPECT_GT(f85, 1.0);
        }
    }
}

TEST_F(VariationTest, NoiseSigmaGrowsWithTemperature)
{
    EXPECT_NEAR(var.noiseSigmaMv(50.0), cal.noiseSigmaMvAt50C, 1e-12);
    EXPECT_GT(var.noiseSigmaMv(85.0), var.noiseSigmaMv(50.0));
    EXPECT_LT(var.noiseSigmaMv(20.0), var.noiseSigmaMv(50.0));
}

TEST_F(VariationTest, AgingDriftMagnitude)
{
    VariationModel aged(geom, cal, 777, 1.0, 1.0, 0.024);
    EXPECT_DOUBLE_EQ(aged.agingScale(0, 3, 0.0), 1.0);
    RunningStats stats;
    for (uint32_t s = 0; s < geom.segmentsPerBank(); ++s)
        stats.add(aged.agingScale(0, s, 30.0));
    // Mean drift should track the configured coefficient.
    EXPECT_NEAR(stats.mean(), 1.024, 0.01);
}

TEST_F(VariationTest, RepairSegmentsAreRare)
{
    int repaired = 0;
    uint32_t total = geom.segmentsPerBank() * 4;
    for (uint32_t bank = 0; bank < 4; ++bank) {
        for (uint32_t s = 0; s < geom.segmentsPerBank(); ++s)
            repaired += var.isRepairedSegment(bank, s) ? 1 : 0;
    }
    EXPECT_LT(static_cast<double>(repaired) / total, 0.03);
}

TEST_F(VariationTest, EffectiveOffsetConsistentWithIngredients)
{
    uint32_t bank = 1;
    uint32_t row = 8;
    uint32_t bitline = 513;
    uint32_t segment = geom.segmentOfRow(row);
    uint32_t column = bitline / geom.cacheBlockBits;
    uint32_t chip = geom.chipOfBitline(bitline);

    double expected =
        (var.saOffsetMv(bank, row, bitline) +
         var.segmentMeanMv(bank, segment)) /
        (var.spatialScale(bank, segment) * var.columnShape(column) *
         var.agingScale(bank, segment, 0.0)) *
        var.temperatureFactor(chip, 50.0);
    EXPECT_NEAR(var.effectiveOffsetMv(bank, row, bitline, 50.0, 0.0),
                expected, 1e-12);
}

TEST_F(VariationTest, HeavySegmentMeansExist)
{
    // ~1% of segments draw from the heavy (12 mV) distribution; over
    // many segments at least one should exceed 3x the normal sigma.
    int heavy = 0;
    for (uint32_t bank = 0; bank < geom.banks; ++bank) {
        for (uint32_t s = 0; s < geom.segmentsPerBank(); ++s) {
            if (std::fabs(var.segmentMeanMv(bank, s)) >
                3.5 * cal.segmentMeanSigmaMv) {
                heavy++;
            }
        }
    }
    EXPECT_GT(heavy, 0);
}

} // anonymous namespace
} // namespace quac::dram

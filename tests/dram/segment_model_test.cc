/**
 * @file
 * Tests for the analytic SegmentModel, including consistency with the
 * command-path Bank model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hh"
#include "dram/bank.hh"
#include "dram/segment_model.hh"

namespace quac::dram
{
namespace
{

class SegmentModelTest : public ::testing::Test
{
  protected:
    SegmentModelTest()
    {
        ctx.geom = &geom;
        ctx.cal = &cal;
        ctx.variation = &var;
    }

    Geometry geom = Geometry::testScale();
    Calibration cal;
    VariationModel var{geom, cal, 2024};
    BankContext ctx;
};

TEST_F(SegmentModelTest, PatternStringRoundTrip)
{
    EXPECT_EQ(patternFromString("0111"), 0b1110);
    EXPECT_EQ(patternFromString("1000"), 0b0001);
    EXPECT_EQ(patternFromString("0000"), 0b0000);
    EXPECT_EQ(patternToString(0b1110), "0111");
    EXPECT_EQ(patternToString(0b0001), "1000");
    for (uint8_t p = 0; p < 16; ++p)
        EXPECT_EQ(patternFromString(patternToString(p).c_str()), p);
}

TEST_F(SegmentModelTest, PatternStringRejectsGarbage)
{
    EXPECT_THROW(patternFromString("011"), FatalError);
    EXPECT_THROW(patternFromString("01110"), FatalError);
    EXPECT_THROW(patternFromString("01a1"), FatalError);
}

TEST_F(SegmentModelTest, AllPatternsEnumeratesFigure8Order)
{
    auto patterns = allPatterns();
    ASSERT_EQ(patterns.size(), 16u);
    EXPECT_EQ(patternToString(patterns[0]), "0000");
    EXPECT_EQ(patternToString(patterns[7]), "0111");
    EXPECT_EQ(patterns[7], 0b1110);
    EXPECT_EQ(patternToString(patterns[15]), "1111");
}

TEST_F(SegmentModelTest, MatchesBankCommandPath)
{
    uint32_t segment = 3;
    uint8_t pattern = patternFromString("0111");

    Bank bank(&ctx, 0, 1);
    bank.pokeSegmentPattern(segment, pattern);
    auto bank_probs = bank.quacProbabilities(segment);

    SegmentModel model(geom, cal, var, 0, segment);
    auto model_probs = model.patternProbabilities(pattern);

    ASSERT_EQ(bank_probs.size(), model_probs.size());
    for (size_t b = 0; b < bank_probs.size(); ++b)
        ASSERT_NEAR(bank_probs[b], model_probs[b], 1e-5)
            << "bitline " << b;
}

TEST_F(SegmentModelTest, BestPatternsAreTheBalancedOnes)
{
    SegmentModel model(geom, cal, var, 0, 5);
    double h0111 = model.segmentEntropy(patternFromString("0111"));
    double h1000 = model.segmentEntropy(patternFromString("1000"));
    double h0101 = model.segmentEntropy(patternFromString("0101"));
    double h0011 = model.segmentEntropy(patternFromString("0011"));
    double h0000 = model.segmentEntropy(patternFromString("0000"));

    EXPECT_GT(h0111, h0101);
    EXPECT_GT(h1000, h0101);
    EXPECT_GT(h0101, h0011);
    EXPECT_GT(h0011, h0000);
    EXPECT_LT(h0000, 1.0);
}

TEST_F(SegmentModelTest, DisplayedPatternsBeatOmittedOnes)
{
    // Figure 8 shows only the eight R0 != R1 patterns; on average
    // (individual segments can favour odd patterns through their
    // systematic mean offset) each of them delivers more entropy
    // than every omitted (R0 == R1) pattern.
    std::array<double, 16> totals{};
    const uint32_t nseg = 24;
    for (uint32_t s = 0; s < nseg; ++s) {
        SegmentModel model(geom, cal, var, 0, s);
        for (uint8_t pattern : allPatterns())
            totals[pattern] += model.segmentEntropy(pattern);
    }
    double min_displayed = 1e18;
    double max_omitted = 0.0;
    for (uint8_t pattern : allPatterns()) {
        bool r0 = pattern & 1;
        bool r1 = (pattern >> 1) & 1;
        if (r0 != r1)
            min_displayed = std::min(min_displayed, totals[pattern]);
        else
            max_omitted = std::max(max_omitted, totals[pattern]);
    }
    EXPECT_GT(min_displayed, max_omitted);
}

TEST_F(SegmentModelTest, EntropyMatchesBitlineSum)
{
    SegmentModel model(geom, cal, var, 0, 2);
    uint8_t pattern = patternFromString("0111");
    auto bit_h = model.bitlineEntropies(
        pattern, quacWeights(cal, 0, cal.quacGapNs, cal.quacGapNs));
    double sum = 0.0;
    for (double h : bit_h)
        sum += h;
    EXPECT_NEAR(model.segmentEntropy(pattern), sum, 1e-9);

    auto blocks = model.cacheBlockEntropies(pattern);
    double block_sum = 0.0;
    for (double h : blocks)
        block_sum += h;
    EXPECT_NEAR(block_sum, sum, 1e-9);
    EXPECT_EQ(blocks.size(), geom.cacheBlocksPerRow());
}

TEST_F(SegmentModelTest, ComplementPatternsSymmetric)
{
    // "0111" and "1000" are charge-mirror images; entropies should be
    // close (not exact: offsets are not symmetric around zero).
    SegmentModel model(geom, cal, var, 0, 2);
    double a = model.segmentEntropy(patternFromString("0111"));
    double b = model.segmentEntropy(patternFromString("1000"));
    EXPECT_NEAR(a, b, 0.35 * std::max(a, b));
}

TEST_F(SegmentModelTest, TemperatureChangesEntropy)
{
    SegmentModel cold(geom, cal, var, 0, 2, 50.0);
    SegmentModel hot(geom, cal, var, 0, 2, 85.0);
    double h_cold = cold.segmentEntropy(patternFromString("0111"));
    double h_hot = hot.segmentEntropy(patternFromString("0111"));
    EXPECT_NE(h_cold, h_hot);
    EXPECT_GT(h_cold, 0.0);
    EXPECT_GT(h_hot, 0.0);
}

TEST_F(SegmentModelTest, OutOfRangeSegmentPanics)
{
    auto make_bad = [&]() {
        SegmentModel model(geom, cal, var, 0, geom.segmentsPerBank());
    };
    EXPECT_THROW(make_bad(), PanicError);
}

} // anonymous namespace
} // namespace quac::dram

/**
 * @file
 * Tests for the bank state machine: normal operation plus the four
 * violated-timing behaviour classes (QUAC, RowClone, tRP failure,
 * tRCD failure).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/stats.hh"
#include "dram/bank.hh"

namespace quac::dram
{
namespace
{

class BankTest : public ::testing::Test
{
  protected:
    BankTest()
    {
        ctx.geom = &geom;
        ctx.cal = &cal;
        ctx.variation = &var;
    }

    Bank makeBank(uint32_t id = 0, uint64_t seed = 42)
    {
        return Bank(&ctx, id, seed);
    }

    /** Count of set bits across a row's words. */
    static size_t
    onesIn(const std::vector<uint64_t> &words)
    {
        size_t count = 0;
        for (uint64_t w : words)
            count += static_cast<size_t>(__builtin_popcountll(w));
        return count;
    }

    Geometry geom = Geometry::testScale();
    Calibration cal;
    VariationModel var{geom, cal, 999};
    BankContext ctx;
};

TEST_F(BankTest, NormalActivateReadBack)
{
    Bank bank = makeBank();
    bank.pokeRowFill(10, true);
    bank.activate(10, 0.0);
    auto block = bank.read(0, 13.32);
    EXPECT_EQ(onesIn(block), geom.cacheBlockBits);
    EXPECT_EQ(bank.openRows(), std::vector<uint32_t>{10});
}

TEST_F(BankTest, NormalOperationIsErrorFree)
{
    // Guardbanded timings never flip bits, even over many cycles.
    Bank bank = makeBank();
    double t = 0.0;
    for (int iter = 0; iter < 20; ++iter) {
        uint32_t row = 16 + iter;
        bank.pokeCell(row, 100, iter % 2 == 0);
        bank.activate(row, t);
        auto block = bank.read(100 / geom.cacheBlockBits, t + 13.32);
        bool bit = (block[(100 % geom.cacheBlockBits) / 64] >>
                    (100 % 64)) & 1;
        EXPECT_EQ(bit, iter % 2 == 0) << "iteration " << iter;
        bank.precharge(t + 45.0);
        t += 60.0;
    }
}

TEST_F(BankTest, WriteUpdatesRowBufferAndCells)
{
    Bank bank = makeBank();
    bank.activate(4, 0.0);
    std::vector<uint64_t> pattern(geom.cacheBlockBits / 64,
                                  0xAAAAAAAAAAAAAAAAULL);
    bank.write(1, pattern, 14.0);
    auto block = bank.read(1, 15.0);
    EXPECT_EQ(block, pattern);
    bank.precharge(50.0);
    EXPECT_TRUE(bank.peekCell(4, geom.cacheBlockBits + 1));
    EXPECT_FALSE(bank.peekCell(4, geom.cacheBlockBits));
}

TEST_F(BankTest, ActWithoutPreIsFatal)
{
    Bank bank = makeBank();
    bank.activate(0, 0.0);
    bank.read(0, 13.32);
    EXPECT_THROW(bank.activate(1, 20.0), FatalError);
}

TEST_F(BankTest, ReadOnClosedBankIsFatal)
{
    Bank bank = makeBank();
    EXPECT_THROW(bank.read(0, 0.0), FatalError);
    bank.activate(0, 10.0);
    bank.read(0, 24.0);
    bank.precharge(50.0);
    EXPECT_THROW(bank.read(0, 70.0), FatalError);
}

TEST_F(BankTest, QuacOpensAllFourRows)
{
    Bank bank = makeBank();
    bank.pokeSegmentPattern(2, 0b1110); // "0111"
    uint32_t base = geom.firstRowOfSegment(2);

    bank.activate(base + 0, 0.0);
    bank.precharge(2.5);
    bank.activate(base + 3, 5.0);

    std::vector<uint32_t> expected = {base, base + 1, base + 2, base + 3};
    EXPECT_EQ(bank.openRows(), expected);
}

TEST_F(BankTest, QuacRequiresInvertedLsbPair)
{
    // Paper Section 4: ACTs to rows 0 and 1 (LSBs not inverted) open
    // only those two rows, not the full segment.
    Bank bank = makeBank();
    uint32_t base = geom.firstRowOfSegment(2);
    bank.activate(base + 0, 0.0);
    bank.precharge(2.5);
    bank.activate(base + 1, 5.0);

    std::vector<uint32_t> expected = {base, base + 1};
    EXPECT_EQ(bank.openRows(), expected);
}

TEST_F(BankTest, QuacRows1And2AlsoWork)
{
    Bank bank = makeBank();
    uint32_t base = geom.firstRowOfSegment(3);
    bank.activate(base + 1, 0.0);
    bank.precharge(2.5);
    bank.activate(base + 2, 5.0);
    EXPECT_EQ(bank.openRows().size(), 4u);
}

TEST_F(BankTest, ObeyedTimingsPreventQuac)
{
    // With tRAS and tRP obeyed, the same ACT/PRE/ACT addresses only
    // ever open one row at a time.
    Bank bank = makeBank();
    uint32_t base = geom.firstRowOfSegment(2);
    bank.activate(base + 0, 0.0);
    bank.read(0, 13.32);
    bank.precharge(45.0);
    bank.activate(base + 3, 45.0 + 13.32);
    EXPECT_EQ(bank.openRows(), std::vector<uint32_t>{base + 3});
}

TEST_F(BankTest, QuacOnConflictingDataIsRandom)
{
    Bank bank = makeBank();
    bank.pokeSegmentPattern(2, 0b1110); // "0111": R0=0, R1..R3=1
    uint32_t base = geom.firstRowOfSegment(2);

    bank.activate(base + 0, 0.0);
    bank.precharge(2.5);
    bank.activate(base + 3, 5.0);

    // Read the whole row buffer; expect a nontrivial mix of 0s/1s.
    size_t ones = 0;
    for (uint32_t col = 0; col < geom.cacheBlocksPerRow(); ++col)
        ones += onesIn(bank.read(col, 20.0));
    EXPECT_GT(ones, 0u);
    EXPECT_LT(ones, static_cast<size_t>(geom.bitlinesPerRow));
}

TEST_F(BankTest, QuacOnAllZerosIsDeterministic)
{
    Bank bank = makeBank();
    bank.pokeSegmentPattern(2, 0b0000);
    uint32_t base = geom.firstRowOfSegment(2);
    bank.activate(base + 0, 0.0);
    bank.precharge(2.5);
    bank.activate(base + 3, 5.0);
    size_t ones = 0;
    for (uint32_t col = 0; col < geom.cacheBlocksPerRow(); ++col)
        ones += onesIn(bank.read(col, 20.0));
    EXPECT_EQ(ones, 0u);
}

TEST_F(BankTest, QuacWritesBackToAllFourRows)
{
    // Reproduces the paper's Section 4 validation experiment: after
    // QUAC, writing new data into the sense amps and precharging
    // updates all four rows.
    Bank bank = makeBank();
    bank.pokeSegmentPattern(2, 0b1110);
    uint32_t base = geom.firstRowOfSegment(2);

    bank.activate(base + 0, 0.0);
    bank.precharge(2.5);
    bank.activate(base + 3, 5.0);

    std::vector<uint64_t> marker(geom.cacheBlockBits / 64,
                                 0x123456789ABCDEF0ULL);
    for (uint32_t col = 0; col < geom.cacheBlocksPerRow(); ++col)
        bank.write(col, marker, 20.0 + col);
    bank.precharge(200.0);

    for (uint32_t i = 0; i < 4; ++i) {
        auto row = bank.peekRow(base + i);
        for (size_t w = 0; w < row.size(); ++w)
            ASSERT_EQ(row[w], 0x123456789ABCDEF0ULL)
                << "row offset " << i << " word " << w;
    }
}

TEST_F(BankTest, QuacResolutionRestoresCells)
{
    // Even without explicit writes, QUAC resolution drives the random
    // values back into all four open rows.
    Bank bank = makeBank();
    bank.pokeSegmentPattern(2, 0b1110);
    uint32_t base = geom.firstRowOfSegment(2);
    bank.activate(base + 0, 0.0);
    bank.precharge(2.5);
    bank.activate(base + 3, 5.0);
    auto block = bank.read(0, 20.0);
    bank.precharge(60.0);
    auto row0 = bank.peekRow(base);
    auto row3 = bank.peekRow(base + 3);
    EXPECT_EQ(row0, row3) << "all rows hold the sense-amp values";
    std::vector<uint64_t> head(row0.begin(),
                               row0.begin() + block.size());
    EXPECT_EQ(head, block);
}

TEST_F(BankTest, QuacDeterministicForSameSeed)
{
    auto run = [&](uint64_t seed) {
        Bank bank = makeBank(0, seed);
        bank.pokeSegmentPattern(2, 0b1110);
        uint32_t base = geom.firstRowOfSegment(2);
        bank.activate(base + 0, 0.0);
        bank.precharge(2.5);
        bank.activate(base + 3, 5.0);
        return bank.read(0, 20.0);
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

TEST_F(BankTest, QuacProbabilitiesMatchPattern)
{
    Bank bank = makeBank();
    bank.pokeSegmentPattern(2, 0b1110);
    auto probs = bank.quacProbabilities(2);
    ASSERT_EQ(probs.size(), geom.bitlinesPerRow);

    // Balanced pattern: average probability in the metastable band
    // (the segment's systematic mean offset biases it away from
    // exactly 0.5) and at least a few metastable bitlines.
    double sum = 0.0;
    int metastable = 0;
    for (float p : probs) {
        sum += p;
        if (p > 0.01f && p < 0.99f)
            metastable++;
    }
    EXPECT_NEAR(sum / probs.size(), 0.5, 0.3);
    EXPECT_GT(metastable, 0);
}

TEST_F(BankTest, EmpiricalFrequencyTracksProbability)
{
    // Sample one QUAC repeatedly; per-bitline frequency must track
    // the analytic probability.
    Bank bank = makeBank();
    bank.pokeSegmentPattern(2, 0b1110);
    uint32_t base = geom.firstRowOfSegment(2);
    auto probs = bank.quacProbabilities(2);

    // Pick the most metastable bitline.
    uint32_t target = 0;
    float best = 1.0f;
    for (uint32_t b = 0; b < probs.size(); ++b) {
        if (std::fabs(probs[b] - 0.5f) < best) {
            best = std::fabs(probs[b] - 0.5f);
            target = b;
        }
    }
    ASSERT_LT(std::fabs(probs[target] - 0.5f), 0.45f)
        << "test geometry should contain a metastable bitline";

    const int iters = 600;
    int ones = 0;
    double t = 0.0;
    for (int i = 0; i < iters; ++i) {
        bank.pokeSegmentPattern(2, 0b1110); // re-init destroyed rows
        bank.activate(base + 0, t);
        bank.precharge(t + 2.5);
        bank.activate(base + 3, t + 5.0);
        auto block = bank.read(target / geom.cacheBlockBits, t + 20.0);
        uint32_t in_block = target % geom.cacheBlockBits;
        ones += (block[in_block / 64] >> (in_block % 64)) & 1;
        bank.precharge(t + 60.0);
        t += 100.0;
    }
    double freq = static_cast<double>(ones) / iters;
    EXPECT_NEAR(freq, probs[target], 0.08);
}

TEST_F(BankTest, RowCloneCopies)
{
    Bank bank = makeBank();
    // Source in segment 0, destination in segment 4 (same subarray).
    bank.pokeRowFill(1, true);
    uint32_t dst = 17;
    bank.pokeRowFill(dst, false);

    bank.activate(1, 0.0);
    bank.precharge(10.0);       // SAs latched with source data
    bank.activate(dst, 12.5);   // violated tRP: residual wins
    bank.read(0, 26.0);         // resolve
    bank.precharge(60.0);

    auto dst_row = bank.peekRow(dst);
    EXPECT_EQ(onesIn(dst_row), geom.bitlinesPerRow)
        << "destination should be overwritten with the source's 1s";
}

TEST_F(BankTest, TrpFailureFlipsSomeCells)
{
    Bank bank = makeBank();
    bank.pokeRowFill(1, true);   // donor drives row buffer to all-1s
    uint32_t victim = 17;
    bank.pokeRowFill(victim, false);

    bank.activate(1, 0.0);
    bank.read(0, 13.32);
    bank.precharge(45.0);
    bank.activate(victim, 45.0 + cal.talukderPreNs);
    size_t ones = 0;
    for (uint32_t col = 0; col < geom.cacheBlocksPerRow(); ++col)
        ones += onesIn(bank.read(col, 75.0));

    // Some cells flip toward the residual, but not the whole row.
    EXPECT_GT(ones, 0u);
    EXPECT_LT(ones, static_cast<size_t>(geom.bitlinesPerRow) / 2);
}

TEST_F(BankTest, ObeyedPrechargePreventsResidual)
{
    Bank bank = makeBank();
    bank.pokeRowFill(1, true);
    uint32_t victim = 17;
    bank.pokeRowFill(victim, false);

    bank.activate(1, 0.0);
    bank.read(0, 13.32);
    bank.precharge(45.0);
    bank.activate(victim, 45.0 + 13.32); // obeyed tRP
    size_t ones = 0;
    for (uint32_t col = 0; col < geom.cacheBlocksPerRow(); ++col)
        ones += onesIn(bank.read(col, 75.0));
    EXPECT_EQ(ones, 0u);
}

TEST_F(BankTest, TrcdViolationSamplesRandomBits)
{
    Bank bank = makeBank();
    bank.pokeRowFill(3, false);

    // Repeat the D-RaNGe access loop and count flips at the weakest
    // cells: an all-0 row read early should show a few 1s.
    int total_ones = 0;
    double t = 0.0;
    for (int i = 0; i < 50; ++i) {
        bank.pokeRowFill(3, false);
        bank.activate(3, t);
        auto block = bank.read(0, t + cal.drangeReadNs);
        total_ones += static_cast<int>(onesIn(block));
        bank.precharge(t + 45.0);
        t += 60.0;
    }
    EXPECT_GT(total_ones, 0) << "tRCD failures should flip some bits";
    EXPECT_LT(total_ones, 50 * static_cast<int>(geom.cacheBlockBits) / 2);
}

TEST_F(BankTest, EarlyReadProbabilitiesExposeRace)
{
    Bank bank = makeBank();
    bank.pokeRowFill(3, false);
    auto early = bank.earlyReadProbabilities(3, cal.drangeReadNs);
    auto late = bank.earlyReadProbabilities(3, 13.32);

    double early_h = 0.0;
    double late_h = 0.0;
    for (uint32_t b = 0; b < geom.bitlinesPerRow; ++b) {
        early_h += binaryEntropy(early[b]);
        late_h += binaryEntropy(late[b]);
    }
    EXPECT_GT(early_h, late_h);
    EXPECT_NEAR(late_h, 0.0, 1e-6);
}

TEST_F(BankTest, DropRowReleasesStorage)
{
    Bank bank = makeBank();
    bank.pokeRowFill(9, true);
    EXPECT_TRUE(bank.peekCell(9, 0));
    bank.dropRow(9);
    EXPECT_FALSE(bank.peekCell(9, 0));
}

TEST_F(BankTest, PokeOutOfRangePanics)
{
    Bank bank = makeBank();
    EXPECT_THROW(bank.pokeCell(geom.rowsPerBank, 0, true), PanicError);
    EXPECT_THROW(bank.pokeCell(0, geom.bitlinesPerRow, true),
                 PanicError);
}

} // anonymous namespace
} // namespace quac::dram

/**
 * @file
 * Tests for the DramModule front-end.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "dram/module.hh"

namespace quac::dram
{
namespace
{

ModuleSpec
testSpec()
{
    ModuleSpec spec;
    spec.geometry = Geometry::testScale();
    spec.seed = 5;
    return spec;
}

TEST(DramModule, ConstructsBanks)
{
    DramModule module(testSpec());
    EXPECT_EQ(module.bankCount(), Geometry::testScale().banks);
    EXPECT_NO_THROW(module.bank(0));
    EXPECT_THROW(module.bank(module.bankCount()), FatalError);
}

TEST(DramModule, CommandRoundTrip)
{
    DramModule module(testSpec());
    module.bank(1).pokeRowFill(3, true);
    module.act(1, 3, 0.0);
    auto block = module.readBlock(1, 0, 13.32);
    EXPECT_EQ(block[0], ~uint64_t{0});
    module.pre(1, 45.0);
}

TEST(DramModule, IssueDispatches)
{
    DramModule module(testSpec());
    module.issue({CommandType::ACT, 0, 7, 0, 0.0});
    module.issue({CommandType::RD, 0, 0, 0, 13.32});
    module.issue({CommandType::PRE, 0, 0, 0, 45.0});
    EXPECT_THROW(module.issue({CommandType::WR, 0, 0, 0, 50.0}),
                 FatalError);
}

TEST(DramModule, TemperatureControl)
{
    DramModule module(testSpec());
    EXPECT_DOUBLE_EQ(module.temperature(), 50.0);
    module.setTemperature(85.0);
    EXPECT_DOUBLE_EQ(module.temperature(), 85.0);
    EXPECT_THROW(module.setTemperature(200.0), FatalError);
}

TEST(DramModule, AgeControl)
{
    DramModule module(testSpec());
    module.setAgeDays(30.0);
    EXPECT_DOUBLE_EQ(module.ageDays(), 30.0);
    EXPECT_THROW(module.setAgeDays(-1.0), FatalError);
}

TEST(DramModule, TimingMatchesSpecRate)
{
    ModuleSpec spec = testSpec();
    spec.transferRate = 3200;
    DramModule module(std::move(spec));
    EXPECT_EQ(module.timing().transferRate, 3200u);
}

TEST(DramModule, BanksHaveIndependentNoise)
{
    DramModule module(testSpec());
    for (uint32_t bank : {0u, 1u}) {
        module.bank(bank).pokeSegmentPattern(2, 0b1110);
        uint32_t base = module.geometry().firstRowOfSegment(2);
        module.act(bank, base, 0.0);
        module.pre(bank, 2.5);
        module.act(bank, base + 3, 5.0);
    }
    auto a = module.readBlock(0, 0, 20.0);
    auto b = module.readBlock(1, 0, 20.0);
    EXPECT_NE(a, b);
}

} // anonymous namespace
} // namespace quac::dram

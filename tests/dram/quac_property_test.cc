/**
 * @file
 * Parameterized property tests of the QUAC physics across module
 * seeds and activation variants: the paper's qualitative findings
 * must hold for *every* simulated module, not just one seed.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dram/bank.hh"
#include "dram/segment_model.hh"

namespace quac::dram
{
namespace
{

class QuacPerSeed : public ::testing::TestWithParam<uint64_t>
{
  protected:
    QuacPerSeed()
        : geom(Geometry::testScale()),
          var(geom, cal, GetParam())
    {
        ctx.geom = &geom;
        ctx.cal = &cal;
        ctx.variation = &var;
    }

    double
    avgEntropy(uint8_t pattern, unsigned segments = 12,
               unsigned banks = 1)
    {
        double sum = 0.0;
        for (unsigned bank = 0; bank < banks; ++bank) {
            for (unsigned s = 0; s < segments; ++s) {
                SegmentModel model(geom, cal, var, bank, s);
                sum += model.segmentEntropy(pattern);
            }
        }
        return sum / (segments * banks);
    }

    Geometry geom;
    Calibration cal;
    VariationModel var;
    BankContext ctx;
};

TEST_P(QuacPerSeed, BalancedPatternsDominate)
{
    double h0111 = avgEntropy(patternFromString("0111"));
    double h1000 = avgEntropy(patternFromString("1000"));
    double h0101 = avgEntropy(patternFromString("0101"));
    double h0000 = avgEntropy(patternFromString("0000"));
    EXPECT_GT(h0111, h0101);
    EXPECT_GT(h1000, h0101);
    EXPECT_GT(h0101, h0000);
    EXPECT_GT(h0111, 10.0 * h0000 + 1e-9);
}

TEST_P(QuacPerSeed, DisplayedBeatOmittedOnAverage)
{
    // Module-level claim: average over many segments and banks (a
    // single pattern-favoring segment can locally invert the
    // ordering, as the paper's Section 6.1.3 itself notes).
    double min_displayed = 1e18;
    double max_omitted = 0.0;
    for (uint8_t pattern : allPatterns()) {
        double h = avgEntropy(pattern, 48, 3);
        if ((pattern & 1) != ((pattern >> 1) & 1))
            min_displayed = std::min(min_displayed, h);
        else
            max_omitted = std::max(max_omitted, h);
    }
    EXPECT_GT(min_displayed, max_omitted) << "seed " << GetParam();
}

TEST_P(QuacPerSeed, EntropyNonNegativeAndBounded)
{
    for (uint8_t pattern : allPatterns()) {
        double h = avgEntropy(pattern, 4);
        EXPECT_GE(h, 0.0);
        EXPECT_LE(h, static_cast<double>(geom.bitlinesPerRow));
    }
}

TEST_P(QuacPerSeed, QuacAlwaysOpensFourRowsOnInvertedPair)
{
    Bank bank(&ctx, 0, GetParam() ^ 0x1234);
    for (unsigned first : {0u, 1u, 2u, 3u}) {
        uint32_t base = geom.firstRowOfSegment(5);
        bank.activate(base + first, 0.0);
        bank.precharge(2.5);
        bank.activate(base + (3 - first), 5.0);
        EXPECT_EQ(bank.openRows().size(), 4u)
            << "first offset " << first;
        bank.read(0, 20.0);
        bank.precharge(60.0);
        // settle fully before the next variant
        bank.activate(base, 200.0);
        bank.read(0, 220.0);
        bank.precharge(260.0);
    }
}

TEST_P(QuacPerSeed, ProbabilitiesAreValidAndSeedStable)
{
    Bank bank_a(&ctx, 0, 1);
    Bank bank_b(&ctx, 0, 2);
    bank_a.pokeSegmentPattern(3, 0b1110);
    bank_b.pokeSegmentPattern(3, 0b1110);
    auto pa = bank_a.quacProbabilities(3);
    auto pb = bank_b.quacProbabilities(3);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
        ASSERT_GE(pa[i], 0.0f);
        ASSERT_LE(pa[i], 1.0f);
        // Probabilities depend on variation (module seed), not on
        // the bank's thermal-noise stream.
        ASSERT_EQ(pa[i], pb[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuacPerSeed,
                         ::testing::Values(1, 7, 42, 1337, 90210,
                                           0xDEADBEEF));

/** QUAC weight invariants across the (t1, t2) timing plane. */
class QuacWeightTimings
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(QuacWeightTimings, WeightsPositiveAndFirstDominant)
{
    Calibration cal;
    auto [t1, t2] = GetParam();
    QuacWeights weights = quacWeights(cal, 0, t1, t2);
    for (double w : weights.w)
        EXPECT_GT(w, 0.0);
    // The follower weights never change with timing.
    EXPECT_DOUBLE_EQ(weights.w[1], cal.rowWeight1);
    EXPECT_DOUBLE_EQ(weights.w[2], cal.rowWeight2);
    EXPECT_DOUBLE_EQ(weights.w[3], cal.rowWeight3);
}

INSTANTIATE_TEST_SUITE_P(
    TimingPlane, QuacWeightTimings,
    ::testing::Values(std::make_pair(1.5, 1.5),
                      std::make_pair(2.5, 2.5),
                      std::make_pair(2.5, 4.0),
                      std::make_pair(4.0, 2.5),
                      std::make_pair(5.0, 5.0)));

/** Aging invariants across ages. */
class AgingSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(AgingSweep, DriftIsSmoothAndBounded)
{
    Geometry geom = Geometry::testScale();
    Calibration cal;
    VariationModel var(geom, cal, 99, 1.0, 1.0, 0.03);
    double age = GetParam();
    SegmentModel fresh(geom, cal, var, 0, 2, 50.0, 0.0);
    SegmentModel aged(geom, cal, var, 0, 2, 50.0, age);
    double h_fresh = fresh.segmentEntropy(0b1110);
    double h_aged = aged.segmentEntropy(0b1110);
    EXPECT_GT(h_aged, 0.0);
    // Bounded drift: well under 10% per 30 days at a 3% coefficient.
    EXPECT_NEAR(h_aged / h_fresh, 1.0, 0.10 * (age / 30.0 + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Ages, AgingSweep,
                         ::testing::Values(0.0, 7.0, 30.0, 90.0));

} // anonymous namespace
} // namespace quac::dram

/**
 * @file
 * Tests for the analog sensing math (QUAC weights, development,
 * resolution probability).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hh"
#include "common/rng.hh"
#include "dram/sensing.hh"

namespace quac::dram
{
namespace
{

const Calibration kCal;

/** Net pattern deviation in weight units for a 4-bit pattern. */
double
patternDelta(const QuacWeights &w, uint8_t pattern)
{
    double delta = 0.0;
    for (unsigned i = 0; i < 4; ++i)
        delta += (((pattern >> i) & 1) ? 1.0 : -1.0) * w.w[i];
    return delta;
}

TEST(QuacWeights, OperatingPointNormalization)
{
    QuacWeights w = quacWeights(kCal, 0, 2.5, 2.5);
    EXPECT_NEAR(w.w[0], kCal.firstRowWeight, 1e-9);
    EXPECT_NEAR(w.w[1], kCal.rowWeight1, 1e-12);
    EXPECT_NEAR(w.w[2], kCal.rowWeight2, 1e-12);
    EXPECT_NEAR(w.w[3], kCal.rowWeight3, 1e-12);
}

TEST(QuacWeights, FirstRowBalancesOtherThree)
{
    // The calibration encodes the paper's key observation: the first
    // row's weight equals the sum of the other three, so patterns
    // "0111"/"1000" have zero net deviation.
    QuacWeights w = quacWeights(kCal, 0, 2.5, 2.5);
    EXPECT_NEAR(w.w[0], w.w[1] + w.w[2] + w.w[3], 1e-9);
    EXPECT_NEAR(patternDelta(w, 0b1110), 0.0, 1e-9); // "0111"
    EXPECT_NEAR(patternDelta(w, 0b0001), 0.0, 1e-9); // "1000"
}

TEST(QuacWeights, PaperPatternOrdering)
{
    // |delta| ordering must match Figure 8: the displayed patterns
    // (R0 != R1) all lie below the omitted ones (R0 == R1).
    QuacWeights w = quacWeights(kCal, 0, 2.5, 2.5);
    double d0111 = std::fabs(patternDelta(w, 0b1110));
    double d0110 = std::fabs(patternDelta(w, 0b0110));
    double d0101 = std::fabs(patternDelta(w, 0b1010));
    double d0100 = std::fabs(patternDelta(w, 0b0010));
    double d0011 = std::fabs(patternDelta(w, 0b1100));
    double d0001 = std::fabs(patternDelta(w, 0b1000));
    double d0000 = std::fabs(patternDelta(w, 0b0000));

    EXPECT_LT(d0111, d0110);
    EXPECT_LT(d0110, d0101);
    EXPECT_LT(d0101, d0100);
    EXPECT_LT(d0100, d0011);
    EXPECT_LT(d0011, d0001);
    EXPECT_LT(d0001, d0000);
    EXPECT_NEAR(d0000, 2.0 * kCal.firstRowWeight, 1e-9);
}

TEST(QuacWeights, FirstOffsetSelectsWeightSlot)
{
    QuacWeights w = quacWeights(kCal, 3, 2.5, 2.5);
    EXPECT_NEAR(w.w[3], kCal.firstRowWeight, 1e-9);
    EXPECT_NEAR(w.w[0], kCal.rowWeight1, 1e-12);
    EXPECT_NEAR(w.w[1], kCal.rowWeight2, 1e-12);
    EXPECT_NEAR(w.w[2], kCal.rowWeight3, 1e-12);
}

TEST(QuacWeights, LongerFirstGapIncreasesFirstRowWeight)
{
    QuacWeights base = quacWeights(kCal, 0, 2.5, 2.5);
    QuacWeights longer = quacWeights(kCal, 0, 4.0, 2.5);
    EXPECT_GT(longer.w[0], base.w[0]);
    EXPECT_DOUBLE_EQ(longer.w[1], base.w[1]);
}

TEST(QuacWeights, RejectsBadOffset)
{
    EXPECT_THROW(quacWeights(kCal, 4, 2.5, 2.5), PanicError);
}

TEST(DevelopFraction, DeadZoneThenLinear)
{
    EXPECT_EQ(developFraction(kCal, 0.0), 0.0);
    EXPECT_EQ(developFraction(kCal, kCal.tSenseDead), 0.0);
    EXPECT_GT(developFraction(kCal, kCal.tSenseDead + 1.0), 0.0);
    EXPECT_LT(developFraction(kCal, kCal.tFullDevelop - 0.5), 1.0);
    EXPECT_EQ(developFraction(kCal, kCal.tFullDevelop), 1.0);
    EXPECT_EQ(developFraction(kCal, 100.0), 1.0);
}

TEST(ProbabilityOne, BalancedIsHalf)
{
    EXPECT_NEAR(probabilityOne(0.0, 0.0, 1.0), 0.5, 1e-12);
}

TEST(ProbabilityOne, OffsetShiftsThreshold)
{
    // Deviation above offset favours 1, below favours 0.
    EXPECT_GT(probabilityOne(1.0, 0.0, 1.0), 0.5);
    EXPECT_LT(probabilityOne(0.0, 1.0, 1.0), 0.5);
    EXPECT_NEAR(probabilityOne(2.0, 2.0, 1.0), 0.5, 1e-12);
}

TEST(ProbabilityOne, TailsSaturate)
{
    EXPECT_NEAR(probabilityOne(100.0, 0.0, 1.0), 1.0, 1e-12);
    EXPECT_NEAR(probabilityOne(-100.0, 0.0, 1.0), 0.0, 1e-12);
}

TEST(ProbabilityOne, KnownGaussianValue)
{
    // Phi(1) = 0.841344746...
    EXPECT_NEAR(probabilityOne(1.0, 0.0, 1.0), 0.8413447, 1e-6);
}

TEST(ProbabilityOne, RejectsNonPositiveSigma)
{
    EXPECT_THROW(probabilityOne(0.0, 0.0, 0.0), PanicError);
}

TEST(ProbabilityOneBatch, MatchesScalarOracle)
{
    // Dense sweep of z = (dev - offset) / sigma across the
    // non-degenerate range, at several sigmas.
    for (double sigma : {0.12, 1.0, 5.4}) {
        std::vector<double> dev;
        std::vector<double> offset;
        for (double z = -8.0; z <= 8.0; z += 0.0103) {
            dev.push_back(z * sigma);
            offset.push_back(0.0);
        }
        std::vector<float> batch(dev.size());
        probabilityOneBatch(dev.data(), offset.data(), sigma,
                            batch.data(), dev.size());
        for (size_t i = 0; i < dev.size(); ++i) {
            double oracle = probabilityOne(dev[i], offset[i], sigma);
            ASSERT_NEAR(batch[i], oracle, 5e-7)
                << "sigma=" << sigma << " dev=" << dev[i];
        }
    }
}

TEST(ProbabilityOneBatch, SnapsDegenerateTailsExactly)
{
    std::vector<double> dev = {100.0, -100.0, 3.0, 700.0, -650.0};
    std::vector<double> offset = {0.0, 0.0, 0.0, 650.0, 700.0};
    std::vector<float> out(dev.size());
    probabilityOneBatch(dev.data(), offset.data(), 1.0, out.data(),
                        out.size());
    EXPECT_EQ(out[0], 1.0f);
    EXPECT_EQ(out[1], 0.0f);
    EXPECT_GT(out[2], 0.0f);
    EXPECT_LT(out[2], 1.0f);
    EXPECT_EQ(out[3], 1.0f);
    EXPECT_EQ(out[4], 0.0f);
}

TEST(ProbabilityOneBatch, RejectsNonPositiveSigma)
{
    double dev = 0.0, offset = 0.0;
    float out = 0.0f;
    EXPECT_THROW(probabilityOneBatch(&dev, &offset, 0.0, &out, 1),
                 PanicError);
}

TEST(ResolveBitsBatch, PacksComparisonsWordAtATime)
{
    // 130 bits: two full words plus a 2-bit tail.
    const size_t nbits = 130;
    std::vector<float> uniforms(nbits);
    std::vector<float> probs(nbits);
    uint64_t state = 99;
    for (size_t i = 0; i < nbits; ++i) {
        uniforms[i] = (quac::splitmix64(state) >> 40) * 0x1p-24f;
        probs[i] = (quac::splitmix64(state) >> 40) * 0x1p-24f;
    }
    std::vector<uint64_t> words(3, ~uint64_t{0});
    resolveBitsBatch(uniforms.data(), probs.data(), nbits, words.data());
    for (size_t i = 0; i < nbits; ++i) {
        bool expect = uniforms[i] < probs[i];
        bool got = (words[i / 64] >> (i % 64)) & 1;
        ASSERT_EQ(got, expect) << "bit " << i;
    }
    // The tail of the last word is zeroed.
    EXPECT_EQ(words[2] >> 2, 0u);
}

TEST(ResolveBitsBatch, DegenerateProbabilitiesAreDeterministic)
{
    const size_t nbits = 64;
    std::vector<float> uniforms(nbits);
    std::vector<float> probs(nbits);
    for (size_t i = 0; i < nbits; ++i) {
        // Extreme uniforms on alternating bits, degenerate p split
        // half/half: p == 0 never fires, p == 1 always fires.
        uniforms[i] = (i % 2) ? 0.0f : 1.0f - 0x1p-24f;
        probs[i] = (i < 32) ? 0.0f : 1.0f;
    }
    uint64_t word = 0;
    resolveBitsBatch(uniforms.data(), probs.data(), nbits, &word);
    EXPECT_EQ(word, 0xFFFFFFFF00000000ull);
}

} // anonymous namespace
} // namespace quac::dram

/**
 * @file
 * Tests for the analog sensing math (QUAC weights, development,
 * resolution probability).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hh"
#include "dram/sensing.hh"

namespace quac::dram
{
namespace
{

const Calibration kCal;

/** Net pattern deviation in weight units for a 4-bit pattern. */
double
patternDelta(const QuacWeights &w, uint8_t pattern)
{
    double delta = 0.0;
    for (unsigned i = 0; i < 4; ++i)
        delta += (((pattern >> i) & 1) ? 1.0 : -1.0) * w.w[i];
    return delta;
}

TEST(QuacWeights, OperatingPointNormalization)
{
    QuacWeights w = quacWeights(kCal, 0, 2.5, 2.5);
    EXPECT_NEAR(w.w[0], kCal.firstRowWeight, 1e-9);
    EXPECT_NEAR(w.w[1], kCal.rowWeight1, 1e-12);
    EXPECT_NEAR(w.w[2], kCal.rowWeight2, 1e-12);
    EXPECT_NEAR(w.w[3], kCal.rowWeight3, 1e-12);
}

TEST(QuacWeights, FirstRowBalancesOtherThree)
{
    // The calibration encodes the paper's key observation: the first
    // row's weight equals the sum of the other three, so patterns
    // "0111"/"1000" have zero net deviation.
    QuacWeights w = quacWeights(kCal, 0, 2.5, 2.5);
    EXPECT_NEAR(w.w[0], w.w[1] + w.w[2] + w.w[3], 1e-9);
    EXPECT_NEAR(patternDelta(w, 0b1110), 0.0, 1e-9); // "0111"
    EXPECT_NEAR(patternDelta(w, 0b0001), 0.0, 1e-9); // "1000"
}

TEST(QuacWeights, PaperPatternOrdering)
{
    // |delta| ordering must match Figure 8: the displayed patterns
    // (R0 != R1) all lie below the omitted ones (R0 == R1).
    QuacWeights w = quacWeights(kCal, 0, 2.5, 2.5);
    double d0111 = std::fabs(patternDelta(w, 0b1110));
    double d0110 = std::fabs(patternDelta(w, 0b0110));
    double d0101 = std::fabs(patternDelta(w, 0b1010));
    double d0100 = std::fabs(patternDelta(w, 0b0010));
    double d0011 = std::fabs(patternDelta(w, 0b1100));
    double d0001 = std::fabs(patternDelta(w, 0b1000));
    double d0000 = std::fabs(patternDelta(w, 0b0000));

    EXPECT_LT(d0111, d0110);
    EXPECT_LT(d0110, d0101);
    EXPECT_LT(d0101, d0100);
    EXPECT_LT(d0100, d0011);
    EXPECT_LT(d0011, d0001);
    EXPECT_LT(d0001, d0000);
    EXPECT_NEAR(d0000, 2.0 * kCal.firstRowWeight, 1e-9);
}

TEST(QuacWeights, FirstOffsetSelectsWeightSlot)
{
    QuacWeights w = quacWeights(kCal, 3, 2.5, 2.5);
    EXPECT_NEAR(w.w[3], kCal.firstRowWeight, 1e-9);
    EXPECT_NEAR(w.w[0], kCal.rowWeight1, 1e-12);
    EXPECT_NEAR(w.w[1], kCal.rowWeight2, 1e-12);
    EXPECT_NEAR(w.w[2], kCal.rowWeight3, 1e-12);
}

TEST(QuacWeights, LongerFirstGapIncreasesFirstRowWeight)
{
    QuacWeights base = quacWeights(kCal, 0, 2.5, 2.5);
    QuacWeights longer = quacWeights(kCal, 0, 4.0, 2.5);
    EXPECT_GT(longer.w[0], base.w[0]);
    EXPECT_DOUBLE_EQ(longer.w[1], base.w[1]);
}

TEST(QuacWeights, RejectsBadOffset)
{
    EXPECT_THROW(quacWeights(kCal, 4, 2.5, 2.5), PanicError);
}

TEST(DevelopFraction, DeadZoneThenLinear)
{
    EXPECT_EQ(developFraction(kCal, 0.0), 0.0);
    EXPECT_EQ(developFraction(kCal, kCal.tSenseDead), 0.0);
    EXPECT_GT(developFraction(kCal, kCal.tSenseDead + 1.0), 0.0);
    EXPECT_LT(developFraction(kCal, kCal.tFullDevelop - 0.5), 1.0);
    EXPECT_EQ(developFraction(kCal, kCal.tFullDevelop), 1.0);
    EXPECT_EQ(developFraction(kCal, 100.0), 1.0);
}

TEST(ProbabilityOne, BalancedIsHalf)
{
    EXPECT_NEAR(probabilityOne(0.0, 0.0, 1.0), 0.5, 1e-12);
}

TEST(ProbabilityOne, OffsetShiftsThreshold)
{
    // Deviation above offset favours 1, below favours 0.
    EXPECT_GT(probabilityOne(1.0, 0.0, 1.0), 0.5);
    EXPECT_LT(probabilityOne(0.0, 1.0, 1.0), 0.5);
    EXPECT_NEAR(probabilityOne(2.0, 2.0, 1.0), 0.5, 1e-12);
}

TEST(ProbabilityOne, TailsSaturate)
{
    EXPECT_NEAR(probabilityOne(100.0, 0.0, 1.0), 1.0, 1e-12);
    EXPECT_NEAR(probabilityOne(-100.0, 0.0, 1.0), 0.0, 1e-12);
}

TEST(ProbabilityOne, KnownGaussianValue)
{
    // Phi(1) = 0.841344746...
    EXPECT_NEAR(probabilityOne(1.0, 0.0, 1.0), 0.8413447, 1e-6);
}

TEST(ProbabilityOne, RejectsNonPositiveSigma)
{
    EXPECT_THROW(probabilityOne(0.0, 0.0, 0.0), PanicError);
}

} // anonymous namespace
} // namespace quac::dram

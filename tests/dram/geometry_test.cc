/**
 * @file
 * Tests for DRAM geometry arithmetic.
 */

#include <gtest/gtest.h>

#include "dram/geometry.hh"

namespace quac::dram
{
namespace
{

TEST(Geometry, PaperScaleMatchesPaperNumbers)
{
    Geometry g = Geometry::paperScale();
    // 8K segments per bank, 64K bitlines per segment (footnote 7).
    EXPECT_EQ(g.segmentsPerBank(), 8192u);
    EXPECT_EQ(g.bitlinesPerRow, 65536u);
    // 128 cache blocks of 512 bits per row.
    EXPECT_EQ(g.cacheBlocksPerRow(), 128u);
    EXPECT_EQ(g.cacheBlockBits, 512u);
    EXPECT_EQ(g.banks, 16u);
    EXPECT_EQ(g.bankGroups, 4u);
}

TEST(Geometry, SegmentRowMapping)
{
    Geometry g = Geometry::testScale();
    EXPECT_EQ(g.segmentOfRow(0), 0u);
    EXPECT_EQ(g.segmentOfRow(3), 0u);
    EXPECT_EQ(g.segmentOfRow(4), 1u);
    EXPECT_EQ(g.firstRowOfSegment(1), 4u);
    EXPECT_EQ(g.firstRowOfSegment(g.segmentsPerBank() - 1),
              g.rowsPerBank - 4);
}

TEST(Geometry, SubarrayMapping)
{
    Geometry g = Geometry::testScale();
    EXPECT_EQ(g.subarrayOfRow(0), 0u);
    EXPECT_EQ(g.subarrayOfRow(g.rowsPerSubarray - 1), 0u);
    EXPECT_EQ(g.subarrayOfRow(g.rowsPerSubarray), 1u);
}

TEST(Geometry, ChipMappingCoversAllChips)
{
    Geometry g = Geometry::paperScale();
    std::vector<int> counts(g.chipsPerRank, 0);
    for (uint32_t b = 0; b < 512; ++b)
        counts[g.chipOfBitline(b)]++;
    for (uint32_t chip = 0; chip < g.chipsPerRank; ++chip)
        EXPECT_EQ(counts[chip], 64) << "chip " << chip;
}

TEST(Geometry, WordsPerRow)
{
    Geometry g = Geometry::testScale();
    EXPECT_EQ(g.wordsPerRow(), g.bitlinesPerRow / 64);
}

TEST(Geometry, BankGroupMapping)
{
    Geometry g = Geometry::paperScale();
    EXPECT_EQ(g.bankGroupOf(0), 0u);
    EXPECT_EQ(g.bankGroupOf(1), 1u);
    EXPECT_EQ(g.bankGroupOf(5), 1u);
}

} // anonymous namespace
} // namespace quac::dram

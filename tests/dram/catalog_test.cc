/**
 * @file
 * Tests for the Table 3 module catalog.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/catalog.hh"

namespace quac::dram
{
namespace
{

TEST(Catalog, SeventeenModules)
{
    EXPECT_EQ(paperCatalog().size(), 17u);
}

TEST(Catalog, NamesUniqueAndOrdered)
{
    std::set<std::string> names;
    for (const CatalogEntry &entry : paperCatalog())
        names.insert(entry.name);
    EXPECT_EQ(names.size(), 17u);
    EXPECT_EQ(paperCatalog().front().name, "M1");
    EXPECT_EQ(paperCatalog().back().name, "M17");
}

TEST(Catalog, EntropyTargetsInTable3Band)
{
    for (const CatalogEntry &entry : paperCatalog()) {
        EXPECT_GT(entry.avgSegmentEntropy, 1000.0) << entry.name;
        EXPECT_LT(entry.avgSegmentEntropy, 2000.0) << entry.name;
        EXPECT_GT(entry.maxSegmentEntropy, entry.avgSegmentEntropy)
            << entry.name;
        EXPECT_LT(entry.maxSegmentEntropy, 3000.0) << entry.name;
    }
}

TEST(Catalog, ThirtyDayColumnsMatchPaper)
{
    // Exactly five modules report 30-day entropy (M3, M4, M8, M10,
    // M11).
    int reported = 0;
    for (const CatalogEntry &entry : paperCatalog()) {
        if (entry.avgSegmentEntropy30d > 0.0) {
            reported++;
            double drift = entry.avgSegmentEntropy30d /
                           entry.avgSegmentEntropy - 1.0;
            EXPECT_LT(std::abs(drift), 0.06) << entry.name;
        }
    }
    EXPECT_EQ(reported, 5);
}

TEST(Catalog, SpecScalesEntropy)
{
    Geometry geom = Geometry::testScale();
    const CatalogEntry &m13 = paperCatalog()[12];
    ASSERT_EQ(m13.name, "M13");
    ModuleSpec spec = specFor(m13, geom);
    EXPECT_NEAR(spec.entropyScale,
                m13.avgSegmentEntropy / kNominalSegmentEntropy, 1e-12);
    EXPECT_EQ(spec.transferRate, 2400u);
    EXPECT_EQ(spec.geometry.rowsPerBank, geom.rowsPerBank);
}

TEST(Catalog, SeedsDistinctAcrossModules)
{
    Geometry geom = Geometry::testScale();
    std::set<uint64_t> seeds;
    for (const ModuleSpec &spec : paperModuleSpecs(geom))
        seeds.insert(spec.seed);
    EXPECT_EQ(seeds.size(), 17u);
}

TEST(Catalog, SaltChangesSeed)
{
    Geometry geom = Geometry::testScale();
    const CatalogEntry &m1 = paperCatalog()[0];
    EXPECT_NE(specFor(m1, geom, 0).seed, specFor(m1, geom, 1).seed);
}

TEST(Catalog, AgingDriftMatchesReportedModules)
{
    Geometry geom = Geometry::testScale();
    for (const CatalogEntry &entry : paperCatalog()) {
        ModuleSpec spec = specFor(entry, geom);
        if (entry.avgSegmentEntropy30d > 0.0) {
            EXPECT_NEAR(spec.agingDrift30d,
                        entry.avgSegmentEntropy30d /
                            entry.avgSegmentEntropy - 1.0,
                        1e-12)
                << entry.name;
        } else {
            EXPECT_LT(std::abs(spec.agingDrift30d), 0.031)
                << entry.name;
        }
    }
}

} // anonymous namespace
} // namespace quac::dram

/**
 * @file
 * Tests for the DDR4 timing parameter factory.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "dram/timing.hh"

namespace quac::dram
{
namespace
{

TEST(Timing, Ddr4_2400Basics)
{
    TimingParams t = TimingParams::ddr4(2400);
    EXPECT_NEAR(t.tCK, 0.8333, 1e-3);
    EXPECT_NEAR(t.tRCD, 13.32, 1e-9);
    EXPECT_NEAR(t.tRAS, 32.0, 1e-9);
    EXPECT_NEAR(t.tRP, 13.32, 1e-9);
    EXPECT_NEAR(t.tRC(), 45.32, 1e-9);
    EXPECT_NEAR(t.tBurst, 4 * t.tCK, 1e-12);
}

TEST(Timing, RrdMatchesPaperFigure2)
{
    // Paper Section 2.1: tRRD_S/tRRD_L are 3.00/4.90 ns in DDR4-2666.
    TimingParams t = TimingParams::ddr4(2666);
    EXPECT_NEAR(t.tRRD_S, 3.33, 0.35);
    EXPECT_NEAR(t.tRRD_L, 4.90, 1e-9);
}

TEST(Timing, AnalogTimingsConstantAcrossRates)
{
    TimingParams slow = TimingParams::ddr4(2133);
    TimingParams fast = TimingParams::ddr4(12000);
    EXPECT_DOUBLE_EQ(slow.tRCD, fast.tRCD);
    EXPECT_DOUBLE_EQ(slow.tRAS, fast.tRAS);
    EXPECT_DOUBLE_EQ(slow.tRP, fast.tRP);
    EXPECT_DOUBLE_EQ(slow.tFAW, fast.tFAW);
}

TEST(Timing, BurstTimeScalesWithRate)
{
    TimingParams slow = TimingParams::ddr4(2400);
    TimingParams fast = TimingParams::ddr4(4800);
    EXPECT_NEAR(slow.tBurst / fast.tBurst, 2.0, 1e-9);
}

TEST(Timing, ClockedFloorsAtHighRates)
{
    // At 12 GT/s, 4 tCK = 0.67 ns but the analog floor holds tRRD_S
    // at 3.33 ns.
    TimingParams t = TimingParams::ddr4(12000);
    EXPECT_NEAR(t.tRRD_S, 3.33, 1e-9);
    EXPECT_NEAR(t.tRRD_L, 4.90, 1e-9);
}

TEST(Timing, PeakBandwidth)
{
    TimingParams t = TimingParams::ddr4(2400);
    // 64-bit channel at 2400 MT/s = 153.6 Gb/s.
    EXPECT_NEAR(t.peakBandwidthGbps(), 153.6, 0.1);
}

TEST(Timing, RejectsAbsurdRate)
{
    EXPECT_THROW(TimingParams::ddr4(100), FatalError);
}

} // anonymous namespace
} // namespace quac::dram

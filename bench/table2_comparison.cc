/**
 * @file
 * Table 2: DRAM-based TRNG comparison on a four-channel DDR4-2400
 * system, plus the Section 9 integration cost summary.
 *
 * Paper expectations (throughput, 256-bit latency):
 *   QUAC-TRNG      13.76 Gb/s, 274 ns
 *   Talukder+      0.68-6.13 Gb/s, 249-201 ns
 *   D-RaNGe        0.92-9.73 Gb/s, 260-36 ns
 *   D-PUF 0.20 Mb/s; DRNG N/A; Keller+ 0.025 Mb/s; Pyo+ 2.17 Mb/s
 */

#include <cmath>
#include <cstdio>

#include "baselines/drange.hh"
#include "baselines/low_throughput.hh"
#include "baselines/talukder.hh"
#include "core/characterizer.hh"
#include "sched/trng_programs.hh"
#include "util.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"full", "stride", "modules", "threads",
                              "channels"});
    auto opts = benchutil::SweepOptions::parse(args, 32);
    double channels = static_cast<double>(args.getUint("channels", 4));

    benchutil::printExperimentHeader(
        "Table 2: DRAM TRNG comparison (4-channel DDR4-2400)",
        "QUAC-TRNG 13.76 Gb/s / 274 ns; enhanced baselines 6-10 Gb/s;"
        " basic baselines <1 Gb/s; legacy TRNGs in Mb/s",
        opts.note());

    auto timing = dram::TimingParams::ddr4(2400);
    auto specs = benchutil::catalogModules(opts.moduleCount);

    // Characterize a representative module for the substrates'
    // entropy parameters; average over a few modules for stability.
    double sib_sum = 0.0;
    double columns_sum = 0.0;
    double drange_entropy_sum = 0.0;
    double drange_cells_sum = 0.0;
    double taluk_entropy_sum = 0.0;
    double taluk_cells_sum = 0.0;
    double taluk_sib_sum = 0.0;
    double taluk_columns_sum = 0.0;
    size_t sampled = std::min<size_t>(specs.size(), 5);
    for (size_t i = 0; i < sampled; ++i) {
        dram::DramModule module(specs[i]);
        core::Characterizer characterizer(module);
        core::CharacterizerConfig cfg;
        cfg.segmentStride = opts.stride;
        cfg.threads = opts.threads;
        core::SegmentEntropy best = characterizer.bestSegment(cfg);
        auto cb = characterizer.cacheBlockEntropies(0, best.segment,
                                                    cfg.pattern);
        auto ranges = core::sibRanges(cb, 256.0);
        sib_sum += static_cast<double>(ranges.size());
        columns_sum += ranges.empty() ? 0.0 : ranges.back().endColumn;

        baselines::DRangeTrng drange(module);
        drange.setup();
        drange_entropy_sum += drange.avgBlockEntropy();
        drange_cells_sum += drange.avgTrngCells();

        baselines::TalukderTrng taluk(module);
        taluk.setup();
        taluk_entropy_sum += taluk.avgRowEntropy();
        taluk_cells_sum += taluk.avgStrongCells();
        taluk_sib_sum += taluk.sibPerRow();
        taluk_columns_sum += taluk.columnsReadPerRow();
    }
    double n = static_cast<double>(sampled);

    std::printf("\nCharacterized substrate parameters (averages over "
                "%zu modules):\n", sampled);
    std::printf("  QUAC best-segment SIB: %.1f (paper ~7 from 1784 "
                "bits avg max entropy)\n", sib_sum / n);
    std::printf("  D-RaNGe best-block entropy: %.1f bits "
                "(paper 46.55); TRNG cells/block: %.1f (paper ~4)\n",
                drange_entropy_sum / n, drange_cells_sum / n);
    std::printf("  Talukder+ row entropy: %.1f bits (paper 1023.64); "
                "strong cells/row: %.1f (paper 130.6)\n",
                taluk_entropy_sum / n, taluk_cells_sum / n);

    // --- Schedules ---------------------------------------------------
    sched::QuacScheduleConfig quac_cfg;
    quac_cfg.banks = 4;
    quac_cfg.init = sched::InitMethod::RowClone;
    quac_cfg.profile.sib =
        static_cast<uint32_t>(std::lround(sib_sum / n));
    quac_cfg.profile.columnsRead =
        static_cast<uint32_t>(std::lround(columns_sum / n));
    quac_cfg.profile.columnsPerRow = 128;
    auto quac = sched::simulateQuacTrng(timing, quac_cfg);

    uint32_t drange_accesses = static_cast<uint32_t>(
        std::ceil(256.0 / (drange_entropy_sum / n)));
    sched::DRangeScheduleConfig dre_cfg;
    dre_cfg.bitsPerAccess = 256.0 / drange_accesses;
    dre_cfg.accessesPerNumber = drange_accesses;
    dre_cfg.useSha = true;
    auto drange_e = sched::simulateDRange(timing, dre_cfg);

    sched::DRangeScheduleConfig drb_cfg;
    drb_cfg.bitsPerAccess = drange_cells_sum / n;
    drb_cfg.accessesPerNumber = static_cast<uint32_t>(
        std::ceil(256.0 / std::max(1.0, drb_cfg.bitsPerAccess)));
    drb_cfg.useSha = false;
    auto drange_b = sched::simulateDRange(timing, drb_cfg);

    sched::TalukderScheduleConfig te_cfg;
    te_cfg.bitsPerRow = 256.0 * (taluk_sib_sum / n);
    te_cfg.columnsRead =
        static_cast<uint32_t>(std::lround(taluk_columns_sum / n));
    te_cfg.rowCloneInit = true;
    auto taluk_e = sched::simulateTalukder(timing, te_cfg);

    sched::TalukderScheduleConfig tb_cfg;
    tb_cfg.bitsPerRow =
        256.0 / std::ceil(256.0 / (taluk_cells_sum / n));
    tb_cfg.columnsRead = 128;
    tb_cfg.rowCloneInit = false;
    auto taluk_b = sched::simulateTalukder(timing, tb_cfg);

    Table table({"proposal", "entropy source",
                 "throughput (paper)", "256-bit latency (paper)"});
    auto gbps = [&](const sched::ScheduleStats &stats) {
        return stats.throughputGbps() * channels;
    };
    table.addRow({"QUAC-TRNG", "Quadruple ACT",
                  benchutil::vsPaper(gbps(quac), 13.76) + " Gb/s",
                  benchutil::vsPaper(quac.latency256Ns, 274, 0) +
                      " ns"});
    table.addRow({"Talukder+ (basic)", "Precharge Failure",
                  benchutil::vsPaper(gbps(taluk_b), 0.68) + " Gb/s",
                  benchutil::vsPaper(taluk_b.latency256Ns, 249, 0) +
                      " ns"});
    table.addRow({"Talukder+ (enhanced)", "Precharge Failure",
                  benchutil::vsPaper(gbps(taluk_e), 6.13) + " Gb/s",
                  benchutil::vsPaper(taluk_e.latency256Ns, 201, 0) +
                      " ns"});
    table.addRow({"D-RaNGe (basic)", "Activation Failure",
                  benchutil::vsPaper(gbps(drange_b), 0.92) + " Gb/s",
                  benchutil::vsPaper(drange_b.latency256Ns, 260, 0) +
                      " ns"});
    table.addRow({"D-RaNGe (enhanced)", "Activation Failure",
                  benchutil::vsPaper(gbps(drange_e), 9.73) + " Gb/s",
                  benchutil::vsPaper(drange_e.latency256Ns, 36, 0) +
                      " ns"});
    for (const auto &model : baselines::lowThroughputModels()) {
        std::string throughput =
            model.throughputMbps > 0.0
                ? Table::num(model.throughputMbps, 3) + " Mb/s"
                : std::string("N/A");
        std::string latency =
            model.latency256Ns >= 1e9
                ? Table::num(model.latency256Ns / 1e9, 0) + " s"
                : Table::num(model.latency256Ns / 1e3, 1) + " us";
        table.addRow({model.name, model.entropySource, throughput,
                      latency});
    }
    table.print();

    std::printf("\nSpeedups at 2400 MT/s (paper: 15.08x over "
                "D-RaNGe-basic, 1.41x over D-RaNGe-enhanced, 20.20x / "
                "2.24x over Talukder+):\n");
    std::printf("  QUAC / D-RaNGe-basic:    %.2fx\n",
                gbps(quac) / gbps(drange_b));
    std::printf("  QUAC / D-RaNGe-enhanced: %.2fx\n",
                gbps(quac) / gbps(drange_e));
    std::printf("  QUAC / Talukder-basic:   %.2fx\n",
                gbps(quac) / gbps(taluk_b));
    std::printf("  QUAC / Talukder-enhanced:%.2fx\n",
                gbps(quac) / gbps(taluk_e));

    printBanner("Section 9: integration costs");
    sched::ShaCoreModel sha;
    sched::IntegrationCostModel cost;
    std::printf("SHA-256 core: %.1f cycle latency at %.2f GHz "
                "(%.1f ns), %.1f Gb/s, %.4f mm^2 (paper values)\n",
                sha.latencyCycles, sha.clockGhz, sha.latencyNs(),
                sha.throughputGbps, sha.areaMm2);
    std::printf("Reserved DRAM: %.0f KB = %.4f%% of an 8 GB module "
                "(paper: 192 KB, 0.002%%)\n",
                cost.reservedBytes / 1024.0,
                cost.reservedFraction() * 100.0);
    std::printf("Controller storage: %u bits (paper: 1316), area "
                "%.4f mm^2 + SHA = %.4f mm^2 (paper: 0.0014)\n",
                cost.storageBits(), cost.storageAreaMm2,
                cost.storageAreaMm2 + sha.areaMm2);
    return 0;
}

/**
 * @file
 * Figure 12: QUAC-TRNG throughput available in idle DRAM cycles
 * while SPEC CPU2006 workloads run on a 4-channel DDR4 system.
 *
 * Paper expectations: 10.2 Gb/s average, 3.22 Gb/s minimum,
 * 14.3 Gb/s maximum; memory-bound workloads (lbm, libquantum, mcf)
 * leave the least TRNG bandwidth.
 *
 * Extensions past the paper: a heterogeneous per-channel sweep
 * (each channel runs its own co-runner instead of the workload
 * cloned 4 ways), the DR-STRaNGe entropy-service fairness study,
 * a request-latency study (end-to-end p50/p95/p99 per priority
 * class under fcfs and buffered-fair), and a shard-rebalancing
 * comparison on a starved channel. `--json <path>` writes the
 * latency and rebalancing results machine-readably.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/fault_injection.hh"
#include "core/thermal_governor.hh"
#include "core/trng.hh"
#include "crypto/sha256.hh"
#include "dram/module.hh"
#include "scenario/scenario.hh"
#include "sched/trng_programs.hh"
#include "service/placement.hh"
#include "service/refill_scheduler.hh"
#include "sysperf/channel_sim.hh"
#include "util.hh"

using namespace quac;

namespace
{

/**
 * DR-STRaNGe-style extension: drive the sharded entropy service
 * under each service scenario and fairness policy, draining the
 * buffers with the scenario's client demand each tick and refilling
 * through the scheduler-aware loop (which probes its own iteration
 * cost from the BusScheduler). Reports sustained refill throughput
 * and the slowdown charged to memory traffic.
 */
void
runServiceStudy(double bits_per_iteration, uint64_t seed)
{
    std::printf("\nEntropy-service fairness study "
                "(tick 100 us, 4 shards, 64 KiB SRAM):\n");
    size_t chunk = static_cast<size_t>(bits_per_iteration / 8.0);

    Table table({"scenario", "policy", "refill Gb/s", "demand met",
                 "mem slowdown"});
    for (const auto &scenario : sysperf::serviceScenarios()) {
        // Per-tick client drain in bytes (tick = 0.1 ms).
        double drain_per_tick = scenario.demandBytesPerMs() * 0.1;
        for (auto policy : {sysperf::FairnessPolicy::Fcfs,
                            sysperf::FairnessPolicy::RngPriority,
                            sysperf::FairnessPolicy::BufferedFair}) {
            std::vector<std::unique_ptr<benchutil::CountingTrng>>
                backends;
            std::vector<core::Trng *> pool;
            for (int i = 0; i < 4; ++i) {
                backends.push_back(
                    std::make_unique<benchutil::CountingTrng>(chunk));
                pool.push_back(backends.back().get());
            }
            service::EntropyService svc(
                pool, {.shardCapacityBytes = 16384,
                       .refillWatermark = 0.75,
                       .panicWatermark = 0.25});
            svc.refillBelowWatermark(); // start warm

            service::RefillSchedulerConfig rcfg;
            rcfg.policy = policy;
            rcfg.tickNs = 1.0e5;
            rcfg.seed = seed;
            service::RefillScheduler scheduler(
                svc, scenario.memoryTraffic, rcfg);

            // One bulk drain client per shard: partial service is
            // the demand-not-met signal (no synchronous stealing).
            std::vector<service::EntropyService::Client> clients;
            for (size_t s = 0; s < svc.shardCount(); ++s) {
                clients.push_back(svc.connect(
                    "drain", service::Priority::Bulk, s));
            }
            std::vector<uint8_t> sink(1 << 16);
            double served = 0.0;
            double asked = 0.0;
            const int ticks = 200;
            for (int t = 0; t < ticks; ++t) {
                size_t want = static_cast<size_t>(drain_per_tick) /
                              clients.size();
                for (auto &client : clients) {
                    auto result = client.request(sink.data(), want);
                    asked += static_cast<double>(want);
                    served += static_cast<double>(result.bytes);
                }
                scheduler.tick();
            }
            const service::RefillAccounting &acct = scheduler.total();
            table.addRow({scenario.name,
                          sysperf::fairnessPolicyName(policy),
                          Table::num(acct.refillGbps(), 3),
                          Table::num(asked > 0.0 ? served / asked : 1.0,
                                     3),
                          Table::num(acct.memSlowdown(), 3)});
        }
    }
    table.print();
    std::printf("Expected shape: rng-priority meets demand at the "
                "highest memory slowdown; fcfs never slows memory "
                "traffic; buffered-fair sits between.\n");
}

// ------------------------------------------------ latency study

/** One latency-study result row. */
struct LatencyRow
{
    std::string scenario;
    std::string policy;
    std::string priority;
    size_t requests = 0;
    double hitRate = 0.0;
    double p50Ns = 0.0;
    double p95Ns = 0.0;
    double p99Ns = 0.0;
};

/** A scenario client handle plus its fractional request budget. */
struct TimedClient
{
    service::EntropyService::Client handle;
    size_t requestBytes;
    double requestsPerTick;
    service::Priority priority;
    double pending = 0.0;
};

service::Priority
mapPriority(unsigned priority)
{
    switch (priority) {
    case 0: return service::Priority::Interactive;
    case 1: return service::Priority::Standard;
    default: return service::Priority::Bulk;
    }
}

/**
 * Drive one (scenario, policy) cell of the latency study: a 4-channel
 * service with heterogeneous per-channel co-runners (scenario traffic
 * on channel 0, corunnerMix() on the rest), clients issuing
 * timestamped requests each tick, refill through the multi-channel
 * scheduler. Returns one row per priority class present.
 */
std::vector<LatencyRow>
runLatencyCell(const sysperf::ServiceScenario &scenario,
               sysperf::FairnessPolicy policy,
               double bits_per_iteration, uint64_t seed, int ticks)
{
    constexpr size_t nshards = 8;
    const double tick_ns = 1.0e5;
    size_t chunk = static_cast<size_t>(bits_per_iteration / 8.0);

    std::vector<std::unique_ptr<benchutil::CountingTrng>> backends;
    std::vector<core::Trng *> pool;
    for (size_t i = 0; i < nshards; ++i) {
        backends.push_back(
            std::make_unique<benchutil::CountingTrng>(chunk));
        pool.push_back(backends.back().get());
    }
    // Capacity sized so a channel's worth of shard deficit exceeds
    // its idle time in a tick: refill is idle-limited rather than
    // capacity-limited, which is where the fairness policies
    // genuinely diverge.
    service::EntropyService svc(pool, {.shardCapacityBytes = 32768,
                                       .refillWatermark = 0.75,
                                       .panicWatermark = 0.25});
    svc.refillBelowWatermark();

    service::MultiChannelRefillConfig mcfg;
    mcfg.topology.channels = 4;
    mcfg.policy = policy;
    mcfg.tickNs = tick_ns;
    mcfg.seed = seed;
    mcfg.installLatencyCost = true;
    service::MultiChannelRefillScheduler scheduler(
        svc, sysperf::corunnerMix(scenario.memoryTraffic, 4), mcfg);

    // A bounded handle population per class, with the class demand
    // spread over the handles so the aggregate rate is preserved.
    // The scenario rates are sized against one channel; a 4-channel
    // system serves 4x the client population, which is what makes
    // the policies contend.
    const double demand_scale = 4.0;
    std::vector<TimedClient> clients;
    for (const auto &cls : scenario.clientClasses) {
        unsigned handles = std::min(cls.clients, 16u);
        double per_handle_requests_per_tick =
            demand_scale * cls.demandBytesPerMs() /
            static_cast<double>(cls.requestBytes) / handles *
            (tick_ns * 1e-6);
        for (unsigned h = 0; h < handles; ++h) {
            clients.push_back({svc.connect(cls.name,
                                           mapPriority(cls.priority)),
                               cls.requestBytes,
                               per_handle_requests_per_tick,
                               mapPriority(cls.priority)});
        }
    }

    std::vector<uint8_t> sink(1 << 17);
    struct Arrival
    {
        double at;
        size_t client;
    };
    std::vector<Arrival> arrivals;
    for (int t = 0; t < ticks; ++t) {
        double tick_start = static_cast<double>(t) * tick_ns;
        // Merge every client's arrivals into simulated-time order
        // before issuing: the queue model charges a request for the
        // modelled work ahead of it, so issue order must follow
        // arrival order within a shard.
        arrivals.clear();
        for (size_t i = 0; i < clients.size(); ++i) {
            TimedClient &client = clients[i];
            client.pending += client.requestsPerTick;
            unsigned n = static_cast<unsigned>(client.pending);
            for (unsigned j = 0; j < n; ++j) {
                arrivals.push_back(
                    {tick_start + (j + 0.5) * tick_ns / n, i});
            }
            client.pending -= n;
        }
        std::sort(arrivals.begin(), arrivals.end(),
                  [](const Arrival &a, const Arrival &b) {
                      return a.at != b.at ? a.at < b.at
                                          : a.client < b.client;
                  });
        for (const Arrival &arrival : arrivals) {
            TimedClient &client = clients[arrival.client];
            client.handle.requestAt(sink.data(), client.requestBytes,
                                    arrival.at);
        }
        scheduler.tick();
    }

    std::vector<LatencyRow> rows;
    for (auto priority : {service::Priority::Interactive,
                          service::Priority::Standard,
                          service::Priority::Bulk}) {
        service::LatencyDistribution dist =
            svc.latencySnapshot(priority);
        if (dist.count() == 0)
            continue;
        uint64_t requests = 0;
        uint64_t hits = 0;
        for (const TimedClient &client : clients) {
            if (client.priority != priority)
                continue;
            service::ClientStats stats = client.handle.stats();
            requests += stats.requests;
            hits += stats.bufferHits;
        }
        LatencyRow row;
        row.scenario = scenario.name;
        row.policy = sysperf::fairnessPolicyName(policy);
        row.priority = service::priorityName(priority);
        row.requests = dist.count();
        row.hitRate = requests ? static_cast<double>(hits) /
                                     static_cast<double>(requests)
                               : 0.0;
        row.p50Ns = dist.p50Ns();
        row.p95Ns = dist.p95Ns();
        row.p99Ns = dist.p99Ns();
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<LatencyRow>
runLatencyStudy(double bits_per_iteration, uint64_t seed, int ticks)
{
    std::printf("\nRequest-latency study (4 channels, 8 shards, "
                "heterogeneous co-runners, %d ticks):\n", ticks);
    std::vector<LatencyRow> rows;
    Table table({"scenario", "policy", "priority", "requests",
                 "hit rate", "p50 ns", "p95 ns", "p99 ns"});
    for (const auto &scenario : sysperf::serviceScenarios()) {
        for (auto policy : {sysperf::FairnessPolicy::Fcfs,
                            sysperf::FairnessPolicy::BufferedFair}) {
            for (LatencyRow &row :
                 runLatencyCell(scenario, policy, bits_per_iteration,
                                seed, ticks)) {
                table.addRow({row.scenario, row.policy, row.priority,
                              std::to_string(row.requests),
                              Table::num(row.hitRate, 3),
                              Table::num(row.p50Ns, 0),
                              Table::num(row.p95Ns, 0),
                              Table::num(row.p99Ns, 0)});
                rows.push_back(std::move(row));
            }
        }
    }
    table.print();
    std::printf("Expected shape: buffered-fair cuts the p95/p99 tail "
                "of the heavier scenarios versus fcfs by escalating "
                "refill below the panic watermark.\n");
    return rows;
}

// --------------------------------------------- rebalancing study

/** Outcome of one starved-channel run (rebalancing on or off). */
struct RebalanceOutcome
{
    bool rebalance = false;
    uint64_t migrations = 0;
    double starvedHitRate = 0.0;
    double starvedP95Ns = 0.0;
    /** SHA-256 of every shard's served byte stream, in shard order. */
    std::vector<std::string> shardDigests;
};

/**
 * The starved-shard case: channel 0 is saturated (97% busy, long
 * bursts), channels 1-3 nearly idle, policy FCFS (no stealing), so
 * the shards placed on channel 0 get no refill. With rebalancing
 * the scheduler migrates them to an idle channel after a few
 * starved ticks; without it they miss to synchronous fills forever.
 * Every served byte is captured per shard so the two runs can be
 * proven byte-identical.
 */
RebalanceOutcome
runRebalanceCase(bool rebalance, double bits_per_iteration,
                 uint64_t seed, int ticks)
{
    constexpr size_t nshards = 8;
    const double tick_ns = 1.0e5;
    size_t chunk = static_cast<size_t>(bits_per_iteration / 8.0);

    std::vector<std::unique_ptr<benchutil::CountingTrng>> backends;
    std::vector<core::Trng *> pool;
    for (size_t i = 0; i < nshards; ++i) {
        backends.push_back(
            std::make_unique<benchutil::CountingTrng>(chunk));
        pool.push_back(backends.back().get());
    }
    service::EntropyService svc(pool, {.shardCapacityBytes = 8192,
                                       .refillWatermark = 0.75,
                                       .panicWatermark = 0.25});
    svc.refillBelowWatermark();

    service::MultiChannelRefillConfig mcfg;
    mcfg.topology.channels = 4;
    mcfg.policy = sysperf::FairnessPolicy::Fcfs;
    mcfg.tickNs = tick_ns;
    mcfg.seed = seed;
    mcfg.rebalance = rebalance;
    mcfg.starveTickThreshold = 3;
    mcfg.installLatencyCost = true;
    std::vector<sysperf::WorkloadProfile> traffic = {
        {"saturated", 0.97, 500.0},
        {"calm", 0.05, 60.0},
        {"calm", 0.05, 60.0},
        {"calm", 0.05, 60.0},
    };
    service::MultiChannelRefillScheduler scheduler(svc, traffic, mcfg);

    // One standard client pinned per shard; shards 0 and 4 sit on
    // the saturated channel under the round-robin placement. The
    // per-tick drain far exceeds the saturated channel's usable
    // idle time, so those shards starve unless migrated.
    std::vector<service::EntropyService::Client> clients;
    for (size_t s = 0; s < nshards; ++s) {
        clients.push_back(svc.connect("pinned",
                                      service::Priority::Standard, s));
    }
    std::vector<std::vector<uint8_t>> served(nshards);
    constexpr size_t request_bytes = 2048;
    uint8_t out[request_bytes];
    for (int t = 0; t < ticks; ++t) {
        double tick_start = static_cast<double>(t) * tick_ns;
        for (size_t s = 0; s < nshards; ++s) {
            auto result = clients[s].requestAt(out, request_bytes,
                                               tick_start);
            served[s].insert(served[s].end(), out,
                             out + result.bytes);
        }
        scheduler.tick();
    }

    RebalanceOutcome outcome;
    outcome.rebalance = rebalance;
    outcome.migrations = scheduler.migrations();
    service::ClientStats starved = clients[0].stats();
    outcome.starvedHitRate =
        starved.requests ? static_cast<double>(starved.bufferHits) /
                               static_cast<double>(starved.requests)
                         : 0.0;
    outcome.starvedP95Ns =
        svc.latencySnapshot(service::Priority::Standard).p95Ns();
    for (size_t s = 0; s < nshards; ++s)
        outcome.shardDigests.push_back(Sha256::hex(
            Sha256::hash(served[s].data(), served[s].size())));
    return outcome;
}

bool
runRebalanceStudy(double bits_per_iteration, uint64_t seed,
                  int ticks, RebalanceOutcome &off,
                  RebalanceOutcome &on)
{
    std::printf("\nShard-rebalancing study (channel 0 saturated, "
                "fcfs, %d ticks):\n", ticks);
    off = runRebalanceCase(false, bits_per_iteration, seed, ticks);
    on = runRebalanceCase(true, bits_per_iteration, seed, ticks);

    bool identical = off.shardDigests == on.shardDigests;
    Table table({"rebalance", "migrations", "starved-shard hit rate",
                 "std p95 ns"});
    for (const RebalanceOutcome *outcome : {&off, &on}) {
        table.addRow({outcome->rebalance ? "on" : "off",
                      std::to_string(outcome->migrations),
                      Table::num(outcome->starvedHitRate, 3),
                      Table::num(outcome->starvedP95Ns, 0)});
    }
    table.print();
    std::printf("Per-shard output bytes identical across runs: %s\n",
                identical ? "YES" : "NO (BUG)");
    std::printf("Expected shape: rebalancing migrates the starved "
                "shards to idle channels, recovering their hit rate "
                "without changing any shard's output bytes.\n");
    return identical;
}

// --------------------------------------------- closed-loop study

/** Client placement mode of one closed-loop run. */
enum class PlacementMode
{
    /** Blind round-robin connect, no rebalancing, no migration. */
    Static,
    /** Shard-level rebalancing driven by grant ratios (PR-4 loop). */
    GrantRatio,
    /**
     * The closed loop: least-loaded connect, SLO-driven client
     * migration, and shard rebalancing triggered by the measured
     * per-shard latency tail instead of grant bookkeeping.
     */
    Latency,
};

const char *
placementModeName(PlacementMode mode)
{
    switch (mode) {
    case PlacementMode::Static: return "static";
    case PlacementMode::GrantRatio: return "grant-ratio";
    case PlacementMode::Latency: return "latency";
    }
    return "?";
}

/** Outcome of one closed-loop run. */
struct ClosedLoopOutcome
{
    std::string mode;
    double interactiveP95Ns = 0.0;
    double interactiveP99Ns = 0.0;
    double standardP99Ns = 0.0;
    double interactiveHitRate = 0.0;
    uint64_t clientMigrations = 0;
    uint64_t shardMigrations = 0;
    /** Every byte each shard served, in serve order. */
    std::vector<std::vector<uint8_t>> served;
};

/** Interactive p99 SLO the closed loop enforces, in modelled ns. */
constexpr double kClosedLoopSloNs = 100.0;

/**
 * One closed-loop run: 8 shards over 4 channels under FCFS, channel
 * 0 saturated by the primary co-runner and the rest running the
 * heterogeneous corunnerMix. Per-shard bulk drains outpace channel
 * 0's trickle of idle bandwidth, so its shards sit empty; after a
 * warm-up, interactive and standard clients connect and issue
 * timestamped requests. Whether they suffer depends only on the
 * placement mode under test.
 */
ClosedLoopOutcome
runClosedLoopCase(PlacementMode mode, double bits_per_iteration,
                  uint64_t seed, int ticks)
{
    constexpr size_t nshards = 8;
    constexpr unsigned nchannels = 4;
    const double tick_ns = 1.0e5;
    size_t chunk = static_cast<size_t>(bits_per_iteration / 8.0);

    std::vector<std::unique_ptr<benchutil::CountingTrng>> backends;
    std::vector<core::Trng *> pool;
    for (size_t i = 0; i < nshards; ++i) {
        backends.push_back(
            std::make_unique<benchutil::CountingTrng>(chunk));
        pool.push_back(backends.back().get());
    }
    service::EntropyServiceConfig scfg;
    scfg.shardCapacityBytes = 8192;
    scfg.refillWatermark = 0.75;
    scfg.panicWatermark = 0.25;
    scfg.placement = mode == PlacementMode::Latency
                         ? service::PlacementPolicy::LeastLoaded
                         : service::PlacementPolicy::RoundRobin;
    service::EntropyService svc(pool, scfg);
    svc.refillBelowWatermark();

    service::MultiChannelRefillConfig mcfg;
    mcfg.topology.channels = nchannels;
    mcfg.policy = sysperf::FairnessPolicy::Fcfs;
    mcfg.tickNs = tick_ns;
    mcfg.seed = seed;
    mcfg.installLatencyCost = true;
    mcfg.rebalance = mode != PlacementMode::Static;
    mcfg.starveTickThreshold = 3;
    if (mode == PlacementMode::Latency) {
        mcfg.trigger = service::RebalanceTrigger::ShardLatency;
        mcfg.rebalanceSloNs = kClosedLoopSloNs;
    }
    std::vector<sysperf::WorkloadProfile> traffic =
        sysperf::corunnerMix({"saturated", 0.97, 500.0}, nchannels);
    service::MultiChannelRefillScheduler scheduler(svc, traffic, mcfg);

    service::SloMigratorConfig migcfg;
    migcfg.slo[0] = {0.0, kClosedLoopSloNs};       // interactive p99
    migcfg.slo[1] = {0.0, 4.0 * kClosedLoopSloNs}; // standard p99
    migcfg.breachTicks = 2;
    migcfg.cooldownTicks = 8;
    service::SloMigrator migrator(svc, migcfg);

    ClosedLoopOutcome outcome;
    outcome.mode = placementModeName(mode);
    outcome.served.resize(nshards);

    // One bulk drain per shard; its pressure (2 KiB/tick) dwarfs the
    // saturated channel's usable idle bandwidth.
    std::vector<service::EntropyService::Client> drains;
    for (size_t s = 0; s < nshards; ++s) {
        drains.push_back(
            svc.connect("drain", service::Priority::Bulk, s));
    }
    constexpr size_t drain_bytes = 2048;
    std::vector<uint8_t> buf(1 << 15);
    auto serve = [&](service::EntropyService::Client &client,
                     size_t len, double at) {
        size_t shard = client.shard();
        auto result = std::isnan(at)
                          ? client.request(buf.data(), len)
                          : client.requestAt(buf.data(), len, at);
        outcome.served[shard].insert(outcome.served[shard].end(),
                                     buf.data(),
                                     buf.data() + result.bytes);
    };
    auto drainAll = [&]() {
        for (auto &drain : drains)
            serve(drain, drain_bytes,
                  std::numeric_limits<double>::quiet_NaN());
    };

    // Warm-up: ten drain-only ticks empty the saturated channel's
    // shards while the healthy channels keep theirs topped up, so
    // connect-time load genuinely differs across shards.
    constexpr int warmup = 10;
    for (int t = 0; t < warmup; ++t) {
        drainAll();
        scheduler.tick();
    }

    std::vector<service::EntropyService::Client> interactive;
    for (int i = 0; i < 4; ++i) {
        interactive.push_back(svc.connect(
            "keys" + std::to_string(i), service::Priority::Interactive));
        migrator.manage(interactive.back());
    }
    std::vector<service::EntropyService::Client> standard;
    for (int i = 0; i < 2; ++i) {
        standard.push_back(svc.connect(
            "apps" + std::to_string(i), service::Priority::Standard));
        migrator.manage(standard.back());
    }

    for (int t = 0; t < ticks; ++t) {
        double tick_start = static_cast<double>(warmup + t) * tick_ns;
        drainAll();
        // Two interactive requests per client per tick, one standard,
        // spread across the tick in a fixed arrival order.
        for (size_t i = 0; i < interactive.size(); ++i) {
            serve(interactive[i], 256,
                  tick_start + (0.1 + 0.1 * static_cast<double>(i)) *
                                   tick_ns);
            serve(interactive[i], 256,
                  tick_start + (0.5 + 0.1 * static_cast<double>(i)) *
                                   tick_ns);
        }
        for (size_t i = 0; i < standard.size(); ++i) {
            serve(standard[i], 512,
                  tick_start + (0.45 + 0.1 * static_cast<double>(i)) *
                                   tick_ns);
        }
        scheduler.tick();
        if (mode == PlacementMode::Latency)
            migrator.tick();
    }

    outcome.interactiveP95Ns =
        svc.latencySnapshot(service::Priority::Interactive).p95Ns();
    outcome.interactiveP99Ns =
        svc.latencySnapshot(service::Priority::Interactive).p99Ns();
    outcome.standardP99Ns =
        svc.latencySnapshot(service::Priority::Standard).p99Ns();
    uint64_t requests = 0;
    uint64_t hits = 0;
    for (const auto &client : interactive) {
        service::ClientStats stats = client.stats();
        requests += stats.requests;
        hits += stats.bufferHits;
    }
    outcome.interactiveHitRate =
        requests ? static_cast<double>(hits) /
                       static_cast<double>(requests)
                 : 0.0;
    outcome.clientMigrations = migrator.migrations();
    outcome.shardMigrations = scheduler.migrations();
    return outcome;
}

/**
 * Per-shard byte identity across placement modes: different modes
 * drain different *amounts* from each shard (clients sit elsewhere),
 * but every byte a shard serves must come from the same backend
 * stream position regardless of who asked — so the streams must
 * agree on their common prefix, SHA-verified.
 */
bool
shardPrefixesIdentical(const std::vector<ClosedLoopOutcome *> &runs)
{
    size_t nshards = runs[0]->served.size();
    for (size_t s = 0; s < nshards; ++s) {
        size_t common = runs[0]->served[s].size();
        for (const ClosedLoopOutcome *run : runs)
            common = std::min(common, run->served[s].size());
        std::string reference = Sha256::hex(
            Sha256::hash(runs[0]->served[s].data(), common));
        for (const ClosedLoopOutcome *run : runs) {
            if (Sha256::hex(Sha256::hash(run->served[s].data(),
                                         common)) != reference)
                return false;
        }
    }
    return true;
}

bool
runClosedLoopStudy(double bits_per_iteration, uint64_t seed,
                   int ticks, std::vector<ClosedLoopOutcome> &outcomes,
                   bool &identical)
{
    std::printf("\nClosed-loop placement study (channel 0 saturated, "
                "heterogeneous co-runners, fcfs, %d ticks, "
                "interactive p99 SLO %.0f ns):\n",
                ticks, kClosedLoopSloNs);
    outcomes.clear();
    for (PlacementMode mode :
         {PlacementMode::Static, PlacementMode::GrantRatio,
          PlacementMode::Latency}) {
        outcomes.push_back(
            runClosedLoopCase(mode, bits_per_iteration, seed, ticks));
    }

    Table table({"mode", "int hit rate", "int p95 ns", "int p99 ns",
                 "std p99 ns", "client migs", "shard migs",
                 "SLO met"});
    for (const ClosedLoopOutcome &outcome : outcomes) {
        table.addRow(
            {outcome.mode, Table::num(outcome.interactiveHitRate, 3),
             Table::num(outcome.interactiveP95Ns, 0),
             Table::num(outcome.interactiveP99Ns, 0),
             Table::num(outcome.standardP99Ns, 0),
             std::to_string(outcome.clientMigrations),
             std::to_string(outcome.shardMigrations),
             outcome.interactiveP99Ns <= kClosedLoopSloNs ? "yes"
                                                          : "no"});
    }
    table.print();

    std::vector<ClosedLoopOutcome *> runs;
    for (ClosedLoopOutcome &outcome : outcomes)
        runs.push_back(&outcome);
    identical = shardPrefixesIdentical(runs);
    bool improves =
        outcomes[2].interactiveP99Ns < outcomes[0].interactiveP99Ns;
    std::printf("Per-shard output bytes identical across modes: %s\n",
                identical ? "YES" : "NO (BUG)");
    std::printf("Latency-driven p99 beats static round-robin: %s "
                "(%.0f vs %.0f ns)\n",
                improves ? "YES" : "NO",
                outcomes[2].interactiveP99Ns,
                outcomes[0].interactiveP99Ns);
    std::printf("Expected shape: static leaves interactive clients "
                "missing on the saturated channel's shards forever; "
                "grant-ratio rebalancing refills those shards; the "
                "latency-driven loop additionally places and "
                "migrates the clients themselves, meeting the "
                "tightest tail.\n");
    return improves;
}

// ------------------------------------------------- health study

/** Outcome of one fault-injection run (health on or off). */
struct HealthOutcome
{
    bool health = false;
    uint64_t quarantines = 0;
    uint64_t readmissions = 0;
    /** Faulty bank's windowsTested when quarantine fired (0 = never). */
    uint64_t quarantineWindow = 0;
    uint64_t unhealthyBytesServed = 0;
    uint64_t unhealthyBytesDropped = 0;
    uint64_t resourcings = 0;
    /** Standard-class p99 per phase (pre-fault / fault / recovered). */
    double baselineP99Ns = 0.0;
    double faultyP99Ns = 0.0;
    double recoveredP99Ns = 0.0;
    /** Every byte each shard served, in serve order. */
    std::vector<std::vector<uint8_t>> served;
};

/** The injected fault the health study detects. */
core::FaultSpec
healthStudyFault()
{
    core::FaultSpec fault;
    fault.bank = 1;
    fault.mode = core::FaultMode::BiasedBits;
    fault.startByte = 24576;
    fault.lengthBytes = 32768;
    fault.biasP = 0.95;
    return fault;
}

/** Health-study phase lengths, in scheduler ticks. */
constexpr int kHealthBaselineTicks = 24;
constexpr int kHealthFaultTicks = 56;
constexpr int kHealthRecoveryTicks = 24;

/**
 * One fault-injection run: 4 shards homed on banks 0-3 of a 5-bank
 * software pool (bank 4 is the spare), bank 1 biased to P(one)=0.95
 * for a bounded 32 KiB span of its stream. One pinned standard
 * client drains each shard while the multi-channel scheduler refills
 * (its tick drives the health control loop). With health on, the
 * monitor quarantines bank 1 within a bounded number of windows,
 * shard 1 re-sources to the spare, probation draws walk bank 1 past
 * the fault, and the bank is re-admitted — all without touching the
 * healthy shards' output bytes.
 */
HealthOutcome
runHealthCase(bool health, uint64_t seed)
{
    constexpr size_t nshards = 4;
    constexpr size_t nbanks = 5;
    const double tick_ns = 1.0e5;

    std::vector<std::unique_ptr<core::SoftwareTrng>> sw;
    std::vector<core::Trng *> pool;
    for (size_t b = 0; b < nbanks; ++b) {
        sw.push_back(std::make_unique<core::SoftwareTrng>(
            0xC0FFEE + b, "sw" + std::to_string(b)));
        pool.push_back(sw.back().get());
    }
    core::FaultInjectedTrng faulty(*pool[1], healthStudyFault(), seed);
    pool[1] = &faulty;

    service::EntropyServiceConfig scfg;
    scfg.shards = nshards;
    scfg.shardCapacityBytes = 8192;
    scfg.refillWatermark = 0.75;
    scfg.panicWatermark = 0.25;
    scfg.health.enabled = health;
    scfg.health.windowBits = 8192;
    scfg.health.failWindowLimit = 2;
    scfg.health.probationWindows = 3;
    service::EntropyService svc(pool, scfg);
    svc.refillBelowWatermark();

    service::MultiChannelRefillConfig mcfg;
    mcfg.topology.channels = 2;
    mcfg.policy = sysperf::FairnessPolicy::BufferedFair;
    mcfg.tickNs = tick_ns;
    mcfg.seed = seed;
    mcfg.installLatencyCost = true;
    std::vector<sysperf::WorkloadProfile> traffic = {
        {"calm", 0.05, 60.0},
        {"calm", 0.05, 60.0},
    };
    service::MultiChannelRefillScheduler scheduler(svc, traffic, mcfg);

    std::vector<service::EntropyService::Client> clients;
    for (size_t s = 0; s < nshards; ++s) {
        clients.push_back(svc.connect(
            "pinned", service::Priority::Standard, s));
    }

    HealthOutcome outcome;
    outcome.health = health;
    outcome.served.resize(nshards);
    constexpr size_t request_bytes = 512;
    uint8_t out[request_bytes];
    int tick = 0;
    auto runPhase = [&](int ticks) {
        for (int t = 0; t < ticks; ++t, ++tick) {
            double tick_start = static_cast<double>(tick) * tick_ns;
            for (size_t s = 0; s < nshards; ++s) {
                auto result = clients[s].requestAt(out, request_bytes,
                                                   tick_start);
                outcome.served[s].insert(outcome.served[s].end(), out,
                                         out + result.bytes);
            }
            scheduler.tick();
        }
        double p99 =
            svc.latencySnapshot(service::Priority::Standard).p99Ns();
        svc.resetLatencyStats();
        return p99;
    };

    outcome.baselineP99Ns = runPhase(kHealthBaselineTicks);
    outcome.faultyP99Ns = runPhase(kHealthFaultTicks);
    outcome.recoveredP99Ns = runPhase(kHealthRecoveryTicks);

    service::EntropyService::HealthStats hstats = svc.healthStats();
    outcome.quarantines = hstats.quarantines;
    outcome.readmissions = hstats.readmissions;
    outcome.unhealthyBytesServed = hstats.unhealthyBytesServed;
    outcome.unhealthyBytesDropped = hstats.unhealthyBytesDropped;
    outcome.resourcings = hstats.shardResourcings;
    if (const service::HealthMonitor *monitor = svc.healthMonitor()) {
        for (const service::HealthEvent &event : monitor->events()) {
            if (event.kind == service::HealthEvent::Kind::Quarantine &&
                event.bank == healthStudyFault().bank) {
                outcome.quarantineWindow = event.window;
                break;
            }
        }
    }
    return outcome;
}

/** Structural verdicts of the health study (CI-asserted). */
struct HealthVerdict
{
    HealthOutcome off;
    HealthOutcome on;
    /** Detection bound, in windows of the faulty bank's stream. */
    uint64_t quarantineBound = 0;
    bool quarantined = false;
    bool withinBound = false;
    bool readmitted = false;
    bool healthyShardsIdentical = false;
    bool p99Recovered = false;

    bool pass() const
    {
        return quarantined && withinBound && readmitted &&
               healthyShardsIdentical &&
               on.unhealthyBytesServed == 0;
    }
};

HealthVerdict
runHealthStudy(uint64_t seed)
{
    core::FaultSpec fault = healthStudyFault();
    std::printf("\nHealth-monitoring fault-injection study "
                "(4 shards on 5 software banks, bank %zu biased "
                "P(one)=%.2f for %zu KiB):\n",
                fault.bank, fault.biasP, fault.lengthBytes / 1024);

    HealthVerdict verdict;
    verdict.off = runHealthCase(false, seed);
    verdict.on = runHealthCase(true, seed);

    // Detection bound: the faulty span begins startByte into the
    // bank's stream, so the monitor has seen start/window clean
    // windows before the first faulty one; failWindowLimit failing
    // windows plus alignment slack later it must have quarantined.
    const uint64_t window_bytes = 8192 / 8;
    verdict.quarantineBound =
        fault.startByte / window_bytes + /* failWindowLimit */ 2 + 4;
    verdict.quarantined = verdict.on.quarantines >= 1;
    verdict.withinBound =
        verdict.on.quarantineWindow > 0 &&
        verdict.on.quarantineWindow <= verdict.quarantineBound;
    verdict.readmitted = verdict.on.readmissions >= 1;

    // Shards homed on healthy banks must serve identical bytes
    // whether or not monitoring runs: observation never consumes a
    // bank's stream, and probation draws only touch the faulty bank.
    verdict.healthyShardsIdentical = true;
    for (size_t s = 0; s < verdict.on.served.size(); ++s) {
        if (s == fault.bank)
            continue;
        if (Sha256::hex(Sha256::hash(verdict.on.served[s].data(),
                                     verdict.on.served[s].size())) !=
            Sha256::hex(Sha256::hash(verdict.off.served[s].data(),
                                     verdict.off.served[s].size())))
            verdict.healthyShardsIdentical = false;
    }
    verdict.p99Recovered =
        verdict.on.recoveredP99Ns <=
        2.0 * verdict.on.baselineP99Ns + 100.0;

    Table table({"health", "quarantines", "readmits", "q window",
                 "dropped B", "served bad B", "base p99",
                 "fault p99", "recov p99"});
    for (const HealthOutcome *outcome :
         {&verdict.off, &verdict.on}) {
        table.addRow({outcome->health ? "on" : "off",
                      std::to_string(outcome->quarantines),
                      std::to_string(outcome->readmissions),
                      std::to_string(outcome->quarantineWindow),
                      std::to_string(outcome->unhealthyBytesDropped),
                      std::to_string(outcome->unhealthyBytesServed),
                      Table::num(outcome->baselineP99Ns, 0),
                      Table::num(outcome->faultyP99Ns, 0),
                      Table::num(outcome->recoveredP99Ns, 0)});
    }
    table.print();
    std::printf("Quarantine within %llu windows: %s; re-admitted: "
                "%s; healthy shards byte-identical: %s; unhealthy "
                "bytes served: %llu; p99 recovered: %s\n",
                static_cast<unsigned long long>(
                    verdict.quarantineBound),
                verdict.withinBound ? "YES" : "NO (BUG)",
                verdict.readmitted ? "YES" : "NO (BUG)",
                verdict.healthyShardsIdentical ? "YES" : "NO (BUG)",
                static_cast<unsigned long long>(
                    verdict.on.unhealthyBytesServed),
                verdict.p99Recovered ? "YES" : "NO");
    std::printf("Expected shape: the biased span trips the "
                "continuous tests within failWindowLimit windows, "
                "the shard re-sources to the spare bank, probation "
                "draws walk the bank past the fault and re-admit it, "
                "and no detected-unhealthy byte is ever served.\n");
    return verdict;
}

// ---------------------------------- scenario campaign studies

/**
 * One scenario campaign study: a timed failure campaign replayed
 * attached (ScenarioEngine driving the fault) and detached (the same
 * request schedule against a healthy stack), with the campaign's
 * structural effects, the latency recovery, and byte-level replay
 * identity all CI-asserted.
 */
struct ScenarioStudyOutcome
{
    std::string name;
    std::string campaign;
    scenario::ScenarioEngine::Counters counters;
    /** Per-phase p99 of the protected class (pre / during / after). */
    double baselineP99Ns = 0.0;
    double disturbedP99Ns = 0.0;
    double recoveredP99Ns = 0.0;
    uint64_t failovers = 0;
    uint64_t failbacks = 0;
    uint64_t escalatedTicks = 0;
    uint64_t quarantines = 0;
    uint64_t readmissions = 0;
    uint64_t unhealthyBytesServed = 0;
    uint64_t queuedAtEnd = 0;
    /** Campaign-specific structural effects all landed. */
    bool eventsApplied = false;
    /** Every burst client not denied was eventually admitted. */
    bool admitted = true;
    /** Detached streams are byte-identical (or an exact prefix of)
     * the attached streams on every asserted shard. */
    bool bytesIdentical = false;
    bool p99Recovered = false;

    bool pass() const
    {
        return eventsApplied && admitted && bytesIdentical &&
               p99Recovered && unhealthyBytesServed == 0 &&
               queuedAtEnd == 0;
    }
};

/**
 * Replay-identity check between a detached reference run and the
 * attached campaign run. With flash crowds the attached run serves
 * extra bulk bytes interleaved into the same shard streams, so the
 * invariant is prefix identity over the shorter stream: the campaign
 * may change WHO gets bytes and WHEN, never WHICH bytes a healthy
 * shard serves. @p skip excludes shards the campaign legitimately
 * diverges (the retuned thermal backend, the re-sourced fault bank).
 */
bool
scenarioStreamsMatch(const std::vector<std::vector<uint8_t>> &ref,
                     const std::vector<std::vector<uint8_t>> &got,
                     const std::vector<size_t> &skip, bool prefix)
{
    for (size_t s = 0; s < ref.size(); ++s) {
        if (std::find(skip.begin(), skip.end(), s) != skip.end())
            continue;
        if (!prefix && got[s].size() != ref[s].size())
            return false;
        size_t n = std::min(ref[s].size(), got[s].size());
        if (n == 0)
            return false; // a vacuous match proves nothing
        if (Sha256::hex(Sha256::hash(ref[s].data(), n)) !=
            Sha256::hex(Sha256::hash(got[s].data(), n)))
            return false;
    }
    return true;
}

/** Drive every admitted flash-crowd client once at its issuing
 * phase's request size (@p fallback_bytes for an untagged client),
 * recording served bytes into the per-shard streams (serve order
 * matters for the replay-identity check). */
void
driveCrowd(const scenario::ScenarioEngine &engine, double tick_start,
           size_t fallback_bytes,
           std::vector<std::vector<uint8_t>> &served)
{
    std::vector<uint8_t> buf;
    size_t idx = 0;
    for (const scenario::ScenarioEngine::CrowdClient &crowd :
         engine.crowdClients()) {
        service::EntropyService::Client client = crowd.client;
        size_t bytes = crowd.requestBytes > 0 ? crowd.requestBytes
                                              : fallback_bytes;
        buf.resize(bytes);
        auto result = client.requestAt(
            buf.data(), bytes,
            tick_start + 1.0e3 * static_cast<double>(++idx));
        served[client.shard()].insert(served[client.shard()].end(),
                                      buf.begin(),
                                      buf.begin() + result.bytes);
    }
}

/**
 * Campaign 1 — channel outage and recovery. Four shards over two
 * channels; channel 0 fails at tick 20 and recovers at tick 50. The
 * displaced shards fail over to channel 1, keep refilling through
 * the outage, and return home on recovery; every shard's served
 * stream is byte-identical to a run without the outage, and the
 * standard-class p99 is back within the recovery bound after a
 * settle window.
 */
ScenarioStudyOutcome
runChannelFailScenario(uint64_t seed)
{
    constexpr size_t nshards = 4;
    constexpr int kBaseline = 20;
    constexpr int kOutage = 30;
    constexpr int kSettle = 8;
    constexpr int kSteady = 22;
    const double tick_ns = 1.0e5;

    ScenarioStudyOutcome outcome;
    outcome.name = "channel_failure";
    outcome.campaign = "chfail:0:20:30";

    auto run = [&](bool attach) {
        std::vector<std::unique_ptr<core::SoftwareTrng>> sw;
        std::vector<core::Trng *> pool;
        for (size_t b = 0; b < nshards; ++b) {
            sw.push_back(std::make_unique<core::SoftwareTrng>(
                0xF00D + b, "sw" + std::to_string(b)));
            pool.push_back(sw.back().get());
        }
        service::EntropyServiceConfig scfg;
        scfg.shards = nshards;
        scfg.shardCapacityBytes = 8192;
        scfg.refillWatermark = 0.75;
        scfg.panicWatermark = 0.25;
        service::EntropyService svc(pool, scfg);
        svc.refillBelowWatermark();

        service::MultiChannelRefillConfig mcfg;
        mcfg.topology.channels = 2;
        mcfg.policy = sysperf::FairnessPolicy::BufferedFair;
        mcfg.tickNs = tick_ns;
        mcfg.seed = seed;
        mcfg.installLatencyCost = true;
        std::vector<sysperf::WorkloadProfile> traffic = {
            {"calm", 0.05, 60.0}, {"calm", 0.05, 60.0}};
        service::MultiChannelRefillScheduler scheduler(svc, traffic,
                                                       mcfg);
        auto engine =
            attach ? std::make_unique<scenario::ScenarioEngine>(
                         svc, scheduler,
                         scenario::ScenarioSpec::parse(
                             outcome.campaign))
                   : nullptr;

        std::vector<service::EntropyService::Client> clients;
        for (size_t s = 0; s < nshards; ++s) {
            clients.push_back(svc.connect(
                "pinned", service::Priority::Standard, s));
        }
        std::vector<std::vector<uint8_t>> served(nshards);
        uint8_t out[512];
        uint64_t tick = 0;
        auto runPhase = [&](int ticks) {
            for (int t = 0; t < ticks; ++t, ++tick) {
                if (engine)
                    engine->beginTick(tick);
                double tick_start =
                    static_cast<double>(tick) * tick_ns;
                for (size_t s = 0; s < nshards; ++s) {
                    auto result = clients[s].requestAt(
                        out, sizeof(out), tick_start);
                    served[s].insert(served[s].end(), out,
                                     out + result.bytes);
                }
                scheduler.tick();
            }
            double p99 = svc.latencySnapshot(
                                service::Priority::Standard)
                             .p99Ns();
            svc.resetLatencyStats();
            return p99;
        };
        double base = runPhase(kBaseline);
        double disturbed = runPhase(kOutage + kSettle);
        double recovered = runPhase(kSteady);
        if (attach) {
            outcome.baselineP99Ns = base;
            outcome.disturbedP99Ns = disturbed;
            outcome.recoveredP99Ns = recovered;
            outcome.counters = engine->counters();
            outcome.failovers = scheduler.failovers();
            outcome.failbacks = scheduler.failbacks();
            outcome.unhealthyBytesServed =
                svc.healthStats().unhealthyBytesServed;
        }
        return served;
    };

    std::vector<std::vector<uint8_t>> detached = run(false);
    std::vector<std::vector<uint8_t>> attached = run(true);
    // Round-robin homes shards 0 and 2 on channel 0: both must fail
    // over and both must return.
    outcome.eventsApplied = outcome.counters.channelFailures == 1 &&
                            outcome.counters.channelRecoveries == 1 &&
                            outcome.failovers == 2 &&
                            outcome.failbacks == 2;
    outcome.bytesIdentical =
        scenarioStreamsMatch(detached, attached, {}, false);
    outcome.p99Recovered = outcome.recoveredP99Ns <=
                           2.0 * outcome.baselineP99Ns + 100.0;
    return outcome;
}

/**
 * Campaign 2 — online thermal drift. Backend 0 is a real QuacTrng
 * on the reduced test geometry under a core::ThermalGovernor; the
 * temperature ramps 45→85 °C across a 30-tick window. Band-edge
 * crossings switch the generator's column sets online (no stop, no
 * re-setup) and flush the suspect spans buffered across each switch;
 * the shards homed on untouched software banks replay byte-exact.
 */
ScenarioStudyOutcome
runThermalDriftScenario(uint64_t seed)
{
    constexpr size_t nshards = 4;
    constexpr int kBaseline = 20;
    constexpr int kDrift = 30;
    constexpr int kSettle = 6;
    constexpr int kSteady = 20;
    const double tick_ns = 1.0e5;

    ScenarioStudyOutcome outcome;
    outcome.name = "thermal_drift";
    outcome.campaign = "drift:20:30:45:85";

    auto run = [&](bool attach) {
        dram::ModuleSpec spec;
        spec.geometry = dram::Geometry::testScale();
        spec.seed = 2021;
        dram::DramModule module(spec);
        core::QuacTrngConfig tcfg;
        tcfg.banks = {0, 1};
        tcfg.characterizeStride = 1;
        tcfg.sibEntropyTarget = 24.0;
        tcfg.threads = 2;
        core::QuacTrng trng(module, tcfg);
        core::ThermalGovernorConfig gcfg;
        gcfg.minC = 30.0;
        gcfg.maxC = 90.0;
        gcfg.bands = 8;
        core::ThermalGovernor governor(module, trng, gcfg);

        std::vector<std::unique_ptr<core::SoftwareTrng>> sw;
        std::vector<core::Trng *> pool = {&trng};
        for (size_t b = 1; b < nshards; ++b) {
            sw.push_back(std::make_unique<core::SoftwareTrng>(
                0xD1A7 + b, "sw" + std::to_string(b)));
            pool.push_back(sw.back().get());
        }
        service::EntropyServiceConfig scfg;
        scfg.shards = nshards;
        scfg.shardCapacityBytes = 4096;
        scfg.refillWatermark = 0.75;
        scfg.panicWatermark = 0.25;
        service::EntropyService svc(pool, scfg);
        svc.refillBelowWatermark();

        service::MultiChannelRefillConfig mcfg;
        mcfg.topology.channels = 2;
        mcfg.policy = sysperf::FairnessPolicy::BufferedFair;
        mcfg.tickNs = tick_ns;
        mcfg.seed = seed;
        mcfg.installLatencyCost = true;
        std::vector<sysperf::WorkloadProfile> traffic = {
            {"calm", 0.05, 60.0}, {"calm", 0.05, 60.0}};
        service::MultiChannelRefillScheduler scheduler(svc, traffic,
                                                       mcfg);
        auto engine =
            attach ? std::make_unique<scenario::ScenarioEngine>(
                         svc, scheduler,
                         scenario::ScenarioSpec::parse(
                             outcome.campaign),
                         &governor)
                   : nullptr;

        std::vector<service::EntropyService::Client> clients;
        for (size_t s = 0; s < nshards; ++s) {
            clients.push_back(svc.connect(
                "pinned", service::Priority::Standard, s));
        }
        std::vector<std::vector<uint8_t>> served(nshards);
        uint8_t out[256];
        uint64_t tick = 0;
        auto runPhase = [&](int ticks) {
            for (int t = 0; t < ticks; ++t, ++tick) {
                if (engine)
                    engine->beginTick(tick);
                double tick_start =
                    static_cast<double>(tick) * tick_ns;
                for (size_t s = 0; s < nshards; ++s) {
                    auto result = clients[s].requestAt(
                        out, sizeof(out), tick_start);
                    served[s].insert(served[s].end(), out,
                                     out + result.bytes);
                }
                scheduler.tick();
            }
            double p99 = svc.latencySnapshot(
                                service::Priority::Standard)
                             .p99Ns();
            svc.resetLatencyStats();
            return p99;
        };
        double base = runPhase(kBaseline);
        double disturbed = runPhase(kDrift + kSettle);
        double recovered = runPhase(kSteady);
        if (attach) {
            outcome.baselineP99Ns = base;
            outcome.disturbedP99Ns = disturbed;
            outcome.recoveredP99Ns = recovered;
            outcome.counters = engine->counters();
            outcome.unhealthyBytesServed =
                svc.healthStats().unhealthyBytesServed;
        }
        return served;
    };

    std::vector<std::vector<uint8_t>> detached = run(false);
    std::vector<std::vector<uint8_t>> attached = run(true);
    // The ramp must cross at least one 7.5 °C band edge and flush
    // the suspect bytes buffered across the switch.
    outcome.eventsApplied = outcome.counters.bandSwitches >= 1 &&
                            outcome.counters.suspectBytesDropped > 0;
    // Shard 0 legitimately diverges: its generator was retuned.
    outcome.bytesIdentical =
        scenarioStreamsMatch(detached, attached, {0}, false);
    outcome.p99Recovered = outcome.recoveredP99Ns <=
                           2.0 * outcome.baselineP99Ns + 100.0;
    return outcome;
}

/**
 * Campaign 3 — flash crowd through the admission gate. Interactive
 * clients first run oversized requests that wreck the recent tail
 * (the gate's headroom signal) and escalate both channels' refill
 * policy; a 12-client bulk burst then arrives mid-breach. The gate
 * queues up to its bound, denies the overflow, and releases the
 * queue FIFO once the interactive tail recovers — every non-denied
 * client is eventually admitted, and the detached run's streams are
 * an exact prefix of the attached run's.
 */
ScenarioStudyOutcome
runFlashCrowdScenario(uint64_t seed)
{
    constexpr size_t nshards = 4;
    constexpr int kWarm = 6;
    constexpr int kInflate = 12;   // ticks 6..17; crowd at 10..13
    constexpr int kTransition = 18;
    constexpr int kSteady = 20;    // ticks 36..55
    constexpr size_t kCrowdBytes = 256;
    const double kSloNs = 400.0;
    const double tick_ns = 1.0e5;

    ScenarioStudyOutcome outcome;
    outcome.name = "flash_crowd";
    outcome.campaign = "crowd:10:4:12:256";

    auto run = [&](bool attach) {
        std::vector<std::unique_ptr<core::SoftwareTrng>> sw;
        std::vector<core::Trng *> pool;
        for (size_t b = 0; b < nshards; ++b) {
            sw.push_back(std::make_unique<core::SoftwareTrng>(
                0xBEEF + b, "sw" + std::to_string(b)));
            pool.push_back(sw.back().get());
        }
        service::EntropyServiceConfig scfg;
        scfg.shards = nshards;
        scfg.shardCapacityBytes = 4096;
        scfg.refillWatermark = 0.75;
        scfg.panicWatermark = 0.25;
        scfg.recentLatencyWindow = 16;
        scfg.admission.enabled = true;
        scfg.admission.interactiveSloNs = kSloNs;
        scfg.admission.headroomFraction = 0.8;
        scfg.admission.maxQueuedConnects = 8;
        scfg.admission.retryBackoffTicks = 1;
        scfg.admission.maxBackoffTicks = 8;
        service::EntropyService svc(pool, scfg);
        svc.refillBelowWatermark();

        service::MultiChannelRefillConfig mcfg;
        mcfg.topology.channels = 2;
        mcfg.policy = sysperf::FairnessPolicy::BufferedFair;
        mcfg.tickNs = tick_ns;
        mcfg.seed = seed;
        mcfg.installLatencyCost = true;
        mcfg.sloEscalation = true;
        mcfg.escalateSloNs = kSloNs;
        std::vector<sysperf::WorkloadProfile> traffic = {
            {"calm", 0.05, 60.0}, {"calm", 0.05, 60.0}};
        service::MultiChannelRefillScheduler scheduler(svc, traffic,
                                                       mcfg);
        auto engine =
            attach ? std::make_unique<scenario::ScenarioEngine>(
                         svc, scheduler,
                         scenario::ScenarioSpec::parse(
                             outcome.campaign))
                   : nullptr;

        std::vector<service::EntropyService::Client> clients;
        for (size_t s = 0; s < nshards; ++s) {
            clients.push_back(svc.connect(
                "fg", service::Priority::Interactive, s));
        }
        std::vector<std::vector<uint8_t>> served(nshards);
        std::vector<uint8_t> out(8192);
        uint64_t tick = 0;
        auto runPhase = [&](int ticks, size_t request_bytes) {
            for (int t = 0; t < ticks; ++t, ++tick) {
                double tick_start =
                    static_cast<double>(tick) * tick_ns;
                for (size_t s = 0; s < nshards; ++s) {
                    auto result = clients[s].requestAt(
                        out.data(), request_bytes, tick_start);
                    served[s].insert(served[s].end(), out.begin(),
                                     out.begin() + result.bytes);
                }
                if (engine) {
                    driveCrowd(*engine, tick_start, kCrowdBytes,
                               served);
                    // Connects arrive after the tick's foreground
                    // traffic: the gate prices them on the tail this
                    // tick just produced (each full top-up retires
                    // the window, so pre-traffic probes see a clean
                    // slate).
                    engine->beginTick(tick);
                }
                scheduler.tick();
            }
            double p99 = svc.latencySnapshot(
                                service::Priority::Interactive)
                             .p99Ns();
            svc.resetLatencyStats();
            return p99;
        };
        double base = runPhase(kWarm, 64);
        // Oversized requests always overrun the 4 KiB shard buffer:
        // guaranteed misses, a wrecked recent tail, thin headroom.
        double disturbed = runPhase(kInflate, 8192);
        runPhase(kTransition, 64); // tail ages out, queue drains
        double recovered = runPhase(kSteady, 64);
        if (attach) {
            outcome.baselineP99Ns = base;
            outcome.disturbedP99Ns = disturbed;
            outcome.recoveredP99Ns = recovered;
            outcome.counters = engine->counters();
            outcome.escalatedTicks = scheduler.escalatedTicks();
            outcome.queuedAtEnd = svc.admissionStats().queuedNow;
            outcome.unhealthyBytesServed =
                svc.healthStats().unhealthyBytesServed;
        }
        return served;
    };

    std::vector<std::vector<uint8_t>> detached = run(false);
    std::vector<std::vector<uint8_t>> attached = run(true);
    // All 12 arrive mid-breach: 8 fill the queue, 4 bounce off the
    // bound, and the breach escalates the channels' refill policy.
    outcome.eventsApplied = outcome.counters.crowdAttempted == 12 &&
                            outcome.counters.crowdQueued == 8 &&
                            outcome.counters.crowdDenied == 4 &&
                            outcome.escalatedTicks >= 1;
    outcome.admitted = outcome.counters.crowdAdmitted == 8;
    outcome.bytesIdentical =
        scenarioStreamsMatch(detached, attached, {}, true);
    // The study's recovery bound is the admission SLO itself.
    outcome.p99Recovered = outcome.recoveredP99Ns <= kSloNs;
    return outcome;
}

/**
 * Campaign 4 — the composed worst day: a biased bank (health
 * quarantine + re-source + probation re-admit), a channel outage
 * spanning part of the fault, and a flash crowd during recovery, all
 * in one campaign string. The detached reference is the same
 * schedule against a fully healthy stack: shards never touched by
 * the fault must replay as an exact prefix, no detected-unhealthy
 * byte is served, and the standard tail recovers.
 */
ScenarioStudyOutcome
runMultiFaultScenario(uint64_t seed)
{
    constexpr size_t nshards = 4;
    constexpr size_t nbanks = 5;
    constexpr int kBaseline = 24;
    constexpr int kDisturbed = 72;
    constexpr int kSteady = 24;
    constexpr size_t kCrowdBytes = 256;
    const double tick_ns = 1.0e5;

    ScenarioStudyOutcome outcome;
    outcome.name = "multi_fault";
    outcome.campaign = "fault:1:bias:24576:32768:0.95,"
                       "chfail:0:30:20,crowd:70:4:8:256";
    scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::parse(outcome.campaign);

    auto run = [&](bool attach) {
        std::vector<std::unique_ptr<core::SoftwareTrng>> sw;
        std::vector<core::Trng *> pool;
        for (size_t b = 0; b < nbanks; ++b) {
            sw.push_back(std::make_unique<core::SoftwareTrng>(
                0xC0FFEE + b, "sw" + std::to_string(b)));
            pool.push_back(sw.back().get());
        }
        // The campaign string carries the fault; the harness arms it
        // before the service is built (byte-addressed on the bank's
        // stream, exactly like the health study).
        std::unique_ptr<core::FaultInjectedTrng> faulty;
        if (attach) {
            core::FaultSpec fault = spec.faultSpecs().at(0);
            faulty = std::make_unique<core::FaultInjectedTrng>(
                *pool[fault.bank], fault, seed);
            pool[fault.bank] = faulty.get();
        }
        service::EntropyServiceConfig scfg;
        scfg.shards = nshards;
        scfg.shardCapacityBytes = 8192;
        scfg.refillWatermark = 0.75;
        scfg.panicWatermark = 0.25;
        scfg.recentLatencyWindow = 16;
        scfg.health.enabled = true;
        scfg.health.windowBits = 8192;
        scfg.health.failWindowLimit = 2;
        scfg.health.probationWindows = 3;
        scfg.admission.enabled = true;
        scfg.admission.interactiveSloNs = 400.0;
        scfg.admission.headroomFraction = 0.8;
        scfg.admission.maxQueuedConnects = 8;
        scfg.admission.retryBackoffTicks = 1;
        scfg.admission.maxBackoffTicks = 8;
        service::EntropyService svc(pool, scfg);
        svc.refillBelowWatermark();

        service::MultiChannelRefillConfig mcfg;
        mcfg.topology.channels = 2;
        mcfg.policy = sysperf::FairnessPolicy::BufferedFair;
        mcfg.tickNs = tick_ns;
        mcfg.seed = seed;
        mcfg.installLatencyCost = true;
        mcfg.sloEscalation = true;
        mcfg.escalateSloNs = 400.0;
        std::vector<sysperf::WorkloadProfile> traffic = {
            {"calm", 0.05, 60.0}, {"calm", 0.05, 60.0}};
        service::MultiChannelRefillScheduler scheduler(svc, traffic,
                                                       mcfg);
        auto engine =
            attach ? std::make_unique<scenario::ScenarioEngine>(
                         svc, scheduler, spec)
                   : nullptr;

        std::vector<service::EntropyService::Client> clients;
        for (size_t s = 0; s < nshards; ++s) {
            clients.push_back(svc.connect(
                "pinned", service::Priority::Standard, s));
        }
        std::vector<std::vector<uint8_t>> served(nshards);
        uint8_t out[512];
        uint64_t tick = 0;
        auto runPhase = [&](int ticks) {
            for (int t = 0; t < ticks; ++t, ++tick) {
                if (engine)
                    engine->beginTick(tick);
                double tick_start =
                    static_cast<double>(tick) * tick_ns;
                for (size_t s = 0; s < nshards; ++s) {
                    auto result = clients[s].requestAt(
                        out, sizeof(out), tick_start);
                    served[s].insert(served[s].end(), out,
                                     out + result.bytes);
                }
                if (engine)
                    driveCrowd(*engine, tick_start, kCrowdBytes,
                               served);
                scheduler.tick();
            }
            double p99 = svc.latencySnapshot(
                                service::Priority::Standard)
                             .p99Ns();
            svc.resetLatencyStats();
            return p99;
        };
        double base = runPhase(kBaseline);
        double disturbed = runPhase(kDisturbed);
        double recovered = runPhase(kSteady);
        if (attach) {
            outcome.baselineP99Ns = base;
            outcome.disturbedP99Ns = disturbed;
            outcome.recoveredP99Ns = recovered;
            outcome.counters = engine->counters();
            outcome.failovers = scheduler.failovers();
            outcome.failbacks = scheduler.failbacks();
            outcome.escalatedTicks = scheduler.escalatedTicks();
            service::EntropyService::HealthStats hstats =
                svc.healthStats();
            outcome.quarantines = hstats.quarantines;
            outcome.readmissions = hstats.readmissions;
            outcome.unhealthyBytesServed =
                hstats.unhealthyBytesServed;
            outcome.queuedAtEnd = svc.admissionStats().queuedNow;
        }
        return served;
    };

    std::vector<std::vector<uint8_t>> detached = run(false);
    std::vector<std::vector<uint8_t>> attached = run(true);
    outcome.eventsApplied = outcome.quarantines >= 1 &&
                            outcome.readmissions >= 1 &&
                            outcome.counters.channelFailures == 1 &&
                            outcome.counters.channelRecoveries == 1 &&
                            outcome.failovers >= 1 &&
                            outcome.failbacks >= 1 &&
                            outcome.counters.crowdAttempted == 8 &&
                            outcome.counters.crowdDenied == 0;
    outcome.admitted = outcome.counters.crowdAdmitted == 8;
    // The faulted bank's shard re-sources to the spare: its stream
    // legitimately diverges from the healthy reference.
    outcome.bytesIdentical = scenarioStreamsMatch(
        detached, attached, {spec.faultSpecs().at(0).bank}, true);
    outcome.p99Recovered = outcome.recoveredP99Ns <=
                           2.0 * outcome.baselineP99Ns + 100.0;
    return outcome;
}

/** The four campaigns plus the combined CI verdict. */
struct ScenarioVerdict
{
    std::vector<ScenarioStudyOutcome> studies;

    bool pass() const
    {
        for (const ScenarioStudyOutcome &study : studies)
            if (!study.pass())
                return false;
        return !studies.empty();
    }
};

ScenarioVerdict
runScenarioStudies(uint64_t seed)
{
    std::printf("\nScenario campaign studies (deterministic failure "
                "campaigns replayed attached vs detached):\n");
    ScenarioVerdict verdict;
    verdict.studies.push_back(runChannelFailScenario(seed));
    verdict.studies.push_back(runThermalDriftScenario(seed));
    verdict.studies.push_back(runFlashCrowdScenario(seed));
    verdict.studies.push_back(runMultiFaultScenario(seed));

    Table table({"campaign", "events", "crowd a/q/d", "base p99",
                 "worst p99", "recov p99", "replay", "pass"});
    for (const ScenarioStudyOutcome &study : verdict.studies) {
        table.addRow(
            {study.name, study.eventsApplied ? "applied" : "MISSING",
             std::to_string(study.counters.crowdAdmitted) + "/" +
                 std::to_string(study.counters.crowdQueued) + "/" +
                 std::to_string(study.counters.crowdDenied),
             Table::num(study.baselineP99Ns, 0),
             Table::num(study.disturbedP99Ns, 0),
             Table::num(study.recoveredP99Ns, 0),
             study.bytesIdentical ? "identical" : "DIVERGED",
             study.pass() ? "yes" : "NO (BUG)"});
    }
    table.print();
    std::printf("Expected shape: every campaign edge lands (failover/"
                "failback, band switches with suspect flushes, queue/"
                "deny/release, quarantine/re-admit), tails recover "
                "within the settle windows, no detected-unhealthy "
                "byte is served, and healthy streams replay "
                "byte-exact against the detached reference.\n");
    return verdict;
}

// -------------------------------------------------- JSON output

bool
writeJson(const std::string &path,
          const std::vector<LatencyRow> &latency,
          const RebalanceOutcome &off, const RebalanceOutcome &on,
          bool identical,
          const std::vector<ClosedLoopOutcome> &closed_loop,
          bool closed_loop_identical, bool closed_loop_improves,
          const HealthVerdict &health,
          const ScenarioVerdict &scenarios)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "fig12_system: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::fprintf(f, "{\n  \"latency_study\": [\n");
    for (size_t i = 0; i < latency.size(); ++i) {
        const LatencyRow &row = latency[i];
        std::fprintf(f,
                     "    {\"scenario\": \"%s\", \"policy\": \"%s\", "
                     "\"priority\": \"%s\", \"requests\": %zu, "
                     "\"hit_rate\": %.4f, \"p50_ns\": %.1f, "
                     "\"p95_ns\": %.1f, \"p99_ns\": %.1f}%s\n",
                     row.scenario.c_str(), row.policy.c_str(),
                     row.priority.c_str(), row.requests, row.hitRate,
                     row.p50Ns, row.p95Ns, row.p99Ns,
                     i + 1 < latency.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"rebalance_study\": {\n");
    for (const RebalanceOutcome *outcome : {&off, &on}) {
        std::fprintf(f,
                     "    \"%s\": {\"migrations\": %llu, "
                     "\"starved_hit_rate\": %.4f, "
                     "\"starved_p95_ns\": %.1f},\n",
                     outcome->rebalance ? "on" : "off",
                     static_cast<unsigned long long>(
                         outcome->migrations),
                     outcome->starvedHitRate, outcome->starvedP95Ns);
    }
    std::fprintf(f, "    \"bytes_identical\": %s\n  },\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"closed_loop_study\": {\n"
                 "    \"slo_ns\": %.1f,\n", kClosedLoopSloNs);
    for (const ClosedLoopOutcome &outcome : closed_loop) {
        std::fprintf(
            f,
            "    \"%s\": {\"interactive_hit_rate\": %.4f, "
            "\"interactive_p95_ns\": %.1f, "
            "\"interactive_p99_ns\": %.1f, "
            "\"standard_p99_ns\": %.1f, "
            "\"client_migrations\": %llu, "
            "\"shard_migrations\": %llu, \"slo_met\": %s},\n",
            outcome.mode.c_str(), outcome.interactiveHitRate,
            outcome.interactiveP95Ns, outcome.interactiveP99Ns,
            outcome.standardP99Ns,
            static_cast<unsigned long long>(outcome.clientMigrations),
            static_cast<unsigned long long>(outcome.shardMigrations),
            outcome.interactiveP99Ns <= kClosedLoopSloNs ? "true"
                                                         : "false");
    }
    std::fprintf(f,
                 "    \"bytes_identical\": %s,\n"
                 "    \"latency_beats_static\": %s\n  },\n",
                 closed_loop_identical ? "true" : "false",
                 closed_loop_improves ? "true" : "false");
    std::fprintf(
        f,
        "  \"health_study\": {\n"
        "    \"quarantines\": %llu,\n"
        "    \"readmissions\": %llu,\n"
        "    \"quarantine_window\": %llu,\n"
        "    \"quarantine_bound\": %llu,\n"
        "    \"quarantine_within_bound\": %s,\n"
        "    \"readmitted\": %s,\n"
        "    \"unhealthy_bytes_dropped\": %llu,\n"
        "    \"unhealthy_bytes_served\": %llu,\n"
        "    \"shard_resourcings\": %llu,\n"
        "    \"baseline_p99_ns\": %.1f,\n"
        "    \"faulty_p99_ns\": %.1f,\n"
        "    \"recovered_p99_ns\": %.1f,\n"
        "    \"p99_recovered\": %s,\n"
        "    \"healthy_shards_identical\": %s\n  },\n",
        static_cast<unsigned long long>(health.on.quarantines),
        static_cast<unsigned long long>(health.on.readmissions),
        static_cast<unsigned long long>(health.on.quarantineWindow),
        static_cast<unsigned long long>(health.quarantineBound),
        health.withinBound ? "true" : "false",
        health.readmitted ? "true" : "false",
        static_cast<unsigned long long>(
            health.on.unhealthyBytesDropped),
        static_cast<unsigned long long>(
            health.on.unhealthyBytesServed),
        static_cast<unsigned long long>(health.on.resourcings),
        health.on.baselineP99Ns, health.on.faultyP99Ns,
        health.on.recoveredP99Ns,
        health.p99Recovered ? "true" : "false",
        health.healthyShardsIdentical ? "true" : "false");
    std::fprintf(f, "  \"scenario_studies\": {\n");
    for (const ScenarioStudyOutcome &study : scenarios.studies) {
        std::fprintf(
            f,
            "    \"%s\": {\"campaign\": \"%s\", "
            "\"channel_failures\": %llu, "
            "\"channel_recoveries\": %llu, \"failovers\": %llu, "
            "\"failbacks\": %llu, \"band_switches\": %llu, "
            "\"suspect_bytes_dropped\": %llu, "
            "\"crowd_attempted\": %llu, \"crowd_admitted\": %llu, "
            "\"crowd_queued\": %llu, \"crowd_denied\": %llu, "
            "\"queued_at_end\": %llu, \"escalated_ticks\": %llu, "
            "\"quarantines\": %llu, \"readmissions\": %llu, "
            "\"unhealthy_bytes_served\": %llu, "
            "\"baseline_p99_ns\": %.1f, \"disturbed_p99_ns\": %.1f, "
            "\"recovered_p99_ns\": %.1f, \"events_applied\": %s, "
            "\"crowd_all_admitted\": %s, \"bytes_identical\": %s, "
            "\"p99_recovered\": %s, \"pass\": %s},\n",
            study.name.c_str(), study.campaign.c_str(),
            static_cast<unsigned long long>(
                study.counters.channelFailures),
            static_cast<unsigned long long>(
                study.counters.channelRecoveries),
            static_cast<unsigned long long>(study.failovers),
            static_cast<unsigned long long>(study.failbacks),
            static_cast<unsigned long long>(
                study.counters.bandSwitches),
            static_cast<unsigned long long>(
                study.counters.suspectBytesDropped),
            static_cast<unsigned long long>(
                study.counters.crowdAttempted),
            static_cast<unsigned long long>(
                study.counters.crowdAdmitted),
            static_cast<unsigned long long>(
                study.counters.crowdQueued),
            static_cast<unsigned long long>(
                study.counters.crowdDenied),
            static_cast<unsigned long long>(study.queuedAtEnd),
            static_cast<unsigned long long>(study.escalatedTicks),
            static_cast<unsigned long long>(study.quarantines),
            static_cast<unsigned long long>(study.readmissions),
            static_cast<unsigned long long>(
                study.unhealthyBytesServed),
            study.baselineP99Ns, study.disturbedP99Ns,
            study.recoveredP99Ns,
            study.eventsApplied ? "true" : "false",
            study.admitted ? "true" : "false",
            study.bytesIdentical ? "true" : "false",
            study.p99Recovered ? "true" : "false",
            study.pass() ? "true" : "false");
    }
    std::fprintf(f, "    \"pass\": %s\n  }\n}\n",
                 scenarios.pass() ? "true" : "false");
    std::fclose(f);
    return true;
}

/** Print one Fig-12 sweep table and its summary/shape checks. */
void
printSweep(const std::vector<sysperf::WorkloadTrngResult> &results,
           bool heterogeneous)
{
    Table table(heterogeneous
                    ? std::vector<std::string>{"workload",
                                               "co-runners",
                                               "idle fraction",
                                               "TRNG Gb/s"}
                    : std::vector<std::string>{"workload",
                                               "idle fraction",
                                               "TRNG Gb/s"});
    double sum = 0.0;
    double min_thr = 1e18;
    double max_thr = 0.0;
    std::string min_name;
    std::string max_name;
    for (const auto &result : results) {
        if (heterogeneous) {
            std::string corunners;
            for (size_t c = 1; c < result.channelWorkloads.size();
                 ++c) {
                corunners += c > 1 ? "," : "";
                corunners += result.channelWorkloads[c];
            }
            table.addRow({result.name, corunners,
                          Table::num(result.idleFraction, 3),
                          Table::num(result.throughputGbps, 2)});
        } else {
            table.addRow({result.name,
                          Table::num(result.idleFraction, 3),
                          Table::num(result.throughputGbps, 2)});
        }
        sum += result.throughputGbps;
        if (result.throughputGbps < min_thr) {
            min_thr = result.throughputGbps;
            min_name = result.name;
        }
        if (result.throughputGbps > max_thr) {
            max_thr = result.throughputGbps;
            max_name = result.name;
        }
    }
    table.print();

    double avg = sum / static_cast<double>(results.size());
    if (!heterogeneous) {
        std::printf("\nSummary: avg %.2f (paper 10.2), min %.2f on "
                    "%s (paper 3.22), max %.2f on %s (paper 14.3) "
                    "Gb/s\n",
                    avg, min_thr, min_name.c_str(), max_thr,
                    max_name.c_str());
        std::printf("Shape checks:\n");
        std::printf("  average within band: %s\n",
                    (avg > 7.0 && avg < 14.0) ? "OK" : "OFF");
        std::printf("  memory-bound workload is the minimum: %s "
                    "(%s)\n",
                    (min_name == "lbm" || min_name == "libquantum" ||
                     min_name == "mcf") ? "OK" : "OFF",
                    min_name.c_str());
        std::printf("  compute-bound workload is the maximum: %s "
                    "(%s)\n",
                    (max_name == "namd" || max_name == "sjeng" ||
                     max_name == "gobmk" || max_name == "hmmer")
                        ? "OK" : "OFF",
                    max_name.c_str());
    } else {
        std::printf("\nHeterogeneous summary: avg %.2f, min %.2f on "
                    "%s, max %.2f on %s Gb/s (co-runner mixing "
                    "flattens the homogeneous spread)\n",
                    avg, min_thr, min_name.c_str(), max_thr,
                    max_name.c_str());
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"channels", "window", "seed", "sib", "columns",
                  "ticks", "json"});
    unsigned channels =
        static_cast<unsigned>(args.getUint("channels", 4));
    double window = args.getDouble("window", 2.0e6);
    uint64_t seed = args.getUint("seed", 42);
    uint32_t sib = static_cast<uint32_t>(args.getUint("sib", 7));
    uint32_t columns =
        static_cast<uint32_t>(args.getUint("columns", 128));
    int ticks = static_cast<int>(args.getUint("ticks", 200));
    std::string json_path = args.getString("json", "");

    benchutil::printExperimentHeader(
        "Figure 12: TRNG throughput in idle DRAM cycles (SPEC2006)",
        "avg 10.2 Gb/s, min 3.22, max 14.3 over 23 workloads on 4 "
        "channels",
        "synthetic traces matched to published workload memory "
        "intensity (--window/--seed)");

    // Steady-state per-channel iteration cost from the scheduler.
    sched::QuacScheduleConfig quac_cfg;
    quac_cfg.banks = 4;
    quac_cfg.init = sched::InitMethod::RowClone;
    quac_cfg.profile = {sib, columns, 128};
    auto stats = sched::simulateQuacTrng(
        dram::TimingParams::ddr4(2400), quac_cfg);
    double iterations = static_cast<double>(
        quac_cfg.iterations - quac_cfg.warmupIterations);
    double iteration_ns = stats.totalNs / iterations;
    double bits_per_iteration = stats.bits / iterations;
    std::printf("Per-channel iteration: %.0f ns for %.0f bits "
                "(%.2f Gb/s busy-channel rate)\n\n",
                iteration_ns, bits_per_iteration,
                bits_per_iteration / iteration_ns);

    printSweep(sysperf::runSystemStudy(iteration_ns,
                                       bits_per_iteration, channels,
                                       window, seed),
               false);

    std::printf("\nHeterogeneous per-channel sweep (channel 0 runs "
                "the named workload, co-runners from the SPEC list):\n");
    printSweep(sysperf::runSystemStudy(iteration_ns,
                                       bits_per_iteration, channels,
                                       window, seed, true),
               true);

    runServiceStudy(bits_per_iteration, seed);

    std::vector<LatencyRow> latency =
        runLatencyStudy(bits_per_iteration, seed, ticks);

    RebalanceOutcome off;
    RebalanceOutcome on;
    bool identical = runRebalanceStudy(bits_per_iteration, seed,
                                       ticks, off, on);

    std::vector<ClosedLoopOutcome> closed_loop;
    bool closed_loop_identical = false;
    bool closed_loop_improves = runClosedLoopStudy(
        bits_per_iteration, seed, ticks, closed_loop,
        closed_loop_identical);

    HealthVerdict health = runHealthStudy(seed);

    ScenarioVerdict scenarios = runScenarioStudies(seed);

    if (!json_path.empty() &&
        !writeJson(json_path, latency, off, on, identical,
                   closed_loop, closed_loop_identical,
                   closed_loop_improves, health, scenarios))
        return 1;
    return identical && closed_loop_identical && health.pass() &&
                   scenarios.pass()
               ? 0
               : 1;
}

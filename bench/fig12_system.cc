/**
 * @file
 * Figure 12: QUAC-TRNG throughput available in idle DRAM cycles
 * while SPEC CPU2006 workloads run on a 4-channel DDR4 system.
 *
 * Paper expectations: 10.2 Gb/s average, 3.22 Gb/s minimum,
 * 14.3 Gb/s maximum; memory-bound workloads (lbm, libquantum, mcf)
 * leave the least TRNG bandwidth.
 */

#include <algorithm>
#include <cstdio>

#include "sched/trng_programs.hh"
#include "sysperf/channel_sim.hh"
#include "util.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"channels", "window", "seed", "sib", "columns"});
    unsigned channels =
        static_cast<unsigned>(args.getUint("channels", 4));
    double window = args.getDouble("window", 2.0e6);
    uint64_t seed = args.getUint("seed", 42);
    uint32_t sib = static_cast<uint32_t>(args.getUint("sib", 7));
    uint32_t columns =
        static_cast<uint32_t>(args.getUint("columns", 128));

    benchutil::printExperimentHeader(
        "Figure 12: TRNG throughput in idle DRAM cycles (SPEC2006)",
        "avg 10.2 Gb/s, min 3.22, max 14.3 over 23 workloads on 4 "
        "channels",
        "synthetic traces matched to published workload memory "
        "intensity (--window/--seed)");

    // Steady-state per-channel iteration cost from the scheduler.
    sched::QuacScheduleConfig quac_cfg;
    quac_cfg.banks = 4;
    quac_cfg.init = sched::InitMethod::RowClone;
    quac_cfg.profile = {sib, columns, 128};
    auto stats = sched::simulateQuacTrng(
        dram::TimingParams::ddr4(2400), quac_cfg);
    double iterations = static_cast<double>(
        quac_cfg.iterations - quac_cfg.warmupIterations);
    double iteration_ns = stats.totalNs / iterations;
    double bits_per_iteration = stats.bits / iterations;
    std::printf("Per-channel iteration: %.0f ns for %.0f bits "
                "(%.2f Gb/s busy-channel rate)\n\n",
                iteration_ns, bits_per_iteration,
                bits_per_iteration / iteration_ns);

    auto results = sysperf::runSystemStudy(
        iteration_ns, bits_per_iteration, channels, window, seed);

    Table table({"workload", "idle fraction", "TRNG Gb/s"});
    double sum = 0.0;
    double min_thr = 1e18;
    double max_thr = 0.0;
    std::string min_name;
    std::string max_name;
    for (const auto &result : results) {
        table.addRow({result.name,
                      Table::num(result.idleFraction, 3),
                      Table::num(result.throughputGbps, 2)});
        sum += result.throughputGbps;
        if (result.throughputGbps < min_thr) {
            min_thr = result.throughputGbps;
            min_name = result.name;
        }
        if (result.throughputGbps > max_thr) {
            max_thr = result.throughputGbps;
            max_name = result.name;
        }
    }
    table.print();

    double avg = sum / static_cast<double>(results.size());
    std::printf("\nSummary: avg %.2f (paper 10.2), min %.2f on %s "
                "(paper 3.22), max %.2f on %s (paper 14.3) Gb/s\n",
                avg, min_thr, min_name.c_str(), max_thr,
                max_name.c_str());
    std::printf("Shape checks:\n");
    std::printf("  average within band: %s\n",
                (avg > 7.0 && avg < 14.0) ? "OK" : "OFF");
    std::printf("  memory-bound workload is the minimum: %s (%s)\n",
                (min_name == "lbm" || min_name == "libquantum" ||
                 min_name == "mcf") ? "OK" : "OFF",
                min_name.c_str());
    std::printf("  compute-bound workload is the maximum: %s (%s)\n",
                (max_name == "namd" || max_name == "sjeng" ||
                 max_name == "gobmk" || max_name == "hmmer")
                    ? "OK" : "OFF",
                max_name.c_str());
    return 0;
}

/**
 * @file
 * Figure 12: QUAC-TRNG throughput available in idle DRAM cycles
 * while SPEC CPU2006 workloads run on a 4-channel DDR4 system.
 *
 * Paper expectations: 10.2 Gb/s average, 3.22 Gb/s minimum,
 * 14.3 Gb/s maximum; memory-bound workloads (lbm, libquantum, mcf)
 * leave the least TRNG bandwidth.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sched/trng_programs.hh"
#include "service/refill_scheduler.hh"
#include "sysperf/channel_sim.hh"
#include "util.hh"

using namespace quac;

namespace
{

/**
 * DR-STRaNGe-style extension: drive the sharded entropy service
 * under each service scenario and fairness policy, draining the
 * buffers with the scenario's client demand each tick and refilling
 * through the scheduler-aware loop (which probes its own iteration
 * cost from the BusScheduler). Reports sustained refill throughput
 * and the slowdown charged to memory traffic.
 */
void
runServiceStudy(double bits_per_iteration, uint64_t seed)
{
    std::printf("\nEntropy-service fairness study "
                "(tick 100 us, 4 shards, 64 KiB SRAM):\n");
    size_t chunk = static_cast<size_t>(bits_per_iteration / 8.0);

    Table table({"scenario", "policy", "refill Gb/s", "demand met",
                 "mem slowdown"});
    for (const auto &scenario : sysperf::serviceScenarios()) {
        // Per-tick client drain in bytes (tick = 0.1 ms).
        double drain_per_tick = scenario.demandBytesPerMs() * 0.1;
        for (auto policy : {sysperf::FairnessPolicy::Fcfs,
                            sysperf::FairnessPolicy::RngPriority,
                            sysperf::FairnessPolicy::BufferedFair}) {
            std::vector<std::unique_ptr<benchutil::CountingTrng>>
                backends;
            std::vector<core::Trng *> pool;
            for (int i = 0; i < 4; ++i) {
                backends.push_back(
                    std::make_unique<benchutil::CountingTrng>(chunk));
                pool.push_back(backends.back().get());
            }
            service::EntropyService svc(
                pool, {.shardCapacityBytes = 16384,
                       .refillWatermark = 0.75,
                       .panicWatermark = 0.25});
            svc.refillBelowWatermark(); // start warm

            service::RefillSchedulerConfig rcfg;
            rcfg.policy = policy;
            rcfg.tickNs = 1.0e5;
            rcfg.seed = seed;
            service::RefillScheduler scheduler(
                svc, scenario.memoryTraffic, rcfg);

            // One bulk drain client per shard: partial service is
            // the demand-not-met signal (no synchronous stealing).
            std::vector<service::EntropyService::Client> clients;
            for (size_t s = 0; s < svc.shardCount(); ++s) {
                clients.push_back(svc.connect(
                    "drain", service::Priority::Bulk, s));
            }
            std::vector<uint8_t> sink(1 << 16);
            double served = 0.0;
            double asked = 0.0;
            const int ticks = 200;
            for (int t = 0; t < ticks; ++t) {
                size_t want = static_cast<size_t>(drain_per_tick) /
                              clients.size();
                for (auto &client : clients) {
                    auto result = client.request(sink.data(), want);
                    asked += static_cast<double>(want);
                    served += static_cast<double>(result.bytes);
                }
                scheduler.tick();
            }
            const service::RefillAccounting &acct = scheduler.total();
            table.addRow({scenario.name,
                          sysperf::fairnessPolicyName(policy),
                          Table::num(acct.refillGbps(), 3),
                          Table::num(asked > 0.0 ? served / asked : 1.0,
                                     3),
                          Table::num(acct.memSlowdown(), 3)});
        }
    }
    table.print();
    std::printf("Expected shape: rng-priority meets demand at the "
                "highest memory slowdown; fcfs never slows memory "
                "traffic; buffered-fair sits between.\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"channels", "window", "seed", "sib", "columns"});
    unsigned channels =
        static_cast<unsigned>(args.getUint("channels", 4));
    double window = args.getDouble("window", 2.0e6);
    uint64_t seed = args.getUint("seed", 42);
    uint32_t sib = static_cast<uint32_t>(args.getUint("sib", 7));
    uint32_t columns =
        static_cast<uint32_t>(args.getUint("columns", 128));

    benchutil::printExperimentHeader(
        "Figure 12: TRNG throughput in idle DRAM cycles (SPEC2006)",
        "avg 10.2 Gb/s, min 3.22, max 14.3 over 23 workloads on 4 "
        "channels",
        "synthetic traces matched to published workload memory "
        "intensity (--window/--seed)");

    // Steady-state per-channel iteration cost from the scheduler.
    sched::QuacScheduleConfig quac_cfg;
    quac_cfg.banks = 4;
    quac_cfg.init = sched::InitMethod::RowClone;
    quac_cfg.profile = {sib, columns, 128};
    auto stats = sched::simulateQuacTrng(
        dram::TimingParams::ddr4(2400), quac_cfg);
    double iterations = static_cast<double>(
        quac_cfg.iterations - quac_cfg.warmupIterations);
    double iteration_ns = stats.totalNs / iterations;
    double bits_per_iteration = stats.bits / iterations;
    std::printf("Per-channel iteration: %.0f ns for %.0f bits "
                "(%.2f Gb/s busy-channel rate)\n\n",
                iteration_ns, bits_per_iteration,
                bits_per_iteration / iteration_ns);

    auto results = sysperf::runSystemStudy(
        iteration_ns, bits_per_iteration, channels, window, seed);

    Table table({"workload", "idle fraction", "TRNG Gb/s"});
    double sum = 0.0;
    double min_thr = 1e18;
    double max_thr = 0.0;
    std::string min_name;
    std::string max_name;
    for (const auto &result : results) {
        table.addRow({result.name,
                      Table::num(result.idleFraction, 3),
                      Table::num(result.throughputGbps, 2)});
        sum += result.throughputGbps;
        if (result.throughputGbps < min_thr) {
            min_thr = result.throughputGbps;
            min_name = result.name;
        }
        if (result.throughputGbps > max_thr) {
            max_thr = result.throughputGbps;
            max_name = result.name;
        }
    }
    table.print();

    double avg = sum / static_cast<double>(results.size());
    std::printf("\nSummary: avg %.2f (paper 10.2), min %.2f on %s "
                "(paper 3.22), max %.2f on %s (paper 14.3) Gb/s\n",
                avg, min_thr, min_name.c_str(), max_thr,
                max_name.c_str());
    std::printf("Shape checks:\n");
    std::printf("  average within band: %s\n",
                (avg > 7.0 && avg < 14.0) ? "OK" : "OFF");
    std::printf("  memory-bound workload is the minimum: %s (%s)\n",
                (min_name == "lbm" || min_name == "libquantum" ||
                 min_name == "mcf") ? "OK" : "OFF",
                min_name.c_str());
    std::printf("  compute-bound workload is the maximum: %s (%s)\n",
                (max_name == "namd" || max_name == "sjeng" ||
                 max_name == "gobmk" || max_name == "hmmer")
                    ? "OK" : "OFF",
                max_name.c_str());

    runServiceStudy(bits_per_iteration, seed);
    return 0;
}

/**
 * @file
 * Figure 11: QUAC-TRNG throughput per channel under the One Bank,
 * BGP, and RC+BGP configurations, across the 17 catalog modules.
 *
 * Paper expectations (avg/max/min across modules):
 *   One Bank 0.49 / 0.77 / 0.35 Gb/s
 *   BGP      0.75 / 1.18 / 0.54 Gb/s
 *   RC + BGP 3.44 / 5.41 / 2.46 Gb/s
 *
 * --ablate additionally sweeps bank-group parallelism width and the
 * init method (the DESIGN.md ablations).
 */

#include <cstdio>

#include "common/parallel.hh"
#include "common/stats.hh"
#include "core/characterizer.hh"
#include "sched/trng_programs.hh"
#include "util.hh"

using namespace quac;

namespace
{

/** Per-module iteration profile from characterization. */
sched::IterationProfile
profileFor(const dram::ModuleSpec &spec, uint32_t stride)
{
    dram::DramModule module(spec);
    core::Characterizer characterizer(module);
    core::CharacterizerConfig cfg;
    cfg.segmentStride = stride;
    cfg.threads = 1;
    core::SegmentEntropy best = characterizer.bestSegment(cfg);
    auto cb = characterizer.cacheBlockEntropies(0, best.segment,
                                                cfg.pattern);
    auto ranges = core::sibRanges(cb, 256.0);

    sched::IterationProfile profile;
    profile.sib = static_cast<uint32_t>(ranges.size());
    profile.columnsRead =
        ranges.empty() ? 0 : ranges.back().endColumn;
    profile.columnsPerRow = module.geometry().cacheBlocksPerRow();
    return profile;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"full", "stride", "modules", "threads", "ablate"});
    auto opts = benchutil::SweepOptions::parse(args, 32);
    bool ablate = args.getBool("ablate");

    benchutil::printExperimentHeader(
        "Figure 11: QUAC-TRNG throughput per configuration",
        "One Bank 0.49, BGP 0.75, RC+BGP 3.44 Gb/s per channel "
        "(averages across modules)",
        opts.note());

    auto specs = benchutil::catalogModules(opts.moduleCount);
    std::vector<sched::IterationProfile> profiles(specs.size());
    parallelFor(0, specs.size(), [&](size_t i) {
        profiles[i] = profileFor(specs[i], opts.stride);
    }, opts.threads);

    RunningStats one_bank;
    RunningStats bgp;
    RunningStats rc_bgp;
    Table table({"module", "MT/s", "SIB", "One Bank", "BGP",
                 "RC+BGP"});
    for (size_t i = 0; i < specs.size(); ++i) {
        auto timing = dram::TimingParams::ddr4(specs[i].transferRate);

        sched::QuacScheduleConfig cfg;
        cfg.profile = profiles[i];
        cfg.init = sched::InitMethod::WriteBursts;
        cfg.banks = 1;
        double t_one =
            sched::simulateQuacTrng(timing, cfg).throughputGbps();
        cfg.banks = 4;
        double t_bgp =
            sched::simulateQuacTrng(timing, cfg).throughputGbps();
        cfg.init = sched::InitMethod::RowClone;
        double t_rc =
            sched::simulateQuacTrng(timing, cfg).throughputGbps();

        one_bank.add(t_one);
        bgp.add(t_bgp);
        rc_bgp.add(t_rc);
        table.addRow({specs[i].name,
                      std::to_string(specs[i].transferRate),
                      std::to_string(profiles[i].sib),
                      Table::num(t_one, 3), Table::num(t_bgp, 3),
                      Table::num(t_rc, 3)});
    }
    table.print();

    Table summary({"config", "avg (paper)", "max (paper)",
                   "min (paper)"});
    summary.addRow({"One Bank",
                    benchutil::vsPaper(one_bank.mean(), 0.49),
                    benchutil::vsPaper(one_bank.max(), 0.77),
                    benchutil::vsPaper(one_bank.min(), 0.35)});
    summary.addRow({"BGP", benchutil::vsPaper(bgp.mean(), 0.75),
                    benchutil::vsPaper(bgp.max(), 1.18),
                    benchutil::vsPaper(bgp.min(), 0.54)});
    summary.addRow({"RC + BGP",
                    benchutil::vsPaper(rc_bgp.mean(), 3.44),
                    benchutil::vsPaper(rc_bgp.max(), 5.41),
                    benchutil::vsPaper(rc_bgp.min(), 2.46)});
    std::printf("\n");
    summary.print();

    std::printf("\nShape checks:\n");
    std::printf("  BGP > One Bank: %s\n",
                bgp.mean() > one_bank.mean() ? "OK" : "OFF");
    std::printf("  RC+BGP > 3x BGP (in-DRAM copy pays off): %s\n",
                rc_bgp.mean() > 3.0 * bgp.mean() ? "OK" : "OFF");

    if (ablate) {
        printBanner("Ablation: bank parallelism x init method");
        Table ab({"banks", "WriteBursts Gb/s", "RowClone Gb/s",
                  "RowClone speedup"});
        auto timing = dram::TimingParams::ddr4(2400);
        sched::IterationProfile profile = profiles[0];
        for (uint32_t banks : {1u, 2u, 4u}) {
            sched::QuacScheduleConfig cfg;
            cfg.profile = profile;
            cfg.banks = banks;
            cfg.init = sched::InitMethod::WriteBursts;
            double wr =
                sched::simulateQuacTrng(timing, cfg).throughputGbps();
            cfg.init = sched::InitMethod::RowClone;
            double rc =
                sched::simulateQuacTrng(timing, cfg).throughputGbps();
            ab.addRow({std::to_string(banks), Table::num(wr, 3),
                       Table::num(rc, 3), Table::num(rc / wr, 2)});
        }
        ab.print();

        printBanner("Ablation: SHA input block entropy target");
        Table ab2({"target bits", "SIB", "columns read",
                   "RC+BGP Gb/s"});
        dram::DramModule module(specs[0]);
        core::Characterizer characterizer(module);
        core::CharacterizerConfig ccfg;
        ccfg.segmentStride = opts.stride;
        core::SegmentEntropy best = characterizer.bestSegment(ccfg);
        auto cb = characterizer.cacheBlockEntropies(0, best.segment,
                                                    ccfg.pattern);
        for (double target : {128.0, 256.0, 512.0}) {
            auto ranges = core::sibRanges(cb, target);
            sched::QuacScheduleConfig cfg;
            cfg.banks = 4;
            cfg.init = sched::InitMethod::RowClone;
            cfg.profile.sib = static_cast<uint32_t>(ranges.size());
            cfg.profile.columnsRead =
                ranges.empty() ? 0 : ranges.back().endColumn;
            cfg.profile.columnsPerRow = 128;
            // Output bits per block shrink with the target's hash
            // width only for 256; report raw schedule throughput of
            // 256-bit outputs for comparability.
            double gbps =
                sched::simulateQuacTrng(timing, cfg).throughputGbps();
            ab2.addRow({Table::num(target, 0),
                        std::to_string(ranges.size()),
                        std::to_string(cfg.profile.columnsRead),
                        Table::num(gbps, 3)});
        }
        ab2.print();
        std::printf("(Entropy targets below 256 over-claim per-block "
                    "entropy; above 256 wastes reads. 256 is the "
                    "paper's security-throughput balance.)\n");

        printBanner("Ablation: Section 4.3 native QUAC command");
        Table ab3({"interface", "RC+BGP Gb/s", "256-bit latency ns"});
        sched::QuacScheduleConfig ncfg;
        ncfg.profile = profile;
        ncfg.banks = 4;
        ncfg.init = sched::InitMethod::RowClone;
        auto legacy = sched::simulateQuacTrng(timing, ncfg);
        ncfg.nativeQuacCommand = true;
        auto native = sched::simulateQuacTrng(timing, ncfg);
        ab3.addRow({"ACT-PRE-ACT (violated timings)",
                    Table::num(legacy.throughputGbps(), 3),
                    Table::num(legacy.latency256Ns, 0)});
        ab3.addRow({"native QUAC command",
                    Table::num(native.throughputGbps(), 3),
                    Table::num(native.latency256Ns, 0)});
        ab3.print();
        std::printf("(A specified QUAC command mainly trims command "
                    "slots; the pipeline stays read-bound, matching "
                    "the paper's observation that QUAC-TRNG is "
                    "bandwidth-limited.)\n");
    }
    return 0;
}

/**
 * @file
 * Figure 9: spatial distribution of segment entropy across a DRAM
 * bank (pattern "0111").
 *
 * Paper expectations: a wave-like pattern as segment id grows,
 * module-specific local minima/maxima (M1 vs M2 differ at the same
 * segment), a rise toward the ~8000th segment and a drop at the very
 * end of the bank.
 */

#include <algorithm>
#include <cstdio>

#include "common/parallel.hh"
#include "common/stats.hh"
#include "core/characterizer.hh"
#include "util.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"full", "stride", "modules", "threads", "buckets"});
    auto opts = benchutil::SweepOptions::parse(args, 32);
    uint32_t buckets =
        static_cast<uint32_t>(args.getUint("buckets", 16));

    benchutil::printExperimentHeader(
        "Figure 9: segment entropy across the bank",
        "wave-like spatial pattern; module idiosyncrasies; "
        "end-of-bank rise then terminal drop",
        opts.note());

    auto specs = benchutil::catalogModules(opts.moduleCount);
    std::vector<std::vector<core::SegmentEntropy>> series(specs.size());
    parallelFor(0, specs.size(), [&](size_t i) {
        dram::DramModule module(specs[i]);
        core::Characterizer characterizer(module);
        core::CharacterizerConfig cfg;
        cfg.segmentStride = opts.stride;
        cfg.threads = 1;
        series[i] = characterizer.segmentEntropies(cfg);
    }, opts.threads);

    size_t npoints = series[0].size();
    uint32_t nseg = dram::Geometry::paperScale().segmentsPerBank();

    // Bucketed cross-module average plus the two highlighted modules
    // (the figure's red/black/blue curves).
    Table table({"segment range", "avg all modules", "M1", "M2"});
    std::vector<double> bucket_avg(buckets, 0.0);
    for (uint32_t bucket = 0; bucket < buckets; ++bucket) {
        size_t begin = bucket * npoints / buckets;
        size_t end = (bucket + 1) * npoints / buckets;
        RunningStats all;
        RunningStats m1;
        RunningStats m2;
        for (size_t i = 0; i < series.size(); ++i) {
            for (size_t k = begin; k < end; ++k) {
                all.add(series[i][k].entropy);
                if (i == 0)
                    m1.add(series[i][k].entropy);
                if (i == 1 && series.size() > 1)
                    m2.add(series[i][k].entropy);
            }
        }
        bucket_avg[bucket] = all.mean();
        table.addRow({
            std::to_string(series[0][begin].segment) + "-" +
                std::to_string(series[0][end - 1].segment),
            Table::num(all.mean(), 1),
            Table::num(m1.mean(), 1),
            Table::num(m2.count() ? m2.mean() : 0.0, 1),
        });
    }
    table.print();

    // Per-module aggregates.
    std::printf("\nPer-module segment entropy (avg / max over sampled "
                "segments):\n");
    for (size_t i = 0; i < specs.size(); ++i) {
        RunningStats stats;
        for (const auto &point : series[i])
            stats.add(point.entropy);
        std::printf("  %-4s avg %7.1f  max %7.1f  (Table 3: %7.1f / "
                    "%7.1f)\n",
                    specs[i].name.c_str(), stats.mean(), stats.max(),
                    dram::paperCatalog()[i].avgSegmentEntropy,
                    dram::paperCatalog()[i].maxSegmentEntropy);
    }

    // Shape checks.
    // Wave: count direction changes of the bucketed average.
    int turns = 0;
    for (uint32_t b = 2; b < buckets; ++b) {
        double d1 = bucket_avg[b - 1] - bucket_avg[b - 2];
        double d2 = bucket_avg[b] - bucket_avg[b - 1];
        if (d1 * d2 < 0.0)
            ++turns;
    }
    // End-of-bank: compare the rise window and the final points.
    RunningStats rise;
    RunningStats body;
    double tail_last = series[0].back().entropy;
    RunningStats tail_peak;
    for (size_t i = 0; i < series.size(); ++i) {
        for (const auto &point : series[i]) {
            double x = static_cast<double>(point.segment) / nseg;
            if (x >= 0.90 && x < 0.985)
                rise.add(point.entropy);
            else if (x < 0.90)
                body.add(point.entropy);
            if (x >= 0.95 && x < 0.985)
                tail_peak.add(point.entropy);
        }
    }
    std::printf("\nShape checks:\n");
    std::printf("  wave-like pattern: %d direction changes across %u "
                "buckets -> %s\n",
                turns, buckets, turns >= 3 ? "OK" : "OFF");
    std::printf("  end-of-bank rise: segments in [0.90, 0.985) avg "
                "%.1f vs body %.1f -> %s\n",
                rise.mean(), body.mean(),
                rise.mean() > body.mean() ? "OK" : "OFF");
    std::printf("  terminal drop: last sampled segment (M1) %.1f vs "
                "pre-drop peak %.1f -> %s\n",
                tail_last, tail_peak.mean(),
                tail_last < tail_peak.mean() ? "OK" : "OFF");
    return 0;
}

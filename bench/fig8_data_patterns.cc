/**
 * @file
 * Figure 8: average and maximum DRAM cache-block entropy per init
 * data pattern, across the 17 catalog modules.
 *
 * Paper expectations: "0111" and "1000" give the highest average
 * cache-block entropy (11.07 bits at the top); "1011" the lowest of
 * the displayed patterns (0.17); the eight R0==R1 patterns are
 * omitted for insufficient entropy; the maximum cache-block entropy
 * can reach ~53 bits on pattern-favoring segments.
 */

#include <algorithm>
#include <cstdio>

#include "common/parallel.hh"
#include "common/stats.hh"
#include "core/characterizer.hh"
#include "util.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"full", "stride", "modules", "threads"});
    auto opts = benchutil::SweepOptions::parse(args, 128);

    benchutil::printExperimentHeader(
        "Figure 8: data pattern dependence of QUAC entropy",
        "avg CB entropy peaks at 11.07 bits for '0111'/'1000'; "
        "lowest displayed ('1011') is 0.17; R0==R1 patterns omitted",
        opts.note());

    auto specs = benchutil::catalogModules(opts.moduleCount);
    auto patterns = dram::allPatterns();

    // Per-module, per-pattern stats gathered in parallel.
    std::vector<std::vector<core::PatternStats>> all(specs.size());
    parallelFor(0, specs.size(), [&](size_t i) {
        dram::DramModule module(specs[i]);
        core::Characterizer characterizer(module);
        core::CharacterizerConfig cfg;
        cfg.segmentStride = opts.stride;
        cfg.threads = 1;
        all[i] = characterizer.patternSweep(cfg);
    }, opts.threads);

    Table table({"pattern", "shown in Fig 8", "avg CB entropy",
                 "avg range [min,max]", "max CB entropy"});
    for (size_t p = 0; p < patterns.size(); ++p) {
        RunningStats avg_stats;
        double max_cb = 0.0;
        for (const auto &module_stats : all) {
            avg_stats.add(module_stats[p].avgCacheBlockEntropy);
            max_cb = std::max(max_cb,
                              module_stats[p].maxCacheBlockEntropy);
        }
        uint8_t pattern = patterns[p];
        bool displayed = ((pattern & 1) != ((pattern >> 1) & 1));
        table.addRow({dram::patternToString(pattern),
                      displayed ? "yes" : "no (insufficient)",
                      Table::num(avg_stats.mean(), 3),
                      "[" + Table::num(avg_stats.min(), 2) + ", " +
                          Table::num(avg_stats.max(), 2) + "]",
                      Table::num(max_cb, 1)});
    }
    table.print();

    // Shape checks mirroring the paper's claims.
    auto stat_for = [&](const char *s) {
        uint8_t pattern = dram::patternFromString(s);
        double sum = 0.0;
        for (size_t p = 0; p < patterns.size(); ++p) {
            if (patterns[p] == pattern) {
                for (const auto &module_stats : all)
                    sum += module_stats[p].avgCacheBlockEntropy;
            }
        }
        return sum / static_cast<double>(all.size());
    };

    double h0111 = stat_for("0111");
    double h1000 = stat_for("1000");
    double h1011 = stat_for("1011");
    double h0011 = stat_for("0011");
    std::printf("\nShape checks:\n");
    std::printf("  '0111' avg = %.2f, paper 11.07 -> %s\n", h0111,
                (h0111 > 8.0 && h0111 < 15.0) ? "OK" : "OFF");
    std::printf("  '1000' ~ '0111' (%.2f vs %.2f) -> %s\n", h1000,
                h0111,
                std::abs(h1000 - h0111) < 0.35 * h0111 ? "OK" : "OFF");
    std::printf("  '1011' near bottom of displayed set: %.2f "
                "(paper 0.17)\n", h1011);
    std::printf("  omitted '0011' below displayed '1011': %s\n",
                h0011 < h1011 ? "OK" : "OFF");
    return 0;
}

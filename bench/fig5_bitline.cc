/**
 * @file
 * Figure 5 / Section 4 demonstration: the bitline state timeline of
 * a QUAC operation, and the validation experiment showing that QUAC
 * really opens four rows (writes propagate to all of them).
 */

#include <cmath>
#include <cstdio>

#include "common/cli.hh"
#include "dram/module.hh"
#include "dram/segment_model.hh"
#include "dram/sensing.hh"
#include "softmc/host.hh"
#include "util.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"pattern", "seed"});
    std::string pattern_str = args.getString("pattern", "0111");
    uint8_t pattern = dram::patternFromString(pattern_str.c_str());
    uint64_t seed = args.getUint("seed", 7);

    benchutil::printExperimentHeader(
        "Figure 5: bitline state during a QUAC operation",
        "ACT R0 -> PRE -> ACT R3 with 2.5 ns gaps leaves the bitline "
        "below reliable sensing margins; the SA samples a random "
        "value",
        "analytic model timeline + command-path validation");

    dram::Calibration cal;
    // Timeline of the mean deviation contribution stages for the
    // chosen pattern (units: mV of bitline deviation).
    auto sign = [&](unsigned row) {
        return ((pattern >> row) & 1) ? +1.0 : -1.0;
    };
    double share0 = sign(0) * cal.singleRowKickMv *
                    (1.0 - std::exp(-cal.quacGapNs / 2.0));
    double after_pre = share0 * std::exp(-cal.quacGapNs / cal.tauEqNs);
    dram::QuacWeights weights =
        quacWeights(cal, 0, cal.quacGapNs, cal.quacGapNs);
    double final_dev = 0.0;
    for (unsigned row = 0; row < 4; ++row)
        final_dev += sign(row) * weights.w[row] * cal.vShareMv;

    std::printf("Pattern \"%s\" (R0..R3), single average bitline:\n\n",
                pattern_str.c_str());
    Table table({"time", "event", "mean bitline deviation (mV)"});
    table.addRow({"T0", "precharged (VDD/2)", "0.0"});
    table.addRow({"T1", "ACT R0: R0 cell shares charge",
                  Table::num(share0, 2)});
    table.addRow({"T2", "PRE (tRAS violated): equalization decays "
                        "deviation",
                  Table::num(after_pre, 2)});
    table.addRow({"T3", "ACT R3: latches OR in, R1-R3 open too",
                  "(all four rows driving)"});
    table.addRow({"T4", "net deviation at sensing",
                  Table::num(final_dev, 2)});
    table.print();
    std::printf("\nSensing margin context: offset spread ~%.1f mV, "
                "thermal noise %.2f mV. |deviation| %s the margin -> "
                "%s sampling.\n",
                std::sqrt(cal.saOffsetSigmaMv * cal.saOffsetSigmaMv +
                          cal.segmentMeanSigmaMv *
                              cal.segmentMeanSigmaMv),
                cal.noiseSigmaMvAt50C,
                std::fabs(final_dev) < 2.0 ? "is within" : "exceeds",
                std::fabs(final_dev) < 2.0 ? "metastable"
                                           : "deterministic");

    // --- Section 4 validation on the command path ------------------
    printBanner("Section 4 validation: QUAC opens four rows");
    dram::ModuleSpec spec;
    spec.geometry = dram::Geometry::testScale();
    spec.seed = seed;
    dram::DramModule module(std::move(spec));
    softmc::SoftMcHost host(module);

    uint32_t segment = 3;
    module.bank(0).pokeSegmentPattern(segment, pattern);
    host.quac(0, segment);
    std::printf("open rows after ACT-PRE-ACT: %zu (expect 4)\n",
                module.bank(0).openRows().size());

    // Write a marker through the sense amplifiers and close the bank.
    std::vector<uint64_t> marker(
        module.geometry().cacheBlockBits / 64, 0xA5A5A5A5A5A5A5A5ULL);
    for (uint32_t col = 0;
         col < module.geometry().cacheBlocksPerRow(); ++col) {
        host.wr(0, col, marker);
        host.wait(host.timing().tCCD_L);
    }
    host.wait(host.timing().tRAS);
    host.preObeyed(0);

    uint32_t base = module.geometry().firstRowOfSegment(segment);
    bool all_updated = true;
    for (uint32_t i = 0; i < 4; ++i) {
        auto row = module.bank(0).peekRow(base + i);
        for (uint64_t word : row)
            all_updated = all_updated && (word == 0xA5A5A5A5A5A5A5A5ULL);
    }
    std::printf("all four rows hold the written marker: %s "
                "(paper: 'all four rows are updated')\n",
                all_updated ? "OK" : "OFF");

    // Non-inverted LSB pair: no QUAC.
    module.bank(0).pokeSegmentPattern(segment, pattern);
    host.act(0, base + 0);
    host.wait(2.5);
    host.pre(0);
    host.wait(2.5);
    host.act(0, base + 1);
    host.wait(host.timing().tRCD);
    std::printf("ACT pair with non-inverted LSBs (rows 0,1) opens %zu "
                "rows (expect 2)\n",
                module.bank(0).openRows().size());
    host.preObeyed(0);
    return 0;
}

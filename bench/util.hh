/**
 * @file
 * Shared helpers for the per-experiment benchmark harnesses.
 */

#ifndef QUAC_BENCH_UTIL_HH
#define QUAC_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/trng.hh"
#include "dram/catalog.hh"

namespace quac::benchutil
{

/**
 * Deterministic byte-counter backend for service-layer benches: a
 * cheap stand-in generator whose stream is its byte index, with an
 * optional whole-iteration chunk granularity.
 */
class CountingTrng : public core::Trng
{
  public:
    explicit CountingTrng(size_t chunk = 0) : chunk_(chunk) {}
    std::string name() const override { return "counting"; }

    void
    fill(uint8_t *out, size_t len) override
    {
        for (size_t i = 0; i < len; ++i)
            out[i] = static_cast<uint8_t>(counter_++);
    }

    size_t preferredChunkBytes() override { return chunk_; }

  private:
    size_t chunk_;
    uint64_t counter_ = 0;
};

/** Print the experiment banner with its paper reference. */
inline void
printExperimentHeader(const std::string &experiment,
                      const std::string &claim,
                      const std::string &scale_note)
{
    std::printf("==============================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("Paper: %s\n", claim.c_str());
    if (!scale_note.empty())
        std::printf("Scale: %s\n", scale_note.c_str());
    std::printf("==============================================\n");
}

/** Common flags for characterization benches. */
struct SweepOptions
{
    bool full = false;
    uint32_t stride = 32;
    uint32_t moduleCount = 17;
    unsigned threads = 0;

    static SweepOptions
    parse(const CliArgs &args, uint32_t default_stride = 32)
    {
        SweepOptions opts;
        opts.full = args.getBool("full");
        opts.stride = static_cast<uint32_t>(
            args.getUint("stride", opts.full ? 1 : default_stride));
        opts.moduleCount = static_cast<uint32_t>(
            args.getUint("modules", 17));
        opts.threads =
            static_cast<unsigned>(args.getUint("threads", 0));
        return opts;
    }

    std::string
    note() const
    {
        return "segment stride " + std::to_string(stride) + ", " +
               std::to_string(moduleCount) +
               " modules (use --full / --stride / --modules to change)";
    }
};

/** The first @p count catalog module specs at paper geometry. */
inline std::vector<dram::ModuleSpec>
catalogModules(uint32_t count)
{
    auto specs =
        dram::paperModuleSpecs(dram::Geometry::paperScale());
    if (count < specs.size())
        specs.resize(count);
    return specs;
}

/** Format "measured (paper X)" cells. */
inline std::string
vsPaper(double measured, double paper, int precision = 2)
{
    return Table::num(measured, precision) + " (" +
           Table::num(paper, precision) + ")";
}

} // namespace quac::benchutil

#endif // QUAC_BENCH_UTIL_HH

/**
 * @file
 * Figure 14: temperature sensitivity of segment entropy at 50, 65
 * and 85 degC over 40 chips from 5 modules.
 *
 * Paper expectations: two chip populations; trend-1 (24 of 40
 * chips): entropy rises with temperature (max 2019.6 -> 2520.1);
 * trend-2 (16 chips): entropy falls (max 2344.2 -> 1293.5).
 */

#include <array>
#include <cstdio>

#include "common/parallel.hh"
#include "common/stats.hh"
#include "dram/segment_model.hh"
#include "util.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"full", "stride", "modules", "threads"});
    auto opts = benchutil::SweepOptions::parse(args, 64);
    uint32_t module_count = std::min<uint32_t>(opts.moduleCount, 5);

    benchutil::printExperimentHeader(
        "Figure 14: segment entropy vs temperature",
        "trend-1 chips gain entropy with temperature, trend-2 chips "
        "lose it; both populations present (paper: 24 vs 16 of 40 "
        "chips)",
        opts.note() + ", 5 modules / 40 chips");

    auto specs = benchutil::catalogModules(module_count);
    const std::array<double, 3> temps = {50.0, 65.0, 85.0};
    const dram::Geometry geom = dram::Geometry::paperScale();
    uint32_t chips = geom.chipsPerRank;

    // Per (module, chip, temp): average and max full-segment-
    // equivalent entropy (chip contribution x chip count).
    struct ChipSeries
    {
        bool trend1 = false;
        std::array<RunningStats, 3> stats;
    };
    std::vector<std::vector<ChipSeries>> all(specs.size());

    parallelFor(0, specs.size(), [&](size_t i) {
        dram::DramModule module(specs[i]);
        all[i].resize(chips);
        for (uint32_t chip = 0; chip < chips; ++chip)
            all[i][chip].trend1 =
                module.variation().chipIsTrend1(chip);

        for (size_t t = 0; t < temps.size(); ++t) {
            for (uint32_t segment = 0;
                 segment < geom.segmentsPerBank();
                 segment += opts.stride) {
                dram::SegmentModel model(
                    geom, module.calibration(), module.variation(),
                    0, segment, temps[t], 0.0);
                auto bit_entropy = model.bitlineEntropies(
                    dram::patternFromString("0111"),
                    dram::quacWeights(module.calibration(), 0, 2.5,
                                      2.5));
                std::vector<double> per_chip(chips, 0.0);
                for (uint32_t b = 0; b < geom.bitlinesPerRow; ++b)
                    per_chip[geom.chipOfBitline(b)] += bit_entropy[b];
                for (uint32_t chip = 0; chip < chips; ++chip) {
                    all[i][chip].stats[t].add(per_chip[chip] * chips);
                }
            }
        }
    }, opts.threads);

    // Aggregate by trend group.
    std::array<RunningStats, 3> trend1_avg;
    std::array<RunningStats, 3> trend2_avg;
    std::array<double, 3> trend1_max{};
    std::array<double, 3> trend2_max{};
    int trend1_count = 0;
    int trend2_count = 0;
    for (const auto &module_chips : all) {
        for (const auto &chip : module_chips) {
            (chip.trend1 ? trend1_count : trend2_count)++;
            for (size_t t = 0; t < temps.size(); ++t) {
                if (chip.trend1) {
                    trend1_avg[t].add(chip.stats[t].mean());
                    trend1_max[t] = std::max(trend1_max[t],
                                             chip.stats[t].max());
                } else {
                    trend2_avg[t].add(chip.stats[t].mean());
                    trend2_max[t] = std::max(trend2_max[t],
                                             chip.stats[t].max());
                }
            }
        }
    }

    std::printf("Chip populations: trend-1 %d, trend-2 %d (paper: 24 "
                "vs 16)\n\n",
                trend1_count, trend2_count);

    Table table({"group", "metric", "50C (paper)", "65C (paper)",
                 "85C (paper)"});
    table.addRow({"trend-1", "max",
                  benchutil::vsPaper(trend1_max[0], 2019.6, 0),
                  benchutil::vsPaper(trend1_max[1], 2389.8, 0),
                  benchutil::vsPaper(trend1_max[2], 2520.1, 0)});
    table.addRow({"trend-1", "avg",
                  benchutil::vsPaper(trend1_avg[0].mean(), 1442.0, 0),
                  benchutil::vsPaper(trend1_avg[1].mean(), 1569.5, 0),
                  benchutil::vsPaper(trend1_avg[2].mean(), 1659.6, 0)});
    table.addRow({"trend-2", "max",
                  benchutil::vsPaper(trend2_max[0], 2344.2, 0),
                  benchutil::vsPaper(trend2_max[1], 1565.8, 0),
                  benchutil::vsPaper(trend2_max[2], 1293.5, 0)});
    table.addRow({"trend-2", "avg",
                  benchutil::vsPaper(trend2_avg[0].mean(), 1710.6, 0),
                  benchutil::vsPaper(trend2_avg[1].mean(), 1083.1, 0),
                  benchutil::vsPaper(trend2_avg[2].mean(), 892.5, 0)});
    table.print();

    std::printf("\nShape checks:\n");
    std::printf("  trend-1 avg rises with temperature: %s\n",
                (trend1_avg[2].mean() > trend1_avg[0].mean())
                    ? "OK" : "OFF");
    std::printf("  trend-2 avg falls with temperature: %s\n",
                (trend2_avg[2].mean() < trend2_avg[0].mean())
                    ? "OK" : "OFF");
    std::printf("  both populations present: %s\n",
                (trend1_count > 0 && trend2_count > 0) ? "OK" : "OFF");
    return 0;
}

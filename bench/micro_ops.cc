/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot operations:
 * SHA-256 hashing, the batched sensing kernel, QUAC resolution, the
 * RowClone-init resolve with and without the saturation fast-path,
 * the entropy service's hit/miss/multi-client request paths,
 * analytic characterization, the Von Neumann corrector, and
 * representative NIST tests.
 *
 * Pass `--json <path>` to additionally write the results (name,
 * ns/op, throughput) as a machine-readable JSON file, so the perf
 * trajectory can be tracked across PRs.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/characterizer.hh"
#include "core/trng.hh"
#include "crypto/sha256.hh"
#include "dram/segment_model.hh"
#include "dram/sensing.hh"
#include "dram/variation.hh"
#include "nist/health90b.hh"
#include "nist/sts.hh"
#include "postprocess/von_neumann.hh"
#include "service/entropy_service.hh"
#include "softmc/host.hh"
#include "util.hh"

using namespace quac;

namespace
{

dram::ModuleSpec
testSpec()
{
    dram::ModuleSpec spec;
    spec.geometry = dram::Geometry::testScale();
    spec.seed = 1;
    return spec;
}

core::QuacTrngConfig
fourBankConfig()
{
    core::QuacTrngConfig cfg;
    cfg.banks = {0, 1, 2, 3};
    cfg.sibEntropyTarget = 24.0;
    cfg.characterizeStride = 4;
    return cfg;
}

/**
 * The seed repository's generation loop, replayed through the public
 * host API: strictly serial across banks, one heap-allocated vector
 * per RD, and a word -> byte push_back staging buffer per SHA input
 * block. Kept here as the "before" side of the pipeline benchmarks.
 */
void
seedPathIteration(dram::DramModule &module, softmc::SoftMcHost &host,
                  const std::vector<core::QuacTrng::BankPlan> &plans,
                  uint8_t pattern, std::vector<uint8_t> &out)
{
    const dram::Geometry &geom = module.geometry();
    const dram::TimingParams &timing = host.timing();
    for (const auto &plan : plans) {
        uint32_t base = geom.firstRowOfSegment(plan.segment);
        for (uint32_t i = 0; i < dram::Geometry::rowsPerSegment; ++i) {
            bool one = (pattern >> i) & 1;
            host.rowCloneCopy(plan.bank,
                              one ? plan.oneRow : plan.zeroRow,
                              base + i);
        }
        host.quac(plan.bank, plan.segment);
        for (const core::ColumnRange &range : plan.ranges) {
            std::vector<uint8_t> raw;
            raw.reserve((range.endColumn - range.beginColumn) *
                        geom.cacheBlockBits / 8);
            for (uint32_t col = range.beginColumn;
                 col < range.endColumn; ++col) {
                std::vector<uint64_t> block = host.rd(plan.bank, col);
                host.wait(timing.tCCD_L);
                for (uint64_t word : block) {
                    for (int byte = 0; byte < 8; ++byte) {
                        raw.push_back(
                            static_cast<uint8_t>(word >> (8 * byte)));
                    }
                }
            }
            Sha256::Digest digest = Sha256::hash(raw);
            out.insert(out.end(), digest.begin(), digest.end());
        }
        host.preObeyed(plan.bank);
    }
}

void
BM_Sha256_64B(benchmark::State &state)
{
    std::vector<uint8_t> data(64, 0xAB);
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::hash(data));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void
BM_Sha256_8KB(benchmark::State &state)
{
    std::vector<uint8_t> data(8192, 0xCD);
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::hash(data));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_Sha256_8KB);

/**
 * The scalar-vs-SHA-NI compression pair: the same hashes with the
 * hardware path forced off and on. BM_Sha256_ShaNi falls back to the
 * scalar rounds (and reports hw_available = 0) on hosts without the
 * SHA extensions.
 */
void
sha256PathBench(benchmark::State &state, bool hw)
{
    bool prev = Sha256::setHwEnabled(hw);
    std::vector<uint8_t> data(8192, 0xCD);
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::hash(data));
    Sha256::setHwEnabled(prev);
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 8192);
    state.counters["hw_available"] =
        Sha256::hwAvailable() ? 1.0 : 0.0;
}

void
BM_Sha256_Scalar(benchmark::State &state)
{
    sha256PathBench(state, false);
}
BENCHMARK(BM_Sha256_Scalar);

void
BM_Sha256_ShaNi(benchmark::State &state)
{
    sha256PathBench(state, true);
}
BENCHMARK(BM_Sha256_ShaNi);

/**
 * The interleaved-batch pair: the same four 8 KB messages hashed one
 * at a time through the scalar rounds vs in lockstep through the
 * four-lane message schedule (hardware path off for both, so the
 * pair isolates the lane interleaving; compare against
 * BM_Sha256_Scalar for per-byte cost).
 */
void
sha256BatchBench(benchmark::State &state, bool interleaved)
{
    bool prev = Sha256::setHwEnabled(false);
    std::vector<uint8_t> data(4 * 8192, 0xCD);
    std::array<Sha256::Job, 4> jobs;
    for (size_t l = 0; l < jobs.size(); ++l)
        jobs[l] = {data.data() + l * 8192, 8192};
    std::array<Sha256::Digest, 4> digests;
    for (auto _ : state) {
        if (interleaved) {
            Sha256::hashBatch(jobs.data(), jobs.size(),
                              digests.data());
        } else {
            for (size_t l = 0; l < jobs.size(); ++l)
                digests[l] = Sha256::hash(jobs[l].data, jobs[l].len);
        }
        benchmark::DoNotOptimize(digests);
    }
    Sha256::setHwEnabled(prev);
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 4 * 8192);
}

void
BM_Sha256_OneAtATime(benchmark::State &state)
{
    sha256BatchBench(state, false);
}
BENCHMARK(BM_Sha256_OneAtATime);

void
BM_Sha256_Interleaved(benchmark::State &state)
{
    sha256BatchBench(state, true);
}
BENCHMARK(BM_Sha256_Interleaved);

// ---------------------------------------------------------- block read

void
BM_BlockRead_SeedAlloc(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    softmc::SoftMcHost host(module);
    host.writeRowFill(0, 6, true);
    host.actObeyed(0, 6);
    uint32_t col = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(host.rd(0, col));
        col = (col + 1) % module.geometry().cacheBlocksPerRow();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            module.geometry().cacheBlockBits / 8);
}
BENCHMARK(BM_BlockRead_SeedAlloc);

void
BM_BlockRead_ZeroCopy(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    softmc::SoftMcHost host(module);
    host.writeRowFill(0, 6, true);
    host.actObeyed(0, 6);
    std::vector<uint64_t> block(module.geometry().cacheBlockBits / 64);
    uint32_t col = 0;
    for (auto _ : state) {
        host.rdInto(0, col, block.data());
        benchmark::DoNotOptimize(block.data());
        col = (col + 1) % module.geometry().cacheBlocksPerRow();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            module.geometry().cacheBlockBits / 8);
}
BENCHMARK(BM_BlockRead_ZeroCopy);

// ------------------------------------------------------- hash per SIB

void
BM_SibHash_SeedByteLoop(benchmark::State &state)
{
    // One SHA input block's worth of sense-amp words (8 cache blocks
    // of 512 bits), staged through the seed's byte push_back loop.
    std::vector<uint64_t> words(64);
    Xoshiro256pp rng(11);
    for (uint64_t &w : words)
        w = rng.next();
    for (auto _ : state) {
        std::vector<uint8_t> raw;
        raw.reserve(words.size() * 8);
        for (uint64_t word : words) {
            for (int byte = 0; byte < 8; ++byte)
                raw.push_back(static_cast<uint8_t>(word >> (8 * byte)));
        }
        benchmark::DoNotOptimize(Sha256::hash(raw));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(words.size()) * 8);
}
BENCHMARK(BM_SibHash_SeedByteLoop);

void
BM_SibHash_ZeroCopy(benchmark::State &state)
{
    std::vector<uint64_t> words(64);
    Xoshiro256pp rng(11);
    for (uint64_t &w : words)
        w = rng.next();
    for (auto _ : state) {
        Sha256 sha;
        sha.update(reinterpret_cast<const uint8_t *>(words.data()),
                   words.size() * 8);
        benchmark::DoNotOptimize(sha.finish());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(words.size()) * 8);
}
BENCHMARK(BM_SibHash_ZeroCopy);

// ---------------------------------------------------- full iteration

void
BM_FullIteration_SeedPath(benchmark::State &state)
{
    // The seed's pipeline, faithfully: serial across banks, one
    // vector allocation per RD, byte-staging before SHA, no
    // variation-oracle row cache, and the scalar sensing path.
    dram::ModuleSpec spec = testSpec();
    spec.oracleCache = false;
    spec.fastSense = false;
    dram::DramModule module(std::move(spec));
    core::QuacTrng trng(module, fourBankConfig());
    trng.setup();
    softmc::SoftMcHost host(module);
    host.wait(1e6); // clear of setup's reserved-row writes
    std::vector<uint8_t> out;
    for (auto _ : state) {
        out.clear();
        seedPathIteration(module, host, trng.plans(), 0b1110, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_FullIteration_SeedPath);

void
BM_FullIteration_ZeroCopySerial(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    core::QuacTrngConfig cfg = fourBankConfig();
    cfg.parallelBanks = false;
    core::QuacTrng trng(module, cfg);
    trng.setup();
    std::vector<uint8_t> out(trng.bytesPerIteration());
    for (auto _ : state) {
        trng.fill(out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_FullIteration_ZeroCopySerial);

void
BM_FullIteration_ZeroCopyParallel(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    core::QuacTrng trng(module, fourBankConfig());
    trng.setup();
    std::vector<uint8_t> out(trng.bytesPerIteration());
    for (auto _ : state) {
        trng.fill(out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_FullIteration_ZeroCopyParallel);

void
BM_FullIteration_NoSaturation(benchmark::State &state)
{
    // The zero-copy pipeline with the saturation fast-path disabled:
    // the four per-bank RowClone-init cache misses pay the full Phi
    // batch every iteration. The "before" side of the saturation
    // benchmarks (BM_FullIteration_ZeroCopySerial is the "after").
    dram::ModuleSpec spec = testSpec();
    spec.saturationFastPath = false;
    dram::DramModule module(std::move(spec));
    core::QuacTrngConfig cfg = fourBankConfig();
    cfg.parallelBanks = false;
    core::QuacTrng trng(module, cfg);
    trng.setup();
    std::vector<uint8_t> out(trng.bytesPerIteration());
    for (auto _ : state) {
        trng.fill(out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_FullIteration_NoSaturation);

void
BM_FullIteration_ReferenceSense(benchmark::State &state)
{
    // The zero-copy pipeline with the batched sensing kernel disabled:
    // scalar erfc per bitline and per-bit uniform draws (PR 1's bank
    // model). The "before" side of the fastSense benchmarks.
    dram::ModuleSpec spec = testSpec();
    spec.fastSense = false;
    dram::DramModule module(std::move(spec));
    core::QuacTrngConfig cfg = fourBankConfig();
    cfg.parallelBanks = false;
    core::QuacTrng trng(module, cfg);
    trng.setup();
    std::vector<uint8_t> out(trng.bytesPerIteration());
    for (auto _ : state) {
        trng.fill(out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_FullIteration_ReferenceSense);

// ---------------------------------------------- RowClone-init misses

/**
 * The TRNG's unavoidable probability-cache misses: every iteration's
 * four RowClone segment-init copies race the destination row (which
 * holds last iteration's random bits) against the full-rail residual,
 * so their setups never repeat. The saturation fast-path recognizes
 * the whole-row tail and skips the Phi batch.
 */
void
rowCloneInitResolve(benchmark::State &state, bool saturation)
{
    dram::ModuleSpec spec = testSpec();
    spec.saturationFastPath = saturation;
    dram::DramModule module(std::move(spec));
    softmc::SoftMcHost host(module);
    host.writeRowFill(0, 8, true); // constant source row
    dram::Bank &bank = module.bank(0);
    uint32_t nbits = module.geometry().bitlinesPerRow;
    Xoshiro256pp churn(3);
    for (auto _ : state) {
        // New pseudo-random contents in one destination word defeat
        // the probability cache, as the generation loop does.
        state.PauseTiming();
        uint64_t word = churn.next();
        for (unsigned b = 0; b < 64; ++b)
            bank.pokeCell(16, b, (word >> b) & 1);
        state.ResumeTiming();
        host.rowCloneCopy(0, 8, 16);
        benchmark::DoNotOptimize(bank.peekRow(16).data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            nbits);
}

void
BM_RowCloneInitResolve_FullPhi(benchmark::State &state)
{
    rowCloneInitResolve(state, false);
}
BENCHMARK(BM_RowCloneInitResolve_FullPhi);

void
BM_RowCloneInitResolve_Saturation(benchmark::State &state)
{
    rowCloneInitResolve(state, true);
}
BENCHMARK(BM_RowCloneInitResolve_Saturation);

// ------------------------------------------------- entropy service

using benchutil::CountingTrng;

/**
 * Buffer-hit request latency: the steady state the paper's Section 9
 * design targets, where refill keeps up and every request is served
 * from controller SRAM.
 */
void
BM_ServiceRequest_Hit(benchmark::State &state)
{
    CountingTrng backend(4096);
    service::EntropyService svc({&backend},
                                {.shardCapacityBytes = 1 << 16,
                                 .refillWatermark = 0.5});
    auto client = svc.connect("hit");
    uint8_t out[64];
    for (auto _ : state) {
        svc.refillBelowWatermark();
        benchmark::DoNotOptimize(client.request(out, sizeof(out)));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sizeof(out)));
}
BENCHMARK(BM_ServiceRequest_Hit);

/**
 * Miss path: a never-refilled shard forces every request through the
 * synchronous backend fallback, measuring the service overhead over
 * a raw Trng::fill call.
 */
void
BM_ServiceRequest_Miss(benchmark::State &state)
{
    CountingTrng backend;
    service::EntropyService svc({&backend}, {.shardCapacityBytes = 64});
    auto client = svc.connect("miss");
    uint8_t out[64];
    for (auto _ : state)
        benchmark::DoNotOptimize(client.request(out, sizeof(out)));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sizeof(out)));
}
BENCHMARK(BM_ServiceRequest_Miss);

/** The raw backend fill, as the miss benchmark's baseline. */
void
BM_ServiceRequest_RawFillBaseline(benchmark::State &state)
{
    CountingTrng backend;
    uint8_t out[64];
    for (auto _ : state) {
        backend.fill(out, sizeof(out));
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sizeof(out)));
}
BENCHMARK(BM_ServiceRequest_RawFillBaseline);

/**
 * Contended multi-client throughput: N clients on distinct shards
 * (one backend each) drain concurrently while a background thread
 * refills. Arg = client count.
 */
void
serviceMultiClientBench(benchmark::State &state, bool lock_free)
{
    size_t nclients = static_cast<size_t>(state.range(0));
    std::vector<std::unique_ptr<CountingTrng>> backends;
    std::vector<core::Trng *> pool;
    for (size_t i = 0; i < nclients; ++i) {
        backends.push_back(std::make_unique<CountingTrng>(4096));
        pool.push_back(backends.back().get());
    }
    service::EntropyService svc(pool, {.shardCapacityBytes = 1 << 16,
                                       .refillWatermark = 0.5,
                                       .lockFreeReads = lock_free});
    std::vector<service::EntropyService::Client> clients;
    for (size_t i = 0; i < nclients; ++i) {
        clients.push_back(svc.connect("c" + std::to_string(i),
                                      service::Priority::Standard, i));
    }
    svc.startAutoRefill(std::chrono::microseconds(100));

    constexpr size_t requests_per_client = 256;
    constexpr size_t request_bytes = 64;
    for (auto _ : state) {
        parallelFor(0, nclients, [&](size_t i) {
            uint8_t out[request_bytes];
            for (size_t k = 0; k < requests_per_client; ++k) {
                clients[i].request(out, request_bytes);
                benchmark::DoNotOptimize(out);
            }
        }, static_cast<unsigned>(nclients));
    }
    svc.stopAutoRefill();
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(nclients * requests_per_client *
                             request_bytes));
    // Per-client delivered rate: the contended-throughput figure a
    // multi-core host should record (aggregate bytes/s divided by
    // the client count tells how much each client keeps under
    // contention).
    state.counters["client_bytes_per_second"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(requests_per_client * request_bytes),
        benchmark::Counter::kIsRate);
}

void
BM_ServiceMultiClient(benchmark::State &state)
{
    serviceMultiClientBench(state, true);
}
BENCHMARK(BM_ServiceMultiClient)->Arg(1)->Arg(4)->Arg(16);

/** The pre-lock-free serving plane, as the contention baseline. */
void
BM_ServiceMultiClient_Mutex(benchmark::State &state)
{
    serviceMultiClientBench(state, false);
}
BENCHMARK(BM_ServiceMultiClient_Mutex)->Arg(1)->Arg(16);

/**
 * Modelled request-latency distribution: timestamped requests whose
 * inter-arrival outpaces the periodic refill, so the latency model
 * sees the hit/miss mix and queueing the fig12 latency study
 * reports. The p50/p95/p99 land in the JSON output as counters.
 */
void
BM_ServiceRequestLatency(benchmark::State &state)
{
    CountingTrng backend(4096);
    service::EntropyService svc({&backend},
                                {.shardCapacityBytes = 1 << 14,
                                 .refillWatermark = 0.5});
    auto client = svc.connect("timed");
    uint8_t out[64];
    double now = 0.0;
    uint64_t n = 0;
    for (auto _ : state) {
        if ((n++ & 255) == 0)
            svc.refillTick(8192);
        benchmark::DoNotOptimize(
            client.requestAt(out, sizeof(out), now));
        now += 100.0;
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sizeof(out)));
    service::LatencyDistribution dist =
        svc.latencySnapshot(service::Priority::Standard);
    state.counters["latency_p50_ns"] = dist.p50Ns();
    state.counters["latency_p95_ns"] = dist.p95Ns();
    state.counters["latency_p99_ns"] = dist.p99Ns();
}
BENCHMARK(BM_ServiceRequestLatency);

// -------------------------------------------------- sensing kernels

/**
 * Representative per-bitline sensing inputs: offsets spread like the
 * SA-offset distribution and deviations like a balanced QUAC pattern,
 * giving the realistic mix of degenerate and metastable bitlines.
 */
struct SensingRow
{
    std::vector<double> dev;
    std::vector<double> offset;
    double sigma = 0.12;
};

SensingRow
makeSensingRow(uint32_t nbits)
{
    SensingRow row;
    row.dev.resize(nbits);
    row.offset.resize(nbits);
    Xoshiro256pp rng(21);
    for (uint32_t b = 0; b < nbits; ++b) {
        row.dev[b] = rng.gaussian(0.0, 1.2);
        row.offset[b] = rng.gaussian(0.0, 5.4);
    }
    return row;
}

void
BM_ProbabilityOne_Scalar(benchmark::State &state)
{
    SensingRow row = makeSensingRow(4096);
    std::vector<float> out(row.dev.size());
    for (auto _ : state) {
        for (size_t b = 0; b < row.dev.size(); ++b) {
            out[b] = static_cast<float>(dram::probabilityOne(
                row.dev[b], row.offset[b], row.sigma));
        }
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(row.dev.size()));
}
BENCHMARK(BM_ProbabilityOne_Scalar);

void
BM_ProbabilityOne_Batch(benchmark::State &state)
{
    SensingRow row = makeSensingRow(4096);
    std::vector<float> out(row.dev.size());
    for (auto _ : state) {
        dram::probabilityOneBatch(row.dev.data(), row.offset.data(),
                                  row.sigma, out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(row.dev.size()));
}
BENCHMARK(BM_ProbabilityOne_Batch);

/**
 * Full-row sense resolution through the command path: re-init the
 * segment, QUAC, and force resolution with a RD. Steady state hits
 * the probability cache, so this isolates the per-event resolution
 * cost (key hash + draws + bit packing + row write-back).
 */
void
senseResolveRow(benchmark::State &state, bool fast_sense)
{
    dram::ModuleSpec spec = testSpec();
    spec.fastSense = fast_sense;
    dram::DramModule module(std::move(spec));
    softmc::SoftMcHost host(module);
    uint32_t segment = 2;
    for (auto _ : state) {
        module.bank(0).pokeSegmentPattern(segment, 0b1110);
        host.quac(0, segment);
        std::vector<uint64_t> block = host.rd(0, 0);
        benchmark::DoNotOptimize(block.data());
        host.preObeyed(0);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        module.geometry().bitlinesPerRow);
}

void
BM_ResolveSenseRow_Reference(benchmark::State &state)
{
    senseResolveRow(state, false);
}
BENCHMARK(BM_ResolveSenseRow_Reference);

void
BM_ResolveSenseRow_Fast(benchmark::State &state)
{
    senseResolveRow(state, true);
}
BENCHMARK(BM_ResolveSenseRow_Fast);

/** Analytic probability query (uncached computeProbabilities). */
void
BM_QuacAnalyticProbabilities_Reference(benchmark::State &state)
{
    dram::ModuleSpec spec = testSpec();
    spec.fastSense = false;
    dram::DramModule module(std::move(spec));
    module.bank(0).pokeSegmentPattern(2, 0b1110);
    for (auto _ : state)
        benchmark::DoNotOptimize(module.bank(0).quacProbabilities(2));
}
BENCHMARK(BM_QuacAnalyticProbabilities_Reference);

// ------------------------------------------------ bulk draw kernels

void
BM_OracleOffsetRow_PerElement(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    const dram::VariationModel &var = module.variation();
    uint32_t nbits = module.geometry().bitlinesPerRow;
    std::vector<double> out(nbits);
    for (auto _ : state) {
        for (uint32_t b = 0; b < nbits; ++b)
            out[b] = var.saOffsetMv(0, 6, b);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            nbits);
}
BENCHMARK(BM_OracleOffsetRow_PerElement);

void
BM_OracleOffsetRow_Bulk(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    const dram::VariationModel &var = module.variation();
    uint32_t nbits = module.geometry().bitlinesPerRow;
    std::vector<double> out(nbits);
    for (auto _ : state) {
        var.saOffsetRowMv(0, 6, nbits, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            nbits);
}
BENCHMARK(BM_OracleOffsetRow_Bulk);

void
BM_UniformDraws_PerCall(benchmark::State &state)
{
    Xoshiro256pp rng(5);
    std::vector<float> out(4096);
    for (auto _ : state) {
        for (size_t i = 0; i < out.size(); ++i)
            out[i] = static_cast<float>(rng.uniform());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_UniformDraws_PerCall);

void
BM_UniformDraws_Bulk(benchmark::State &state)
{
    Xoshiro256pp rng(5);
    std::vector<float> out(4096);
    for (auto _ : state) {
        rng.fillUniform(out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_UniformDraws_Bulk);

// ------------------------------------------------------ bit plumbing

void
BM_GenerateBits_SeedBitLoop(benchmark::State &state)
{
    Xoshiro256pp rng(17);
    std::vector<uint8_t> bytes(1 << 13);
    for (uint8_t &b : bytes)
        b = static_cast<uint8_t>(rng.next());
    size_t nbits = bytes.size() * 8;
    for (auto _ : state) {
        Bitstream bits;
        for (size_t i = 0; i < nbits; ++i)
            bits.append((bytes[i / 8] >> (i % 8)) & 1);
        benchmark::DoNotOptimize(bits.size());
    }
}
BENCHMARK(BM_GenerateBits_SeedBitLoop);

void
BM_GenerateBits_Bulk(benchmark::State &state)
{
    Xoshiro256pp rng(17);
    std::vector<uint8_t> bytes(1 << 13);
    for (uint8_t &b : bytes)
        b = static_cast<uint8_t>(rng.next());
    for (auto _ : state) {
        Bitstream bits;
        bits.appendBytes(bytes.data(), bytes.size() * 8);
        benchmark::DoNotOptimize(bits.size());
    }
}
BENCHMARK(BM_GenerateBits_Bulk);

void
BM_QuacCommandIteration(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    core::QuacTrngConfig cfg;
    cfg.banks = {0};
    cfg.sibEntropyTarget = 24.0;
    cfg.characterizeStride = 4;
    core::QuacTrng trng(module, cfg);
    trng.setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(trng.rawIteration(0));
}
BENCHMARK(BM_QuacCommandIteration);

void
BM_QuacAnalyticProbabilities(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    module.bank(0).pokeSegmentPattern(2, 0b1110);
    for (auto _ : state)
        benchmark::DoNotOptimize(module.bank(0).quacProbabilities(2));
}
BENCHMARK(BM_QuacAnalyticProbabilities);

void
BM_SegmentModelConstruct(benchmark::State &state)
{
    dram::ModuleSpec spec = testSpec();
    dram::DramModule module(std::move(spec));
    uint32_t segment = 0;
    for (auto _ : state) {
        dram::SegmentModel model(module.geometry(),
                                 module.calibration(),
                                 module.variation(), 0,
                                 segment % 16, 50.0, 0.0);
        benchmark::DoNotOptimize(model.segmentEntropy(0b1110));
        ++segment;
    }
}
BENCHMARK(BM_SegmentModelConstruct);

void
BM_VonNeumann_1Mbit(benchmark::State &state)
{
    Xoshiro256pp rng(3);
    Bitstream bits;
    for (int i = 0; i < (1 << 20); ++i)
        bits.append(rng.bernoulli(0.5));
    for (auto _ : state)
        benchmark::DoNotOptimize(postprocess::vonNeumann(bits));
}
BENCHMARK(BM_VonNeumann_1Mbit);

Bitstream
randomBits(size_t n)
{
    Xoshiro256pp rng(9);
    Bitstream bits;
    for (size_t i = 0; i < n; i += 64)
        bits.appendWord(rng.next(), std::min<size_t>(64, n - i));
    return bits;
}

void
BM_NistMonobit_1Mbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 20);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::monobit(bits));
}
BENCHMARK(BM_NistMonobit_1Mbit);

void
BM_NistSerial_256Kbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 18);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::serial(bits));
}
BENCHMARK(BM_NistSerial_256Kbit);

void
BM_NistDft_256Kbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 18);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::dft(bits));
}
BENCHMARK(BM_NistDft_256Kbit);

void
BM_NistLinearComplexity_64Kbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 16);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::linearComplexityTest(bits));
}
BENCHMARK(BM_NistLinearComplexity_64Kbit);

// ------------------------------------------- health-monitor kernels

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Xoshiro256pp rng(seed);
    std::vector<uint8_t> bytes(n);
    for (size_t i = 0; i < n; ++i)
        bytes[i] = static_cast<uint8_t>(rng.next());
    return bytes;
}

void
BM_HealthOnesCount_Scalar(benchmark::State &state)
{
    std::vector<uint8_t> bytes = randomBytes(1 << 20, 13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nist::onesCountScalar(bytes.data(), bytes.size()));
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_HealthOnesCount_Scalar);

void
BM_HealthOnesCount_Vectorized(benchmark::State &state)
{
    std::vector<uint8_t> bytes = randomBytes(1 << 20, 13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nist::onesCount(bytes.data(), bytes.size()));
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_HealthOnesCount_Vectorized);

/**
 * The "before" side of the serial-pattern pair: the offline
 * nist::serial() bit loop, which walks the window one bit at a time.
 * PatternCounter3 counts the same cyclic 3-bit patterns with word
 * masks and popcounts (vec_clones-dispatched).
 */
void
BM_HealthPattern_BitLoop(benchmark::State &state)
{
    constexpr size_t nbytes = 1 << 17;
    std::vector<uint8_t> bytes = randomBytes(nbytes, 29);
    Bitstream bits = Bitstream::fromBytes(bytes);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::serial(bits, 3));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * nbytes));
}
BENCHMARK(BM_HealthPattern_BitLoop);

void
BM_HealthPattern_Vectorized(benchmark::State &state)
{
    constexpr size_t nbytes = 1 << 17;
    std::vector<uint8_t> bytes = randomBytes(nbytes, 29);
    for (auto _ : state) {
        nist::PatternCounter3 counter;
        counter.consume(bytes.data(), bytes.size());
        counter.finishCyclic();
        benchmark::DoNotOptimize(counter.counts());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * nbytes));
}
BENCHMARK(BM_HealthPattern_Vectorized);

/** End-to-end streaming tester cost per byte observed. */
void
BM_HealthStream_1MiB(benchmark::State &state)
{
    std::vector<uint8_t> bytes = randomBytes(1 << 20, 31);
    nist::StreamingHealthConfig cfg;
    cfg.alphaExponent = 40;
    std::vector<nist::HealthWindowResult> completed;
    for (auto _ : state) {
        nist::StreamingHealthTester tester(cfg);
        completed.clear();
        tester.consume(bytes.data(), bytes.size(), completed);
        benchmark::DoNotOptimize(completed);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_HealthStream_1MiB);

/**
 * Console reporter that also collects each run for the --json file:
 * benchmark name, ns per op, and the byte/item throughputs.
 */
class JsonCollectingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Result
    {
        std::string name;
        double nsPerOp = 0.0;
        double bytesPerSecond = 0.0;
        double itemsPerSecond = 0.0;
        int64_t iterations = 0;
        /** Every other user counter (latency percentiles, per-client
         * rates, ...), in iteration order. */
        std::vector<std::pair<std::string, double>> counters;
    };

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            Result r;
            r.name = run.benchmark_name();
            r.nsPerOp = run.GetAdjustedRealTime();
            for (const auto &[name, counter] : run.counters) {
                if (name == "bytes_per_second")
                    r.bytesPerSecond = counter;
                else if (name == "items_per_second")
                    r.itemsPerSecond = counter;
                else
                    r.counters.emplace_back(name, counter);
            }
            r.iterations = static_cast<int64_t>(run.iterations);
            results.push_back(std::move(r));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::vector<Result> results;
};

bool
writeJsonResults(const std::string &path,
                 const std::vector<JsonCollectingReporter::Result> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "micro_ops: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"ns_per_op\": %.4f, "
                     "\"bytes_per_second\": %.1f, "
                     "\"items_per_second\": %.1f, "
                     "\"iterations\": %lld",
                     r.name.c_str(), r.nsPerOp, r.bytesPerSecond,
                     r.itemsPerSecond,
                     static_cast<long long>(r.iterations));
        for (const auto &[name, value] : r.counters)
            std::fprintf(f, ", \"%s\": %.4f", name.c_str(), value);
        std::fprintf(f, "}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Extract our --json flag before google-benchmark parses argv.
    std::string json_path;
    std::vector<char *> pruned;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else {
            pruned.push_back(argv[i]);
        }
    }
    int pruned_argc = static_cast<int>(pruned.size());
    pruned.push_back(nullptr);

    benchmark::Initialize(&pruned_argc, pruned.data());
    if (benchmark::ReportUnrecognizedArguments(pruned_argc,
                                               pruned.data()))
        return 1;

    JsonCollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!json_path.empty() &&
        !writeJsonResults(json_path, reporter.results))
        return 1;
    return 0;
}

/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot operations:
 * SHA-256 hashing, QUAC resolution, analytic characterization, the
 * Von Neumann corrector, and representative NIST tests.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/characterizer.hh"
#include "core/trng.hh"
#include "crypto/sha256.hh"
#include "dram/segment_model.hh"
#include "nist/sts.hh"
#include "postprocess/von_neumann.hh"

using namespace quac;

namespace
{

dram::ModuleSpec
testSpec()
{
    dram::ModuleSpec spec;
    spec.geometry = dram::Geometry::testScale();
    spec.seed = 1;
    return spec;
}

void
BM_Sha256_64B(benchmark::State &state)
{
    std::vector<uint8_t> data(64, 0xAB);
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::hash(data));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void
BM_Sha256_8KB(benchmark::State &state)
{
    std::vector<uint8_t> data(8192, 0xCD);
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::hash(data));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_Sha256_8KB);

void
BM_QuacCommandIteration(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    core::QuacTrngConfig cfg;
    cfg.banks = {0};
    cfg.sibEntropyTarget = 24.0;
    cfg.characterizeStride = 4;
    core::QuacTrng trng(module, cfg);
    trng.setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(trng.rawIteration(0));
}
BENCHMARK(BM_QuacCommandIteration);

void
BM_QuacAnalyticProbabilities(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    module.bank(0).pokeSegmentPattern(2, 0b1110);
    for (auto _ : state)
        benchmark::DoNotOptimize(module.bank(0).quacProbabilities(2));
}
BENCHMARK(BM_QuacAnalyticProbabilities);

void
BM_SegmentModelConstruct(benchmark::State &state)
{
    dram::ModuleSpec spec = testSpec();
    dram::DramModule module(std::move(spec));
    uint32_t segment = 0;
    for (auto _ : state) {
        dram::SegmentModel model(module.geometry(),
                                 module.calibration(),
                                 module.variation(), 0,
                                 segment % 16, 50.0, 0.0);
        benchmark::DoNotOptimize(model.segmentEntropy(0b1110));
        ++segment;
    }
}
BENCHMARK(BM_SegmentModelConstruct);

void
BM_VonNeumann_1Mbit(benchmark::State &state)
{
    Xoshiro256pp rng(3);
    Bitstream bits;
    for (int i = 0; i < (1 << 20); ++i)
        bits.append(rng.bernoulli(0.5));
    for (auto _ : state)
        benchmark::DoNotOptimize(postprocess::vonNeumann(bits));
}
BENCHMARK(BM_VonNeumann_1Mbit);

Bitstream
randomBits(size_t n)
{
    Xoshiro256pp rng(9);
    Bitstream bits;
    for (size_t i = 0; i < n; i += 64)
        bits.appendWord(rng.next(), std::min<size_t>(64, n - i));
    return bits;
}

void
BM_NistMonobit_1Mbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 20);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::monobit(bits));
}
BENCHMARK(BM_NistMonobit_1Mbit);

void
BM_NistSerial_256Kbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 18);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::serial(bits));
}
BENCHMARK(BM_NistSerial_256Kbit);

void
BM_NistDft_256Kbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 18);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::dft(bits));
}
BENCHMARK(BM_NistDft_256Kbit);

void
BM_NistLinearComplexity_64Kbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 16);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::linearComplexityTest(bits));
}
BENCHMARK(BM_NistLinearComplexity_64Kbit);

} // anonymous namespace

BENCHMARK_MAIN();

/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot operations:
 * SHA-256 hashing, QUAC resolution, analytic characterization, the
 * Von Neumann corrector, and representative NIST tests.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/characterizer.hh"
#include "core/trng.hh"
#include "crypto/sha256.hh"
#include "dram/segment_model.hh"
#include "nist/sts.hh"
#include "postprocess/von_neumann.hh"
#include "softmc/host.hh"

using namespace quac;

namespace
{

dram::ModuleSpec
testSpec()
{
    dram::ModuleSpec spec;
    spec.geometry = dram::Geometry::testScale();
    spec.seed = 1;
    return spec;
}

core::QuacTrngConfig
fourBankConfig()
{
    core::QuacTrngConfig cfg;
    cfg.banks = {0, 1, 2, 3};
    cfg.sibEntropyTarget = 24.0;
    cfg.characterizeStride = 4;
    return cfg;
}

/**
 * The seed repository's generation loop, replayed through the public
 * host API: strictly serial across banks, one heap-allocated vector
 * per RD, and a word -> byte push_back staging buffer per SHA input
 * block. Kept here as the "before" side of the pipeline benchmarks.
 */
void
seedPathIteration(dram::DramModule &module, softmc::SoftMcHost &host,
                  const std::vector<core::QuacTrng::BankPlan> &plans,
                  uint8_t pattern, std::vector<uint8_t> &out)
{
    const dram::Geometry &geom = module.geometry();
    const dram::TimingParams &timing = host.timing();
    for (const auto &plan : plans) {
        uint32_t base = geom.firstRowOfSegment(plan.segment);
        for (uint32_t i = 0; i < dram::Geometry::rowsPerSegment; ++i) {
            bool one = (pattern >> i) & 1;
            host.rowCloneCopy(plan.bank,
                              one ? plan.oneRow : plan.zeroRow,
                              base + i);
        }
        host.quac(plan.bank, plan.segment);
        for (const core::ColumnRange &range : plan.ranges) {
            std::vector<uint8_t> raw;
            raw.reserve((range.endColumn - range.beginColumn) *
                        geom.cacheBlockBits / 8);
            for (uint32_t col = range.beginColumn;
                 col < range.endColumn; ++col) {
                std::vector<uint64_t> block = host.rd(plan.bank, col);
                host.wait(timing.tCCD_L);
                for (uint64_t word : block) {
                    for (int byte = 0; byte < 8; ++byte) {
                        raw.push_back(
                            static_cast<uint8_t>(word >> (8 * byte)));
                    }
                }
            }
            Sha256::Digest digest = Sha256::hash(raw);
            out.insert(out.end(), digest.begin(), digest.end());
        }
        host.preObeyed(plan.bank);
    }
}

void
BM_Sha256_64B(benchmark::State &state)
{
    std::vector<uint8_t> data(64, 0xAB);
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::hash(data));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void
BM_Sha256_8KB(benchmark::State &state)
{
    std::vector<uint8_t> data(8192, 0xCD);
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::hash(data));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_Sha256_8KB);

// ---------------------------------------------------------- block read

void
BM_BlockRead_SeedAlloc(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    softmc::SoftMcHost host(module);
    host.writeRowFill(0, 6, true);
    host.actObeyed(0, 6);
    uint32_t col = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(host.rd(0, col));
        col = (col + 1) % module.geometry().cacheBlocksPerRow();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            module.geometry().cacheBlockBits / 8);
}
BENCHMARK(BM_BlockRead_SeedAlloc);

void
BM_BlockRead_ZeroCopy(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    softmc::SoftMcHost host(module);
    host.writeRowFill(0, 6, true);
    host.actObeyed(0, 6);
    std::vector<uint64_t> block(module.geometry().cacheBlockBits / 64);
    uint32_t col = 0;
    for (auto _ : state) {
        host.rdInto(0, col, block.data());
        benchmark::DoNotOptimize(block.data());
        col = (col + 1) % module.geometry().cacheBlocksPerRow();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            module.geometry().cacheBlockBits / 8);
}
BENCHMARK(BM_BlockRead_ZeroCopy);

// ------------------------------------------------------- hash per SIB

void
BM_SibHash_SeedByteLoop(benchmark::State &state)
{
    // One SHA input block's worth of sense-amp words (8 cache blocks
    // of 512 bits), staged through the seed's byte push_back loop.
    std::vector<uint64_t> words(64);
    Xoshiro256pp rng(11);
    for (uint64_t &w : words)
        w = rng.next();
    for (auto _ : state) {
        std::vector<uint8_t> raw;
        raw.reserve(words.size() * 8);
        for (uint64_t word : words) {
            for (int byte = 0; byte < 8; ++byte)
                raw.push_back(static_cast<uint8_t>(word >> (8 * byte)));
        }
        benchmark::DoNotOptimize(Sha256::hash(raw));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(words.size()) * 8);
}
BENCHMARK(BM_SibHash_SeedByteLoop);

void
BM_SibHash_ZeroCopy(benchmark::State &state)
{
    std::vector<uint64_t> words(64);
    Xoshiro256pp rng(11);
    for (uint64_t &w : words)
        w = rng.next();
    for (auto _ : state) {
        Sha256 sha;
        sha.update(reinterpret_cast<const uint8_t *>(words.data()),
                   words.size() * 8);
        benchmark::DoNotOptimize(sha.finish());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(words.size()) * 8);
}
BENCHMARK(BM_SibHash_ZeroCopy);

// ---------------------------------------------------- full iteration

void
BM_FullIteration_SeedPath(benchmark::State &state)
{
    // The seed's pipeline, faithfully: serial across banks, one
    // vector allocation per RD, byte-staging before SHA, and no
    // variation-oracle row cache in the bank model.
    dram::ModuleSpec spec = testSpec();
    spec.oracleCache = false;
    dram::DramModule module(std::move(spec));
    core::QuacTrng trng(module, fourBankConfig());
    trng.setup();
    softmc::SoftMcHost host(module);
    host.wait(1e6); // clear of setup's reserved-row writes
    std::vector<uint8_t> out;
    for (auto _ : state) {
        out.clear();
        seedPathIteration(module, host, trng.plans(), 0b1110, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_FullIteration_SeedPath);

void
BM_FullIteration_ZeroCopySerial(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    core::QuacTrngConfig cfg = fourBankConfig();
    cfg.parallelBanks = false;
    core::QuacTrng trng(module, cfg);
    trng.setup();
    std::vector<uint8_t> out(trng.bytesPerIteration());
    for (auto _ : state) {
        trng.fill(out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_FullIteration_ZeroCopySerial);

void
BM_FullIteration_ZeroCopyParallel(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    core::QuacTrng trng(module, fourBankConfig());
    trng.setup();
    std::vector<uint8_t> out(trng.bytesPerIteration());
    for (auto _ : state) {
        trng.fill(out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_FullIteration_ZeroCopyParallel);

// ------------------------------------------------------ bit plumbing

void
BM_GenerateBits_SeedBitLoop(benchmark::State &state)
{
    Xoshiro256pp rng(17);
    std::vector<uint8_t> bytes(1 << 13);
    for (uint8_t &b : bytes)
        b = static_cast<uint8_t>(rng.next());
    size_t nbits = bytes.size() * 8;
    for (auto _ : state) {
        Bitstream bits;
        for (size_t i = 0; i < nbits; ++i)
            bits.append((bytes[i / 8] >> (i % 8)) & 1);
        benchmark::DoNotOptimize(bits.size());
    }
}
BENCHMARK(BM_GenerateBits_SeedBitLoop);

void
BM_GenerateBits_Bulk(benchmark::State &state)
{
    Xoshiro256pp rng(17);
    std::vector<uint8_t> bytes(1 << 13);
    for (uint8_t &b : bytes)
        b = static_cast<uint8_t>(rng.next());
    for (auto _ : state) {
        Bitstream bits;
        bits.appendBytes(bytes.data(), bytes.size() * 8);
        benchmark::DoNotOptimize(bits.size());
    }
}
BENCHMARK(BM_GenerateBits_Bulk);

void
BM_QuacCommandIteration(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    core::QuacTrngConfig cfg;
    cfg.banks = {0};
    cfg.sibEntropyTarget = 24.0;
    cfg.characterizeStride = 4;
    core::QuacTrng trng(module, cfg);
    trng.setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(trng.rawIteration(0));
}
BENCHMARK(BM_QuacCommandIteration);

void
BM_QuacAnalyticProbabilities(benchmark::State &state)
{
    dram::DramModule module(testSpec());
    module.bank(0).pokeSegmentPattern(2, 0b1110);
    for (auto _ : state)
        benchmark::DoNotOptimize(module.bank(0).quacProbabilities(2));
}
BENCHMARK(BM_QuacAnalyticProbabilities);

void
BM_SegmentModelConstruct(benchmark::State &state)
{
    dram::ModuleSpec spec = testSpec();
    dram::DramModule module(std::move(spec));
    uint32_t segment = 0;
    for (auto _ : state) {
        dram::SegmentModel model(module.geometry(),
                                 module.calibration(),
                                 module.variation(), 0,
                                 segment % 16, 50.0, 0.0);
        benchmark::DoNotOptimize(model.segmentEntropy(0b1110));
        ++segment;
    }
}
BENCHMARK(BM_SegmentModelConstruct);

void
BM_VonNeumann_1Mbit(benchmark::State &state)
{
    Xoshiro256pp rng(3);
    Bitstream bits;
    for (int i = 0; i < (1 << 20); ++i)
        bits.append(rng.bernoulli(0.5));
    for (auto _ : state)
        benchmark::DoNotOptimize(postprocess::vonNeumann(bits));
}
BENCHMARK(BM_VonNeumann_1Mbit);

Bitstream
randomBits(size_t n)
{
    Xoshiro256pp rng(9);
    Bitstream bits;
    for (size_t i = 0; i < n; i += 64)
        bits.appendWord(rng.next(), std::min<size_t>(64, n - i));
    return bits;
}

void
BM_NistMonobit_1Mbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 20);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::monobit(bits));
}
BENCHMARK(BM_NistMonobit_1Mbit);

void
BM_NistSerial_256Kbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 18);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::serial(bits));
}
BENCHMARK(BM_NistSerial_256Kbit);

void
BM_NistDft_256Kbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 18);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::dft(bits));
}
BENCHMARK(BM_NistDft_256Kbit);

void
BM_NistLinearComplexity_64Kbit(benchmark::State &state)
{
    Bitstream bits = randomBits(1 << 16);
    for (auto _ : state)
        benchmark::DoNotOptimize(nist::linearComplexityTest(bits));
}
BENCHMARK(BM_NistLinearComplexity_64Kbit);

} // anonymous namespace

BENCHMARK_MAIN();

/**
 * @file
 * Table 3: the 17-module population with average and maximum segment
 * entropy (pattern "0111") and the 30-day aging column.
 */

#include <cstdio>

#include "common/parallel.hh"
#include "common/stats.hh"
#include "core/characterizer.hh"
#include "util.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"full", "stride", "modules", "threads"});
    auto opts = benchutil::SweepOptions::parse(args, 32);

    benchutil::printExperimentHeader(
        "Table 3: module population and segment entropy",
        "avg segment entropy 1137-1853 bits; max 1371-2850; 30-day "
        "drift avg 2.4% (max 5.2%)",
        opts.note());

    auto specs = benchutil::catalogModules(opts.moduleCount);

    struct Row
    {
        RunningStats fresh;
        RunningStats aged;
    };
    std::vector<Row> rows(specs.size());

    parallelFor(0, specs.size(), [&](size_t i) {
        dram::DramModule module(specs[i]);
        core::Characterizer characterizer(module);
        core::CharacterizerConfig cfg;
        cfg.segmentStride = opts.stride;
        cfg.threads = 1;
        for (const auto &se : characterizer.segmentEntropies(cfg))
            rows[i].fresh.add(se.entropy);
        cfg.ageDays = 30.0;
        for (const auto &se : characterizer.segmentEntropies(cfg))
            rows[i].aged.add(se.entropy);
    }, opts.threads);

    Table table({"module", "chip", "MT/s", "avg (paper)",
                 "max (paper)", "avg 30d (paper)", "drift %"});
    RunningStats drift_stats;
    const auto &catalog = dram::paperCatalog();
    for (size_t i = 0; i < specs.size(); ++i) {
        const auto &entry = catalog[i];
        double avg = rows[i].fresh.mean();
        double aged = rows[i].aged.mean();
        double drift = (aged / avg - 1.0) * 100.0;
        drift_stats.add(std::abs(drift));
        std::string aged_paper =
            entry.avgSegmentEntropy30d > 0.0
                ? Table::num(entry.avgSegmentEntropy30d, 1)
                : std::string("-");
        table.addRow({entry.name, entry.chipId,
                      std::to_string(entry.transferRate),
                      benchutil::vsPaper(avg, entry.avgSegmentEntropy, 1),
                      benchutil::vsPaper(rows[i].fresh.max(),
                                         entry.maxSegmentEntropy, 1),
                      Table::num(aged, 1) + " (" + aged_paper + ")",
                      Table::num(drift, 2)});
    }
    table.print();

    std::printf("\nShape checks:\n");
    std::printf("  |30-day drift|: avg %.2f%% max %.2f%% "
                "(paper: avg 2.4%%, max 5.2%%, min 0.9%%) -> %s\n",
                drift_stats.mean(), drift_stats.max(),
                (drift_stats.mean() < 6.0) ? "OK" : "OFF");
    std::printf("  note: max-entropy column is computed over sampled "
                "segments; use --full for the exact maximum\n");
    return 0;
}

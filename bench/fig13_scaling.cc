/**
 * @file
 * Figure 13: TRNG throughput projected onto DDR4 transfer rates from
 * 2400 MT/s to 12 GT/s (four channels).
 *
 * Paper expectations at 12 GT/s: QUAC-TRNG 46.41, Talukder+-E 22.83,
 * D-RaNGe-E 11.63, Talukder+-B 2.54, D-RaNGe-B 1.09 Gb/s; QUAC and
 * Talukder+ scale with bandwidth, D-RaNGe saturates; QUAC beats the
 * enhanced baselines by 2.03x / 3.99x at 12 GT/s.
 */

#include <cstdio>
#include <vector>

#include "sched/trng_programs.hh"
#include "util.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"channels", "sib", "columns"});
    double channels = static_cast<double>(args.getUint("channels", 4));
    uint32_t sib = static_cast<uint32_t>(args.getUint("sib", 7));
    uint32_t columns =
        static_cast<uint32_t>(args.getUint("columns", 128));

    benchutil::printExperimentHeader(
        "Figure 13: throughput vs DDR4 transfer rate",
        "QUAC and Talukder+ are bandwidth-bound and scale; D-RaNGe "
        "is access-latency-bound and saturates",
        "paper-average iteration profile (--sib/--columns)");

    sched::QuacScheduleConfig quac_cfg;
    quac_cfg.banks = 4;
    quac_cfg.init = sched::InitMethod::RowClone;
    quac_cfg.profile = {sib, columns, 128};

    sched::DRangeScheduleConfig dre_cfg;
    dre_cfg.bitsPerAccess = 256.0 / 6.0;
    dre_cfg.accessesPerNumber = 6;
    dre_cfg.useSha = true;
    sched::DRangeScheduleConfig drb_cfg;
    drb_cfg.bitsPerAccess = 4.0;
    drb_cfg.accessesPerNumber = 64;

    sched::TalukderScheduleConfig te_cfg;
    te_cfg.bitsPerRow = 768.0;
    te_cfg.rowCloneInit = true;
    sched::TalukderScheduleConfig tb_cfg;
    tb_cfg.bitsPerRow = 256.0 / 3.0;
    tb_cfg.rowCloneInit = false;

    const std::vector<uint32_t> rates = {2400, 3600, 4800, 7200,
                                         9600, 12000};
    Table table({"MT/s", "QUAC-TRNG", "Talukder+-E", "D-RaNGe-E",
                 "Talukder+-B", "D-RaNGe-B"});
    double quac_2400 = 0.0;
    double quac_12000 = 0.0;
    double te_12000 = 0.0;
    double dre_12000 = 0.0;
    double dre_2400 = 0.0;
    for (uint32_t rate : rates) {
        auto timing = dram::TimingParams::ddr4(rate);
        double quac =
            sched::simulateQuacTrng(timing, quac_cfg).throughputGbps() *
            channels;
        double te =
            sched::simulateTalukder(timing, te_cfg).throughputGbps() *
            channels;
        double tb =
            sched::simulateTalukder(timing, tb_cfg).throughputGbps() *
            channels;
        double dre =
            sched::simulateDRange(timing, dre_cfg).throughputGbps() *
            channels;
        double drb =
            sched::simulateDRange(timing, drb_cfg).throughputGbps() *
            channels;
        if (rate == 2400) {
            quac_2400 = quac;
            dre_2400 = dre;
        }
        if (rate == 12000) {
            quac_12000 = quac;
            te_12000 = te;
            dre_12000 = dre;
        }
        table.addRow({std::to_string(rate), Table::num(quac, 2),
                      Table::num(te, 2), Table::num(dre, 2),
                      Table::num(tb, 2), Table::num(drb, 2)});
    }
    table.print();

    std::printf("\nPaper reference at 12 GT/s: QUAC 46.41, "
                "Talukder+-E 22.83, D-RaNGe-E 11.63, Talukder+-B "
                "2.54, D-RaNGe-B 1.09 Gb/s\n");
    std::printf("\nShape checks:\n");
    std::printf("  QUAC scales quasi-linearly: %.2fx from 2400 to "
                "12000 (paper 3.37x) -> %s\n",
                quac_12000 / quac_2400,
                (quac_12000 > 2.0 * quac_2400 &&
                 quac_12000 < 5.0 * quac_2400) ? "OK" : "OFF");
    std::printf("  D-RaNGe saturates: %.2fx -> %s\n",
                dre_12000 / dre_2400,
                dre_12000 < 1.3 * dre_2400 ? "OK" : "OFF");
    std::printf("  QUAC / Talukder+-E at 12 GT/s: %.2fx (paper "
                "2.03x)\n", quac_12000 / te_12000);
    std::printf("  QUAC / D-RaNGe-E at 12 GT/s: %.2fx (paper "
                "3.99x)\n", quac_12000 / dre_12000);
    return 0;
}

/**
 * @file
 * Table 1: NIST SP 800-22 results on (i) Von Neumann-corrected
 * per-sense-amplifier bitstreams and (ii) SHA-256-whitened QUAC-TRNG
 * output, plus the Section 7.1 pass-rate experiment.
 *
 * Paper expectations: both stream types pass all 15 tests with
 * mid-range average p-values; 99.28% of 1 Mbit SHA-256 sequences
 * pass (acceptable threshold 98.84% at alpha = 0.005... the paper's
 * Table 1 reports alpha = 0.001 per-test pass).
 */

#include <cstdio>

#include "core/sa_stream.hh"
#include "core/trng.hh"
#include "nist/sts.hh"
#include "postprocess/von_neumann.hh"
#include "util.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"full", "sequences", "bits", "module", "threads"});
    bool full = args.getBool("full");
    size_t sequences = args.getUint("sequences", full ? 8 : 2);
    size_t seq_bits = args.getUint("bits", 1u << 20);
    uint32_t module_index =
        static_cast<uint32_t>(args.getUint("module", 12)); // M13

    benchutil::printExperimentHeader(
        "Table 1: NIST STS randomness results",
        "VNC and SHA-256 streams pass all 15 tests (alpha = 0.001)",
        std::to_string(sequences) + " sequences of " +
            std::to_string(seq_bits) + " bits each " +
            "(--sequences/--bits/--full)");

    auto specs = benchutil::catalogModules(17);
    dram::DramModule module(specs[module_index]);

    // --- SHA-256 stream: the real QUAC-TRNG pipeline --------------
    core::QuacTrngConfig trng_cfg;
    trng_cfg.characterizeStride = 16;
    core::QuacTrng trng(module, trng_cfg);
    trng.setup();

    std::printf("\nQUAC-TRNG plans (module %s):\n",
                module.spec().name.c_str());
    for (const auto &plan : trng.plans()) {
        std::printf("  bank %u: segment %u, entropy %.1f bits, %zu "
                    "SHA input blocks\n",
                    plan.bank, plan.segment, plan.segmentEntropy,
                    plan.ranges.size());
    }

    std::vector<std::vector<double>> sha_p(nist::testNames().size());
    std::vector<bool> sha_test_pass(nist::testNames().size(), true);
    size_t sha_all_pass = 0;
    for (size_t s = 0; s < sequences; ++s) {
        Bitstream bits = trng.generateBits(seq_bits);
        auto results = nist::runAll(bits);
        bool all_pass = true;
        for (size_t t = 0; t < results.size(); ++t) {
            // SP 800-22 semantics: a test whose precondition fails
            // (e.g. < 500 excursion cycles) is skipped, not failed.
            if (results[t].applicable)
                sha_p[t].push_back(results[t].meanP());
            if (!results[t].passedOrInapplicable())
                sha_test_pass[t] = false;
            all_pass = all_pass && results[t].passedOrInapplicable();
        }
        sha_all_pass += all_pass;
    }

    // --- VNC stream: per-SA bitstreams through the corrector -------
    const auto &plan0 = trng.plans()[0];
    core::SaStreamSampler sampler(module, plan0.bank, plan0.segment,
                                  trng_cfg.pattern, 99);
    auto top = sampler.topMetastableBitlines(24);
    Bitstream vnc_stream;
    size_t raw_per_sa = seq_bits / 4; // VNC yield ~25% at p ~ 0.5
    while (vnc_stream.size() < seq_bits) {
        for (uint32_t bitline : top) {
            Bitstream raw = sampler.sample(bitline, raw_per_sa);
            vnc_stream.append(postprocess::vonNeumann(raw));
            if (vnc_stream.size() >= seq_bits)
                break;
        }
    }
    auto vnc_results =
        nist::runAll(vnc_stream.slice(0, seq_bits));

    // --- Table 1 ----------------------------------------------------
    // Paper's reported average p-values for reference.
    const double paper_vnc[] = {0.430, 0.408, 0.335, 0.564, 0.554,
                                0.538, 0.999, 0.513, 0.493, 0.483,
                                0.355, 0.448, 0.356, 0.164, 0.116};
    const double paper_sha[] = {0.500, 0.528, 0.558, 0.533, 0.548,
                                0.364, 0.488, 0.410, 0.387, 0.559,
                                0.510, 0.539, 0.381, 0.466, 0.510};

    Table table({"NIST STS test", "VNC p (paper)", "VNC pass",
                 "SHA-256 p (paper)", "SHA pass"});
    bool vnc_all = true;
    bool sha_all = true;
    for (size_t t = 0; t < nist::testNames().size(); ++t) {
        std::string sha_cell = "n/a";
        if (!sha_p[t].empty()) {
            double sha_mean = 0.0;
            for (double p : sha_p[t])
                sha_mean += p;
            sha_mean /= static_cast<double>(sha_p[t].size());
            sha_cell = benchutil::vsPaper(sha_mean, paper_sha[t], 3);
        }

        bool vnc_na = !vnc_results[t].applicable;
        bool vnc_pass = vnc_results[t].passedOrInapplicable();
        vnc_all = vnc_all && vnc_pass;
        bool sha_pass = sha_test_pass[t];
        sha_all = sha_all && sha_pass;

        table.addRow({nist::testNames()[t],
                      vnc_na ? "n/a (J<500)"
                             : benchutil::vsPaper(
                                   vnc_results[t].meanP(),
                                   paper_vnc[t], 3),
                      vnc_pass ? (vnc_na ? "skip" : "pass") : "FAIL",
                      sha_cell,
                      sha_pass ? "pass" : "FAIL"});
    }
    table.print();

    std::printf("\nSHA-256 sequences passing all 15 tests: %zu / %zu "
                "(paper: 99.28%% of 1024)\n",
                sha_all_pass, sequences);
    std::printf("Shape checks:\n");
    std::printf("  VNC stream passes all applicable tests: %s\n",
                vnc_all ? "OK" : "OFF");
    std::printf("  all SHA sequences pass all applicable tests: %s\n",
                sha_all_pass == sequences ? "OK" : "OFF");
    (void)sha_all;
    return 0;
}

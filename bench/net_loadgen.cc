/**
 * @file
 * Measured loopback benchmark of the UDP entropy front end.
 *
 * Stands up a real UdpServer (in-process thread, ephemeral loopback
 * port) over an EntropyService backed by deterministic SoftwareTrng
 * generators — fast generators on purpose, so the numbers measure
 * the network path (epoll + recvmmsg/sendmmsg + wire handling +
 * zero-copy serve), not generator compute — and drives it with the
 * open-loop load generator.
 *
 * Two sweeps, both measured (never modelled):
 *   - client scale: 1k / 10k / 100k simulated wire clients at a
 *     fixed syscall batch, reporting requests/s and p50/p95/p99
 *     wall-clock latency;
 *   - syscall batch: 1 vs 16 vs 64 messages per recvmmsg/sendmmsg
 *     at a fixed scale, quantifying the batching speedup.
 *
 * Writes BENCH_net.json (--json <path>). The numbers depend on the
 * host — this container pins everything to little CPU — so the JSON
 * records the core count; see README "Network front end" for the
 * >= 4-core re-measurement procedure.
 *
 * Flags: --quick (CI-sized run), --requests N, --rate R (req/s),
 * --bytes B, --json PATH.
 */

#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/fault_injection.hh"
#include "net/loadgen.hh"
#include "net/udp_server.hh"
#include "service/entropy_service.hh"
#include "util.hh"

using namespace quac;

namespace
{

struct RunSpec
{
    std::string label;
    uint64_t clients = 0;
    unsigned batch = 0;
    uint64_t requests = 0;
    double ratePerSec = 0.0;
    uint32_t requestBytes = 0;
};

struct RunRow
{
    RunSpec spec;
    net::LoadGenResult result;
    uint64_t serverRecvCalls = 0;
    uint64_t serverSendCalls = 0;
};

/** One measured server+loadgen run over loopback. */
RunRow
runOnce(const RunSpec &spec, uint64_t seed)
{
    // Four fast deterministic backends -> four shards; chunk 256
    // keeps the refill path off the per-request critical path.
    std::vector<std::unique_ptr<core::SoftwareTrng>> backends;
    std::vector<core::Trng *> raw;
    for (uint64_t b = 0; b < 4; ++b) {
        backends.push_back(std::make_unique<core::SoftwareTrng>(
            seed + b, "sw" + std::to_string(b), 256));
        raw.push_back(backends.back().get());
    }
    service::EntropyServiceConfig scfg;
    scfg.shardCapacityBytes = 64 * 1024;
    scfg.placement = service::PlacementPolicy::LeastLoaded;
    service::EntropyService service(raw, scfg);

    net::UdpServerConfig ucfg;
    ucfg.batchMessages = spec.batch;
    ucfg.table.capacity = 1 << 17; // hold every simulated client
    net::UdpServer server(service, ucfg);

    std::thread loop([&server] { server.run(); });

    net::LoadGenConfig lcfg;
    lcfg.port = server.port();
    lcfg.clients = spec.clients;
    lcfg.requests = spec.requests;
    lcfg.ratePerSec = spec.ratePerSec;
    lcfg.requestBytes = spec.requestBytes;
    lcfg.batchMessages = spec.batch;
    lcfg.seed = seed;
    RunRow row;
    row.spec = spec;
    row.result = net::runLoadGen(lcfg);

    server.stop();
    loop.join();
    row.serverRecvCalls = server.stats().recvCalls;
    row.serverSendCalls = server.stats().sendCalls;
    return row;
}

void
printRow(const RunRow &row)
{
    std::printf(
        "  %-14s clients %6" PRIu64 "  batch %2u  sent %7" PRIu64
        "  rcvd %7" PRIu64 "  lost %3" PRIu64
        "  %8.0f req/s  p50 %6.1f us  p95 %6.1f us  p99 %6.1f us\n",
        row.spec.label.c_str(), row.spec.clients, row.spec.batch,
        row.result.sent, row.result.received, row.result.lost,
        row.result.achievedRps,
        static_cast<double>(row.result.p50Ns) * 1e-3,
        static_cast<double>(row.result.p95Ns) * 1e-3,
        static_cast<double>(row.result.p99Ns) * 1e-3);
}

void
writeRowJson(std::FILE *f, const RunRow &row, bool last)
{
    std::fprintf(
        f,
        "    {\"label\": \"%s\", \"clients\": %" PRIu64
        ", \"batch\": %u, \"requests\": %" PRIu64
        ", \"offered_rps\": %.0f, \"sent\": %" PRIu64
        ", \"received\": %" PRIu64 ", \"lost\": %" PRIu64
        ", \"ok\": %" PRIu64 ", \"denied\": %" PRIu64
        ", \"achieved_rps\": %.1f, \"p50_ns\": %" PRIu64
        ", \"p95_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
        ", \"max_ns\": %" PRIu64 ", \"server_recv_calls\": %" PRIu64
        ", \"server_send_calls\": %" PRIu64 "}%s\n",
        row.spec.label.c_str(), row.spec.clients, row.spec.batch,
        row.spec.requests, row.result.offeredRps, row.result.sent,
        row.result.received, row.result.lost, row.result.okCount(),
        row.result.denyCount(), row.result.achievedRps,
        row.result.p50Ns, row.result.p95Ns, row.result.p99Ns,
        row.result.maxNs, row.serverRecvCalls, row.serverSendCalls,
        last ? "" : ",");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"quick", "requests", "rate", "bytes", "json"});
    bool quick = args.getBool("quick");
    uint64_t requests =
        args.getUint("requests", quick ? 20000 : 100000);
    double rate = args.getDouble("rate", quick ? 40000.0 : 80000.0);
    uint32_t bytes =
        static_cast<uint32_t>(args.getUint("bytes", 64));
    std::string json_path = args.getString("json");

    benchutil::printExperimentHeader(
        "net_loadgen: measured UDP front-end loopback benchmark",
        "system layer (no paper figure): epoll + batched syscalls "
        "over the sharded entropy service",
        std::to_string(requests) + " requests/run at " +
            std::to_string(static_cast<uint64_t>(rate)) +
            " req/s offered, " +
            std::to_string(std::thread::hardware_concurrency()) +
            " cores");

    // Sweep 1: client scale at the default batch of 16.
    std::vector<RunRow> scale_rows;
    std::printf("\nClient-scale sweep (batch 16):\n");
    for (uint64_t clients : {1000ull, 10000ull, 100000ull}) {
        RunSpec spec;
        spec.label = "scale";
        spec.clients = clients;
        spec.batch = 16;
        spec.requests = requests;
        spec.ratePerSec = rate;
        spec.requestBytes = bytes;
        scale_rows.push_back(runOnce(spec, 7 + clients));
        printRow(scale_rows.back());
    }

    // Sweep 2: messages per syscall at 10k clients.
    std::vector<RunRow> batch_rows;
    std::printf("\nSyscall-batch sweep (10k clients):\n");
    for (unsigned batch : {1u, 16u, 64u}) {
        RunSpec spec;
        spec.label = "batch";
        spec.clients = 10000;
        spec.batch = batch;
        spec.requests = requests;
        spec.ratePerSec = rate;
        spec.requestBytes = bytes;
        batch_rows.push_back(runOnce(spec, 100 + batch));
        printRow(batch_rows.back());
    }

    // The batching win, measured: syscalls saved and the tail-latency
    // ratio of batch=1 over batch=64 at the same offered load.
    const RunRow &b1 = batch_rows.front();
    const RunRow &b64 = batch_rows.back();
    double syscall_ratio =
        b64.serverRecvCalls > 0
            ? static_cast<double>(b1.serverRecvCalls) /
                  static_cast<double>(b64.serverRecvCalls)
            : 0.0;
    double p99_ratio =
        b64.result.p99Ns > 0
            ? static_cast<double>(b1.result.p99Ns) /
                  static_cast<double>(b64.result.p99Ns)
            : 0.0;
    std::printf("\nBatching speedup (batch 1 -> 64): %.1fx fewer "
                "recv syscalls, p99 ratio %.2fx\n",
                syscall_ratio, p99_ratio);

    bool lost_any = false;
    for (const std::vector<RunRow> *rows : {&scale_rows, &batch_rows})
        for (const RunRow &row : *rows)
            lost_any = lost_any || row.result.lost > 0 ||
                       row.result.sent !=
                           row.result.received + row.result.lost;

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "net_loadgen: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n  \"requests_per_run\": %" PRIu64
                     ",\n  \"offered_rps\": %.0f,\n"
                     "  \"request_bytes\": %u,\n"
                     "  \"hardware_concurrency\": %u,\n",
                     requests, rate, bytes,
                     std::thread::hardware_concurrency());
        std::fprintf(f, "  \"client_scale_sweep\": [\n");
        for (size_t i = 0; i < scale_rows.size(); ++i)
            writeRowJson(f, scale_rows[i],
                         i + 1 == scale_rows.size());
        std::fprintf(f, "  ],\n  \"syscall_batch_sweep\": [\n");
        for (size_t i = 0; i < batch_rows.size(); ++i)
            writeRowJson(f, batch_rows[i],
                         i + 1 == batch_rows.size());
        std::fprintf(f,
                     "  ],\n  \"batch_1_to_64_recv_syscall_ratio\": "
                     "%.2f,\n  \"batch_1_to_64_p99_ratio\": %.2f,\n"
                     "  \"all_requests_accounted\": %s\n}\n",
                     syscall_ratio, p99_ratio,
                     lost_any ? "false" : "true");
        std::fclose(f);
        std::printf("Wrote %s\n", json_path.c_str());
    }

    if (lost_any) {
        std::printf("FAIL: well-formed requests lost\n");
        return 1;
    }
    std::printf("PASS: every request accounted (response or "
                "counted loss = 0)\n");
    return 0;
}

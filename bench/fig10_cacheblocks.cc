/**
 * @file
 * Figure 10: per-cache-block entropy across the highest-entropy
 * segment of each module (pattern "0111").
 *
 * Paper expectation: cache-block entropy peaks around the middle of
 * the segment and deteriorates toward the high-numbered blocks.
 */

#include <algorithm>
#include <cstdio>

#include "common/parallel.hh"
#include "common/stats.hh"
#include "core/characterizer.hh"
#include "util.hh"

using namespace quac;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"full", "stride", "modules", "threads", "buckets"});
    auto opts = benchutil::SweepOptions::parse(args, 32);
    uint32_t buckets =
        static_cast<uint32_t>(args.getUint("buckets", 16));

    benchutil::printExperimentHeader(
        "Figure 10: cache-block entropy inside the best segment",
        "entropy peaks around the middle cache blocks and "
        "deteriorates toward the end of the segment",
        opts.note());

    auto specs = benchutil::catalogModules(opts.moduleCount);
    uint32_t ncols = dram::Geometry::paperScale().cacheBlocksPerRow();
    std::vector<std::vector<double>> profiles(specs.size());

    parallelFor(0, specs.size(), [&](size_t i) {
        dram::DramModule module(specs[i]);
        core::Characterizer characterizer(module);
        core::CharacterizerConfig cfg;
        cfg.segmentStride = opts.stride;
        cfg.threads = 1;
        core::SegmentEntropy best = characterizer.bestSegment(cfg);
        profiles[i] = characterizer.cacheBlockEntropies(
            0, best.segment, cfg.pattern);
    }, opts.threads);

    Table table({"cache blocks", "avg entropy", "range [min,max]"});
    std::vector<double> bucket_avg(buckets, 0.0);
    for (uint32_t bucket = 0; bucket < buckets; ++bucket) {
        uint32_t begin = bucket * ncols / buckets;
        uint32_t end = (bucket + 1) * ncols / buckets;
        RunningStats stats;
        for (const auto &profile : profiles) {
            for (uint32_t col = begin; col < end; ++col)
                stats.add(profile[col]);
        }
        bucket_avg[bucket] = stats.mean();
        table.addRow({std::to_string(begin) + "-" +
                          std::to_string(end - 1),
                      Table::num(stats.mean(), 2),
                      "[" + Table::num(stats.min(), 2) + ", " +
                          Table::num(stats.max(), 2) + "]"});
    }
    table.print();

    size_t peak_bucket = static_cast<size_t>(
        std::max_element(bucket_avg.begin(), bucket_avg.end()) -
        bucket_avg.begin());
    std::printf("\nShape checks:\n");
    std::printf("  peak bucket %zu of %u (middle band expected) -> "
                "%s\n",
                peak_bucket, buckets,
                (peak_bucket >= buckets / 5 &&
                 peak_bucket <= 3 * buckets / 4)
                    ? "OK" : "OFF");
    std::printf("  tail below peak: last bucket %.2f vs peak %.2f -> "
                "%s\n",
                bucket_avg.back(), bucket_avg[peak_bucket],
                bucket_avg.back() < 0.8 * bucket_avg[peak_bucket]
                    ? "OK" : "OFF");
    std::printf("  tail below head: %.2f vs %.2f -> %s\n",
                bucket_avg.back(), bucket_avg.front(),
                bucket_avg.back() <= bucket_avg.front() + 1e-9
                    ? "OK" : "OFF");
    return 0;
}

/**
 * @file
 * Berlekamp-Massey linear complexity over GF(2), used by the
 * SP 800-22 linear complexity test.
 */

#ifndef QUAC_NIST_BERLEKAMP_MASSEY_HH
#define QUAC_NIST_BERLEKAMP_MASSEY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace quac::nist
{

/**
 * Length of the shortest LFSR generating the bit sequence.
 * @param bits sequence of 0/1 values.
 */
size_t linearComplexity(const std::vector<uint8_t> &bits);

} // namespace quac::nist

#endif // QUAC_NIST_BERLEKAMP_MASSEY_HH

/**
 * @file
 * Aperiodic (unbordered) template enumeration for the SP 800-22
 * non-overlapping template matching test.
 */

#ifndef QUAC_NIST_TEMPLATES_HH
#define QUAC_NIST_TEMPLATES_HH

#include <cstdint>
#include <vector>

namespace quac::nist
{

/**
 * All unbordered (self-overlap-free) bit templates of length @p m,
 * encoded LSB-first as integers. A template B is unbordered when no
 * proper prefix of B equals the suffix of the same length; these are
 * exactly the "aperiodic templates" NIST enumerates (148 for m = 9).
 */
std::vector<uint32_t> aperiodicTemplates(unsigned m);

/** True if the LSB-first template of length m is unbordered. */
bool isAperiodic(uint32_t bits, unsigned m);

} // namespace quac::nist

#endif // QUAC_NIST_TEMPLATES_HH

#include "nist/sts.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>

#include "common/error.hh"
#include "nist/berlekamp_massey.hh"
#include "nist/fft.hh"
#include "nist/matrix_rank.hh"
#include "nist/special.hh"
#include "nist/templates.hh"

namespace quac::nist
{

bool
TestResult::passed(double alpha) const
{
    if (!applicable || pValues.empty())
        return false;
    for (double p : pValues) {
        if (p < alpha)
            return false;
    }
    return true;
}

bool
TestResult::passedOrInapplicable(double alpha) const
{
    return !applicable || passed(alpha);
}

double
TestResult::minP() const
{
    double min_p = 1.0;
    for (double p : pValues)
        min_p = std::min(min_p, p);
    return min_p;
}

double
TestResult::meanP() const
{
    if (pValues.empty())
        return 0.0;
    double sum = 0.0;
    for (double p : pValues)
        sum += p;
    return sum / static_cast<double>(pValues.size());
}

namespace
{

/** Sequence as +-1 sums helper: number of ones. */
size_t
countOnes(const Bitstream &bits)
{
    return bits.popcount();
}

TestResult
notApplicable(const std::string &name, const std::string &why)
{
    TestResult result;
    result.name = name;
    result.applicable = false;
    result.note = why;
    return result;
}

} // anonymous namespace

TestResult
monobit(const Bitstream &bits)
{
    TestResult result;
    result.name = "monobit";
    size_t n = bits.size();
    if (n < 100)
        return notApplicable(result.name, "need n >= 100");

    double s = 2.0 * static_cast<double>(countOnes(bits)) -
               static_cast<double>(n);
    double s_obs = std::fabs(s) / std::sqrt(static_cast<double>(n));
    result.pValues.push_back(std::erfc(s_obs / M_SQRT2));
    return result;
}

TestResult
frequencyWithinBlock(const Bitstream &bits, size_t block_len)
{
    TestResult result;
    result.name = "frequency_within_block";
    size_t n = bits.size();
    if (n < 100 || block_len < 20)
        return notApplicable(result.name, "need n >= 100, M >= 20");

    size_t blocks = n / block_len;
    if (blocks == 0)
        return notApplicable(result.name, "sequence shorter than block");
    blocks = std::min(blocks, static_cast<size_t>(999999));

    double chi2 = 0.0;
    for (size_t i = 0; i < blocks; ++i) {
        size_t ones = 0;
        for (size_t j = 0; j < block_len; ++j)
            ones += bits[i * block_len + j];
        double pi = static_cast<double>(ones) /
                    static_cast<double>(block_len);
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * static_cast<double>(block_len);
    result.pValues.push_back(
        igamc(static_cast<double>(blocks) / 2.0, chi2 / 2.0));
    return result;
}

TestResult
runs(const Bitstream &bits)
{
    TestResult result;
    result.name = "runs";
    size_t n = bits.size();
    if (n < 100)
        return notApplicable(result.name, "need n >= 100");

    double pi = static_cast<double>(countOnes(bits)) /
                static_cast<double>(n);
    // Frequency precondition from the specification.
    if (std::fabs(pi - 0.5) >= 2.0 / std::sqrt(static_cast<double>(n))) {
        result.pValues.push_back(0.0);
        result.note = "monobit precondition failed";
        return result;
    }

    size_t v = 1;
    for (size_t i = 1; i < n; ++i)
        v += bits[i] != bits[i - 1];

    double num = std::fabs(static_cast<double>(v) -
                           2.0 * n * pi * (1.0 - pi));
    double den = 2.0 * std::sqrt(2.0 * n) * pi * (1.0 - pi);
    result.pValues.push_back(std::erfc(num / den));
    return result;
}

TestResult
longestRunOfOnes(const Bitstream &bits)
{
    TestResult result;
    result.name = "longest_run_ones_in_a_block";
    size_t n = bits.size();
    if (n < 128)
        return notApplicable(result.name, "need n >= 128");

    // Parameterization from SP 800-22 Section 2.4.
    size_t m;
    std::vector<size_t> edges;   // category upper bounds on run length
    std::vector<double> pi;
    if (n < 6272) {
        m = 8;
        edges = {1, 2, 3};
        pi = {0.2148, 0.3672, 0.2305, 0.1875};
    } else if (n < 750000) {
        m = 128;
        edges = {4, 5, 6, 7, 8};
        pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
    } else {
        m = 10000;
        edges = {10, 11, 12, 13, 14, 15};
        pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
    }

    size_t blocks = n / m;
    std::vector<size_t> v(pi.size(), 0);
    for (size_t b = 0; b < blocks; ++b) {
        size_t longest = 0;
        size_t current = 0;
        for (size_t j = 0; j < m; ++j) {
            if (bits[b * m + j]) {
                ++current;
                longest = std::max(longest, current);
            } else {
                current = 0;
            }
        }
        size_t category = edges.size();
        for (size_t k = 0; k < edges.size(); ++k) {
            if (longest <= edges[k]) {
                category = k;
                break;
            }
        }
        v[category]++;
    }

    double chi2 = 0.0;
    for (size_t k = 0; k < pi.size(); ++k) {
        double expected = static_cast<double>(blocks) * pi[k];
        double diff = static_cast<double>(v[k]) - expected;
        chi2 += diff * diff / expected;
    }
    result.pValues.push_back(
        igamc(static_cast<double>(pi.size() - 1) / 2.0, chi2 / 2.0));
    return result;
}

TestResult
binaryMatrixRank(const Bitstream &bits)
{
    TestResult result;
    result.name = "binary_matrix_rank";
    constexpr unsigned m = 32;
    size_t n = bits.size();
    size_t matrices = n / (m * m);
    if (matrices < 38)
        return notApplicable(result.name, "need >= 38 32x32 matrices");

    // Asymptotic rank distribution for random GF(2) matrices.
    constexpr double pFull = 0.2888;
    constexpr double pMinus1 = 0.5776;
    constexpr double pRest = 0.1336;

    size_t f_full = 0;
    size_t f_minus1 = 0;
    size_t bit = 0;
    for (size_t mat = 0; mat < matrices; ++mat) {
        std::vector<uint64_t> rows(m, 0);
        for (unsigned r = 0; r < m; ++r) {
            for (unsigned c = 0; c < m; ++c) {
                if (bits[bit++])
                    rows[r] |= uint64_t{1} << c;
            }
        }
        unsigned rank = gf2Rank(std::move(rows), m);
        if (rank == m)
            ++f_full;
        else if (rank == m - 1)
            ++f_minus1;
    }
    size_t f_rest = matrices - f_full - f_minus1;

    double nm = static_cast<double>(matrices);
    double chi2 =
        (f_full - pFull * nm) * (f_full - pFull * nm) / (pFull * nm) +
        (f_minus1 - pMinus1 * nm) * (f_minus1 - pMinus1 * nm) /
            (pMinus1 * nm) +
        (f_rest - pRest * nm) * (f_rest - pRest * nm) / (pRest * nm);
    result.pValues.push_back(std::exp(-chi2 / 2.0));
    return result;
}

TestResult
dft(const Bitstream &bits)
{
    TestResult result;
    result.name = "dft";
    size_t n = bits.size();
    if (n < 1000)
        return notApplicable(result.name, "need n >= 1000");

    std::vector<std::complex<double>> x(n);
    for (size_t i = 0; i < n; ++i)
        x[i] = {bits[i] ? 1.0 : -1.0, 0.0};

    std::vector<std::complex<double>> spectrum = dftAnyLength(x);

    double threshold = std::sqrt(std::log(1.0 / 0.05) *
                                 static_cast<double>(n));
    size_t half = n / 2;
    size_t below = 0;
    for (size_t j = 0; j < half; ++j) {
        if (std::abs(spectrum[j]) < threshold)
            ++below;
    }

    double n0 = 0.95 * static_cast<double>(half);
    double d = (static_cast<double>(below) - n0) /
               std::sqrt(static_cast<double>(n) * 0.95 * 0.05 / 4.0);
    result.pValues.push_back(std::erfc(std::fabs(d) / M_SQRT2));
    return result;
}

TestResult
nonOverlappingTemplateMatching(const Bitstream &bits, unsigned m)
{
    TestResult result;
    result.name = "non_overlapping_template_matching";
    size_t n = bits.size();
    constexpr size_t blocks = 8;
    size_t block_len = n / blocks;
    if (m < 2 || m > 16 || block_len < 2 * m)
        return notApplicable(result.name, "sequence too short");

    double mu = static_cast<double>(block_len - m + 1) /
                std::pow(2.0, m);
    double sigma2 =
        static_cast<double>(block_len) *
        (1.0 / std::pow(2.0, m) -
         (2.0 * m - 1.0) / std::pow(2.0, 2.0 * m));
    if (mu <= 0.0 || sigma2 <= 0.0)
        return notApplicable(result.name, "degenerate statistics");

    // Precompute the LSB-first m-bit window at every position once,
    // then scan the integer array per template (the skip-on-match
    // state is per-template, so matching cannot be fully shared).
    size_t positions = block_len - m + 1;
    std::vector<uint32_t> windows(blocks * positions);
    uint32_t mask = (uint32_t{1} << m) - 1;
    for (size_t b = 0; b < blocks; ++b) {
        size_t start = b * block_len;
        uint32_t window = 0;
        for (unsigned j = 0; j < m; ++j)
            window |= static_cast<uint32_t>(bits[start + j]) << j;
        windows[b * positions] = window;
        for (size_t i = 1; i < positions; ++i) {
            window = (window >> 1) |
                     (static_cast<uint32_t>(bits[start + i + m - 1])
                      << (m - 1));
            windows[b * positions + i] = window & mask;
        }
    }

    for (uint32_t tmpl : aperiodicTemplates(m)) {
        double chi2 = 0.0;
        for (size_t b = 0; b < blocks; ++b) {
            const uint32_t *w = windows.data() + b * positions;
            size_t count = 0;
            size_t i = 0;
            while (i < positions) {
                if (w[i] == tmpl) {
                    ++count;
                    i += m;   // non-overlapping: skip past the match
                } else {
                    ++i;
                }
            }
            double diff = static_cast<double>(count) - mu;
            chi2 += diff * diff / sigma2;
        }
        result.pValues.push_back(
            igamc(static_cast<double>(blocks) / 2.0, chi2 / 2.0));
    }
    return result;
}

TestResult
overlappingTemplateMatching(const Bitstream &bits, unsigned m)
{
    TestResult result;
    result.name = "overlapping_template_matching";
    size_t n = bits.size();
    constexpr size_t block_len = 1032;
    constexpr size_t k = 5;
    size_t blocks = n / block_len;
    if (blocks < 10)
        return notApplicable(result.name, "need n >= ~10 Kbit");

    // Class probabilities for K = 5, M = 1032, m = 9 (SP 800-22).
    constexpr std::array<double, k + 1> pi = {
        0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865};

    std::array<size_t, k + 1> v{};
    for (size_t b = 0; b < blocks; ++b) {
        size_t start = b * block_len;
        // A window of m ones ending at position i exists iff the
        // current run of ones has length >= m.
        size_t count = 0;
        size_t run = 0;
        for (size_t i = 0; i < block_len; ++i) {
            run = bits[start + i] ? run + 1 : 0;
            count += (run >= m);
        }
        v[std::min(count, k)]++;
    }

    double chi2 = 0.0;
    for (size_t c = 0; c <= k; ++c) {
        double expected = static_cast<double>(blocks) * pi[c];
        double diff = static_cast<double>(v[c]) - expected;
        chi2 += diff * diff / expected;
    }
    result.pValues.push_back(
        igamc(static_cast<double>(k) / 2.0, chi2 / 2.0));
    return result;
}

TestResult
maurersUniversal(const Bitstream &bits)
{
    TestResult result;
    result.name = "maurers_universal";
    size_t n = bits.size();

    // Block length by sequence size (SP 800-22 Section 2.9).
    struct Config { size_t minN; unsigned l; double ev; double var; };
    static const std::array<Config, 5> configs = {{
        {387840, 6, 5.2177052, 2.954},
        {904960, 7, 6.1962507, 3.125},
        {2068480, 8, 7.1836656, 3.238},
        {4654080, 9, 8.1764248, 3.311},
        {10342400, 10, 9.1723243, 3.356},
    }};

    unsigned l = 0;
    double expected = 0.0;
    double variance = 0.0;
    for (const Config &cfg : configs) {
        if (n >= cfg.minN) {
            l = cfg.l;
            expected = cfg.ev;
            variance = cfg.var;
        }
    }
    if (l == 0)
        return notApplicable(result.name, "need n >= 387840");

    size_t q = 10 * (size_t{1} << l);
    size_t total_blocks = n / l;
    size_t k = total_blocks - q;

    std::vector<size_t> last_seen(size_t{1} << l, 0);
    auto block_value = [&](size_t index) {
        size_t value = 0;
        size_t base = index * l;
        for (unsigned j = 0; j < l; ++j)
            value |= static_cast<size_t>(bits[base + j]) << j;
        return value;
    };

    for (size_t i = 0; i < q; ++i)
        last_seen[block_value(i)] = i + 1;

    double sum = 0.0;
    for (size_t i = q; i < total_blocks; ++i) {
        size_t value = block_value(i);
        size_t distance = i + 1 - last_seen[value];
        sum += std::log2(static_cast<double>(distance));
        last_seen[value] = i + 1;
    }
    double fn = sum / static_cast<double>(k);

    double c = 0.7 - 0.8 / l +
               (4.0 + 32.0 / l) *
                   std::pow(static_cast<double>(k), -3.0 / l) / 15.0;
    double sigma = c * std::sqrt(variance / static_cast<double>(k));
    result.pValues.push_back(
        std::erfc(std::fabs(fn - expected) / (M_SQRT2 * sigma)));
    return result;
}

TestResult
linearComplexityTest(const Bitstream &bits, size_t block_len)
{
    TestResult result;
    result.name = "linear_complexity";
    size_t n = bits.size();
    size_t blocks = n / block_len;
    if (block_len < 500 || blocks < 20)
        return notApplicable(result.name, "need M >= 500, N >= 20");

    double m = static_cast<double>(block_len);
    double sign_m = (block_len % 2 == 0) ? 1.0 : -1.0;
    double mu = m / 2.0 + (9.0 - sign_m) / 36.0 -
                (m / 3.0 + 2.0 / 9.0) / std::pow(2.0, m);

    // Class probabilities for T (SP 800-22 Section 2.10).
    constexpr std::array<double, 7> pi = {
        0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833};
    std::array<size_t, 7> v{};

    std::vector<uint8_t> block(block_len);
    for (size_t b = 0; b < blocks; ++b) {
        for (size_t j = 0; j < block_len; ++j)
            block[j] = bits[b * block_len + j];
        double l = static_cast<double>(linearComplexity(block));
        double t = sign_m * (l - mu) + 2.0 / 9.0;
        size_t cls;
        if (t <= -2.5)
            cls = 0;
        else if (t <= -1.5)
            cls = 1;
        else if (t <= -0.5)
            cls = 2;
        else if (t <= 0.5)
            cls = 3;
        else if (t <= 1.5)
            cls = 4;
        else if (t <= 2.5)
            cls = 5;
        else
            cls = 6;
        v[cls]++;
    }

    double chi2 = 0.0;
    for (size_t c = 0; c < pi.size(); ++c) {
        double expected = static_cast<double>(blocks) * pi[c];
        double diff = static_cast<double>(v[c]) - expected;
        chi2 += diff * diff / expected;
    }
    result.pValues.push_back(igamc(6.0 / 2.0, chi2 / 2.0));
    return result;
}

namespace
{

/**
 * psi-squared statistic over all overlapping m-bit patterns (with
 * wraparound), shared by the serial and approximate entropy tests.
 */
double
psiSquared(const Bitstream &bits, unsigned m)
{
    if (m == 0)
        return 0.0;
    size_t n = bits.size();
    std::vector<size_t> counts(size_t{1} << m, 0);
    size_t mask = (size_t{1} << m) - 1;

    size_t window = 0;
    for (unsigned j = 0; j < m - 1; ++j)
        window = (window << 1) | bits[j];
    for (size_t i = 0; i < n; ++i) {
        size_t next = bits[(i + m - 1) % n];
        window = ((window << 1) | next) & mask;
        counts[window]++;
    }

    double sum = 0.0;
    for (size_t c : counts)
        sum += static_cast<double>(c) * static_cast<double>(c);
    return sum * std::pow(2.0, m) / static_cast<double>(n) -
           static_cast<double>(n);
}

} // anonymous namespace

TestResult
serial(const Bitstream &bits, unsigned m)
{
    TestResult result;
    result.name = "serial";
    size_t n = bits.size();
    if (m < 3 || n < 128)
        return notApplicable(result.name, "sequence too short");

    // SP 800-22 requires m < floor(log2 n) - 2 for the chi-squared
    // approximation to hold; clamp oversized m rather than emit
    // invalid p-values.
    unsigned max_m = 0;
    while ((size_t{1} << (max_m + 1)) <= n)
        ++max_m;
    max_m = max_m > 3 ? max_m - 3 : 3;
    if (m > max_m) {
        result.note = "block length clamped to " +
                      std::to_string(max_m);
        m = max_m;
    }

    double psi_m = psiSquared(bits, m);
    double psi_m1 = psiSquared(bits, m - 1);
    double psi_m2 = psiSquared(bits, m - 2);

    double d1 = psi_m - psi_m1;
    double d2 = psi_m - 2.0 * psi_m1 + psi_m2;

    result.pValues.push_back(
        igamc(std::pow(2.0, m - 2), d1 / 2.0));
    result.pValues.push_back(
        igamc(std::pow(2.0, m - 3), d2 / 2.0));
    return result;
}

TestResult
approximateEntropy(const Bitstream &bits, unsigned m)
{
    TestResult result;
    result.name = "approximate_entropy";
    size_t n = bits.size();
    if (n < 1024)
        return notApplicable(result.name, "sequence too short");

    // SP 800-22 requires m < floor(log2 n) - 5; clamp oversized m.
    unsigned max_m = 0;
    while ((size_t{1} << (max_m + 1)) <= n)
        ++max_m;
    max_m = max_m > 6 ? max_m - 6 : 2;
    if (m > max_m) {
        result.note = "block length clamped to " +
                      std::to_string(max_m);
        m = max_m;
    }

    // phi_m from pattern frequencies (with wraparound).
    auto phi = [&](unsigned mm) {
        if (mm == 0)
            return 0.0;
        std::vector<size_t> counts(size_t{1} << mm, 0);
        size_t mask = (size_t{1} << mm) - 1;
        size_t window = 0;
        for (unsigned j = 0; j < mm - 1; ++j)
            window = (window << 1) | bits[j];
        for (size_t i = 0; i < n; ++i) {
            size_t next = bits[(i + mm - 1) % n];
            window = ((window << 1) | next) & mask;
            counts[window]++;
        }
        double sum = 0.0;
        for (size_t c : counts) {
            if (c == 0)
                continue;
            double p = static_cast<double>(c) / static_cast<double>(n);
            sum += p * std::log(p);
        }
        return sum;
    };

    double apen = phi(m) - phi(m + 1);
    double chi2 = 2.0 * static_cast<double>(n) * (std::log(2.0) - apen);
    result.pValues.push_back(igamc(std::pow(2.0, m - 1), chi2 / 2.0));
    return result;
}

TestResult
cumulativeSums(const Bitstream &bits)
{
    TestResult result;
    result.name = "cumulative_sums";
    size_t n = bits.size();
    if (n < 100)
        return notApplicable(result.name, "need n >= 100");

    auto p_value = [&](bool forward) {
        int64_t sum = 0;
        int64_t z = 0;
        for (size_t i = 0; i < n; ++i) {
            bool bit = forward ? bits[i] : bits[n - 1 - i];
            sum += bit ? 1 : -1;
            z = std::max<int64_t>(z, std::llabs(sum));
        }
        double zd = static_cast<double>(z);
        double nd = static_cast<double>(n);
        double sqrt_n = std::sqrt(nd);

        double sum1 = 0.0;
        int64_t k_lo = (-static_cast<int64_t>(nd / zd) + 1) / 4;
        int64_t k_hi = static_cast<int64_t>(nd / zd - 1) / 4;
        for (int64_t k = k_lo; k <= k_hi; ++k) {
            sum1 += normalCdf((4.0 * k + 1.0) * zd / sqrt_n) -
                    normalCdf((4.0 * k - 1.0) * zd / sqrt_n);
        }
        double sum2 = 0.0;
        k_lo = (-static_cast<int64_t>(nd / zd) - 3) / 4;
        k_hi = static_cast<int64_t>(nd / zd - 1) / 4;
        for (int64_t k = k_lo; k <= k_hi; ++k) {
            sum2 += normalCdf((4.0 * k + 3.0) * zd / sqrt_n) -
                    normalCdf((4.0 * k + 1.0) * zd / sqrt_n);
        }
        return 1.0 - sum1 + sum2;
    };

    result.pValues.push_back(p_value(true));
    result.pValues.push_back(p_value(false));
    return result;
}

namespace
{

/** Cycle decomposition of the +-1 random walk for excursion tests. */
std::vector<std::vector<int64_t>>
walkCycles(const Bitstream &bits)
{
    std::vector<std::vector<int64_t>> cycles;
    std::vector<int64_t> current;
    current.push_back(0);
    int64_t sum = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
        sum += bits[i] ? 1 : -1;
        current.push_back(sum);
        if (sum == 0) {
            cycles.push_back(std::move(current));
            current.clear();
            current.push_back(0);
        }
    }
    if (current.size() > 1) {
        current.push_back(0); // close the final partial cycle
        cycles.push_back(std::move(current));
    }
    return cycles;
}

} // anonymous namespace

TestResult
randomExcursions(const Bitstream &bits)
{
    TestResult result;
    result.name = "random_excursion";
    if (bits.size() < 100000)
        return notApplicable(result.name, "need n >= 10^5");

    auto cycles = walkCycles(bits);
    double j = static_cast<double>(cycles.size());
    if (j < 500) {
        return notApplicable(result.name,
                             "fewer than 500 cycles in the walk");
    }

    // pi_k(x): probability that state x is visited exactly k times in
    // a cycle (SP 800-22 Section 3.14).
    auto pi = [](int x, int k) {
        double ax = std::fabs(static_cast<double>(x));
        double p_leave = 1.0 / (2.0 * ax);
        if (k == 0)
            return 1.0 - p_leave;
        if (k < 5) {
            return (1.0 / (4.0 * ax * ax)) *
                   std::pow(1.0 - p_leave, k - 1);
        }
        return p_leave * std::pow(1.0 - p_leave, 4);
    };

    static const std::array<int, 8> states = {-4, -3, -2, -1,
                                              1, 2, 3, 4};
    for (int x : states) {
        std::array<size_t, 6> v{};
        for (const auto &cycle : cycles) {
            size_t visits = 0;
            for (int64_t s : cycle)
                visits += (s == x);
            v[std::min<size_t>(visits, 5)]++;
        }
        double chi2 = 0.0;
        for (int k = 0; k <= 5; ++k) {
            double expected = j * pi(x, k);
            double diff = static_cast<double>(v[k]) - expected;
            chi2 += diff * diff / expected;
        }
        result.pValues.push_back(igamc(5.0 / 2.0, chi2 / 2.0));
    }
    return result;
}

TestResult
randomExcursionsVariant(const Bitstream &bits)
{
    TestResult result;
    result.name = "random_excursion_variant";
    if (bits.size() < 100000)
        return notApplicable(result.name, "need n >= 10^5");

    auto cycles = walkCycles(bits);
    double j = static_cast<double>(cycles.size());
    if (j < 500) {
        return notApplicable(result.name,
                             "fewer than 500 cycles in the walk");
    }

    for (int x = -9; x <= 9; ++x) {
        if (x == 0)
            continue;
        size_t visits = 0;
        for (const auto &cycle : cycles) {
            for (int64_t s : cycle)
                visits += (s == x);
        }
        double ax = std::fabs(static_cast<double>(x));
        double denom = std::sqrt(2.0 * j * (4.0 * ax - 2.0));
        result.pValues.push_back(
            std::erfc(std::fabs(static_cast<double>(visits) - j) /
                      denom));
    }
    return result;
}

std::vector<TestResult>
runAll(const Bitstream &bits)
{
    return {
        monobit(bits),
        frequencyWithinBlock(bits),
        runs(bits),
        longestRunOfOnes(bits),
        binaryMatrixRank(bits),
        dft(bits),
        nonOverlappingTemplateMatching(bits),
        overlappingTemplateMatching(bits),
        maurersUniversal(bits),
        linearComplexityTest(bits),
        serial(bits),
        approximateEntropy(bits),
        cumulativeSums(bits),
        randomExcursions(bits),
        randomExcursionsVariant(bits),
    };
}

const std::vector<std::string> &
testNames()
{
    static const std::vector<std::string> names = {
        "monobit",
        "frequency_within_block",
        "runs",
        "longest_run_ones_in_a_block",
        "binary_matrix_rank",
        "dft",
        "non_overlapping_template_matching",
        "overlapping_template_matching",
        "maurers_universal",
        "linear_complexity",
        "serial",
        "approximate_entropy",
        "cumulative_sums",
        "random_excursion",
        "random_excursion_variant",
    };
    return names;
}

} // namespace quac::nist

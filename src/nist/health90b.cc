#include "nist/health90b.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.hh"
#include "common/vec_clones.hh"
#include "nist/special.hh"

namespace quac::nist
{

uint64_t
rctCutoff(double entropy_per_sample, int alpha_exponent)
{
    if (entropy_per_sample <= 0.0 || entropy_per_sample > 1.0)
        fatal("RCT entropy per sample must be in (0, 1], got %f",
              entropy_per_sample);
    if (alpha_exponent < 1 || alpha_exponent > 64)
        fatal("RCT alpha exponent must be in [1, 64], got %d",
              alpha_exponent);
    return 1 + static_cast<uint64_t>(std::ceil(
                   static_cast<double>(alpha_exponent) /
                   entropy_per_sample));
}

uint64_t
aptCutoff(size_t window, double entropy_per_sample,
          int alpha_exponent)
{
    if (entropy_per_sample <= 0.0 || entropy_per_sample > 1.0)
        fatal("APT entropy per sample must be in (0, 1], got %f",
              entropy_per_sample);
    if (alpha_exponent < 1 || alpha_exponent > 64)
        fatal("APT alpha exponent must be in [1, 64], got %d",
              alpha_exponent);
    if (window == 0)
        fatal("APT window must be > 0");

    // 1 + CRITBINOM(W, 2^-H, 1 - 2^-a): walk the binomial CDF of
    // X ~ Bin(W, p) upward via the pmf recurrence until it reaches
    // 1 - alpha. Extended precision: the pmf tails underflow double
    // for W = 1024 but stay comfortably inside long double range.
    long double p =
        std::exp2(-static_cast<long double>(entropy_per_sample));
    long double alpha =
        std::exp2(-static_cast<long double>(alpha_exponent));
    long double target = 1.0L - alpha;
    long double pmf =
        std::pow(1.0L - p, static_cast<long double>(window));
    long double cdf = 0.0L;
    for (size_t k = 0; k <= window; ++k) {
        cdf += pmf;
        if (cdf >= target)
            return static_cast<uint64_t>(k) + 1;
        pmf *= static_cast<long double>(window - k) * p /
               (static_cast<long double>(k + 1) * (1.0L - p));
    }
    // The CDF never crossed 1 - alpha (only possible for extreme
    // alpha); the test can then never fire.
    return static_cast<uint64_t>(window) + 1;
}

namespace
{

/** Load 8 stream bytes as one LSB-first word. */
inline uint64_t
loadWord(const uint8_t *bytes)
{
    uint64_t word;
    std::memcpy(&word, bytes, sizeof(word));
    return word;
}

QUAC_VEC_CLONES uint64_t
onesCountWords(const uint8_t *bytes, size_t len)
{
    uint64_t ones = 0;
    size_t words = len / 8;
    for (size_t w = 0; w < words; ++w)
        ones += static_cast<uint64_t>(
            __builtin_popcountll(loadWord(bytes + w * 8)));
    for (size_t i = words * 8; i < len; ++i)
        ones += static_cast<uint64_t>(__builtin_popcount(bytes[i]));
    return ones;
}

/**
 * Count overlapping 3-bit patterns at 64 consecutive positions:
 * position k of word @p w reads bits k, k+1, k+2, the top two
 * spilling into @p next. One popcount per pattern per word.
 */
QUAC_VEC_CLONES void
patternCountWords(const uint8_t *bytes, size_t words, uint64_t spill0,
                  uint64_t spill1, uint64_t counts[8])
{
    uint64_t c[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t t = 0; t < words; ++t) {
        uint64_t w = loadWord(bytes + t * 8);
        // The two bits after this word: the next word's low bits, or
        // the caller-provided spill for the final word.
        uint64_t n0;
        uint64_t n1;
        if (t + 1 < words) {
            uint64_t next = loadWord(bytes + (t + 1) * 8);
            n0 = next & 1;
            n1 = (next >> 1) & 1;
        } else {
            n0 = spill0;
            n1 = spill1;
        }
        uint64_t b0 = w;
        uint64_t b1 = (w >> 1) | (n0 << 63);
        uint64_t b2 = (w >> 2) | (n0 << 62) | (n1 << 63);
        for (unsigned p = 0; p < 8; ++p) {
            uint64_t mask = (p & 1 ? b0 : ~b0) & (p & 2 ? b1 : ~b1) &
                            (p & 4 ? b2 : ~b2);
            c[p] += static_cast<uint64_t>(__builtin_popcountll(mask));
        }
    }
    for (unsigned p = 0; p < 8; ++p)
        counts[p] += c[p];
}

inline unsigned
bitAt(const uint8_t *bytes, size_t bit)
{
    return (bytes[bit / 8] >> (bit % 8)) & 1;
}

/** Per-byte run tables for the repetition-count test: longest run
 * of the given bit value at the low end, high end, and anywhere
 * within the byte (LSB-first bit order). */
struct RunTables
{
    uint8_t lead[2][256];
    uint8_t trail[2][256];
    uint8_t interior[2][256];
};

RunTables
buildRunTables()
{
    RunTables t{};
    for (unsigned b = 0; b < 256; ++b) {
        for (unsigned v = 0; v < 2; ++v) {
            unsigned lead = 0;
            while (lead < 8 && ((b >> lead) & 1) == v)
                ++lead;
            unsigned trail = 0;
            while (trail < 8 && ((b >> (7 - trail)) & 1) == v)
                ++trail;
            unsigned best = 0;
            unsigned run = 0;
            for (unsigned i = 0; i < 8; ++i) {
                run = ((b >> i) & 1) == v ? run + 1 : 0;
                best = run > best ? run : best;
            }
            t.lead[v][b] = static_cast<uint8_t>(lead);
            t.trail[v][b] = static_cast<uint8_t>(trail);
            t.interior[v][b] = static_cast<uint8_t>(best);
        }
    }
    return t;
}

const RunTables &
runTables()
{
    static const RunTables tables = buildRunTables();
    return tables;
}

} // anonymous namespace

uint64_t
onesCount(const uint8_t *bytes, size_t len)
{
    return onesCountWords(bytes, len);
}

uint64_t
onesCountScalar(const uint8_t *bytes, size_t len)
{
    uint64_t ones = 0;
    for (size_t i = 0; i < len; ++i) {
        for (unsigned j = 0; j < 8; ++j)
            ones += (bytes[i] >> j) & 1;
    }
    return ones;
}

void
PatternCounter3::reset()
{
    counts_.fill(0);
    bits_ = 0;
    firstBits_ = 0;
    carryBits_ = 0;
}

void
PatternCounter3::consume(const uint8_t *bytes, size_t len)
{
    if (len == 0)
        return;
    size_t nbits = len * 8;
    if (bits_ == 0) {
        firstBits_ = bitAt(bytes, 0) | (bitAt(bytes, 1) << 1);
    } else {
        // The two positions straddling the chunk boundary: carry
        // bits are stream positions bits_-2 and bits_-1.
        unsigned c0 = carryBits_ & 1;
        unsigned c1 = (carryBits_ >> 1) & 1;
        unsigned n0 = bitAt(bytes, 0);
        unsigned n1 = nbits >= 2 ? bitAt(bytes, 1) : 0;
        ++counts_[c0 | (c1 << 1) | (n0 << 2)];
        if (nbits >= 2)
            ++counts_[c1 | (n0 << 1) | (n1 << 2)];
    }

    // Chunk-internal positions 0 .. nbits-3: whole words first, the
    // final word taking its two spill bits from positions that do
    // not exist (the tail loop below never counts them).
    size_t words = len / 8;
    size_t word_positions = 0;
    if (words > 0) {
        // The last full word's top two positions need bits beyond
        // the word; provide them when the tail has them, else count
        // those positions in the scalar tail instead.
        size_t tail_bits = nbits - words * 64;
        uint64_t spill0 = 0;
        uint64_t spill1 = 0;
        size_t last_word_positions = 62;
        if (tail_bits >= 2) {
            spill0 = bitAt(bytes, words * 64);
            spill1 = bitAt(bytes, words * 64 + 1);
            last_word_positions = 64;
        }
        if (last_word_positions == 64) {
            patternCountWords(bytes, words, spill0, spill1,
                              counts_.data());
            word_positions = words * 64;
        } else {
            patternCountWords(bytes, words, 0, 0, counts_.data());
            // patternCountWords counted positions 62 and 63 of the
            // final word with zero spill bits; subtract them and let
            // the scalar tail recount them correctly. With no tail
            // bits those positions have no bits 1 or 2 past the
            // chunk, so they are simply not chunk-internal.
            size_t base = words * 64;
            unsigned p62 = bitAt(bytes, base - 2) |
                           (bitAt(bytes, base - 1) << 1);
            --counts_[p62]; // position base-2 read spill0=0 as bit 2
            unsigned p63 = bitAt(bytes, base - 1);
            --counts_[p63]; // position base-1 read zeros as bits 1,2
            word_positions = base - 2;
        }
    }
    // Scalar tail: remaining chunk-internal positions.
    for (size_t i = word_positions; i + 2 < nbits; ++i) {
        ++counts_[bitAt(bytes, i) | (bitAt(bytes, i + 1) << 1) |
                  (bitAt(bytes, i + 2) << 2)];
    }

    carryBits_ = bitAt(bytes, nbits - 2) | (bitAt(bytes, nbits - 1)
                                            << 1);
    bits_ += nbits;
}

void
PatternCounter3::finishCyclic()
{
    QUAC_ASSERT(bits_ >= 3, "window of %llu bits",
                static_cast<unsigned long long>(bits_));
    unsigned l0 = carryBits_ & 1;
    unsigned l1 = (carryBits_ >> 1) & 1;
    unsigned f0 = firstBits_ & 1;
    unsigned f1 = (firstBits_ >> 1) & 1;
    ++counts_[l0 | (l1 << 1) | (f0 << 2)];
    ++counts_[l1 | (f0 << 1) | (f1 << 2)];
}

StreamingHealthTester::StreamingHealthTester(StreamingHealthConfig cfg)
    : cfg_(cfg)
{
    if (cfg_.windowBits == 0 || cfg_.windowBits % 8 != 0)
        fatal("health window must be a positive multiple of 8 bits, "
              "got %zu", cfg_.windowBits);
    if (cfg_.windowBits < 128)
        fatal("health window must be >= 128 bits (serial-test "
              "applicability), got %zu", cfg_.windowBits);
    rctCutoff_ = rctCutoff(cfg_.entropyPerBit, cfg_.alphaExponent);
    aptCutoff_ =
        aptCutoff(kAptWindowBits, cfg_.entropyPerBit,
                  cfg_.alphaExponent);
}

void
StreamingHealthTester::continuousTests(const uint8_t *bytes,
                                       size_t len)
{
    const RunTables &tables = runTables();
    for (size_t i = 0; i < len; ++i) {
        uint8_t b = bytes[i];

        // Repetition count (SP 800-90B 4.4.1) at bit granularity.
        if (b == 0x00 || b == 0xFF) {
            unsigned v = b & 1;
            rctRun_ = v == rctValue_ ? rctRun_ + 8 : 8;
            rctValue_ = v;
            if (rctRun_ > windowMaxRun_)
                windowMaxRun_ = rctRun_;
            if (rctRun_ >= rctCutoff_)
                windowRctFailed_ = true;
        } else {
            uint64_t extended =
                rctRun_ + tables.lead[rctValue_][b];
            uint64_t interior =
                tables.interior[0][b] > tables.interior[1][b]
                    ? tables.interior[0][b]
                    : tables.interior[1][b];
            uint64_t longest =
                extended > interior ? extended : interior;
            if (longest > windowMaxRun_)
                windowMaxRun_ = longest;
            if (longest >= rctCutoff_)
                windowRctFailed_ = true;
            rctValue_ = (b >> 7) & 1;
            rctRun_ = tables.trail[rctValue_][b];
        }

        // Adaptive proportion (SP 800-90B 4.4.2), W = 1024 bits.
        if (aptSeen_ == 0)
            aptFirst_ = b & 1;
        aptOnes_ += static_cast<uint64_t>(__builtin_popcount(b));
        aptSeen_ += 8;
        if (aptSeen_ == kAptWindowBits) {
            uint64_t count = aptFirst_
                                 ? aptOnes_
                                 : kAptWindowBits - aptOnes_;
            if (count > windowMaxApt_)
                windowMaxApt_ = count;
            if (count >= aptCutoff_)
                windowAptFailed_ = true;
            aptSeen_ = 0;
            aptOnes_ = 0;
        }
    }
}

HealthWindowResult
StreamingHealthTester::closeWindow()
{
    window_.finishCyclic();
    double n = static_cast<double>(cfg_.windowBits);

    HealthWindowResult result;

    // Monobit over the window (SP 800-22 2.1).
    double s = 2.0 * static_cast<double>(windowOnes_) - n;
    result.monobitP =
        std::erfc(std::fabs(s) / std::sqrt(n) / M_SQRT2);

    // Serial (SP 800-22 2.11) with m = 3 from the cyclic pattern
    // counts; the m = 2 / m = 1 counts are exact marginals.
    const std::array<uint64_t, 8> &c3 = window_.counts();
    double sum3 = 0.0;
    for (uint64_t c : c3)
        sum3 += static_cast<double>(c) * static_cast<double>(c);
    double sum2 = 0.0;
    for (unsigned j = 0; j < 4; ++j) {
        double c = static_cast<double>(c3[j] + c3[j | 4]);
        sum2 += c * c;
    }
    double ones = 0.0;
    for (unsigned v = 1; v < 8; v += 2)
        ones += static_cast<double>(c3[v]);
    double sum1 = ones * ones + (n - ones) * (n - ones);
    double psi3 = sum3 * 8.0 / n - n;
    double psi2 = sum2 * 4.0 / n - n;
    double psi1 = sum1 * 2.0 / n - n;
    double d1 = psi3 - psi2;
    double d2 = psi3 - 2.0 * psi2 + psi1;
    result.serialP1 = igamc(2.0, std::max(d1, 0.0) / 2.0);
    result.serialP2 = igamc(1.0, std::max(d2, 0.0) / 2.0);

    result.maxRun = windowMaxRun_;
    result.maxAptCount = windowMaxApt_;
    result.rctFailed = windowRctFailed_;
    result.aptFailed = windowAptFailed_;

    window_.reset();
    windowOnes_ = 0;
    windowMaxRun_ = 0;
    windowMaxApt_ = 0;
    windowRctFailed_ = false;
    windowAptFailed_ = false;
    return result;
}

void
StreamingHealthTester::consume(const uint8_t *bytes, size_t len,
                               std::vector<HealthWindowResult> &completed)
{
    size_t window_bytes = cfg_.windowBits / 8;
    while (len > 0) {
        size_t have = static_cast<size_t>(window_.bits()) / 8;
        size_t take = std::min(len, window_bytes - have);
        continuousTests(bytes, take);
        window_.consume(bytes, take);
        windowOnes_ += onesCount(bytes, take);
        bytes += take;
        len -= take;
        if (window_.bits() == cfg_.windowBits)
            completed.push_back(closeWindow());
    }
}

} // namespace quac::nist

#include "nist/templates.hh"

#include "common/error.hh"

namespace quac::nist
{

bool
isAperiodic(uint32_t bits, unsigned m)
{
    QUAC_ASSERT(m >= 1 && m <= 31, "template length %u", m);
    for (unsigned k = 1; k < m; ++k) {
        // Border of length k: prefix(k) == suffix(k).
        uint32_t mask = (uint32_t{1} << k) - 1;
        uint32_t prefix = bits & mask;
        uint32_t suffix = (bits >> (m - k)) & mask;
        if (prefix == suffix)
            return false;
    }
    return true;
}

std::vector<uint32_t>
aperiodicTemplates(unsigned m)
{
    std::vector<uint32_t> out;
    uint32_t count = uint32_t{1} << m;
    for (uint32_t bits = 0; bits < count; ++bits) {
        if (isAperiodic(bits, m))
            out.push_back(bits);
    }
    return out;
}

} // namespace quac::nist

#include "nist/fft.hh"

#include <cmath>

#include "common/error.hh"

namespace quac::nist
{

namespace
{

bool
isPowerOfTwo(size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

size_t
nextPowerOfTwo(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // anonymous namespace

void
fftRadix2(std::vector<std::complex<double>> &data, bool inverse)
{
    size_t n = data.size();
    QUAC_ASSERT(isPowerOfTwo(n), "FFT size %zu not a power of two", n);

    // Bit-reversal permutation.
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (size_t len = 2; len <= n; len <<= 1) {
        double angle = 2.0 * M_PI / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
        std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (size_t k = 0; k < len / 2; ++k) {
                std::complex<double> u = data[i + k];
                std::complex<double> v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

std::vector<std::complex<double>>
dftAnyLength(const std::vector<std::complex<double>> &input)
{
    size_t n = input.size();
    QUAC_ASSERT(n > 0, "empty DFT input");

    if (isPowerOfTwo(n)) {
        std::vector<std::complex<double>> data = input;
        fftRadix2(data);
        return data;
    }

    // Bluestein: express the DFT as a convolution, evaluated with a
    // power-of-two FFT of size >= 2n - 1.
    size_t m = nextPowerOfTwo(2 * n - 1);
    std::vector<std::complex<double>> a(m, {0.0, 0.0});
    std::vector<std::complex<double>> b(m, {0.0, 0.0});

    std::vector<std::complex<double>> chirp(n);
    for (size_t k = 0; k < n; ++k) {
        // w_k = exp(-i pi k^2 / n); k^2 taken mod 2n to avoid
        // precision loss for large k.
        uint64_t k2 = (static_cast<uint64_t>(k) * k) % (2 * n);
        double angle = -M_PI * static_cast<double>(k2) /
                       static_cast<double>(n);
        chirp[k] = {std::cos(angle), std::sin(angle)};
    }

    for (size_t k = 0; k < n; ++k)
        a[k] = input[k] * chirp[k];
    b[0] = {1.0, 0.0};
    for (size_t k = 1; k < n; ++k)
        b[k] = b[m - k] = std::conj(chirp[k]);

    fftRadix2(a);
    fftRadix2(b);
    for (size_t i = 0; i < m; ++i)
        a[i] *= b[i];
    fftRadix2(a, true);

    std::vector<std::complex<double>> out(n);
    double scale = 1.0 / static_cast<double>(m);
    for (size_t k = 0; k < n; ++k)
        out[k] = a[k] * scale * chirp[k];
    return out;
}

} // namespace quac::nist

#include "nist/special.hh"

#include <cmath>
#include <limits>

#include "common/error.hh"

namespace quac::nist
{

namespace
{

constexpr int maxIterations = 700;
constexpr double epsilon = 3.0e-15;
constexpr double tiny = 1.0e-300;

/** Lower incomplete gamma P(a, x) by series expansion (x < a + 1). */
double
gammaSeriesP(double a, double x)
{
    double ap = a;
    double sum = 1.0 / a;
    double term = sum;
    for (int i = 0; i < maxIterations; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::fabs(term) < std::fabs(sum) * epsilon)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Upper incomplete gamma Q(a, x) by continued fraction (x >= a+1). */
double
gammaContinuedQ(double a, double x)
{
    // Modified Lentz's method.
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= maxIterations; ++i) {
        double an = -i * (i - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < epsilon)
            break;
    }
    return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

} // anonymous namespace

double
igam(double a, double x)
{
    QUAC_ASSERT(a > 0.0 && x >= 0.0, "a=%f x=%f", a, x);
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaSeriesP(a, x);
    return 1.0 - gammaContinuedQ(a, x);
}

double
igamc(double a, double x)
{
    QUAC_ASSERT(a > 0.0 && x >= 0.0, "a=%f x=%f", a, x);
    if (x == 0.0)
        return 1.0;
    if (x < a + 1.0)
        return 1.0 - gammaSeriesP(a, x);
    return gammaContinuedQ(a, x);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / M_SQRT2);
}

} // namespace quac::nist

/**
 * @file
 * Streaming SP 800-90B health tests for deployed TRNG output.
 *
 * SP 800-22 (sts.hh) validates a finished sequence offline; a fielded
 * generator instead needs *continuous* health tests that watch every
 * byte it serves and flag a noise source whose entropy collapses
 * mid-run (the open gap neoTRNG's authors call out for deployed
 * TRNGs). This file implements the two SP 800-90B Section 4.4
 * continuous tests plus windowed streaming variants of the monobit
 * and serial statistics from sts.cc:
 *
 *  - Repetition count test (4.4.1): fails when any sample value
 *    repeats C = 1 + ceil(a/H) times in a row, where the false-alarm
 *    probability is 2^-a and H is the assessed entropy per sample.
 *    Run at bit granularity here (binary source, H <= 1).
 *  - Adaptive proportion test (4.4.2): counts occurrences of the
 *    first sample of each W = 1024-bit window and fails when the
 *    count reaches the exact binomial cutoff for the same 2^-a.
 *  - Windowed monobit / serial (m = 3): the SP 800-22 statistics
 *    recomputed per fixed-size window from streaming word-level
 *    pattern counts, so a window's p-values cost popcounts instead
 *    of the bit-at-a-time scan the offline kernels pay.
 *
 * The kernels consume raw bytes (LSB-first bit order, matching
 * Bitstream::fromBytes) in arbitrary chunk sizes and never buffer a
 * window, so a health monitor can tap a refill path without copying.
 */

#ifndef QUAC_NIST_HEALTH90B_HH
#define QUAC_NIST_HEALTH90B_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace quac::nist
{

/** @name SP 800-90B cutoffs */
/**@{*/

/**
 * Repetition-count cutoff C = 1 + ceil(a / H) (SP 800-90B 4.4.1):
 * a run of C identical samples is the failure condition, where
 * @p entropy_per_sample is the assessed min-entropy H and the
 * false-positive rate is 2^-@p alpha_exponent per sample.
 * H = 1.0 gives 21, H = 0.5 gives 41 at the standard a = 20.
 */
uint64_t rctCutoff(double entropy_per_sample, int alpha_exponent = 20);

/**
 * Adaptive-proportion cutoff (SP 800-90B 4.4.2): the smallest count
 * C such that P(Binomial(@p window, 2^-H) >= C) <= 2^-a, i.e.
 * 1 + CRITBINOM(W, 2^-H, 1 - 2^-a). Computed exactly from the
 * binomial survival function in extended precision. For the binary
 * W = 1024 window at a = 20: H = 1.0 gives 589, H = 0.5 gives 793.
 */
uint64_t aptCutoff(size_t window, double entropy_per_sample,
                   int alpha_exponent = 20);

/** SP 800-90B window size for binary sources (Section 4.4.2). */
constexpr size_t kAptWindowBits = 1024;

/**@}*/

/** @name Streaming bit-count kernels */
/**@{*/

/**
 * Number of one bits in @p bytes. Word-at-a-time popcount with
 * vector clones — the fast path the health monitor runs on every
 * refilled chunk.
 */
uint64_t onesCount(const uint8_t *bytes, size_t len);

/** Bit-at-a-time reference for onesCount (test/bench baseline). */
uint64_t onesCountScalar(const uint8_t *bytes, size_t len);

/**
 * Streaming counter of overlapping 3-bit patterns over a byte
 * stream, LSB-first. consume() may be called with arbitrary chunk
 * sizes; the two-bit carry between chunks keeps the overlap exact.
 * finishCyclic() adds the two wrap-around patterns SP 800-22's
 * serial test defines (positions n-2 and n-1 read the first window
 * bits again), after which counts() holds the full cyclic pattern
 * counts of the stream seen since reset(). The m = 2 and m = 1
 * cyclic counts are exact marginals of the m = 3 counts, so one
 * pass serves all three psi-squared terms.
 */
class PatternCounter3
{
  public:
    PatternCounter3() { reset(); }

    void reset();

    /** Feed @p len bytes (8 * len bits, LSB-first). */
    void consume(const uint8_t *bytes, size_t len);

    /** Add the cyclic wrap-around patterns (call once per window). */
    void finishCyclic();

    /** Bits consumed since reset(). */
    uint64_t bits() const { return bits_; }

    /** Cyclic 3-bit pattern counts (valid after finishCyclic()). */
    const std::array<uint64_t, 8> &counts() const { return counts_; }

  private:
    std::array<uint64_t, 8> counts_;
    uint64_t bits_ = 0;
    /** First two bits of the stream (for the cyclic wrap). */
    unsigned firstBits_ = 0;
    /** Last two bits seen (carry into the next chunk). */
    unsigned carryBits_ = 0;
};

/**@}*/

/** Outcome of one completed health window. */
struct HealthWindowResult
{
    /** Monobit p-value over the window. */
    double monobitP = 1.0;
    /** Serial test (m = 3) p-values over the window. */
    double serialP1 = 1.0;
    double serialP2 = 1.0;
    /** Longest repetition run observed during the window. */
    uint64_t maxRun = 0;
    /** Highest adaptive-proportion count observed in the window. */
    uint64_t maxAptCount = 0;
    /** Any repetition-count cutoff hit during the window. */
    bool rctFailed = false;
    /** Any adaptive-proportion cutoff hit during the window. */
    bool aptFailed = false;

    /** Smallest of the windowed statistic p-values. */
    double
    minP() const
    {
        double p = monobitP;
        p = serialP1 < p ? serialP1 : p;
        return serialP2 < p ? serialP2 : p;
    }
};

/** Streaming health-test configuration. */
struct StreamingHealthConfig
{
    /**
     * Windowed-statistic window in bits; must be a positive multiple
     * of 8 and >= 128 (the serial test's applicability floor).
     */
    size_t windowBits = 16384;
    /** Assessed min-entropy per bit, in (0, 1]. */
    double entropyPerBit = 1.0;
    /** Continuous-test false-positive exponent a (alpha = 2^-a). */
    int alphaExponent = 20;
};

/**
 * The streaming per-source health tester: continuous RCT/APT state
 * plus windowed monobit/serial accumulation. Not internally
 * synchronized — callers (the service health monitor) serialize.
 */
class StreamingHealthTester
{
  public:
    explicit StreamingHealthTester(StreamingHealthConfig cfg = {});

    /**
     * Consume @p len bytes. Every completed window appends one
     * result to @p completed (a chunk may complete several windows);
     * continuous-test failures are also latched into the in-progress
     * window's flags.
     */
    void consume(const uint8_t *bytes, size_t len,
                 std::vector<HealthWindowResult> &completed);

    /** Bits of the current (incomplete) window. */
    uint64_t pendingBits() const { return window_.bits(); }

    /** Configured cutoffs (for stats surfacing). */
    uint64_t rctLimit() const { return rctCutoff_; }
    uint64_t aptLimit() const { return aptCutoff_; }

    const StreamingHealthConfig &config() const { return cfg_; }

  private:
    /** Bytewise RCT/APT update over one window-aligned chunk. */
    void continuousTests(const uint8_t *bytes, size_t len);

    /** Close the current window into a result. */
    HealthWindowResult closeWindow();

    StreamingHealthConfig cfg_;
    uint64_t rctCutoff_ = 0;
    uint64_t aptCutoff_ = 0;

    PatternCounter3 window_;
    uint64_t windowOnes_ = 0;

    /** Repetition-count state (persistent across windows). */
    unsigned rctValue_ = 0;
    uint64_t rctRun_ = 0;
    uint64_t windowMaxRun_ = 0;
    bool windowRctFailed_ = false;

    /** Adaptive-proportion state (persistent across windows). */
    uint64_t aptSeen_ = 0;  ///< Bits into the current APT window.
    uint64_t aptOnes_ = 0;  ///< Ones in the current APT window.
    unsigned aptFirst_ = 0; ///< First bit of the APT window.
    uint64_t windowMaxApt_ = 0;
    bool windowAptFailed_ = false;
};

} // namespace quac::nist

#endif // QUAC_NIST_HEALTH90B_HH

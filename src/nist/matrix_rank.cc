#include "nist/matrix_rank.hh"

#include "common/error.hh"

namespace quac::nist
{

unsigned
gf2Rank(std::vector<uint64_t> rows, unsigned size)
{
    QUAC_ASSERT(size <= 64 && rows.size() >= size,
                "bad matrix: size=%u rows=%zu", size, rows.size());
    unsigned rank = 0;
    for (unsigned col = 0; col < size && rank < size; ++col) {
        uint64_t mask = uint64_t{1} << col;
        // Find a pivot row at or below the current rank frontier.
        unsigned pivot = rank;
        while (pivot < size && !(rows[pivot] & mask))
            ++pivot;
        if (pivot == size)
            continue;
        std::swap(rows[rank], rows[pivot]);
        for (unsigned r = 0; r < size; ++r) {
            if (r != rank && (rows[r] & mask))
                rows[r] ^= rows[rank];
        }
        ++rank;
    }
    return rank;
}

} // namespace quac::nist

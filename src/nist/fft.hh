/**
 * @file
 * Complex FFT used by the SP 800-22 discrete Fourier transform
 * (spectral) test. Radix-2 for power-of-two sizes with a Bluestein
 * fallback for arbitrary lengths.
 */

#ifndef QUAC_NIST_FFT_HH
#define QUAC_NIST_FFT_HH

#include <complex>
#include <vector>

namespace quac::nist
{

/**
 * In-place iterative radix-2 FFT.
 * @param data complex samples; size must be a power of two.
 * @param inverse compute the (unnormalized) inverse transform.
 */
void fftRadix2(std::vector<std::complex<double>> &data,
               bool inverse = false);

/**
 * Forward DFT of arbitrary length (Bluestein's algorithm when the
 * length is not a power of two).
 */
std::vector<std::complex<double>>
dftAnyLength(const std::vector<std::complex<double>> &input);

} // namespace quac::nist

#endif // QUAC_NIST_FFT_HH

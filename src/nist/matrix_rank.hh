/**
 * @file
 * GF(2) matrix rank, used by the SP 800-22 binary matrix rank test.
 */

#ifndef QUAC_NIST_MATRIX_RANK_HH
#define QUAC_NIST_MATRIX_RANK_HH

#include <cstdint>
#include <vector>

namespace quac::nist
{

/**
 * Rank over GF(2) of a square matrix given as row bitmasks.
 * @param rows row i's bits packed into a uint64_t (column j = bit j).
 * @param size matrix dimension (<= 64).
 */
unsigned gf2Rank(std::vector<uint64_t> rows, unsigned size);

} // namespace quac::nist

#endif // QUAC_NIST_MATRIX_RANK_HH

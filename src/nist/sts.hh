/**
 * @file
 * The NIST SP 800-22 statistical test suite (all 15 tests), used to
 * validate QUAC-TRNG output quality (paper Sections 6.2 and 7.1,
 * Table 1).
 *
 * Each test returns one or more p-values; under the null hypothesis
 * (the sequence is random) p-values are uniform on [0, 1]. A test
 * passes at significance level alpha when every p-value >= alpha;
 * the paper uses alpha = 0.001.
 */

#ifndef QUAC_NIST_STS_HH
#define QUAC_NIST_STS_HH

#include <string>
#include <vector>

#include "common/bitstream.hh"

namespace quac::nist
{

/** Significance level used by the paper (Section 6.2). */
constexpr double kAlpha = 0.001;

/** Outcome of one statistical test. */
struct TestResult
{
    std::string name;
    std::vector<double> pValues;
    /** False when preconditions failed (e.g. too few cycles). */
    bool applicable = true;
    std::string note;

    /** All p-values at or above alpha (inapplicable tests fail). */
    bool passed(double alpha = kAlpha) const;

    /**
     * Pass, or not applicable. SP 800-22 skips tests whose
     * preconditions fail (e.g. fewer than 500 cycles for the
     * excursion tests — expected on ~1/3 of good 1 Mbit sequences);
     * a skipped test does not fail the sequence.
     */
    bool passedOrInapplicable(double alpha = kAlpha) const;

    /** Smallest p-value (1.0 when empty). */
    double minP() const;

    /** Mean p-value (as reported in the paper's Table 1). */
    double meanP() const;
};

/** @name The fifteen SP 800-22 tests */
/**@{*/
TestResult monobit(const Bitstream &bits);
TestResult frequencyWithinBlock(const Bitstream &bits,
                                size_t block_len = 128);
TestResult runs(const Bitstream &bits);
TestResult longestRunOfOnes(const Bitstream &bits);
TestResult binaryMatrixRank(const Bitstream &bits);
TestResult dft(const Bitstream &bits);
TestResult nonOverlappingTemplateMatching(const Bitstream &bits,
                                          unsigned m = 9);
TestResult overlappingTemplateMatching(const Bitstream &bits,
                                       unsigned m = 9);
TestResult maurersUniversal(const Bitstream &bits);
TestResult linearComplexityTest(const Bitstream &bits,
                                size_t block_len = 500);
TestResult serial(const Bitstream &bits, unsigned m = 16);
TestResult approximateEntropy(const Bitstream &bits, unsigned m = 10);
TestResult cumulativeSums(const Bitstream &bits);
TestResult randomExcursions(const Bitstream &bits);
TestResult randomExcursionsVariant(const Bitstream &bits);
/**@}*/

/**
 * Run the full 15-test battery in Table 1's order.
 * @param bits the sequence under test (>= ~1 Mbit recommended).
 */
std::vector<TestResult> runAll(const Bitstream &bits);

/** Names of the 15 tests in Table 1's order. */
const std::vector<std::string> &testNames();

} // namespace quac::nist

#endif // QUAC_NIST_STS_HH

#include "nist/berlekamp_massey.hh"

namespace quac::nist
{

size_t
linearComplexity(const std::vector<uint8_t> &bits)
{
    size_t n = bits.size();
    if (n == 0)
        return 0;

    std::vector<uint8_t> c(n, 0);
    std::vector<uint8_t> b(n, 0);
    std::vector<uint8_t> t;
    c[0] = 1;
    b[0] = 1;

    size_t l = 0;
    size_t m = 0;   // steps since last length change, minus one
    for (size_t i = 0; i < n; ++i) {
        // Discrepancy: next bit predicted by the current LFSR.
        uint8_t d = bits[i];
        for (size_t j = 1; j <= l; ++j)
            d ^= static_cast<uint8_t>(c[j] & bits[i - j]);

        if (d == 0) {
            ++m;
            continue;
        }

        if (2 * l <= i) {
            t = c;
            for (size_t j = 0; j + m + 1 <= n - 1 && j < n; ++j) {
                if (b[j])
                    c[j + m + 1] ^= 1;
            }
            l = i + 1 - l;
            b = t;
            m = 0;
        } else {
            for (size_t j = 0; j + m + 1 <= n - 1 && j < n; ++j) {
                if (b[j])
                    c[j + m + 1] ^= 1;
            }
            ++m;
        }
    }
    return l;
}

} // namespace quac::nist

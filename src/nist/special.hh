/**
 * @file
 * Special functions needed by the NIST SP 800-22 statistical tests.
 */

#ifndef QUAC_NIST_SPECIAL_HH
#define QUAC_NIST_SPECIAL_HH

namespace quac::nist
{

/**
 * Regularized upper incomplete gamma function Q(a, x) =
 * Gamma(a, x) / Gamma(a), the "igamc" used throughout SP 800-22 for
 * chi-squared p-values.
 *
 * @pre a > 0, x >= 0.
 */
double igamc(double a, double x);

/** Regularized lower incomplete gamma function P(a, x) = 1 - Q(a, x). */
double igam(double a, double x);

/** Standard normal cumulative distribution function. */
double normalCdf(double x);

} // namespace quac::nist

#endif // QUAC_NIST_SPECIAL_HH

/**
 * @file
 * Analog sensing math: charge-sharing deviations and the metastable
 * sense-amplifier resolution probability (paper Sections 4-5).
 */

#ifndef QUAC_DRAM_SENSING_HH
#define QUAC_DRAM_SENSING_HH

#include <array>

#include "dram/calibration.hh"

namespace quac::dram
{

/**
 * Effective charge-sharing weights of the four rows in a segment
 * during a QUAC operation, indexed by row offset within the segment.
 */
struct QuacWeights
{
    std::array<double, 4> w;
};

/**
 * Compute QUAC weights for the rows of a segment.
 *
 * The first-activated row's weight combines its charge-share
 * development during @p t1_ns (ACT -> PRE), equalization decay during
 * @p t2_ns (PRE -> ACT), and partial sense-amp amplification over the
 * whole window; at the paper's 2.5 ns / 2.5 ns operating point it
 * equals Calibration::firstRowWeight. The other three rows receive
 * the staggered local-wordline weights.
 *
 * @param cal calibration constants.
 * @param first_offset row offset (0..3) of the first ACT's target.
 * @param t1_ns ACT -> PRE interval.
 * @param t2_ns PRE -> ACT interval.
 */
QuacWeights quacWeights(const Calibration &cal, unsigned first_offset,
                        double t1_ns, double t2_ns);

/**
 * Fraction of full bitline development reached @p elapsed_ns after an
 * ACT: zero through the tSenseDead dead time, then linear up to 1.0
 * at tFullDevelop.
 */
double developFraction(const Calibration &cal, double elapsed_ns);

/**
 * Probability that a sense amplifier resolves to logical 1 given the
 * net bitline deviation, its effective offset, and thermal noise:
 * P(1) = Phi((deviation - offset) / sigma).
 */
double probabilityOne(double deviation_mv, double offset_mv,
                      double noise_sigma_mv);

} // namespace quac::dram

#endif // QUAC_DRAM_SENSING_HH

/**
 * @file
 * Analog sensing math: charge-sharing deviations and the metastable
 * sense-amplifier resolution probability (paper Sections 4-5).
 */

#ifndef QUAC_DRAM_SENSING_HH
#define QUAC_DRAM_SENSING_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "dram/calibration.hh"

namespace quac::dram
{

/**
 * Effective charge-sharing weights of the four rows in a segment
 * during a QUAC operation, indexed by row offset within the segment.
 */
struct QuacWeights
{
    std::array<double, 4> w;
};

/**
 * Compute QUAC weights for the rows of a segment.
 *
 * The first-activated row's weight combines its charge-share
 * development during @p t1_ns (ACT -> PRE), equalization decay during
 * @p t2_ns (PRE -> ACT), and partial sense-amp amplification over the
 * whole window; at the paper's 2.5 ns / 2.5 ns operating point it
 * equals Calibration::firstRowWeight. The other three rows receive
 * the staggered local-wordline weights.
 *
 * @param cal calibration constants.
 * @param first_offset row offset (0..3) of the first ACT's target.
 * @param t1_ns ACT -> PRE interval.
 * @param t2_ns PRE -> ACT interval.
 */
QuacWeights quacWeights(const Calibration &cal, unsigned first_offset,
                        double t1_ns, double t2_ns);

/**
 * Fraction of full bitline development reached @p elapsed_ns after an
 * ACT: zero through the tSenseDead dead time, then linear up to 1.0
 * at tFullDevelop.
 */
double developFraction(const Calibration &cal, double elapsed_ns);

/**
 * Probability that a sense amplifier resolves to logical 1 given the
 * net bitline deviation, its effective offset, and thermal noise:
 * P(1) = Phi((deviation - offset) / sigma).
 */
double probabilityOne(double deviation_mv, double offset_mv,
                      double noise_sigma_mv);

/**
 * Probability below which a sense amplifier is treated as resolving
 * to a deterministic 0 (symmetrically, above 1 - this it resolves to
 * a deterministic 1). Shared by the scalar resolution loop, the
 * batched kernel's output snapping, and the degenerate fast exits in
 * Bank::resolveSense, so every path classifies bitlines identically.
 */
constexpr float degenerateProbability = 1e-9f;

/**
 * Normalized-deviation magnitude beyond which a whole sensing row is
 * treated as saturated: when every bitline satisfies
 * |deviation - offset| / sigma >= saturationZ on the same side, the
 * batched Phi evaluation is provably all-snapping (Phi(6.5) is within
 * 4e-11 of 1, an order of magnitude inside degenerateProbability, and
 * the batch kernel's tail estimate decreases monotonically there), so
 * the resolver can emit a constant probability row without evaluating
 * Phi. This is the common case for the TRNG's RowClone segment-init
 * copies, whose full-rail residual dominates every bitline.
 */
constexpr double saturationZ = 6.5;

/**
 * Batched probabilityOne() over @p n bitlines:
 * out[i] = Phi((dev[i] - offset[i]) / sigma).
 *
 * Uses a branch-free polynomial Phi approximation (Abramowitz &
 * Stegun 7.1.26 with an inlined range-reduced exp) so the whole loop
 * vectorizes; absolute error versus the scalar erfc oracle is below
 * 5e-7. Outputs within degenerateProbability of 0 or 1 are snapped to
 * exactly 0.0f / 1.0f, matching the scalar resolution path's
 * degenerate fast exits. The scalar probabilityOne() remains the
 * reference oracle (selectable via ModuleSpec::fastSense = false).
 */
void probabilityOneBatch(const double *deviation_mv,
                         const double *offset_mv, double noise_sigma_mv,
                         float *out, size_t n);

/**
 * Resolve @p nbits sense amplifiers at once: bit i of the packed
 * @p out_words is (uniforms[i] < probs[i]). Probabilities must be
 * snapped (degenerates exactly 0.0f / 1.0f, as probabilityOneBatch
 * emits): p == 0.0f never fires and p == 1.0f always fires for
 * uniforms in [0, 1). The tail of the last word is zeroed.
 */
void resolveBitsBatch(const float *uniforms, const float *probs,
                      size_t nbits, uint64_t *out_words);

} // namespace quac::dram

#endif // QUAC_DRAM_SENSING_HH

/**
 * @file
 * DDR4 command representation for the device front-end.
 */

#ifndef QUAC_DRAM_COMMAND_HH
#define QUAC_DRAM_COMMAND_HH

#include <cstdint>
#include <string>

namespace quac::dram
{

/** DDR4 command opcodes modelled by the simulator. */
enum class CommandType : uint8_t
{
    ACT,  ///< Activate a row.
    PRE,  ///< Precharge one bank.
    RD,   ///< Read a cache block from the row buffer.
    WR,   ///< Write a cache block into the row buffer.
};

/** Human-readable opcode name. */
inline const char *
commandName(CommandType type)
{
    switch (type) {
      case CommandType::ACT: return "ACT";
      case CommandType::PRE: return "PRE";
      case CommandType::RD:  return "RD";
      case CommandType::WR:  return "WR";
    }
    return "?";
}

/** A single timed DDR4 command addressed to one bank. */
struct Command
{
    CommandType type = CommandType::PRE;
    uint32_t bank = 0;
    uint32_t row = 0;       ///< Used by ACT.
    uint32_t column = 0;    ///< Cache-block index, used by RD/WR.
    double time = 0.0;      ///< Issue time in ns.
};

} // namespace quac::dram

#endif // QUAC_DRAM_COMMAND_HH

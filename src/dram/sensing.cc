#include "dram/sensing.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hh"
#include "common/vec_clones.hh"

namespace quac::dram
{

QuacWeights
quacWeights(const Calibration &cal, unsigned first_offset,
            double t1_ns, double t2_ns)
{
    QUAC_ASSERT(first_offset < 4, "first_offset=%u", first_offset);

    // First-row weight: charge-share development, equalization decay,
    // then partial SA amplification. Normalized so that the paper's
    // 2.5 ns / 2.5 ns operating point yields firstRowWeight exactly.
    auto raw = [&](double t1, double t2) {
        double share = 1.0 - std::exp(-t1 / 1.2);
        double decay = std::exp(-t2 / cal.tauEqNs);
        double amp = std::exp((t1 + t2) / 5.17);
        return share * decay * amp;
    };
    double w_first = cal.firstRowWeight * raw(t1_ns, t2_ns) / raw(2.5, 2.5);

    // Staggered local-wordline weights for the other three rows, in
    // ascending row-offset order.
    std::array<double, 3> stagger = {cal.rowWeight1, cal.rowWeight2,
                                     cal.rowWeight3};

    QuacWeights weights{};
    unsigned next = 0;
    for (unsigned offset = 0; offset < 4; ++offset) {
        if (offset == first_offset)
            weights.w[offset] = w_first;
        else
            weights.w[offset] = stagger[next++];
    }
    return weights;
}

double
developFraction(const Calibration &cal, double elapsed_ns)
{
    if (elapsed_ns <= cal.tSenseDead)
        return 0.0;
    double f = (elapsed_ns - cal.tSenseDead) /
               (cal.tFullDevelop - cal.tSenseDead);
    return std::min(f, 1.0);
}

double
probabilityOne(double deviation_mv, double offset_mv, double noise_sigma_mv)
{
    QUAC_ASSERT(noise_sigma_mv > 0.0, "sigma=%f", noise_sigma_mv);
    double z = (deviation_mv - offset_mv) / noise_sigma_mv;
    // Phi(z) via erfc for numerical stability in both tails.
    return 0.5 * std::erfc(-z / M_SQRT2);
}

namespace
{

/**
 * exp(y) for y in (-inf, 0], branch-free so it vectorizes inside the
 * batch kernel. Range reduction y = k*ln2 + r with |r| <= ln2/2, a
 * degree-7 Taylor core, and 2^k assembled through the exponent bits.
 * Relative error < 1e-8 on the domain the Phi approximation uses.
 */
inline double
expNegative(double y)
{
    constexpr double log2e = 1.4426950408889634074;
    constexpr double ln2Hi = 6.93147180369123816490e-01;
    constexpr double ln2Lo = 1.90821492927058770002e-10;
    // 1.5 * 2^52: adding it rounds to the nearest integer in the low
    // mantissa bits for |value| < 2^51.
    constexpr double roundShift = 6755399441055744.0;

    // exp(-700) ~ 1e-304 is still normal; anything smaller snaps to
    // a degenerate probability downstream anyway.
    y = std::max(y, -700.0);

    double shifted = y * log2e + roundShift;
    double k = shifted - roundShift;
    double r = (y - k * ln2Hi) - k * ln2Lo;
    double er =
        1.0 +
        r * (1.0 +
             r * (0.5 +
                  r * (1.6666666666666666e-01 +
                       r * (4.1666666666666664e-02 +
                            r * (8.3333333333333332e-03 +
                                 r * (1.3888888888888889e-03 +
                                      r * 1.9841269841269841e-04))))));
    // The low mantissa bits of `shifted` hold k in two's complement
    // (|k| < 2^31 here), so 2^k can be assembled with pure integer
    // ops; a double -> int64 conversion would block AVX2
    // vectorization of the surrounding loop.
    auto ki = static_cast<int64_t>(
        static_cast<int32_t>(std::bit_cast<uint64_t>(shifted)));
    double scale =
        std::bit_cast<double>(static_cast<uint64_t>(ki + 1023) << 52);
    return er * scale;
}

} // anonymous namespace

QUAC_VEC_CLONES void
probabilityOneBatch(const double *deviation_mv, const double *offset_mv,
                    double noise_sigma_mv, float *out, size_t n)
{
    QUAC_ASSERT(noise_sigma_mv > 0.0, "sigma=%f", noise_sigma_mv);
    double inv_sigma = 1.0 / noise_sigma_mv;

    // Abramowitz & Stegun 7.1.26: erfc(x) = t(a1 + t(... a5))e^{-x^2}
    // for x >= 0 with t = 1/(1 + px); |error| <= 1.5e-7.
    constexpr double a1 = 0.254829592;
    constexpr double a2 = -0.284496736;
    constexpr double a3 = 1.421413741;
    constexpr double a4 = -1.453152027;
    constexpr double a5 = 1.061405429;
    constexpr double p = 0.3275911;

    for (size_t i = 0; i < n; ++i) {
        double z = (deviation_mv[i] - offset_mv[i]) * inv_sigma;
        double x = std::fabs(z) * M_SQRT1_2;
        double t = 1.0 / (1.0 + p * x);
        double poly =
            t * (a1 + t * (a2 + t * (a3 + t * (a4 + t * a5))));
        // q = Phi(-|z|) = 0.5 erfc(|z| / sqrt(2)).
        double q = 0.5 * poly * expNegative(-x * x);
        double prob = (z >= 0.0) ? 1.0 - q : q;
        // Degenerate snapping as arithmetic blends (gcc refuses to
        // if-convert the equivalent ternaries): the multiply by a
        // 0/1 indicator and the exact Sterbenz `prob + (1 - prob)`
        // are both rounding-free, so non-degenerate values pass
        // through bit-unchanged.
        prob *= static_cast<double>(prob > degenerateProbability);
        prob += (1.0 - prob) *
                static_cast<double>(prob >= 1.0 - degenerateProbability);
        out[i] = static_cast<float>(prob);
    }
}

QUAC_VEC_CLONES void
resolveBitsBatch(const float *uniforms, const float *probs, size_t nbits,
                 uint64_t *out_words)
{
    size_t full_words = nbits / 64;
    for (size_t w = 0; w < full_words; ++w) {
        uint64_t bits = 0;
        size_t base = w * 64;
        for (unsigned k = 0; k < 64; ++k) {
            bits |= static_cast<uint64_t>(uniforms[base + k] <
                                          probs[base + k])
                    << k;
        }
        out_words[w] = bits;
    }
    if (nbits % 64) {
        uint64_t bits = 0;
        size_t base = full_words * 64;
        for (size_t k = 0; base + k < nbits; ++k) {
            bits |= static_cast<uint64_t>(uniforms[base + k] <
                                          probs[base + k])
                    << k;
        }
        out_words[full_words] = bits;
    }
}

} // namespace quac::dram

#include "dram/sensing.hh"

#include <cmath>

#include "common/error.hh"

namespace quac::dram
{

QuacWeights
quacWeights(const Calibration &cal, unsigned first_offset,
            double t1_ns, double t2_ns)
{
    QUAC_ASSERT(first_offset < 4, "first_offset=%u", first_offset);

    // First-row weight: charge-share development, equalization decay,
    // then partial SA amplification. Normalized so that the paper's
    // 2.5 ns / 2.5 ns operating point yields firstRowWeight exactly.
    auto raw = [&](double t1, double t2) {
        double share = 1.0 - std::exp(-t1 / 1.2);
        double decay = std::exp(-t2 / cal.tauEqNs);
        double amp = std::exp((t1 + t2) / 5.17);
        return share * decay * amp;
    };
    double w_first = cal.firstRowWeight * raw(t1_ns, t2_ns) / raw(2.5, 2.5);

    // Staggered local-wordline weights for the other three rows, in
    // ascending row-offset order.
    std::array<double, 3> stagger = {cal.rowWeight1, cal.rowWeight2,
                                     cal.rowWeight3};

    QuacWeights weights{};
    unsigned next = 0;
    for (unsigned offset = 0; offset < 4; ++offset) {
        if (offset == first_offset)
            weights.w[offset] = w_first;
        else
            weights.w[offset] = stagger[next++];
    }
    return weights;
}

double
developFraction(const Calibration &cal, double elapsed_ns)
{
    if (elapsed_ns <= cal.tSenseDead)
        return 0.0;
    double f = (elapsed_ns - cal.tSenseDead) /
               (cal.tFullDevelop - cal.tSenseDead);
    return std::min(f, 1.0);
}

double
probabilityOne(double deviation_mv, double offset_mv, double noise_sigma_mv)
{
    QUAC_ASSERT(noise_sigma_mv > 0.0, "sigma=%f", noise_sigma_mv);
    double z = (deviation_mv - offset_mv) / noise_sigma_mv;
    // Phi(z) via erfc for numerical stability in both tails.
    return 0.5 * std::erfc(-z / M_SQRT2);
}

} // namespace quac::dram

/**
 * @file
 * DRAM bank model: cell array, row buffer (sense amplifiers), and the
 * hierarchical-wordline decoder latches that enable QUAC (paper
 * Sections 4-5).
 *
 * The bank consumes timed ACT/PRE/RD/WR commands and classifies each
 * transition by the *actual intervals* between commands, yielding the
 * behaviour classes characterized on real chips:
 *
 *  - obeyed timings: normal deterministic operation;
 *  - ACT -> PRE -> ACT, both gaps violated, second ACT in the same
 *    segment with inverted 2-LSB row address: QUAC (all four rows
 *    open; metastable sensing);
 *  - ACT(full sense) -> PRE -> ACT with a very short gap, different
 *    segment: RowClone in-DRAM copy (SA residual wins the race);
 *  - same with a moderate gap: tRP-failure bit flips (Talukder+);
 *  - RD before the bitline has developed: tRCD-failure sampling
 *    (D-RaNGe).
 */

#ifndef QUAC_DRAM_BANK_HH
#define QUAC_DRAM_BANK_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "dram/calibration.hh"
#include "dram/geometry.hh"
#include "dram/sensing.hh"
#include "dram/variation.hh"

namespace quac::dram
{

/** Module-level context shared by all banks. */
struct BankContext
{
    const Geometry *geom = nullptr;
    const Calibration *cal = nullptr;
    const VariationModel *variation = nullptr;
    double temperatureC = 50.0;
    double ageDays = 0.0;
    /**
     * Reuse the cell-content-independent variation-oracle factors
     * across sensing events (bit-identical results; trades memory
     * for a large speedup of the generation loop).
     */
    bool oracleCache = true;
    /**
     * Resolve sensing with the batched SIMD kernel (vectorized Phi
     * approximation + bulk uniform draws) instead of the scalar
     * per-bitline erfc/draw loops. Statistically indistinguishable
     * from the reference path and bit-identical on the guardbanded
     * single-row path; disable to select the scalar oracle.
     */
    bool fastSense = true;
    /**
     * Skip the batched Phi evaluation when a whole sensing row is
     * >= saturationZ sigma into one tail (min/max deviation against
     * the cached per-row max |offset|) and emit a constant
     * probability row instead. Bit-identical to the full fastSense
     * kernel; this is what makes the TRNG's unavoidable RowClone
     * -init probability-cache misses cheap. Only applies when
     * fastSense is on.
     */
    bool saturationFastPath = true;
};

/** One DRAM bank: sparse cell array plus row-buffer state machine. */
class Bank
{
  public:
    /**
     * @param ctx shared module context (must outlive the bank).
     * @param bank_id index of this bank within the module.
     * @param noise_seed seed of this bank's thermal-noise stream.
     */
    Bank(const BankContext *ctx, uint32_t bank_id, uint64_t noise_seed);

    /** @name Timed command interface (times in ns, non-decreasing) */
    /**@{*/
    /** Activate @p row at time @p t. */
    void activate(uint32_t row, double t);

    /** Precharge the bank at time @p t. */
    void precharge(double t);

    /**
     * Read the 512-bit cache block at @p column from the row buffer.
     * Reading before the bitlines have fully developed samples
     * metastable values (tRCD-failure behaviour).
     */
    std::vector<uint64_t> read(uint32_t column, double t);

    /**
     * Zero-copy variant of read(): writes the cache block's words
     * into @p dst (which must hold cacheBlockBits / 64 words)
     * instead of allocating a vector.
     */
    void readInto(uint32_t column, uint64_t *dst, double t);

    /** Write a 512-bit cache block into the row buffer. */
    void write(uint32_t column, const std::vector<uint64_t> &data,
               double t);
    /**@}*/

    /** Rows whose wordlines are currently (or still) enabled. */
    const std::vector<uint32_t> &openRows() const { return openRows_; }

    /** True once the sense amplifiers have latched values. */
    bool saLatched() const { return saLatched_; }

    /** @name Backdoor accessors for tests and initialization */
    /**@{*/
    /** Read a cell directly from the array (not the row buffer). */
    bool peekCell(uint32_t row, uint32_t bitline) const;

    /** Write a cell directly into the array. */
    void pokeCell(uint32_t row, uint32_t bitline, bool value);

    /** Fill an entire row with @p value. */
    void pokeRowFill(uint32_t row, bool value);

    /**
     * Initialize the four rows of @p segment with a 4-bit pattern;
     * bit i of @p pattern (LSB = row offset 0) fills row i.
     */
    void pokeSegmentPattern(uint32_t segment, uint8_t pattern);

    /** Copy of a row's cell contents (bit-packed words). */
    std::vector<uint64_t> peekRow(uint32_t row) const;

    /** Release a row's backing storage (reads as all zeros again). */
    void dropRow(uint32_t row);
    /**@}*/

    /** @name Analytic probability queries (do not disturb state) */
    /**@{*/
    /**
     * Per-bitline probability of reading 1 after a QUAC operation on
     * @p segment with the current cell contents.
     *
     * @param segment segment index within the bank.
     * @param first_offset row offset (0..3) targeted by the first ACT.
     * @param t1_ns ACT -> PRE gap.
     * @param t2_ns PRE -> ACT gap.
     */
    std::vector<float> quacProbabilities(uint32_t segment,
                                         unsigned first_offset = 0,
                                         double t1_ns = 2.5,
                                         double t2_ns = 2.5) const;

    /**
     * Per-bitline probability of reading 1 when @p row is read
     * @p elapsed_ns after its ACT (tRCD-failure behaviour).
     */
    std::vector<float> earlyReadProbabilities(uint32_t row,
                                              double elapsed_ns) const;

    /**
     * Per-bitline probability of reading 1 when @p row is activated
     * @p gap_ns after a precharge that interrupted a latched row
     * buffer holding @p resid_bits (tRP-failure / RowClone regimes).
     */
    std::vector<float>
    racedActivateProbabilities(uint32_t row,
                               const std::vector<uint64_t> &resid_bits,
                               double gap_ns) const;
    /**@}*/

    /** @name Sensing-cache telemetry (tests and profiling) */
    /**@{*/
    size_t probCacheSize() const { return probCache_.size(); }
    uint64_t probCacheHits() const { return probCacheHits_; }
    uint64_t probCacheMisses() const { return probCacheMisses_; }
    size_t capCacheSize() const { return capCache_.size(); }
    /** Probability rows emitted by the saturation fast-path. */
    uint64_t saturatedRowFastPaths() const { return satRowFastPaths_; }
    /** The subset of saturatedRowFastPaths() resolved straight from
     * the residual bits (no probability row, no cache key). */
    uint64_t residRaceFastPaths() const { return residRaceFastPaths_; }

    /** Probability-cache capacity before cold entries are evicted. */
    static constexpr size_t probCacheCapacity = 64;
    /** Oracle-row cache capacities (cap and offset rows). */
    static constexpr size_t capCacheCapacity = 32;
    static constexpr size_t offsetCacheCapacity = 32;
    /**@}*/

  private:
    /** Row-buffer lifecycle. */
    enum class Phase : uint8_t
    {
        Idle,         ///< Fully precharged.
        Opening,      ///< ACT seen, sensing not yet resolved.
        Open,         ///< Sense amps latched.
        Precharging,  ///< PRE seen, settling toward VDD/2.
    };

    /** LWL select latches of the hypothetical decoder (Fig 4). */
    struct Latches
    {
        bool a0 = false;
        bool a0b = false;
        bool a1 = false;
        bool a1b = false;
        uint32_t mwl = 0;
        bool valid = false;
    };

    /** One row's additive contribution to the bitline deviation. */
    struct Contribution
    {
        uint32_t row;
        double scaleMv; ///< mV of deviation per unit cell value.
    };

    /** Deferred sensing event, resolved lazily at first access. */
    struct PendingSense
    {
        bool active = false;
        double actTime = 0.0;
        std::vector<Contribution> contribs;
        double residAmpMv = 0.0;
        std::vector<uint64_t> residBits; ///< Empty when no residual.
        /** FNV digest of residBits, snapshotted with them at PRE. */
        uint64_t residDigest = 0;
    };

    /**
     * Cached resolution data for one sensing setup: the probability
     * row, plus the fast path's precomputed split into deterministic
     * bits and metastable ("fuzzy") bitlines so each replay only
     * draws uniforms for bitlines that can actually flip.
     */
    struct SenseRowPlan
    {
        std::vector<float> probs;
        /** Deterministic-1 bits (p == 1), packed per word. */
        std::vector<uint64_t> baseWords;
        /** Bitlines with 0 < p < 1 and their probabilities. */
        std::vector<uint32_t> fuzzyIdx;
        std::vector<float> fuzzyProbs;
        bool fastReady = false;
        bool hot = false; ///< Second-chance eviction bit.
    };

    std::vector<uint64_t> &rowStorage(uint32_t row);
    bool cellValue(uint32_t row, uint32_t bitline) const;
    void latchFromRow(uint32_t row);
    std::vector<uint32_t> rowsSelectedByLatches() const;

    /** Resolve pending sensing at time @p t (develop-dependent). */
    void resolveSense(double t);

    /**
     * Residual-dominated race fast path: a single-row activation
     * racing a residual whose amplitude puts every bitline >=
     * saturationZ sigma into the tail its residual bit selects (for
     * any possible cell contribution and SA offset of this row)
     * resolves to exactly the residual bits. Copies them into the
     * row buffer — no probability row, no cache-key hashing, no
     * draws — and returns true; returns false (resolve normally)
     * when the bound does not hold. Bit-identical to the full path.
     */
    bool residRaceSaturated(double develop);

    /** Build a plan's fast-path split from its probability row. */
    void buildSensePlan(SenseRowPlan &plan) const;

    /** Fast-path SA resolution: bulk draws against a plan. */
    void resolveRowFast(const SenseRowPlan &plan);

    /** Dense fast-path resolution straight from a probability row. */
    void resolveRowDense(const std::vector<float> &probs);

    /** Write the latched SA values back into all open rows. */
    void writeBackToOpenRows();

    /**
     * Compute per-bitline P(1) for a sensing setup. Shared by the
     * empirical resolution path and the analytic queries.
     */
    void computeProbabilities(const std::vector<Contribution> &contribs,
                              const std::vector<uint64_t> *resid_bits,
                              double resid_amp_mv, double develop,
                              std::vector<float> &probs) const;

    /**
     * Per-bitline effective SA offset for sensing led by @p row0
     * (cell-content independent; cached per row at the current
     * temperature/age when the oracle cache is enabled).
     */
    const std::vector<double> &offsetRow(uint32_t row0) const;
    void computeOffsetRow(uint32_t row0,
                          std::vector<double> &out) const;

    /**
     * Max |offset| of offsetRow(row0), cached with the row entry
     * (valid right after offsetRow(row0) refreshed the entry). Feeds
     * the saturation fast-path's whole-row tail test.
     */
    double offsetRowMaxAbs(uint32_t row0) const;

    /** Per-bitline cell capacitance factors of @p row (cached). */
    const std::vector<double> &capRow(uint32_t row) const;
    void computeCapRow(uint32_t row, std::vector<double> &out) const;

    /** Max |cap factor| of capRow(row), cached with the row entry
     * (valid right after capRow(row) touched the entry). */
    double capRowMaxAbs(uint32_t row) const;

    /**
     * Hash of everything computeProbabilities depends on. Row
     * contents enter through cached per-row digests (rowDigest), so
     * a row hashed once is one 64-bit mix per key until it changes.
     */
    uint64_t probCacheKey(const std::vector<Contribution> &contribs,
                          bool has_resid, uint64_t resid_digest,
                          double resid_amp_mv, double develop) const;

    /** Cached FNV digest of @p words (the current contents of
     * @p row); invalidated by rowStorage() on any mutation. */
    uint64_t rowDigest(uint32_t row,
                       const std::vector<uint64_t> &words) const;

    const BankContext *ctx_;
    uint32_t bankId_;
    Xoshiro256pp noise_;

    Phase phase_ = Phase::Idle;
    Latches latches_;
    std::vector<uint32_t> openRows_;
    std::vector<uint64_t> sa_;
    bool saLatched_ = false;
    PendingSense pending_;

    double lastActTime_ = -1e18;
    double firstActTime_ = -1e18; ///< ACT that started this episode.
    uint32_t firstActRow_ = 0;
    double preTime_ = -1e18;
    bool preRasViolated_ = false;
    /** Residual snapshot taken at PRE: amplitude and sign source. */
    double preResidAmpMv_ = 0.0;
    std::vector<uint64_t> preResidBits_;
    uint64_t preResidDigest_ = 0;

    std::unordered_map<uint32_t, std::vector<uint64_t>> rows_;

    /**
     * Cached per-row content digests feeding probCacheKey; an entry
     * is dropped whenever rowStorage() hands out a mutable reference
     * to the row (the only mutation path) or the row is dropped.
     */
    mutable std::unordered_map<uint32_t, uint64_t> rowDigests_;

    /**
     * Memoized resolution plans keyed by the sensing-setup hash; the
     * TRNG loop replays the same few setups (four RowClone init
     * copies plus the QUAC itself) every iteration. Evicted with a
     * second-chance sweep (entries hit since the last sweep survive)
     * instead of wholesale clearing, so hot setups stay resident.
     */
    mutable std::unordered_map<uint64_t, SenseRowPlan> probCache_;
    mutable uint64_t probCacheHits_ = 0;
    mutable uint64_t probCacheMisses_ = 0;
    mutable uint64_t satRowFastPaths_ = 0;
    mutable uint64_t residRaceFastPaths_ = 0;

    /**
     * Memoized cell-content-independent variation-oracle rows. The
     * Philox draws behind saOffsetMv/cellCapFactor dominate
     * computeProbabilities; they depend only on (bank, row, bitline,
     * temperature, age), so the generation loop can reuse them even
     * though changing cell contents defeat probCache_.
     */
    struct OffsetRowEntry
    {
        double temperatureC = 0.0;
        double ageDays = 0.0;
        std::vector<double> offset;
        double maxAbsMv = 0.0;
        bool hot = false;
    };
    struct CapRowEntry
    {
        std::vector<double> caps;
        double maxAbs = 0.0;
        bool hot = false;
    };
    mutable std::unordered_map<uint32_t, OffsetRowEntry> offsetCache_;
    mutable std::unordered_map<uint32_t, CapRowEntry> capCache_;

    /** Reused scratch (avoids per-sensing allocations). */
    mutable std::vector<double> devScratch_;
    mutable std::vector<double> capScratch_;
    mutable std::vector<double> offsetScratch_;
    std::vector<float> uniformScratch_;
};

} // namespace quac::dram

#endif // QUAC_DRAM_BANK_HH

/**
 * @file
 * JEDEC DDR4 timing parameters (paper Section 2.1, Figure 2).
 *
 * All values are in nanoseconds. Core array timings (tRCD/tRAS/tRP...)
 * are fixed in ns across speed bins; bus-clocked parameters (tCCD,
 * burst time) scale with the transfer rate.
 */

#ifndef QUAC_DRAM_TIMING_HH
#define QUAC_DRAM_TIMING_HH

#include <cstdint>

namespace quac::dram
{

/** DDR4 timing parameter set, all in nanoseconds. */
struct TimingParams
{
    /** Transfer rate in MT/s (two transfers per clock). */
    uint32_t transferRate = 2400;

    double tCK = 2000.0 / 2400;   ///< Clock period.
    double tRCD = 13.32;          ///< ACT -> RD/WR.
    double tRAS = 32.0;           ///< ACT -> PRE (same bank).
    double tRP = 13.32;           ///< PRE -> ACT (same bank).
    double tCL = 13.32;           ///< RD -> first data.
    double tCWL = 12.5;           ///< WR -> first data.
    double tRRD_S = 3.33;         ///< ACT -> ACT, different bank group.
    double tRRD_L = 4.90;         ///< ACT -> ACT, same bank group.
    double tCCD_S = 3.33;         ///< RD/WR -> RD/WR, different group.
    double tCCD_L = 5.00;         ///< RD/WR -> RD/WR, same group.
    double tFAW = 21.0;           ///< Four-activate window.
    double tWR = 15.0;            ///< Write recovery.
    double tRTP = 7.5;            ///< RD -> PRE.
    double tWTR_S = 2.5;          ///< WR -> RD, different group.
    double tWTR_L = 7.5;          ///< WR -> RD, same group.
    double tBurst = 8 * 2000.0 / 2400 / 2; ///< BL8 data burst duration.

    /** tRC = tRAS + tRP. */
    double tRC() const { return tRAS + tRP; }

    /**
     * Peak data-bus bandwidth of one channel in Gbit/s
     * (64-bit bus, transferRate MT/s).
     */
    double
    peakBandwidthGbps() const
    {
        return 64.0 * transferRate * 1e6 / 1e9;
    }

    /**
     * Build a timing set for a DDR4-like interface at @p rate_mts.
     * Analog core timings stay constant in ns; clocked parameters
     * scale with the bus clock, with JEDEC minimum-cycle floors.
     */
    static TimingParams ddr4(uint32_t rate_mts);
};

} // namespace quac::dram

#endif // QUAC_DRAM_TIMING_HH

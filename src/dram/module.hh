/**
 * @file
 * Top-level simulated DDR4 module (one rank of eight x8 chips).
 */

#ifndef QUAC_DRAM_MODULE_HH
#define QUAC_DRAM_MODULE_HH

#include <string>
#include <vector>

#include "dram/bank.hh"
#include "dram/calibration.hh"
#include "dram/command.hh"
#include "dram/geometry.hh"
#include "dram/timing.hh"
#include "dram/variation.hh"

namespace quac::dram
{

/** Everything needed to instantiate one simulated module. */
struct ModuleSpec
{
    /** Short display name (e.g. "M1"). */
    std::string name = "SIM";
    /** Module part identifier (Table 3). */
    std::string moduleId = "SIM-MODULE";
    /** DRAM chip identifier (Table 3). */
    std::string chipId = "SIM-CHIP";
    /** Interface transfer rate in MT/s. */
    uint32_t transferRate = 2400;
    /** Module capacity in GB (informational). */
    double capacityGB = 4.0;

    Geometry geometry = Geometry::paperScale();
    Calibration calibration = {};

    /** Per-module variation seed (distinct seeds = distinct parts). */
    uint64_t seed = 1;
    /** Entropy level multiplier (calibrated against Table 3). */
    double entropyScale = 1.0;
    /** Spatial wave amplitude multiplier (max/avg entropy shaping). */
    double waveScale = 1.0;
    /** Signed 30-day entropy drift coefficient. */
    double agingDrift30d = 0.0;

    /** Initial operating temperature (degC). */
    double temperatureC = 50.0;
    /** Initial device age in days. */
    double ageDays = 0.0;
    /**
     * Cache the cell-content-independent variation-oracle factors
     * per row inside each bank (bit-identical results, large speedup
     * of the generation loop; disable to measure the uncached model).
     */
    bool oracleCache = true;
    /**
     * Resolve sensing with the batched SIMD kernel (vectorized Phi
     * approximation, bulk uniform draws, word-packed bit
     * resolution). Statistically indistinguishable from the scalar
     * reference path and bit-identical on the guardbanded single-row
     * path; disable to select the scalar erfc/per-bit-draw oracle.
     */
    bool fastSense = true;
    /**
     * Emit constant probability rows for sensing setups saturated
     * >= saturationZ sigma into one tail instead of running the
     * batched Phi kernel (bit-identical; see
     * BankContext::saturationFastPath). Only effective with
     * fastSense.
     */
    bool saturationFastPath = true;
};

/**
 * A simulated DDR4 module: banks plus shared variation/thermal
 * context, driven through a timed command interface.
 */
class DramModule
{
  public:
    explicit DramModule(ModuleSpec spec);

    DramModule(const DramModule &) = delete;
    DramModule &operator=(const DramModule &) = delete;

    const ModuleSpec &spec() const { return spec_; }
    const Geometry &geometry() const { return spec_.geometry; }
    const Calibration &calibration() const { return spec_.calibration; }
    const VariationModel &variation() const { return variation_; }

    /** JEDEC timing set at this module's transfer rate. */
    TimingParams timing() const
    {
        return TimingParams::ddr4(spec_.transferRate);
    }

    uint32_t bankCount() const { return spec_.geometry.banks; }
    Bank &bank(uint32_t index);
    const Bank &bank(uint32_t index) const;

    /** Change the operating temperature (degC). */
    void setTemperature(double temperature_c);
    double temperature() const { return ctx_.temperatureC; }

    /** Change the device age (days since characterization). */
    void setAgeDays(double age_days);
    double ageDays() const { return ctx_.ageDays; }

    /** @name Timed command interface */
    /**@{*/
    void act(uint32_t bank, uint32_t row, double t);
    void pre(uint32_t bank, double t);
    std::vector<uint64_t> readBlock(uint32_t bank, uint32_t column,
                                    double t);
    /** Zero-copy readBlock(): @p dst holds cacheBlockBits / 64 words. */
    void readBlockInto(uint32_t bank, uint32_t column, uint64_t *dst,
                       double t);
    void writeBlock(uint32_t bank, uint32_t column,
                    const std::vector<uint64_t> &data, double t);

    /** Dispatch a Command struct (RD data is discarded). */
    void issue(const Command &cmd);
    /**@}*/

  private:
    ModuleSpec spec_;
    VariationModel variation_;
    BankContext ctx_;
    std::vector<Bank> banks_;
};

} // namespace quac::dram

#endif // QUAC_DRAM_MODULE_HH

#include "dram/segment_model.hh"

#include <string>

#include "common/error.hh"
#include "common/stats.hh"

namespace quac::dram
{

SegmentModel::SegmentModel(const Geometry &geom, const Calibration &cal,
                           const VariationModel &var, uint32_t bank,
                           uint32_t segment, double temperature_c,
                           double age_days)
    : geom_(geom), cal_(cal), bank_(bank), segment_(segment)
{
    QUAC_ASSERT(segment < geom.segmentsPerBank(), "segment out of range");

    uint32_t nbits = geom.bitlinesPerRow;
    noiseSigmaMv_ = var.noiseSigmaMv(temperature_c);

    double seg_mean = var.segmentMeanMv(bank, segment);
    double spatial = var.spatialScale(bank, segment);
    double aging = var.agingScale(bank, segment, age_days);

    std::vector<double> chip_factor(geom.chipsPerRank);
    for (uint32_t chip = 0; chip < geom.chipsPerRank; ++chip)
        chip_factor[chip] = var.temperatureFactor(chip, temperature_c);

    uint32_t base_row = geom.firstRowOfSegment(segment);
    offsetMv_.resize(nbits);
    for (auto &caps : cap_)
        caps.resize(nbits);

    uint32_t cb_bits = geom.cacheBlockBits;
    double col_shape = 0.0;
    for (uint32_t b = 0; b < nbits; ++b) {
        if (b % cb_bits == 0)
            col_shape = var.columnShape(b / cb_bits);
        double offset = (var.saOffsetMv(bank, base_row, b) + seg_mean) /
                        (spatial * col_shape * aging) *
                        chip_factor[geom.chipOfBitline(b)];
        offsetMv_[b] = static_cast<float>(offset);
        for (uint32_t i = 0; i < Geometry::rowsPerSegment; ++i) {
            cap_[i][b] = static_cast<float>(
                var.cellCapFactor(bank, base_row + i, b));
        }
    }
}

std::vector<float>
SegmentModel::patternProbabilities(uint8_t pattern,
                                   const QuacWeights &weights) const
{
    uint32_t nbits = geom_.bitlinesPerRow;
    std::vector<float> probs(nbits);

    std::array<double, Geometry::rowsPerSegment> signed_w;
    for (uint32_t i = 0; i < Geometry::rowsPerSegment; ++i) {
        double sign = ((pattern >> i) & 1) ? 1.0 : -1.0;
        signed_w[i] = sign * weights.w[i] * cal_.vShareMv;
    }

    for (uint32_t b = 0; b < nbits; ++b) {
        double dev = 0.0;
        for (uint32_t i = 0; i < Geometry::rowsPerSegment; ++i)
            dev += signed_w[i] * cap_[i][b];
        probs[b] = static_cast<float>(
            probabilityOne(dev, offsetMv_[b], noiseSigmaMv_));
    }
    return probs;
}

std::vector<float>
SegmentModel::patternProbabilities(uint8_t pattern) const
{
    return patternProbabilities(
        pattern, quacWeights(cal_, 0, cal_.quacGapNs, cal_.quacGapNs));
}

std::vector<double>
SegmentModel::bitlineEntropies(uint8_t pattern,
                               const QuacWeights &weights) const
{
    std::vector<float> probs = patternProbabilities(pattern, weights);
    std::vector<double> entropies(probs.size());
    for (size_t b = 0; b < probs.size(); ++b)
        entropies[b] = binaryEntropy(probs[b]);
    return entropies;
}

double
SegmentModel::segmentEntropy(uint8_t pattern) const
{
    return segmentEntropy(
        pattern, quacWeights(cal_, 0, cal_.quacGapNs, cal_.quacGapNs));
}

double
SegmentModel::segmentEntropy(uint8_t pattern,
                             const QuacWeights &weights) const
{
    double sum = 0.0;
    for (double h : bitlineEntropies(pattern, weights))
        sum += h;
    return sum;
}

std::vector<double>
SegmentModel::cacheBlockEntropies(uint8_t pattern) const
{
    return cacheBlockEntropies(
        pattern, quacWeights(cal_, 0, cal_.quacGapNs, cal_.quacGapNs));
}

std::vector<double>
SegmentModel::cacheBlockEntropies(uint8_t pattern,
                                  const QuacWeights &weights) const
{
    std::vector<double> bit_h = bitlineEntropies(pattern, weights);
    uint32_t cb_bits = geom_.cacheBlockBits;
    std::vector<double> blocks(geom_.cacheBlocksPerRow(), 0.0);
    for (size_t b = 0; b < bit_h.size(); ++b)
        blocks[b / cb_bits] += bit_h[b];
    return blocks;
}

uint8_t
patternFromString(const char *pattern)
{
    uint8_t nibble = 0;
    for (int i = 0; i < 4; ++i) {
        char c = pattern[i];
        if (c == '\0')
            fatal("pattern string '%s' too short", pattern);
        if (c == '1')
            nibble |= static_cast<uint8_t>(1u << i);
        else if (c != '0')
            fatal("invalid pattern character '%c'", c);
    }
    if (pattern[4] != '\0')
        fatal("pattern string '%s' too long", pattern);
    return nibble;
}

std::string
patternToString(uint8_t pattern)
{
    std::string out(4, '0');
    for (int i = 0; i < 4; ++i) {
        if ((pattern >> i) & 1)
            out[i] = '1';
    }
    return out;
}

std::vector<uint8_t>
allPatterns()
{
    // Figure 8 enumerates patterns as R0 R1 R2 R3 strings counting in
    // binary: "0000", "0001", ..., "1111". The string's first bit is
    // row 0, so string order corresponds to nibble bit-reversal.
    std::vector<uint8_t> patterns;
    for (unsigned value = 0; value < 16; ++value) {
        uint8_t nibble = 0;
        for (unsigned bit = 0; bit < 4; ++bit) {
            if ((value >> (3 - bit)) & 1)
                nibble |= static_cast<uint8_t>(1u << bit);
        }
        patterns.push_back(nibble);
    }
    return patterns;
}

} // namespace quac::dram

/**
 * @file
 * Fast analytic model of one DRAM segment under QUAC.
 *
 * Characterization sweeps (Figs 8-10, 14; Table 3) evaluate QUAC
 * entropy over thousands of (segment, pattern) points. Monte-Carlo
 * sampling through the full command path would be needlessly slow and
 * noisy: given the device model, each bitline's P(1) is a closed-form
 * function of the pattern and the variation draws. SegmentModel
 * precomputes the per-bitline variation ingredients once per segment
 * and then answers pattern queries in a few ns per bitline.
 *
 * Consistency with the command path is enforced by unit tests that
 * compare these probabilities against Bank::quacProbabilities and
 * against empirical sampling frequencies.
 */

#ifndef QUAC_DRAM_SEGMENT_MODEL_HH
#define QUAC_DRAM_SEGMENT_MODEL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dram/calibration.hh"
#include "dram/geometry.hh"
#include "dram/sensing.hh"
#include "dram/variation.hh"

namespace quac::dram
{

/** Precomputed per-bitline analytic view of a segment. */
class SegmentModel
{
  public:
    /**
     * @param geom module geometry.
     * @param cal calibration constants.
     * @param var module variation oracle.
     * @param bank bank index.
     * @param segment segment index within the bank.
     * @param temperature_c operating temperature.
     * @param age_days device age.
     */
    SegmentModel(const Geometry &geom, const Calibration &cal,
                 const VariationModel &var, uint32_t bank,
                 uint32_t segment, double temperature_c = 50.0,
                 double age_days = 0.0);

    uint32_t segment() const { return segment_; }
    uint32_t bank() const { return bank_; }

    /**
     * Per-bitline probability of reading 1 after QUAC with the rows
     * uniformly initialized to @p pattern (bit i of the nibble fills
     * row offset i).
     */
    std::vector<float> patternProbabilities(uint8_t pattern,
                                            const QuacWeights &weights)
        const;

    /** Convenience: probabilities at the default QUAC weights. */
    std::vector<float> patternProbabilities(uint8_t pattern) const;

    /** Per-bitline Shannon entropy (bits) for a pattern. */
    std::vector<double> bitlineEntropies(uint8_t pattern,
                                         const QuacWeights &weights)
        const;

    /** Sum of bitline entropies: the segment entropy for a pattern. */
    double segmentEntropy(uint8_t pattern) const;
    double segmentEntropy(uint8_t pattern,
                          const QuacWeights &weights) const;

    /** Per-cache-block entropy sums for a pattern. */
    std::vector<double> cacheBlockEntropies(uint8_t pattern) const;
    std::vector<double> cacheBlockEntropies(uint8_t pattern,
                                            const QuacWeights &weights)
        const;

    /** Effective offsets (mV) per bitline (exposed for tests). */
    const std::vector<float> &offsetsMv() const { return offsetMv_; }

    /** Thermal + race noise sigma used by this model (mV). */
    double noiseSigmaMv() const { return noiseSigmaMv_; }

  private:
    const Geometry &geom_;
    const Calibration &cal_;
    uint32_t bank_;
    uint32_t segment_;
    double noiseSigmaMv_;
    /** Effective offset per bitline (all scalings applied). */
    std::vector<float> offsetMv_;
    /** Cell capacitance factors, [row offset][bitline]. */
    std::array<std::vector<float>, Geometry::rowsPerSegment> cap_;
};

/** Parse a paper-style pattern string ("0111") into a nibble. */
uint8_t patternFromString(const char *pattern);

/** Render a pattern nibble as the paper's 4-character string. */
std::string patternToString(uint8_t pattern);

/** The sixteen init patterns in Figure 8's enumeration order. */
std::vector<uint8_t> allPatterns();

} // namespace quac::dram

#endif // QUAC_DRAM_SEGMENT_MODEL_HH

/**
 * @file
 * Catalog of the 17 DDR4 modules characterized in the paper
 * (Appendix A, Table 3), with per-module calibration targets.
 */

#ifndef QUAC_DRAM_CATALOG_HH
#define QUAC_DRAM_CATALOG_HH

#include <string>
#include <vector>

#include "dram/module.hh"

namespace quac::dram
{

/** One Table 3 row: identity plus measured entropy targets. */
struct CatalogEntry
{
    std::string name;       ///< M1..M17.
    std::string moduleId;   ///< Module part number ("Unknown" allowed).
    std::string chipId;     ///< DRAM chip part number.
    uint32_t transferRate;  ///< MT/s.
    double capacityGB;      ///< Module capacity.
    double avgSegmentEntropy; ///< Paper: average segment entropy (bits).
    double maxSegmentEntropy; ///< Paper: maximum segment entropy (bits).
    /** Paper: average entropy after 30 days (0 when not reported). */
    double avgSegmentEntropy30d;
};

/**
 * Average segment entropy (bits) produced by the device model with
 * entropyScale = 1 at the default calibration (measured at paper
 * scale over 512 sampled segments); catalog entries scale against
 * this nominal value.
 */
constexpr double kNominalSegmentEntropy = 1410.0;

/**
 * Measured affine map from waveScale to the (max/avg - 1) segment
 * entropy excess: excess ~= kExcessBase + kExcessSlope * waveScale.
 * The base term comes from per-segment mean-offset luck and does not
 * shrink with the wave amplitude.
 */
constexpr double kExcessBase = 0.325;
constexpr double kExcessSlope = 0.44;

/** All 17 Table 3 rows. */
const std::vector<CatalogEntry> &paperCatalog();

/**
 * Build a ModuleSpec reproducing a catalog entry's entropy profile.
 *
 * @param entry catalog row.
 * @param geometry module geometry (tests may pass a reduced one).
 * @param seed_salt mixed into the per-module seed, letting callers
 *        instantiate statistically independent copies.
 */
ModuleSpec specFor(const CatalogEntry &entry, const Geometry &geometry,
                   uint64_t seed_salt = 0);

/** Specs for all 17 modules at the given geometry. */
std::vector<ModuleSpec> paperModuleSpecs(const Geometry &geometry);

} // namespace quac::dram

#endif // QUAC_DRAM_CATALOG_HH

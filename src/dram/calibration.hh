/**
 * @file
 * Analog-behaviour calibration constants for the DRAM device model.
 *
 * The paper characterizes real SK Hynix DDR4 chips; we reproduce the
 * reported behaviour with a phenomenological analog model whose
 * constants are calibrated against the paper's measurements:
 *
 *  - Charge-sharing weights: the row activated first (R0) dominates
 *    because the sense amplifier partially amplifies its deviation
 *    during the ACT->PRE->ACT window (paper Section 6.1.3: entropy is
 *    highest when R0 holds the inverse of the other three rows, i.e.
 *    patterns "0111"/"1000" balance). Rows R1..R3 are staggered by
 *    local-wordline driver enable order. The default weights place the
 *    sixteen init patterns in exactly the order Figure 8 reports, with
 *    the eight R0==R1 patterns below the "insufficient entropy" line.
 *
 *  - Sensing statistics: per-bitline SA offsets ~ N(0, saOffsetSigmaMv)
 *    plus a per-segment systematic mean (segmentMeanSigmaMv); thermal
 *    noise sigma scales with sqrt(T). The combined offset spread
 *    sigma_tot = sqrt(4.35^2 + 3.2^2) = 5.4 mV and noise 0.12 mV give
 *    a per-bitline expected entropy of ~1.36*sigma_n/sigma_tot = 0.022
 *    bit for a balanced pattern, i.e. ~11 bits per 512-bit cache block
 *    (Fig 8's 11.07) and ~1.4 kbit per 64 Kbit segment (Table 3's
 *    1.1-1.9 kbit band).
 *
 *  - Pattern separation: vShareMv scales the net pattern imbalance
 *    |delta| into mV. |delta| = 0.90 (patterns "0100"/"1011") yields a
 *    2.9 sigma_tot mean shift, reproducing their ~60x lower average
 *    entropy (Fig 8: 0.17 vs 11.07 bits) while the per-segment mean
 *    lets rare segments cancel the shift ("0100"'s 53-bit outlier).
 *
 *  - Timing thresholds: behaviour-class boundaries for violated
 *    timings (QUAC, RowClone copy, tRP-failure, tRCD-failure),
 *    following Algorithm 1 and Section 7.4 of the paper.
 */

#ifndef QUAC_DRAM_CALIBRATION_HH
#define QUAC_DRAM_CALIBRATION_HH

namespace quac::dram
{

/** Tunable analog/behavioural constants of the device model. */
struct Calibration
{
    // --- Charge sharing / QUAC -------------------------------------
    /**
     * Bitline deviation (mV) produced by one unit of net pattern
     * imbalance after QUAC charge sharing (four cells loading the
     * bitline).
     */
    double vShareMv = 17.0;

    /**
     * Effective weight of the first-activated row relative to the
     * staggered weights of the other three (which sum to 1.0), i.e.
     * patterns "0111"/"1000" produce zero mean deviation.
     */
    double firstRowWeight = 1.0;

    /** Staggered weights of the three follower rows (LWL order). */
    double rowWeight1 = 0.55;
    double rowWeight2 = 0.28;
    double rowWeight3 = 0.17;

    /**
     * Full single-cell differential (mV) at complete development
     * (one cell loading the bitline; ~2.5x the four-cell share).
     */
    double singleRowShareMv = 120.0;

    /**
     * Single-cell differential (mV) developed by the time the sense
     * amplifier regeneration kicks in; the scale a violated-precharge
     * residual races against (Talukder+/RowClone regimes).
     */
    double singleRowKickMv = 20.0;

    // --- Sensing statistics -----------------------------------------
    /** Per-bitline SA offset standard deviation (mV). */
    double saOffsetSigmaMv = 4.35;

    /** Per-segment systematic offset standard deviation (mV). */
    double segmentMeanSigmaMv = 3.2;

    /**
     * A small fraction of segments carry a much larger systematic
     * offset (design-induced variation); these are the segments that
     * "favor" unbalanced data patterns (Fig 8's 53-bit "0100"
     * outlier).
     */
    double segmentMeanHeavyProb = 0.01;
    double segmentMeanHeavySigmaMv = 12.0;

    /** Per-cell capacitance variation (fraction of nominal). */
    double cellCapSigma = 0.07;

    /** Thermal noise sigma (mV) at the 50 degC reference point. */
    double noiseSigmaMvAt50C = 0.12;

    /**
     * Extra sampling noise (mV) while the bitline is still
     * developing: the column-access path races the sense amplifier,
     * making tRCD-violated reads (D-RaNGe's substrate) noisy.
     * Scales with (1 - developFraction).
     */
    double raceNoiseMv = 0.8;

    // --- Timing behaviour thresholds (ns) ----------------------------
    /**
     * Interval after ACT before the sense amplifiers have latched;
     * a PRE earlier than this aborts sensing (QUAC first ACT).
     */
    double tSenseLatch = 9.0;

    /**
     * ACT -> PRE interval below which tRAS is considered violated, so
     * the PRE fails to reset the LWL select latches (paper Fig 4).
     */
    double tRasViolation = 28.0;

    /**
     * PRE -> ACT interval below which the LWL select latches (not yet
     * reset because tRAS was violated) are still holding when the
     * second ACT arrives, enabling QUAC.
     */
    double tPreReset = 9.0;

    /** Bitline equalization time constant during PRE (ns). */
    double tauEqNs = 1.8;

    /** Full-rail SA drive level (mV) for residual computations. */
    double railMv = 600.0;

    /** Residual amplitude (mV) above which sensing is a race. */
    double residThresholdMv = 1.0;

    /** Dead time (ns) after ACT before the bitline starts developing. */
    double tSenseDead = 5.5;

    /** Time (ns) for a bitline to fully develop during sensing. */
    double tFullDevelop = 11.0;

    // --- Spatial variation (Fig 9 / Fig 10 shapes) --------------------
    /** Amplitude of the long-wavelength segment entropy wave. */
    double spatialWave1Amp = 0.18;
    /** Wavelength (as fraction of a bank's segments) of wave 1. */
    double spatialWave1Frac = 0.085;
    /** Amplitude of the short-wavelength wave. */
    double spatialWave2Amp = 0.10;
    /** Wavelength fraction of wave 2. */
    double spatialWave2Frac = 0.018;
    /** Per-segment iid jitter sigma. */
    double spatialJitterSigma = 0.05;
    /** Start of the end-of-bank rise (fraction of bank). */
    double endRiseStart = 0.90;
    /** Peak boost of the end-of-bank rise. */
    double endRiseBoost = 0.35;
    /** Start of the terminal drop (fraction of bank). */
    double endDropStart = 0.985;
    /** Terminal drop floor (multiplier at the last segment). */
    double endDropFloor = 0.55;
    /** Probability that a segment contains remapped (repaired) rows. */
    double rowRepairProb = 0.004;

    // --- Temperature (Fig 14) -----------------------------------------
    /** Fraction of chips whose entropy rises with temperature. */
    double trend1Fraction = 0.60;
    /** Mean/sigma of the trend-1 (rising) offset-shrink coefficient. */
    double trend1KappaMean = 0.16;
    double trend1KappaSigma = 0.05;
    /** Mean/sigma of the trend-2 (falling) coefficient (negative). */
    double trend2KappaMean = -0.85;
    double trend2KappaSigma = 0.20;

    // --- Baseline substrates (Section 7.4) ------------------------------
    /**
     * ACT -> RD interval (ns) used by the D-RaNGe driver; develops
     * only ~6% of the differential so weak cells sample the race
     * noise (calibrated to ~46.6 bits of max cache-block entropy and
     * ~4 strongly-random cells per best block).
     */
    double drangeReadNs = 5.84;

    /**
     * PRE -> ACT interval (ns) used by the Talukder+ tRP-failure
     * driver; the SA residual (~14 mV) then sits one offset-sigma
     * below the single-cell kick differential, so weak cells flip
     * or go metastable (calibrated to ~1 kbit of row entropy,
     * matching the paper's Talukder+-Enhanced characterization).
     */
    double talukderPreNs = 7.0;

    /** PRE -> ACT interval (ns) used for RowClone in-DRAM copy. */
    double rowCloneGapNs = 2.5;

    /** ACT -> PRE interval (ns) for RowClone (source fully sensed). */
    double rowCloneSrcOpenNs = 10.0;

    /** ACT -> PRE / PRE -> ACT interval (ns) for QUAC (Algorithm 1). */
    double quacGapNs = 2.5;
};

} // namespace quac::dram

#endif // QUAC_DRAM_CALIBRATION_HH

#include "dram/timing.hh"

#include <algorithm>

#include "common/error.hh"

namespace quac::dram
{

TimingParams
TimingParams::ddr4(uint32_t rate_mts)
{
    if (rate_mts < 800)
        fatal("DDR4 transfer rate %u MT/s is too low", rate_mts);

    TimingParams t;
    t.transferRate = rate_mts;
    t.tCK = 2000.0 / rate_mts;

    // Analog array timings: constant in ns across speed bins.
    t.tRCD = 13.32;
    t.tRAS = 32.0;
    t.tRP = 13.32;
    t.tCL = 13.32;
    t.tCWL = 12.5;
    t.tWR = 15.0;
    t.tRTP = 7.5;
    t.tFAW = 21.0;

    // Clocked parameters: minimum cycle counts at the bus clock, with
    // analog floors (JEDEC DDR4: tRRD_S >= max(4 tCK, 3.3 ns), etc.).
    t.tRRD_S = std::max(4 * t.tCK, 3.33);
    t.tRRD_L = std::max(4 * t.tCK, 4.90);
    t.tCCD_S = 4 * t.tCK;
    t.tCCD_L = std::max(5 * t.tCK, 5.00);
    t.tWTR_S = std::max(2 * t.tCK, 2.5);
    t.tWTR_L = std::max(4 * t.tCK, 7.5);

    // BL8 burst occupies 4 clocks of the data bus.
    t.tBurst = 4 * t.tCK;
    return t;
}

} // namespace quac::dram

#include "dram/catalog.hh"

#include <algorithm>

#include "common/rng.hh"

namespace quac::dram
{

const std::vector<CatalogEntry> &
paperCatalog()
{
    // Appendix A, Table 3. Entropy columns are for data pattern
    // "0111" at 50 degC; the 30-day column is only reported for five
    // modules.
    static const std::vector<CatalogEntry> catalog = {
        {"M1", "Unknown", "H5AN4G8NAFR-TFC", 2133, 4,
         1688.1, 2247.4, 0.0},
        {"M2", "Unknown", "Unknown", 2133, 4, 1180.4, 1406.1, 0.0},
        {"M3", "Unknown", "H5AN4G8NAFR-TFC", 2133, 4,
         1205.0, 1858.3, 1192.9},
        {"M4", "76TT21NUS1R8-4G", "H5AN4G8NAFR-TFC", 2133, 4,
         1608.1, 2406.5, 1588.0},
        {"M5", "Unknown", "T4D5128HT-21", 2133, 4, 1618.2, 2121.6, 0.0},
        {"M6", "TLRD44G2666HC18F-SBK", "H5AN4G8NMFR-VKC", 2666, 4,
         1211.5, 1444.6, 0.0},
        {"M7", "TLRD44G2666HC18F-SBK", "H5AN4G8NMFR-VKC", 2666, 4,
         1177.7, 1404.4, 0.0},
        {"M8", "TLRD44G2666HC18F-SBK", "H5AN4G8NMFR-VKC", 2666, 4,
         1332.9, 1600.9, 1407.0},
        {"M9", "TLRD44G2666HC18F-SBK", "H5AN4G8NMFR-VKC", 2666, 4,
         1137.1, 1370.9, 0.0},
        {"M10", "TLRD44G2666HC18F-SBK", "H5AN4G8NMFR-VKC", 2666, 4,
         1208.5, 1473.2, 1251.8},
        {"M11", "TLRD44G2666HC18F-SBK", "H5AN4G8NMFR-VKC", 2666, 4,
         1176.0, 1382.9, 1165.1},
        {"M12", "TLRD44G2666HC18F-SBK", "H5AN4G8NMFR-VKC", 2666, 4,
         1485.0, 1740.6, 0.0},
        {"M13", "KSM32RD8/16HDR", "H5AN4G8NAFA-UHC", 2400, 4,
         1853.5, 2849.6, 0.0},
        {"M14", "F4-2400C17S-8GNT", "H5AN4G8NMFR-UHC", 2400, 8,
         1369.3, 1942.2, 0.0},
        {"M15", "F4-2400C17S-8GNT", "H5AN4G8NMFR-UHC", 3200, 8,
         1545.8, 2147.2, 0.0},
        {"M16", "KSM32RD8/16HDR", "H5AN8G8NDJR-XNC", 3200, 16,
         1634.4, 1944.6, 0.0},
        {"M17", "KSM32RD8/16HDR", "H5AN8G8NDJR-XNC", 3200, 16,
         1664.7, 2016.6, 0.0},
    };
    return catalog;
}

ModuleSpec
specFor(const CatalogEntry &entry, const Geometry &geometry,
        uint64_t seed_salt)
{
    ModuleSpec spec;
    spec.name = entry.name;
    spec.moduleId = entry.moduleId;
    spec.chipId = entry.chipId;
    spec.transferRate = entry.transferRate;
    spec.capacityGB = entry.capacityGB;
    spec.geometry = geometry;

    // A stable per-module seed derived from the module name.
    uint64_t sm = 0x9e3779b97f4a7c15ULL ^ seed_salt;
    for (char c : entry.name)
        sm = sm * 131 + static_cast<unsigned char>(c);
    spec.seed = splitmix64(sm);

    spec.entropyScale = entry.avgSegmentEntropy / kNominalSegmentEntropy;
    double excess = entry.maxSegmentEntropy / entry.avgSegmentEntropy - 1.0;
    spec.waveScale = std::clamp((excess - kExcessBase) / kExcessSlope,
                                0.10, 2.2);

    if (entry.avgSegmentEntropy30d > 0.0) {
        spec.agingDrift30d =
            entry.avgSegmentEntropy30d / entry.avgSegmentEntropy - 1.0;
    } else {
        // Unreported modules drift by a small seeded amount consistent
        // with the paper's 2.4% average / 5.2% max magnitude.
        uint64_t sm2 = spec.seed ^ 0xA5A5A5A5A5A5A5A5ULL;
        double u = splitmix64(sm2) * 0x1p-64;
        spec.agingDrift30d = (u - 0.5) * 2.0 * 0.03;
    }
    return spec;
}

std::vector<ModuleSpec>
paperModuleSpecs(const Geometry &geometry)
{
    std::vector<ModuleSpec> specs;
    specs.reserve(paperCatalog().size());
    for (const CatalogEntry &entry : paperCatalog())
        specs.push_back(specFor(entry, geometry));
    return specs;
}

} // namespace quac::dram

/**
 * @file
 * Manufacturing-variation model for a simulated DRAM module.
 *
 * Reproduces the variation structure the paper attributes its entropy
 * distributions to (Sections 6.1.3, 6.1.4, 8):
 *
 *  - random per-SA offsets (process variation across sense amps),
 *  - per-cell capacitance variation,
 *  - a per-segment systematic mean offset (makes some segments
 *    "favor" particular data patterns, Fig 8's 53-bit outlier),
 *  - wave-like systematic variation across segment addresses plus an
 *    end-of-bank rise-then-drop (Fig 9),
 *  - a bell-shaped entropy profile across cache blocks within a
 *    segment (Fig 10),
 *  - sparse post-manufacturing row repair (local outliers, Fig 9),
 *  - per-chip temperature coefficients in two populations (Fig 14),
 *  - slow aging drift (Table 3's 30-day column).
 *
 * All draws are Philox counter-based: any coordinate can be queried in
 * any order and always yields the same value for a given module seed.
 */

#ifndef QUAC_DRAM_VARIATION_HH
#define QUAC_DRAM_VARIATION_HH

#include <cstdint>

#include "common/rng.hh"
#include "dram/calibration.hh"
#include "dram/geometry.hh"

namespace quac::dram
{

/** Deterministic per-module variation oracle. */
class VariationModel
{
  public:
    /**
     * @param geom module geometry.
     * @param cal analog calibration constants.
     * @param seed per-module seed (distinct seeds model distinct
     *        physical modules).
     * @param entropyScale global multiplier on segment entropy,
     *        calibrated per catalog module against Table 3.
     * @param waveScale multiplier on the spatial wave amplitudes,
     *        shaping each module's max/avg segment entropy ratio.
     */
    VariationModel(const Geometry &geom, const Calibration &cal,
                   uint64_t seed, double entropyScale = 1.0,
                   double waveScale = 1.0, double agingDrift30d = 0.0);

    /** Base (unscaled) sense-amp offset for a bitline's SA, in mV. */
    double saOffsetMv(uint32_t bank, uint32_t row, uint32_t bitline) const;

    /**
     * Bulk saOffsetMv() for bitlines [0, nbits) of a row, written to
     * @p out. Bit-identical to per-bitline calls; the Philox blocks
     * behind the gaussian draws are generated with the vectorized
     * bulk path, which is what makes whole-row oracle fills cheap.
     */
    void saOffsetRowMv(uint32_t bank, uint32_t row, uint32_t nbits,
                       double *out) const;

    /** Systematic per-segment mean offset, in mV. */
    double segmentMeanMv(uint32_t bank, uint32_t segment) const;

    /** Cell capacitance as a fraction of nominal (mean 1.0). */
    double cellCapFactor(uint32_t bank, uint32_t row,
                         uint32_t bitline) const;

    /**
     * Bulk cellCapFactor() for bitlines [0, nbits) of a row, written
     * to @p out; bit-identical to per-bitline calls.
     */
    void cellCapRow(uint32_t bank, uint32_t row, uint32_t nbits,
                    double *out) const;

    /**
     * Systematic entropy scale of a segment: module scale x spatial
     * waves x end-of-bank shape x jitter x row-repair outliers.
     * Larger values mean tighter offsets and hence more entropy.
     */
    double spatialScale(uint32_t bank, uint32_t segment) const;

    /** Bell-shaped entropy profile across cache-block columns. */
    double columnShape(uint32_t column) const;

    /** True if the segment was hit by post-manufacturing row repair. */
    bool isRepairedSegment(uint32_t bank, uint32_t segment) const;

    /** Temperature trend coefficient of a chip (positive: trend-1). */
    double chipKappa(uint32_t chip) const;

    /** True if the chip's entropy rises with temperature (trend-1). */
    bool chipIsTrend1(uint32_t chip) const;

    /**
     * Multiplier applied to offsets at temperature @p temperature_c;
     * below 1 for trend-1 chips at high temperature (offsets shrink,
     * entropy rises).
     */
    double temperatureFactor(uint32_t chip, double temperature_c) const;

    /** Module-level multiplicative entropy drift after @p age_days. */
    double agingScale(uint32_t bank, uint32_t segment,
                      double age_days) const;

    /** Thermal noise sigma (mV) at @p temperature_c. */
    double noiseSigmaMv(double temperature_c) const;

    /**
     * Effective offset (mV) seen by the sense amplifier on a bitline:
     * (SA offset + segment mean) / (spatial x column x aging scales)
     * x per-chip temperature factor.
     *
     * Smaller effective offsets make the bitline metastable more
     * often, so dividing by the entropy scales makes segment entropy
     * track them.
     */
    double effectiveOffsetMv(uint32_t bank, uint32_t row,
                             uint32_t bitline, double temperature_c,
                             double age_days) const;

  private:
    /**
     * Standard normals for the blocks of counters {base[0], base[1],
     * base[2], i} with i in [0, n), lane 0 each; bit-identical to
     * per-counter Philox4x32::gaussian() but fed by the bulk block
     * generator.
     */
    void gaussianRow(const Philox4x32::Counter &base, uint32_t n,
                     double *out) const;

    Geometry geom_;
    Calibration cal_;
    Philox4x32 philox_;
    double entropyScale_;
    double waveScale_;
    double agingDrift30d_;
    // Per-module wave parameters derived from the seed.
    double wavePhase1_;
    double wavePhase2_;
    double waveLen1_;
    double waveLen2_;
};

} // namespace quac::dram

#endif // QUAC_DRAM_VARIATION_HH

#include "dram/variation.hh"

#include <algorithm>
#include <array>
#include <cmath>

namespace quac::dram
{

namespace
{

// Philox domain tags keeping independent draw families disjoint.
enum DomainTag : uint32_t
{
    tagSaOffset = 1,
    tagSegmentMean = 2,
    tagCellCap = 3,
    tagSpatialJitter = 4,
    tagRepair = 5,
    tagChipKappa = 6,
    tagAgingJitter = 7,
};

} // anonymous namespace

VariationModel::VariationModel(const Geometry &geom, const Calibration &cal,
                               uint64_t seed, double entropy_scale,
                               double wave_scale, double aging_drift_30d)
    : geom_(geom), cal_(cal), philox_(seed),
      entropyScale_(entropy_scale), waveScale_(wave_scale),
      agingDrift30d_(aging_drift_30d)
{
    // Derive module-specific wave phases/wavelengths from the seed so
    // different modules show different spatial idiosyncrasies (Fig 9,
    // modules M1 vs M2).
    uint64_t sm = seed ^ 0xABCDEF0123456789ULL;
    wavePhase1_ = 2.0 * M_PI * (splitmix64(sm) * 0x1p-64);
    wavePhase2_ = 2.0 * M_PI * (splitmix64(sm) * 0x1p-64);
    double jitter1 = 0.8 + 0.4 * (splitmix64(sm) * 0x1p-64);
    double jitter2 = 0.8 + 0.4 * (splitmix64(sm) * 0x1p-64);
    waveLen1_ = cal.spatialWave1Frac * jitter1;
    waveLen2_ = cal.spatialWave2Frac * jitter2;
}

double
VariationModel::saOffsetMv(uint32_t bank, uint32_t row,
                           uint32_t bitline) const
{
    // Offsets belong to the sense amplifier serving (subarray,
    // bitline); segments in the same subarray share SAs.
    uint32_t subarray = geom_.subarrayOfRow(row);
    double g = philox_.gaussian({tagSaOffset, bank,
                                 subarray, bitline});
    return g * cal_.saOffsetSigmaMv;
}

void
VariationModel::gaussianRow(const Philox4x32::Counter &base, uint32_t n,
                            double *out) const
{
    // Chunked so the Philox block scratch stays cache-resident.
    constexpr uint32_t chunk = 512;
    std::array<uint32_t, 4 * chunk> blocks;
    for (uint32_t start = 0; start < n; start += chunk) {
        uint32_t m = std::min(chunk, n - start);
        philox_.blocks({base[0], base[1], base[2], start}, m,
                       blocks.data());
        for (uint32_t j = 0; j < m; ++j) {
            // Identical arithmetic to Philox4x32::gaussian(ctr, 0).
            double u1 = (blocks[4 * j] + 0.5) * 0x1p-32;
            double u2 = (blocks[4 * j + 1] + 0.5) * 0x1p-32;
            double r = std::sqrt(-2.0 * std::log(u1));
            out[start + j] = r * std::cos(2.0 * M_PI * u2);
        }
    }
}

void
VariationModel::saOffsetRowMv(uint32_t bank, uint32_t row, uint32_t nbits,
                              double *out) const
{
    uint32_t subarray = geom_.subarrayOfRow(row);
    gaussianRow({tagSaOffset, bank, subarray, 0}, nbits, out);
    for (uint32_t b = 0; b < nbits; ++b)
        out[b] *= cal_.saOffsetSigmaMv;
}

void
VariationModel::cellCapRow(uint32_t bank, uint32_t row, uint32_t nbits,
                           double *out) const
{
    gaussianRow({tagCellCap, bank, row, 0}, nbits, out);
    for (uint32_t b = 0; b < nbits; ++b) {
        double f = 1.0 + out[b] * cal_.cellCapSigma;
        out[b] = std::max(f, 0.2);
    }
}

double
VariationModel::segmentMeanMv(uint32_t bank, uint32_t segment) const
{
    double g = philox_.gaussian({tagSegmentMean, bank, segment, 0});
    double u = philox_.uniform({tagSegmentMean, bank, segment, 1});
    double sigma = (u < cal_.segmentMeanHeavyProb)
                       ? cal_.segmentMeanHeavySigmaMv
                       : cal_.segmentMeanSigmaMv;
    return g * sigma;
}

double
VariationModel::cellCapFactor(uint32_t bank, uint32_t row,
                              uint32_t bitline) const
{
    double g = philox_.gaussian({tagCellCap, bank, row, bitline});
    double f = 1.0 + g * cal_.cellCapSigma;
    return std::max(f, 0.2);
}

double
VariationModel::spatialScale(uint32_t bank, uint32_t segment) const
{
    uint32_t nseg = geom_.segmentsPerBank();
    double x = (segment + 0.5) / nseg;

    double wave = 1.0 +
        waveScale_ * cal_.spatialWave1Amp *
            std::sin(2.0 * M_PI * x / waveLen1_ + wavePhase1_ +
                     0.7 * bank) +
        waveScale_ * cal_.spatialWave2Amp *
            std::sin(2.0 * M_PI * x / waveLen2_ + wavePhase2_ +
                     1.3 * bank);

    // End-of-bank anomaly: entropy rises toward the ~8000th segment,
    // then drops at the very end (differently-sized edge subarrays).
    double end = 1.0;
    if (x >= cal_.endDropStart) {
        double f = (x - cal_.endDropStart) / (1.0 - cal_.endDropStart);
        double peak = 1.0 + waveScale_ * cal_.endRiseBoost;
        end = peak + f * (cal_.endDropFloor - peak);
    } else if (x >= cal_.endRiseStart) {
        double f = (x - cal_.endRiseStart) /
                   (cal_.endDropStart - cal_.endRiseStart);
        end = 1.0 + waveScale_ * cal_.endRiseBoost * f;
    }

    double jitter = 1.0 + cal_.spatialJitterSigma *
        philox_.gaussian({tagSpatialJitter, bank, segment, 0});

    double repair = 1.0;
    if (isRepairedSegment(bank, segment)) {
        // Remapped rows disturb the conflicting-pattern setup.
        double u = philox_.uniform({tagRepair, bank, segment, 1});
        repair = 0.30 + 0.35 * u;
    }

    double scale = entropyScale_ * wave * end * jitter * repair;
    return std::max(scale, 0.05);
}

double
VariationModel::columnShape(uint32_t column) const
{
    uint32_t ncols = geom_.cacheBlocksPerRow();
    if (ncols <= 1)
        return 1.0;
    double x = static_cast<double>(column) / (ncols - 1);
    // Bell profile peaking slightly left of centre; entropy
    // deteriorates toward the high-numbered cache blocks (Fig 10).
    return 0.62 + 0.52 * std::sin(M_PI * std::pow(x, 0.8));
}

bool
VariationModel::isRepairedSegment(uint32_t bank, uint32_t segment) const
{
    double u = philox_.uniform({tagRepair, bank, segment, 0});
    return u < cal_.rowRepairProb;
}

double
VariationModel::chipKappa(uint32_t chip) const
{
    double u = philox_.uniform({tagChipKappa, chip, 0, 0});
    double g = philox_.gaussian({tagChipKappa, chip, 1, 0});
    if (u < cal_.trend1Fraction)
        return cal_.trend1KappaMean + g * cal_.trend1KappaSigma;
    return cal_.trend2KappaMean + g * cal_.trend2KappaSigma;
}

bool
VariationModel::chipIsTrend1(uint32_t chip) const
{
    return chipKappa(chip) > 0.0;
}

double
VariationModel::temperatureFactor(uint32_t chip, double temperature_c) const
{
    double kappa = chipKappa(chip);
    double f = 1.0 - kappa * (temperature_c - 50.0) / 35.0;
    return std::clamp(f, 0.05, 20.0);
}

double
VariationModel::agingScale(uint32_t bank, uint32_t segment,
                           double age_days) const
{
    if (age_days <= 0.0)
        return 1.0;
    double t = age_days / 30.0;
    double jitter = philox_.gaussian({tagAgingJitter, bank, segment, 0});
    double scale = 1.0 + agingDrift30d_ * t +
                   0.01 * std::sqrt(t) * jitter;
    return std::max(scale, 0.05);
}

double
VariationModel::noiseSigmaMv(double temperature_c) const
{
    // Johnson noise power scales linearly with absolute temperature.
    double t_kelvin = temperature_c + 273.15;
    return cal_.noiseSigmaMvAt50C * std::sqrt(t_kelvin / 323.15);
}

double
VariationModel::effectiveOffsetMv(uint32_t bank, uint32_t row,
                                  uint32_t bitline, double temperature_c,
                                  double age_days) const
{
    uint32_t segment = geom_.segmentOfRow(row);
    uint32_t column = bitline / geom_.cacheBlockBits;
    uint32_t chip = geom_.chipOfBitline(bitline);

    double raw = saOffsetMv(bank, row, bitline) +
                 segmentMeanMv(bank, segment);
    double scale = spatialScale(bank, segment) * columnShape(column) *
                   agingScale(bank, segment, age_days);
    return raw / scale * temperatureFactor(chip, temperature_c);
}

} // namespace quac::dram

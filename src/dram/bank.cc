#include "dram/bank.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace quac::dram
{

namespace
{

/** FNV-1a 64-bit accumulation over an arbitrary value's bytes. */
template <typename T>
uint64_t
fnvMix(uint64_t hash, const T &value)
{
    const auto *bytes = reinterpret_cast<const unsigned char *>(&value);
    for (size_t i = 0; i < sizeof(T); ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/**
 * Word-granular FNV-1a variant for bulk row contents: one xor-multiply
 * per 64-bit word instead of eight. The probability-cache key hashes
 * every contributing row per sensing event, so this sits on the hot
 * path; cache keying only needs collision resistance, not avalanche
 * quality, and the multiply chain keeps full 64-bit diffusion.
 */
uint64_t
fnvMixWords(uint64_t hash, const std::vector<uint64_t> &words)
{
    for (uint64_t w : words) {
        hash ^= w;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

constexpr uint64_t fnvBasis = 0xcbf29ce484222325ULL;

/**
 * +1 if the first @p nbits bits of @p words are all ones, -1 if all
 * zeros, 0 otherwise. Lets the deviation accumulation use a constant
 * sign (and hence a vectorizable FMA pass) for the TRNG's uniform
 * init rows and full-rail residuals.
 */
int
constantRowSign(const std::vector<uint64_t> &words, uint32_t nbits)
{
    bool zeros = true;
    bool ones = true;
    uint32_t full = nbits / 64;
    for (uint32_t w = 0; w < full; ++w) {
        zeros = zeros && words[w] == 0;
        ones = ones && words[w] == ~uint64_t{0};
        if (!zeros && !ones)
            return 0;
    }
    if (uint32_t tail = nbits % 64) {
        uint64_t mask = (uint64_t{1} << tail) - 1;
        zeros = zeros && (words[full] & mask) == 0;
        ones = ones && (words[full] & mask) == mask;
    }
    if (zeros)
        return -1;
    if (ones)
        return 1;
    return 0;
}

/**
 * Second-chance eviction sweep: drop every entry not hit since the
 * last sweep and demote the survivors. If everything was hot (the
 * working set exceeds the capacity), drop alternate entries so the
 * cache still shrinks instead of thrashing on a full clear.
 */
template <typename Map>
void
evictColdEntries(Map &map)
{
    bool erased = false;
    for (auto it = map.begin(); it != map.end();) {
        if (!it->second.hot) {
            it = map.erase(it);
            erased = true;
        } else {
            it->second.hot = false;
            ++it;
        }
    }
    if (!erased) {
        bool drop = true;
        for (auto it = map.begin(); it != map.end();) {
            if (drop)
                it = map.erase(it);
            else
                ++it;
            drop = !drop;
        }
    }
}

} // anonymous namespace

Bank::Bank(const BankContext *ctx, uint32_t bank_id, uint64_t noise_seed)
    : ctx_(ctx), bankId_(bank_id), noise_(noise_seed)
{
    QUAC_ASSERT(ctx && ctx->geom && ctx->cal && ctx->variation,
                "bank context incomplete");
    sa_.assign(ctx_->geom->wordsPerRow(), 0);
}

std::vector<uint64_t> &
Bank::rowStorage(uint32_t row)
{
    // Handing out a mutable reference invalidates the row's cached
    // content digest (this is the only mutation path into rows_).
    rowDigests_.erase(row);
    auto it = rows_.find(row);
    if (it == rows_.end()) {
        it = rows_.emplace(row,
                           std::vector<uint64_t>(ctx_->geom->wordsPerRow(),
                                                 0)).first;
    }
    return it->second;
}

uint64_t
Bank::rowDigest(uint32_t row, const std::vector<uint64_t> &words) const
{
    auto it = rowDigests_.find(row);
    if (it == rowDigests_.end()) {
        it = rowDigests_.emplace(row, fnvMixWords(fnvBasis, words))
                 .first;
    }
    return it->second;
}

bool
Bank::cellValue(uint32_t row, uint32_t bitline) const
{
    auto it = rows_.find(row);
    if (it == rows_.end())
        return false;
    return (it->second[bitline / 64] >> (bitline % 64)) & 1;
}

void
Bank::latchFromRow(uint32_t row)
{
    if (row & 1)
        latches_.a0 = true;
    else
        latches_.a0b = true;
    if (row & 2)
        latches_.a1 = true;
    else
        latches_.a1b = true;
}

std::vector<uint32_t>
Bank::rowsSelectedByLatches() const
{
    // Product terms of the hypothetical decoder (paper Fig 4):
    // S0 = A0b.A1b, S1 = A0.A1b, S2 = A0b.A1, S3 = A0.A1.
    std::vector<uint32_t> rows;
    uint32_t base = latches_.mwl << 2;
    if (latches_.a0b && latches_.a1b)
        rows.push_back(base + 0);
    if (latches_.a0 && latches_.a1b)
        rows.push_back(base + 1);
    if (latches_.a0b && latches_.a1)
        rows.push_back(base + 2);
    if (latches_.a0 && latches_.a1)
        rows.push_back(base + 3);
    return rows;
}

void
Bank::activate(uint32_t row, double t)
{
    const Calibration &cal = *ctx_->cal;
    if (row >= ctx_->geom->rowsPerBank)
        fatal("ACT row %u out of range", row);
    if (phase_ == Phase::Opening || phase_ == Phase::Open)
        fatal("ACT on bank %u while a row is open (missing PRE)", bankId_);

    double gap = t - preTime_;
    bool latches_survive = latches_.valid && preRasViolated_ &&
                           phase_ == Phase::Precharging &&
                           gap < cal.tPreReset;
    double resid_amp = 0.0;
    if (phase_ == Phase::Precharging)
        resid_amp = preResidAmpMv_ * std::exp(-gap / cal.tauEqNs);
    bool same_mwl = latches_survive && (row >> 2) == latches_.mwl;

    pending_ = PendingSense{};
    pending_.active = true;
    pending_.actTime = t;

    if (same_mwl) {
        // The surviving LWL select latches OR in the new row's
        // address bits; every row whose product term is now true
        // opens simultaneously (QUAC when the 2 LSBs are inverted).
        latchFromRow(row);
        openRows_ = rowsSelectedByLatches();

        double t1 = preTime_ - firstActTime_;
        QuacWeights weights = quacWeights(cal, firstActRow_ & 3, t1, gap);
        for (uint32_t open_row : openRows_) {
            pending_.contribs.push_back(
                {open_row, weights.w[open_row & 3] * cal.vShareMv});
        }
        // The first row's partial deviation is folded into its QUAC
        // weight; the precharge residual must not be double counted.
    } else {
        // Fresh decode: any previously open rows are now closed and
        // the latches take the new row's address.
        openRows_.clear();
        latches_ = Latches{};
        latches_.mwl = row >> 2;
        latches_.valid = true;
        latchFromRow(row);
        openRows_ = {row};
        firstActRow_ = row;
        firstActTime_ = t;

        if (resid_amp > cal.residThresholdMv && !preResidBits_.empty()) {
            // The row buffer was not fully drained: the new row's
            // cells race the residual (RowClone copy when the
            // residual dominates, tRP-failure flips when comparable).
            pending_.contribs.push_back({row, cal.singleRowKickMv});
            pending_.residAmpMv = resid_amp;
            pending_.residBits = preResidBits_;
            pending_.residDigest = preResidDigest_;
        } else {
            pending_.contribs.push_back({row, cal.singleRowShareMv});
        }
    }

    saLatched_ = false;
    phase_ = Phase::Opening;
    lastActTime_ = t;
}

void
Bank::precharge(double t)
{
    const Calibration &cal = *ctx_->cal;
    if (phase_ == Phase::Idle || phase_ == Phase::Precharging)
        return;

    double elapsed = t - lastActTime_;
    preRasViolated_ = elapsed < cal.tRasViolation;

    if (pending_.active) {
        if (elapsed >= cal.tSenseLatch) {
            resolveSense(t);
        } else {
            // Sensing aborted (QUAC's first ACT): the first row's
            // partially shared deviation stays on the bitlines.
            pending_.active = false;
            double share = 1.0 - std::exp(-std::max(elapsed, 0.0) / 2.0);
            preResidAmpMv_ = cal.singleRowKickMv * share;
            preResidBits_ = peekRow(firstActRow_);
            preResidDigest_ = fnvMixWords(fnvBasis, preResidBits_);
            saLatched_ = false;
        }
    }

    if (saLatched_) {
        // Restore all open rows, then snapshot the full-rail row
        // buffer as the residual a violated follow-up ACT would see.
        writeBackToOpenRows();
        preResidAmpMv_ = cal.railMv;
        preResidBits_ = sa_;
        preResidDigest_ = fnvMixWords(fnvBasis, preResidBits_);
    }

    preTime_ = t;
    phase_ = Phase::Precharging;
    saLatched_ = false;
}

std::vector<uint64_t>
Bank::read(uint32_t column, double t)
{
    const Geometry &geom = *ctx_->geom;
    std::vector<uint64_t> block(geom.cacheBlockBits / 64);
    readInto(column, block.data(), t);
    return block;
}

void
Bank::readInto(uint32_t column, uint64_t *dst, double t)
{
    const Geometry &geom = *ctx_->geom;
    if (column >= geom.cacheBlocksPerRow())
        fatal("RD column %u out of range", column);
    if (phase_ != Phase::Opening && phase_ != Phase::Open)
        fatal("RD on bank %u with no open row", bankId_);

    if (pending_.active)
        resolveSense(t);

    size_t words = geom.cacheBlockBits / 64;
    size_t start = static_cast<size_t>(column) * words;
    std::copy(sa_.begin() + start, sa_.begin() + start + words, dst);
}

void
Bank::write(uint32_t column, const std::vector<uint64_t> &data, double t)
{
    const Geometry &geom = *ctx_->geom;
    if (column >= geom.cacheBlocksPerRow())
        fatal("WR column %u out of range", column);
    if (phase_ != Phase::Opening && phase_ != Phase::Open)
        fatal("WR on bank %u with no open row", bankId_);
    size_t words = geom.cacheBlockBits / 64;
    if (data.size() != words)
        fatal("WR data size %zu != %zu words", data.size(), words);

    if (pending_.active)
        resolveSense(t);

    size_t start = static_cast<size_t>(column) * words;
    std::copy(data.begin(), data.end(), sa_.begin() + start);

    // Write through to all open rows so cell state stays coherent.
    for (uint32_t row : openRows_) {
        auto &storage = rowStorage(row);
        std::copy(data.begin(), data.end(), storage.begin() + start);
    }
}

void
Bank::resolveSense(double t)
{
    const Calibration &cal = *ctx_->cal;
    const Geometry &geom = *ctx_->geom;
    QUAC_ASSERT(pending_.active, "resolveSense without pending sensing");

    double develop = developFraction(cal, t - pending_.actTime);

    bool normal_single =
        pending_.contribs.size() == 1 &&
        pending_.residAmpMv <= cal.residThresholdMv &&
        pending_.contribs[0].scaleMv >= cal.singleRowShareMv * 0.999 &&
        develop >= 1.0;

    if (normal_single) {
        // Obeyed-timing activation: guardbanded sensing never fails.
        sa_ = peekRow(pending_.contribs[0].row);
    } else if (residRaceSaturated(develop)) {
        // Residual-dominated race (the TRNG's RowClone init copies):
        // resolved straight from the residual bits — no probability
        // row, no cache-key hashing, no draws.
    } else {
        uint64_t key = probCacheKey(pending_.contribs,
                                    !pending_.residBits.empty(),
                                    pending_.residDigest,
                                    pending_.residAmpMv, develop);
        auto it = probCache_.find(key);
        bool fresh = it == probCache_.end();
        if (fresh) {
            ++probCacheMisses_;
            if (probCache_.size() >= probCacheCapacity)
                evictColdEntries(probCache_);
            SenseRowPlan plan;
            computeProbabilities(pending_.contribs,
                                 pending_.residBits.empty()
                                     ? nullptr : &pending_.residBits,
                                 pending_.residAmpMv, develop,
                                 plan.probs);
            it = probCache_.emplace(key, std::move(plan)).first;
        } else {
            ++probCacheHits_;
            it->second.hot = true;
        }
        SenseRowPlan &plan = it->second;

        if (ctx_->fastSense) {
            // Sparse plans win even for one-shot setups: most rows
            // are degenerate-dominated, so classifying bitlines once
            // costs less than bulk-drawing uniforms for the whole
            // row (the dense pass is still used for metastable-rich
            // rows inside resolveRowFast).
            if (!plan.fastReady)
                buildSensePlan(plan);
            resolveRowFast(plan);
        } else {
            // Reference oracle: scalar per-bitline draws, as seeded.
            sa_.assign(geom.wordsPerRow(), 0);
            for (uint32_t b = 0; b < geom.bitlinesPerRow; ++b) {
                float p = plan.probs[b];
                bool bit;
                if (p >= 1.0f - degenerateProbability)
                    bit = true;
                else if (p <= degenerateProbability)
                    bit = false;
                else
                    bit = noise_.uniform() < p;
                if (bit)
                    sa_[b / 64] |= (uint64_t{1} << (b % 64));
            }
        }
    }

    saLatched_ = true;
    pending_.active = false;
    phase_ = Phase::Open;
    writeBackToOpenRows();
}

bool
Bank::residRaceSaturated(double develop)
{
    if (!ctx_->fastSense || !ctx_->saturationFastPath)
        return false;
    if (pending_.contribs.size() != 1 || pending_.residBits.empty())
        return false;

    const Calibration &cal = *ctx_->cal;
    const VariationModel &var = *ctx_->variation;
    const Geometry &geom = *ctx_->geom;
    const Contribution &contrib = pending_.contribs[0];
    uint32_t nbits = geom.bitlinesPerRow;

    double sigma = var.noiseSigmaMv(ctx_->temperatureC) +
                   cal.raceNoiseMv * (1.0 - develop);
    // Cheap pre-filter before touching the oracle rows: the bound
    // below only tightens, so a residual that cannot even clear
    // saturationZ sigma on its own never saturates.
    if (pending_.residAmpMv < saturationZ * sigma)
        return false;

    double max_off;
    double max_cap;
    if (ctx_->oracleCache) {
        offsetRow(contrib.row); // refresh/insert the cached entry
        max_off = offsetRowMaxAbs(contrib.row);
        // Evict here, not in capRow() (same single-caller contract
        // as computeProbabilities): no live cache pointers are held.
        if (capCache_.size() >= capCacheCapacity)
            evictColdEntries(capCache_);
        capRow(contrib.row);
        max_cap = capRowMaxAbs(contrib.row);
    } else {
        computeOffsetRow(contrib.row, offsetScratch_);
        max_off = 0.0;
        for (double off : offsetScratch_)
            max_off = std::max(max_off, std::fabs(off));
        computeCapRow(contrib.row, capScratch_);
        max_cap = 0.0;
        for (double cap : capScratch_)
            max_cap = std::max(max_cap, std::fabs(cap));
    }

    // Worst case over every bitline: the racing cells pull against
    // the residual with at most develop * |scale| * max|cap|, and the
    // SA offset shifts the threshold by at most max|offset|. If the
    // residual amplitude still clears saturationZ sigma, every
    // bitline's P(1) snaps to exactly its residual bit (the same
    // per-bitline guarantee probabilityOneBatch's snapping gives the
    // whole-row saturation path), so the resolve is the residual row.
    double margin = pending_.residAmpMv -
                    develop * std::fabs(contrib.scaleMv) * max_cap -
                    max_off;
    if (margin < saturationZ * sigma)
        return false;

    sa_ = pending_.residBits;
    sa_.resize(geom.wordsPerRow(), 0);
    // The probability resolvers leave bits past bitlinesPerRow zero;
    // a residual snapshot from pokeRowFill may have them set.
    if (uint32_t tail = nbits % 64)
        sa_[nbits / 64] &= (uint64_t{1} << tail) - 1;
    for (size_t w = (nbits + 63) / 64; w < sa_.size(); ++w)
        sa_[w] = 0;
    ++satRowFastPaths_;
    ++residRaceFastPaths_;
    return true;
}

void
Bank::writeBackToOpenRows()
{
    for (uint32_t row : openRows_)
        rowStorage(row) = sa_;
}

void
Bank::buildSensePlan(SenseRowPlan &plan) const
{
    const Geometry &geom = *ctx_->geom;
    uint32_t nbits = geom.bitlinesPerRow;

    plan.baseWords.assign(geom.wordsPerRow(), 0);
    plan.fuzzyIdx.clear();
    plan.fuzzyProbs.clear();
    for (uint32_t b = 0; b < nbits; ++b) {
        // Same classification thresholds as the scalar reference
        // loop, so fast and reference paths agree exactly on which
        // bitlines are deterministic.
        float p = plan.probs[b];
        if (p >= 1.0f - degenerateProbability)
            plan.baseWords[b / 64] |= (uint64_t{1} << (b % 64));
        else if (p > degenerateProbability) {
            plan.fuzzyIdx.push_back(b);
            plan.fuzzyProbs.push_back(p);
        }
    }
    plan.fastReady = true;
}

void
Bank::resolveRowDense(const std::vector<float> &probs)
{
    // Whole-row resolution: a row of bulk uniforms compared against
    // the probability row, result bits packed word-at-a-time. The
    // probabilities are snapped (probabilityOneBatch), so degenerate
    // bitlines resolve deterministically here too.
    const Geometry &geom = *ctx_->geom;
    uint32_t nbits = geom.bitlinesPerRow;
    uniformScratch_.resize(nbits);
    noise_.fillUniform(uniformScratch_.data(), nbits);
    sa_.resize(geom.wordsPerRow());
    resolveBitsBatch(uniformScratch_.data(), probs.data(), nbits,
                     sa_.data());
}

void
Bank::resolveRowFast(const SenseRowPlan &plan)
{
    const Geometry &geom = *ctx_->geom;
    uint32_t nbits = geom.bitlinesPerRow;
    size_t fuzzy = plan.fuzzyIdx.size();

    if (fuzzy * 4 >= nbits) {
        // Metastable-rich rows (tRCD/tRP regimes): the dense pass
        // beats indexing a long fuzzy list.
        resolveRowDense(plan.probs);
    } else {
        // Sparse rows (QUAC, RowClone): start from the deterministic
        // bits and draw only for the bitlines that can flip.
        sa_.assign(plan.baseWords.begin(), plan.baseWords.end());
        uniformScratch_.resize(fuzzy);
        noise_.fillUniform(uniformScratch_.data(), fuzzy);
        for (size_t j = 0; j < fuzzy; ++j) {
            if (uniformScratch_[j] < plan.fuzzyProbs[j]) {
                uint32_t b = plan.fuzzyIdx[j];
                sa_[b / 64] |= (uint64_t{1} << (b % 64));
            }
        }
    }
}

void
Bank::computeProbabilities(const std::vector<Contribution> &contribs,
                           const std::vector<uint64_t> *resid_bits,
                           double resid_amp_mv, double develop,
                           std::vector<float> &probs) const
{
    const Geometry &geom = *ctx_->geom;
    const Calibration &cal = *ctx_->cal;
    const VariationModel &var = *ctx_->variation;
    QUAC_ASSERT(!contribs.empty(), "sensing with no contributions");

    uint32_t nbits = geom.bitlinesPerRow;
    probs.resize(nbits);

    double sigma = var.noiseSigmaMv(ctx_->temperatureC) +
                   cal.raceNoiseMv * (1.0 - develop);

    // Segment-level systematics are defined by the first contributor.
    uint32_t row0 = contribs[0].row;

    // The per-bitline oracle factors (SA offsets, cell capacitances)
    // are cell-content independent; fetching them row-wise lets the
    // generation loop amortize the Philox draws even though changing
    // cell contents defeat the probability cache.
    const std::vector<double> *offset;
    if (ctx_->oracleCache) {
        offset = &offsetRow(row0);
    } else {
        computeOffsetRow(row0, offsetScratch_);
        offset = &offsetScratch_;
    }

    // Eviction may only run here, never inside capRow(): the loop
    // below holds a live pointer into the cache while capRow() may
    // insert further rows (insertion keeps entries stable, erasure
    // does not).
    if (ctx_->oracleCache && capCache_.size() >= capCacheCapacity)
        evictColdEntries(capCache_);

    // Structure-of-arrays accumulation: one contiguous pass per
    // contribution. The per-bitline addition order matches the seed's
    // scalar loop (contributions in order), so the deviations are
    // bit-identical to the reference formulation (multiplying by
    // constant ±1.0 signs is exact).
    devScratch_.assign(nbits, 0.0);
    double *dev = devScratch_.data();
    for (const Contribution &contrib : contribs) {
        const double *cap;
        if (ctx_->oracleCache) {
            cap = capRow(contrib.row).data();
        } else {
            computeCapRow(contrib.row, capScratch_);
            cap = capScratch_.data();
        }
        double scale = contrib.scaleMv;
        auto row_it = rows_.find(contrib.row);
        int constant = row_it == rows_.end()
                           ? -1
                           : constantRowSign(row_it->second, nbits);
        if (constant != 0) {
            // Uniform rows (unwritten, or the TRNG's all-0s/all-1s
            // init fills): a constant sign keeps the loop a pure
            // FMA pass, which vectorizes.
            double signed_scale = scale * (constant > 0 ? 1.0 : -1.0);
            for (uint32_t b = 0; b < nbits; ++b)
                dev[b] += signed_scale * cap[b];
        } else {
            const uint64_t *bits = row_it->second.data();
            for (uint32_t b = 0; b < nbits; ++b) {
                double sign =
                    ((bits[b / 64] >> (b % 64)) & 1) ? 1.0 : -1.0;
                dev[b] += scale * sign * cap[b];
            }
        }
    }
    for (uint32_t b = 0; b < nbits; ++b)
        dev[b] *= develop;
    if (resid_bits) {
        const uint64_t *rbits = resid_bits->data();
        int constant = constantRowSign(*resid_bits, nbits);
        if (constant != 0) {
            // Full-rail residuals of a constant source row.
            double amp = resid_amp_mv * (constant > 0 ? 1.0 : -1.0);
            for (uint32_t b = 0; b < nbits; ++b)
                dev[b] += amp;
        } else {
            for (uint32_t b = 0; b < nbits; ++b) {
                double rsign =
                    ((rbits[b / 64] >> (b % 64)) & 1) ? 1.0 : -1.0;
                dev[b] += resid_amp_mv * rsign;
            }
        }
    }

    if (ctx_->fastSense && ctx_->saturationFastPath) {
        // Saturation fast-path: if every bitline is >= saturationZ
        // sigma into the same tail, the Phi batch would snap the
        // whole row to exactly 0.0f / 1.0f anyway, so emit the
        // constant row directly. This is the steady state of the
        // TRNG's RowClone-init resolves, whose destination rows hold
        // last iteration's random bits and therefore miss the
        // probability cache every iteration.
        double max_abs;
        if (ctx_->oracleCache) {
            max_abs = offsetRowMaxAbs(row0);
        } else {
            max_abs = 0.0;
            const double *off = offset->data();
            for (uint32_t b = 0; b < nbits; ++b)
                max_abs = std::max(max_abs, std::fabs(off[b]));
        }
        // |dev| beyond this puts a bitline >= saturationZ sigma into
        // its tail for every possible offset of this row.
        double bound = saturationZ * sigma + max_abs;
        bool one_tail = dev[0] >= bound;
        if (one_tail || dev[0] <= -bound) {
            // Block-wise all-of test: a vectorizable compare-count
            // per block, bailing at the first non-saturated block so
            // metastable rows pay one block at most.
            bool saturated = true;
            constexpr uint32_t block = 512;
            for (uint32_t base = 0; base < nbits && saturated;
                 base += block) {
                uint32_t end = std::min(nbits, base + block);
                uint32_t bad = 0;
                if (one_tail) {
                    for (uint32_t b = base; b < end; ++b)
                        bad += dev[b] < bound;
                } else {
                    for (uint32_t b = base; b < end; ++b)
                        bad += dev[b] > -bound;
                }
                saturated = bad == 0;
            }
            if (saturated) {
                probs.assign(nbits, one_tail ? 1.0f : 0.0f);
                ++satRowFastPaths_;
                return;
            }
        }
    }

    if (ctx_->fastSense) {
        probabilityOneBatch(dev, offset->data(), sigma, probs.data(),
                            nbits);
    } else {
        const double *off = offset->data();
        for (uint32_t b = 0; b < nbits; ++b)
            probs[b] = static_cast<float>(
                probabilityOne(dev[b], off[b], sigma));
    }
}

void
Bank::computeOffsetRow(uint32_t row0, std::vector<double> &out) const
{
    const Geometry &geom = *ctx_->geom;
    const VariationModel &var = *ctx_->variation;

    uint32_t nbits = geom.bitlinesPerRow;
    out.resize(nbits);

    uint32_t segment = geom.segmentOfRow(row0);
    double seg_mean = var.segmentMeanMv(bankId_, segment);
    double spatial = var.spatialScale(bankId_, segment);
    double aging = var.agingScale(bankId_, segment, ctx_->ageDays);

    std::vector<double> chip_factor(geom.chipsPerRank);
    for (uint32_t chip = 0; chip < geom.chipsPerRank; ++chip)
        chip_factor[chip] = var.temperatureFactor(chip,
                                                  ctx_->temperatureC);

    // Bulk Philox fill of the raw SA offsets, then the scalings.
    var.saOffsetRowMv(bankId_, row0, nbits, out.data());

    uint32_t cb_bits = geom.cacheBlockBits;
    double col_shape = 0.0;
    for (uint32_t b = 0; b < nbits; ++b) {
        if (b % cb_bits == 0)
            col_shape = var.columnShape(b / cb_bits);
        out[b] = (out[b] + seg_mean) /
                 (spatial * col_shape * aging) *
                 chip_factor[geom.chipOfBitline(b)];
    }
}

const std::vector<double> &
Bank::offsetRow(uint32_t row0) const
{
    auto it = offsetCache_.find(row0);
    if (it != offsetCache_.end() &&
        it->second.temperatureC == ctx_->temperatureC &&
        it->second.ageDays == ctx_->ageDays) {
        it->second.hot = true;
        return it->second.offset;
    }
    if (offsetCache_.size() >= offsetCacheCapacity)
        evictColdEntries(offsetCache_);
    OffsetRowEntry entry;
    entry.temperatureC = ctx_->temperatureC;
    entry.ageDays = ctx_->ageDays;
    computeOffsetRow(row0, entry.offset);
    for (double offset : entry.offset)
        entry.maxAbsMv = std::max(entry.maxAbsMv, std::fabs(offset));
    return offsetCache_.insert_or_assign(row0, std::move(entry))
        .first->second.offset;
}

double
Bank::offsetRowMaxAbs(uint32_t row0) const
{
    auto it = offsetCache_.find(row0);
    QUAC_ASSERT(it != offsetCache_.end() &&
                it->second.temperatureC == ctx_->temperatureC &&
                it->second.ageDays == ctx_->ageDays,
                "offsetRowMaxAbs before offsetRow(%u)", row0);
    return it->second.maxAbsMv;
}

void
Bank::computeCapRow(uint32_t row, std::vector<double> &out) const
{
    const Geometry &geom = *ctx_->geom;
    const VariationModel &var = *ctx_->variation;
    out.resize(geom.bitlinesPerRow);
    var.cellCapRow(bankId_, row, geom.bitlinesPerRow, out.data());
}

const std::vector<double> &
Bank::capRow(uint32_t row) const
{
    // No eviction here: computeProbabilities may still hold a
    // pointer into the cache when it calls this for the next
    // contribution; it evicts once, before its accumulation loop.
    auto it = capCache_.find(row);
    if (it == capCache_.end()) {
        CapRowEntry entry;
        computeCapRow(row, entry.caps);
        for (double cap : entry.caps)
            entry.maxAbs = std::max(entry.maxAbs, std::fabs(cap));
        it = capCache_.emplace(row, std::move(entry)).first;
    } else {
        it->second.hot = true;
    }
    return it->second.caps;
}

double
Bank::capRowMaxAbs(uint32_t row) const
{
    auto it = capCache_.find(row);
    QUAC_ASSERT(it != capCache_.end(),
                "capRowMaxAbs before capRow(%u)", row);
    return it->second.maxAbs;
}

uint64_t
Bank::probCacheKey(const std::vector<Contribution> &contribs,
                   bool has_resid, uint64_t resid_digest,
                   double resid_amp_mv, double develop) const
{
    uint64_t hash = fnvBasis;
    hash = fnvMix(hash, ctx_->temperatureC);
    hash = fnvMix(hash, ctx_->ageDays);
    hash = fnvMix(hash, develop);
    hash = fnvMix(hash, resid_amp_mv);
    for (const Contribution &contrib : contribs) {
        hash = fnvMix(hash, contrib.row);
        hash = fnvMix(hash, contrib.scaleMv);
        auto it = rows_.find(contrib.row);
        if (it != rows_.end()) {
            // Row contents enter through the cached digest: one
            // 64-bit mix per row here instead of a word-wise pass,
            // re-hashed only after the row actually changed.
            hash = fnvMix(hash, uint8_t{1});
            hash = fnvMix(hash, rowDigest(contrib.row, it->second));
        } else {
            hash = fnvMix(hash, uint8_t{0});
        }
    }
    if (has_resid) {
        hash = fnvMix(hash, uint8_t{2});
        hash = fnvMix(hash, resid_digest);
    }
    return hash;
}

bool
Bank::peekCell(uint32_t row, uint32_t bitline) const
{
    QUAC_ASSERT(row < ctx_->geom->rowsPerBank &&
                bitline < ctx_->geom->bitlinesPerRow,
                "peek out of range");
    return cellValue(row, bitline);
}

void
Bank::pokeCell(uint32_t row, uint32_t bitline, bool value)
{
    QUAC_ASSERT(row < ctx_->geom->rowsPerBank &&
                bitline < ctx_->geom->bitlinesPerRow,
                "poke out of range");
    auto &storage = rowStorage(row);
    uint64_t mask = uint64_t{1} << (bitline % 64);
    if (value)
        storage[bitline / 64] |= mask;
    else
        storage[bitline / 64] &= ~mask;
}

void
Bank::pokeRowFill(uint32_t row, bool value)
{
    QUAC_ASSERT(row < ctx_->geom->rowsPerBank, "poke row out of range");
    rowStorage(row).assign(ctx_->geom->wordsPerRow(),
                           value ? ~uint64_t{0} : uint64_t{0});
}

void
Bank::pokeSegmentPattern(uint32_t segment, uint8_t pattern)
{
    QUAC_ASSERT(segment < ctx_->geom->segmentsPerBank(),
                "segment out of range");
    uint32_t base = ctx_->geom->firstRowOfSegment(segment);
    for (uint32_t i = 0; i < Geometry::rowsPerSegment; ++i)
        pokeRowFill(base + i, (pattern >> i) & 1);
}

std::vector<uint64_t>
Bank::peekRow(uint32_t row) const
{
    auto it = rows_.find(row);
    if (it != rows_.end())
        return it->second;
    return std::vector<uint64_t>(ctx_->geom->wordsPerRow(), 0);
}

void
Bank::dropRow(uint32_t row)
{
    rows_.erase(row);
    rowDigests_.erase(row);
}

std::vector<float>
Bank::quacProbabilities(uint32_t segment, unsigned first_offset,
                        double t1_ns, double t2_ns) const
{
    const Geometry &geom = *ctx_->geom;
    const Calibration &cal = *ctx_->cal;
    QUAC_ASSERT(segment < geom.segmentsPerBank(), "segment out of range");

    QuacWeights weights = quacWeights(cal, first_offset, t1_ns, t2_ns);
    std::vector<Contribution> contribs;
    uint32_t base = geom.firstRowOfSegment(segment);
    for (unsigned i = 0; i < Geometry::rowsPerSegment; ++i)
        contribs.push_back({base + i, weights.w[i] * cal.vShareMv});

    std::vector<float> probs;
    computeProbabilities(contribs, nullptr, 0.0, 1.0, probs);
    return probs;
}

std::vector<float>
Bank::earlyReadProbabilities(uint32_t row, double elapsed_ns) const
{
    const Calibration &cal = *ctx_->cal;
    std::vector<Contribution> contribs = {{row, cal.singleRowShareMv}};
    std::vector<float> probs;
    computeProbabilities(contribs, nullptr, 0.0,
                         developFraction(cal, elapsed_ns), probs);
    return probs;
}

std::vector<float>
Bank::racedActivateProbabilities(uint32_t row,
                                 const std::vector<uint64_t> &resid_bits,
                                 double gap_ns) const
{
    const Calibration &cal = *ctx_->cal;
    double amp = cal.railMv * std::exp(-gap_ns / cal.tauEqNs);
    std::vector<Contribution> contribs = {{row, cal.singleRowKickMv}};
    std::vector<float> probs;
    computeProbabilities(contribs, &resid_bits, amp, 1.0, probs);
    return probs;
}

} // namespace quac::dram

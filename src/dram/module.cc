#include "dram/module.hh"

#include "common/error.hh"

namespace quac::dram
{

DramModule::DramModule(ModuleSpec spec)
    : spec_(std::move(spec)),
      variation_(spec_.geometry, spec_.calibration, spec_.seed,
                 spec_.entropyScale, spec_.waveScale,
                 spec_.agingDrift30d)
{
    ctx_.geom = &spec_.geometry;
    ctx_.cal = &spec_.calibration;
    ctx_.variation = &variation_;
    ctx_.temperatureC = spec_.temperatureC;
    ctx_.ageDays = spec_.ageDays;
    ctx_.oracleCache = spec_.oracleCache;
    ctx_.fastSense = spec_.fastSense;
    ctx_.saturationFastPath = spec_.saturationFastPath;

    banks_.reserve(spec_.geometry.banks);
    uint64_t sm = spec_.seed ^ 0x5bd1e995b1e6a5c3ULL;
    for (uint32_t i = 0; i < spec_.geometry.banks; ++i)
        banks_.emplace_back(&ctx_, i, splitmix64(sm));
}

Bank &
DramModule::bank(uint32_t index)
{
    if (index >= banks_.size())
        fatal("bank index %u out of range", index);
    return banks_[index];
}

const Bank &
DramModule::bank(uint32_t index) const
{
    if (index >= banks_.size())
        fatal("bank index %u out of range", index);
    return banks_[index];
}

void
DramModule::setTemperature(double temperature_c)
{
    if (temperature_c < -40.0 || temperature_c > 125.0)
        fatal("temperature %.1f degC outside operating range",
              temperature_c);
    ctx_.temperatureC = temperature_c;
}

void
DramModule::setAgeDays(double age_days)
{
    if (age_days < 0.0)
        fatal("negative device age");
    ctx_.ageDays = age_days;
}

void
DramModule::act(uint32_t bank_idx, uint32_t row, double t)
{
    bank(bank_idx).activate(row, t);
}

void
DramModule::pre(uint32_t bank_idx, double t)
{
    bank(bank_idx).precharge(t);
}

std::vector<uint64_t>
DramModule::readBlock(uint32_t bank_idx, uint32_t column, double t)
{
    return bank(bank_idx).read(column, t);
}

void
DramModule::readBlockInto(uint32_t bank_idx, uint32_t column,
                          uint64_t *dst, double t)
{
    bank(bank_idx).readInto(column, dst, t);
}

void
DramModule::writeBlock(uint32_t bank_idx, uint32_t column,
                       const std::vector<uint64_t> &data, double t)
{
    bank(bank_idx).write(column, data, t);
}

void
DramModule::issue(const Command &cmd)
{
    switch (cmd.type) {
      case CommandType::ACT:
        act(cmd.bank, cmd.row, cmd.time);
        break;
      case CommandType::PRE:
        pre(cmd.bank, cmd.time);
        break;
      case CommandType::RD:
        readBlock(cmd.bank, cmd.column, cmd.time);
        break;
      case CommandType::WR:
        fatal("WR via issue() needs data; use writeBlock()");
    }
}

} // namespace quac::dram

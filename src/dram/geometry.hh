/**
 * @file
 * DRAM organization parameters (paper Section 2.1).
 *
 * A module is one rank of eight x8 chips. Rows striped across the
 * chips form a 64 Kbit logical row at rank granularity (the paper's
 * "DRAM row"); four consecutive rows sharing a master wordline form a
 * *segment*; 512-bit groups of bitlines form *cache blocks*.
 */

#ifndef QUAC_DRAM_GEOMETRY_HH
#define QUAC_DRAM_GEOMETRY_HH

#include <cstdint>

namespace quac::dram
{

/** Static geometry of a simulated DDR4 module (one rank). */
struct Geometry
{
    /** Number of banks in the rank. */
    uint32_t banks = 16;
    /** Number of bank groups (DDR4 x8: 4). */
    uint32_t bankGroups = 4;
    /** Rows per bank. */
    uint32_t rowsPerBank = 32768;
    /** Bitlines (= columns of cells) per logical rank-level row. */
    uint32_t bitlinesPerRow = 65536;
    /** Rows per subarray (sense-amplifier stripe pitch). */
    uint32_t rowsPerSubarray = 512;
    /** Bits per cache block (64 B transfer granularity). */
    uint32_t cacheBlockBits = 512;
    /** x8 chips per rank. */
    uint32_t chipsPerRank = 8;

    /** Rows in a QUAC segment (fixed by the 2-LSB decoder design). */
    static constexpr uint32_t rowsPerSegment = 4;

    /** Number of segments per bank. */
    uint32_t segmentsPerBank() const { return rowsPerBank / rowsPerSegment; }

    /** Number of cache blocks per row. */
    uint32_t cacheBlocksPerRow() const
    {
        return bitlinesPerRow / cacheBlockBits;
    }

    /** 64-bit words needed to hold one row's bits. */
    uint32_t wordsPerRow() const { return (bitlinesPerRow + 63) / 64; }

    /** Segment containing @p row. */
    uint32_t segmentOfRow(uint32_t row) const { return row / rowsPerSegment; }

    /** First row of @p segment. */
    uint32_t firstRowOfSegment(uint32_t segment) const
    {
        return segment * rowsPerSegment;
    }

    /** Subarray containing @p row. */
    uint32_t subarrayOfRow(uint32_t row) const { return row / rowsPerSubarray; }

    /** Chip that drives @p bitline (byte-interleaved across chips). */
    uint32_t chipOfBitline(uint32_t bitline) const
    {
        return (bitline / 8) % chipsPerRank;
    }

    /** Bank group of @p bank. */
    uint32_t bankGroupOf(uint32_t bank) const { return bank % bankGroups; }

    /**
     * Full paper-scale geometry: 8 Gb-class chips, 8K segments per
     * bank, 64K bitlines per rank row (footnote 7 of the paper).
     */
    static Geometry
    paperScale()
    {
        return Geometry{};
    }

    /**
     * Reduced geometry for unit tests: 64 segments per bank, 8 cache
     * blocks per row. Preserves all structural relationships.
     */
    static Geometry
    testScale()
    {
        Geometry g;
        g.banks = 8;
        g.bankGroups = 4;
        g.rowsPerBank = 256;
        g.bitlinesPerRow = 4096;
        g.rowsPerSubarray = 64;
        return g;
    }
};

} // namespace quac::dram

#endif // QUAC_DRAM_GEOMETRY_HH

/**
 * @file
 * Per-sense-amplifier bitstream sampler (paper Section 6.2).
 *
 * The paper collects 1 Mbit from each individual sense amplifier by
 * repeating QUAC a million times. In the device model, thermal noise
 * is drawn independently per sensing event, so the bits a given
 * bitline produces across identically-initialized QUAC operations are
 * iid Bernoulli(p) with p fixed by the variation oracle. This sampler
 * exploits that to synthesize per-SA streams directly from p instead
 * of replaying a million command sequences; the equivalence to the
 * command path is asserted by BankTest.EmpiricalFrequencyTracksProbability.
 */

#ifndef QUAC_CORE_SA_STREAM_HH
#define QUAC_CORE_SA_STREAM_HH

#include <cstdint>
#include <vector>

#include "common/bitstream.hh"
#include "common/rng.hh"
#include "dram/module.hh"

namespace quac::core
{

/** Generates per-bitline streams for one (bank, segment, pattern). */
class SaStreamSampler
{
  public:
    /**
     * @param module the simulated module.
     * @param bank bank index.
     * @param segment segment under QUAC.
     * @param pattern init pattern nibble.
     * @param noise_seed seed for the synthetic noise stream.
     */
    SaStreamSampler(const dram::DramModule &module, uint32_t bank,
                    uint32_t segment, uint8_t pattern,
                    uint64_t noise_seed = 1);

    /** P(read 1) of a bitline under this QUAC configuration. */
    double probability(uint32_t bitline) const;

    /**
     * Indices of the @p k bitlines whose probability is closest to
     * 0.5 (the most metastable sense amplifiers).
     */
    std::vector<uint32_t> topMetastableBitlines(size_t k) const;

    /** Sample @p nbits iid bits from one bitline's distribution. */
    Bitstream sample(uint32_t bitline, size_t nbits);

    /**
     * Interleaved stream across several bitlines (one bit from each
     * per QUAC iteration, mirroring how the experiment reads them).
     */
    Bitstream sampleInterleaved(const std::vector<uint32_t> &bitlines,
                                size_t nbits);

  private:
    std::vector<float> probs_;
    Xoshiro256pp rng_;
};

} // namespace quac::core

#endif // QUAC_CORE_SA_STREAM_HH

#include "core/trng.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/error.hh"
#include "common/parallel.hh"
#include "crypto/sha256.hh"

namespace quac::core
{

namespace
{

/**
 * Absorb @p nwords sense-amplifier words into a hasher as
 * little-endian bytes (the wire order of the data bus), without an
 * intermediate byte vector.
 */
void
shaUpdateWords(Sha256 &sha, const uint64_t *words, size_t nwords)
{
    if constexpr (std::endian::native == std::endian::little) {
        sha.update(reinterpret_cast<const uint8_t *>(words),
                   nwords * 8);
    } else {
        for (size_t w = 0; w < nwords; ++w) {
            uint8_t bytes[8];
            for (int b = 0; b < 8; ++b)
                bytes[b] = static_cast<uint8_t>(words[w] >> (8 * b));
            sha.update(bytes, sizeof(bytes));
        }
    }
}

/** Copy @p nwords words into @p dst as little-endian bytes. */
void
copyWordBytes(uint8_t *dst, const uint64_t *words, size_t nwords)
{
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(dst, words, nwords * 8);
    } else {
        for (size_t w = 0; w < nwords; ++w) {
            for (int b = 0; b < 8; ++b)
                *dst++ = static_cast<uint8_t>(words[w] >> (8 * b));
        }
    }
}

} // anonymous namespace

std::vector<uint8_t>
Trng::generate(size_t len)
{
    std::vector<uint8_t> out(len);
    fill(out.data(), len);
    return out;
}

Bitstream
Trng::generateBits(size_t nbits)
{
    std::vector<uint8_t> bytes = generate((nbits + 7) / 8);
    Bitstream bits;
    bits.appendBytes(bytes.data(), nbits);
    return bits;
}

std::array<uint8_t, 32>
Trng::random256()
{
    std::array<uint8_t, 32> out;
    fill(out.data(), out.size());
    return out;
}

QuacTrng::QuacTrng(dram::DramModule &module, QuacTrngConfig cfg)
    : module_(module), cfg_(std::move(cfg))
{
    const dram::Geometry &geom = module_.geometry();
    if (cfg_.banks.empty())
        fatal("QuacTrng needs at least one bank");
    for (size_t i = 0; i < cfg_.banks.size(); ++i) {
        if (cfg_.banks[i] >= geom.banks)
            fatal("bank %u out of range", cfg_.banks[i]);
        for (size_t j = i + 1; j < cfg_.banks.size(); ++j) {
            if (cfg_.banks[i] == cfg_.banks[j]) {
                fatal("bank %u listed twice; each plan must own its "
                      "bank's command stream",
                      cfg_.banks[i]);
            }
        }
    }
}

void
QuacTrng::setup()
{
    const dram::Geometry &geom = module_.geometry();
    Characterizer characterizer(module_);
    plans_.clear();

    for (uint32_t bank : cfg_.banks) {
        CharacterizerConfig ccfg;
        ccfg.bank = bank;
        ccfg.pattern = cfg_.pattern;
        ccfg.temperatureC = module_.temperature();
        ccfg.ageDays = module_.ageDays();
        ccfg.segmentStride = cfg_.characterizeStride;
        ccfg.threads = cfg_.threads;

        BankPlan plan;
        plan.bank = bank;
        SegmentEntropy best = characterizer.bestSegment(ccfg);
        plan.segment = best.segment;
        plan.segmentEntropy = best.entropy;

        // Reserve the two bulk-initialization rows in a neighbouring
        // segment of the same subarray (RowClone cannot cross
        // subarrays, and same-segment ACT pairs would QUAC).
        uint32_t base = geom.firstRowOfSegment(plan.segment);
        uint32_t neighbour;
        if (plan.segment > 0 &&
            geom.subarrayOfRow(base - 1) == geom.subarrayOfRow(base)) {
            neighbour = base - dram::Geometry::rowsPerSegment;
        } else {
            neighbour = base + dram::Geometry::rowsPerSegment;
            QUAC_ASSERT(geom.subarrayOfRow(neighbour) ==
                        geom.subarrayOfRow(base),
                        "no same-subarray neighbour for segment %u",
                        plan.segment);
        }
        plan.zeroRow = neighbour;
        plan.oneRow = neighbour + 1;

        // SHA input block column ranges at the current temperature.
        auto cb_entropy = characterizer.cacheBlockEntropies(
            bank, plan.segment, cfg_.pattern, module_.temperature(),
            module_.ageDays());
        plan.ranges = sibRanges(cb_entropy, cfg_.sibEntropyTarget);
        if (plan.ranges.empty()) {
            fatal("segment %u of bank %u cannot supply %g bits of "
                  "entropy per block",
                  plan.segment, bank, cfg_.sibEntropyTarget);
        }

        plans_.push_back(std::move(plan));
    }

    // Rebuild the per-plan command cursors, synchronized past every
    // command issued so far so per-bank gaps stay non-negative after
    // a recharacterization.
    for (const softmc::SoftMcHost &host : hosts_)
        epoch_ = std::max(epoch_, host.now());
    hosts_.clear();
    hosts_.reserve(plans_.size());
    scratch_.assign(plans_.size(),
                    std::vector<uint64_t>(geom.wordsPerRow()));
    planBytes_.clear();
    planOffsets_.clear();

    size_t offset = 0;
    const size_t block_bytes = geom.cacheBlockBits / 8;
    for (const BankPlan &plan : plans_) {
        hosts_.emplace_back(module_);
        softmc::SoftMcHost &host = hosts_.back();
        host.wait(epoch_);

        // Fill the reserved rows once; RowClone re-reads them every
        // iteration without consuming data-bus bandwidth.
        host.writeRowFill(plan.bank, plan.zeroRow, false);
        host.writeRowFill(plan.bank, plan.oneRow, true);

        size_t bytes = 0;
        if (cfg_.useSha) {
            bytes = plan.ranges.size() * 32;
        } else {
            for (const ColumnRange &range : plan.ranges) {
                bytes += (range.endColumn - range.beginColumn) *
                         block_bytes;
            }
        }
        planBytes_.push_back(bytes);
        planOffsets_.push_back(offset);
        offset += bytes;
    }
    ready_ = true;
}

void
QuacTrng::recharacterize()
{
    setup();
}

void
QuacTrng::applyColumnRanges(
    const std::vector<std::vector<ColumnRange>> &per_plan)
{
    if (!ready_)
        setup();
    if (per_plan.size() != plans_.size()) {
        fatal("applyColumnRanges: %zu range sets for %zu plans",
              per_plan.size(), plans_.size());
    }
    const dram::Geometry &geom = module_.geometry();
    const size_t block_bytes = geom.cacheBlockBits / 8;
    for (size_t i = 0; i < per_plan.size(); ++i) {
        if (per_plan[i].empty())
            fatal("applyColumnRanges: plan %zu got no ranges", i);
        for (const ColumnRange &range : per_plan[i]) {
            if (range.beginColumn >= range.endColumn ||
                range.endColumn > geom.cacheBlocksPerRow()) {
                fatal("applyColumnRanges: plan %zu range [%u, %u) "
                      "outside the %u-block row",
                      i, range.beginColumn, range.endColumn,
                      geom.cacheBlocksPerRow());
            }
        }
    }
    size_t offset = 0;
    for (size_t i = 0; i < plans_.size(); ++i) {
        plans_[i].ranges = per_plan[i];
        size_t bytes = 0;
        if (cfg_.useSha) {
            bytes = per_plan[i].size() * 32;
        } else {
            for (const ColumnRange &range : per_plan[i]) {
                bytes += (range.endColumn - range.beginColumn) *
                         block_bytes;
            }
        }
        planBytes_[i] = bytes;
        planOffsets_[i] = offset;
        offset += bytes;
    }
    // Drop any partial iteration generated under the old calibration:
    // it spans the switch, and its geometry no longer matches.
    buffer_.clear();
    bufferHead_ = 0;
}

size_t
QuacTrng::bitsPerIteration() const
{
    size_t sib = 0;
    for (const BankPlan &plan : plans_)
        sib += plan.ranges.size();
    return sib * 256;
}

size_t
QuacTrng::bytesPerIteration() const
{
    size_t bytes = 0;
    for (size_t plan_bytes : planBytes_)
        bytes += plan_bytes;
    return bytes;
}

size_t
QuacTrng::preferredChunkBytes()
{
    if (!ready_)
        setup();
    return bytesPerIteration();
}

void
QuacTrng::initSegment(const BankPlan &plan, softmc::SoftMcHost &host)
{
    const dram::Geometry &geom = module_.geometry();
    uint32_t base = geom.firstRowOfSegment(plan.segment);
    for (uint32_t i = 0; i < dram::Geometry::rowsPerSegment; ++i) {
        bool one = (cfg_.pattern >> i) & 1;
        host.rowCloneCopy(plan.bank, one ? plan.oneRow : plan.zeroRow,
                          base + i);
    }
}

size_t
QuacTrng::readPlanRaw(size_t plan_index)
{
    const BankPlan &plan = plans_[plan_index];
    softmc::SoftMcHost &host = hosts_[plan_index];
    const size_t block_words = module_.geometry().cacheBlockBits / 64;

    initSegment(plan, host);
    host.quac(plan.bank, plan.segment);

    // Every SIB range lands back to back in the scratch row (their
    // total width never exceeds one row); hashing happens after the
    // bank is closed, which leaves the command stream unchanged (the
    // cursor only advances on commands and waits, never on hashing).
    uint64_t *words = scratch_[plan_index].data();
    size_t offset = 0;
    for (const ColumnRange &range : plan.ranges) {
        size_t nwords =
            (range.endColumn - range.beginColumn) * block_words;
        host.readColumns(plan.bank, range.beginColumn, range.endColumn,
                         words + offset);
        offset += nwords;
    }
    host.preObeyed(plan.bank);
    return offset;
}

void
QuacTrng::hashPlanInto(size_t plan_index, uint8_t *out)
{
    const BankPlan &plan = plans_[plan_index];
    const size_t block_words = module_.geometry().cacheBlockBits / 64;
    const uint64_t *words = scratch_[plan_index].data();

    if constexpr (std::endian::native == std::endian::little) {
        // The scratch words are already in wire (little-endian byte)
        // order: hash the plan's SIBs as one interleaved batch.
        std::array<Sha256::Job, 8> jobs;
        std::array<Sha256::Digest, 8> digests;
        size_t offset = 0;
        size_t done = 0;
        while (done < plan.ranges.size()) {
            size_t batch =
                std::min(jobs.size(), plan.ranges.size() - done);
            for (size_t j = 0; j < batch; ++j) {
                const ColumnRange &range = plan.ranges[done + j];
                size_t nwords =
                    (range.endColumn - range.beginColumn) *
                    block_words;
                jobs[j] = {reinterpret_cast<const uint8_t *>(words) +
                               offset * 8,
                           nwords * 8};
                offset += nwords;
            }
            Sha256::hashBatch(jobs.data(), batch, digests.data());
            for (size_t j = 0; j < batch; ++j) {
                std::memcpy(out, digests[j].data(),
                            digests[j].size());
                out += digests[j].size();
            }
            done += batch;
        }
    } else {
        for (const ColumnRange &range : plan.ranges) {
            size_t nwords =
                (range.endColumn - range.beginColumn) * block_words;
            Sha256 sha;
            shaUpdateWords(sha, words, nwords);
            words += nwords;
            Sha256::Digest digest = sha.finish();
            std::memcpy(out, digest.data(), digest.size());
            out += digest.size();
        }
    }
}

void
QuacTrng::executePlan(size_t plan_index, uint8_t *out)
{
    size_t nwords = readPlanRaw(plan_index);
    if (cfg_.useSha) {
        hashPlanInto(plan_index, out);
    } else {
        copyWordBytes(out, scratch_[plan_index].data(), nwords);
    }
}

void
QuacTrng::runIterationsInto(uint8_t *out, size_t count)
{
    const size_t iter_bytes = bytesPerIteration();
    if (cfg_.parallelBanks && plans_.size() > 1) {
        parallelFor(0, plans_.size(), [&](size_t i) {
            for (size_t k = 0; k < count; ++k)
                executePlan(i, out + k * iter_bytes + planOffsets_[i]);
        }, cfg_.bankThreads);
    } else if (cfg_.useSha && plans_.size() > 1 &&
               std::endian::native == std::endian::little) {
        // Serial pipeline: drive every bank's commands first, then
        // hash ALL the iteration's SIBs as one batch, so the
        // interleaved message schedule gets the four banks' blocks
        // as its four lanes.
        const size_t block_words =
            module_.geometry().cacheBlockBits / 64;
        std::vector<Sha256::Job> jobs;
        std::vector<Sha256::Digest> digests;
        std::vector<uint8_t *> dests;
        for (size_t k = 0; k < count; ++k) {
            jobs.clear();
            dests.clear();
            for (size_t i = 0; i < plans_.size(); ++i) {
                readPlanRaw(i);
                const uint8_t *bytes =
                    reinterpret_cast<const uint8_t *>(
                        scratch_[i].data());
                uint8_t *dst =
                    out + k * iter_bytes + planOffsets_[i];
                for (const ColumnRange &range : plans_[i].ranges) {
                    size_t nbytes = (range.endColumn -
                                     range.beginColumn) *
                                    block_words * 8;
                    jobs.push_back({bytes, nbytes});
                    dests.push_back(dst);
                    bytes += nbytes;
                    dst += 32;
                }
            }
            digests.resize(jobs.size());
            Sha256::hashBatch(jobs.data(), jobs.size(),
                              digests.data());
            for (size_t j = 0; j < jobs.size(); ++j)
                std::memcpy(dests[j], digests[j].data(), 32);
        }
    } else {
        for (size_t k = 0; k < count; ++k) {
            for (size_t i = 0; i < plans_.size(); ++i)
                executePlan(i, out + k * iter_bytes + planOffsets_[i]);
        }
    }
    iterations_ += count;
}

void
QuacTrng::runIteration()
{
    buffer_.resize(bytesPerIteration());
    bufferHead_ = 0;
    runIterationsInto(buffer_.data(), 1);
}

void
QuacTrng::fill(uint8_t *out, size_t len)
{
    if (!ready_)
        setup();
    const size_t iter_bytes = bytesPerIteration();
    QUAC_ASSERT(iter_bytes > 0, "setup produced no output ranges");

    size_t produced = 0;
    while (produced < len) {
        size_t available = buffer_.size() - bufferHead_;
        if (available > 0) {
            size_t take = std::min(available, len - produced);
            std::memcpy(out + produced, buffer_.data() + bufferHead_,
                        take);
            bufferHead_ += take;
            produced += take;
        } else if (len - produced >= iter_bytes) {
            // Whole iterations go straight into the caller's buffer,
            // skipping the staging copy entirely; batching them into
            // one parallel region amortizes thread startup.
            size_t whole = (len - produced) / iter_bytes;
            runIterationsInto(out + produced, whole);
            produced += whole * iter_bytes;
        } else {
            runIteration();
        }
    }
}

Bitstream
QuacTrng::rawIteration(size_t plan_index)
{
    if (!ready_)
        setup();
    QUAC_ASSERT(plan_index < plans_.size(), "plan %zu", plan_index);
    const BankPlan &plan = plans_[plan_index];
    softmc::SoftMcHost &host = hosts_[plan_index];
    const dram::Geometry &geom = module_.geometry();

    initSegment(plan, host);
    host.quac(plan.bank, plan.segment);

    uint64_t *words = scratch_[plan_index].data();
    host.readColumns(plan.bank, 0, geom.cacheBlocksPerRow(), words);
    host.preObeyed(plan.bank);
    ++iterations_;

    Bitstream raw;
    raw.appendWords(words,
                    static_cast<size_t>(geom.cacheBlocksPerRow()) *
                        geom.cacheBlockBits);
    return raw;
}

} // namespace quac::core

#include "core/trng.hh"

#include <algorithm>

#include "common/error.hh"
#include "crypto/sha256.hh"

namespace quac::core
{

std::vector<uint8_t>
Trng::generate(size_t len)
{
    std::vector<uint8_t> out(len);
    fill(out.data(), len);
    return out;
}

Bitstream
Trng::generateBits(size_t nbits)
{
    std::vector<uint8_t> bytes = generate((nbits + 7) / 8);
    Bitstream bits;
    for (size_t i = 0; i < nbits; ++i)
        bits.append((bytes[i / 8] >> (i % 8)) & 1);
    return bits;
}

std::array<uint8_t, 32>
Trng::random256()
{
    std::array<uint8_t, 32> out;
    fill(out.data(), out.size());
    return out;
}

QuacTrng::QuacTrng(dram::DramModule &module, QuacTrngConfig cfg)
    : module_(module), host_(module), cfg_(std::move(cfg))
{
    const dram::Geometry &geom = module_.geometry();
    if (cfg_.banks.empty())
        fatal("QuacTrng needs at least one bank");
    for (uint32_t bank : cfg_.banks) {
        if (bank >= geom.banks)
            fatal("bank %u out of range", bank);
    }
}

void
QuacTrng::setup()
{
    const dram::Geometry &geom = module_.geometry();
    Characterizer characterizer(module_);
    plans_.clear();

    for (uint32_t bank : cfg_.banks) {
        CharacterizerConfig ccfg;
        ccfg.bank = bank;
        ccfg.pattern = cfg_.pattern;
        ccfg.temperatureC = module_.temperature();
        ccfg.ageDays = module_.ageDays();
        ccfg.segmentStride = cfg_.characterizeStride;
        ccfg.threads = cfg_.threads;

        BankPlan plan;
        plan.bank = bank;
        SegmentEntropy best = characterizer.bestSegment(ccfg);
        plan.segment = best.segment;
        plan.segmentEntropy = best.entropy;

        // Reserve the two bulk-initialization rows in a neighbouring
        // segment of the same subarray (RowClone cannot cross
        // subarrays, and same-segment ACT pairs would QUAC).
        uint32_t base = geom.firstRowOfSegment(plan.segment);
        uint32_t neighbour;
        if (plan.segment > 0 &&
            geom.subarrayOfRow(base - 1) == geom.subarrayOfRow(base)) {
            neighbour = base - dram::Geometry::rowsPerSegment;
        } else {
            neighbour = base + dram::Geometry::rowsPerSegment;
            QUAC_ASSERT(geom.subarrayOfRow(neighbour) ==
                        geom.subarrayOfRow(base),
                        "no same-subarray neighbour for segment %u",
                        plan.segment);
        }
        plan.zeroRow = neighbour;
        plan.oneRow = neighbour + 1;

        // SHA input block column ranges at the current temperature.
        auto cb_entropy = characterizer.cacheBlockEntropies(
            bank, plan.segment, cfg_.pattern, module_.temperature(),
            module_.ageDays());
        plan.ranges = sibRanges(cb_entropy, cfg_.sibEntropyTarget);
        if (plan.ranges.empty()) {
            fatal("segment %u of bank %u cannot supply %g bits of "
                  "entropy per block",
                  plan.segment, bank, cfg_.sibEntropyTarget);
        }

        // Fill the reserved rows once; RowClone re-reads them every
        // iteration without consuming data-bus bandwidth.
        host_.writeRowFill(bank, plan.zeroRow, false);
        host_.writeRowFill(bank, plan.oneRow, true);

        plans_.push_back(std::move(plan));
    }
    ready_ = true;
}

void
QuacTrng::recharacterize()
{
    setup();
}

size_t
QuacTrng::bitsPerIteration() const
{
    size_t sib = 0;
    for (const BankPlan &plan : plans_)
        sib += plan.ranges.size();
    return sib * 256;
}

void
QuacTrng::initSegment(const BankPlan &plan)
{
    const dram::Geometry &geom = module_.geometry();
    uint32_t base = geom.firstRowOfSegment(plan.segment);
    for (uint32_t i = 0; i < dram::Geometry::rowsPerSegment; ++i) {
        bool one = (cfg_.pattern >> i) & 1;
        host_.rowCloneCopy(plan.bank, one ? plan.oneRow : plan.zeroRow,
                           base + i);
    }
}

void
QuacTrng::runIteration()
{
    const dram::TimingParams &timing = host_.timing();
    for (const BankPlan &plan : plans_) {
        initSegment(plan);
        host_.quac(plan.bank, plan.segment);

        for (const ColumnRange &range : plan.ranges) {
            std::vector<uint8_t> raw;
            raw.reserve((range.endColumn - range.beginColumn) *
                        module_.geometry().cacheBlockBits / 8);
            for (uint32_t col = range.beginColumn;
                 col < range.endColumn; ++col) {
                std::vector<uint64_t> block = host_.rd(plan.bank, col);
                host_.wait(timing.tCCD_L);
                for (uint64_t word : block) {
                    for (int byte = 0; byte < 8; ++byte) {
                        raw.push_back(
                            static_cast<uint8_t>(word >> (8 * byte)));
                    }
                }
            }
            if (cfg_.useSha) {
                Sha256::Digest digest = Sha256::hash(raw);
                buffer_.insert(buffer_.end(), digest.begin(),
                               digest.end());
            } else {
                buffer_.insert(buffer_.end(), raw.begin(), raw.end());
            }
        }
        host_.preObeyed(plan.bank);
    }
    ++iterations_;
}

void
QuacTrng::fill(uint8_t *out, size_t len)
{
    if (!ready_)
        setup();
    size_t produced = 0;
    while (produced < len) {
        if (bufferHead_ == buffer_.size()) {
            buffer_.clear();
            bufferHead_ = 0;
            runIteration();
        }
        size_t available = buffer_.size() - bufferHead_;
        size_t take = std::min(available, len - produced);
        std::copy_n(buffer_.begin() +
                        static_cast<ptrdiff_t>(bufferHead_),
                    take, out + produced);
        bufferHead_ += take;
        produced += take;
    }
}

Bitstream
QuacTrng::rawIteration(size_t plan_index)
{
    if (!ready_)
        setup();
    QUAC_ASSERT(plan_index < plans_.size(), "plan %zu", plan_index);
    const BankPlan &plan = plans_[plan_index];
    const dram::TimingParams &timing = host_.timing();

    initSegment(plan);
    host_.quac(plan.bank, plan.segment);

    Bitstream raw;
    for (uint32_t col = 0;
         col < module_.geometry().cacheBlocksPerRow(); ++col) {
        std::vector<uint64_t> block = host_.rd(plan.bank, col);
        host_.wait(timing.tCCD_L);
        for (uint64_t word : block)
            raw.appendWord(word, 64);
    }
    host_.preObeyed(plan.bank);
    ++iterations_;
    return raw;
}

} // namespace quac::core

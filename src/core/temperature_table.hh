/**
 * @file
 * Per-temperature SHA-input-block column sets (paper Section 8).
 *
 * Segment entropy shifts with temperature, so the memory controller
 * stores a list of column-address sets for non-overlapping
 * temperature ranges, built during one-time offline characterization.
 * At run time it selects the set for the current DRAM temperature,
 * guaranteeing every SHA input block still carries the full 256 bits
 * of Shannon entropy. The paper budgets 10 ranges of up to 11 column
 * addresses in its Section 9 storage estimate.
 */

#ifndef QUAC_CORE_TEMPERATURE_TABLE_HH
#define QUAC_CORE_TEMPERATURE_TABLE_HH

#include <cstdint>
#include <vector>

#include "core/characterizer.hh"
#include "dram/module.hh"

namespace quac::core
{

/** One non-overlapping temperature range and its column set. */
struct TemperatureBand
{
    double minC = 0.0;
    double maxC = 0.0;   ///< exclusive upper edge
    /** Column ranges valid across the band (sized at its hot edge). */
    std::vector<ColumnRange> ranges;
    /** Segment entropy at the band's characterization point. */
    double segmentEntropy = 0.0;
};

/** Offline-characterized table of per-temperature column sets. */
class TemperatureTable
{
  public:
    /**
     * Characterize @p segment across the operating range and build
     * the band table (paper default: 10 bands).
     *
     * Within each band the column set is computed at the band edge
     * with the *lower* entropy, so blocks never under-deliver when
     * the temperature moves inside the band.
     */
    static TemperatureTable build(const dram::DramModule &module,
                                  uint32_t bank, uint32_t segment,
                                  uint8_t pattern,
                                  double entropy_target = 256.0,
                                  double min_c = 30.0,
                                  double max_c = 90.0,
                                  unsigned bands = 10);

    /** Band covering @p temperature_c (clamped to the table edges). */
    const TemperatureBand &lookup(double temperature_c) const;

    size_t bandCount() const { return bands_.size(); }
    const std::vector<TemperatureBand> &bands() const { return bands_; }

    /**
     * Controller storage footprint in bits: one column address per
     * range boundary (7 bits for 128 cache blocks), as in the
     * paper's Section 9 accounting.
     */
    size_t storageBits() const;

  private:
    std::vector<TemperatureBand> bands_;
};

} // namespace quac::core

#endif // QUAC_CORE_TEMPERATURE_TABLE_HH

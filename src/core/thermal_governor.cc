#include "core/thermal_governor.hh"

#include "common/error.hh"

namespace quac::core
{

ThermalGovernor::ThermalGovernor(dram::DramModule &module,
                                 QuacTrng &trng,
                                 ThermalGovernorConfig cfg)
    : module_(module), trng_(trng), cfg_(cfg)
{
    if (cfg_.bands == 0)
        fatal("thermal governor needs at least one band");
    if (!(cfg_.minC < cfg_.maxC))
        fatal("thermal governor range [%g, %g) is empty", cfg_.minC,
              cfg_.maxC);
    if (!trng_.ready())
        trng_.setup();
    if (cfg_.entropyTarget == 0.0)
        cfg_.entropyTarget = trng_.config().sibEntropyTarget;

    tables_.reserve(trng_.plans().size());
    for (const QuacTrng::BankPlan &plan : trng_.plans()) {
        tables_.push_back(TemperatureTable::build(
            module_, plan.bank, plan.segment, trng_.config().pattern,
            cfg_.entropyTarget, cfg_.minC, cfg_.maxC, cfg_.bands));
    }
    band_ = bandIndexFor(module_.temperature());
}

size_t
ThermalGovernor::bandCount() const
{
    return tables_.empty() ? 0 : tables_.front().bandCount();
}

size_t
ThermalGovernor::bandIndexFor(double temperature_c) const
{
    const std::vector<TemperatureBand> &bands =
        tables_.front().bands();
    for (size_t i = 0; i + 1 < bands.size(); ++i) {
        if (temperature_c < bands[i].maxC)
            return i;
    }
    return bands.size() - 1;
}

bool
ThermalGovernor::setTemperature(double temperature_c)
{
    module_.setTemperature(temperature_c);
    size_t band = bandIndexFor(temperature_c);
    if (band == band_)
        return false;
    band_ = band;
    std::vector<std::vector<ColumnRange>> per_plan;
    per_plan.reserve(tables_.size());
    for (const TemperatureTable &table : tables_)
        per_plan.push_back(table.bands()[band].ranges);
    trng_.applyColumnRanges(per_plan);
    ++switches_;
    return true;
}

} // namespace quac::core

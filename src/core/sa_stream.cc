#include "core/sa_stream.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hh"
#include "dram/segment_model.hh"

namespace quac::core
{

SaStreamSampler::SaStreamSampler(const dram::DramModule &module,
                                 uint32_t bank, uint32_t segment,
                                 uint8_t pattern, uint64_t noise_seed)
    : rng_(noise_seed)
{
    dram::SegmentModel model(module.geometry(), module.calibration(),
                             module.variation(), bank, segment,
                             module.temperature(), module.ageDays());
    probs_ = model.patternProbabilities(pattern);
}

double
SaStreamSampler::probability(uint32_t bitline) const
{
    QUAC_ASSERT(bitline < probs_.size(), "bitline=%u", bitline);
    return probs_[bitline];
}

std::vector<uint32_t>
SaStreamSampler::topMetastableBitlines(size_t k) const
{
    std::vector<uint32_t> indices(probs_.size());
    for (uint32_t b = 0; b < probs_.size(); ++b)
        indices[b] = b;
    k = std::min(k, indices.size());
    std::partial_sort(indices.begin(),
                      indices.begin() + static_cast<ptrdiff_t>(k),
                      indices.end(), [&](uint32_t a, uint32_t b) {
                          return std::fabs(probs_[a] - 0.5f) <
                                 std::fabs(probs_[b] - 0.5f);
                      });
    indices.resize(k);
    return indices;
}

Bitstream
SaStreamSampler::sample(uint32_t bitline, size_t nbits)
{
    // Bulk draws: fill a chunk of uniforms, compare against the fixed
    // p, and append word-at-a-time instead of one Bernoulli per call.
    float p = static_cast<float>(probability(bitline));
    Bitstream bits;
    constexpr size_t chunk = 4096;
    std::array<float, chunk> uniforms;
    for (size_t done = 0; done < nbits;) {
        size_t m = std::min(chunk, nbits - done);
        rng_.fillUniform(uniforms.data(), m);
        for (size_t base = 0; base < m; base += 64) {
            size_t w = std::min<size_t>(64, m - base);
            uint64_t word = 0;
            for (size_t k = 0; k < w; ++k) {
                word |= static_cast<uint64_t>(uniforms[base + k] < p)
                        << k;
            }
            bits.appendWord(word, w);
        }
        done += m;
    }
    return bits;
}

Bitstream
SaStreamSampler::sampleInterleaved(
    const std::vector<uint32_t> &bitlines, size_t nbits)
{
    QUAC_ASSERT(!bitlines.empty(), "no bitlines selected");
    std::vector<float> probs(bitlines.size());
    for (size_t i = 0; i < bitlines.size(); ++i)
        probs[i] = static_cast<float>(probability(bitlines[i]));

    Bitstream bits;
    constexpr size_t chunk = 4096;
    std::array<float, chunk> uniforms;
    size_t lane = 0;
    for (size_t produced = 0; produced < nbits;) {
        size_t m = std::min(chunk, nbits - produced);
        rng_.fillUniform(uniforms.data(), m);
        for (size_t i = 0; i < m; ++i) {
            bits.append(uniforms[i] < probs[lane]);
            lane = (lane + 1 == probs.size()) ? 0 : lane + 1;
        }
        produced += m;
    }
    return bits;
}

} // namespace quac::core

#include "core/sa_stream.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "dram/segment_model.hh"

namespace quac::core
{

SaStreamSampler::SaStreamSampler(const dram::DramModule &module,
                                 uint32_t bank, uint32_t segment,
                                 uint8_t pattern, uint64_t noise_seed)
    : rng_(noise_seed)
{
    dram::SegmentModel model(module.geometry(), module.calibration(),
                             module.variation(), bank, segment,
                             module.temperature(), module.ageDays());
    probs_ = model.patternProbabilities(pattern);
}

double
SaStreamSampler::probability(uint32_t bitline) const
{
    QUAC_ASSERT(bitline < probs_.size(), "bitline=%u", bitline);
    return probs_[bitline];
}

std::vector<uint32_t>
SaStreamSampler::topMetastableBitlines(size_t k) const
{
    std::vector<uint32_t> indices(probs_.size());
    for (uint32_t b = 0; b < probs_.size(); ++b)
        indices[b] = b;
    k = std::min(k, indices.size());
    std::partial_sort(indices.begin(),
                      indices.begin() + static_cast<ptrdiff_t>(k),
                      indices.end(), [&](uint32_t a, uint32_t b) {
                          return std::fabs(probs_[a] - 0.5f) <
                                 std::fabs(probs_[b] - 0.5f);
                      });
    indices.resize(k);
    return indices;
}

Bitstream
SaStreamSampler::sample(uint32_t bitline, size_t nbits)
{
    double p = probability(bitline);
    Bitstream bits;
    for (size_t i = 0; i < nbits; ++i)
        bits.append(rng_.bernoulli(p));
    return bits;
}

Bitstream
SaStreamSampler::sampleInterleaved(
    const std::vector<uint32_t> &bitlines, size_t nbits)
{
    QUAC_ASSERT(!bitlines.empty(), "no bitlines selected");
    Bitstream bits;
    size_t produced = 0;
    while (produced < nbits) {
        for (uint32_t bitline : bitlines) {
            if (produced >= nbits)
                break;
            bits.append(rng_.bernoulli(probability(bitline)));
            ++produced;
        }
    }
    return bits;
}

} // namespace quac::core

#include "core/fault_injection.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/error.hh"

namespace quac::core
{

const char *
faultModeName(FaultMode mode)
{
    switch (mode) {
    case FaultMode::StuckAt: return "stuck";
    case FaultMode::BiasedBits: return "bias";
    case FaultMode::ReadFailure: return "fail";
    }
    return "?";
}

namespace
{

/** Split on ':' keeping empty fields (they are parse errors). */
std::vector<std::string>
splitFields(const std::string &text)
{
    std::vector<std::string> fields;
    size_t start = 0;
    for (;;) {
        size_t colon = text.find(':', start);
        if (colon == std::string::npos) {
            fields.push_back(text.substr(start));
            return fields;
        }
        fields.push_back(text.substr(start, colon - start));
        start = colon + 1;
    }
}

uint64_t
parseUint(const std::string &field, const char *what,
          const std::string &spec)
{
    if (field.empty())
        fatal("fault spec '%s': empty %s field", spec.c_str(), what);
    uint64_t value = 0;
    for (char c : field) {
        if (c < '0' || c > '9')
            fatal("fault spec '%s': %s '%s' is not a non-negative "
                  "integer", spec.c_str(), what, field.c_str());
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10)
            fatal("fault spec '%s': %s '%s' overflows", spec.c_str(),
                  what, field.c_str());
        value = value * 10 + digit;
    }
    return value;
}

double
parseDouble(const std::string &field, const char *what,
            const std::string &spec)
{
    if (field.empty())
        fatal("fault spec '%s': empty %s field", spec.c_str(), what);
    char *end = nullptr;
    double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0')
        fatal("fault spec '%s': %s '%s' is not a number",
              spec.c_str(), what, field.c_str());
    return value;
}

} // anonymous namespace

FaultSpec
FaultSpec::parse(const std::string &text)
{
    std::vector<std::string> fields = splitFields(text);
    if (fields.size() < 4 || fields.size() > 5)
        fatal("fault spec '%s': expected "
              "<bank>:<mode>:<start>:<len>[:<param>]", text.c_str());

    FaultSpec spec;
    spec.bank =
        static_cast<size_t>(parseUint(fields[0], "bank", text));

    const std::string &mode = fields[1];
    if (mode == "stuck")
        spec.mode = FaultMode::StuckAt;
    else if (mode == "bias")
        spec.mode = FaultMode::BiasedBits;
    else if (mode == "fail")
        spec.mode = FaultMode::ReadFailure;
    else
        fatal("fault spec '%s': unknown mode '%s' (stuck | bias | "
              "fail)", text.c_str(), mode.c_str());

    spec.startByte = parseUint(fields[2], "start", text);
    spec.lengthBytes = parseUint(fields[3], "length", text);

    if (fields.size() == 5) {
        switch (spec.mode) {
        case FaultMode::StuckAt: {
            uint64_t value = parseUint(fields[4], "stuck value", text);
            if (value > 0xFF)
                fatal("fault spec '%s': stuck value %llu exceeds a "
                      "byte", text.c_str(),
                      static_cast<unsigned long long>(value));
            spec.stuckValue = static_cast<uint8_t>(value);
            break;
        }
        case FaultMode::BiasedBits: {
            double p = parseDouble(fields[4], "bias", text);
            if (p <= 0.0 || p >= 1.0)
                fatal("fault spec '%s': bias P(1) must be in (0, 1), "
                      "got %f", text.c_str(), p);
            spec.biasP = p;
            break;
        }
        case FaultMode::ReadFailure:
            fatal("fault spec '%s': mode 'fail' takes no parameter",
                  text.c_str());
        }
    }
    return spec;
}

std::string
FaultSpec::describe() const
{
    char buf[128];
    switch (mode) {
    case FaultMode::StuckAt:
        std::snprintf(buf, sizeof(buf), "%zu:stuck:%llu:%llu:%u",
                      bank, static_cast<unsigned long long>(startByte),
                      static_cast<unsigned long long>(lengthBytes),
                      static_cast<unsigned>(stuckValue));
        break;
    case FaultMode::BiasedBits:
        std::snprintf(buf, sizeof(buf), "%zu:bias:%llu:%llu:%g",
                      bank, static_cast<unsigned long long>(startByte),
                      static_cast<unsigned long long>(lengthBytes),
                      biasP);
        break;
    case FaultMode::ReadFailure:
        std::snprintf(buf, sizeof(buf), "%zu:fail:%llu:%llu",
                      bank, static_cast<unsigned long long>(startByte),
                      static_cast<unsigned long long>(lengthBytes));
        break;
    }
    return buf;
}

FaultInjectedTrng::FaultInjectedTrng(Trng &inner, FaultSpec spec,
                                     uint64_t seed)
    : inner_(inner), spec_(spec), rng_(seed)
{
    if (spec_.mode == FaultMode::BiasedBits &&
        (spec_.biasP <= 0.0 || spec_.biasP >= 1.0))
        fatal("bias P(1) must be in (0, 1), got %f", spec_.biasP);
}

std::string
FaultInjectedTrng::name() const
{
    return inner_.name() + "+" + faultModeName(spec_.mode);
}

size_t
FaultInjectedTrng::preferredChunkBytes()
{
    return inner_.preferredChunkBytes();
}

void
FaultInjectedTrng::fill(uint8_t *out, size_t len)
{
    size_t done = 0;
    while (done < len) {
        uint64_t at = offset_ + done;
        bool faulty = spec_.covers(at);
        // Length of the current healthy/faulty segment.
        size_t seg = len - done;
        if (faulty) {
            if (spec_.lengthBytes != 0) {
                uint64_t fault_end = spec_.startByte +
                                     spec_.lengthBytes;
                seg = static_cast<size_t>(std::min<uint64_t>(
                    seg, fault_end - at));
            }
        } else if (at < spec_.startByte) {
            seg = static_cast<size_t>(std::min<uint64_t>(
                seg, spec_.startByte - at));
        }

        if (!faulty) {
            inner_.fill(out + done, seg);
            done += seg;
            continue;
        }

        switch (spec_.mode) {
        case FaultMode::StuckAt:
            std::memset(out + done, spec_.stuckValue, seg);
            break;
        case FaultMode::BiasedBits:
            for (size_t i = 0; i < seg; ++i) {
                uint8_t b = 0;
                for (unsigned j = 0; j < 8; ++j)
                    b |= static_cast<uint8_t>(
                             rng_.bernoulli(spec_.biasP))
                         << j;
                out[done + i] = b;
            }
            break;
        case FaultMode::ReadFailure:
            // The attempted read is lost but the stream position
            // still advances, so retries eventually clear a bounded
            // fault window (transience) instead of re-hitting byte
            // startByte forever.
            offset_ += len;
            throw TransientReadError(
                name() + ": injected read failure at stream byte " +
                std::to_string(at));
        }
        done += seg;
    }
    offset_ += len;
}

SoftwareTrng::SoftwareTrng(uint64_t seed, std::string name,
                           size_t chunk_bytes)
    : name_(std::move(name)), chunk_(chunk_bytes), rng_(seed)
{
}

void
SoftwareTrng::fill(uint8_t *out, size_t len)
{
    // Unused tail bytes of a word carry over to the next fill, so
    // the byte stream is a pure function of stream position — fills
    // of any chunking replay identically (the health studies compare
    // served bytes across runs with different pull patterns).
    size_t done = 0;
    while (done < len) {
        if (pending_ == 0) {
            word_ = rng_.next();
            pending_ = 8;
        }
        size_t take = std::min<size_t>(pending_, len - done);
        const uint8_t *src =
            reinterpret_cast<const uint8_t *>(&word_) +
            (8 - pending_);
        std::memcpy(out + done, src, take);
        pending_ -= static_cast<unsigned>(take);
        done += take;
    }
}

} // namespace quac::core

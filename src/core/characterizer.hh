/**
 * @file
 * One-time characterization of a module's QUAC entropy profile
 * (paper Section 6.1): per-segment entropy maps, data-pattern
 * sweeps, cache-block profiles, and the SHA-input-block column
 * ranges the TRNG reads at run time.
 */

#ifndef QUAC_CORE_CHARACTERIZER_HH
#define QUAC_CORE_CHARACTERIZER_HH

#include <cstdint>
#include <vector>

#include "dram/module.hh"
#include "dram/segment_model.hh"

namespace quac::core
{

/** Entropy (bits) measured for one segment. */
struct SegmentEntropy
{
    uint32_t segment = 0;
    double entropy = 0.0;
};

/** Sweep/selection parameters. */
struct CharacterizerConfig
{
    uint32_t bank = 0;
    /** Init pattern nibble (default "0111", the paper's best). */
    uint8_t pattern = 0b1110;
    double temperatureC = 50.0;
    double ageDays = 0.0;
    /** Evaluate every Nth segment (1 = full resolution). */
    uint32_t segmentStride = 1;
    /** Worker threads (0 = hardware concurrency). */
    unsigned threads = 0;
};

/** Per-pattern aggregate over the sampled segments (Fig 8). */
struct PatternStats
{
    uint8_t pattern = 0;
    /** Average cache-block entropy across sampled cache blocks. */
    double avgCacheBlockEntropy = 0.0;
    /** Maximum cache-block entropy observed. */
    double maxCacheBlockEntropy = 0.0;
    /** Average segment entropy. */
    double avgSegmentEntropy = 0.0;
};

/**
 * A contiguous cache-block range holding >= the target Shannon
 * entropy; one SHA-256 input block is read from each range (paper
 * Sections 5.2 and 8).
 */
struct ColumnRange
{
    uint32_t beginColumn = 0;
    uint32_t endColumn = 0;   ///< exclusive
    double entropy = 0.0;
};

/**
 * Greedily partition a row's cache blocks into contiguous ranges of
 * >= @p target bits of entropy each (left to right; a trailing
 * partial range is discarded).
 */
std::vector<ColumnRange>
sibRanges(const std::vector<double> &cache_block_entropy,
          double target = 256.0);

/** Analytic characterization driver over one module. */
class Characterizer
{
  public:
    /** Attach to a module (read-only; uses the variation oracle). */
    explicit Characterizer(const dram::DramModule &module);

    /** Entropy of every sampled segment (Fig 9 series). */
    std::vector<SegmentEntropy>
    segmentEntropies(const CharacterizerConfig &cfg) const;

    /** The highest-entropy sampled segment. */
    SegmentEntropy bestSegment(const CharacterizerConfig &cfg) const;

    /** Per-cache-block entropy of one segment (Fig 10 series). */
    std::vector<double>
    cacheBlockEntropies(uint32_t bank, uint32_t segment,
                        uint8_t pattern, double temperature_c = 50.0,
                        double age_days = 0.0) const;

    /** All sixteen data patterns over the sampled segments (Fig 8). */
    std::vector<PatternStats>
    patternSweep(const CharacterizerConfig &cfg) const;

    /** Entropy of one (bank, segment, pattern) point. */
    double segmentEntropy(uint32_t bank, uint32_t segment,
                          uint8_t pattern, double temperature_c = 50.0,
                          double age_days = 0.0) const;

  private:
    const dram::DramModule &module_;
};

} // namespace quac::core

#endif // QUAC_CORE_CHARACTERIZER_HH

/**
 * @file
 * Online temperature recalibration for a running QuacTrng.
 *
 * Paper Section 8: segment entropy shifts with temperature, so the
 * memory controller keeps per-temperature column-address sets and
 * switches to the set of the current band at run time. The
 * TemperatureTable models the offline side; this governor is the
 * online side — it owns one band table per bank plan, moves the
 * module temperature, and when the temperature crosses a band edge
 * it installs that band's column ranges into the live generator via
 * QuacTrng::applyColumnRanges, *without* stopping generation or
 * re-running characterization. The band switch can change the
 * generator's iteration geometry, so the consumer (EntropyService)
 * must flush bytes buffered across the switch as suspect — see
 * EntropyService::retuneBackend, which runs setTemperature under the
 * backend lock and drops the suspect spans.
 */

#ifndef QUAC_CORE_THERMAL_GOVERNOR_HH
#define QUAC_CORE_THERMAL_GOVERNOR_HH

#include <cstdint>
#include <vector>

#include "core/temperature_table.hh"
#include "core/trng.hh"
#include "dram/module.hh"

namespace quac::core
{

/** Band-table shape shared by every plan's TemperatureTable. */
struct ThermalGovernorConfig
{
    /** Entropy target per SHA input block; 0 = the generator's
     * configured sibEntropyTarget. */
    double entropyTarget = 0.0;
    /** Operating range the tables cover (paper: 30-90 C). */
    double minC = 30.0;
    double maxC = 90.0;
    /** Non-overlapping bands across the range (paper: 10). */
    unsigned bands = 10;
};

/** Online per-temperature column-set switching for one QuacTrng. */
class ThermalGovernor
{
  public:
    /**
     * Build one TemperatureTable per bank plan (runs the generator's
     * setup() first if needed — the tables characterize the same
     * segments the plans picked).
     *
     * @param module module whose temperature the governor moves
     *        (kept by reference; must be the generator's module).
     * @param trng live generator to retune (kept by reference).
     * @param cfg band-table shape.
     */
    ThermalGovernor(dram::DramModule &module, QuacTrng &trng,
                    ThermalGovernorConfig cfg = {});

    /**
     * Move the module to @p temperature_c. When the temperature
     * lands in a different band, the band's column ranges are
     * installed into the generator (applyColumnRanges) and the call
     * returns true — the caller owns suspect-span handling for bytes
     * it buffered across the switch. Returns false when the band is
     * unchanged (the common case: drift inside one band needs no
     * recalibration, which is the point of banding).
     */
    bool setTemperature(double temperature_c);

    /** Current module temperature. */
    double temperature() const { return module_.temperature(); }

    /** Band index the generator currently runs under. */
    size_t bandIndex() const { return band_; }

    /** Band switches performed so far. */
    uint64_t bandSwitches() const { return switches_; }

    size_t bandCount() const;

    /** Per-plan band tables, in QuacTrng::plans() order. */
    const std::vector<TemperatureTable> &tables() const
    {
        return tables_;
    }

  private:
    /** Band covering @p temperature_c (clamped to the table edges,
     * matching TemperatureTable::lookup). */
    size_t bandIndexFor(double temperature_c) const;

    dram::DramModule &module_;
    QuacTrng &trng_;
    ThermalGovernorConfig cfg_;
    std::vector<TemperatureTable> tables_;
    size_t band_ = 0;
    uint64_t switches_ = 0;
};

} // namespace quac::core

#endif // QUAC_CORE_THERMAL_GOVERNOR_HH

/**
 * @file
 * Single-client buffered RNG service (paper Section 9), kept as a
 * thin compatibility front-end over the sharded
 * service::EntropyService: one backend, one shard, one standard
 * -priority client. New code should use the entropy service
 * directly; this shim preserves the original synchronous API and
 * its exact buffering semantics.
 */

#ifndef QUAC_CORE_RNG_SERVICE_HH
#define QUAC_CORE_RNG_SERVICE_HH

#include <cstdint>
#include <vector>

#include "core/trng.hh"
#include "service/entropy_service.hh"

namespace quac::core
{

/** Service configuration. */
struct RngServiceConfig
{
    /** Buffer capacity in bytes (controller SRAM). */
    size_t capacityBytes = 4096;
    /**
     * Refill threshold: background refills trigger once the fill
     * level drops below this fraction of capacity.
     */
    double refillWatermark = 0.5;
};

/** Buffered single-client front-end over any Trng. */
class RngService
{
  public:
    /**
     * @param source backing generator (kept by reference).
     * @param cfg buffer parameters.
     */
    RngService(Trng &source, RngServiceConfig cfg = {});

    /**
     * Serve a request. Returns true if it was served entirely from
     * the buffer ("immediate" in the paper's terms), false if the
     * generator had to run synchronously.
     */
    bool request(uint8_t *out, size_t len);

    /** Convenience byte-vector request. */
    std::vector<uint8_t> request(size_t len);

    /** Outcome of a timestamped request. */
    struct TimedRequest
    {
        /** Served entirely from the buffer. */
        bool hit = false;
        /** Modelled end-to-end latency in simulated ns. */
        double latencyNs = 0.0;
    };

    /**
     * Timestamped request at @p now_ns of the caller's simulated
     * clock: served bytes are identical to request(), and the
     * modelled end-to-end latency (buffer read vs synchronous
     * generation, queued behind earlier misses) is returned and
     * recorded into latencyDistribution().
     */
    TimedRequest requestAt(uint8_t *out, size_t len, double now_ns);

    /** Modelled latency distribution of the timestamped requests. */
    service::LatencyDistribution latencyDistribution() const;

    /**
     * Background top-up, as the controller would do with idle DRAM
     * bandwidth. When at or below the watermark, refills to capacity
     * rounded up to whole generator iterations
     * (Trng::preferredChunkBytes), letting the generator write
     * straight into the buffer and discarding no generated entropy;
     * level() may therefore transiently exceed capacity() by less
     * than one iteration.
     * @return bytes added.
     */
    size_t refillIfBelowWatermark();

    /** Current fill level in bytes. */
    size_t level() const { return service_.level(0); }

    size_t capacity() const { return service_.shardCapacity(); }

    /** @name Service statistics */
    /**@{*/
    uint64_t requestsServed() const { return service_.requestsServed(); }
    uint64_t bufferHits() const { return service_.bufferHits(); }
    uint64_t synchronousFills() const
    {
        return service_.synchronousFills();
    }
    /**@}*/

  private:
    service::EntropyService service_;
    service::EntropyService::Client client_;
};

} // namespace quac::core

#endif // QUAC_CORE_RNG_SERVICE_HH

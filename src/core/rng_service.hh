/**
 * @file
 * Buffered random-number service (paper Section 9): the memory
 * controller periodically uses idle DRAM bandwidth to top up a small
 * buffer of random numbers so application requests are served
 * immediately, falling back to on-demand generation when drained.
 */

#ifndef QUAC_CORE_RNG_SERVICE_HH
#define QUAC_CORE_RNG_SERVICE_HH

#include <cstdint>
#include <vector>

#include "core/trng.hh"

namespace quac::core
{

/** Service configuration. */
struct RngServiceConfig
{
    /** Buffer capacity in bytes (controller SRAM). */
    size_t capacityBytes = 4096;
    /**
     * Refill threshold: background refills trigger once the fill
     * level drops below this fraction of capacity.
     */
    double refillWatermark = 0.5;
};

/** Buffered front-end over any Trng. */
class RngService
{
  public:
    /**
     * @param source backing generator (kept by reference).
     * @param cfg buffer parameters.
     */
    RngService(Trng &source, RngServiceConfig cfg = {});

    /**
     * Serve a request. Returns true if it was served entirely from
     * the buffer ("immediate" in the paper's terms), false if the
     * generator had to run synchronously.
     */
    bool request(uint8_t *out, size_t len);

    /** Convenience byte-vector request. */
    std::vector<uint8_t> request(size_t len);

    /**
     * Background top-up, as the controller would do with idle DRAM
     * bandwidth. When at or below the watermark, refills to capacity
     * rounded up to whole generator iterations
     * (Trng::preferredChunkBytes), letting the generator write
     * straight into the buffer and discarding no generated entropy;
     * level() may therefore transiently exceed capacity() by less
     * than one iteration.
     * @return bytes added.
     */
    size_t refillIfBelowWatermark();

    /** Current fill level in bytes. */
    size_t level() const { return buffer_.size() - head_; }

    size_t capacity() const { return cfg_.capacityBytes; }

    /** @name Service statistics */
    /**@{*/
    uint64_t requestsServed() const { return served_; }
    uint64_t bufferHits() const { return hits_; }
    uint64_t synchronousFills() const { return misses_; }
    /**@}*/

  private:
    void compact();

    Trng &source_;
    RngServiceConfig cfg_;
    std::vector<uint8_t> buffer_;
    size_t head_ = 0;
    uint64_t served_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace quac::core

#endif // QUAC_CORE_RNG_SERVICE_HH

#include "core/rng_service.hh"

#include "common/error.hh"

namespace quac::core
{

namespace
{

service::EntropyServiceConfig
shimConfig(const RngServiceConfig &cfg)
{
    // Validate with the original messages before handing off; the
    // entropy service itself accepts zero-capacity (pass-through)
    // shards, which the legacy API treated as a configuration error.
    if (cfg.capacityBytes == 0)
        fatal("RngService needs a non-zero buffer");
    if (cfg.refillWatermark < 0.0 || cfg.refillWatermark > 1.0)
        fatal("refill watermark must be in [0, 1]");

    service::EntropyServiceConfig scfg;
    scfg.shards = 1;
    scfg.shardCapacityBytes = cfg.capacityBytes;
    scfg.refillWatermark = cfg.refillWatermark;
    scfg.panicWatermark = 0.0;
    return scfg;
}

} // anonymous namespace

RngService::RngService(Trng &source, RngServiceConfig cfg)
    : service_({&source}, shimConfig(cfg)),
      client_(service_.connect("legacy", service::Priority::Standard))
{
}

bool
RngService::request(uint8_t *out, size_t len)
{
    return client_.request(out, len).hit;
}

std::vector<uint8_t>
RngService::request(size_t len)
{
    return client_.request(len);
}

RngService::TimedRequest
RngService::requestAt(uint8_t *out, size_t len, double now_ns)
{
    service::RequestResult result = client_.requestAt(out, len, now_ns);
    return {result.hit, result.modeledLatencyNs};
}

service::LatencyDistribution
RngService::latencyDistribution() const
{
    return service_.latencySnapshot(service::Priority::Standard);
}

size_t
RngService::refillIfBelowWatermark()
{
    return service_.refillBelowWatermark();
}

} // namespace quac::core

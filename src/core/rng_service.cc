#include "core/rng_service.hh"

#include <algorithm>
#include <cstring>

#include "common/error.hh"

namespace quac::core
{

RngService::RngService(Trng &source, RngServiceConfig cfg)
    : source_(source), cfg_(cfg)
{
    if (cfg_.capacityBytes == 0)
        fatal("RngService needs a non-zero buffer");
    if (cfg_.refillWatermark < 0.0 || cfg_.refillWatermark > 1.0)
        fatal("refill watermark must be in [0, 1]");
    buffer_.reserve(cfg_.capacityBytes);
}

void
RngService::compact()
{
    if (head_ == 0)
        return;
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(head_));
    head_ = 0;
}

bool
RngService::request(uint8_t *out, size_t len)
{
    ++served_;
    size_t available = level();
    if (available >= len) {
        std::memcpy(out, buffer_.data() + head_, len);
        head_ += len;
        ++hits_;
        return true;
    }

    // Drain what the buffer has, then generate the rest on demand
    // (the paper's fallback when requests outpace idle bandwidth).
    std::memcpy(out, buffer_.data() + head_, available);
    head_ += available;
    source_.fill(out + available, len - available);
    ++misses_;
    return false;
}

std::vector<uint8_t>
RngService::request(size_t len)
{
    std::vector<uint8_t> out(len);
    request(out.data(), len);
    return out;
}

size_t
RngService::refillIfBelowWatermark()
{
    size_t current = level();
    size_t threshold = static_cast<size_t>(
        cfg_.refillWatermark * static_cast<double>(cfg_.capacityBytes));
    if (current > threshold)
        return 0;

    compact();
    size_t want = cfg_.capacityBytes > buffer_.size()
                      ? cfg_.capacityBytes - buffer_.size()
                      : 0;
    // Round up to whole generator iterations: the generator then
    // writes every iteration straight into our buffer (no staging
    // copy on its side) and no generated entropy is discarded. The
    // buffer may transiently exceed capacity by less than one
    // iteration.
    size_t chunk = source_.preferredChunkBytes();
    if (chunk > 0)
        want = (want + chunk - 1) / chunk * chunk;
    if (want == 0)
        return 0;
    size_t old_size = buffer_.size();
    buffer_.resize(old_size + want);
    source_.fill(buffer_.data() + old_size, want);
    return want;
}

} // namespace quac::core

#include "core/characterizer.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/parallel.hh"

namespace quac::core
{

std::vector<ColumnRange>
sibRanges(const std::vector<double> &cache_block_entropy, double target)
{
    QUAC_ASSERT(target > 0.0, "target=%f", target);
    std::vector<ColumnRange> ranges;
    ColumnRange current;
    current.beginColumn = 0;
    for (uint32_t col = 0; col < cache_block_entropy.size(); ++col) {
        current.entropy += cache_block_entropy[col];
        if (current.entropy >= target) {
            current.endColumn = col + 1;
            ranges.push_back(current);
            current = ColumnRange{};
            current.beginColumn = col + 1;
        }
    }
    // A trailing range that never reached the target is discarded:
    // hashing it would over-claim entropy.
    return ranges;
}

Characterizer::Characterizer(const dram::DramModule &module)
    : module_(module)
{
}

std::vector<SegmentEntropy>
Characterizer::segmentEntropies(const CharacterizerConfig &cfg) const
{
    const dram::Geometry &geom = module_.geometry();
    QUAC_ASSERT(cfg.bank < geom.banks, "bank=%u", cfg.bank);
    QUAC_ASSERT(cfg.segmentStride >= 1, "stride=%u", cfg.segmentStride);

    std::vector<uint32_t> segments;
    for (uint32_t s = 0; s < geom.segmentsPerBank();
         s += cfg.segmentStride) {
        segments.push_back(s);
    }

    std::vector<SegmentEntropy> out(segments.size());
    parallelFor(0, segments.size(), [&](size_t i) {
        uint32_t segment = segments[i];
        dram::SegmentModel model(geom, module_.calibration(),
                                 module_.variation(), cfg.bank, segment,
                                 cfg.temperatureC, cfg.ageDays);
        out[i] = {segment, model.segmentEntropy(cfg.pattern)};
    }, cfg.threads);
    return out;
}

SegmentEntropy
Characterizer::bestSegment(const CharacterizerConfig &cfg) const
{
    SegmentEntropy best;
    for (const SegmentEntropy &se : segmentEntropies(cfg)) {
        if (se.entropy > best.entropy)
            best = se;
    }
    return best;
}

std::vector<double>
Characterizer::cacheBlockEntropies(uint32_t bank, uint32_t segment,
                                   uint8_t pattern, double temperature_c,
                                   double age_days) const
{
    dram::SegmentModel model(module_.geometry(), module_.calibration(),
                             module_.variation(), bank, segment,
                             temperature_c, age_days);
    return model.cacheBlockEntropies(pattern);
}

std::vector<PatternStats>
Characterizer::patternSweep(const CharacterizerConfig &cfg) const
{
    const dram::Geometry &geom = module_.geometry();
    QUAC_ASSERT(cfg.bank < geom.banks, "bank=%u", cfg.bank);

    std::vector<uint32_t> segments;
    for (uint32_t s = 0; s < geom.segmentsPerBank();
         s += cfg.segmentStride) {
        segments.push_back(s);
    }

    auto patterns = dram::allPatterns();
    // Per-segment partial aggregates, merged after the parallel loop.
    struct Partial
    {
        std::vector<double> sumCb;
        std::vector<double> maxCb;
        std::vector<double> sumSegment;
        size_t cbCount = 0;
    };
    std::vector<Partial> partials(segments.size());

    parallelFor(0, segments.size(), [&](size_t i) {
        dram::SegmentModel model(geom, module_.calibration(),
                                 module_.variation(), cfg.bank,
                                 segments[i], cfg.temperatureC,
                                 cfg.ageDays);
        Partial &partial = partials[i];
        partial.sumCb.assign(patterns.size(), 0.0);
        partial.maxCb.assign(patterns.size(), 0.0);
        partial.sumSegment.assign(patterns.size(), 0.0);
        for (size_t p = 0; p < patterns.size(); ++p) {
            auto blocks = model.cacheBlockEntropies(patterns[p]);
            partial.cbCount = blocks.size();
            for (double h : blocks) {
                partial.sumCb[p] += h;
                partial.maxCb[p] = std::max(partial.maxCb[p], h);
                partial.sumSegment[p] += h;
            }
        }
    }, cfg.threads);

    std::vector<PatternStats> stats(patterns.size());
    size_t total_blocks = 0;
    for (const Partial &partial : partials)
        total_blocks += partial.cbCount;
    for (size_t p = 0; p < patterns.size(); ++p) {
        stats[p].pattern = patterns[p];
        double sum_cb = 0.0;
        double max_cb = 0.0;
        double sum_segment = 0.0;
        for (const Partial &partial : partials) {
            if (partial.sumCb.empty())
                continue;
            sum_cb += partial.sumCb[p];
            max_cb = std::max(max_cb, partial.maxCb[p]);
            sum_segment += partial.sumSegment[p];
        }
        stats[p].avgCacheBlockEntropy =
            total_blocks ? sum_cb / static_cast<double>(total_blocks)
                         : 0.0;
        stats[p].maxCacheBlockEntropy = max_cb;
        stats[p].avgSegmentEntropy =
            segments.empty()
                ? 0.0
                : sum_segment / static_cast<double>(segments.size());
    }
    return stats;
}

double
Characterizer::segmentEntropy(uint32_t bank, uint32_t segment,
                              uint8_t pattern, double temperature_c,
                              double age_days) const
{
    dram::SegmentModel model(module_.geometry(), module_.calibration(),
                             module_.variation(), bank, segment,
                             temperature_c, age_days);
    return model.segmentEntropy(pattern);
}

} // namespace quac::core

/**
 * @file
 * Deterministic fault injection at the TRNG backend boundary.
 *
 * D-RaNGe's characterization shows real DRAM cells drift and fail;
 * a health-monitoring path is only trustworthy if the failure modes
 * it must catch can be reproduced on demand. FaultInjectedTrng wraps
 * any core::Trng and corrupts a byte-offset window of its output
 * stream with one of the three fielded-TRNG failure classes:
 *
 *  - StuckAt: the generator returns a constant byte (a dead sense
 *    amplifier / stuck bitline) — caught by the repetition count
 *    test within one cutoff-length run.
 *  - BiasedBits: entropy collapse to i.i.d. bits with P(1) != 0.5
 *    (charge drift shifting cells out of their metastable region) —
 *    caught by the adaptive proportion test and the windowed
 *    monobit/serial statistics.
 *  - ReadFailure: the fill throws TransientReadError (a timing or
 *    interface fault) — caught by the service's read-failure
 *    counting; the wrapped stream position still advances, so the
 *    fault clears once the window passes.
 *
 * Everything is deterministic: the fault window is addressed by
 * absolute stream byte offset and the bias noise comes from a seeded
 * xoshiro, so a test that replays the same request schedule replays
 * the same failure. SoftwareTrng is the healthy stand-in backend for
 * health studies (a PRNG stream that passes the statistical tests,
 * unlike the structured CountingTrng pattern used by the refill
 * benches).
 */

#ifndef QUAC_CORE_FAULT_INJECTION_HH
#define QUAC_CORE_FAULT_INJECTION_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/rng.hh"
#include "core/trng.hh"

namespace quac::core
{

/** Thrown by FaultInjectedTrng for ReadFailure-window fills. */
class TransientReadError : public std::runtime_error
{
  public:
    explicit TransientReadError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Injected failure class. */
enum class FaultMode : uint8_t
{
    /** Constant output byte (dead cells). */
    StuckAt = 0,
    /** I.i.d. bits with P(1) = biasP (entropy collapse). */
    BiasedBits = 1,
    /** fill() throws TransientReadError (interface fault). */
    ReadFailure = 2,
};

/** Display name ("stuck", "bias", "fail"). */
const char *faultModeName(FaultMode mode);

/** One fault, addressed in absolute backend-stream byte offsets. */
struct FaultSpec
{
    /** Backend (bank) index the fault applies to — carried for CLI
     * plumbing; FaultInjectedTrng itself ignores it. */
    size_t bank = 0;
    FaultMode mode = FaultMode::StuckAt;
    /** First faulty stream byte. */
    uint64_t startByte = 0;
    /** Faulty length in bytes; 0 = the fault never clears. */
    uint64_t lengthBytes = 0;
    /** StuckAt: the constant byte. */
    uint8_t stuckValue = 0x00;
    /** BiasedBits: probability of a 1 bit, in (0, 1). */
    double biasP = 0.9;

    /** Does the fault cover stream byte @p offset? */
    bool
    covers(uint64_t offset) const
    {
        return offset >= startByte &&
               (lengthBytes == 0 ||
                offset < startByte + lengthBytes);
    }

    /**
     * Parse "<bank>:<mode>:<start>:<len>[:<param>]" where mode is
     * stuck | bias | fail, start/len are stream byte offsets
     * (len 0 = permanent), and the optional param is the stuck byte
     * value (0-255) or the bias P(1) in (0, 1). fatal() on any
     * malformed field — a mistyped injection spec must never run a
     * study silently fault-free.
     */
    static FaultSpec parse(const std::string &text);

    /** The spec in parse() syntax (logs, JSON). */
    std::string describe() const;
};

/**
 * Decorator injecting FaultSpec's failure into a wrapped generator.
 * Healthy spans pass through to the inner stream; faulty spans
 * replace it (the inner stream position does not advance for
 * replaced bytes, so the post-fault stream continues exactly where
 * the healthy prefix stopped — a quarantined-then-readmitted bank
 * resumes its original sequence).
 */
class FaultInjectedTrng : public Trng
{
  public:
    /**
     * @param inner wrapped generator (kept by reference).
     * @param spec fault to inject.
     * @param seed bias-noise seed (BiasedBits only).
     */
    FaultInjectedTrng(Trng &inner, FaultSpec spec, uint64_t seed = 1);

    std::string name() const override;
    void fill(uint8_t *out, size_t len) override;
    size_t preferredChunkBytes() override;

    /** Stream bytes produced (or lost to ReadFailure) so far. */
    uint64_t bytesProduced() const { return offset_; }

    const FaultSpec &spec() const { return spec_; }

  private:
    Trng &inner_;
    FaultSpec spec_;
    uint64_t offset_ = 0;
    Xoshiro256pp rng_;
};

/**
 * Seeded xoshiro-backed software generator: the healthy backend
 * stand-in for health/fault studies. Deterministic per seed, and its
 * output passes the SP 800-90B/800-22 health tests.
 */
class SoftwareTrng : public Trng
{
  public:
    explicit SoftwareTrng(uint64_t seed,
                          std::string name = "xoshiro-sw",
                          size_t chunk_bytes = 256);

    std::string name() const override { return name_; }
    void fill(uint8_t *out, size_t len) override;
    size_t preferredChunkBytes() override { return chunk_; }

  private:
    std::string name_;
    size_t chunk_;
    Xoshiro256pp rng_;
    /** Current word and its unconsumed byte count (chunk carry). */
    uint64_t word_ = 0;
    unsigned pending_ = 0;
};

} // namespace quac::core

#endif // QUAC_CORE_FAULT_INJECTION_HH

#include "core/temperature_table.hh"

#include "common/error.hh"
#include "dram/segment_model.hh"

namespace quac::core
{

TemperatureTable
TemperatureTable::build(const dram::DramModule &module, uint32_t bank,
                        uint32_t segment, uint8_t pattern,
                        double entropy_target, double min_c,
                        double max_c, unsigned bands)
{
    QUAC_ASSERT(bands >= 1 && max_c > min_c,
                "bands=%u range=[%f, %f]", bands, min_c, max_c);

    TemperatureTable table;
    double step = (max_c - min_c) / bands;
    for (unsigned i = 0; i < bands; ++i) {
        TemperatureBand band;
        band.minC = min_c + i * step;
        band.maxC = band.minC + step;

        // Characterize both band edges and build the column set from
        // the per-cache-block *minimum* entropy envelope, so every
        // stored range carries the target at either edge regardless
        // of how individual columns shift with temperature.
        std::vector<double> envelope;
        double worst_total = -1.0;
        for (double temp : {band.minC, band.maxC}) {
            dram::SegmentModel model(
                module.geometry(), module.calibration(),
                module.variation(), bank, segment, temp,
                module.ageDays());
            auto blocks = model.cacheBlockEntropies(pattern);
            double total = 0.0;
            for (double h : blocks)
                total += h;
            if (worst_total < 0.0 || total < worst_total)
                worst_total = total;
            if (envelope.empty()) {
                envelope = std::move(blocks);
            } else {
                for (size_t col = 0; col < envelope.size(); ++col)
                    envelope[col] = std::min(envelope[col],
                                             blocks[col]);
            }
        }
        band.segmentEntropy = worst_total;
        band.ranges = sibRanges(envelope, entropy_target);
        table.bands_.push_back(std::move(band));
    }
    return table;
}

const TemperatureBand &
TemperatureTable::lookup(double temperature_c) const
{
    QUAC_ASSERT(!bands_.empty(), "empty temperature table");
    for (const TemperatureBand &band : bands_) {
        if (temperature_c < band.maxC)
            return band;
    }
    return bands_.back();
}

size_t
TemperatureTable::storageBits() const
{
    // Each range stores its end column (7 bits addresses 128 cache
    // blocks); range starts are implied by the previous end.
    size_t bits = 0;
    for (const TemperatureBand &band : bands_)
        bits += band.ranges.size() * 7;
    return bits;
}

} // namespace quac::core

/**
 * @file
 * QUAC-TRNG: the paper's primary contribution (Section 5).
 *
 * Each iteration (i) initializes the four rows of a pre-characterized
 * high-entropy segment from two reserved all-0s/all-1s rows using
 * RowClone in-DRAM copies, (ii) performs a QUAC operation, (iii)
 * reads the SHA-input-block column ranges from the sense amplifiers,
 * and (iv) hashes each range with SHA-256 into 256 output bits.
 */

#ifndef QUAC_CORE_TRNG_HH
#define QUAC_CORE_TRNG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitstream.hh"
#include "core/characterizer.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

namespace quac::core
{

/** Abstract byte-oriented random number source. */
class Trng
{
  public:
    virtual ~Trng() = default;

    /** Human-readable generator name. */
    virtual std::string name() const = 0;

    /** Fill @p len bytes with random data. */
    virtual void fill(uint8_t *out, size_t len) = 0;

    /**
     * Natural output granularity of the generator in bytes (0 =
     * none). Buffered consumers that request whole multiples of this
     * let the generator write straight into their memory without an
     * intermediate staging copy.
     */
    virtual size_t preferredChunkBytes() { return 0; }

    /** Convenience: generate a byte vector. */
    std::vector<uint8_t> generate(size_t len);

    /** Convenience: generate a bit stream. */
    Bitstream generateBits(size_t nbits);

    /** Convenience: one 256-bit random number. */
    std::array<uint8_t, 32> random256();
};

/** QUAC-TRNG configuration. */
struct QuacTrngConfig
{
    /**
     * Banks to run QUAC on; the paper picks one bank from each of
     * the four bank groups to maximize command overlap.
     */
    std::vector<uint32_t> banks = {0, 1, 2, 3};
    /** Segment init pattern (paper default "0111"). */
    uint8_t pattern = 0b1110;
    /** Apply SHA-256 whitening (false = raw reads, analysis only). */
    bool useSha = true;
    /** Shannon entropy target per SHA input block. */
    double sibEntropyTarget = 256.0;
    /** Segment stride used during best-segment characterization. */
    uint32_t characterizeStride = 8;
    /** Characterization worker threads (0 = hardware). */
    unsigned threads = 0;
    /**
     * Run the per-bank plans concurrently (the paper's parallel-bank
     * model). Output is byte-identical to the serial order because
     * every bank owns an independent command stream, noise stream,
     * and output slice.
     */
    bool parallelBanks = true;
    /** Bank-pipeline worker threads (0 = hardware concurrency). */
    unsigned bankThreads = 0;
};

/** The QUAC-based true random number generator. */
class QuacTrng : public Trng
{
  public:
    /** Per-bank execution plan produced by setup(). */
    struct BankPlan
    {
        uint32_t bank = 0;
        uint32_t segment = 0;       ///< Highest-entropy segment.
        double segmentEntropy = 0.0;
        uint32_t zeroRow = 0;       ///< Reserved all-0s source row.
        uint32_t oneRow = 0;        ///< Reserved all-1s source row.
        std::vector<ColumnRange> ranges; ///< SHA input block reads.
    };

    /**
     * @param module simulated module to run on (kept by reference).
     * @param cfg generator configuration.
     */
    explicit QuacTrng(dram::DramModule &module, QuacTrngConfig cfg = {});

    std::string name() const override { return "QUAC-TRNG"; }

    /**
     * One-time characterization and row reservation (paper
     * Section 9). Runs automatically on first use.
     */
    void setup();

    /**
     * Re-run characterization, e.g. after a temperature change
     * (paper Section 8: per-temperature column address sets).
     */
    void recharacterize();

    /**
     * Install new per-plan SHA-input-block column ranges (one set
     * per plan, in plans() order) without re-characterizing: the
     * online band-switch path, fed by ranges precomputed offline by
     * TemperatureTable::build. The output geometry follows the range
     * count (bytesPerIteration / preferredChunkBytes may change),
     * and any partially-consumed buffered iteration is discarded so
     * the post-switch stream starts on an iteration boundary —
     * consumers must treat bytes buffered across the switch as
     * suspect. Not safe against a concurrent fill(); callers
     * serialize (the service retunes under the backend lock).
     */
    void applyColumnRanges(
        const std::vector<std::vector<ColumnRange>> &per_plan);

    /** The generator configuration (band tables reuse its pattern
     * and entropy target). */
    const QuacTrngConfig &config() const { return cfg_; }

    void fill(uint8_t *out, size_t len) override;

    /** One full iteration's output in bytes (runs setup() if needed). */
    size_t preferredChunkBytes() override;

    /** True once setup() has completed. */
    bool ready() const { return ready_; }

    /** Execution plans (setup() must have run). */
    const std::vector<BankPlan> &plans() const { return plans_; }

    /** Random bits produced per full iteration (256 x total SIB). */
    size_t bitsPerIteration() const;

    /** Bytes produced per full iteration (raw bytes when !useSha). */
    size_t bytesPerIteration() const;

    /** Iterations executed so far. */
    uint64_t iterations() const { return iterations_; }

    /**
     * Raw (pre-hash) sense-amplifier bits of one QUAC on the given
     * plan: init + QUAC + full-segment read, no whitening. Used by
     * the characterization experiments.
     */
    Bitstream rawIteration(size_t plan_index);

    /** DRAM rows reserved per bank (paper Section 9: six). */
    static constexpr uint32_t reservedRowsPerBank = 6;

  private:
    void runIteration();
    /**
     * @p count consecutive full iterations written straight into
     * caller memory (count x bytesPerIteration() bytes). Each bank
     * runs its iterations sequentially inside one parallel region,
     * amortizing thread startup across the batch; output is
     * byte-identical to count serial iterations.
     */
    void runIterationsInto(uint8_t *out, size_t count);
    /** Init + QUAC + reads + hash of one plan, into its output slice. */
    void executePlan(size_t plan_index, uint8_t *out);
    /**
     * The DRAM half of executePlan(): init + QUAC + read every SIB
     * range back to back into the plan's scratch row. Returns the
     * word count read.
     */
    size_t readPlanRaw(size_t plan_index);
    /**
     * The hashing half: whiten the scratch row's SIBs into @p out,
     * batching them through the interleaved SHA-256 lanes.
     */
    void hashPlanInto(size_t plan_index, uint8_t *out);
    void initSegment(const BankPlan &plan, softmc::SoftMcHost &host);

    dram::DramModule &module_;
    QuacTrngConfig cfg_;
    std::vector<BankPlan> plans_;
    bool ready_ = false;
    uint64_t iterations_ = 0;

    /**
     * Per-plan command-stream cursors. Each bank owns one host so the
     * plans can run concurrently; all per-bank gaps stay >= the
     * obeyed timings at iteration boundaries, so the interleaving of
     * other banks' commands never changes a bank's behaviour.
     */
    std::vector<softmc::SoftMcHost> hosts_;
    /** Per-plan word scratch (one row), reused across iterations. */
    std::vector<std::vector<uint64_t>> scratch_;
    /** Output bytes of each plan per iteration, and slice offsets. */
    std::vector<size_t> planBytes_;
    std::vector<size_t> planOffsets_;
    /** Epoch the per-plan cursors were synchronized to at setup(). */
    double epoch_ = 0.0;

    std::vector<uint8_t> buffer_;
    size_t bufferHead_ = 0;
};

} // namespace quac::core

#endif // QUAC_CORE_TRNG_HH
